package core

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func buildHB(t *testing.T, ranks int, body func(ctx *harness.Ctx) error) (*recorder.Trace, *HB) {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: ranks, Semantics: pfs.Strong},
		recorder.Meta{App: "hb-test"}, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	hb, err := BuildHB(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace, hb
}

// ioWindow returns the [TStart, TEnd] of the k-th posix data op on a rank.
func ioWindow(t *testing.T, tr *recorder.Trace, rank, k int) (uint64, uint64) {
	t.Helper()
	n := 0
	for _, r := range tr.PerRank[rank] {
		if r.IsDataOp() {
			if n == k {
				return r.TStart, r.TEnd
			}
			n++
		}
	}
	t.Fatalf("rank %d has no data op %d", rank, k)
	return 0, 0
}

func TestHBSendRecvOrders(t *testing.T) {
	tr, hb := buildHB(t, 2, func(ctx *harness.Ctx) error {
		if ctx.Rank == 0 {
			fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
			ctx.OS.Pwrite(fd, make([]byte, 64), 0)
			ctx.OS.Close(fd)
			ctx.MPI.Send(1, 9, []byte("go"))
		} else {
			ctx.MPI.Recv(0, 9)
			fd, _ := ctx.OS.Open("/f", recorder.ORdonly, 0)
			ctx.OS.Pread(fd, 64, 0)
			ctx.OS.Close(fd)
		}
		return nil
	})
	_, wEnd := ioWindow(t, tr, 0, 0)
	rStart, _ := ioWindow(t, tr, 1, 0)
	if !hb.OrderedIO(0, wEnd, 1, rStart) {
		t.Fatal("write before send must happen-before read after recv")
	}
	// Reverse direction must NOT be ordered.
	if hb.OrderedIO(1, rStart, 0, wEnd) {
		t.Fatal("reverse ordering claimed")
	}
}

func TestHBBarrierOrders(t *testing.T) {
	tr, hb := buildHB(t, 4, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
		if ctx.Rank == 2 {
			ctx.OS.Pwrite(fd, make([]byte, 32), 0)
		}
		ctx.MPI.Barrier()
		if ctx.Rank == 3 {
			ctx.OS.Pread(fd, 32, 0)
		}
		return ctx.OS.Close(fd)
	})
	_, wEnd := ioWindow(t, tr, 2, 0)
	rStart, _ := ioWindow(t, tr, 3, 0)
	if !hb.OrderedIO(2, wEnd, 3, rStart) {
		t.Fatal("write before barrier must happen-before read after barrier")
	}
}

func TestHBConcurrentOpsNotOrdered(t *testing.T) {
	tr, hb := buildHB(t, 2, func(ctx *harness.Ctx) error {
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Pwrite(fd, make([]byte, 32), int64(ctx.Rank)*32)
		err := ctx.OS.Close(fd)
		ctx.MPI.Barrier()
		return err
	})
	// The two writes are concurrent (no synchronization between them).
	_, w0End := ioWindow(t, tr, 0, 0)
	w1Start, _ := ioWindow(t, tr, 1, 0)
	if hb.OrderedIO(0, w0End, 1, w1Start) {
		t.Fatal("concurrent writes claimed ordered")
	}
}

func TestHBSameRankProgramOrder(t *testing.T) {
	_, hb := buildHB(t, 1, func(ctx *harness.Ctx) error {
		ctx.MPI.Barrier()
		return nil
	})
	if !hb.OrderedIO(0, 100, 0, 200) {
		t.Fatal("same-rank program order broken")
	}
	if hb.OrderedIO(0, 200, 0, 100) {
		t.Fatal("same-rank reverse order claimed")
	}
}

func TestHBTransitiveThroughChain(t *testing.T) {
	// 0 → 1 → 2 message chain orders rank 0's write before rank 2's read.
	tr, hb := buildHB(t, 3, func(ctx *harness.Ctx) error {
		switch ctx.Rank {
		case 0:
			fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
			ctx.OS.Pwrite(fd, make([]byte, 8), 0)
			ctx.OS.Close(fd)
			ctx.MPI.Send(1, 1, []byte("a"))
		case 1:
			ctx.MPI.Recv(0, 1)
			ctx.MPI.Send(2, 2, []byte("b"))
		case 2:
			ctx.MPI.Recv(1, 2)
			fd, _ := ctx.OS.Open("/f", recorder.ORdonly, 0)
			ctx.OS.Pread(fd, 8, 0)
			ctx.OS.Close(fd)
		}
		return nil
	})
	_, wEnd := ioWindow(t, tr, 0, 0)
	rStart, _ := ioWindow(t, tr, 2, 0)
	if !hb.OrderedIO(0, wEnd, 2, rStart) {
		t.Fatal("transitive ordering through message chain not detected")
	}
}

func TestValidateConflictsOnSynchronizedApp(t *testing.T) {
	// A deliberately conflicting-but-synchronized workload: rank 0 writes,
	// everyone barriers, rank 1 overwrites. The conflict detector flags the
	// WAW-D pair under session semantics; HB validation must confirm the
	// pair is ordered by the barrier (the paper's §5.2 FLASH validation).
	res, err := harness.Run(harness.Config{Ranks: 2, Semantics: pfs.Strong},
		recorder.Meta{App: "sync-test"}, func(ctx *harness.Ctx) error {
			fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
			if ctx.Rank == 0 {
				ctx.OS.Pwrite(fd, make([]byte, 64), 0)
			}
			ctx.MPI.Barrier()
			if ctx.Rank == 1 {
				ctx.OS.Pwrite(fd, make([]byte, 64), 0)
			}
			return ctx.OS.Close(fd)
		})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	byFile, sig := AnalyzeConflicts(res.Trace, pfs.Session)
	if !sig.WAWDiff {
		t.Fatalf("expected a WAW-D conflict, got %+v", sig)
	}
	hb, err := BuildHB(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	unordered := ValidateConflicts(hb, byFile["/f"])
	if len(unordered) != 0 {
		t.Fatalf("synchronized conflicts reported unordered: %v", unordered)
	}
}

func TestAnalyzeVerdicts(t *testing.T) {
	// Unsynchronized-commit workload: write then cross-rank overwrite with
	// fsync between → session conflict only → weakest sufficient = commit.
	res, err := harness.Run(harness.Config{Ranks: 2, Semantics: pfs.Strong},
		recorder.Meta{App: "verdict-test"}, func(ctx *harness.Ctx) error {
			fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
			if ctx.Rank == 0 {
				ctx.OS.Pwrite(fd, make([]byte, 64), 0)
				ctx.OS.Fsync(fd)
			}
			ctx.MPI.Barrier()
			if ctx.Rank == 1 {
				ctx.OS.Pwrite(fd, make([]byte, 64), 0)
			}
			return ctx.OS.Close(fd)
		})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	v := Analyze(res.Trace)
	if !v.Session.WAWDiff {
		t.Fatalf("session signature = %+v", v.Session)
	}
	if v.Commit.WAWDiff {
		t.Fatalf("commit signature should be clean: %+v", v.Commit)
	}
	if v.Weakest != pfs.Commit {
		t.Fatalf("weakest = %v, want commit", v.Weakest)
	}
}
