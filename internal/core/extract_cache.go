package core

import (
	"context"
	"sync"

	"repro/internal/recorder"
)

// The extraction cache shares one Extract result per trace across every
// analysis surface (conflicts, patterns, reports, SVG/CSV figures). Traces
// are immutable once recorded and FileAccesses are never mutated by
// consumers (patterns and reports build their own index slices), so sharing
// is read-only safe; see DESIGN.md §11.
//
// The cache is keyed by source identity — the *recorder.Trace for
// slice-backed extraction, any caller-chosen key for cursor-backed
// extraction — holds at most extractCacheCap entries, and evicts in
// insertion (FIFO) order — analysis
// sweeps visit each trace in bursts and never revisit old ones, so FIFO
// behaves like LRU here without the bookkeeping.

const extractCacheCap = 32

type extractionEntry struct {
	once sync.Once
	fas  []*FileAccesses
	err  error
}

type extractionCache struct {
	mu    sync.Mutex
	byTr  map[any]*extractionEntry
	order []any // insertion order, for FIFO eviction
}

var extractions = extractionCache{byTr: make(map[any]*extractionEntry)}

// acquire returns the trace's entry, creating (and possibly evicting) under
// the lock. The extraction itself runs outside the lock, guarded by the
// entry's once, so concurrent callers for the same trace coalesce into a
// single extraction while other traces proceed independently.
func (c *extractionCache) acquire(tr any) *extractionEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byTr[tr]; ok {
		extractCacheHits.Inc()
		return e
	}
	extractCacheMisses.Inc()
	if len(c.order) >= extractCacheCap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.byTr, evict)
		extractCacheEvictions.Inc()
	}
	e := &extractionEntry{}
	c.byTr[tr] = e
	c.order = append(c.order, tr)
	return e
}

// drop removes an entry, if still present with the same identity.
func (c *extractionCache) drop(tr any, e *extractionEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.byTr[tr]; ok && cur == e {
		delete(c.byTr, tr)
		for i, t := range c.order {
			if t == tr {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}

// ExtractShared is Extract through the cache: the first call for a trace
// extracts (serially) and every later call returns the same slice. Callers
// must treat the result as read-only.
func ExtractShared(tr *recorder.Trace) []*FileAccesses {
	fas, _ := ExtractSharedCtx(context.Background(), tr, 1)
	return fas
}

// ExtractSharedCtx is ExtractShared with a cancellable, parallel extraction
// on a miss (workers as in ExtractParallelCtx). A failed (cancelled)
// extraction is dropped from the cache so the error does not poison later
// calls.
func ExtractSharedCtx(ctx context.Context, tr *recorder.Trace, workers int) ([]*FileAccesses, error) {
	e := extractions.acquire(tr)
	e.once.Do(func() {
		e.fas, e.err = ExtractParallelCtx(ctx, tr, workers)
		if e.err != nil {
			extractions.drop(tr, e)
		}
	})
	return e.fas, e.err
}

// InvalidateExtraction evicts a trace's cached extraction. Benchmarks use it
// to measure the cold path; production code never needs it because traces
// are immutable.
func InvalidateExtraction(tr *recorder.Trace) {
	extractions.mu.Lock()
	defer extractions.mu.Unlock()
	if _, ok := extractions.byTr[tr]; !ok {
		return
	}
	delete(extractions.byTr, tr)
	for i, t := range extractions.order {
		if t == tr {
			extractions.order = append(extractions.order[:i], extractions.order[i+1:]...)
			break
		}
	}
}

// ExtractCursorsSharedCtx is ExtractCursorsCtx through the cache: key
// identifies the underlying trace source (one key per opened directory —
// e.g. the colfmt DirReader), so repeated analyses of the same mapped trace
// share one extraction without ever materializing []Record. Cursors are
// single-use: they are consumed only on a cache miss, and concurrent
// callers for the same key coalesce into a single walk.
func ExtractCursorsSharedCtx(ctx context.Context, key any, cursors []RecordCursor, workers int) ([]*FileAccesses, error) {
	e := extractions.acquire(key)
	e.once.Do(func() {
		e.fas, e.err = ExtractCursorsCtx(ctx, cursors, workers)
		if e.err != nil {
			extractions.drop(key, e)
		}
	})
	return e.fas, e.err
}
