package consistency

import "repro/internal/obs"

// Checker telemetry on the process-wide obs registry. Naming follows
// DESIGN.md §9: consistency.check.*.
var (
	checkHistories = obs.Default().Counter("consistency.check.histories")
	checkAccepted  = obs.Default().Counter("consistency.check.accepted")
	checkRejected  = obs.Default().Counter("consistency.check.rejected")
	checkEvents    = obs.Default().Counter("consistency.check.events")
	checkBytes     = obs.Default().Counter("consistency.check.bytes")
	checkWall      = obs.Default().Histogram("consistency.check.wall_ns")
)
