package semfs_test

import (
	"testing"

	semfs "repro"
	"repro/internal/analysistest"
)

// TestTraceFormatEquivalence is the acceptance gate of the columnar trace
// format: for every application configuration of the registry, a trace saved
// columnar, saved v1, or converted between the two must reload with
// byte-identical records (the v1 decoder is the disk oracle) and produce a
// byte-identical analysis and rendered report at every load worker count —
// and the zero-copy cursor path over the mapped columnar directory must
// reproduce the materializing extraction exactly. The on-disk format is a
// performance choice; it can never be an analysis variable.
func TestTraceFormatEquivalence(t *testing.T) {
	for _, name := range semfs.Applications() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := semfs.Run(name, semfs.RunOptions{Ranks: 16, PPN: 2, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := res.Err(); err != nil {
				t.Fatalf("%s: rank error: %v", name, err)
			}
			analysistest.CheckFormats(t, name, res.Trace)
		})
	}
}
