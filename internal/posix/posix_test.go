package posix

import (
	"bytes"
	"testing"

	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/sim"
)

func newProc(t *testing.T, sem pfs.Semantics) (*Proc, *recorder.RankTracer) {
	t.Helper()
	fs := pfs.New(pfs.Options{Semantics: sem})
	tracer := recorder.NewRankTracer(0)
	p := NewProc(0, fs.NewClient(0, 0), sim.NewClock(0, 0), tracer, sim.DefaultCostModel())
	return p, tracer
}

func twoProcs(t *testing.T, sem pfs.Semantics) (*Proc, *Proc) {
	t.Helper()
	fs := pfs.New(pfs.Options{Semantics: sem})
	a := NewProc(0, fs.NewClient(0, 0), sim.NewClock(0, 0), recorder.NewRankTracer(0), sim.DefaultCostModel())
	b := NewProc(1, fs.NewClient(1, 0), sim.NewClock(0, 0), recorder.NewRankTracer(1), sim.DefaultCostModel())
	return a, b
}

func TestWriteReadRoundTrip(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, err := p.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := p.Write(fd, []byte("hello world")); err != nil || n != 11 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if _, err := p.Lseek(fd, 0, recorder.SeekSet); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(fd, 11)
	if err != nil || !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("read = %q, %v", got, err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetTracking(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
	p.Write(fd, []byte("aaaa"))
	p.Write(fd, []byte("bbbb")) // sequential writes advance the offset
	off, _ := p.Offset(fd)
	if off != 8 {
		t.Fatalf("offset after two writes = %d, want 8", off)
	}
	p.Lseek(fd, 0, recorder.SeekSet)
	got, _ := p.Read(fd, 8)
	if !bytes.Equal(got, []byte("aaaabbbb")) {
		t.Fatalf("sequential writes produced %q", got)
	}
}

func TestPwritePreadDoNotMoveOffset(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
	p.Write(fd, []byte("xxxx"))
	if _, err := p.Pwrite(fd, []byte("ZZ"), 1); err != nil {
		t.Fatal(err)
	}
	off, _ := p.Offset(fd)
	if off != 4 {
		t.Fatalf("pwrite moved offset to %d", off)
	}
	got, err := p.Pread(fd, 4, 0)
	if err != nil || !bytes.Equal(got, []byte("xZZx")) {
		t.Fatalf("pread = %q, %v", got, err)
	}
	if off, _ = p.Offset(fd); off != 4 {
		t.Fatalf("pread moved offset to %d", off)
	}
}

func TestLseekWhence(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
	p.Write(fd, make([]byte, 100))
	if off, _ := p.Lseek(fd, 10, recorder.SeekSet); off != 10 {
		t.Fatalf("SEEK_SET -> %d", off)
	}
	if off, _ := p.Lseek(fd, 5, recorder.SeekCur); off != 15 {
		t.Fatalf("SEEK_CUR -> %d", off)
	}
	if off, _ := p.Lseek(fd, -20, recorder.SeekEnd); off != 80 {
		t.Fatalf("SEEK_END -> %d", off)
	}
	if _, err := p.Lseek(fd, -200, recorder.SeekCur); err == nil {
		t.Fatal("negative resulting offset should fail")
	}
	if _, err := p.Lseek(fd, 0, 9); err == nil {
		t.Fatal("bad whence should fail")
	}
}

func TestAppendMode(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Open("/log", recorder.OCreat|recorder.OWronly, 0o644)
	p.Write(fd, []byte("first"))
	p.Close(fd)
	fd2, _ := p.Open("/log", recorder.OWronly|recorder.OAppend, 0)
	p.Write(fd2, []byte("+second"))
	p.Close(fd2)
	fd3, _ := p.Open("/log", recorder.ORdonly, 0)
	got, _ := p.Read(fd3, 100)
	if string(got) != "first+second" {
		t.Fatalf("append produced %q", got)
	}
}

func TestStdioStream(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, err := p.Fopen("/out.txt", "w")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := p.Fwrite(fd, []byte("abcdef"), 2, 3); err != nil || n != 3 {
		t.Fatalf("fwrite = %d, %v", n, err)
	}
	if err := p.Fflush(fd); err != nil {
		t.Fatal(err)
	}
	if pos, _ := p.Ftell(fd); pos != 6 {
		t.Fatalf("ftell = %d", pos)
	}
	if err := p.Fclose(fd); err != nil {
		t.Fatal(err)
	}
	rd, _ := p.Fopen("/out.txt", "r")
	got, err := p.Fread(rd, 1, 6)
	if err != nil || string(got) != "abcdef" {
		t.Fatalf("fread = %q, %v", got, err)
	}
	p.Fclose(rd)
}

func TestFopenModes(t *testing.T) {
	for mode, want := range map[string]int{
		"r":  recorder.ORdonly,
		"r+": recorder.ORdwr,
		"w":  recorder.OWronly | recorder.OCreat | recorder.OTrunc,
		"w+": recorder.ORdwr | recorder.OCreat | recorder.OTrunc,
		"a":  recorder.OWronly | recorder.OCreat | recorder.OAppend,
		"a+": recorder.ORdwr | recorder.OCreat | recorder.OAppend,
		"rb": recorder.ORdonly,
	} {
		got, err := fopenFlags(mode)
		if err != nil || got != want {
			t.Errorf("fopenFlags(%q) = %#x, %v; want %#x", mode, got, err, want)
		}
	}
	if _, err := fopenFlags("q"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestFwriteSizeMismatch(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Fopen("/f", "w")
	if _, err := p.Fwrite(fd, []byte("abc"), 2, 2); err == nil {
		t.Fatal("size*nmemb != len(data) should fail")
	}
}

func TestBadFDErrors(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	if _, err := p.Read(99, 1); err == nil {
		t.Fatal("read on bad fd should fail")
	}
	if _, err := p.Write(99, []byte("x")); err == nil {
		t.Fatal("write on bad fd should fail")
	}
	if err := p.Close(99); err == nil {
		t.Fatal("close on bad fd should fail")
	}
	if err := p.Fsync(99); err == nil {
		t.Fatal("fsync on bad fd should fail")
	}
}

func TestMetadataOpsEmitRecordsAndWork(t *testing.T) {
	p, tr := newProc(t, pfs.Strong)
	if err := p.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	fd, _ := p.Open("/d/f", recorder.OCreat|recorder.OWronly, 0o644)
	p.Write(fd, []byte("1234"))
	p.Close(fd)
	info, err := p.Stat("/d/f")
	if err != nil || info.Size != 4 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if _, err := p.Lstat("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := p.Access("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := p.Access("/d/missing"); err == nil {
		t.Fatal("access of missing file should fail")
	}
	if err := p.Rename("/d/f", "/d/g"); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlink("/d/g"); err != nil {
		t.Fatal(err)
	}
	if got := p.Getcwd(); got != "/" {
		t.Fatalf("getcwd = %q", got)
	}
	if err := p.Chdir("/d"); err != nil {
		t.Fatal(err)
	}
	if got := p.Getcwd(); got != "/d" {
		t.Fatalf("getcwd after chdir = %q", got)
	}
	// Relative path resolution against cwd.
	fd2, err := p.Open("rel", recorder.OCreat|recorder.OWronly, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	p.Close(fd2)
	if _, err := p.Stat("/d/rel"); err != nil {
		t.Fatal("relative open did not resolve against cwd")
	}

	seen := map[recorder.Func]bool{}
	for _, r := range tr.Records() {
		seen[r.Func] = true
	}
	for _, fn := range []recorder.Func{
		recorder.FuncMkdir, recorder.FuncStat, recorder.FuncLstat,
		recorder.FuncAccess, recorder.FuncRename, recorder.FuncUnlink,
		recorder.FuncGetcwd, recorder.FuncChdir,
	} {
		if !seen[fn] {
			t.Errorf("no trace record for %v", fn)
		}
	}
}

func TestFstatFtruncateDup(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Open("/f", recorder.OCreat|recorder.ORdwr, 0o644)
	p.Write(fd, make([]byte, 50))
	info, err := p.Fstat(fd)
	if err != nil || info.Size != 50 {
		t.Fatalf("fstat = %+v, %v", info, err)
	}
	if err := p.Ftruncate(fd, 10); err != nil {
		t.Fatal(err)
	}
	if info, _ = p.Fstat(fd); info.Size != 10 {
		t.Fatalf("size after ftruncate = %d", info.Size)
	}
	dup, err := p.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	if pth, _ := p.PathOf(dup); pth != "/f" {
		t.Fatalf("dup path = %q", pth)
	}
	if err := p.Fcntl(fd, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fileno(fd); err != nil {
		t.Fatal(err)
	}
	if got := p.Umask(0o077); got != 0o022 {
		t.Fatalf("umask returned %d", got)
	}
}

func TestTruncateByPath(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
	p.Write(fd, make([]byte, 100))
	p.Close(fd)
	if err := p.Truncate("/f", 25); err != nil {
		t.Fatal(err)
	}
	info, _ := p.Stat("/f")
	if info.Size != 25 {
		t.Fatalf("size after truncate = %d", info.Size)
	}
}

func TestClockAdvancesAndRecordsOrdered(t *testing.T) {
	p, tr := newProc(t, pfs.Strong)
	fd, _ := p.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
	p.Write(fd, make([]byte, 1000))
	p.Fsync(fd)
	p.Close(fd)
	if p.Clock().Now() == 0 {
		t.Fatal("clock did not advance")
	}
	recs := tr.Records()
	var prev uint64
	for i, r := range recs {
		if r.TStart < prev {
			t.Fatalf("record %d out of order", i)
		}
		if r.TEnd < r.TStart {
			t.Fatalf("record %d TEnd < TStart", i)
		}
		prev = r.TStart
	}
	// open, write, fsync, close
	if len(recs) != 4 {
		t.Fatalf("expected 4 records, got %d", len(recs))
	}
}

func TestFsyncPublishesUnderCommitSemantics(t *testing.T) {
	a, b := twoProcs(t, pfs.Commit)
	fda, _ := a.Open("/shared", recorder.OCreat|recorder.OWronly, 0o644)
	a.Write(fda, []byte("data"))
	fdb, _ := b.Open("/shared", recorder.ORdonly, 0)
	if got, _ := b.Read(fdb, 4); len(got) != 0 {
		t.Fatalf("uncommitted data visible: %q", got)
	}
	if err := a.Fsync(fda); err != nil {
		t.Fatal(err)
	}
	b.Lseek(fdb, 0, recorder.SeekSet)
	if got, _ := b.Read(fdb, 4); string(got) != "data" {
		t.Fatalf("committed data not visible: %q", got)
	}
}

func TestSessionSemanticsThroughPosix(t *testing.T) {
	a, b := twoProcs(t, pfs.Session)
	fda, _ := a.Open("/s", recorder.OCreat|recorder.OWronly, 0o644)
	a.Write(fda, []byte("xyz"))
	a.Close(fda)
	fdb, _ := b.Open("/s", recorder.ORdonly, 0)
	if got, _ := b.Read(fdb, 3); string(got) != "xyz" {
		t.Fatalf("close-to-open read = %q", got)
	}
}

func TestOpenRecordsArgs(t *testing.T) {
	p, tr := newProc(t, pfs.Strong)
	fd, _ := p.Open("/f", recorder.OCreat|recorder.OWronly, 0o600)
	rec := tr.Records()[0]
	if rec.Func != recorder.FuncOpen || rec.Path != "/f" {
		t.Fatalf("open record = %v", rec)
	}
	if rec.Arg(0) != int64(recorder.OCreat|recorder.OWronly) || rec.Arg(2) != int64(fd) {
		t.Fatalf("open args = %v", rec.Args)
	}
}
