package core

import (
	"testing"
)

func seqIv(rank int32, t uint64, os, n int64, write bool) Interval {
	return Interval{T: t, TEnd: t + 1, Rank: rank, Os: os, Oe: os + n, Write: write, Phase: -1}
}

func TestClassifyTransitions(t *testing.T) {
	a := seqIv(0, 1, 0, 100, true)
	cases := []struct {
		next Interval
		want AccessClass
	}{
		{seqIv(0, 2, 100, 50, true), Consecutive},
		{seqIv(0, 2, 150, 50, true), Monotonic},
		{seqIv(0, 2, 50, 50, true), Random}, // overlap
		{seqIv(0, 2, 0, 50, true), Random},  // rewind
	}
	for _, c := range cases {
		if got := classify(&a, &c.next); got != c.want {
			t.Errorf("classify(next at %d) = %v, want %v", c.next.Os, got, c.want)
		}
	}
}

func TestLocalVsGlobalPattern(t *testing.T) {
	// Two ranks each reading the file consecutively, interleaved in time —
	// the LBANN situation: local consecutive, global random.
	fa := &FileAccesses{Path: "/data"}
	for i := int64(0); i < 10; i++ {
		fa.Intervals = append(fa.Intervals,
			seqIv(0, uint64(10*i+1), i*100, 100, false),
			seqIv(1, uint64(10*i+2), i*100, 100, false),
		)
	}
	fas := []*FileAccesses{fa}
	local := LocalPattern(fas)
	if local.Consecutive != 18 || local.Random != 0 || local.Monotonic != 0 {
		t.Fatalf("local mix = %+v", local)
	}
	global := GlobalPattern(fas)
	if global.Random == 0 {
		t.Fatalf("global mix should contain random transitions: %+v", global)
	}
	lc, _, lr := local.Pct()
	if lc != 100 || lr != 0 {
		t.Fatalf("local pct = %v/%v", lc, lr)
	}
}

func TestPatternMixPct(t *testing.T) {
	m := PatternMix{Consecutive: 3, Monotonic: 1, Random: 0}
	c, mo, r := m.Pct()
	if c != 75 || mo != 25 || r != 0 {
		t.Fatalf("pct = %v %v %v", c, mo, r)
	}
	empty := PatternMix{}
	c, _, _ = empty.Pct()
	if c != 100 {
		t.Fatalf("empty mix should be 100%% consecutive, got %v", c)
	}
}

func hlFA(path string, ivs ...Interval) *FileAccesses {
	return &FileAccesses{Path: path, Intervals: ivs,
		OpensByRank: map[int32][]uint64{}, ClosesByRank: map[int32][]uint64{}, CommitsByRank: map[int32][]uint64{}}
}

func TestHighLevelFilePerProcess(t *testing.T) {
	// 4 ranks, 4 files, one writer each, concurrent → N-N consecutive.
	var fas []*FileAccesses
	for r := int32(0); r < 4; r++ {
		fas = append(fas, hlFA(
			"/ckpt.000"+string(rune('0'+r)),
			seqIv(r, 10, 0, 1024, true),
			seqIv(r, 20, 1024, 1024, true),
		))
	}
	ps := ClassifyHighLevel(fas, HLOptions{WorldSize: 4})
	if len(ps) != 1 {
		t.Fatalf("patterns = %+v", ps)
	}
	if ps[0].Key() != "N-N consecutive" {
		t.Fatalf("pattern = %q", ps[0].Key())
	}
}

func TestHighLevelSharedSingleFile(t *testing.T) {
	// All 4 ranks write disjoint strided segments of one file → N-1 strided.
	fa := hlFA("/shared.h5")
	for r := int32(0); r < 4; r++ {
		fa.Intervals = append(fa.Intervals,
			seqIv(r, uint64(10+r), int64(r)*1024, 1024, true),
			seqIv(r, uint64(20+r), 4096+int64(r)*1024, 1024, true),
		)
	}
	ps := ClassifyHighLevel([]*FileAccesses{fa}, HLOptions{WorldSize: 4})
	if len(ps) != 1 || ps[0].Key() != "N-1 strided" {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestHighLevelCheckpointSeriesIsX1(t *testing.T) {
	// Sequential series of shared files (FLASH checkpoints) → N-1, not N-M.
	var fas []*FileAccesses
	for f := 0; f < 3; f++ {
		fa := hlFA("/chk_000" + string(rune('0'+f)))
		base := uint64(1000 * f)
		for r := int32(0); r < 4; r++ {
			fa.Intervals = append(fa.Intervals,
				seqIv(r, base+uint64(r)+1, int64(r)*2048, 1024, true))
		}
		fas = append(fas, fa)
	}
	ps := ClassifyHighLevel(fas, HLOptions{WorldSize: 4})
	if len(ps) != 1 || ps[0].X != N || ps[0].Y != One {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestHighLevelConcurrentMultiFile(t *testing.T) {
	// MACSio shape: 4 ranks over 2 concurrent shared files → N-M.
	var fas []*FileAccesses
	for f := 0; f < 2; f++ {
		fa := hlFA("/dump.00" + string(rune('0'+f)) + ".silo")
		for g := int32(0); g < 2; g++ {
			r := int32(f)*2 + g
			fa.Intervals = append(fa.Intervals,
				seqIv(r, uint64(10+r), 512+int64(g)*1024, 1024, true),
				seqIv(r, uint64(20+r), 512+2048+int64(g)*1024, 1024, true))
		}
		fas = append(fas, fa)
	}
	ps := ClassifyHighLevel(fas, HLOptions{WorldSize: 4})
	if len(ps) != 1 || ps[0].X != N || ps[0].Y != M || ps[0].Layout != LayoutStrided {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestHighLevelReadOnlyUsesReaders(t *testing.T) {
	// LBANN shape: every rank reads the whole shared file → N-1 consecutive.
	fa := hlFA("/train.bin")
	for r := int32(0); r < 4; r++ {
		for i := int64(0); i < 4; i++ {
			fa.Intervals = append(fa.Intervals,
				seqIv(r, uint64(10+int(i)*4+int(r)), i*4096, 4096, false))
		}
	}
	ps := ClassifyHighLevel([]*FileAccesses{fa}, HLOptions{WorldSize: 4})
	if len(ps) != 1 || ps[0].Key() != "N-1 consecutive" {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestHighLevelRank0Only(t *testing.T) {
	fa := hlFA("/out.log",
		seqIv(0, 10, 0, 100, true),
		seqIv(0, 20, 100, 100, true))
	ps := ClassifyHighLevel([]*FileAccesses{fa}, HLOptions{WorldSize: 4})
	if len(ps) != 1 || ps[0].Key() != "1-1 consecutive" {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestHighLevelStridedCyclic(t *testing.T) {
	// A rank writing several non-adjacent blocks within one library phase
	// (block-cyclic collective buffering) → strided cyclic.
	fa := hlFA("/vpic.h5")
	for r := int32(0); r < 2; r++ {
		for blk := int64(0); blk < 3; blk++ {
			ivl := seqIv(r, uint64(10+r), (blk*2+int64(r))*1024, 1024, true)
			ivl.Phase = 5 // same enclosing collective call
			fa.Intervals = append(fa.Intervals, ivl)
		}
	}
	ps := ClassifyHighLevel([]*FileAccesses{fa}, HLOptions{WorldSize: 2})
	if len(ps) != 1 || ps[0].Layout != LayoutStridedCyclic {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestHighLevelExcludesInputs(t *testing.T) {
	fas := []*FileAccesses{
		hlFA("/in/config.txt", seqIv(0, 1, 0, 100, false)),
		hlFA("/out.dat", seqIv(0, 10, 0, 100, true)),
	}
	ps := ClassifyHighLevel(fas, HLOptions{WorldSize: 4})
	if len(ps) != 1 || len(ps[0].Files) != 1 || ps[0].Files[0] != "/out.dat" {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestHighLevelMetadataFiltered(t *testing.T) {
	// Small library-metadata writes must not demote a strided layout to
	// random.
	fa := hlFA("/chk.h5")
	for r := int32(0); r < 2; r++ {
		fa.Intervals = append(fa.Intervals,
			seqIv(r, uint64(10+r), 96, 272, true), // metadata, below threshold
			seqIv(r, uint64(20+r), 16384+int64(r)*4096, 4096, true),
			seqIv(r, uint64(30+r), 96, 272, true), // metadata again
			seqIv(r, uint64(40+r), 16384+8192+int64(r)*4096, 4096, true),
		)
	}
	ps := ClassifyHighLevel([]*FileAccesses{fa}, HLOptions{WorldSize: 2})
	if len(ps) != 1 || ps[0].Layout != LayoutStrided {
		t.Fatalf("patterns = %+v", ps)
	}
}

func TestScaleOf(t *testing.T) {
	if scaleOf(1, 64) != One || scaleOf(64, 64) != N || scaleOf(6, 64) != M || scaleOf(65, 64) != N {
		t.Fatal("scaleOf broken")
	}
}

func TestLayoutStrings(t *testing.T) {
	if LayoutConsecutive.String() != "consecutive" ||
		LayoutStrided.String() != "strided" ||
		LayoutStridedCyclic.String() != "strided cyclic" ||
		LayoutRandom.String() != "random" {
		t.Fatal("layout names broken")
	}
	if One.String() != "1" || M.String() != "M" || N.String() != "N" {
		t.Fatal("scale names broken")
	}
	p := HighLevelPattern{X: N, Y: One, Layout: LayoutStrided}
	if p.Key() != "N-1 strided" {
		t.Fatalf("Key() = %q", p.Key())
	}
}
