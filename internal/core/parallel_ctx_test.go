package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

func TestParallelForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ParallelForCtx(ctx, 100, workers, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d tasks ran under a cancelled context", workers, ran.Load())
		}
	}
}

func TestParallelForCtxStopsWithinTaskBoundary(t *testing.T) {
	const n, workers, cancelAt = 10_000, 4, 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	err := ParallelForCtx(ctx, n, workers, func(i int) {
		if ran.Add(1) == cancelAt {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// Each worker may have one task in flight when cancel fires; none may
	// start a new one afterwards.
	if got := ran.Load(); got > cancelAt+workers {
		t.Fatalf("%d tasks ran, want <= %d (one in-flight per worker)", got, cancelAt+workers)
	}
}

func TestParallelForCtxNilErrorRunsAll(t *testing.T) {
	var ran atomic.Int32
	if err := ParallelForCtx(context.Background(), 50, 4, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d/50 tasks", ran.Load())
	}
}

// synthTrace builds a deterministic multi-rank trace with shared and
// private files, small enough for unit tests but real enough that every
// analysis pass has work to cancel.
func synthTrace(ranks, filesPerRank int) *recorder.Trace {
	tr := &recorder.Trace{Meta: recorder.Meta{App: "ctx", Ranks: ranks},
		PerRank: make([][]recorder.Record, ranks)}
	for r := 0; r < ranks; r++ {
		var rs []recorder.Record
		ts := uint64(1)
		emit := func(fn recorder.Func, path string, args ...int64) {
			rs = append(rs, recorder.Record{Rank: int32(r), Layer: recorder.LayerPOSIX,
				Func: fn, TStart: ts, TEnd: ts + 1, Path: path, Args: args})
			ts += 2
		}
		for f := 0; f < filesPerRank; f++ {
			path := fmt.Sprintf("/pp/r%d.f%d", r, f)
			if f%2 == 0 {
				path = fmt.Sprintf("/shared/f%d", f)
			}
			fd := int64(100 + f)
			emit(recorder.FuncOpen, path, int64(recorder.OCreat|recorder.ORdwr), 0o644, fd)
			emit(recorder.FuncPwrite, "", fd, 64, int64(64*r), 64)
			emit(recorder.FuncClose, "", fd)
		}
		tr.PerRank[r] = rs
	}
	return tr
}

func TestAnalyzeParallelCtxCancelled(t *testing.T) {
	tr := synthTrace(8, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeParallelCtx(ctx, tr, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeParallelCtx err = %v, want Canceled", err)
	}
	if _, err := ExtractParallelCtx(ctx, tr, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExtractParallelCtx err = %v, want Canceled", err)
	}
	if _, _, err := ConflictsForFilesCtx(ctx, nil, pfs.Session, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("ConflictsForFilesCtx err = %v, want Canceled", err)
	}
	if _, err := MetadataCensusParallelCtx(ctx, tr, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("MetadataCensusParallelCtx err = %v, want Canceled", err)
	}
	if _, err := DetectMetadataConflictsParallelCtx(ctx, tr, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("DetectMetadataConflictsParallelCtx err = %v, want Canceled", err)
	}
	// And uncancelled Ctx calls agree with the plain entry points.
	want := AnalyzeParallel(tr, 4)
	got, err := AnalyzeParallelCtx(context.Background(), tr, 4)
	if err != nil || got != want {
		t.Fatalf("AnalyzeParallelCtx = %+v, %v; want %+v", got, err, want)
	}
}
