package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/harness"
)

// withExecute swaps the execute seam for the duration of a test.
func withExecute(t *testing.T, fn func(*apps.Config, apps.Options) (*harness.Result, error)) {
	t.Helper()
	old := execute
	execute = fn
	t.Cleanup(func() { execute = old })
}

// TestSweepIsolatesPanics pins the tentpole contract: a configuration whose
// execution panics becomes one per-configuration error while every other
// configuration still completes with a real trace.
func TestSweepIsolatesPanics(t *testing.T) {
	withExecute(t, func(cfg *apps.Config, opts apps.Options) (*harness.Result, error) {
		if cfg.App == "PanicApp" {
			panic("synthetic sweep panic")
		}
		return apps.Execute(cfg, opts)
	})
	cfgs := []*apps.Config{okConfig("OkOne"), okConfig("PanicApp"), okConfig("OkTwo")}
	for _, workers := range []int{1, 3} {
		r, err := runConfigsCtx(context.Background(), cfgs, TestScale(), SweepOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected a joined error", workers)
		}
		perr := r.Errs["PanicApp"]
		if perr == nil || !strings.Contains(perr.Error(), "panic: synthetic sweep panic") {
			t.Fatalf("workers=%d: PanicApp error = %v", workers, perr)
		}
		if !strings.Contains(perr.Error(), "PanicApp") {
			t.Fatalf("workers=%d: panic error not wrapped with config name: %v", workers, perr)
		}
		if len(r.Ordered) != 2 || r.Ordered[0] != "OkOne" || r.Ordered[1] != "OkTwo" {
			t.Fatalf("workers=%d: Ordered = %v", workers, r.Ordered)
		}
		for _, name := range r.Ordered {
			if r.ByName[name].Trace.NumRecords() == 0 {
				t.Errorf("workers=%d: %s has an empty trace", workers, name)
			}
		}
	}
}

// TestSweepCancellation: a context cancelled mid-sweep stops the pool at the
// next configuration boundary, and configurations that never started are
// reported as cancelled rather than silently missing.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withExecute(t, func(cfg *apps.Config, opts apps.Options) (*harness.Result, error) {
		if cfg.App == "CancelApp" {
			cancel()
		}
		return apps.Execute(cfg, opts)
	})
	cfgs := []*apps.Config{okConfig("CancelApp"), okConfig("OkOne"), okConfig("OkTwo")}
	r, err := runConfigsCtx(ctx, cfgs, TestScale(), SweepOptions{Workers: 1})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error = %v, want Canceled inside", err)
	}
	for _, name := range []string{"OkOne", "OkTwo"} {
		if e := r.Errs[name]; e == nil || !errors.Is(e, context.Canceled) {
			t.Fatalf("%s error = %v, want cancelled", name, e)
		}
		if !strings.Contains(r.Errs[name].Error(), name) {
			t.Fatalf("%s error not wrapped with config name: %v", name, r.Errs[name])
		}
	}

	// Pre-cancelled: nothing runs at all.
	pre, precancel := context.WithCancel(context.Background())
	precancel()
	r, err = runConfigsCtx(pre, []*apps.Config{okConfig("OkOne")}, TestScale(), SweepOptions{Workers: 2})
	if err == nil || len(r.Ordered) != 0 || !errors.Is(r.Errs["OkOne"], context.Canceled) {
		t.Fatalf("pre-cancelled sweep: Ordered=%v Errs=%v err=%v", r.Ordered, r.Errs, err)
	}
}

// TestSweepTaskTimeout: a hanging configuration is bounded by the per-task
// timeout while the rest of the sweep completes.
func TestSweepTaskTimeout(t *testing.T) {
	unblock := make(chan struct{})
	defer close(unblock)
	withExecute(t, func(cfg *apps.Config, opts apps.Options) (*harness.Result, error) {
		if cfg.App == "HangApp" {
			<-unblock
			return nil, errors.New("unblocked")
		}
		return apps.Execute(cfg, opts)
	})
	cfgs := []*apps.Config{okConfig("HangApp"), okConfig("OkOne")}
	r, err := runConfigsCtx(context.Background(), cfgs, TestScale(),
		SweepOptions{Workers: 2, TaskTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("expected a joined error from the timed-out cell")
	}
	herr := r.Errs["HangApp"]
	if herr == nil || !strings.Contains(herr.Error(), "timed out after") {
		t.Fatalf("HangApp error = %v, want timeout", herr)
	}
	if len(r.Ordered) != 1 || r.Ordered[0] != "OkOne" {
		t.Fatalf("Ordered = %v, want the surviving configuration", r.Ordered)
	}
}
