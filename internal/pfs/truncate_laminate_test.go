package pfs

// Edge cases of the Truncate/Laminate interaction: truncation is an
// immediate global metadata operation, lamination a publish-and-freeze —
// their ordering relative to buffered (pending) writes decides what data
// survives under commit/session semantics.

import (
	"bytes"
	"errors"
	"testing"
)

func TestTruncateThenLaminatePublishesClippedPending(t *testing.T) {
	fs := newFS(Commit)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 10)
	writeAll(t, h, 0, []byte("abcdef"), 20)
	// Truncate clips the caller's own buffer before it ever publishes.
	if _, err := h.Truncate(3); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := h.Laminate(30); err != nil {
		t.Fatalf("laminate: %v", err)
	}
	r := fs.NewClient(1, 0)
	hr := mustOpen(t, r, "/f", ORdonly, 40)
	if got := readAll(t, hr, 0, 10, 50); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("laminated content = %q, want %q", got, "abc")
	}
}

func TestLaminateThenTruncateRejected(t *testing.T) {
	fs := newFS(Commit)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 10)
	writeAll(t, h, 0, []byte("frozen"), 20)
	if _, err := h.Laminate(30); err != nil {
		t.Fatalf("laminate: %v", err)
	}
	if _, err := h.Truncate(2); !errors.Is(err, ErrLaminated) {
		t.Fatalf("truncate after laminate = %v, want ErrLaminated", err)
	}
	if got := readAll(t, h, 0, 10, 40); !bytes.Equal(got, []byte("frozen")) {
		t.Fatalf("laminated content changed: %q", got)
	}
}

func TestTruncateSparesOtherClientsPending(t *testing.T) {
	// Rank 1 truncates while rank 0 still holds buffered writes past the
	// cut: only published data and the *caller's* buffer are clipped, so
	// rank 0's later commit republishes beyond the truncation point.
	fs := newFS(Commit)
	a := fs.NewClient(0, 0)
	b := fs.NewClient(1, 0)
	ha := mustOpen(t, a, "/f", OCreat|ORdwr, 10)
	hb := mustOpen(t, b, "/f", ORdwr, 20)
	writeAll(t, ha, 0, []byte("abcdef"), 30)
	if _, err := hb.Truncate(2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := ha.Commit(40); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := readAll(t, hb, 0, 10, 50); !bytes.Equal(got, []byte("abcdef")) {
		t.Fatalf("read after remote commit = %q, want full %q", got, "abcdef")
	}
}

func TestTruncateVisibleImmediatelyInEveryModel(t *testing.T) {
	for _, sem := range AllSemantics() {
		t.Run(sem.String(), func(t *testing.T) {
			fs := newFS(sem)
			w := fs.NewClient(0, 0)
			r := fs.NewClient(1, 0)
			hw := mustOpen(t, w, "/f", OCreat|ORdwr, 10)
			writeAll(t, hw, 0, []byte("abcdef"), 20)
			if _, err := hw.Commit(30); err != nil {
				t.Fatalf("commit: %v", err)
			}
			if _, err := hw.Close(40); err != nil {
				t.Fatalf("close: %v", err)
			}
			// Reader's session starts after the close, so the data is
			// published and visible under every model...
			hr := mustOpen(t, r, "/f", ORdonly, 1_000_000_000)
			if got := readAll(t, hr, 0, 10, 1_000_000_000); !bytes.Equal(got, []byte("abcdef")) {
				t.Fatalf("pre-truncate read = %q", got)
			}
			// ...and the truncation through a fresh writer handle clips it
			// for the *existing* reader session at once — no commit, close,
			// or delay required (metadata path).
			hw2 := mustOpen(t, w, "/f", OWronly, 1_000_000_010)
			if _, err := hw2.Truncate(2); err != nil {
				t.Fatalf("truncate: %v", err)
			}
			if got := readAll(t, hr, 0, 10, 1_000_000_020); !bytes.Equal(got, []byte("ab")) {
				t.Fatalf("%v: post-truncate read = %q, want %q", sem, got, "ab")
			}
		})
	}
}

func TestTruncateExtendDoesNotMaterializeData(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 10)
	writeAll(t, h, 0, []byte("abc"), 20)
	if _, err := h.Truncate(100); err != nil {
		t.Fatalf("truncate extend: %v", err)
	}
	// Stat reflects the extended length; reads still stop at the last
	// extent (the extension is all hole, and holes past the data are not
	// served).
	info, _, err := fs.Stat("/f")
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if info.Size != 100 {
		t.Fatalf("size after extend = %d, want 100", info.Size)
	}
	if got := readAll(t, h, 0, 200, 30); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("read after extend = %q, want %q", got, "abc")
	}
}

func TestOTruncOpenSparesOtherClientsPending(t *testing.T) {
	// O_TRUNC discards published data and the *opener's* buffer; another
	// client's buffered writes survive and publish in full on close.
	fs := newFS(Session)
	a := fs.NewClient(0, 0)
	b := fs.NewClient(1, 0)
	ha := mustOpen(t, a, "/f", OCreat|ORdwr, 10)
	writeAll(t, ha, 0, []byte("survives"), 20)
	hb := mustOpen(t, b, "/f", ORdwr|OTrunc, 30)
	writeAll(t, hb, 0, []byte("gone"), 40)
	hb2 := mustOpen(t, b, "/f", ORdwr|OTrunc, 50) // b's own buffer is dropped
	if _, err := ha.Close(60); err != nil {
		t.Fatalf("close a: %v", err)
	}
	if _, err := hb2.Close(70); err != nil {
		t.Fatalf("close b: %v", err)
	}
	r := fs.NewClient(2, 0)
	hr := mustOpen(t, r, "/f", ORdonly, 80)
	if got := readAll(t, hr, 0, 20, 90); !bytes.Equal(got, []byte("survives")) {
		t.Fatalf("read = %q, want %q", got, "survives")
	}
}

func TestLaminateOverridesSessionSnapshotAfterTruncate(t *testing.T) {
	// A session reader whose snapshot predates both the truncate and the
	// lamination sees the final laminated content: truncation applies
	// immediately and lamination overrides the open-time snapshot.
	fs := newFS(Session)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/f", OCreat|ORdwr, 10)
	writeAll(t, hw, 0, []byte("aaaa"), 20)
	if _, err := hw.Close(30); err != nil {
		t.Fatalf("close: %v", err)
	}
	hw = mustOpen(t, w, "/f", ORdwr, 40)
	hr := mustOpen(t, r, "/f", ORdonly, 50) // snapshot: "aaaa"
	if _, err := hw.Truncate(2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	writeAll(t, hw, 4, []byte("bbbb"), 60) // buffered after the cut
	if _, err := hw.Laminate(70); err != nil {
		t.Fatalf("laminate: %v", err)
	}
	want := append([]byte("aa"), 0, 0, 'b', 'b', 'b', 'b')
	if got := readAll(t, hr, 0, 20, 80); !bytes.Equal(got, want) {
		t.Fatalf("pre-existing session read = %q, want %q", got, want)
	}
}
