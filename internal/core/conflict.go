package core

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

// ConflictKind distinguishes the paper's two hazard classes.
type ConflictKind int

const (
	RAW ConflictKind = iota // read-after-write
	WAW                     // write-after-write
)

func (k ConflictKind) String() string {
	if k == RAW {
		return "RAW"
	}
	return "WAW"
}

// Conflict is one detected conflicting access pair: the earlier operation is
// always a write; the pair would produce a wrong result under the given
// consistency model unless the PFS orders it (same-process pairs are ordered
// correctly by every PFS in the study except BurstFS; see §6.3).
type Conflict struct {
	Path        string
	Kind        ConflictKind
	SameProcess bool
	First       Interval
	Second      Interval
}

func (c Conflict) String() string {
	sd := "D"
	if c.SameProcess {
		sd = "S"
	}
	return fmt.Sprintf("%s-%s %s [%d,%d)@r%d t=%d -> [%d,%d)@r%d t=%d",
		c.Kind, sd, c.Path,
		c.First.Os, c.First.Oe, c.First.Rank, c.First.T,
		c.Second.Os, c.Second.Oe, c.Second.Rank, c.Second.T)
}

// MaxConflictsPerFile caps the conflicts materialized for one (file, model)
// pair — the write-side counterpart of the read-read suppression in
// DetectOverlaps. A write-heavy overlap storm (every write overlapping every
// write) would otherwise materialize a quadratic pair list; past the cap,
// further conflicts are dropped and tallied in the
// core.conflicts.suppressed counter, EXCEPT that the first conflict of each
// of the four Table 4 classes is always kept, so Signature (and therefore
// every Verdict) is exact even on truncated lists. Set it before analysis
// starts; it is read concurrently by the parallel passes.
var MaxConflictsPerFile = 1 << 20

// conflictAppender accumulates one (file, model) conflict list under
// MaxConflictsPerFile, preserving class coverage (see the cap's doc).
type conflictAppender struct {
	out        []Conflict
	classes    uint8 // bitmask of materialized Table 4 classes
	suppressed int64
	max        int
}

func classBit(kind ConflictKind, same bool) uint8 {
	bit := uint8(1) << (uint(kind) * 2)
	if same {
		bit <<= 1
	}
	return bit
}

func (a *conflictAppender) add(c Conflict) {
	bit := classBit(c.Kind, c.SameProcess)
	if len(a.out) >= a.max && a.classes&bit != 0 {
		a.suppressed++
		return
	}
	a.classes |= bit
	a.out = append(a.out, c)
}

// sortConflicts imposes the report order shared by the per-model and fused
// paths: entry time of the first operation, then of the second. The sort is
// stable, so timestamp ties keep the deterministic sweep emission order —
// which is what makes the fused pass byte-identical to the per-model one.
func sortConflicts(cs []Conflict) {
	slices.SortStableFunc(cs, func(a, b Conflict) int {
		switch {
		case a.First.T != b.First.T:
			if a.First.T < b.First.T {
				return -1
			}
			return 1
		case a.Second.T != b.Second.T:
			if a.Second.T < b.Second.T {
				return -1
			}
			return 1
		default:
			return 0
		}
	})
}

// conflictUnder evaluates one model's conflict predicate (§5.2) for a
// time-ordered candidate pair — the shared core of DetectConflicts and the
// fused DetectConflictsMulti:
//
//	(1) the pair overlaps,
//	(2) the earlier operation is a write,
//	(3) commit semantics: the writer executes no commit operation between
//	    the two operations,
//	(4) session semantics: there is no close by the writer followed by an
//	    open by the second process, both between the two operations.
func conflictUnder(fa *FileAccesses, model pfs.Semantics, first, second *Interval) bool {
	switch model {
	case pfs.Commit:
		// Condition (3): first commit by the writer after t1 must come
		// before t2, otherwise the pair conflicts.
		return first.TcCommit == NoTime || first.TcCommit >= second.T
	case pfs.Session:
		return !sessionOrdered(fa, first, second)
	case pfs.Eventual:
		return true
	}
	return false
}

// DetectConflicts finds the conflicting access pairs of one file under the
// given consistency model (§5.2; see conflictUnder for the conditions).
// Under strong semantics no pairs conflict (the PFS serializes them), and
// under eventual semantics every candidate pair conflicts (no operation
// bounds the propagation delay).
func DetectConflicts(fa *FileAccesses, model pfs.Semantics) []Conflict {
	if model == pfs.Strong {
		return nil
	}
	app := conflictAppender{max: MaxConflictsPerFile}
	sweepOverlaps(fa.Intervals, false, func(p OverlapPair) {
		first, second := &fa.Intervals[p.A], &fa.Intervals[p.B]
		if conflictUnder(fa, model, first, second) {
			app.add(Conflict{
				Path:        fa.Path,
				Kind:        kindOf(second),
				SameProcess: first.Rank == second.Rank,
				First:       *first,
				Second:      *second,
			})
		}
	})
	if app.suppressed > 0 {
		conflictsSuppressed.Add(app.suppressed)
	}
	sortConflicts(app.out)
	return app.out
}

func kindOf(second *Interval) ConflictKind {
	if second.Write {
		return WAW
	}
	return RAW
}

// sessionOrdered reports whether condition (4) holds: a close by the
// writer's process at tc and an open by the reader's process at to exist
// with t1 < tc < to < t2.
func sessionOrdered(fa *FileAccesses, first, second *Interval) bool {
	tc := firstAfter(fa.ClosesByRank[first.Rank], first.T)
	if tc == NoTime || tc >= second.T {
		return false
	}
	// An open by the second process strictly inside (tc, t2)?
	opens := fa.OpensByRank[second.Rank]
	idx := sort.Search(len(opens), func(i int) bool { return opens[i] > tc })
	return idx < len(opens) && opens[idx] < second.T
}

// ConflictSignature is one row of Table 4: which of the four potential
// conflict classes (§4.1) an application exhibits.
type ConflictSignature struct {
	WAWSame, WAWDiff bool
	RAWSame, RAWDiff bool
}

// Any reports whether any conflict class is present.
func (s ConflictSignature) Any() bool {
	return s.WAWSame || s.WAWDiff || s.RAWSame || s.RAWDiff
}

// HasDifferentProcess reports whether a cross-process conflict is present —
// the class that actually breaks applications on weak-semantics PFSs (§6.3).
func (s ConflictSignature) HasDifferentProcess() bool {
	return s.WAWDiff || s.RAWDiff
}

// merge ORs another signature into s (class presence is monotone, so the
// per-file merge order is immaterial).
func (s *ConflictSignature) merge(o ConflictSignature) {
	s.WAWSame = s.WAWSame || o.WAWSame
	s.WAWDiff = s.WAWDiff || o.WAWDiff
	s.RAWSame = s.RAWSame || o.RAWSame
	s.RAWDiff = s.RAWDiff || o.RAWDiff
}

// Signature aggregates conflicts into a Table 4 row.
func Signature(conflicts []Conflict) ConflictSignature {
	var s ConflictSignature
	for _, c := range conflicts {
		switch {
		case c.Kind == WAW && c.SameProcess:
			s.WAWSame = true
		case c.Kind == WAW:
			s.WAWDiff = true
		case c.Kind == RAW && c.SameProcess:
			s.RAWSame = true
		default:
			s.RAWDiff = true
		}
	}
	return s
}

// ConflictsOverFiles runs per-file conflict detection for one model over
// already-extracted accesses, serially — the per-model reference the fused
// engine is equivalence-tested against. Files without conflicts are omitted
// from the map.
func ConflictsOverFiles(fas []*FileAccesses, model pfs.Semantics) (map[string][]Conflict, ConflictSignature) {
	byFile := make(map[string][]Conflict)
	var sig ConflictSignature
	for _, fa := range fas {
		cs := DetectConflicts(fa, model)
		if len(cs) > 0 {
			byFile[fa.Path] = cs
			sig.merge(Signature(cs))
		}
	}
	return byFile, sig
}

// AnalyzeConflicts runs extraction and conflict detection over a whole
// trace for one model, returning conflicts per file (files without
// conflicts omitted) and the aggregate signature. This is the per-model
// oracle path: it extracts for itself (no cache) and sweeps once per model,
// exactly as the paper's Algorithm 1 + §5.2 describe. Production callers
// use AnalyzeConflictsAll, which shares one extraction and one sweep across
// models.
func AnalyzeConflicts(tr *recorder.Trace, model pfs.Semantics) (map[string][]Conflict, ConflictSignature) {
	return ConflictsOverFiles(Extract(tr), model)
}

// Verdict is the paper's bottom line for one application (§6.3): the
// weakest consistency model under which it runs correctly, given that
// same-process conflicts are handled by any PFS with per-process ordering.
type Verdict struct {
	Session ConflictSignature
	Commit  ConflictSignature
	// Weakest is the weakest model with no cross-process conflicts.
	Weakest pfs.Semantics
	// NeedsPerProcessOrdering is set when same-process conflicts exist, in
	// which case PFSs without per-process ordering (BurstFS) are unsafe
	// even at the Weakest level.
	NeedsPerProcessOrdering bool
}

// Analyze computes the full verdict for a trace, through the fused engine:
// one (cached) extraction, one sweep evaluating both models.
func Analyze(tr *recorder.Trace) Verdict {
	ms := AnalyzeConflictsAll(tr, pfs.Session, pfs.Commit)
	return VerdictFrom(ms[0].Signature, ms[1].Signature)
}

// VerdictFrom derives the §6.3 verdict from the two model signatures — the
// shared tail of the serial and parallel analysis paths.
func VerdictFrom(session, commit ConflictSignature) Verdict {
	v := Verdict{Session: session, Commit: commit}
	switch {
	case !session.HasDifferentProcess():
		v.Weakest = pfs.Session
	case !commit.HasDifferentProcess():
		v.Weakest = pfs.Commit
	default:
		v.Weakest = pfs.Strong
	}
	v.NeedsPerProcessOrdering = session.WAWSame || session.RAWSame ||
		commit.WAWSame || commit.RAWSame
	return v
}
