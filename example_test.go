package semfs_test

import (
	"fmt"
	"log"

	semfs "repro"
)

// Running an application emulator and asking the paper's question: what is
// the weakest PFS consistency model it can run on?
func ExampleRun() {
	res, err := semfs.Run("LAMMPS-ADIOS", semfs.RunOptions{Ranks: 16, PPN: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	an := semfs.Analyze(res.Trace)
	fmt.Println("weakest sufficient model:", an.Verdict.Weakest)
	fmt.Println("same-process WAW conflict:", an.Verdict.Session.WAWSame)
	fmt.Println("cross-process conflicts:", an.Verdict.Session.HasDifferentProcess())
	// Output:
	// weakest sufficient model: session
	// same-process WAW conflict: true
	// cross-process conflicts: false
}

// The FLASH result of Table 4: conflicts under session semantics that
// disappear under commit semantics.
func ExampleAnalyze() {
	res, err := semfs.Run("FLASH-nofbs", semfs.RunOptions{Ranks: 16, PPN: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	an := semfs.Analyze(res.Trace)
	fmt.Println("session WAW-D:", an.Verdict.Session.WAWDiff)
	fmt.Println("commit WAW-D:", an.Verdict.Commit.WAWDiff)
	fmt.Println("weakest sufficient model:", an.Verdict.Weakest)
	// Output:
	// session WAW-D: true
	// commit WAW-D: false
	// weakest sufficient model: commit
}

// Tracing a custom I/O protocol with the same analysis.
func ExampleRunCustom() {
	res, err := semfs.RunCustom("two-phase", semfs.RunOptions{Ranks: 4, PPN: 2},
		func(ctx *semfs.Ctx) error {
			fd, err := ctx.OS.Open("/out", 0x40|0x1, 0o644) // O_CREAT|O_WRONLY
			if err != nil {
				return err
			}
			for seg := int64(0); seg < 2; seg++ {
				off := seg*4*1024 + int64(ctx.Rank)*1024
				if _, err := ctx.OS.Pwrite(fd, make([]byte, 1024), off); err != nil {
					return err
				}
			}
			return ctx.OS.Close(fd)
		})
	if err != nil {
		log.Fatal(err)
	}
	an := semfs.Analyze(res.Trace)
	fmt.Println("conflicts:", an.Verdict.Session.Any())
	fmt.Println("pattern:", an.Patterns[0].Key())
	// Output:
	// conflicts: false
	// pattern: N-1 strided
}
