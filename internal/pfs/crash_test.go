package pfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// Failure injection: a process dying before its commit loses exactly the
// data the relaxed models buffer — the durability consequence of commit
// semantics that motivates fsync-per-checkpoint protocols. Under strong
// semantics (publish-on-write) the same crash loses nothing.

func TestCrashLosesUncommittedWrites(t *testing.T) {
	fs := newFS(Commit)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	h := mustOpen(t, w, "/ckpt", OCreat|OWronly, 10)
	writeAll(t, h, 0, []byte("saved"), 20)
	if _, err := h.Commit(30); err != nil { // fsync: first half durable
		t.Fatal(err)
	}
	writeAll(t, h, 5, []byte("-lost"), 40) // never committed
	w.Crash()

	hr := mustOpen(t, r, "/ckpt", ORdonly, 50)
	got := readAll(t, hr, 0, 10, 60)
	if !bytes.Equal(got, []byte("saved")) {
		t.Fatalf("post-crash content = %q, want only the committed prefix", got)
	}
	// The crashed client's handles are dead.
	if _, err := h.Write(0, []byte("x"), 70); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if !w.Crashed() {
		t.Fatal("Crashed() false")
	}
}

func TestCrashUnderStrongLosesNothing(t *testing.T) {
	fs := newFS(Strong)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	h := mustOpen(t, w, "/ckpt", OCreat|OWronly, 10)
	writeAll(t, h, 0, []byte("published"), 20)
	w.Crash() // publish-on-write: nothing pending to lose
	hr := mustOpen(t, r, "/ckpt", ORdonly, 30)
	if got := readAll(t, hr, 0, 9, 40); !bytes.Equal(got, []byte("published")) {
		t.Fatalf("strong semantics lost data at crash: %q", got)
	}
}

func TestCrashUnderSessionLosesWholeOpenSession(t *testing.T) {
	fs := newFS(Session)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	h := mustOpen(t, w, "/ckpt", OCreat|OWronly, 10)
	writeAll(t, h, 0, []byte("everything"), 20)
	// fsync does not publish under session semantics — the whole session's
	// data is gone if the process dies before close.
	if _, err := h.Commit(30); err != nil {
		t.Fatal(err)
	}
	w.Crash()
	hr := mustOpen(t, r, "/ckpt", ORdonly, 40)
	if got := readAll(t, hr, 0, 10, 50); len(got) != 0 {
		t.Fatalf("session semantics surfaced uncloseable data after crash: %q", got)
	}
}

func TestCrashDoesNotAffectOtherClients(t *testing.T) {
	fs := newFS(Commit)
	a := fs.NewClient(0, 0)
	b := fs.NewClient(1, 0)
	ha := mustOpen(t, a, "/a", OCreat|OWronly, 10)
	hb := mustOpen(t, b, "/b", OCreat|OWronly, 10)
	writeAll(t, ha, 0, []byte("a"), 20)
	writeAll(t, hb, 0, []byte("b"), 20)
	a.Crash()
	if _, err := hb.Commit(30); err != nil {
		t.Fatal(err)
	}
	r := fs.NewClient(2, 0)
	hr := mustOpen(t, r, "/b", ORdonly, 40)
	if got := readAll(t, hr, 0, 1, 50); !bytes.Equal(got, []byte("b")) {
		t.Fatalf("survivor's data affected by peer crash: %q", got)
	}
}

// TestCrashMatrix drives the full crash-visibility matrix: every crash point
// × every consistency model × both reader-open timings. Each cell asserts
// whether the writer's data survives the crash from that reader's point of
// view — the table is the paper's semantics taxonomy restated as a
// durability contract.
//
// Timeline per cell: writer opens at t=10, writes "DATA" at t=20, reaches
// the crash point at t=30, dies. The early reader already holds the file
// open at t=15; the late reader opens at t=100ms (past the eventual-model
// propagation delay), and both read well after it.
func TestCrashMatrix(t *testing.T) {
	const payload = "DATA"
	const (
		beforeCommit = iota // write buffered, process dies before any fsync
		afterFsync          // fsync completed, process dies before close
		afterClose          // clean close, then the process dies
	)
	pointName := [...]string{"before-commit", "after-fsync", "after-close"}

	// visible[point] for a reader that opens AFTER the crash.
	openAfter := map[Semantics][3]bool{
		Strong:   {true, true, true},   // publish-on-write: a crash loses nothing
		Commit:   {false, true, true},  // exactly the fsynced/closed data survives
		Session:  {false, false, true}, // fsync is not a publish; only close is
		Eventual: {true, true, true},   // published at write, visible after delay
	}
	// visible[point] for a reader that was ALREADY holding the file open.
	openBefore := map[Semantics][3]bool{
		Strong:   {true, true, true},
		Commit:   {false, true, true},   // no read-side filtering once published
		Session:  {false, false, false}, // close-to-open: a stale handle never sees it
		Eventual: {true, true, true},    // visibility is time-based, not open-based
	}

	for _, sem := range []Semantics{Strong, Commit, Session, Eventual} {
		for p := beforeCommit; p <= afterClose; p++ {
			for _, early := range []bool{false, true} {
				timing, want := "open-after", openAfter[sem][p]
				if early {
					timing, want = "open-before", openBefore[sem][p]
				}
				t.Run(fmt.Sprintf("%s/%s/%s", sem, pointName[p], timing), func(t *testing.T) {
					fs := newFS(sem)
					w := fs.NewClient(0, 0)
					r := fs.NewClient(1, 1)
					h := mustOpen(t, w, "/m", OCreat|OWronly, 10)
					var hr *Handle
					if early {
						hr = mustOpen(t, r, "/m", ORdonly, 15)
					}
					writeAll(t, h, 0, []byte(payload), 20)
					switch p {
					case afterFsync:
						if _, err := h.Commit(30); err != nil {
							t.Fatal(err)
						}
					case afterClose:
						if _, err := h.Close(30); err != nil {
							t.Fatal(err)
						}
					}
					w.Crash()
					if !early {
						hr = mustOpen(t, r, "/m", ORdonly, 100_000_000)
					}
					got := readAll(t, hr, 0, int64(len(payload)), 200_000_000)
					if want && !bytes.Equal(got, []byte(payload)) {
						t.Fatalf("read %q, want %q to survive the crash", got, payload)
					}
					if !want && len(got) != 0 {
						t.Fatalf("read %q, want the crash to lose it", got)
					}
				})
			}
		}
	}
}
