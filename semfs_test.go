package semfs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/recorder"
	"repro/internal/recorder/colfmt"
)

func TestApplicationsList(t *testing.T) {
	names := Applications()
	if len(names) != 25 {
		t.Fatalf("Applications() has %d entries, want 25", len(names))
	}
	desc, err := Describe("FLASH-fbs")
	if err != nil || desc == "" {
		t.Fatalf("Describe: %q, %v", desc, err)
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("Describe of unknown app should fail")
	}
}

func TestRunAndAnalyzeEndToEnd(t *testing.T) {
	res, err := Run("NWChem", RunOptions{Ranks: 8, PPN: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	an := Analyze(res.Trace)
	if an.Verdict.Weakest != Session {
		t.Fatalf("NWChem weakest = %v, want session", an.Verdict.Weakest)
	}
	if !an.Verdict.Session.WAWSame || !an.Verdict.Session.RAWSame {
		t.Fatalf("NWChem session signature = %+v", an.Verdict.Session)
	}
	if len(an.Patterns) == 0 || an.Census.Total() == 0 {
		t.Fatal("analysis incomplete")
	}
	if _, ok := an.SessionConflicts["/md.trj"]; !ok {
		t.Fatalf("trajectory conflicts missing: %v", an.SessionConflicts)
	}
}

func TestRunUnknownApp(t *testing.T) {
	if _, err := Run("NoSuchApp", RunOptions{}); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestTraceRoundTripThroughDisk(t *testing.T) {
	res, err := Run("GTC", RunOptions{Ranks: 4, PPN: 2})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	dir := filepath.Join(t.TempDir(), "trace")
	if err := SaveTrace(dir, res.Trace); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != res.Trace.NumRecords() {
		t.Fatalf("records %d != %d after round trip", got.NumRecords(), res.Trace.NumRecords())
	}
	// The loaded trace analyzes identically.
	a1, a2 := Analyze(res.Trace), Analyze(got)
	if a1.Verdict != a2.Verdict {
		t.Fatalf("verdicts differ after disk round trip: %+v vs %+v", a1.Verdict, a2.Verdict)
	}
}

func TestValidateSynchronization(t *testing.T) {
	res, err := Run("FLASH-nofbs", RunOptions{Ranks: 8, PPN: 2})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	unordered, err := ValidateSynchronization(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(unordered) != 0 {
		t.Fatalf("FLASH conflicts not synchronized: %v", unordered[0])
	}
}

func TestReportFacade(t *testing.T) {
	res, err := Run("GAMESS", RunOptions{Ranks: 8, PPN: 2})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	rep := Report(res.Trace)
	if rep.Config != "GAMESS" || rep.BytesWritten == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if out := rep.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestAnalyzeMetadataDependencies(t *testing.T) {
	res, err := Run("MACSio-Silo", RunOptions{Ranks: 8, PPN: 2})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	an := Analyze(res.Trace)
	if !an.MetaSignature.CreateUse || len(an.MetaConflicts) == 0 {
		t.Fatalf("MACSio metadata dependencies missing: %+v", an.MetaSignature)
	}
}

func TestRunCustomBody(t *testing.T) {
	res, err := RunCustom("demo", RunOptions{Ranks: 2}, func(ctx *Ctx) error {
		fd, err := ctx.OS.Open("/x", recorder.OCreat|recorder.OWronly, 0o644)
		if err != nil {
			return err
		}
		if _, err := ctx.OS.Pwrite(fd, make([]byte, 16), int64(ctx.Rank)*16); err != nil {
			return err
		}
		return ctx.OS.Close(fd)
	})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	an := Analyze(res.Trace)
	if an.Verdict.Session.Any() {
		t.Fatalf("disjoint writes produced conflicts: %+v", an.Verdict.Session)
	}
}

func TestVerifyOnSessionPFSDetectsFlash(t *testing.T) {
	res, err := Run("FLASH-nofbs", RunOptions{Ranks: 8, PPN: 2, Semantics: Session, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("FLASH should corrupt on a session-semantics PFS")
	}
	res2, err := Run("FLASH-nofbs", RunOptions{Ranks: 8, PPN: 2, Semantics: Commit, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Err() != nil {
		t.Fatalf("FLASH should run clean on commit semantics: %v", res2.Err())
	}
}

func TestAnalyzeParallelCtxCancelledAndLenientLoad(t *testing.T) {
	res, err := Run("GTC", RunOptions{Ranks: 4, PPN: 2})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if an, err := AnalyzeParallelCtx(ctx, res.Trace, 4); !errors.Is(err, context.Canceled) || an != nil {
		t.Fatalf("cancelled AnalyzeParallelCtx: %v, %v", an, err)
	}
	an, err := AnalyzeParallelCtx(context.Background(), res.Trace, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := Analyze(res.Trace); an.Verdict != want.Verdict {
		t.Fatalf("ctx analysis verdict %+v != serial %+v", an.Verdict, want.Verdict)
	}

	// A trace with one truncated rank stream still loads and analyzes in
	// degraded mode, with the loss accounted for.
	dir := filepath.Join(t.TempDir(), "trace")
	if err := SaveTrace(dir, res.Trace); err != nil {
		t.Fatal(err)
	}
	// Columnar salvage is block-granular, so re-encode rank 3 with small
	// blocks before tearing its tail — a half cut then leaves whole blocks
	// to recover instead of killing the rank's only block.
	streamPath := filepath.Join(dir, "rank_00003.rec")
	var enc bytes.Buffer
	if err := colfmt.EncodeStream(&enc, 3, res.Trace.PerRank[3], colfmt.EncodeOptions{BlockRecords: 8}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(streamPath, enc.Bytes()[:enc.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, sal, err := LoadTraceLenient(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sal.Degraded() || sal.Truncated != 1 || sal.Salvaged == 0 {
		t.Fatalf("salvage report: %v", sal)
	}
	if got.NumRecords() >= res.Trace.NumRecords() || got.NumRecords() == 0 {
		t.Fatalf("degraded trace has %d records, original %d", got.NumRecords(), res.Trace.NumRecords())
	}
	if da := Analyze(got); da.Census.Total() == 0 {
		t.Fatal("degraded trace did not analyze")
	}
}
