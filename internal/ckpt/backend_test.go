package ckpt

import (
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
)

func objStore(t *testing.T) storage.Backend {
	t.Helper()
	return storage.NewObjStore(storage.ObjStoreOptions{
		Root:            t.TempDir(),
		VisibilityDelay: 2 * time.Millisecond,
	})
}

// TestOpenOnObjStore: the full ckpt lifecycle — open, append, close, resume
// — over the eventually-consistent backend. OpenOn settles the visibility
// horizon, so resume must see every committed key.
func TestOpenOnObjStore(t *testing.T) {
	b := objStore(t)
	m := Manifest{Kind: "objstore.test", Ranks: 2, Params: "x=1"}
	s, err := OpenOn(b, "ckpt", m)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range []struct{ k, v string }{{"a", "1"}, {"b", "2"}, {"a", "3"}} {
		if err := s.Append(kv.k, []byte(kv.v)); err != nil {
			t.Fatalf("append %s: %v", kv.k, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenOn(b, "ckpt", m)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer r.Close()
	if got := r.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("resumed keys = %v", got)
	}
	if blob, ok := r.Lookup("a"); !ok || string(blob) != "3" {
		t.Fatalf(`resumed a = %q, %v (want "3" — last wins)`, blob, ok)
	}
	// Wrong manifest still refuses, same as on osdisk.
	if _, err := OpenOn(b, "ckpt", Manifest{Kind: "other"}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("mismatched manifest: err = %v, want ErrMismatch", err)
	}
}

// fastRetry wraps b with the policy layer configured for tests: no real
// sleeping, default attempt budget.
func fastRetry(b storage.Backend) storage.Backend {
	return storage.NewRetry(b, storage.RetryOptions{Sleep: func(time.Duration) {}})
}

// TestOpenOnPersistentFailureIsConfigError: a backend that is wedged from
// (nearly) the start exhausts the retry policy during OpenOn, and ckpt
// demotes that to ErrBackendConfig — the sweep refuses to start rather than
// half-run against a store it cannot commit to.
func TestOpenOnPersistentFailureIsConfigError(t *testing.T) {
	b := fastRetry(storage.NewFlaky(storage.OS(), storage.Schedule{WedgeAfter: 1}))
	_, err := OpenOn(b, t.TempDir(), Manifest{Kind: "doomed"})
	if !errors.Is(err, ErrBackendConfig) {
		t.Fatalf("OpenOn on wedged backend: err = %v, want ErrBackendConfig", err)
	}
}

// TestAppendPersistentFailureIsConfigError: the backend wedges after the
// store opened successfully; the failing Append surfaces ErrBackendConfig,
// not a bare storage error.
func TestAppendPersistentFailureIsConfigError(t *testing.T) {
	// OpenOn costs 3 eligible ops (manifest write+sync+rename) and one
	// append costs 3 more (two framed writes + fsync); wedging after 6 lets
	// exactly one append commit before the store dies.
	b := fastRetry(storage.NewFlaky(storage.OS(), storage.Schedule{WedgeAfter: 6}))
	s, err := OpenOn(b, t.TempDir(), Manifest{Kind: "wedge.mid"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if err := s.Append("ok", []byte("committed")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err = s.Append("doomed", []byte("never"))
	if !errors.Is(err, ErrBackendConfig) {
		t.Fatalf("append on wedged backend: err = %v, want ErrBackendConfig", err)
	}
	if !errors.Is(err, storage.ErrUnavailable) {
		t.Fatalf("config error should preserve the ErrUnavailable cause: %v", err)
	}
}

// TestTransientOnlyScheduleCommitsCleanly: with a transient-only fault
// schedule under the retry policy, every ckpt operation converges — no
// error, no health degradation, schedule verified to have actually fired.
func TestTransientOnlyScheduleCommitsCleanly(t *testing.T) {
	sched := storage.GenSchedule(11, storage.GenOptions{
		Count: 6,
		Kinds: []storage.FaultKind{storage.FaultTransient, storage.FaultRenameFail},
	})
	if !sched.TransientOnly() {
		t.Fatalf("schedule not transient-only:\n%s", sched.Encode())
	}
	b := fastRetry(storage.NewFlaky(storage.OS(), sched))
	dir := t.TempDir()
	m := Manifest{Kind: "flaky.transient"}
	s, err := OpenOn(b, dir, m)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Append("k", []byte{byte(i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !storage.Health(b) {
		t.Fatal("transient-only schedule degraded the backend")
	}
	keys, stats, err := ReadJournalOn(b, dir)
	if err != nil || len(keys) != 1 || stats.Records != 8 {
		t.Fatalf("readback: keys=%v stats=%+v err=%v", keys, stats, err)
	}
}
