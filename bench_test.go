package semfs

// Benchmarks, one per table and figure of the paper plus ablations for the
// design choices DESIGN.md calls out. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers measure this reproduction's simulator, not the paper's
// testbed; the claims are the shapes (who wins, what scales how) — see
// EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// benchScale keeps full-registry benchmarks affordable.
var benchScale = experiments.Scale{Ranks: 16, PPN: 2, Seed: 1}

var (
	benchOnce    sync.Once
	benchResults *experiments.Results
	benchErr     error
	benchSink    int
)

func allResults(b *testing.B) *experiments.Results {
	b.Helper()
	benchOnce.Do(func() {
		benchResults, benchErr = experiments.RunAll(benchScale)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchResults
}

// BenchmarkTable1SemanticsModels measures the four consistency models'
// write+publish+read path (the mechanism behind Table 1's categorization).
func BenchmarkTable1SemanticsModels(b *testing.B) {
	for _, sem := range pfs.AllSemantics() {
		b.Run(sem.String(), func(b *testing.B) {
			fs := pfs.New(pfs.Options{Semantics: sem})
			w := fs.NewClient(0, 0)
			r := fs.NewClient(1, 0)
			hw, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := uint64(i + 10)
				if _, err := hw.Write(int64(i%64)*4096, buf, now); err != nil {
					b.Fatal(err)
				}
				if _, err := hw.Commit(now); err != nil {
					b.Fatal(err)
				}
				hr, _, err := r.Open("/f", pfs.ORdonly, now)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := hr.Read(int64(i%64)*4096, 4096, now); err != nil {
					b.Fatal(err)
				}
				if _, err := hr.Close(now); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3HighLevelPatterns regenerates the Table 3 classification
// for all 25 configurations.
func BenchmarkTable3HighLevelPatterns(b *testing.B) {
	res := allResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiments.Table3(res)
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4ConflictDetection regenerates the Table 4 conflict
// signatures (session + commit) for all 25 configurations.
func BenchmarkTable4ConflictDetection(b *testing.B) {
	res := allResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4Rows(res)
		if len(rows) != 25 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFigure1AccessPatterns regenerates the global/local pattern mixes.
func BenchmarkFigure1AccessPatterns(b *testing.B) {
	res := allResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text, csv := experiments.Figure1(res)
		if len(text) == 0 || len(csv) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2FlashPatterns regenerates the FLASH offset/time scatter
// series (six panels).
func BenchmarkFigure2FlashPatterns(b *testing.B) {
	res := allResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		panels := experiments.Figure2(res)
		if len(panels) != 10 {
			b.Fatalf("%d panels", len(panels))
		}
	}
}

// BenchmarkFigure3MetadataCensus regenerates the metadata-operation matrix.
func BenchmarkFigure3MetadataCensus(b *testing.B) {
	res := allResults(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiments.Figure3(res)
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkAppTraceGeneration measures end-to-end simulated runs of
// representative applications (the workload generator itself).
func BenchmarkAppTraceGeneration(b *testing.B) {
	for _, name := range []string{"FLASH-fbs", "FLASH-nofbs", "LAMMPS-ADIOS", "LBANN", "HACC-IO-POSIX"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run(name, RunOptions{Ranks: 16, PPN: 2, Seed: uint64(i + 1)})
				if err != nil || res.Err() != nil {
					b.Fatal(err, res.Err())
				}
			}
		})
	}
}

// BenchmarkOverlapDetection compares Algorithm 1 against the brute-force
// oracle as the record count grows (the paper notes the sweep is linear in
// practice).
func BenchmarkOverlapDetection(b *testing.B) {
	mk := func(n int) []core.Interval {
		ivs := make([]core.Interval, n)
		for i := range ivs {
			// Mostly disjoint strided blocks with occasional overlaps.
			base := int64(i) * 100
			if i%17 == 0 {
				base -= 50
			}
			ivs[i] = core.Interval{T: uint64(i), TEnd: uint64(i) + 1,
				Rank: int32(i % 64), Os: base, Oe: base + 100, Write: i%2 == 0}
		}
		return ivs
	}
	for _, n := range []int{100, 1000, 10000} {
		ivs := mk(n)
		b.Run(fmt.Sprintf("algorithm1/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DetectOverlaps(ivs, func(core.OverlapPair) {})
			}
		})
	}
	for _, n := range []int{100, 1000, 10000} {
		ivs := mk(n)
		b.Run(fmt.Sprintf("merge/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DetectOverlapsMerge(ivs, func(core.OverlapPair) {})
			}
		})
	}
	for _, n := range []int{100, 1000} {
		ivs := mk(n)
		b.Run(fmt.Sprintf("bruteforce/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.DetectOverlapsBruteForce(ivs, func(core.OverlapPair) {})
			}
		})
	}
}

// BenchmarkMetadataConflictDetection measures the §7-extension analysis.
func BenchmarkMetadataConflictDetection(b *testing.B) {
	res := allResults(b)
	tr := res.ByName["MACSio-Silo"].Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := core.DetectMetadataConflicts(tr)
		if len(cs) == 0 {
			b.Fatal("no metadata dependencies found")
		}
	}
}

// BenchmarkPFSSemanticsThroughput is the ablation of DESIGN.md: simulated
// cost of canonical write workloads across the four consistency models.
// The metric to read is simulated-elapsed-ms (reported as sim_ms/op), not
// host time.
func BenchmarkPFSSemanticsThroughput(b *testing.B) {
	for _, workload := range experiments.PFSBenchWorkloads() {
		for _, sem := range pfs.AllSemantics() {
			b.Run(workload+"/"+sem.String(), func(b *testing.B) {
				var elapsed uint64
				for i := 0; i < b.N; i++ {
					r, err := experiments.PFSBench(workload, sem, 16, 2, 4096, 16)
					if err != nil {
						b.Fatal(err)
					}
					elapsed = r.ElapsedNS
				}
				b.ReportMetric(float64(elapsed)/1e6, "sim_ms/op")
			})
		}
	}
}

// BenchmarkScaleSweep regenerates the §6.1 scale-invariance run: the same
// application at growing rank counts.
func BenchmarkScaleSweep(b *testing.B) {
	for _, ranks := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("FLASH-nofbs/ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Run("FLASH-nofbs", RunOptions{Ranks: ranks, PPN: 8, Seed: 1})
				if err != nil || res.Err() != nil {
					b.Fatal(err, res.Err())
				}
				_, sig := core.AnalyzeConflicts(res.Trace, pfs.Session)
				if !sig.WAWDiff {
					b.Fatal("scale run lost the WAW-D signature")
				}
			}
		})
	}
}

// BenchmarkTraceEncodeDecode measures the binary trace format round trip.
func BenchmarkTraceEncodeDecode(b *testing.B) {
	res := allResults(b)
	tr := res.ByName["FLASH-nofbs"].Trace
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var n int
			for rank, rs := range tr.PerRank {
				var buf countWriter
				if err := recorder.EncodeRankStream(&buf, rank, rs); err != nil {
					b.Fatal(err)
				}
				n += buf.n
			}
			b.SetBytes(int64(n))
		}
	})
}

type countWriter struct{ n int }

func (w *countWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

func (w *countWriter) WriteString(s string) (int, error) { w.n += len(s); return len(s), nil }

// BenchmarkHappensBefore measures happens-before reconstruction and
// conflict-order validation on a communication-heavy trace.
func BenchmarkHappensBefore(b *testing.B) {
	res := allResults(b)
	tr := res.ByName["MACSio-Silo"].Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb, err := core.BuildHB(tr)
		if err != nil {
			b.Fatal(err)
		}
		byFile, _ := core.AnalyzeConflicts(tr, pfs.Session)
		for _, cs := range byFile {
			if un := core.ValidateConflicts(hb, cs); len(un) > 0 {
				b.Fatal("unsynchronized conflicts")
			}
		}
	}
}

// BenchmarkAnalyzeParallel compares the serial analysis oracle against the
// sharded engine over the full registry trace set at growing pool sizes.
// Speedup only materializes with free hardware threads: on a machine with
// >=8 cores expect workers=8 to finish the sweep at least 2x faster than
// serial; on a 1-2 core host the parallel path degrades to roughly serial
// cost plus scheduling noise. Record the host's core count with the numbers.
func BenchmarkAnalyzeParallel(b *testing.B) {
	res := allResults(b)
	sweep := func(b *testing.B, analyze func(tr *recorder.Trace) *Analysis) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			for _, name := range res.Ordered {
				an := analyze(res.ByName[name].Trace)
				if len(an.Patterns) == 0 {
					b.Fatalf("%s: empty analysis", name)
				}
				benchSink += an.Global.Total()
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		sweep(b, Analyze)
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			sweep(b, func(tr *recorder.Trace) *Analysis {
				return AnalyzeParallel(tr, workers)
			})
		})
	}

	// Telemetry overhead: the same sweep with the obs registry disabled
	// (every instrument short-circuits on one atomic load) versus enabled.
	// The acceptance bar is disabled-vs-baseline within ~2%; the sub-
	// benchmarks above run with the registry in its default enabled state,
	// so compare "telemetry=off" here against "parallel/workers=4" there.
	reg := obs.Default()
	for _, on := range []bool{false, true} {
		name := "telemetry=off"
		if on {
			name = "telemetry=on"
		}
		b.Run(name, func(b *testing.B) {
			was := reg.Enabled()
			reg.SetEnabled(on)
			defer reg.SetEnabled(was)
			sweep(b, func(tr *recorder.Trace) *Analysis {
				return AnalyzeParallel(tr, 4)
			})
		})
	}
}

// BenchmarkFusedAnalyze compares the fused single-sweep multi-model
// conflict engine against the pre-fusion per-model path over the full
// registry at benchScale. Three shapes:
//
//   - per-model: one AnalyzeConflicts call per model — two extractions and
//     two full sweeps per trace (the pre-PR production path);
//   - fused-cold: one AnalyzeConflictsAll call with the extraction cache
//     invalidated every iteration — one extraction plus one sweep;
//   - fused-warm: the same with the cache hot — one sweep, zero extractions
//     (the steady state of report/figure pipelines revisiting a trace).
//
// The equivalence of the two engines is proven by internal/analysistest
// (CheckFused over randomized traces and all registry apps), so the delta
// here is pure performance.
func BenchmarkFusedAnalyze(b *testing.B) {
	res := allResults(b)
	models := []pfs.Semantics{pfs.Session, pfs.Commit}
	b.Run("per-model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, name := range res.Ordered {
				tr := res.ByName[name].Trace
				for _, m := range models {
					_, sig := core.AnalyzeConflicts(tr, m)
					if sig.Any() {
						benchSink++
					}
				}
			}
		}
	})
	b.Run("fused-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, name := range res.Ordered {
				tr := res.ByName[name].Trace
				core.InvalidateExtraction(tr)
				for _, mc := range core.AnalyzeConflictsAll(tr, models...) {
					if mc.Signature.Any() {
						benchSink++
					}
				}
			}
		}
	})
	b.Run("fused-warm", func(b *testing.B) {
		for _, name := range res.Ordered {
			core.ExtractShared(res.ByName[name].Trace) // prime the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, name := range res.Ordered {
				for _, mc := range core.AnalyzeConflictsAll(res.ByName[name].Trace, models...) {
					if mc.Signature.Any() {
						benchSink++
					}
				}
			}
		}
	})
}

// BenchmarkExtract measures offset reconstruction over a large trace.
func BenchmarkExtract(b *testing.B) {
	res := allResults(b)
	tr := res.ByName["FLASH-fbs"].Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fas := core.Extract(tr)
		if len(fas) == 0 {
			b.Fatal("no files")
		}
	}
}
