package apps

import (
	"strings"
	"testing"

	"repro/internal/pfs"
)

// TestBurstFSQuirkBreaksSameProcessConflicts executes §6.3's caveat: "all
// but one of the PFSs we studied can correctly handle RAW and WAW conflicts
// on the same process (BurstFS being the exception)". On a commit-semantics
// PFS that does NOT order same-process accesses, applications whose Table 4
// signature contains an S conflict misbehave; applications without S
// conflicts still run correctly.
func TestBurstFSQuirkBreaksSameProcessConflicts(t *testing.T) {
	run := func(name string) []error {
		cfg, ok := Lookup(name)
		if !ok {
			t.Fatalf("no config %s", name)
		}
		fs := pfs.New(pfs.Options{Semantics: pfs.Commit, UnorderedSameProcess: true})
		res, err := Execute(cfg, Options{Ranks: 8, PPN: 2, FS: fs,
			Semantics: pfs.Commit, Params: Params{Verify: true}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return res.Errs
	}

	// NWChem has RAW-S on its trajectory header: the read-back returns the
	// initial header instead of the rewritten one.
	if errs := run("NWChem"); len(errs) == 0 {
		t.Fatal("NWChem should misread its rewritten header on a BurstFS-style PFS")
	} else if !strings.Contains(errs[0].Error(), "trajectory header") {
		t.Fatalf("unexpected NWChem failure: %v", errs[0])
	}

	// pF3D-IO's read-back does not overlap any earlier same-process write
	// of different content (each chunk is written once), so it still runs.
	if errs := run("pF3D-IO"); len(errs) != 0 {
		t.Fatalf("pF3D-IO should run on a BurstFS-style PFS: %v", errs[0])
	}

	// HACC-IO reopens its file before reading (published data, quirk-free).
	if errs := run("HACC-IO-POSIX"); len(errs) != 0 {
		t.Fatalf("HACC-IO should run on a BurstFS-style PFS: %v", errs[0])
	}
}
