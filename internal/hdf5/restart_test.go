package hdf5

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/recorder"
)

func TestRestartReadsBackDatasets(t *testing.T) {
	// Write a parallel checkpoint, close it, reopen read-only and read each
	// rank's slab back via the restart path.
	run(t, 4, 2, func(ctx *harness.Ctx) error {
		names := []string{"dens", "velx"}
		f, err := Create(ctx.MPI, ctx.OS, ctx.Tracer, "/restart.h5", Options{})
		if err != nil {
			return err
		}
		for _, n := range names {
			d, err := f.CreateDataset(n, 4*256)
			if err != nil {
				return err
			}
			if err := d.Write(int64(ctx.Rank)*256, bytes.Repeat([]byte{byte('0' + ctx.Rank)}, 256)); err != nil {
				return err
			}
			d.Close()
		}
		if err := f.Close(); err != nil {
			return err
		}
		ctx.MPI.Barrier()

		r, err := OpenRead(ctx.MPI, ctx.OS, ctx.Tracer, "/restart.h5", Options{})
		if err != nil {
			return err
		}
		if got := len(r.Datasets()); got != 0 {
			ctx.Failf("fresh open should have no datasets, got %d", got)
		}
		for _, n := range names {
			d, err := r.AttachDataset(n, 4*256)
			if err != nil {
				return err
			}
			got, err := d.ReadIndependent(int64(ctx.Rank)*256, 256)
			if err != nil {
				return err
			}
			want := bytes.Repeat([]byte{byte('0' + ctx.Rank)}, 256)
			if !bytes.Equal(got, want) {
				ctx.Failf("restart read of %s mismatched: %q", n, got[:4])
			}
		}
		if got := r.Datasets(); len(got) != 2 || got[0] != "dens" {
			ctx.Failf("Datasets() = %v", got)
		}
		if _, err := r.AttachDataset("dens", 4*256); err == nil {
			ctx.Failf("duplicate attach accepted")
		}
		if err := r.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestSerialRestart(t *testing.T) {
	res := run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := CreateSerial(ctx.OS, ctx.Tracer, "/s.h5", Options{})
		if err != nil {
			return err
		}
		d, err := f.CreateDataset("walkers", 1024)
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{0xAB}, 1024)
		if off := d.DataOff(); off < 16<<10 {
			ctx.Failf("data offset %d below DataBase", off)
		}
		if err := d.Write(0, payload); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		r, err := OpenSerialRead(ctx.OS, ctx.Tracer, "/s.h5", Options{})
		if err != nil {
			return err
		}
		d2, err := r.AttachDataset("walkers", 1024)
		if err != nil {
			return err
		}
		if d2.DataOff() != d.DataOff() {
			ctx.Failf("reattached offset %d != original %d", d2.DataOff(), d.DataOff())
		}
		got, err := d2.Read(0, 1024)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			ctx.Failf("restart content mismatch")
		}
		return r.Close()
	})
	// The reopen path must have issued an fstat (driver probe).
	found := false
	for range res.Trace.Filter(func(r *recorder.Record) bool { return r.Func == recorder.FuncFstat }) {
		found = true
	}
	if !found {
		t.Fatal("open-read should fstat the file")
	}
}

func TestOpenReadMissingFile(t *testing.T) {
	run(t, 1, 1, func(ctx *harness.Ctx) error {
		if _, err := OpenSerialRead(ctx.OS, ctx.Tracer, "/nope.h5", Options{}); err == nil {
			ctx.Failf("open of missing file accepted")
		}
		return ctx.Failures()
	})
}
