// Package faults is the deterministic, seed-driven fault-injection engine
// for the simulated PFS stack. A Schedule is a fixed list of injectable
// faults — node crashes around commit points, torn writes, lost fsyncs,
// delayed or reordered publishes, transient I/O errors — generated entirely
// from a seed, so the same seed always yields the byte-identical schedule.
// An Injector arms a schedule as a pfs.FaultInjector: it counts each rank's
// eligible operations and fires every injection at its Nth eligible
// operation, which makes replay deterministic too (the simulated I/O stream
// of a rank is a pure function of the application, the simulation seed and
// the schedule). The chaos harness in this package sweeps seeds ×
// applications × consistency models and checks the invariants that must
// survive every fault (see Sweep).
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Per-kind schedule/fire telemetry on the process-wide registry
// (faults.scheduled.<kind> / faults.fired.<kind>), alongside the injector's
// own tallies that the chaos report renders. A scheduled injection that
// never fires was suppressed: its rank never reached the Nth eligible
// operation — the run was too short, or an earlier crash killed the rank.
var (
	scheduledCounters [numKinds]*obs.Counter
	firedCounters     [numKinds]*obs.Counter
)

func init() {
	for k := Kind(0); k < numKinds; k++ {
		scheduledCounters[k] = obs.Default().Counter("faults.scheduled." + k.String())
		firedCounters[k] = obs.Default().Counter("faults.fired." + k.String())
	}
}

// Kind enumerates the injectable fault taxonomy (DESIGN.md, fault model).
type Kind int

const (
	// CrashBeforeCommit kills the rank immediately before a commit (fsync)
	// takes effect: pending writes are lost.
	CrashBeforeCommit Kind = iota
	// CrashAfterCommit kills the rank after the commit published: data is
	// durable but the process never observed the completion.
	CrashAfterCommit
	// TornWrite truncates a write to its first Arg bytes (the tail never
	// reaches the data servers).
	TornWrite
	// LostFsync makes a commit a silent no-op: the call succeeds, nothing
	// durably publishes.
	LostFsync
	// DelayedPublish adds Arg nanoseconds to the publish time of the extents
	// an operation publishes (slow data-server ingest; visible only under
	// time-based eventual semantics).
	DelayedPublish
	// ReorderPublish applies a publish batch in reverse order (a server
	// replaying a commit out of order; observable only when the batch
	// self-overlaps).
	ReorderPublish
	// TransientError fails the operation with a retryable I/O error for the
	// first Arg attempts; the client's RetryPolicy decides whether the
	// operation ultimately survives.
	TransientError

	numKinds
)

var kindNames = [...]string{
	CrashBeforeCommit: "crash-before-commit",
	CrashAfterCommit:  "crash-after-commit",
	TornWrite:         "torn-write",
	LostFsync:         "lost-fsync",
	DelayedPublish:    "delayed-publish",
	ReorderPublish:    "reorder-publish",
	TransientError:    "transient-error",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind#%d", int(k))
}

// AllKinds returns every fault kind in taxonomy order.
func AllKinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// class partitions operations into eligibility classes: each fault kind
// targets one class, and each rank counts its operations per class, so "the
// Nth eligible operation" is well defined and replay-stable.
type class int

const (
	classWrite   class = iota // write operations
	classData                 // write + read operations
	classCommit               // commit (fsync) operations
	classPublish              // commit + close (publish points)
	numClasses
)

func (k Kind) class() class {
	switch k {
	case TornWrite, DelayedPublish:
		return classWrite
	case TransientError:
		return classData
	case CrashBeforeCommit, CrashAfterCommit, LostFsync:
		return classCommit
	case ReorderPublish:
		return classPublish
	}
	return classData
}

// matches reports whether an operation kind belongs to a class.
func (c class) matches(op pfs.OpKind) bool {
	switch c {
	case classWrite:
		return op == pfs.OpWrite
	case classData:
		return op == pfs.OpWrite || op == pfs.OpRead
	case classCommit:
		return op == pfs.OpCommit
	case classPublish:
		return op == pfs.OpCommit || op == pfs.OpClose
	}
	return false
}

// Injection is one scheduled fault: on rank Rank, at the Nth (1-based)
// operation eligible for Kind's class, fire Kind with parameter Arg.
type Injection struct {
	Rank int
	Kind Kind
	N    int
	// Arg parameterizes the kind: bytes kept for TornWrite, delay in
	// nanoseconds for DelayedPublish, failing attempts for TransientError.
	Arg uint64
}

func (in Injection) String() string {
	return fmt.Sprintf("rank=%d kind=%s n=%d arg=%d", in.Rank, in.Kind, in.N, in.Arg)
}

// Schedule is a deterministic fault plan: the seed it was generated from
// plus the injections. Equal seeds and options produce byte-identical
// schedules (see Encode), the contract the chaos harness re-checks on every
// cell.
type Schedule struct {
	Seed       uint64
	Injections []Injection
}

// GenOptions bounds schedule generation.
type GenOptions struct {
	// Ranks is the job size injections target (required, > 0).
	Ranks int
	// Kinds restricts the fault taxonomy drawn from; nil means all kinds.
	Kinds []Kind
	// Count is the number of injections (default: max(2, Ranks/2)).
	Count int
	// MaxNth bounds the eligible-operation index N (default 6).
	MaxNth int
}

// Generate derives a schedule from a seed. All randomness flows through a
// splitmix64 generator seeded with seed, so the same (seed, options) pair
// yields the identical schedule on every run, machine and Go version.
func Generate(seed uint64, o GenOptions) Schedule {
	if o.Ranks <= 0 {
		o.Ranks = 1
	}
	kinds := o.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	if o.Count <= 0 {
		o.Count = o.Ranks / 2
		if o.Count < 2 {
			o.Count = 2
		}
	}
	if o.MaxNth <= 0 {
		o.MaxNth = 6
	}
	rng := sim.NewRNG(seed).Split(0xFA017)
	s := Schedule{Seed: seed, Injections: make([]Injection, 0, o.Count)}
	for i := 0; i < o.Count; i++ {
		k := kinds[rng.Intn(len(kinds))]
		inj := Injection{
			Rank: rng.Intn(o.Ranks),
			Kind: k,
			N:    1 + rng.Intn(o.MaxNth),
		}
		switch k {
		case TornWrite:
			inj.Arg = uint64(1 + rng.Intn(512))
		case DelayedPublish:
			inj.Arg = uint64(1+rng.Intn(10)) * 1_000_000 // 1–10 ms
		case TransientError:
			inj.Arg = uint64(1 + rng.Intn(5))
		}
		s.Injections = append(s.Injections, inj)
	}
	return s
}

// Encode renders the schedule in a canonical byte form: the determinism
// contract is that equal seeds produce equal Encode outputs.
func (s Schedule) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d n=%d\n", s.Seed, len(s.Injections))
	for _, in := range s.Injections {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Fingerprint hashes the canonical encoding (FNV-1a 64).
func (s Schedule) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(s.Encode())
	return h.Sum64()
}

// Event records one fired fault.
type Event struct {
	Rank int
	Kind Kind
	Op   pfs.OpKind
	Path string
	Now  uint64
}

func (e Event) String() string {
	return fmt.Sprintf("rank=%d %s at %s(%s) t=%d", e.Rank, e.Kind, e.Op, e.Path, e.Now)
}

type slotKey struct {
	rank int
	cls  class
	n    int
}

type countKey struct {
	rank int
	cls  class
}

// Injector arms a Schedule as a pfs.FaultInjector. It is safe for
// concurrent use (ranks intercept under the file system lock, but the
// injector carries its own mutex so it never relies on that). Use a fresh
// Injector per run; fired events accumulate per rank in firing order, which
// is deterministic for a deterministic run.
type Injector struct {
	mu      sync.Mutex
	pending map[slotKey][]Injection
	counts  map[countKey]int
	// transientLeft tracks, per rank, how many further attempts of the
	// in-flight operation still fail (each rank runs one operation at a
	// time, so a single counter per rank suffices).
	transientLeft map[int]int
	crashed       map[int]bool
	events        map[int][]Event
	fired         int
	// scheduled/firedBy tally injections per kind; their difference is the
	// suppressed count the chaos report breaks out.
	scheduled [numKinds]int
	firedBy   [numKinds]int
}

// NewInjector arms a schedule.
func NewInjector(s Schedule) *Injector {
	inj := &Injector{
		pending:       make(map[slotKey][]Injection),
		counts:        make(map[countKey]int),
		transientLeft: make(map[int]int),
		crashed:       make(map[int]bool),
		events:        make(map[int][]Event),
	}
	for _, in := range s.Injections {
		k := slotKey{rank: in.Rank, cls: in.Kind.class(), n: in.N}
		inj.pending[k] = append(inj.pending[k], in)
		if in.Kind >= 0 && in.Kind < numKinds {
			inj.scheduled[in.Kind]++
			scheduledCounters[in.Kind].Inc()
		}
	}
	return inj
}

// Intercept implements pfs.FaultInjector.
func (inj *Injector) Intercept(op pfs.OpInfo) pfs.FaultAction {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if op.Attempt > 0 {
		// Retry of an operation we failed transiently: keep failing until
		// the scheduled attempt budget is spent.
		if inj.transientLeft[op.Rank] > 0 {
			inj.transientLeft[op.Rank]--
			return pfs.FaultAction{Transient: true}
		}
		return pfs.FaultAction{}
	}
	if inj.crashed[op.Rank] {
		return pfs.FaultAction{}
	}
	var act pfs.FaultAction
	for c := class(0); c < numClasses; c++ {
		if !c.matches(op.Kind) {
			continue
		}
		ck := countKey{rank: op.Rank, cls: c}
		inj.counts[ck]++
		sk := slotKey{rank: op.Rank, cls: c, n: inj.counts[ck]}
		for _, in := range inj.pending[sk] {
			inj.apply(in, op, &act)
		}
		delete(inj.pending, sk)
	}
	return act
}

// apply folds one firing injection into the action.
func (inj *Injector) apply(in Injection, op pfs.OpInfo, act *pfs.FaultAction) {
	switch in.Kind {
	case CrashBeforeCommit:
		act.CrashBefore = true
		inj.crashed[op.Rank] = true
	case CrashAfterCommit:
		act.CrashAfter = true
		inj.crashed[op.Rank] = true
	case TornWrite:
		act.Torn = true
		keep := int64(in.Arg)
		if keep >= op.Len && op.Len > 0 {
			keep = op.Len - 1 // a torn write always loses at least one byte
		}
		if act.TornKeep == 0 || keep < act.TornKeep {
			act.TornKeep = keep
		}
	case LostFsync:
		act.DropCommit = true
	case DelayedPublish:
		if in.Arg > act.PublishDelay {
			act.PublishDelay = in.Arg
		}
	case ReorderPublish:
		act.ReorderPublish = true
	case TransientError:
		act.Transient = true
		if in.Arg > 1 {
			inj.transientLeft[op.Rank] = int(in.Arg) - 1
		}
	}
	inj.fired++
	if in.Kind >= 0 && in.Kind < numKinds {
		inj.firedBy[in.Kind]++
		firedCounters[in.Kind].Inc()
	}
	inj.events[op.Rank] = append(inj.events[op.Rank], Event{
		Rank: op.Rank, Kind: in.Kind, Op: op.Kind, Path: op.Path, Now: op.Now,
	})
}

// Fired returns how many injections have fired so far.
func (inj *Injector) Fired() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.fired
}

// KindTally reports, for one fault kind, how many injections the armed
// schedule planned versus how many actually fired.
type KindTally struct {
	Kind      Kind
	Scheduled int
	Fired     int
}

// Suppressed counts scheduled injections that never fired: the target rank
// never reached the Nth eligible operation (short run, or the rank was
// already dead from an earlier crash injection).
func (t KindTally) Suppressed() int { return t.Scheduled - t.Fired }

// KindTallies returns the per-kind scheduled/fired counts in taxonomy
// order, including kinds with zero scheduled injections.
func (inj *Injector) KindTallies() []KindTally {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]KindTally, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out[k] = KindTally{Kind: k, Scheduled: inj.scheduled[k], Fired: inj.firedBy[k]}
	}
	return out
}

// EventsByRank returns a copy of the fired events, per rank in firing order.
func (inj *Injector) EventsByRank() map[int][]Event {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[int][]Event, len(inj.events))
	for r, es := range inj.events {
		out[r] = append([]Event(nil), es...)
	}
	return out
}

// CrashedRanks returns the ranks a crash injection killed, sorted.
func (inj *Injector) CrashedRanks() []int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]int, 0, len(inj.crashed))
	for r := range inj.crashed {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// EventLog renders every fired event in (rank, firing order), the canonical
// form the replay-determinism check compares.
func (inj *Injector) EventLog() string {
	byRank := inj.EventsByRank()
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var b strings.Builder
	for _, r := range ranks {
		for _, e := range byRank[r] {
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}
