package recorder

import (
	"fmt"
	"sort"
)

// Meta describes a trace: which application configuration produced it and at
// what scale. It is persisted alongside the per-rank record streams.
type Meta struct {
	App     string // application name, e.g. "FLASH"
	Library string // I/O library configuration, e.g. "HDF5"
	Variant string // sub-configuration, e.g. "fbs" / "nofbs"
	Ranks   int
	PPN     int
	Steps   int    // time steps executed
	Seed    uint64 // simulation seed
	Aligned bool   // whether Align has been applied
}

// ConfigName returns the display name used in the paper's tables, e.g.
// "LAMMPS-ADIOS" or "FLASH-fbs".
func (m Meta) ConfigName() string {
	name := m.App
	if m.Variant != "" {
		name += "-" + m.Variant
	} else if m.Library != "" && m.Library != "POSIX" || multiLib(m.App) {
		name += "-" + m.Library
	}
	return name
}

// multiLib lists applications that appear in the paper with several I/O
// library configurations, so their display names always carry the library.
func multiLib(app string) bool {
	switch app {
	case "LAMMPS", "ParaDiS", "HACC-IO":
		return true
	}
	return false
}

// RankTracer collects the records emitted by one rank. It is used from that
// rank's goroutine only and therefore needs no locking.
type RankTracer struct {
	rank    int32
	records []Record
}

// NewRankTracer returns a tracer for the given rank.
func NewRankTracer(rank int) *RankTracer {
	return &RankTracer{rank: int32(rank)}
}

// Rank returns the rank this tracer belongs to.
func (t *RankTracer) Rank() int { return int(t.rank) }

// Emit appends a record, forcing its Rank field to the tracer's rank.
func (t *RankTracer) Emit(r Record) {
	r.Rank = t.rank
	t.records = append(t.records, r)
}

// Len returns the number of records collected so far.
func (t *RankTracer) Len() int { return len(t.records) }

// Records returns the collected records (not a copy).
func (t *RankTracer) Records() []Record { return t.records }

// Trace is a complete multi-rank trace.
type Trace struct {
	Meta    Meta
	PerRank [][]Record // indexed by rank; each slice in emission order
}

// NewTrace assembles a trace from per-rank tracers. Records of layered
// calls are emitted at call exit, so a library-layer record (whose TStart
// precedes its nested POSIX records) appears after them in emission order;
// assembly stable-sorts each rank's stream by entry timestamp, the order the
// analysis (and a real tracer's post-processing) expects.
func NewTrace(meta Meta, tracers []*RankTracer) *Trace {
	tr := &Trace{Meta: meta, PerRank: make([][]Record, len(tracers))}
	for i, rt := range tracers {
		if rt.Rank() != i {
			panic(fmt.Sprintf("recorder: tracer %d holds rank %d", i, rt.Rank()))
		}
		rs := rt.records
		sort.SliceStable(rs, func(a, b int) bool {
			if rs[a].TStart != rs[b].TStart {
				return rs[a].TStart < rs[b].TStart
			}
			// Equal entry stamps between I/O records: the enclosing
			// (longer) record first, so containment-based layer attribution
			// sees the frame opened. MPI records keep emission order — it
			// is their program order, which happens-before reconstruction
			// depends on.
			if rs[a].Layer == LayerMPI || rs[b].Layer == LayerMPI {
				return false
			}
			return rs[a].TEnd > rs[b].TEnd
		})
		tr.PerRank[i] = rs
	}
	return tr
}

// NumRecords returns the total record count across ranks.
func (t *Trace) NumRecords() int {
	n := 0
	for _, rs := range t.PerRank {
		n += len(rs)
	}
	return n
}

// Align implements the paper's clock-adjustment step (§5.2): the run begins
// with an MPI_Barrier; each rank's trace is shifted so that the exit of that
// first barrier is time zero. Since the simulated barrier exit happens at
// the same true time on every rank, alignment removes the per-rank clock
// skew up to the (bounded) residual the paper also observes. Records that
// end before the barrier exits are clamped to zero. Align is idempotent.
func (t *Trace) Align() error {
	if t.Meta.Aligned {
		return nil
	}
	offsets := make([]uint64, len(t.PerRank))
	for rank, rs := range t.PerRank {
		found := false
		for i := range rs {
			if rs[i].Layer == LayerMPI && rs[i].Func == FuncMPIBarrier {
				offsets[rank] = rs[i].TEnd
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("recorder: rank %d has no MPI_Barrier to align to", rank)
		}
	}
	for rank, rs := range t.PerRank {
		off := offsets[rank]
		for i := range rs {
			rs[i].TStart = sub0(rs[i].TStart, off)
			rs[i].TEnd = sub0(rs[i].TEnd, off)
		}
	}
	t.Meta.Aligned = true
	return nil
}

func sub0(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// AllByTime returns every record across ranks merged into a single slice
// ordered by (TStart, rank, emission order). Per-rank streams are already
// time-ordered, so this is a k-way merge implemented as a stable sort.
func (t *Trace) AllByTime() []Record {
	out := make([]Record, 0, t.NumRecords())
	for _, rs := range t.PerRank {
		out = append(out, rs...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TStart != out[j].TStart {
			return out[i].TStart < out[j].TStart
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Filter returns the records (across all ranks, unordered between ranks) for
// which keep returns true.
func (t *Trace) Filter(keep func(*Record) bool) []Record {
	var out []Record
	for _, rs := range t.PerRank {
		for i := range rs {
			if keep(&rs[i]) {
				out = append(out, rs[i])
			}
		}
	}
	return out
}

// Validate checks structural invariants: per-rank streams are time-ordered,
// TEnd >= TStart, rank fields match the stream index, and function/layer
// values are known. It returns the first violation found.
func (t *Trace) Validate() error {
	for rank, rs := range t.PerRank {
		var prev uint64
		for i := range rs {
			r := &rs[i]
			if int(r.Rank) != rank {
				return fmt.Errorf("rank %d stream holds record for rank %d at index %d", rank, r.Rank, i)
			}
			if r.TEnd < r.TStart {
				return fmt.Errorf("rank %d record %d: TEnd %d < TStart %d", rank, i, r.TEnd, r.TStart)
			}
			if r.TStart < prev {
				return fmt.Errorf("rank %d record %d: TStart %d < previous %d (stream not time-ordered)", rank, i, r.TStart, prev)
			}
			prev = r.TStart
			if !r.Func.Valid() {
				return fmt.Errorf("rank %d record %d: invalid func %d", rank, i, r.Func)
			}
			if int(r.Layer) >= NumLayers() {
				return fmt.Errorf("rank %d record %d: invalid layer %d", rank, i, r.Layer)
			}
		}
	}
	return nil
}
