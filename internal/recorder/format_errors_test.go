package recorder

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDecodeTruncatedStreams(t *testing.T) {
	// Encode a valid stream, then decode every strict prefix: all must fail
	// cleanly, never panic.
	recs := []Record{
		mkRecord(1, LayerPOSIX, FuncOpen, 10, 20, "/some/long/path/name", OCreat, 0o644, 3),
		mkRecord(1, LayerPOSIX, FuncPwrite, 30, 40, "/some/long/path/name", 3, 128, 0, 128),
		mkRecord(1, LayerPOSIX, FuncClose, 50, 55, "", 3),
	}
	var buf bytes.Buffer
	if err := EncodeRankStream(&buf, 1, recs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeRankStream(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
	// The full stream still decodes.
	if _, got, err := DecodeRankStream(bytes.NewReader(full)); err != nil || len(got) != 3 {
		t.Fatalf("full decode: %d recs, %v", len(got), err)
	}
}

func TestDecodeRejectsCorruptStringRef(t *testing.T) {
	// Hand-craft a stream whose record references string-table entry 99.
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	buf.Write([]byte{0}) // rank 0
	buf.Write([]byte{1}) // one record
	buf.Write([]byte{byte(LayerPOSIX)})
	buf.Write([]byte{byte(FuncOpen)})
	buf.Write([]byte{5})   // tstart
	buf.Write([]byte{1})   // duration
	buf.Write([]byte{101}) // string ref 101-2=99: out of table
	if _, _, err := DecodeRankStream(&buf); err == nil || !strings.Contains(err.Error(), "string ref") {
		t.Fatalf("corrupt string ref accepted: %v", err)
	}
}

func TestSaveDirErrors(t *testing.T) {
	dir := t.TempDir()
	// Unwritable destination (a file standing where the dir should be).
	blocker := filepath.Join(dir, "blocked")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr := &Trace{Meta: Meta{Ranks: 1}, PerRank: [][]Record{{}}}
	if err := SaveDir(filepath.Join(blocker, "sub"), tr); err == nil {
		t.Fatal("SaveDir into a file path should fail")
	}
}

func TestLoadDirErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("LoadDir of missing dir should fail")
	}
	// Corrupt meta.
	bad := filepath.Join(dir, "bad")
	os.MkdirAll(bad, 0o755)
	os.WriteFile(filepath.Join(bad, "trace.meta"), []byte("{not json"), 0o644)
	if _, err := LoadDir(bad); err == nil {
		t.Fatal("corrupt trace.meta accepted")
	}
	// Valid meta, zero ranks.
	zero := filepath.Join(dir, "zero")
	os.MkdirAll(zero, 0o755)
	os.WriteFile(filepath.Join(zero, "trace.meta"), []byte(`{"Ranks":0}`), 0o644)
	if _, err := LoadDir(zero); err == nil {
		t.Fatal("zero-rank meta accepted")
	}
	// Valid meta, missing rank file.
	norank := filepath.Join(dir, "norank")
	os.MkdirAll(norank, 0o755)
	os.WriteFile(filepath.Join(norank, "trace.meta"), []byte(`{"Ranks":1}`), 0o644)
	if _, err := LoadDir(norank); err == nil {
		t.Fatal("missing rank stream accepted")
	}
	// Rank file holding the wrong rank.
	wrong := filepath.Join(dir, "wrong")
	os.MkdirAll(wrong, 0o755)
	os.WriteFile(filepath.Join(wrong, "trace.meta"), []byte(`{"Ranks":1}`), 0o644)
	var buf bytes.Buffer
	if err := EncodeRankStream(&buf, 7, nil); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(wrong, rankFileName(0)), buf.Bytes(), 0o644)
	if _, err := LoadDir(wrong); err == nil || !strings.Contains(err.Error(), "holds rank") {
		t.Fatalf("wrong-rank stream accepted: %v", err)
	}
}

func TestRecordAndLayerStrings(t *testing.T) {
	r := mkRecord(2, LayerHDF5, FuncH5Dwrite, 5, 9, "/f.h5", 0, 64)
	s := r.String()
	if !strings.Contains(s, "H5Dwrite") || !strings.Contains(s, "r2") {
		t.Fatalf("Record.String: %q", s)
	}
	if LayerPOSIX.String() != "POSIX" || LayerMPIIO.String() != "MPI-IO" || LayerApp.String() != "APP" {
		t.Fatal("layer names broken")
	}
	if got := Layer(200).String(); !strings.Contains(got, "layer#") {
		t.Fatalf("unknown layer: %q", got)
	}
	if got := Func(10000).String(); !strings.Contains(got, "func#") {
		t.Fatalf("unknown func: %q", got)
	}
	if itoa(-42) != "-42" || itoa(0) != "0" || itoa(10000) != "10000" {
		t.Fatal("itoa broken")
	}
}

func TestFilterAndPredicateEdges(t *testing.T) {
	tr := &Trace{Meta: Meta{Ranks: 2}, PerRank: [][]Record{
		{mkRecord(0, LayerPOSIX, FuncReadv, 1, 2, "/f", 3, 10, 10)},
		{mkRecord(1, LayerPOSIX, FuncWritev, 1, 2, "/f", 3, 10, 10)},
	}}
	writes := tr.Filter(func(r *Record) bool { return r.IsWriteOp() })
	if len(writes) != 1 || writes[0].Func != FuncWritev {
		t.Fatalf("writev filter: %v", writes)
	}
	reads := tr.Filter(func(r *Record) bool { return r.IsDataOp() && !r.IsWriteOp() })
	if len(reads) != 1 || reads[0].Func != FuncReadv {
		t.Fatalf("readv filter: %v", reads)
	}
	cr := mkRecord(0, LayerPOSIX, FuncCreat, 0, 1, "/f", 0, 0, 4)
	if !cr.IsOpenOp() {
		t.Fatal("creat should be an open op")
	}
	tf := mkRecord(0, LayerPOSIX, FuncTmpfile, 0, 1, "", 0, 0, 5)
	if !tf.IsOpenOp() || !tf.IsMetadataOp() {
		t.Fatal("tmpfile classification")
	}
	for _, fn := range []Func{FuncMmap, FuncMsync, FuncMkfifo, FuncPipe, FuncMknod, FuncReadlink, FuncFaccessat} {
		m := mkRecord(0, LayerPOSIX, fn, 0, 1, "")
		if !m.IsMetadataOp() {
			t.Errorf("%v should be a metadata op", fn)
		}
	}
}

func TestDecodeTruncatedSalvagesPrefix(t *testing.T) {
	// Every truncation point must yield ErrTruncated plus the records that
	// fully decoded before the cut — never garbage, never a panic.
	recs := []Record{
		mkRecord(1, LayerPOSIX, FuncOpen, 10, 20, "/salvage/path", OCreat, 0o644, 3),
		mkRecord(1, LayerPOSIX, FuncPwrite, 30, 40, "/salvage/path", 3, 128, 0, 128),
		mkRecord(1, LayerPOSIX, FuncClose, 50, 55, "", 3),
	}
	var buf bytes.Buffer
	if err := EncodeRankStream(&buf, 1, recs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	maxSalvaged := 0
	for cut := 0; cut < len(full); cut++ {
		_, got, err := DecodeRankStream(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d/%d: err = %v, want ErrTruncated", cut, len(full), err)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut %d: salvaged %d > encoded %d records", cut, len(got), len(recs))
		}
		for i, r := range got {
			if r.Func != recs[i].Func || r.Path != recs[i].Path || r.TStart != recs[i].TStart {
				t.Fatalf("cut %d: salvaged record %d = %v, want %v", cut, i, r, recs[i])
			}
		}
		if len(got) > maxSalvaged {
			maxSalvaged = len(got)
		}
	}
	if maxSalvaged != len(recs)-1 {
		t.Fatalf("max salvage across cuts = %d, want %d", maxSalvaged, len(recs)-1)
	}
}

func TestLoadDirLenient(t *testing.T) {
	mk := func(rank int) []Record {
		return []Record{
			mkRecord(rank, LayerPOSIX, FuncOpen, 10, 20, "/f", OCreat, 0o644, 3),
			mkRecord(rank, LayerPOSIX, FuncPwrite, 30, 40, "/f", 3, 64, 0, 64),
			mkRecord(rank, LayerPOSIX, FuncClose, 50, 55, "", 3),
		}
	}
	tr := &Trace{Meta: Meta{App: "x", Ranks: 3}, PerRank: [][]Record{mk(0), mk(1), mk(2)}}
	dir := t.TempDir()
	if err := SaveDir(dir, tr); err != nil {
		t.Fatal(err)
	}

	// Clean load: full everywhere, not degraded.
	got, sal, err := LoadDirLenient(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sal.Degraded() || sal.Full != 3 || sal.Records != 9 || sal.Salvaged != 0 {
		t.Fatalf("clean load salvage: %v", sal)
	}

	// Truncate rank 1 mid-stream and delete rank 2 entirely.
	r1 := filepath.Join(dir, rankFileName(1))
	data, err := os.ReadFile(r1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r1, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, rankFileName(2))); err != nil {
		t.Fatal(err)
	}

	got, sal, err = LoadDirLenient(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !sal.Degraded() || sal.Full != 1 || sal.Truncated != 1 || sal.Unreadable != 1 {
		t.Fatalf("degraded load salvage: %v", sal)
	}
	if sal.Salvaged == 0 || sal.Records != 3+sal.Salvaged || len(sal.Errs) != 2 {
		t.Fatalf("degraded load counts: %v", sal)
	}
	// The truncated stream declared 3 records and lost its tail: the salvage
	// report counts exactly what was dropped, not just that damage happened.
	if sal.Dropped != 3-sal.Salvaged {
		t.Fatalf("dropped = %d, want %d (declared minus salvaged)", sal.Dropped, 3-sal.Salvaged)
	}
	if s := sal.String(); !strings.Contains(s, "dropped") {
		t.Fatalf("salvage string omits the dropped count: %q", s)
	}
	if len(got.PerRank[0]) != 3 || len(got.PerRank[2]) != 0 {
		t.Fatalf("per-rank records: %d/%d/%d",
			len(got.PerRank[0]), len(got.PerRank[1]), len(got.PerRank[2]))
	}
	found := false
	for _, e := range sal.Errs {
		if errors.Is(e, ErrTruncated) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ErrTruncated among salvage errors: %v", sal.Errs)
	}
	if s := sal.String(); !strings.Contains(s, "1 truncated") || !strings.Contains(s, "1 unreadable") {
		t.Fatalf("salvage string: %q", s)
	}

	// A stream holding the wrong rank is unreadable, its records discarded.
	var buf bytes.Buffer
	if err := EncodeRankStream(&buf, 9, mk(9)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, rankFileName(2)), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, sal, err = LoadDirLenient(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sal.Unreadable != 1 || len(got.PerRank[2]) != 0 {
		t.Fatalf("wrong-rank stream salvage: %v, rank2=%d recs", sal, len(got.PerRank[2]))
	}

	// Nothing salvageable at all → error, with counts still reported.
	empty := t.TempDir()
	os.WriteFile(filepath.Join(empty, "trace.meta"), []byte(`{"Ranks":2}`), 0o644)
	_, sal, err = LoadDirLenient(empty)
	if err == nil || sal == nil || sal.Unreadable != 2 {
		t.Fatalf("empty dir: err=%v sal=%v", err, sal)
	}
	// And the hard meta failures stay hard.
	if _, _, err := LoadDirLenient(filepath.Join(empty, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}
