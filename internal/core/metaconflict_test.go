package core

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func metaRun(t *testing.T, ranks int, body func(ctx *harness.Ctx) error) []MetaConflict {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: ranks, Semantics: pfs.Strong},
		recorder.Meta{App: "meta-test"}, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return DetectMetadataConflicts(res.Trace)
}

func TestCreateUseAcrossRanks(t *testing.T) {
	cs := metaRun(t, 2, func(ctx *harness.Ctx) error {
		if ctx.Rank == 0 {
			fd, err := ctx.OS.Open("/shared.dat", recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			ctx.OS.Write(fd, []byte("x"))
			ctx.OS.Close(fd)
		}
		ctx.MPI.Barrier()
		if ctx.Rank == 1 {
			fd, err := ctx.OS.Open("/shared.dat", recorder.ORdonly, 0)
			if err != nil {
				return err
			}
			ctx.OS.Close(fd)
		}
		return nil
	})
	if len(cs) != 1 || cs[0].Kind != CreateUse || cs[0].Path != "/shared.dat" {
		t.Fatalf("conflicts = %v", cs)
	}
	if cs[0].Mutation.Rank != 0 || cs[0].Use.Rank != 1 {
		t.Fatalf("pair ranks wrong: %v", cs[0])
	}
	sig := MetaSignatureOf(cs)
	if !sig.CreateUse || sig.RemoveUse || sig.ResizeUse || !sig.Any() {
		t.Fatalf("signature = %+v", sig)
	}
}

func TestDirectoryCreateUse(t *testing.T) {
	// mkdir by rank 0, creating open inside the directory by rank 1: the
	// child creation depends on the directory's visibility.
	cs := metaRun(t, 2, func(ctx *harness.Ctx) error {
		if ctx.Rank == 0 {
			if err := ctx.OS.Mkdir("/out.bp", 0o755); err != nil {
				return err
			}
		}
		ctx.MPI.Barrier()
		if ctx.Rank == 1 {
			fd, err := ctx.OS.Open("/out.bp/data.1", recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			ctx.OS.Close(fd)
		}
		return nil
	})
	found := false
	for _, c := range cs {
		if c.Kind == CreateUse && c.Path == "/out.bp" && c.Use.Rank == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("directory dependency not detected: %v", cs)
	}
}

func TestCreateProbeSuppressed(t *testing.T) {
	// HDF5-style: every rank stats then O_CREAT-opens the same shared file.
	// The stat is an existence probe, not a dependency.
	cs := metaRun(t, 4, func(ctx *harness.Ctx) error {
		ctx.OS.Lstat("/f.h5")
		fd, err := ctx.OS.Open("/f.h5", recorder.OCreat|recorder.ORdwr, 0o644)
		if err != nil {
			return err
		}
		return ctx.OS.Close(fd)
	})
	if len(cs) != 0 {
		t.Fatalf("create probes flagged as dependencies: %v", cs)
	}
}

func TestRemoveUseAcrossRanks(t *testing.T) {
	cs := metaRun(t, 2, func(ctx *harness.Ctx) error {
		fd, err := ctx.OS.Open("/victim", recorder.OCreat|recorder.OWronly, 0o644)
		if err == nil {
			ctx.OS.Close(fd)
		}
		ctx.MPI.Barrier()
		if ctx.Rank == 0 {
			ctx.OS.Unlink("/victim")
		}
		ctx.MPI.Barrier()
		if ctx.Rank == 1 {
			ctx.OS.Access("/victim") // expects the removal to be visible
		}
		return nil
	})
	sig := MetaSignatureOf(cs)
	if !sig.RemoveUse {
		t.Fatalf("remove-use not detected: %v", cs)
	}
}

func TestSameRankDependenciesIgnored(t *testing.T) {
	cs := metaRun(t, 2, func(ctx *harness.Ctx) error {
		if ctx.Rank == 0 {
			fd, _ := ctx.OS.Open("/own", recorder.OCreat|recorder.OWronly, 0o644)
			ctx.OS.Close(fd)
			ctx.OS.Stat("/own")
			fd2, _ := ctx.OS.Open("/own", recorder.ORdonly, 0)
			ctx.OS.Close(fd2)
		}
		return nil
	})
	if len(cs) != 0 {
		t.Fatalf("same-rank dependencies flagged: %v", cs)
	}
}

func TestMetaConflictValidation(t *testing.T) {
	res, err := harness.Run(harness.Config{Ranks: 2, Semantics: pfs.Strong},
		recorder.Meta{App: "meta-hb"}, func(ctx *harness.Ctx) error {
			if ctx.Rank == 0 {
				fd, _ := ctx.OS.Open("/sync.dat", recorder.OCreat|recorder.OWronly, 0o644)
				ctx.OS.Close(fd)
			}
			ctx.MPI.Barrier()
			if ctx.Rank == 1 {
				fd, err := ctx.OS.Open("/sync.dat", recorder.ORdonly, 0)
				if err != nil {
					return err
				}
				ctx.OS.Close(fd)
			}
			return nil
		})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	cs := DetectMetadataConflicts(res.Trace)
	if len(cs) == 0 {
		t.Fatal("expected a create-use pair")
	}
	hb, err := BuildHB(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if un := ValidateMetaConflicts(hb, cs); len(un) != 0 {
		t.Fatalf("barrier-ordered pair reported unordered: %v", un)
	}
}

func TestMetaKindStrings(t *testing.T) {
	if CreateUse.String() != "create-use" || RemoveUse.String() != "remove-use" || ResizeUse.String() != "resize-use" {
		t.Fatal("kind names broken")
	}
	c := MetaConflict{Kind: CreateUse, Path: "/p",
		Mutation: MetaOpRef{Rank: 0, Func: recorder.FuncMkdir},
		Use:      MetaOpRef{Rank: 1, Func: recorder.FuncOpen}}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}
