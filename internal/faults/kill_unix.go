//go:build unix

package faults

import "syscall"

// killProcess delivers SIGKILL to the current process — the closest portable
// analogue of a real crash: no deferred functions run, no buffers flush, the
// exit status reports the signal. os.Exit is the fallback if the kernel
// somehow refuses.
func killProcess() {
	_ = syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	// SIGKILL is not maskable; reaching this line means the kill failed in a
	// way Go can observe. Die anyway, with the conventional 128+9 status.
	fallbackExit()
}
