package wal_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestRecoverDirZeroLengthLog is the regression for the zero-length /
// missing distinction: a rank that opened its log but was killed before the
// first append must recover as an explicit empty record list, not vanish
// like a rank that never ran.
func TestRecoverDirZeroLengthLog(t *testing.T) {
	dir := t.TempDir()
	if err := storage.WriteFileAtomic(storage.OS(), filepath.Join(dir, "rank-0000.wal"), nil); err != nil {
		t.Fatal(err)
	}
	recs, stats, err := wal.RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := recs[0]
	if !ok {
		t.Fatal("zero-length log recovered as missing — the rank DID start")
	}
	if rr == nil || len(rr) != 0 {
		t.Fatalf("zero-length log: recs = %#v, want explicit empty slice", rr)
	}
	if _, ok := recs[1]; ok {
		t.Fatal("rank with no log file gained a recovery entry")
	}
	if s := stats[0]; s.Records != 0 || s.Dropped != 0 {
		t.Fatalf("zero-length log stats = %+v", s)
	}
}

// TestRecoverBurstAckFileDistinction: the recovery report must state, per
// rank, whether an ack file exists at all — a zero-length ack file (rank
// started, acked nothing) and a missing one (rank never got that far) both
// floor at 0 but are different harness states.
func TestRecoverBurstAckFileDistinction(t *testing.T) {
	dir := t.TempDir()
	for r := 0; r < 2; r++ {
		if err := storage.WriteFileAtomic(storage.OS(),
			filepath.Join(dir, fmt.Sprintf("rank-%04d.wal", r)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Rank 0 opened its ack file and died; rank 1 never did.
	if err := storage.WriteFileAtomic(storage.OS(), filepath.Join(dir, "acks-rank-0000.log"), nil); err != nil {
		t.Fatal(err)
	}
	rep, err := wal.RecoverBurst(wal.BurstSpec{
		Semantics: pfs.Strong, Ranks: 2, Log: wal.Options{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AckFiles) != 2 || !rep.AckFiles[0] || rep.AckFiles[1] {
		t.Fatalf("AckFiles = %v, want [true false]", rep.AckFiles)
	}
	if rep.Acked[0] != 0 || rep.Acked[1] != 0 {
		t.Fatalf("Acked = %v, want zero floors", rep.Acked)
	}
	out := wal.FormatReport(rep)
	if !strings.Contains(out, "ack file present") || !strings.Contains(out, "no ack file") {
		t.Fatalf("report does not distinguish ack-file states:\n%s", out)
	}
}

// burstSpec returns the small backend-matrix workload: 2 ranks × 8 records.
func burstSpec(dir string, b storage.Backend) wal.BurstSpec {
	return wal.BurstSpec{
		Semantics: pfs.Commit, Ranks: 2, Records: 8, Block: 128, CommitEvery: 4,
		Log: wal.Options{Dir: dir, Backend: b},
	}
}

// TestBurstRecoverBackends runs the full burst + recovery proof in-process
// over each backend: osdisk, real eventually-consistent objstore, and a
// flaky transient-only schedule under the retry policy. RecoverBurst itself
// asserts zero acked-write loss, byte-exact salvage and spec-accepted
// replay; on top of that the uninterrupted runs must recover complete and,
// for the transient-only schedule, finish with zero degraded writes.
func TestBurstRecoverBackends(t *testing.T) {
	noSleep := func(time.Duration) {}
	cases := []struct {
		name    string
		backend func(t *testing.T) storage.Backend
	}{
		{"osdisk", func(t *testing.T) storage.Backend { return storage.OS() }},
		{"objstore", func(t *testing.T) storage.Backend {
			return storage.NewObjStore(storage.ObjStoreOptions{
				Root: t.TempDir(), VisibilityDelay: 3 * time.Millisecond,
			})
		}},
		{"flaky-transient", func(t *testing.T) storage.Backend {
			sched := storage.GenSchedule(5, storage.GenOptions{
				Count: 8,
				Kinds: []storage.FaultKind{storage.FaultTransient, storage.FaultRenameFail},
			})
			if !sched.TransientOnly() {
				t.Fatalf("schedule not transient-only:\n%s", sched.Encode())
			}
			return storage.NewRetry(storage.NewFlaky(storage.OS(), sched),
				storage.RetryOptions{Sleep: noSleep})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.backend(t)
			spec := burstSpec(filepath.Join(t.TempDir(), "wal"), b)
			res, err := wal.RunBurst(spec)
			if err != nil {
				t.Fatalf("burst: %v", err)
			}
			if !res.Spec.OK() {
				t.Fatalf("burst history rejected: %s", res.Spec.Violation)
			}
			for r, st := range res.Stats {
				if st.WriteThrough != 0 {
					t.Fatalf("rank %d degraded to write-through %d times on a healthy/transient-only backend",
						r, st.WriteThrough)
				}
			}
			if !storage.Health(b) {
				t.Fatal("backend unhealthy after an absorbable fault schedule")
			}
			rep, err := wal.RecoverBurst(spec)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if rep.Records != spec.Ranks*spec.Records {
				t.Fatalf("recovered %d records, want %d", rep.Records, spec.Ranks*spec.Records)
			}
			for r := 0; r < spec.Ranks; r++ {
				if !rep.AckFiles[r] || rep.Acked[r] != spec.Records {
					t.Fatalf("rank %d ack floor: present=%v acked=%d", r, rep.AckFiles[r], rep.Acked[r])
				}
			}
			// Byte-identical resumed report: the formatted dump of the
			// recovered state must match a direct uninterrupted run's.
			want := wal.FormatDump(wal.DirectDump(spec, rep.PerRank))
			if got := wal.FormatDump(rep.Dump); got != want {
				t.Fatalf("recovered dump differs from direct run:\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestWALPersistentBackendFailureDegrades: when the log backend wedges for
// good (retry policy exhausted), the WAL must not fail application writes —
// it goes sticky write-through and every write still lands in the pfs.
func TestWALPersistentBackendFailureDegrades(t *testing.T) {
	// Each WAL append is 3 eligible flaky ops (two half-frame writes + one
	// fsync); wedging after 6 lets exactly two appends ack off the log before
	// the backend dies mid-third.
	b := storage.NewRetry(storage.NewFlaky(storage.OS(), storage.Schedule{WedgeAfter: 6}),
		storage.RetryOptions{Sleep: func(time.Duration) {}})
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	c := fs.NewClient(0, 0)
	l, err := wal.Open(0, wal.Options{Dir: filepath.Join(t.TempDir(), "wal"), Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	var now uint64
	tick := func() uint64 { now += 10; return now }
	h, _, err := l.Open(c, "/degrade.dat", pfs.OCreat|pfs.ORdwr, tick())
	if err != nil {
		t.Fatal(err)
	}
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 32) }
	for i := 0; i < 5; i++ {
		if _, err := l.Write(h, int64(i)*32, payload(i), tick()); err != nil {
			t.Fatalf("write %d must survive the log failure via write-through: %v", i, err)
		}
	}
	if !l.Degraded() {
		t.Fatal("log not degraded after its backend wedged")
	}
	st := l.Stats()
	if st.Acked != 2 || st.WriteThrough != 3 {
		t.Fatalf("stats = %+v, want 2 acked + 3 write-through", st)
	}
	// Every write — logged or degraded — must be readable back at full size.
	for i := 0; i < 5; i++ {
		got, _, err := l.Read(h, int64(i)*32, 32, tick())
		if err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("readback %d: %q, %v", i, got, err)
		}
	}
	if _, err := l.CloseHandle(h, tick()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
