package colfmt

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/recorder"
	"repro/internal/storage"
)

// Directory-level trace I/O with per-file format sniffing: both formats
// share the v1 on-disk shape — "trace.meta" JSON plus one "rank_NNNNN.rec"
// stream per rank — and the magic bytes inside each stream pick the
// decoder, so columnar, v1, and even mixed directories all load through one
// entry point. Loads shard rank files across the bounded worker pool
// (core.ParallelFor): decode work is embarrassingly parallel per stream and
// the fold back into Trace.PerRank is index-addressed, so the result is
// byte-identical to a serial load.

// Format selects an on-disk trace encoding.
type Format int

const (
	// FormatColumnar is the SEMFSCOL1 columnar format (the default writer).
	FormatColumnar Format = iota
	// FormatV1 is the record-framed SEMFSTR1 compatibility format.
	FormatV1
)

func (f Format) String() string {
	switch f {
	case FormatColumnar:
		return "columnar"
	case FormatV1:
		return "v1"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat maps a CLI -format value to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "columnar":
		return FormatColumnar, nil
	case "v1":
		return FormatV1, nil
	default:
		return 0, fmt.Errorf("colfmt: unknown format %q (want columnar or v1)", s)
	}
}

// SaveDirOn persists a trace as a directory in the given format. The v1
// path delegates to the recorder writer, so its bytes stay pinned.
func SaveDirOn(b storage.Backend, dir string, tr *recorder.Trace, f Format) error {
	if f == FormatV1 {
		return recorder.SaveDirOn(b, dir, tr)
	}
	if err := b.MkdirAll(dir); err != nil {
		return err
	}
	metaBytes, err := json.MarshalIndent(tr.Meta, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileOn(b, filepath.Join(dir, "trace.meta"), metaBytes); err != nil {
		return err
	}
	for rank, rs := range tr.PerRank {
		f, err := b.Open(filepath.Join(dir, recorder.RankFileName(rank)), storage.OCreate|storage.OWronly|storage.OTrunc, 0o644)
		if err != nil {
			return err
		}
		err = EncodeStream(f, rank, rs, EncodeOptions{})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("colfmt: writing rank %d: %w", rank, err)
		}
	}
	return nil
}

// SaveDir is SaveDirOn against the local disk.
func SaveDir(dir string, tr *recorder.Trace, f Format) error {
	return SaveDirOn(storage.OS(), dir, tr, f)
}

// writeFileOn mirrors os.WriteFile on a backend (same discipline as the
// recorder writer: create/truncate, write, close, no fsync).
func writeFileOn(b storage.Backend, path string, data []byte) error {
	f, err := b.Open(path, storage.OCreate|storage.OWronly|storage.OTrunc, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Open opens one columnar rank stream for cursor decoding, memory-mapping
// it when the backend's files are mappable (storage.MapsFiles) and falling
// back to a whole-file read through the backend otherwise.
func Open(b storage.Backend, path string) (*Reader, error) {
	data, unmap, err := readStream(b, path)
	if err != nil {
		return nil, err
	}
	r, rerr := NewReader(data)
	if rerr != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, rerr
	}
	r.unmap = unmap
	return r, nil
}

// readStream returns a stream's bytes: mapped (unmap non-nil) when legal,
// read through the backend otherwise.
func readStream(b storage.Backend, path string) (data []byte, unmap func() error, err error) {
	if storage.MapsFiles(b) {
		if d, u, merr := mapFile(path); merr == nil {
			bytesMapped.Add(int64(len(d)))
			return d, u, nil
		}
		// Any mmap failure (missing file, exotic fs, non-unix) falls back to
		// the backend read, which also surfaces the canonical error.
	}
	d, err := b.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	bytesRead.Add(int64(len(d)))
	return d, nil, nil
}

// streamResult is one rank file's decode outcome, filled concurrently and
// folded in rank order for deterministic error and salvage reporting.
type streamResult struct {
	recs     []recorder.Record
	stats    Stats
	columnar bool
	declared int  // header-declared records (columnar only)
	headerOK bool // header parsed, so declared is trustworthy
	err      error
}

// decodeRankFile sniffs and decodes one rank stream. Lenient walks salvage;
// strict walks surface the first problem.
func decodeRankFile(b storage.Backend, dir string, rank int, lenient bool) streamResult {
	path := filepath.Join(dir, recorder.RankFileName(rank))
	data, unmap, err := readStream(b, path)
	if err != nil {
		return streamResult{err: err}
	}
	defer func() {
		if unmap != nil {
			_ = unmap()
		}
	}()
	if Sniff(data) {
		return decodeColumnar(data, rank, lenient)
	}
	// v1 (or unrecognized — the v1 decoder reports its canonical bad-magic
	// error). Strings are copied during decode, so unmap afterwards is safe.
	gotRank, recs, derr := recorder.DecodeRankStream(bytes.NewReader(data))
	if derr == nil && gotRank != rank {
		derr = fmt.Errorf("holds rank %d", gotRank)
		recs = nil // records belong to another rank; keeping them would lie
	}
	return streamResult{recs: recs, err: derr}
}

func decodeColumnar(data []byte, rank int, lenient bool) streamResult {
	r, err := NewReader(data)
	if err != nil {
		return streamResult{columnar: true, err: err}
	}
	res := streamResult{columnar: true, declared: r.Declared(), headerOK: true}
	if r.Rank() != rank {
		res.err = fmt.Errorf("holds rank %d", r.Rank())
		return res
	}
	if lenient {
		res.recs, res.stats, res.err = r.MaterializeLenient()
	} else {
		res.recs, res.err = r.Materialize()
		res.stats = Stats{Records: len(res.recs)}
	}
	return res
}

// loadMeta reads and validates trace.meta.
func loadMeta(b storage.Backend, dir string) (recorder.Meta, error) {
	var meta recorder.Meta
	metaBytes, err := b.ReadFile(filepath.Join(dir, "trace.meta"))
	if err != nil {
		return meta, err
	}
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return meta, fmt.Errorf("recorder: parsing trace.meta: %w", err)
	}
	if meta.Ranks <= 0 {
		return meta, errors.New("recorder: trace.meta has no ranks")
	}
	return meta, nil
}

// LoadDirOn loads a trace directory, decoding rank files in parallel across
// workers (core.EffectiveWorkers semantics) and sniffing each stream's
// format. Any damaged stream fails the load; the reported error is the
// lowest-ranked failure, so retries see a deterministic message.
func LoadDirOn(b storage.Backend, dir string, workers int) (*recorder.Trace, error) {
	storage.Settle(b)
	meta, err := loadMeta(b, dir)
	if err != nil {
		return nil, err
	}
	results := make([]streamResult, meta.Ranks)
	core.ParallelFor(meta.Ranks, workers, func(rank int) {
		results[rank] = decodeRankFile(b, dir, rank, false)
	})
	tr := &recorder.Trace{Meta: meta, PerRank: make([][]recorder.Record, meta.Ranks)}
	for rank := range results {
		if rerr := results[rank].err; rerr != nil {
			return nil, fmt.Errorf("recorder: reading rank %d: %w", rank, rerr)
		}
		tr.PerRank[rank] = results[rank].recs
	}
	return tr, nil
}

// LoadDir is LoadDirOn against the local disk.
func LoadDir(dir string, workers int) (*recorder.Trace, error) {
	return LoadDirOn(storage.OS(), dir, workers)
}

// LoadDirLenientOn is the degraded-mode LoadDirOn: rank files still decode
// in parallel, every record that decodes cleanly is kept — for columnar
// streams that is per-block salvage, including blocks after a corrupt one
// when the footer survived — and the Salvage accumulates in rank order, so
// its counts and error list are deterministic regardless of worker
// scheduling. It fails only when the metadata is unusable or not a single
// record survives.
func LoadDirLenientOn(b storage.Backend, dir string, workers int) (*recorder.Trace, *recorder.Salvage, error) {
	storage.Settle(b)
	meta, err := loadMeta(b, dir)
	if err != nil {
		return nil, nil, err
	}
	results := make([]streamResult, meta.Ranks)
	core.ParallelFor(meta.Ranks, workers, func(rank int) {
		results[rank] = decodeRankFile(b, dir, rank, true)
	})
	tr := &recorder.Trace{Meta: meta, PerRank: make([][]recorder.Record, meta.Ranks)}
	sal := &recorder.Salvage{Ranks: meta.Ranks}
	for rank := range results {
		res := &results[rank]
		sal.Blocks += res.stats.Blocks
		sal.BlocksDropped += res.stats.Skipped
		switch {
		case res.err == nil && res.stats.Skipped == 0:
			sal.Full++
		case res.err == nil:
			// Walked to the end but corrupt blocks were skipped along the way.
			sal.Truncated++
			sal.Salvaged += len(res.recs)
			sal.Errs = append(sal.Errs, fmt.Errorf("%s: %d corrupt blocks skipped (%d of %d records recovered)",
				recorder.RankFileName(rank), res.stats.Skipped, len(res.recs), res.declared))
		case len(res.recs) > 0:
			sal.Truncated++
			sal.Salvaged += len(res.recs)
			sal.Errs = append(sal.Errs, fmt.Errorf("%s: %w", recorder.RankFileName(rank), res.err))
		default:
			sal.Unreadable++
			sal.Errs = append(sal.Errs, fmt.Errorf("%s: %w", recorder.RankFileName(rank), res.err))
		}
		if res.columnar && res.headerOK {
			// The columnar header declares the count up front, so the lost
			// tail is exact even when the cut ate the footer.
			if d := res.declared - len(res.recs); d > 0 {
				sal.Dropped += d
			}
		} else if !res.columnar {
			var te *recorder.TruncatedError
			if errors.As(res.err, &te) {
				sal.Dropped += te.Dropped()
			}
		}
		tr.PerRank[rank] = res.recs
		sal.Records += len(res.recs)
	}
	sal.Observe()
	salvageBlocksSkipped.Add(int64(sal.BlocksDropped))
	salvageRecordsDropped.Add(int64(sal.Dropped))
	if sal.Records == 0 {
		return nil, sal, fmt.Errorf("recorder: %s: nothing salvageable", dir)
	}
	return tr, sal, nil
}

// LoadDirLenient is LoadDirLenientOn against the local disk.
func LoadDirLenient(dir string, workers int) (*recorder.Trace, *recorder.Salvage, error) {
	return LoadDirLenientOn(storage.OS(), dir, workers)
}

// ConvertDirOn loads a trace directory (either format, strict) and rewrites
// it under dst in the requested format — the engine behind semtrace
// -convert. src and dst may not be the same directory.
func ConvertDirOn(b storage.Backend, src, dst string, f Format, workers int) (*recorder.Trace, error) {
	if filepath.Clean(src) == filepath.Clean(dst) {
		return nil, fmt.Errorf("colfmt: convert in place (%s) not supported", src)
	}
	tr, err := LoadDirOn(b, src, workers)
	if err != nil {
		return nil, err
	}
	if err := SaveDirOn(b, dst, tr, f); err != nil {
		return nil, err
	}
	return tr, nil
}

// ConvertDir is ConvertDirOn against the local disk.
func ConvertDir(src, dst string, f Format, workers int) (*recorder.Trace, error) {
	return ConvertDirOn(storage.OS(), src, dst, f, workers)
}
