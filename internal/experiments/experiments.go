// Package experiments orchestrates the reproduction of every table and
// figure in the paper's evaluation section: it runs the application
// configurations at a chosen scale, feeds the traces through the core
// analysis and renders the results with internal/report. cmd/semrepro, the
// benchmark harness and EXPERIMENTS.md generation all build on it.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/report"
	"repro/internal/wal"
)

// Sweep telemetry: per-configuration wall-clock histogram and outcome
// counters, plus one span per configuration (lane 0; the worker-pool lanes
// underneath come from core.ParallelForCtx). Names: experiments.config.*.
var (
	configWall   = obs.Default().Histogram("experiments.config.wall_ns")
	configOK     = obs.Default().Counter("experiments.config.ok")
	configFailed = obs.Default().Counter("experiments.config.failed")
)

// Scale fixes the run parameters for one reproduction pass.
type Scale struct {
	Ranks int
	PPN   int
	Seed  uint64
	// Semantics is the consistency model the sweep's file systems run under
	// (zero value = pfs.Strong, the paper's baseline).
	Semantics pfs.Semantics
	Params    apps.Params
}

// DefaultScale is the paper's small configuration: 8 nodes × 8 processes.
func DefaultScale() Scale {
	return Scale{Ranks: 64, PPN: 8, Seed: 1}
}

// TestScale is a fast configuration for unit tests.
func TestScale() Scale {
	return Scale{Ranks: 16, PPN: 2, Seed: 1}
}

// Results caches one trace per application configuration.
type Results struct {
	Scale   Scale
	ByName  map[string]*harness.Result
	Ordered []string // registry order (successful configurations only)
	// Errs holds per-configuration failures, keyed by configuration name.
	// A failed configuration is absent from ByName/Ordered but does not
	// abort the rest of the registry.
	Errs map[string]error
}

// RunAll executes every configuration of the registry at the given scale,
// fanning the runs out over a GOMAXPROCS-sized worker pool (each simulated
// job is fully self-contained — own file system, MPI world and seeded RNG —
// so concurrent runs produce byte-identical traces to serial ones). Unlike
// the historical fail-fast behavior, every configuration runs to completion:
// per-configuration failures are collected in Results.Errs and joined into
// the returned error, alongside the partial Results for the configurations
// that succeeded.
func RunAll(s Scale) (*Results, error) { return RunAllWorkers(s, 0) }

// RunAllWorkers is RunAll with an explicit worker pool size (<= 0 selects
// runtime.GOMAXPROCS, 1 runs serially in registry order).
func RunAllWorkers(s Scale, workers int) (*Results, error) {
	return RunAllCtx(context.Background(), s, SweepOptions{Workers: workers})
}

// SweepOptions hardens a registry sweep.
type SweepOptions struct {
	// Workers sizes the pool (<= 0 selects runtime.GOMAXPROCS, 1 is serial).
	Workers int
	// TaskTimeout, when positive, is a per-configuration wall-clock ceiling:
	// a configuration that exceeds it fails with a timeout error while the
	// rest of the sweep continues. The abandoned run keeps its goroutines
	// until the simulated job drains; only its result is discarded.
	TaskTimeout time.Duration
	// Checkpoint, when non-nil, journals every configuration that completes
	// successfully — the record is durable (fsync'd) before the sweep moves
	// on, so a crash at any point loses at most the in-flight
	// configurations. A result whose journal append fails is reported as
	// that configuration's error: a result that is not durable must not be
	// presented as checkpointed. Timed-out, cancelled and failed
	// configurations are never journaled and re-run on resume.
	Checkpoint *ckpt.Store
	// Resume, with Checkpoint set, replays journaled configurations from the
	// store instead of re-executing them: their cached harness.Results carry
	// record-identical traces (Result.Replayed is set) and the configuration
	// body never runs. A journaled blob that fails to decode falls back to
	// re-execution.
	Resume bool
}

// RunAllCtx is RunAll under a context with sweep hardening: cancelling ctx
// stops the sweep at the next configuration boundary (configurations that
// never started are reported as cancelled in Results.Errs), a panicking
// configuration is isolated into its own per-configuration error while the
// others run to completion, and SweepOptions.TaskTimeout bounds each
// configuration individually.
func RunAllCtx(ctx context.Context, s Scale, o SweepOptions) (*Results, error) {
	return runConfigsCtx(ctx, apps.Registry(), s, o)
}

// runConfigs is the historical sweep entry point, kept for tests that drive
// fabricated (including failing) configurations.
func runConfigs(cfgs []*apps.Config, s Scale, workers int) (*Results, error) {
	return runConfigsCtx(context.Background(), cfgs, s, SweepOptions{Workers: workers})
}

// runConfigsCtx is the sharded registry sweep behind RunAllCtx.
func runConfigsCtx(ctx context.Context, cfgs []*apps.Config, s Scale, o SweepOptions) (*Results, error) {
	type slot struct {
		res  *harness.Result
		err  error
		done bool
	}
	slots := make([]slot, len(cfgs))
	skip := make([]bool, len(cfgs))
	if o.Resume && o.Checkpoint != nil {
		for i, cfg := range cfgs {
			res, hit, err := o.Checkpoint.LookupResult(cfg.Name())
			if err != nil {
				// A journaled blob that fails to decode is treated as a
				// miss: re-running is always safe, replaying garbage never.
				continue
			}
			if hit {
				slots[i] = slot{res: res, done: true}
				skip[i] = true
			}
		}
	}
	ctxErr := core.ParallelForCtx(ctx, len(cfgs), o.Workers, func(i int) {
		if skip[i] {
			return
		}
		res, err := runCell(ctx, cfgs[i], s, o.TaskTimeout)
		if err == nil && o.Checkpoint != nil {
			if jerr := o.Checkpoint.AppendResult(cfgs[i].Name(), res); jerr != nil {
				res, err = nil, fmt.Errorf("experiments: %s: checkpoint: %w", cfgs[i].Name(), jerr)
			}
		}
		slots[i] = slot{res: res, err: err, done: true}
	})

	out := &Results{Scale: s, ByName: make(map[string]*harness.Result), Errs: make(map[string]error)}
	var errs []error
	for i, cfg := range cfgs { // registry order, regardless of completion order
		if !slots[i].done {
			// The pool stopped before this configuration started.
			err := fmt.Errorf("experiments: %s: %w", cfg.Name(), ctxErr)
			out.Errs[cfg.Name()] = err
			errs = append(errs, err)
			continue
		}
		if slots[i].err != nil {
			out.Errs[cfg.Name()] = slots[i].err
			errs = append(errs, slots[i].err)
			continue
		}
		out.ByName[cfg.Name()] = slots[i].res
		out.Ordered = append(out.Ordered, cfg.Name())
	}
	return out, errors.Join(errs...)
}

// execute is apps.Execute behind a seam so the sweep-hardening tests can
// inject panicking or hanging executions without fabricating real ones.
var execute = apps.Execute

// runCell executes one configuration with panic isolation and the optional
// per-task timeout. A panic inside the configuration (application body bugs
// surface as rank errors already; this guards the sweep machinery itself)
// becomes that cell's error instead of killing the whole sweep.
func runCell(ctx context.Context, cfg *apps.Config, s Scale, timeout time.Duration) (*harness.Result, error) {
	// Read the seam once, synchronously: a timed-out cell's goroutine can
	// outlive the sweep, and must not touch the package variable after the
	// caller (or a test's cleanup) moves on.
	exec := execute
	run := func() (res *harness.Result, err error) {
		span := obs.Default().Tracer().Start(cfg.Name(), "experiments.config")
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				res, err = nil, fmt.Errorf("experiments: %s: panic: %v\n%s", cfg.Name(), rec, debug.Stack())
			}
			span.End()
			configWall.Observe(time.Since(start).Nanoseconds())
			if err != nil {
				configFailed.Inc()
			} else {
				configOK.Inc()
			}
		}()
		r, e := exec(cfg, apps.Options{
			Ranks: s.Ranks, PPN: s.PPN, Seed: s.Seed, Semantics: s.Semantics,
			Params: s.Params,
		})
		if e == nil {
			e = r.Err()
		}
		if e != nil {
			return nil, fmt.Errorf("experiments: %s: %w", cfg.Name(), e)
		}
		return r, nil
	}
	if timeout <= 0 && ctx.Done() == nil {
		return run()
	}
	type outcome struct {
		res *harness.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, e := run()
		ch <- outcome{r, e}
	}()
	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case oc := <-ch:
		return oc.res, oc.err
	case <-expired:
		return nil, fmt.Errorf("experiments: %s: timed out after %v", cfg.Name(), timeout)
	case <-ctx.Done():
		return nil, fmt.Errorf("experiments: %s: %w", cfg.Name(), ctx.Err())
	}
}

// RunOne executes a single configuration at the given scale.
func RunOne(name string, s Scale) (*harness.Result, error) {
	cfg, ok := apps.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown config %q", name)
	}
	res, err := apps.Execute(cfg, apps.Options{
		Ranks: s.Ranks, PPN: s.PPN, Seed: s.Seed, Semantics: s.Semantics,
		Params: s.Params,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// Table1 renders the static PFS categorization.
func Table1() string { return report.Table1() }

// Table3 classifies every configuration's trace and renders the pattern
// matrix.
func Table3(r *Results) string {
	var rows []report.Table3Row
	for _, name := range r.Ordered {
		fas := core.ExtractShared(r.ByName[name].Trace)
		rows = append(rows, report.Table3Row{
			Config:   name,
			Patterns: core.ClassifyHighLevel(fas, core.HLOptions{WorldSize: r.Scale.Ranks}),
		})
	}
	return report.Table3(rows)
}

// Table4 detects conflicts under session and commit semantics and renders
// the check-mark table.
func Table4(r *Results) string {
	return report.Table4(Table4Rows(r))
}

// Table4Rows computes the Table 4 signatures for every configuration.
func Table4Rows(r *Results) []report.Table4Row {
	var rows []report.Table4Row
	for _, name := range r.Ordered {
		tr := r.ByName[name].Trace
		ms := core.AnalyzeConflictsAll(tr, pfs.Session, pfs.Commit)
		rows = append(rows, report.Table4Row{
			Config: name, Library: tr.Meta.Library,
			Session: ms[0].Signature, Commit: ms[1].Signature,
		})
	}
	return rows
}

// Table5 renders the configuration inventory from the registry.
func Table5() string {
	var rows [][2]string
	for _, cfg := range apps.Registry() {
		rows = append(rows, [2]string{cfg.Name(), cfg.Description})
	}
	return report.Table5(rows)
}

// Figure1 renders the access-pattern mixes; returns the text figure and the
// CSV series.
func Figure1(r *Results) (string, string) {
	var rows []report.Figure1Row
	for _, name := range r.Ordered {
		fas := core.ExtractShared(r.ByName[name].Trace)
		rows = append(rows, report.Figure1Row{
			Config: name,
			Global: core.GlobalPattern(fas),
			Local:  core.LocalPattern(fas),
		})
	}
	return report.Figure1(rows), report.Figure1CSV(rows)
}

// Figure2 produces the six panels of Figure 2 as CSV scatter series
// (offset/time per rank) from the FLASH traces: checkpoint and plot files
// under collective (fbs) and independent (nofbs) I/O. SVG renderings of the
// checkpoint panels are included alongside.
func Figure2(r *Results) map[string]string {
	panels := make(map[string]string)
	for _, variant := range []string{"fbs", "nofbs"} {
		res, ok := r.ByName["FLASH-"+variant]
		if !ok {
			continue
		}
		fas := core.ExtractShared(res.Trace)
		chkCSV := report.Figure2CSVOf(fas, "/flash_hdf5_chk_0000")
		panels["flash_"+variant+"_checkpoint.csv"] = chkCSV
		panels["flash_"+variant+"_plot.csv"] = report.Figure2CSVOf(fas, "/flash_hdf5_plt_cnt_0000")
		// Single-rank view (Figure 2f): rank 0's accesses only.
		panels["flash_"+variant+"_checkpoint_rank0.csv"] = filterCSVRank(chkCSV, 0)
		panels["flash_"+variant+"_checkpoint.svg"] = report.Figure2SVGOf(fas,
			"/flash_hdf5_chk_0000", "FLASH-"+variant+" checkpoint file, write accesses over time")
		panels["flash_"+variant+"_plot.svg"] = report.Figure2SVGOf(fas,
			"/flash_hdf5_plt_cnt_0000", "FLASH-"+variant+" plot file, write accesses over time")
	}
	return panels
}

func filterCSVRank(csv string, rank int) string {
	lines := strings.Split(csv, "\n")
	var out []string
	want := fmt.Sprintf(",%d,", rank)
	for i, l := range lines {
		if i == 0 || strings.Contains(l, want) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// Figure3 renders the metadata-operation matrix.
func Figure3(r *Results) string {
	var rows []report.Figure3Row
	for _, name := range r.Ordered {
		rows = append(rows, report.Figure3Row{
			Config: name,
			Census: core.MetadataCensus(r.ByName[name].Trace),
		})
	}
	return report.Figure3(rows)
}

// VerdictsReport renders the §6.3 per-application bottom line.
func VerdictsReport(r *Results) string {
	rows := make([]struct {
		Config  string
		Verdict core.Verdict
	}, 0, len(r.Ordered))
	for _, name := range r.Ordered {
		rows = append(rows, struct {
			Config  string
			Verdict core.Verdict
		}{name, core.Analyze(r.ByName[name].Trace)})
	}
	return report.Verdicts(rows)
}

// MetaTable renders the future-work extension: cross-process metadata
// dependencies per configuration (which applications require prompt
// metadata visibility).
func MetaTable(r *Results) string {
	var b strings.Builder
	b.WriteString("Cross-process metadata dependencies (§7 future-work extension)\n\n")
	fmt.Fprintf(&b, "%-20s  %-10s  %-10s  %-10s  %s\n", "Configuration", "create-use", "remove-use", "resize-use", "pairs")
	b.WriteString(strings.Repeat("-", 70) + "\n")
	mark := func(v bool) string {
		if v {
			return "x"
		}
		return ""
	}
	for _, name := range r.Ordered {
		cs := core.DetectMetadataConflicts(r.ByName[name].Trace)
		sig := core.MetaSignatureOf(cs)
		fmt.Fprintf(&b, "%-20s  %-10s  %-10s  %-10s  %d\n",
			name, mark(sig.CreateUse), mark(sig.RemoveUse), mark(sig.ResizeUse), len(cs))
	}
	return b.String()
}

// BenchResult is one cell of the PFS-semantics ablation.
type BenchResult struct {
	Semantics     pfs.Semantics
	Workload      string
	Ranks         int
	WAL           bool   // writes acknowledged by a host-side write-ahead log
	ElapsedNS     uint64 // simulated wall time of the I/O phase
	LockAcquires  int64
	LockContended int64
	MetaOps       int64
	BytesWritten  int64
}

// PFSBenchWorkloads lists the ablation workloads.
func PFSBenchWorkloads() []string { return []string{"n1-strided", "nn-filepp", "n1-small"} }

// PFSBench runs a synthetic workload against a PFS with the given semantics
// and reports the simulated elapsed time: the executable version of the
// paper's motivation that strong semantics' per-operation locking is the
// bottleneck relaxed-semantics PFSs remove (Sections 1 and 3).
func PFSBench(workload string, sem pfs.Semantics, ranks, ppn int, block int64, opsPerRank int) (BenchResult, error) {
	return pfsBench(workload, sem, ranks, ppn, block, opsPerRank, nil)
}

// PFSBenchWAL is PFSBench with every rank's writes acknowledged by a
// host-side write-ahead log (internal/wal): the ablation's fourth axis —
// how much of the strong-semantics elapsed time the WAL's local
// acknowledgement hides, per workload shape.
func PFSBenchWAL(workload string, sem pfs.Semantics, ranks, ppn int, block int64, opsPerRank int) (BenchResult, error) {
	return pfsBench(workload, sem, ranks, ppn, block, opsPerRank, &wal.Options{NoFsync: true})
}

func pfsBench(workload string, sem pfs.Semantics, ranks, ppn int, block int64, opsPerRank int, walOpts *wal.Options) (BenchResult, error) {
	body := func(ctx *harness.Ctx) error {
		switch workload {
		case "n1-strided":
			fd, err := ctx.OS.Open("/shared.dat", recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			for k := 0; k < opsPerRank; k++ {
				off := int64(k)*int64(ctx.Size)*block + int64(ctx.Rank)*block
				if _, err := ctx.OS.Pwrite(fd, make([]byte, block), off); err != nil {
					return err
				}
			}
			return ctx.OS.Close(fd)
		case "nn-filepp":
			fd, err := ctx.OS.Open(fmt.Sprintf("/pp/out.%04d", ctx.Rank),
				recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			for k := 0; k < opsPerRank; k++ {
				if _, err := ctx.OS.Write(fd, make([]byte, block)); err != nil {
					return err
				}
			}
			return ctx.OS.Close(fd)
		case "n1-small":
			fd, err := ctx.OS.Open("/small.dat", recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			small := block / 16
			if small < 8 {
				small = 8
			}
			for k := 0; k < opsPerRank; k++ {
				off := int64(k)*int64(ctx.Size)*small + int64(ctx.Rank)*small
				if _, err := ctx.OS.Pwrite(fd, make([]byte, small), off); err != nil {
					return err
				}
			}
			return ctx.OS.Close(fd)
		}
		return fmt.Errorf("experiments: unknown workload %q", workload)
	}
	res, err := harness.Run(harness.Config{Ranks: ranks, PPN: ppn, Semantics: sem, WAL: walOpts},
		recorder.Meta{App: "pfsbench", Variant: workload}, body)
	if err != nil {
		return BenchResult{}, err
	}
	if err := res.Err(); err != nil {
		return BenchResult{}, err
	}
	var elapsed uint64
	for _, rs := range res.Trace.PerRank {
		if len(rs) > 0 && rs[len(rs)-1].TEnd > elapsed {
			elapsed = rs[len(rs)-1].TEnd
		}
	}
	st := res.FS.Stats()
	return BenchResult{
		Semantics:     sem,
		Workload:      workload,
		Ranks:         ranks,
		WAL:           walOpts != nil,
		ElapsedNS:     elapsed,
		LockAcquires:  st.LockAcquires,
		LockContended: st.LockContended,
		MetaOps:       st.MetaOps,
		BytesWritten:  st.BytesWritten,
	}, nil
}

// PFSBenchTable renders a semantics × workload sweep.
func PFSBenchTable(results []BenchResult) string {
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Workload != results[j].Workload {
			return results[i].Workload < results[j].Workload
		}
		if results[i].Semantics != results[j].Semantics {
			return results[i].Semantics < results[j].Semantics
		}
		return !results[i].WAL && results[j].WAL
	})
	var b strings.Builder
	b.WriteString("Simulated PFS cost by consistency semantics (ablation)\n\n")
	fmt.Fprintf(&b, "%-12s  %-9s  %-4s  %6s  %12s  %10s  %10s\n",
		"workload", "semantics", "wal", "ranks", "elapsed(ms)", "lock acqs", "contended")
	b.WriteString(strings.Repeat("-", 70) + "\n")
	for _, r := range results {
		mode := "-"
		if r.WAL {
			mode = "on"
		}
		fmt.Fprintf(&b, "%-12s  %-9s  %-4s  %6d  %12.2f  %10d  %10d\n",
			r.Workload, r.Semantics, mode, r.Ranks, float64(r.ElapsedNS)/1e6,
			r.LockAcquires, r.LockContended)
	}
	return b.String()
}
