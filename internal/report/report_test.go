package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/recorder"
)

func TestTable1ContainsRegistry(t *testing.T) {
	out := Table1()
	for _, name := range []string{"Lustre", "UnifyFS", "NFS", "PLFS"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table1 missing %s:\n%s", name, out)
		}
	}
	for _, heading := range []string{"Strong Consistency", "Commit Consistency", "Session Consistency", "Eventual Consistency"} {
		if !strings.Contains(out, heading) {
			t.Errorf("Table1 missing %q", heading)
		}
	}
}

func TestTable3PlacesAppsInCells(t *testing.T) {
	rows := []Table3Row{
		{Config: "AppA", Patterns: []core.HighLevelPattern{{X: core.N, Y: core.One, Layout: core.LayoutStrided}}},
		{Config: "AppB", Patterns: []core.HighLevelPattern{{X: core.One, Y: core.One, Layout: core.LayoutConsecutive}}},
		{Config: "AppB", Patterns: []core.HighLevelPattern{{X: core.One, Y: core.One, Layout: core.LayoutConsecutive}}},
	}
	out := Table3(rows)
	if !strings.Contains(out, "AppA") || !strings.Contains(out, "AppB") {
		t.Fatalf("apps missing from table:\n%s", out)
	}
	// Dedup: AppB appears once in the 1-1 consecutive cell.
	if strings.Count(out, "AppB") != 1 {
		t.Fatalf("AppB duplicated:\n%s", out)
	}
}

func TestTable4Marks(t *testing.T) {
	rows := []Table4Row{
		{Config: "FLASH", Library: "HDF5",
			Session: core.ConflictSignature{WAWSame: true, WAWDiff: true},
			Commit:  core.ConflictSignature{}},
		{Config: "GTC", Library: "POSIX"},
	}
	out := Table4(rows)
	if !strings.Contains(out, "conflicts disappear") {
		t.Fatalf("FLASH commit-difference marker missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var flashLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "FLASH") {
			flashLine = l
		}
	}
	if strings.Count(flashLine, "x") != 2 {
		t.Fatalf("FLASH row should have exactly 2 marks: %q", flashLine)
	}
}

func TestFigure1BarsSumSane(t *testing.T) {
	rows := []Figure1Row{
		{Config: "X", Global: core.PatternMix{Consecutive: 3, Random: 1}, Local: core.PatternMix{Consecutive: 4}},
	}
	out := Figure1(rows)
	if !strings.Contains(out, "c= 75.0%") || !strings.Contains(out, "c=100.0%") {
		t.Fatalf("percentages wrong:\n%s", out)
	}
	csv := Figure1CSV(rows)
	if !strings.Contains(csv, "X,global,75.0,0.0,25.0") || !strings.Contains(csv, "X,local,100.0,0.0,0.0") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestFigure2CSV(t *testing.T) {
	tr := &recorder.Trace{
		Meta: recorder.Meta{Ranks: 1},
		PerRank: [][]recorder.Record{{
			{Rank: 0, Layer: recorder.LayerPOSIX, Func: recorder.FuncOpen, TStart: 1, TEnd: 2,
				Path: "/chk", Args: []int64{recorder.OCreat | recorder.OWronly, 0, 3}},
			{Rank: 0, Layer: recorder.LayerPOSIX, Func: recorder.FuncPwrite, TStart: 3000, TEnd: 4000,
				Args: []int64{3, 100, 500, 100}},
			{Rank: 0, Layer: recorder.LayerPOSIX, Func: recorder.FuncClose, TStart: 5000, TEnd: 6000,
				Args: []int64{3}},
		}},
	}
	csv := Figure2CSV(tr, "/chk")
	if !strings.Contains(csv, "3.0,0,500,100") {
		t.Fatalf("scatter row missing:\n%s", csv)
	}
	if Figure2CSV(tr, "/other") != "time_us,rank,offset,bytes\n" {
		t.Fatal("unknown path should give header only")
	}
}

func TestFigure3OriginLetters(t *testing.T) {
	c := &core.Census{Counts: map[string]map[recorder.Func]int{
		"App":  {recorder.FuncStat: 2},
		"HDF5": {recorder.FuncStat: 1, recorder.FuncFtruncate: 1},
	}}
	out := Figure3([]Figure3Row{{Config: "ParaDiS-HDF5", Census: c}})
	if !strings.Contains(out, "AH") {
		t.Fatalf("stat cell should read AH (app+HDF5):\n%s", out)
	}
	if !strings.Contains(out, "ftruncate") {
		t.Fatalf("ftruncate column missing:\n%s", out)
	}
}

func TestVerdictsRendering(t *testing.T) {
	out := Verdicts([]struct {
		Config  string
		Verdict core.Verdict
	}{
		{"A", core.Verdict{Weakest: 2, NeedsPerProcessOrdering: true}},
	})
	if !strings.Contains(out, "session") || !strings.Contains(out, "BurstFS") {
		t.Fatalf("verdict rendering wrong:\n%s", out)
	}
}

func TestTable5(t *testing.T) {
	out := Table5([][2]string{{"FLASH-fbs", "Sedov explosion"}})
	if !strings.Contains(out, "Sedov") {
		t.Fatal("description missing")
	}
}
