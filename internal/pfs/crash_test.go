package pfs

import (
	"bytes"
	"errors"
	"testing"
)

// Failure injection: a process dying before its commit loses exactly the
// data the relaxed models buffer — the durability consequence of commit
// semantics that motivates fsync-per-checkpoint protocols. Under strong
// semantics (publish-on-write) the same crash loses nothing.

func TestCrashLosesUncommittedWrites(t *testing.T) {
	fs := newFS(Commit)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	h := mustOpen(t, w, "/ckpt", OCreat|OWronly, 10)
	writeAll(t, h, 0, []byte("saved"), 20)
	if _, err := h.Commit(30); err != nil { // fsync: first half durable
		t.Fatal(err)
	}
	writeAll(t, h, 5, []byte("-lost"), 40) // never committed
	w.Crash()

	hr := mustOpen(t, r, "/ckpt", ORdonly, 50)
	got := readAll(t, hr, 0, 10, 60)
	if !bytes.Equal(got, []byte("saved")) {
		t.Fatalf("post-crash content = %q, want only the committed prefix", got)
	}
	// The crashed client's handles are dead.
	if _, err := h.Write(0, []byte("x"), 70); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: %v", err)
	}
	if !w.Crashed() {
		t.Fatal("Crashed() false")
	}
}

func TestCrashUnderStrongLosesNothing(t *testing.T) {
	fs := newFS(Strong)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	h := mustOpen(t, w, "/ckpt", OCreat|OWronly, 10)
	writeAll(t, h, 0, []byte("published"), 20)
	w.Crash() // publish-on-write: nothing pending to lose
	hr := mustOpen(t, r, "/ckpt", ORdonly, 30)
	if got := readAll(t, hr, 0, 9, 40); !bytes.Equal(got, []byte("published")) {
		t.Fatalf("strong semantics lost data at crash: %q", got)
	}
}

func TestCrashUnderSessionLosesWholeOpenSession(t *testing.T) {
	fs := newFS(Session)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	h := mustOpen(t, w, "/ckpt", OCreat|OWronly, 10)
	writeAll(t, h, 0, []byte("everything"), 20)
	// fsync does not publish under session semantics — the whole session's
	// data is gone if the process dies before close.
	if _, err := h.Commit(30); err != nil {
		t.Fatal(err)
	}
	w.Crash()
	hr := mustOpen(t, r, "/ckpt", ORdonly, 40)
	if got := readAll(t, hr, 0, 10, 50); len(got) != 0 {
		t.Fatalf("session semantics surfaced uncloseable data after crash: %q", got)
	}
}

func TestCrashDoesNotAffectOtherClients(t *testing.T) {
	fs := newFS(Commit)
	a := fs.NewClient(0, 0)
	b := fs.NewClient(1, 0)
	ha := mustOpen(t, a, "/a", OCreat|OWronly, 10)
	hb := mustOpen(t, b, "/b", OCreat|OWronly, 10)
	writeAll(t, ha, 0, []byte("a"), 20)
	writeAll(t, hb, 0, []byte("b"), 20)
	a.Crash()
	if _, err := hb.Commit(30); err != nil {
		t.Fatal(err)
	}
	r := fs.NewClient(2, 0)
	hr := mustOpen(t, r, "/b", ORdonly, 40)
	if got := readAll(t, hr, 0, 1, 50); !bytes.Equal(got, []byte("b")) {
		t.Fatalf("survivor's data affected by peer crash: %q", got)
	}
}
