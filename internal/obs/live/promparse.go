package live

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// A strict Prometheus text-format (0.0.4) parser, so CI can validate the
// /metrics exposition without an external promtool dependency. "Strict"
// means it rejects, rather than skips, anything malformed: bad metric or
// label names, unquoted or badly-escaped label values, samples for a family
// whose # TYPE has not been declared yet, duplicate TYPE/HELP lines,
// duplicate samples, non-numeric values, and histogram families whose
// cumulative buckets decrease or whose le="+Inf" disagrees with _count.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string            // full sample name, e.g. "wal_ack_ns_bucket"
	Labels map[string]string // nil when the sample has no labels
	Value  float64
}

// PromFamily is one metric family: its declared type and samples in file
// order.
type PromFamily struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", "summary", "untyped"
	Help    string
	Samples []PromSample
}

// PromMetrics is a parsed exposition, keyed by family name.
type PromMetrics map[string]*PromFamily

// Value returns the single sample of a counter/gauge family (and whether
// the family exists with exactly one sample).
func (m PromMetrics) Value(family string) (float64, bool) {
	f, ok := m[family]
	if !ok || len(f.Samples) != 1 {
		return 0, false
	}
	return f.Samples[0].Value, true
}

// Families returns the family names in sorted order.
func (m PromMetrics) Families() []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// familyOf maps a sample name to its family: histogram/summary series drop
// the _bucket/_sum/_count suffix when that family was declared.
func familyOf(sample string, declared map[string]*PromFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base != sample {
			if f, ok := declared[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
				return base
			}
		}
	}
	return sample
}

// ParsePromText parses and validates a text exposition. Any violation
// returns an error naming the offending line.
func ParsePromText(text string) (PromMetrics, error) {
	families := make(PromMetrics)
	seenSamples := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseCommentLine(line, lineNo, families); err != nil {
				return nil, err
			}
			continue
		}
		sample, err := parseSampleLine(line, lineNo)
		if err != nil {
			return nil, err
		}
		famName := familyOf(sample.Name, families)
		fam, ok := families[famName]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %q before its # TYPE declaration", lineNo, sample.Name)
		}
		key := sample.Name + labelKey(sample.Labels)
		if seenSamples[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		seenSamples[key] = true
		fam.Samples = append(fam.Samples, sample)
	}
	for _, fam := range families {
		if fam.Type == "" {
			return nil, fmt.Errorf("family %q has # HELP but no # TYPE", fam.Name)
		}
		if len(fam.Samples) == 0 {
			return nil, fmt.Errorf("family %q declared but has no samples", fam.Name)
		}
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

func parseCommentLine(line string, lineNo int, families PromMetrics) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // plain comment: ignored, per the format
	}
	if len(fields) < 4 {
		return fmt.Errorf("line %d: malformed # %s line", lineNo, fields[1])
	}
	name := fields[2]
	if !validPromName(name) {
		return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
	}
	fam := families[name]
	if fam == nil {
		fam = &PromFamily{Name: name}
		families[name] = fam
	}
	if fields[1] == "HELP" {
		if fam.Help != "" {
			return fmt.Errorf("line %d: duplicate # HELP for %q", lineNo, name)
		}
		fam.Help = fields[3]
		return nil
	}
	if fam.Type != "" {
		return fmt.Errorf("line %d: duplicate # TYPE for %q", lineNo, name)
	}
	if !promTypes[fields[3]] {
		return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
	}
	if len(fam.Samples) > 0 {
		return fmt.Errorf("line %d: # TYPE for %q after its samples", lineNo, name)
	}
	fam.Type = fields[3]
	return nil
}

func parseSampleLine(line string, lineNo int) (PromSample, error) {
	var s PromSample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("line %d: sample %q has no value", lineNo, line)
	}
	s.Name = rest[:nameEnd]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("line %d: invalid sample name %q", lineNo, s.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		labels, remainder, err := parseLabels(rest, lineNo)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = remainder
	}
	rest = strings.TrimLeft(rest, " ")
	valueField := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		// An optional timestamp may follow the value; it must be an integer.
		valueField = rest[:sp]
		ts := strings.TrimSpace(rest[sp+1:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return s, fmt.Errorf("line %d: bad timestamp %q", lineNo, ts)
		}
	}
	v, err := strconv.ParseFloat(valueField, 64)
	if err != nil {
		return s, fmt.Errorf("line %d: bad sample value %q", lineNo, valueField)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {name="value",...} block (rest starts at '{') and
// returns the labels plus the unconsumed tail.
func parseLabels(rest string, lineNo int) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("line %d: malformed label block", lineNo)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("line %d: invalid label name %q", lineNo, name)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("line %d: duplicate label %q", lineNo, name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("line %d: label %q value not quoted", lineNo, name)
		}
		value, remainder, err := parseQuoted(rest, lineNo)
		if err != nil {
			return nil, "", err
		}
		labels[name] = value
		rest = remainder
		switch {
		case strings.HasPrefix(rest, ","):
			rest = rest[1:]
		case strings.HasPrefix(rest, "}"):
		default:
			return nil, "", fmt.Errorf("line %d: expected ',' or '}' after label %q", lineNo, name)
		}
	}
}

// parseQuoted consumes a double-quoted label value (rest starts at '"'),
// honoring the format's \\, \" and \n escapes — anything else is an error.
func parseQuoted(rest string, lineNo int) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("line %d: truncated escape in label value", lineNo)
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("line %d: bad escape \\%c in label value", lineNo, rest[i])
			}
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("line %d: unterminated label value", lineNo)
}

func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, labels[k])
	}
	return b.String()
}

// validateHistogram enforces the histogram series contract: every _bucket
// has an le label, the cumulative counts are nondecreasing in le order,
// le="+Inf" exists, and it equals the _count sample.
func validateHistogram(fam *PromFamily) error {
	type bkt struct {
		le    float64
		inf   bool
		value float64
	}
	var buckets []bkt
	var count *float64
	sawSum := false
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %q: _bucket sample without le label", fam.Name)
			}
			if le == "+Inf" {
				buckets = append(buckets, bkt{inf: true, value: s.Value})
				continue
			}
			f, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %q: bad le %q", fam.Name, le)
			}
			buckets = append(buckets, bkt{le: f, value: s.Value})
		case fam.Name + "_count":
			v := s.Value
			count = &v
		case fam.Name + "_sum":
			sawSum = true
		default:
			return fmt.Errorf("histogram %q: unexpected sample %q", fam.Name, s.Name)
		}
	}
	if count == nil || !sawSum {
		return fmt.Errorf("histogram %q: missing _count or _sum", fam.Name)
	}
	sort.SliceStable(buckets, func(i, j int) bool {
		if buckets[i].inf != buckets[j].inf {
			return !buckets[i].inf // +Inf sorts last
		}
		return buckets[i].le < buckets[j].le
	})
	if len(buckets) == 0 || !buckets[len(buckets)-1].inf {
		return fmt.Errorf("histogram %q: missing le=\"+Inf\" bucket", fam.Name)
	}
	prev := -1.0
	for _, b := range buckets {
		if b.value < prev {
			return fmt.Errorf("histogram %q: cumulative buckets decrease (%g after %g)", fam.Name, b.value, prev)
		}
		prev = b.value
	}
	if inf := buckets[len(buckets)-1].value; inf != *count {
		return fmt.Errorf("histogram %q: le=\"+Inf\" (%g) != _count (%g)", fam.Name, inf, *count)
	}
	return nil
}
