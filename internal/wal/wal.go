// Package wal is a per-client host-side write-ahead log in front of the
// simulated parallel file system (internal/pfs). It models the node-local
// logging tier that systems like ParaLog and iFast put under checkpoint
// bursts: a write is acknowledged as soon as it is CRC-framed, appended and
// fsync'd to a local log file, and a background drainer replays it into the
// pfs data path with bounded in-flight depth, retrying transient faults
// with jittered exponential backoff. When the local log cannot absorb the
// burst — the log disk fails or the drain queue exceeds its watermark —
// the log degrades gracefully to synchronous write-through.
//
// Consistency is preserved per model by two ordering rules (DESIGN.md §13):
// drain is strictly FIFO per client, and every non-write operation on a
// WAL-attached client (read, commit, close, truncate, laminate, visible
// size, open) is a full drain barrier. The pfs therefore observes exactly
// the program-order op sequence it would without the WAL, with each drained
// write carrying the simulated timestamp captured at ack time — so the
// formal specs in internal/consistency accept WAL-mediated histories for
// all four models.
package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/storage"
)

// Options configures one per-rank Log.
type Options struct {
	// Dir holds the per-rank log files ("rank-%04d.wal"). Empty means a
	// private temp dir removed on Close — right for benchmarks; crash
	// recovery needs a caller-owned Dir that survives the process.
	Dir string
	// Backend is the durable store holding the log files. Nil means the
	// local OS disk (storage.OS()), byte-identical to the pre-seam layout.
	Backend storage.Backend
	// MaxInflight bounds how many queued records one background drain batch
	// replays per lock hold. Default 16.
	MaxInflight int
	// Watermark is the drain-queue depth at which new writes degrade to
	// synchronous write-through (after first forcing a full drain), keeping
	// host memory and replay lag bounded. Default 256.
	Watermark int
	// MaxRetries bounds per-record drain retries on pfs.ErrTransient before
	// the record is dropped and the error surfaced. Default 6.
	MaxRetries int
	// Retry shapes the drain retry backoff (zero value = package defaults).
	Retry Backoff
	// AckBaseNS and AckBytesPerNS price the simulated acknowledgement of a
	// logged write: cost = AckBaseNS + len/AckBytesPerNS. The defaults
	// (1500ns + 1ns per 8 bytes) model a node-local NVMe append — far under
	// sim.CostModel's parallel-FS write path, which is the point of the WAL.
	AckBaseNS     uint64
	AckBytesPerNS uint64
	// NoFsync skips the per-append fsync. Test/bench-only: it voids the
	// durability guarantee that makes acked writes crash-safe.
	NoFsync bool
}

func (o Options) withDefaults() Options {
	if o.Backend == nil {
		o.Backend = storage.OS()
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 16
	}
	if o.Watermark <= 0 {
		o.Watermark = 256
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 6
	}
	o.Retry = o.Retry.WithDefaults()
	if o.AckBaseNS == 0 {
		o.AckBaseNS = 1500
	}
	if o.AckBytesPerNS == 0 {
		o.AckBytesPerNS = 8
	}
	return o
}

// Stats counts one Log's activity. Everything except retry timing is a
// deterministic function of the run.
type Stats struct {
	Acked        int64 // writes acknowledged from the local log
	AckedBytes   int64
	Drained      int64 // records replayed into the pfs backend
	WriteThrough int64 // writes degraded to synchronous write-through
	Retries      int64 // drain retries after transient pfs faults
	QueuePeak    int   // high-water drain-queue depth
	Salvaged     int   // records salvaged from a pre-existing log file
}

type queued struct {
	h       *pfs.Handle
	off     int64
	data    []byte
	now     uint64 // simulated ack timestamp, replayed verbatim at drain
	attempt int
	// Causal-trace hand-off (obs spans): trace is the write's chain ID,
	// parent the ack span the drainer's publish span links under. Zero when
	// tracing is off.
	trace, parent uint64
	// ackWall is the host wall clock at acknowledgement; the drainer turns
	// it into the per-model ack-to-visible lag observation.
	ackWall int64
}

// Log is one rank's write-ahead log. All operations on the underlying
// pfs.Client and its handles MUST go through the Log once it is attached:
// pfs clients are not goroutine-safe, and l.mu is what serializes the
// application thread against the background drainer.
type Log struct {
	rank    int
	opts    Options
	dir     string
	ownsDir bool
	file    storage.File

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []queued
	stopped  bool
	degraded bool  // sticky write-through after a local log failure
	deferred error // first background drain error, surfaced at next foreground op
	stats    Stats

	done chan struct{}
}

// Open creates (or reopens) rank's log file under opts.Dir and starts the
// background drainer. A pre-existing file is salvaged ckpt-style: complete
// records are kept (they are acked writes a previous incarnation had not
// yet confirmed drained — recovery wants them; see RecoverDir), a torn tail
// is truncated so new appends land on a record boundary.
func Open(rank int, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	dir := opts.Dir
	ownsDir := false
	if dir == "" {
		d, err := storage.TempDir(opts.Backend, "semfs-wal-")
		if err != nil {
			return nil, fmt.Errorf("wal: temp dir: %w", err)
		}
		dir, ownsDir = d, true
	} else if err := opts.Backend.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	path := filepath.Join(dir, logName(rank))
	f, err := opts.Backend.Open(path, storage.OCreate|storage.ORdwr, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	recs, _, good, err := recoverRecords(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: salvaging %s: %w", path, err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{rank: rank, opts: opts, dir: dir, ownsDir: ownsDir, file: f,
		done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	l.stats.Salvaged = len(recs)
	go l.drainLoop()
	return l, nil
}

func logName(rank int) string { return fmt.Sprintf("rank-%04d.wal", rank) }

// Dir returns the directory holding this log's file.
func (l *Log) Dir() string { return l.dir }

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Degraded reports whether the log has stuck in synchronous write-through
// after a local append failure.
func (l *Log) Degraded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

func (l *Log) takeDeferredLocked() error {
	err := l.deferred
	l.deferred = nil
	return err
}

// Write acknowledges one application write. Fast path: durable local
// append, enqueue for background drain, return the (cheap) simulated ack
// cost. Degraded paths — sticky log failure or queue over watermark —
// drain everything and write through synchronously at full pfs cost.
func (l *Log) Write(h *pfs.Handle, off int64, data []byte, now uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return 0, err
	}
	if l.degraded || l.stopped || len(l.queue) >= l.opts.Watermark {
		return l.writeThroughLocked(h, off, data, now)
	}
	// The causal chain starts here: the root span is the acked write, its
	// trace ID rides the queued record to the drainer's publish span and
	// into the pfs history event (Perfetto: search args.trace).
	sp := obs.Default().Tracer().StartTrace("wal.write", "wal").OnLane(l.rank)
	ap := sp.Child("wal.append")
	if _, err := appendRecord(l.file, Record{Path: h.Path(), Off: off, Now: now, Data: data}, l.opts.NoFsync); err != nil {
		// Local log disk failed (full, unwritable, gone). The write itself
		// can still succeed the slow way; stick in write-through so no
		// later ack ever rests on a log that cannot hold it.
		ap.End()
		sp.End()
		l.degraded = true
		degradeLogFailures.Inc()
		obs.Flight().Record(flightDegrade, int32(l.rank), sp.TraceID(), off, int64(len(data)))
		return l.writeThroughLocked(h, off, data, now)
	}
	ap.End()
	cp := make([]byte, len(data))
	copy(cp, data)
	l.queue = append(l.queue, queued{h: h, off: off, data: cp, now: now,
		trace: sp.TraceID(), parent: sp.ID(), ackWall: time.Now().UnixNano()})
	sp.End()
	if n := len(l.queue); n > l.stats.QueuePeak {
		l.stats.QueuePeak = n
		queueDepthPeak.SetMax(int64(n))
	}
	l.stats.Acked++
	l.stats.AckedBytes += int64(len(data))
	l.cond.Signal()
	cost := l.opts.AckBaseNS + uint64(len(data))/l.opts.AckBytesPerNS
	ackCostNS.Observe(int64(cost))
	return cost, nil
}

func (l *Log) writeThroughLocked(h *pfs.Handle, off int64, data []byte, now uint64) (uint64, error) {
	l.stats.WriteThrough++
	degradeWriteThrough.Inc()
	obs.Flight().Record(flightWriteThrough, int32(l.rank), 0, off, int64(len(data)))
	if err := l.drainAllLocked(); err != nil {
		return 0, err
	}
	return h.Write(off, data, now)
}

// Barrier drains the queue and surfaces any deferred drain error. Every
// non-write operation routed through the Log is implicitly one of these.
func (l *Log) Barrier() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return err
	}
	return l.drainAllLocked()
}

// Open is a drain barrier plus pfs open, so an O_TRUNC open can never be
// reordered ahead of writes acked before it.
func (l *Log) Open(c *pfs.Client, path string, flags int, now uint64) (*pfs.Handle, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return nil, 0, err
	}
	if err := l.drainAllLocked(); err != nil {
		return nil, 0, err
	}
	return c.Open(path, flags, now)
}

// Read is a drain barrier plus pfs read: read-your-writes holds because
// every acked write is in the pfs before the read issues.
func (l *Log) Read(h *pfs.Handle, off, n int64, now uint64) ([]byte, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return nil, 0, err
	}
	if err := l.drainAllLocked(); err != nil {
		return nil, 0, err
	}
	return h.Read(off, n, now)
}

// Commit is a drain barrier plus pfs commit — the fsync the application
// sees covers every write it has been acked for.
func (l *Log) Commit(h *pfs.Handle, now uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return 0, err
	}
	if err := l.drainAllLocked(); err != nil {
		return 0, err
	}
	return h.Commit(now)
}

// CloseHandle is a drain barrier plus pfs close.
func (l *Log) CloseHandle(h *pfs.Handle, now uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return 0, err
	}
	if err := l.drainAllLocked(); err != nil {
		return 0, err
	}
	return h.Close(now)
}

// Laminate is a drain barrier plus pfs laminate.
func (l *Log) Laminate(h *pfs.Handle, now uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return 0, err
	}
	if err := l.drainAllLocked(); err != nil {
		return 0, err
	}
	return h.Laminate(now)
}

// Truncate is a drain barrier plus pfs truncate.
func (l *Log) Truncate(h *pfs.Handle, length int64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.takeDeferredLocked(); err != nil {
		return 0, err
	}
	if err := l.drainAllLocked(); err != nil {
		return 0, err
	}
	return h.Truncate(length)
}

// VisibleSize is a drain barrier plus pfs VisibleSize. It cannot return an
// error, so a drain failure is re-deferred for the next erroring op.
func (l *Log) VisibleSize(h *pfs.Handle, now uint64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.drainAllLocked(); err != nil && l.deferred == nil {
		l.deferred = err
	}
	return h.VisibleSize(now)
}

// drainStepLocked replays the queue head into the pfs. Called with l.mu
// held; temporarily releases it to sleep a backoff after a transient fault.
// Returns the error that permanently failed a record (the record is
// dropped), or nil. After a backoff the caller must re-examine the queue:
// whoever holds the lock next drains the (possibly different) head.
func (l *Log) drainStepLocked() error {
	if len(l.queue) == 0 {
		return nil
	}
	rec := l.queue[0]
	hitKillPoint("wal.drain.before-publish")
	// The publish span continues the write's causal trace on the drainer
	// side of the queue hand-off; the trace ID also lands in the pfs
	// history event, tying the consistency checker's view to this chain.
	psp := obs.Default().Tracer().StartLinked("wal.drain.publish", "wal", rec.trace, rec.parent).OnLane(l.rank)
	_, err := rec.h.WriteTraced(rec.off, rec.data, rec.now, rec.trace)
	if err != nil && errors.Is(err, pfs.ErrTransient) && rec.attempt < l.opts.MaxRetries {
		psp.End()
		l.queue[0].attempt++
		l.stats.Retries++
		drainRetries.Inc()
		d := l.opts.Retry.Delay(rec.attempt)
		drainBackoffNS.Observe(int64(d))
		l.mu.Unlock()
		time.Sleep(time.Duration(d))
		l.mu.Lock()
		return nil
	}
	l.queue = l.queue[1:]
	if len(l.queue) == 0 {
		l.queue = nil // release the drained backing array
	}
	if err != nil {
		psp.End()
		drainErrors.Inc()
		return fmt.Errorf("wal: drain rank %d %s+%d: %w", l.rank, rec.h.Path(), rec.off, err)
	}
	hitKillPoint("wal.drain.after-publish")
	psp.End()
	// Visibility instant: a zero-length span closing the chain, plus the
	// real (host wall clock) ack-to-visible lag under the write's model.
	// The drain strictly follows the ack, so the lag is clamped positive.
	obs.Default().Tracer().StartLinked("pfs.visible", "wal", rec.trace, psp.ID()).OnLane(l.rank).End()
	if rec.ackWall != 0 {
		lag := time.Now().UnixNano() - rec.ackWall
		if lag < 1 {
			lag = 1
		}
		pfs.ObserveVisibilityLag(rec.h.Semantics(), lag)
	}
	l.stats.Drained++
	drainRecords.Inc()
	return nil
}

// drainAllLocked empties the queue, remembering the first permanent error
// but still attempting the rest — later records may target healthy files.
func (l *Log) drainAllLocked() error {
	var first error
	for len(l.queue) > 0 {
		if err := l.drainStepLocked(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (l *Log) drainLoop() {
	defer close(l.done)
	l.mu.Lock()
	for {
		for len(l.queue) == 0 && !l.stopped {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.stopped {
			break
		}
		drainBatches.Inc()
		for i := 0; i < l.opts.MaxInflight && len(l.queue) > 0; i++ {
			if err := l.drainStepLocked(); err != nil && l.deferred == nil {
				l.deferred = err
			}
		}
		// Yield between batches so a foreground op never waits behind an
		// arbitrarily long queue.
		l.mu.Unlock()
		runtime.Gosched()
		l.mu.Lock()
	}
	l.mu.Unlock()
}

// Close drains every outstanding record, stops the drainer, closes the log
// file and — for a Log that owned a private temp dir — removes it. The
// returned error is the first drain error not yet surfaced, if any.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.stopped = true
	err := l.drainAllLocked()
	if err == nil {
		err = l.takeDeferredLocked()
	} else {
		l.deferred = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	<-l.done
	if ferr := l.file.Close(); err == nil && ferr != nil {
		err = ferr
	}
	if l.ownsDir {
		storage.RemoveAll(l.opts.Backend, l.dir)
	}
	return err
}
