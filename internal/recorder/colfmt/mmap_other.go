//go:build !unix

package colfmt

import "errors"

// mapFile is unavailable off unix; Open falls back to reading the file.
func mapFile(path string) ([]byte, func() error, error) {
	return nil, nil, errors.New("colfmt: mmap unsupported on this platform")
}
