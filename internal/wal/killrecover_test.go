//go:build unix

package wal_test

// Kill-and-recover harness for the write-ahead log: the parent re-execs this
// test binary as a burst child, SIGKILLs it at an armed wal.* kill point
// (mid-append, torn frame, either side of fsync, either side of a drain
// publish), then recovers the log directory in-process. RecoverBurst itself
// carries the acceptance assertions: zero acked-write loss (ack-file floor),
// byte-exact salvaged records, a replay history the model's formal spec
// accepts, and final state byte-identical to an uninterrupted run of the
// same prefixes.

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"syscall"
	"testing"

	"repro/internal/faults"
	"repro/internal/pfs"
	"repro/internal/wal"
)

const (
	walKillDirEnv = "SEMFS_WAL_DIR"
	walKillSemEnv = "SEMFS_WAL_SEM"
)

// walKillSpec is the burst both sides of the harness agree on; only Log.Dir
// varies per cell. Small enough that 24 child re-execs stay cheap, large
// enough that every kill point fires mid-run with records already acked.
func walKillSpec(dir string, sem pfs.Semantics) wal.BurstSpec {
	return wal.BurstSpec{
		Semantics:   sem,
		Ranks:       2,
		Records:     32,
		Block:       256,
		CommitEvery: 8,
		Log:         wal.Options{Dir: dir},
	}
}

// TestWALKillRecoverChild is the re-exec'd child body; without the env gate
// it is skipped. It arms SEMFS_KILL and runs the burst — with a wal.* point
// armed it must die by SIGKILL before finishing.
func TestWALKillRecoverChild(t *testing.T) {
	dir := os.Getenv(walKillDirEnv)
	if dir == "" {
		t.Skip("not in a wal kill-and-recover child")
	}
	if err := faults.ArmKillPointsFromEnv(); err != nil {
		t.Fatalf("arming kill points: %v", err)
	}
	sem, err := pfs.ParseSemantics(os.Getenv(walKillSemEnv))
	if err != nil {
		t.Fatalf("bad %s: %v", walKillSemEnv, err)
	}
	res, err := wal.RunBurst(walKillSpec(dir, sem))
	if err != nil {
		t.Fatalf("burst: %v", err)
	}
	if !res.Spec.OK() {
		t.Fatalf("burst history rejected: %s", res.Spec.Violation)
	}
}

func runWALKillChild(t *testing.T, dir, sem, killSpec string) ([]byte, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWALKillRecoverChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		walKillDirEnv+"="+dir,
		walKillSemEnv+"="+sem,
		faults.KillEnv+"="+killSpec,
	)
	return cmd.CombinedOutput()
}

// TestWALKillRecover is the acceptance matrix: every wal.* kill point x
// every consistency model. Each cell SIGKILLs a burst child at the armed
// point, then recovery must return every acknowledged write, byte-exact,
// replaying to spec-accepted, byte-identical state.
func TestWALKillRecover(t *testing.T) {
	if os.Getenv(walKillDirEnv) != "" {
		t.Skip("inside a wal kill-and-recover child")
	}
	semantics := pfs.AllSemantics()
	points := []string{
		"wal.append.begin",
		"wal.append.torn",
		"wal.append.before-fsync",
		"wal.append.after-fsync",
		"wal.drain.before-publish",
		"wal.drain.after-publish",
	}
	if testing.Short() {
		semantics = semantics[:2]
		points = []string{"wal.append.torn", "wal.drain.before-publish"}
	}
	for i, sem := range semantics {
		sem := sem
		rng := rand.New(rand.NewSource(0x5A1D + int64(i)))
		t.Run(sem.String(), func(t *testing.T) {
			t.Parallel()
			for _, point := range points {
				// Seeded hit count: deep enough that acked records exist,
				// shallow enough the burst cannot finish first.
				kill := fmt.Sprintf("%s:%d", point, 2+rng.Intn(10))
				dir := t.TempDir()

				out, err := runWALKillChild(t, dir, sem.String(), kill)
				if err == nil {
					t.Fatalf("child armed with %s completed instead of dying\n%s", kill, out)
				}
				ee, isExit := err.(*exec.ExitError)
				if !isExit {
					t.Fatalf("child armed with %s: %v\n%s", kill, err, out)
				}
				ws, isWait := ee.Sys().(syscall.WaitStatus)
				if !isWait || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
					t.Fatalf("child armed with %s did not die by SIGKILL: %v\n%s", kill, err, out)
				}

				rep, err := wal.RecoverBurst(walKillSpec(dir, sem))
				if err != nil {
					t.Fatalf("recovery after %s: %v", kill, err)
				}
				t.Logf("kill=%s: recovered %d record(s) (%v, acked floor %v, dropped %d torn)",
					kill, rep.Records, rep.PerRank, rep.Acked, rep.Dropped)
			}
		})
	}
}
