package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/storage"
)

// On-disk record framing for the host-side write-ahead log. Same shape as
// the ckpt journal ("CKJR") so the torn-tail salvage argument carries over:
//
//	magic "WALR" (4) | payload len uint32 LE | CRC-32C(payload) uint32 LE | payload
//
// payload encodes one acknowledged write:
//
//	uvarint len(path) | path | uvarint off | uvarint now | data
//
// (data length is the payload remainder — no separate length field).
// Records are appended then fsync'd before the write is acknowledged, so
// after a crash at most the final record is torn; recovery keeps every
// complete record and truncates the tail.
const (
	recMagic     = "WALR"
	recHeaderLen = 4 + 4 + 4
	maxPayload   = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one acknowledged-but-possibly-undrained write as persisted in a
// per-rank log file.
type Record struct {
	Path string
	Off  int64
	Now  uint64
	Data []byte
}

func encodePayload(rec Record) ([]byte, error) {
	if rec.Off < 0 {
		return nil, fmt.Errorf("wal: negative offset %d", rec.Off)
	}
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+binary.MaxVarintLen64+len(rec.Path)+len(rec.Data))
	buf = binary.AppendUvarint(buf, uint64(len(rec.Path)))
	buf = append(buf, rec.Path...)
	buf = binary.AppendUvarint(buf, uint64(rec.Off))
	buf = binary.AppendUvarint(buf, rec.Now)
	buf = append(buf, rec.Data...)
	if len(buf) > maxPayload {
		return nil, fmt.Errorf("wal: record payload %d exceeds %d", len(buf), maxPayload)
	}
	return buf, nil
}

func decodePayload(payload []byte) (Record, error) {
	plen, n := binary.Uvarint(payload)
	if n <= 0 || plen > uint64(len(payload)-n) {
		return Record{}, errors.New("wal: corrupt path length")
	}
	rest := payload[n:]
	path := string(rest[:plen])
	rest = rest[plen:]
	off, n := binary.Uvarint(rest)
	if n <= 0 {
		return Record{}, errors.New("wal: corrupt offset")
	}
	rest = rest[n:]
	now, n := binary.Uvarint(rest)
	if n <= 0 {
		return Record{}, errors.New("wal: corrupt timestamp")
	}
	data := rest[n:]
	return Record{Path: path, Off: int64(off), Now: now, Data: data}, nil
}

// appendRecord frames, appends and (unless noFsync) fsyncs one record. The
// two half-writes with a kill point between them are what make the
// kill-and-recover harness able to manufacture a genuinely torn tail; the
// before/after-fsync points bracket the durability boundary — a write is
// acked iff the crash lands after wal.append.after-fsync.
func appendRecord(f storage.File, rec Record, noFsync bool) (int64, error) {
	payload, err := encodePayload(rec)
	if err != nil {
		return 0, err
	}
	hdr := make([]byte, recHeaderLen)
	copy(hdr, recMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))
	frame := append(hdr, payload...)

	hitKillPoint("wal.append.begin")
	half := len(frame) / 2
	if _, err := f.Write(frame[:half]); err != nil {
		return 0, err
	}
	hitKillPoint("wal.append.torn")
	if _, err := f.Write(frame[half:]); err != nil {
		return 0, err
	}
	hitKillPoint("wal.append.before-fsync")
	if !noFsync {
		if err := fsyncTimed(f); err != nil {
			return 0, err
		}
	}
	hitKillPoint("wal.append.after-fsync")
	appendRecords.Inc()
	appendBytes.Add(int64(len(frame)))
	return int64(len(frame)), nil
}

// RecoverStats summarizes one log file's salvage.
type RecoverStats struct {
	Records   int   // complete records kept
	Dropped   int   // torn/corrupt tail records discarded (≤1 under append discipline)
	TailBytes int64 // bytes past the last complete record
}

func (s RecoverStats) String() string {
	return fmt.Sprintf("records=%d dropped=%d tail_bytes=%d", s.Records, s.Dropped, s.TailBytes)
}

type countingReader struct {
	r *bufio.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// recoverRecords scans a log stream, returning every complete record in
// append order plus the byte offset of the end of the last good record —
// the offset the caller truncates to before resuming appends. Exactly like
// the ckpt journal, the scan stops at the first torn or corrupt frame:
// anything after it was never acknowledged.
func recoverRecords(r io.Reader) ([]Record, RecoverStats, int64, error) {
	cr := &countingReader{r: bufio.NewReader(r)}
	var (
		recs  []Record
		stats RecoverStats
		good  int64
	)
	hdr := make([]byte, recHeaderLen)
	for {
		if _, err := io.ReadFull(cr, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				stats.Dropped++
				break // torn header
			}
			return nil, stats, good, err
		}
		if string(hdr[:4]) != recMagic {
			stats.Dropped++
			break
		}
		plen := binary.LittleEndian.Uint32(hdr[4:])
		want := binary.LittleEndian.Uint32(hdr[8:])
		if plen > maxPayload {
			stats.Dropped++
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(cr, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				stats.Dropped++
				break // torn payload
			}
			return nil, stats, good, err
		}
		if crc32.Checksum(payload, castagnoli) != want {
			stats.Dropped++
			break
		}
		rec, err := decodePayload(payload)
		if err != nil {
			stats.Dropped++
			break
		}
		recs = append(recs, rec)
		stats.Records++
		good = cr.n
	}
	// Whatever remains after the last intact record is tail damage: drain it
	// so the count covers unread bytes too.
	if _, err := io.Copy(io.Discard, cr); err != nil {
		return nil, stats, good, fmt.Errorf("wal: log read: %w", err)
	}
	stats.TailBytes = cr.n - good
	return recs, stats, good, nil
}
