package mpiio

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// run executes body on n ranks with a strong-semantics FS and returns the
// result.
func run(t *testing.T, n, ppn int, body func(ctx *harness.Ctx) error) *harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: n, PPN: ppn, Semantics: pfs.Strong},
		recorder.Meta{App: "mpiio-test", Library: "MPI-IO"}, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIndependentWriteAtRoundTrip(t *testing.T) {
	res := run(t, 4, 2, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/data", ModeCreate|ModeRdwr, Options{})
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{byte('A' + ctx.Rank)}, 32)
		if err := f.WriteAt(int64(ctx.Rank)*32, payload); err != nil {
			return err
		}
		ctx.MPI.Barrier()
		got, err := f.ReadAt(int64(ctx.Rank)*32, 32)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			ctx.Failf("read back %q", got)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
	info, _, err := res.FS.Stat("/data")
	if err != nil || info.Size != 128 {
		t.Fatalf("file size = %d, %v", info.Size, err)
	}
}

func TestCollectiveWriteOnlyAggregatorsTouchFS(t *testing.T) {
	const ranks, ppn = 8, 2 // 4 nodes → 4 default aggregators
	res := run(t, ranks, ppn, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/coll", ModeCreate|ModeWronly, Options{})
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{byte('a' + ctx.Rank)}, 100)
		if err := f.WriteAtAll(int64(ctx.Rank)*100, payload); err != nil {
			return err
		}
		return f.Close()
	})
	// Count which ranks issued POSIX writes.
	writers := map[int32]bool{}
	for _, rec := range res.Trace.Filter(func(r *recorder.Record) bool { return r.IsWriteOp() }) {
		writers[rec.Rank] = true
	}
	if len(writers) != 4 {
		t.Fatalf("expected 4 aggregator writers, got %d: %v", len(writers), writers)
	}
	for w := range writers {
		if w%2 != 0 { // node leaders are even ranks with ppn=2
			t.Fatalf("non-leader rank %d wrote", w)
		}
	}
	// All data must have landed correctly.
	info, _, err := res.FS.Stat("/coll")
	if err != nil || info.Size != 800 {
		t.Fatalf("size %d, %v", info.Size, err)
	}
}

func TestCollectiveWriteDataIntegrity(t *testing.T) {
	res := run(t, 6, 3, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/ci", ModeCreate|ModeRdwr, Options{CBNodes: 2})
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{byte('0' + ctx.Rank)}, 10)
		if err := f.WriteAtAll(int64(ctx.Rank)*10, payload); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		got, err := f.ReadAt(0, 60)
		if err != nil {
			return err
		}
		want := []byte("000000000011111111112222222222333333333344444444445555555555")[:60]
		if !bytes.Equal(got, want) {
			ctx.Failf("file content %q, want %q", got, want)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
	_ = res
}

func TestCollectiveWriteWithGaps(t *testing.T) {
	// Ranks 1 and 3 contribute nothing; data is non-contiguous.
	run(t, 4, 2, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/gaps", ModeCreate|ModeRdwr, Options{CBNodes: 2})
		if err != nil {
			return err
		}
		var payload []byte
		if ctx.Rank%2 == 0 {
			payload = bytes.Repeat([]byte{byte('A' + ctx.Rank)}, 16)
		}
		if err := f.WriteAtAll(int64(ctx.Rank)*100, payload); err != nil {
			return err
		}
		ctx.MPI.Barrier()
		got, err := f.ReadAt(200, 16)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{'C'}, 16)) {
			ctx.Failf("rank2 block = %q", got)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestCollectiveReadAtAll(t *testing.T) {
	run(t, 4, 2, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/cr", ModeCreate|ModeRdwr, Options{})
		if err != nil {
			return err
		}
		if ctx.Rank == 0 {
			if err := f.WriteAt(0, []byte("aaaabbbbccccdddd")); err != nil {
				return err
			}
		}
		ctx.MPI.Barrier()
		got, err := f.ReadAtAll(int64(ctx.Rank)*4, 4)
		if err != nil {
			return err
		}
		want := bytes.Repeat([]byte{byte('a' + ctx.Rank)}, 4)
		if !bytes.Equal(got, want) {
			ctx.Failf("collective read = %q, want %q", got, want)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestSetViewDisplacement(t *testing.T) {
	res := run(t, 2, 2, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/view", ModeCreate|ModeWronly, Options{})
		if err != nil {
			return err
		}
		f.SetView(1000, 0, 0)
		if err := f.WriteAt(int64(ctx.Rank)*8, bytes.Repeat([]byte{'v'}, 8)); err != nil {
			return err
		}
		return f.Close()
	})
	info, _, err := res.FS.Stat("/view")
	if err != nil || info.Size != 1016 {
		t.Fatalf("size with displacement = %d, %v", info.Size, err)
	}
}

func TestIndividualPointerOps(t *testing.T) {
	run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/ptr", ModeCreate|ModeRdwr, Options{})
		if err != nil {
			return err
		}
		if err := f.Write([]byte("abcd")); err != nil {
			return err
		}
		if err := f.Write([]byte("efgh")); err != nil {
			return err
		}
		f.SeekPtr(0, recorder.SeekSet)
		got, err := f.Read(8)
		if err != nil {
			return err
		}
		if string(got) != "abcdefgh" {
			ctx.Failf("pointer I/O got %q", got)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestMPIIOLayerRecordsEmitted(t *testing.T) {
	res := run(t, 2, 2, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/rec", ModeCreate|ModeWronly, Options{})
		if err != nil {
			return err
		}
		f.WriteAtAll(int64(ctx.Rank)*4, []byte("data"))
		f.Sync()
		f.SetAtomicity(false)
		f.SetSize(100)
		return f.Close()
	})
	seen := map[recorder.Func]int{}
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool { return r.Layer == recorder.LayerMPIIO }) {
		seen[r.Func]++
	}
	for _, fn := range []recorder.Func{
		recorder.FuncMPIFileOpen, recorder.FuncMPIFileWriteAtAll,
		recorder.FuncMPIFileSync, recorder.FuncMPIFileSetAtomicity,
		recorder.FuncMPIFileSetSize, recorder.FuncMPIFileClose,
	} {
		if seen[fn] == 0 {
			t.Errorf("no MPI-IO record for %v (have %v)", fn, seen)
		}
	}
}

func TestCBNodesCapsAggregators(t *testing.T) {
	run(t, 8, 2, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/agg", ModeCreate|ModeWronly, Options{CBNodes: 2})
		if err != nil {
			return err
		}
		aggs := f.Aggregators()
		if len(aggs) != 2 || aggs[0] != 0 || aggs[1] != 2 {
			ctx.Failf("aggregators = %v, want [0 2]", aggs)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestDoubleCloseFails(t *testing.T) {
	run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/dc", ModeCreate|ModeWronly, Options{})
		if err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := f.Close(); err == nil {
			ctx.Failf("double close accepted")
		}
		return ctx.Failures()
	})
}
