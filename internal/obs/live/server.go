package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
)

func init() {
	// obs cannot import live (live imports obs), so the -serve-metrics flag
	// reaches this package through a hook. Linking live in — the blank
	// import in each binary — is what makes the flag work.
	obs.ServeMetricsHook = func(addr string) (string, func(), error) {
		s, err := StartServer(obs.Default(), addr)
		if err != nil {
			return "", nil, err
		}
		return s.Addr(), s.Stop, nil
	}
}

// retainLimit is how many recent generations a server keeps for
// /metrics.json?gen= and ?since= lookups. Small on purpose: a scraper
// pairing text with JSON asks about the generation it just saw, not
// ancient history.
const retainLimit = 8

type genSnapshot struct {
	gen  uint64
	snap obs.Snapshot
}

// Server is the live exposition endpoint over one registry. Every scrape
// of /metrics or bare /metrics.json takes a fresh snapshot and assigns it
// the next generation; the last retainLimit generations stay addressable,
// so the text and JSON views of one generation are renderings of the same
// frozen snapshot and agree exactly.
type Server struct {
	reg *obs.Registry
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	gen      uint64
	retained []genSnapshot
}

// StartServer binds addr (":0" picks a free port) and serves /metrics,
// /metrics.json and /healthz for reg in a background goroutine until Stop.
func StartServer(reg *obs.Registry, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: metrics listen: %w", err)
	}
	s := &Server{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: mux}
	go func() {
		// Serve returns ErrServerClosed once Stop runs; nothing to report.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stop closes the listener and every open connection. Idempotent.
func (s *Server) Stop() { _ = s.srv.Close() }

// take snapshots the registry under the next generation and retains it.
func (s *Server) take() genSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	g := genSnapshot{gen: s.gen, snap: s.reg.Snapshot()}
	s.retained = append(s.retained, g)
	if len(s.retained) > retainLimit {
		s.retained = s.retained[len(s.retained)-retainLimit:]
	}
	liveGeneration.Set(int64(s.gen))
	return g
}

// lookup returns the retained snapshot of generation gen, if not evicted.
func (s *Server) lookup(gen uint64) (genSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, g := range s.retained {
		if g.gen == gen {
			return g, true
		}
	}
	return genSnapshot{}, false
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	liveScrapes.Inc()
	g := s.take()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, PromText(g.snap, g.gen))
}

// metricsJSON is the /metrics.json response shape. Snapshot is set for
// full snapshots, Delta for ?since= requests (counters and histograms are
// the change since the named generation; gauges are current values).
type metricsJSON struct {
	Generation uint64        `json:"generation"`
	Since      uint64        `json:"since,omitempty"`
	Snapshot   *obs.Snapshot `json:"snapshot,omitempty"`
	Delta      *obs.Snapshot `json:"delta,omitempty"`
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	liveScrapesJSON.Inc()
	q := r.URL.Query()
	var resp metricsJSON
	switch {
	case q.Get("gen") != "":
		gen, err := strconv.ParseUint(q.Get("gen"), 10, 64)
		if err != nil {
			http.Error(w, "bad gen parameter", http.StatusBadRequest)
			return
		}
		g, ok := s.lookup(gen)
		if !ok {
			http.Error(w, fmt.Sprintf("generation %d not retained (last %d kept)", gen, retainLimit), http.StatusGone)
			return
		}
		resp = metricsJSON{Generation: g.gen, Snapshot: &g.snap}
	case q.Get("since") != "":
		since, err := strconv.ParseUint(q.Get("since"), 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		base, ok := s.lookup(since)
		if !ok {
			http.Error(w, fmt.Sprintf("generation %d not retained (last %d kept)", since, retainLimit), http.StatusGone)
			return
		}
		g := s.take()
		delta := base.snap.Diff(g.snap)
		resp = metricsJSON{Generation: g.gen, Since: since, Delta: &delta}
	default:
		g := s.take()
		resp = metricsJSON{Generation: g.gen, Snapshot: &g.snap}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}
