package consistency

import (
	"math/rand"
	"testing"

	"repro/internal/pfs"
	"repro/internal/pfs/pfstest"
)

// runSpec replays a schedule against a fresh pfs with the given model,
// recording the history, and checks it against the same model's formal
// spec. delay parameterizes the eventual staleness bound on both sides
// (0 = the shared 50 ms default).
func runSpec(sem pfs.Semantics, delay uint64, sched pfstest.Schedule) (Result, error) {
	fs := pfs.New(pfs.Options{Semantics: sem, EventualDelay: delay})
	log := NewLog()
	fs.SetHistoryRecorder(log)
	if _, err := pfstest.Run(fs, sched); err != nil {
		return Result{}, err
	}
	return CheckLog(sem, log, Options{EventualDelayNS: delay}), nil
}

func trialGenOptions(rng *rand.Rand) pfstest.GenOptions {
	return pfstest.GenOptions{
		Ranks:    2 + rng.Intn(2),
		Writers:  1 + rng.Intn(2),
		Truncate: rng.Intn(2) == 0,
		Laminate: rng.Intn(4) == 0,
	}
}

func trialDelay(sem pfs.Semantics, rng *rand.Rand) uint64 {
	if sem != pfs.Eventual {
		return 0
	}
	// Mix the 50 ms default (remote writes never become mandatory within a
	// schedule) with tight bounds that flip mid-schedule.
	return []uint64{0, 100, 1000}[rng.Intn(3)]
}

// TestPropertyModelsSatisfyOwnSpec is the tentpole property: every pfs
// consistency model, driven by randomized multi-rank schedules (including
// truncation and lamination), produces histories its own formal spec
// accepts — 1000 seeded schedules per model. On failure the schedule is
// shrunk to a minimal still-failing counterexample and printed with its
// seed (rerun via SEMFS_PROP_SEED).
func TestPropertyModelsSatisfyOwnSpec(t *testing.T) {
	for _, sem := range pfs.AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			base := pfstest.BaseSeed(t, 40_000+int64(sem)*10_000)
			pfstest.Trials(t, base, 1000, func(t *testing.T, rng *rand.Rand) {
				opt := trialGenOptions(rng)
				delay := trialDelay(sem, rng)
				sched := pfstest.Generate(rng, opt)
				res, err := runSpec(sem, delay, sched)
				if err != nil {
					t.Fatalf("schedule run: %v\n%s", err, pfstest.Format(sched))
				}
				if res.OK() {
					return
				}
				min := pfstest.Shrink(sched, func(s pfstest.Schedule) bool {
					r, err := runSpec(sem, delay, s)
					return err == nil && !r.OK()
				})
				minRes, _ := runSpec(sem, delay, min)
				t.Fatalf("spec rejected a conforming %v history: %v\nminimal counterexample (%d of %d ops):\n%s minimal violation: %v",
					sem, res.Violation, len(min), len(sched), pfstest.Format(min), minRes.Violation)
			})
		})
	}
}

// TestPropertyConcurrentHistoriesSatisfySpec drives each model with truly
// concurrent rank goroutines (the interleaving is the scheduler's choice)
// and checks the total order the history hook actually recorded. This is
// the -race workout for the recording path, and verifies the specs hold
// for interleavings the serial generator cannot express.
func TestPropertyConcurrentHistoriesSatisfySpec(t *testing.T) {
	for _, sem := range pfs.AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			base := pfstest.BaseSeed(t, 80_000+int64(sem)*10_000)
			pfstest.Trials(t, base, 100, func(t *testing.T, rng *rand.Rand) {
				sched := pfstest.Generate(rng, pfstest.GenOptions{
					Ranks: 3, Writers: 3, MaxOps: 40,
					Truncate: true, Laminate: rng.Intn(4) == 0,
				})
				delay := trialDelay(sem, rng)
				fs := pfs.New(pfs.Options{Semantics: sem, EventualDelay: delay})
				log := NewLog()
				fs.SetHistoryRecorder(log)
				if err := pfstest.RunConcurrent(fs, sched); err != nil {
					t.Fatalf("concurrent run: %v\n%s", err, pfstest.Format(sched))
				}
				res := CheckLog(sem, log, Options{EventualDelayNS: delay})
				if !res.OK() {
					// Concurrent interleavings are not reproducible, so no
					// shrinking — report the violation and the recorded size.
					t.Fatalf("spec rejected a concurrent %v history (%d events): %v\nschedule:\n%s",
						sem, res.Events, res.Violation, pfstest.Format(sched))
				}
			})
		})
	}
}

// TestPropertyShrinkerPreservesFailure sanity-checks the shrinker itself:
// for a known-violating configuration (strong history vs commit spec), the
// shrunken schedule still fails and is no larger than the original.
func TestPropertyShrinkerPreservesFailure(t *testing.T) {
	base := pfstest.BaseSeed(t, 7)
	pfstest.Trials(t, base, 25, func(t *testing.T, rng *rand.Rand) {
		sched := pfstest.Generate(rng, pfstest.GenOptions{})
		fails := func(s pfstest.Schedule) bool {
			fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
			log := NewLog()
			fs.SetHistoryRecorder(log)
			if _, err := pfstest.Run(fs, s); err != nil {
				return false
			}
			return !CheckLog(pfs.Commit, log, Options{}).OK()
		}
		if !fails(sched) {
			t.Skip("schedule happens to satisfy the cross-model spec")
		}
		min := pfstest.Shrink(sched, fails)
		if !fails(min) {
			t.Fatalf("shrunken schedule no longer fails:\n%s", pfstest.Format(min))
		}
		if len(min) > len(sched) {
			t.Fatalf("shrinker grew the schedule: %d -> %d ops", len(sched), len(min))
		}
	})
}
