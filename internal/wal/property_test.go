package wal_test

// WAL property suites: the tentpole's consistency claim. For every model,
// randomized multi-rank schedules executed *through* per-rank write-ahead
// logs must produce pfs histories the model's executable formal spec
// (internal/consistency) accepts — WAL buffering, background drain and
// barrier ordering must be invisible to the semantics. Serial runs pin a
// deterministic foreground interleaving (drains still race, by design);
// concurrent runs put every rank on its own goroutine and are the -race
// drain-concurrency leg CI runs.

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/consistency"
	"repro/internal/pfs"
	"repro/internal/pfs/pfstest"
	"repro/internal/wal"
)

// walRunner mirrors pfstest's runner with every handle op routed through
// the rank's Log.
type walRunner struct {
	fs      *pfs.FileSystem
	clients []*pfs.Client
	handles []*pfs.Handle
	logs    []*wal.Log
	clock   atomic.Uint64
}

func newWALRunner(t *testing.T, fs *pfs.FileSystem, ranks int) (*walRunner, error) {
	t.Helper()
	r := &walRunner{fs: fs,
		clients: make([]*pfs.Client, ranks),
		handles: make([]*pfs.Handle, ranks),
		logs:    make([]*wal.Log, ranks),
	}
	r.clock.Store(10)
	for rank := 0; rank < ranks; rank++ {
		l, err := wal.Open(rank, wal.Options{Dir: t.TempDir(), NoFsync: true})
		if err != nil {
			return nil, err
		}
		r.logs[rank] = l
		r.clients[rank] = fs.NewClient(rank, 0)
		flags := pfs.ORdwr
		if rank == 0 {
			flags |= pfs.OCreat
		}
		h, _, err := l.Open(r.clients[rank], pfstest.Path, flags, r.now())
		if err != nil {
			return nil, fmt.Errorf("rank %d open: %w", rank, err)
		}
		r.handles[rank] = h
	}
	return r, nil
}

func (r *walRunner) now() uint64 { return r.clock.Add(10) }

func (r *walRunner) exec(op pfstest.Op) error {
	now := r.now()
	l := r.logs[op.Rank]
	h := r.handles[op.Rank]
	var err error
	switch op.Kind {
	case pfstest.OpWrite:
		_, err = l.Write(h, op.Off, op.Data, now)
	case pfstest.OpRead:
		_, _, err = l.Read(h, op.Off, op.Len, now)
	case pfstest.OpCommit:
		_, err = l.Commit(h, now)
	case pfstest.OpReopen:
		if _, err = l.CloseHandle(h, now); err == nil {
			r.handles[op.Rank], _, err = l.Open(r.clients[op.Rank], pfstest.Path, pfs.ORdwr, r.now())
		}
	case pfstest.OpTruncate:
		_, err = l.Truncate(h, op.Len)
	case pfstest.OpLaminate:
		_, err = l.Laminate(h, now)
	}
	// Post-lamination failures (including a queued write whose drain found
	// the file laminated) are part of the schedule contract, as in pfstest.
	if errors.Is(err, pfs.ErrLaminated) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("rank %d %s: %w", op.Rank, op.Kind, err)
	}
	return nil
}

func (r *walRunner) close() error {
	var errs []error
	for _, l := range r.logs {
		if err := l.Close(); err != nil && !errors.Is(err, pfs.ErrLaminated) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func runWALSerial(t *testing.T, fs *pfs.FileSystem, sched pfstest.Schedule, ranks int) error {
	r, err := newWALRunner(t, fs, ranks)
	if err != nil {
		return err
	}
	for _, op := range sched {
		if err := r.exec(op); err != nil {
			r.close()
			return err
		}
	}
	return r.close()
}

func runWALConcurrent(t *testing.T, fs *pfs.FileSystem, sched pfstest.Schedule, ranks int) error {
	r, err := newWALRunner(t, fs, ranks)
	if err != nil {
		return err
	}
	perRank := make([]pfstest.Schedule, ranks)
	for _, op := range sched {
		perRank[op.Rank] = append(perRank[op.Rank], op)
	}
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for _, op := range perRank[rank] {
				if errs[rank] = r.exec(op); errs[rank] != nil {
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	if cerr := r.close(); cerr != nil {
		errs = append(errs, cerr)
	}
	return errors.Join(errs...)
}

const walGenRanks = 3

func walGenOptions() pfstest.GenOptions {
	return pfstest.GenOptions{Ranks: walGenRanks, Writers: 2, Truncate: true, Laminate: true}
}

func checkWALHistory(t *testing.T, sem pfs.Semantics, sched pfstest.Schedule,
	run func(*testing.T, *pfs.FileSystem, pfstest.Schedule, int) error) {
	t.Helper()
	fs := pfs.New(pfs.Options{Semantics: sem})
	hist := consistency.NewLog()
	fs.SetHistoryRecorder(hist)
	if err := run(t, fs, sched, walGenRanks); err != nil {
		t.Fatalf("schedule failed:\n%s%v", pfstest.Format(sched), err)
	}
	res := consistency.CheckLog(sem, hist,
		consistency.Options{EventualDelayNS: uint64(fs.Options().EventualDelay)})
	if !res.OK() {
		t.Fatalf("WAL-mediated history rejected by %s spec:\n%s%s",
			sem, pfstest.Format(sched), res.Violation)
	}
}

// TestWALPropertySerial: every model x randomized schedules, serial
// foreground interleaving through the WAL, history must satisfy the spec.
func TestWALPropertySerial(t *testing.T) {
	for _, sem := range pfs.AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			base := pfstest.BaseSeed(t, 120_000+int64(sem)*10_000)
			pfstest.Trials(t, base, 150, func(t *testing.T, rng *rand.Rand) {
				checkWALHistory(t, sem, pfstest.Generate(rng, walGenOptions()), runWALSerial)
			})
		})
	}
}

// TestWALPropertyConcurrent: per-rank goroutines, every foreground op racing
// the background drainers — the -race leg proving drain concurrency is both
// data-race-free and semantics-preserving.
func TestWALPropertyConcurrent(t *testing.T) {
	for _, sem := range pfs.AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			base := pfstest.BaseSeed(t, 160_000+int64(sem)*10_000)
			pfstest.Trials(t, base, 40, func(t *testing.T, rng *rand.Rand) {
				checkWALHistory(t, sem, pfstest.Generate(rng, walGenOptions()), runWALConcurrent)
			})
		})
	}
}
