package colfmt

import "repro/internal/obs"

// Columnar codec telemetry on the process-wide registry (DESIGN.md §9
// naming: recorder.colfmt.*): how streams were encoded, how their bytes
// reached the decoder (mapped vs read through the backend), how well the
// path dictionary compressed, and what lenient loads had to drop.
var (
	blocksEncoded = obs.Default().Counter("recorder.colfmt.blocks_encoded")
	blocksDecoded = obs.Default().Counter("recorder.colfmt.blocks_decoded")
	bytesMapped   = obs.Default().Counter("recorder.colfmt.bytes_mapped")
	bytesRead     = obs.Default().Counter("recorder.colfmt.bytes_read")
	dictEntries   = obs.Default().Counter("recorder.colfmt.dict_entries")
	dictHits      = obs.Default().Counter("recorder.colfmt.dict_hits")

	salvageBlocksSkipped  = obs.Default().Counter("recorder.colfmt.salvage.blocks_skipped")
	salvageRecordsDropped = obs.Default().Counter("recorder.colfmt.salvage.records_dropped")
)
