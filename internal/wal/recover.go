package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/pfs"
)

// RecoverDir salvages every per-rank log file under dir. The returned
// records are, per rank, every write that was ever acknowledged (logs are
// append-only and never truncated while live, so drained records remain —
// replaying one is an idempotent same-bytes overwrite). A torn tail on any
// file is a write that was never acknowledged; it is dropped and counted.
func RecoverDir(dir string) (map[int][]Record, map[int]RecoverStats, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "rank-*.wal"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(matches)
	recs := make(map[int][]Record)
	stats := make(map[int]RecoverStats)
	for _, path := range matches {
		var rank int
		if _, err := fmt.Sscanf(filepath.Base(path), "rank-%d.wal", &rank); err != nil {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		r, s, _, err := recoverRecords(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("wal: recovering %s: %w", path, err)
		}
		recs[rank] = r
		stats[rank] = s
		recoverRecordsKept.Add(int64(s.Records))
		recoverDropped.Add(int64(s.Dropped))
		recoverTruncated.Add(s.TailBytes)
	}
	return recs, stats, nil
}

// Replay feeds recovered records back through the pfs data path: one client
// per rank, records in log order (= the order the application was acked
// in), each write carrying the simulated timestamp captured at ack time,
// then a commit+close per touched path so commit/session-model writes
// publish exactly as an uninterrupted run's final barrier would have
// published them. Ranks replay in ascending order, serially — the replay
// history is deterministic and, because per-rank program order is the log
// order, satisfies every model's formal spec.
func Replay(fs *pfs.FileSystem, recs map[int][]Record) error {
	ranks := make([]int, 0, len(recs))
	var maxNow uint64
	for r, rr := range recs {
		ranks = append(ranks, r)
		for _, rec := range rr {
			if rec.Now > maxNow {
				maxNow = rec.Now
			}
		}
	}
	sort.Ints(ranks)
	now := maxNow
	for _, r := range ranks {
		c := fs.NewClient(r, 0)
		handles := make(map[string]*pfs.Handle)
		var order []string
		for _, rec := range recs[r] {
			h, ok := handles[rec.Path]
			if !ok {
				var err error
				h, _, err = c.Open(rec.Path, pfs.OCreat|pfs.ORdwr, rec.Now)
				if err != nil {
					return fmt.Errorf("wal: replay rank %d open %s: %w", r, rec.Path, err)
				}
				handles[rec.Path] = h
				order = append(order, rec.Path)
			}
			if _, err := h.Write(rec.Off, rec.Data, rec.Now); err != nil {
				return fmt.Errorf("wal: replay rank %d %s+%d: %w", r, rec.Path, rec.Off, err)
			}
		}
		for _, path := range order {
			now += 10
			if _, err := handles[path].Commit(now); err != nil {
				return fmt.Errorf("wal: replay rank %d commit %s: %w", r, path, err)
			}
			now += 10
			if _, err := handles[path].Close(now); err != nil {
				return fmt.Errorf("wal: replay rank %d close %s: %w", r, path, err)
			}
		}
	}
	return nil
}
