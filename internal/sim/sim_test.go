package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(100, 0)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
	if got := c.Advance(50); got != 150 {
		t.Fatalf("Advance returned %d, want 150", got)
	}
	if got := c.Now(); got != 150 {
		t.Fatalf("Now() after advance = %d, want 150", got)
	}
}

func TestClockMergeAtLeast(t *testing.T) {
	c := NewClock(100, 0)
	c.MergeAtLeast(50) // must not go backwards
	if c.Now() != 100 {
		t.Fatalf("MergeAtLeast moved clock backwards to %d", c.Now())
	}
	c.MergeAtLeast(200)
	if c.Now() != 200 {
		t.Fatalf("MergeAtLeast(200) -> %d, want 200", c.Now())
	}
}

func TestClockStampAppliesSkew(t *testing.T) {
	c := NewClock(1000, -300)
	if got := c.Stamp(); got != 700 {
		t.Fatalf("Stamp() = %d, want 700", got)
	}
	if got := c.Now(); got != 1000 {
		t.Fatalf("Now() must not include skew, got %d", got)
	}
	// Negative stamps clamp to zero rather than wrapping.
	c2 := NewClock(100, -500)
	if got := c2.Stamp(); got != 0 {
		t.Fatalf("negative stamp should clamp to 0, got %d", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock(0, 0)
		prev := c.Now()
		for _, s := range steps {
			c.Advance(uint64(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyNodeMapping(t *testing.T) {
	top := NewTopology(64, 8)
	if got := top.Nodes(); got != 8 {
		t.Fatalf("Nodes() = %d, want 8", got)
	}
	if got := top.NodeOf(0); got != 0 {
		t.Fatalf("NodeOf(0) = %d, want 0", got)
	}
	if got := top.NodeOf(63); got != 7 {
		t.Fatalf("NodeOf(63) = %d, want 7", got)
	}
	if !top.SameNode(8, 15) {
		t.Fatal("ranks 8 and 15 should share node 1")
	}
	if top.SameNode(7, 8) {
		t.Fatal("ranks 7 and 8 should be on different nodes")
	}
}

func TestTopologyPartialLastNode(t *testing.T) {
	top := NewTopology(10, 4)
	if got := top.Nodes(); got != 3 {
		t.Fatalf("Nodes() = %d, want 3", got)
	}
	got := top.RanksOnNode(2)
	want := []int{8, 9}
	if len(got) != len(want) {
		t.Fatalf("RanksOnNode(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RanksOnNode(2) = %v, want %v", got, want)
		}
	}
}

func TestTopologyPanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NodeOf out-of-range rank should panic")
		}
	}()
	NewTopology(4, 2).NodeOf(4)
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Split(1)
	s2 := root.Split(2)
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d/64 equal draws", same)
	}
	// Splitting must not perturb the parent.
	r1 := NewRNG(7)
	r2 := NewRNG(7)
	_ = r1.Split(9)
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Split must not consume parent state")
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		if v := r.Int63n(7); v < 0 || v >= 7 {
			t.Fatalf("Int63n(7) = %d out of range", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
		if v := r.SkewNS(10_000); v < -10_000 || v > 10_000 {
			t.Fatalf("SkewNS out of range: %d", v)
		}
	}
	if v := NewRNG(1).SkewNS(0); v != 0 {
		t.Fatalf("SkewNS(0) = %d, want 0", v)
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	if c.IOCost(0) != c.IOBase {
		t.Fatalf("IOCost(0) = %d, want base %d", c.IOCost(0), c.IOBase)
	}
	if c.IOCost(-5) != c.IOBase {
		t.Fatal("negative sizes must clamp to zero bytes")
	}
	if got := c.IOCost(1000); got != c.IOBase+1000*c.IOPerByte {
		t.Fatalf("IOCost(1000) = %d", got)
	}
	if got := c.MsgCost(100); got != c.MsgLatency+100*c.MsgPerByte {
		t.Fatalf("MsgCost(100) = %d", got)
	}
}
