package storage

import (
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// osdisk is the compatibility-oracle backend: a pass-through to the local
// file system, producing byte-identical layouts to the pre-seam os.* paths
// (pinned by the golden-layout tests in internal/ckpt and internal/wal).
// It is the strongest backend in the matrix — POSIX visibility, atomic
// rename — which is exactly why it alone cannot ground the paper's claim
// that applications tolerate weaker stores.
type osdisk struct{}

var osBackend Backend = osdisk{}

// OS returns the local-disk backend.
func OS() Backend { return osBackend }

func (osdisk) Name() string { return "osdisk" }

func (osdisk) Open(path string, flags int, perm uint32) (File, error) {
	opens.Inc()
	f, err := os.OpenFile(path, flags, os.FileMode(perm))
	if err != nil {
		opErrors.Inc()
		return nil, err
	}
	return &osFile{f: f}, nil
}

func (osdisk) ReadFile(path string) ([]byte, error) {
	reads.Inc()
	b, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		opErrors.Inc()
	}
	return b, err
}

func (osdisk) Rename(oldpath, newpath string) error {
	hitKillPoint("storage.rename.before")
	renames.Inc()
	err := os.Rename(oldpath, newpath)
	if err != nil {
		opErrors.Inc()
		return err
	}
	hitKillPoint("storage.rename.after")
	return nil
}

func (osdisk) Remove(path string) error {
	removes.Inc()
	return os.Remove(path)
}

func (osdisk) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osdisk) List(dir string) ([]string, error) {
	lists.Inc()
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		opErrors.Inc()
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osdisk) SyncDir(dir string) error {
	// Best effort, mirroring ckpt's pre-seam discipline: some platforms
	// refuse directory fsync.
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}

func (osdisk) Stat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

type osFile struct{ f *os.File }

func (o *osFile) Read(p []byte) (int, error) { return o.f.Read(p) }
func (o *osFile) Seek(off int64, whence int) (int64, error) {
	return o.f.Seek(off, whence)
}
func (o *osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

func (o *osFile) Write(p []byte) (int, error) {
	hitKillPoint("storage.write.before")
	writes.Inc()
	writeBytes.Add(int64(len(p)))
	n, err := o.f.Write(p)
	if err != nil {
		opErrors.Inc()
		return n, err
	}
	hitKillPoint("storage.write.after")
	return n, nil
}

func (o *osFile) WriteAt(p []byte, off int64) (int, error) {
	hitKillPoint("storage.write.before")
	writes.Inc()
	writeBytes.Add(int64(len(p)))
	n, err := o.f.WriteAt(p, off)
	if err != nil {
		opErrors.Inc()
		return n, err
	}
	hitKillPoint("storage.write.after")
	return n, nil
}

func (o *osFile) Truncate(size int64) error { return o.f.Truncate(size) }

func (o *osFile) Sync() error {
	hitKillPoint("storage.sync.before")
	syncs.Inc()
	start := time.Now()
	err := o.f.Sync()
	syncNS.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		opErrors.Inc()
		return err
	}
	hitKillPoint("storage.sync.after")
	return nil
}

func (o *osFile) Close() error { return o.f.Close() }
func (o *osFile) Name() string { return o.f.Name() }

func osIsNotExist(err error) bool { return os.IsNotExist(err) }

func osMkdirTemp(pattern string) (string, error) { return os.MkdirTemp("", pattern) }
func osRemoveAll(dir string) error               { return os.RemoveAll(dir) }

var tmpCounter atomic.Uint64

// uniqueSuffix names temp objects for WriteFileAtomic. Process-unique is
// enough: the temp is renamed or removed before anyone else looks.
func uniqueSuffix() string {
	n := tmpCounter.Add(1)
	const digits = "0123456789"
	buf := [20]byte{}
	i := len(buf)
	pid := uint64(os.Getpid())
	for _, v := range []uint64{n, pid} {
		for {
			i--
			buf[i] = digits[v%10]
			v /= 10
			if v == 0 {
				break
			}
		}
	}
	return string(buf[i:])
}
