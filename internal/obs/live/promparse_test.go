package live

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMangleName pins the obs-name -> Prometheus-name mapping.
func TestMangleName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"pfs.visibility_lag.strong", "pfs_visibility_lag_strong"},
		{"wal.ack-ns", "wal_ack_ns"},
		{"plain", "plain"},
		{"9lives", "_9lives"},
	}
	for _, c := range cases {
		if got := MangleName(c.in); got != c.want {
			t.Errorf("MangleName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestParseAcceptsWellFormed: the strict parser accepts a representative
// exposition — counters, gauges, a labeled histogram, escaped label values,
// timestamps, and plain comments — and reads the values back.
func TestParseAcceptsWellFormed(t *testing.T) {
	text := strings.Join([]string{
		`# generation 7`,
		`# HELP ops_total obs instrument ops.total`,
		`# TYPE ops_total counter`,
		`ops_total 42`,
		`# TYPE depth gauge`,
		`depth -3 1700000000000`,
		`# TYPE lag_ns histogram`,
		`lag_ns_bucket{le="0"} 1`,
		`lag_ns_bucket{le="1023"} 4`,
		`lag_ns_bucket{le="+Inf"} 5`,
		`lag_ns_sum 2000`,
		`lag_ns_count 5`,
		`# TYPE weird gauge`,
		`weird{path="a\"b\\c\nd",rank="3"} 1.5`,
		``,
	}, "\n")
	m, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("well-formed exposition rejected: %v", err)
	}
	if v, ok := m.Value("ops_total"); !ok || v != 42 {
		t.Errorf("ops_total = (%g, %v), want (42, true)", v, ok)
	}
	if v, ok := m.Value("depth"); !ok || v != -3 {
		t.Errorf("depth = (%g, %v), want (-3, true)", v, ok)
	}
	if f := m["lag_ns"]; f == nil || len(f.Samples) != 5 {
		t.Errorf("lag_ns family missing or wrong arity: %+v", f)
	}
	if f := m["ops_total"]; f.Help != "obs instrument ops.total" {
		t.Errorf("HELP text = %q", f.Help)
	}
	want := map[string]string{"path": "a\"b\\c\nd", "rank": "3"}
	got := m["weird"].Samples[0].Labels
	for k, v := range want {
		if got[k] != v {
			t.Errorf("label %s = %q, want %q", k, got[k], v)
		}
	}
}

// TestParseRejectsMalformed: every violation class the parser claims to
// catch is actually rejected.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct{ name, text string }{
		{"sample before TYPE", "orphan 1\n"},
		{"HELP without TYPE", "# HELP lonely x\nlonely 1\n"},
		{"declared without samples", "# TYPE empty counter\n"},
		{"duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"duplicate HELP", "# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n"},
		{"TYPE after samples", "# TYPE a counter\na 1\n# TYPE a gauge\n"},
		{"unknown type", "# TYPE a widget\na 1\n"},
		{"duplicate sample", "# TYPE a counter\na 1\na 2\n"},
		{"bad metric name", "# TYPE 1bad counter\n1bad 1\n"},
		{"bad sample value", "# TYPE a counter\na pancake\n"},
		{"bad timestamp", "# TYPE a counter\na 1 soon\n"},
		{"no value", "# TYPE a counter\na\n"},
		{"bad label name", `# TYPE a counter` + "\n" + `a{1x="v"} 1` + "\n"},
		{"unquoted label value", `# TYPE a counter` + "\n" + `a{x=v} 1` + "\n"},
		{"bad escape", `# TYPE a counter` + "\n" + `a{x="\t"} 1` + "\n"},
		{"unterminated label value", `# TYPE a counter` + "\n" + `a{x="v} 1` + "\n"},
		{"duplicate label", `# TYPE a counter` + "\n" + `a{x="1",x="2"} 1` + "\n"},
		{"histogram bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 0\nh_count 1\n"},
		{"histogram missing +Inf", `# TYPE h histogram` + "\n" + `h_bucket{le="10"} 1` + "\n" + `h_sum 0` + "\n" + `h_count 1` + "\n"},
		{"histogram missing sum", `# TYPE h histogram` + "\n" + `h_bucket{le="+Inf"} 1` + "\n" + `h_count 1` + "\n"},
		{"histogram cumulative decreases", `# TYPE h histogram` + "\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + `h_sum 0` + "\n" + `h_count 5` + "\n"},
		{"histogram +Inf != count", `# TYPE h histogram` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + `h_sum 0` + "\n" + `h_count 4` + "\n"},
	}
	for _, c := range cases {
		if _, err := ParsePromText(c.text); err == nil {
			t.Errorf("%s: accepted:\n%s", c.name, c.text)
		}
	}
}

// TestPromTextRoundTrip: the exposition PromText renders from a real
// registry snapshot passes the strict parser, declares the right types, and
// carries the right values — including cumulative histogram buckets.
func TestPromTextRoundTrip(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("ops.total").Add(7)
	r.Gauge("queue.depth").Set(-2)
	h := r.Histogram("lag.ns")
	h.Observe(0)
	h.Observe(5)
	h.Observe(5000)

	text := PromText(r.Snapshot(), 3)
	if !strings.HasPrefix(text, "# generation 3\n") {
		t.Errorf("missing generation comment:\n%s", text)
	}
	m, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("PromText output rejected by strict parser: %v\n%s", err, text)
	}
	if v, ok := m.Value("ops_total"); !ok || v != 7 {
		t.Errorf("ops_total = (%g, %v), want (7, true)", v, ok)
	}
	if m["ops_total"].Type != "counter" {
		t.Errorf("ops_total type = %q", m["ops_total"].Type)
	}
	if v, ok := m.Value("queue_depth"); !ok || v != -2 {
		t.Errorf("queue_depth = (%g, %v), want (-2, true)", v, ok)
	}
	if m["queue_depth"].Type != "gauge" {
		t.Errorf("queue_depth type = %q", m["queue_depth"].Type)
	}
	fam := m["lag_ns"]
	if fam == nil || fam.Type != "histogram" {
		t.Fatalf("lag_ns family missing or not a histogram: %+v", fam)
	}
	var inf, count, sum float64
	zero := -1.0
	for _, s := range fam.Samples {
		switch s.Name {
		case "lag_ns_bucket":
			switch s.Labels["le"] {
			case "+Inf":
				inf = s.Value
			case "0":
				zero = s.Value
			}
		case "lag_ns_count":
			count = s.Value
		case "lag_ns_sum":
			sum = s.Value
		}
	}
	if inf != 3 || count != 3 {
		t.Errorf("+Inf = %g, _count = %g, want 3", inf, count)
	}
	if zero != 1 {
		t.Errorf("le=\"0\" bucket = %g, want 1 (the Observe(0))", zero)
	}
	if sum != 5005 {
		t.Errorf("_sum = %g, want 5005", sum)
	}

	// Determinism: same snapshot renders byte-identically.
	if again := PromText(r.Snapshot(), 3); again != text {
		t.Error("PromText is not deterministic for an unchanged registry")
	}
}
