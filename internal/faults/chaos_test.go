package faults

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/pfs"
)

// shortApps is the quick chaos subset: cheap configurations covering POSIX
// file-per-process, HDF5 shared-file and MPI-IO collective protocols.
func shortApps() []string {
	return []string{"GTC", "NWChem", "HACC-IO-MPI-IO", "FLASH-fbs"}
}

func allSemantics() []pfs.Semantics {
	return []pfs.Semantics{pfs.Strong, pfs.Commit, pfs.Session, pfs.Eventual}
}

func TestChaosSweepShort(t *testing.T) {
	rep, err := Sweep(context.Background(), SweepOptions{
		Apps:      shortApps(),
		Semantics: allSemantics(),
		Seeds:     []uint64{1, 2},
		Replay:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(shortApps()) * 4 * 2; len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	if rep.TotalFired == 0 {
		t.Fatal("no faults fired across the whole sweep")
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	out := RenderSweep(rep)
	if !strings.Contains(out, "GTC") || !strings.Contains(out, "0 violation(s)") {
		t.Fatalf("render:\n%s", out)
	}
}

// TestChaosSchedulesByteIdenticalAcrossSweeps pins the acceptance contract:
// the same sweep options reproduce the same fault schedule in every cell,
// run after run, regardless of pool size.
func TestChaosSchedulesByteIdenticalAcrossSweeps(t *testing.T) {
	opts := SweepOptions{
		Apps:      []string{"GTC", "NWChem"},
		Semantics: allSemantics(),
		Seeds:     []uint64{7},
	}
	a, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	b, err := Sweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) || len(a.Cells) == 0 {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	fp := func(cells []Cell) map[string]uint64 {
		m := make(map[string]uint64)
		for _, c := range cells {
			m[c.App+"/"+c.Semantics.String()] = c.ScheduleFP
		}
		return m
	}
	fa, fb := fp(a.Cells), fp(b.Cells)
	for k, v := range fa {
		if fb[k] != v {
			t.Errorf("%s: schedule fingerprint %016x != %016x across sweeps", k, v, fb[k])
		}
	}
}

// TestChaosCellScheduleStableUnderFiltering pins the single-cell repro
// contract behind Cell.ReproCommand: a cell's schedule depends on the app's
// name, not its position in the sweep's app list, so re-running just that
// cell with -chaos-apps reproduces the exact schedule from the full sweep.
func TestChaosCellScheduleStableUnderFiltering(t *testing.T) {
	full, err := Sweep(context.Background(), SweepOptions{
		Apps:      []string{"GTC", "NWChem", "FLASH-fbs"},
		Semantics: allSemantics(),
		Seeds:     []uint64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// NWChem is index 1 above and index 0 here — the fingerprints must not
	// notice.
	solo, err := Sweep(context.Background(), SweepOptions{
		Apps:      []string{"NWChem"},
		Semantics: allSemantics(),
		Seeds:     []uint64{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	fullFP := make(map[string]uint64)
	for _, c := range full.Cells {
		if c.App == "NWChem" {
			fullFP[c.Semantics.String()] = c.ScheduleFP
		}
	}
	for _, c := range solo.Cells {
		if got, want := c.ScheduleFP, fullFP[c.Semantics.String()]; got != want {
			t.Errorf("%s/%s: filtered schedule %016x != full-sweep %016x — ReproCommand would not reproduce",
				c.App, c.Semantics, got, want)
		}
	}
	// And the rendered violation block carries a paste-ready command.
	cmd := Cell{App: "NWChem", Semantics: pfs.Commit, Seed: 5}.ReproCommand()
	for _, want := range []string{"-chaos-apps \"NWChem\"", "-chaos-semantics commit", "-chaos-seeds 5"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("ReproCommand %q missing %q", cmd, want)
		}
	}
}

func TestChaosSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, SweepOptions{Apps: []string{"GTC"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestChaosSweepRestrictedKinds(t *testing.T) {
	// A kinds restriction flows into every generated schedule: sweeping with
	// only commit-crash faults at N=1 must fire on commit-heavy apps.
	rep, err := Sweep(context.Background(), SweepOptions{
		Apps:      []string{"NWChem"},
		Semantics: []pfs.Semantics{pfs.Commit},
		Seeds:     []uint64{1, 2, 3},
		Kinds:     []Kind{CrashBeforeCommit, CrashAfterCommit, LostFsync},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestChaosFullRegistry is the full acceptance matrix: every registry
// configuration × all four semantics under the complete fault taxonomy.
func TestChaosFullRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos matrix skipped in -short mode")
	}
	rep, err := Sweep(context.Background(), SweepOptions{
		Apps:      apps.Names(),
		Semantics: allSemantics(),
		Seeds:     []uint64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(apps.Names()) * 4; len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	if rep.TotalFired == 0 {
		t.Fatal("no faults fired")
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	t.Logf("\n%s", RenderSweep(rep))
}
