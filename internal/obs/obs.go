// Package obs is the zero-dependency telemetry substrate of the repo: atomic
// counters, gauges, power-of-two histograms (the SizeHistogram bucketing
// idiom of internal/report, promoted to a shared concurrent type) and
// lightweight spans, hung off a process-wide Registry with deterministic
// JSON and text snapshot export.
//
// Design constraints, in order:
//
//  1. A disabled registry is near-free. Every instrument carries a pointer
//     to its registry's enabled flag; the hot-path methods are one atomic
//     load followed by an early return, allocate nothing, and are safe on
//     nil receivers. Instrumentation therefore stays on by default in tests
//     and can be compiled into the hottest loops (see the overhead
//     benchmark in obs_test.go and the instrumented/uninstrumented split of
//     BenchmarkAnalyzeParallel).
//  2. Snapshots are deterministic. Instruments export in sorted name order
//     and histograms in ascending bucket order, so two identical runs
//     produce byte-identical snapshot JSON — the property the paper's own
//     artifact comparisons (and our CI step) rely on.
//  3. Instruments are registered once and cached: Counter/Gauge/Histogram
//     lookups take a mutex, so callers hoist them into package-level vars
//     and the hot path never touches the registry map.
//
// Metric names are dot-separated lowercase paths, "<layer>.<noun>.<aspect>"
// (e.g. "pfs.op.write.count", "core.pool.tasks", "faults.fired.torn-write");
// see DESIGN.md §9 for the full naming scheme.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry owns a namespace of instruments and one enabled flag they all
// share. The zero value is not usable; call NewRegistry, or use Default for
// the process-wide registry.
type Registry struct {
	enabled atomic.Bool
	tracer  Tracer

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an enabled registry with an (initially disabled)
// tracer.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	r.enabled.Store(true)
	return r
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the instrumented layers
// (pfs, core, faults, experiments) register their instruments on.
func Default() *Registry { return defaultRegistry }

// SetEnabled flips metric collection for every instrument of this registry.
// Spans are governed separately by the tracer's own flag.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether metric collection is on.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Tracer returns the registry's span tracer (disabled until its SetEnabled).
func (r *Registry) Tracer() *Tracer { return &r.tracer }

// Counter returns the named counter, creating it on first use. Callers
// should hoist the result into a package-level var; the lookup locks.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{on: &r.enabled}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		h.on = &r.enabled
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (the names stay registered).
// CLIs call it after flag parsing so a -metrics snapshot covers exactly one
// invocation.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.reset()
	}
}

// sortedKeys returns a map's keys in sorted order (snapshot determinism).
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Add adds n. Nil-safe; a disabled registry makes this one atomic load.
func (c *Counter) Add(n int64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (queue depth, utilization percent,
// visibility lag). Unlike a counter it can move both ways.
type Gauge struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Set stores v. Nil-safe; no-op when the registry is disabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (a running high-water mark).
func (g *Gauge) SetMax(v int64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is enough for any int64: bucket k covers [2^k, 2^(k+1)).
const histBuckets = 63

// Histogram buckets non-negative observations by power of two — bucket k
// covers [2^k, 2^(k+1)) — with a dedicated bucket for zero-valued
// observations (a zero-length access is not a [1,2) access; see the
// SizeHistogram fix in internal/report). Negative observations are clamped
// to the zero bucket. All methods are safe for concurrent use.
type Histogram struct {
	on      *atomic.Bool
	zero    atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns a standalone, always-enabled histogram — the form
// internal/report embeds. Registry-owned histograms share the registry's
// enabled flag instead.
func NewHistogram() *Histogram {
	h := &Histogram{}
	on := &atomic.Bool{}
	on.Store(true)
	h.on = on
	return h
}

// BucketOf returns the histogram bucket index for v: -1 for v <= 0 (the
// zero bucket), else floor(log2(v)), so bucket k covers [2^k, 2^(k+1)).
func BucketOf(v int64) int {
	if v <= 0 {
		return -1
	}
	b := -1
	for v > 0 {
		v >>= 1
		b++
	}
	return b
}

// Observe records one value. Nil-safe; no-op when the registry is disabled.
func (h *Histogram) Observe(v int64) {
	if h == nil || !h.on.Load() {
		return
	}
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
		h.buckets[BucketOf(v)].Add(1)
		return
	}
	h.zero.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) reset() {
	h.zero.Store(0)
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one occupied histogram bucket covering [Lo, Hi).
type Bucket struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of a histogram: total
// observation count, sum over positive observations, the zero-or-negative
// tally, and the occupied power-of-two buckets in ascending order.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Zero    int64    `json:"zero,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Concurrent Observe calls may land between
// bucket reads; each bucket is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Zero:  h.zero.Load(),
	}
	for k := 0; k < histBuckets; k++ {
		if n := h.buckets[k].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Lo: 1 << k, Hi: 1 << (k + 1), N: n})
		}
	}
	return s
}
