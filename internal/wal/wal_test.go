package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/pfs"
)

func mustOpen(t *testing.T, fs *pfs.FileSystem, rank int, path string) *pfs.Handle {
	t.Helper()
	c := fs.NewClient(rank, 0)
	h, _, err := c.Open(path, pfs.OCreat|pfs.ORdwr, 10)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// noDrainLog builds a Log whose background drainer never runs, so queue
// state between operations is fully deterministic. Tests drive draining
// through the foreground barrier paths.
func noDrainLog(t *testing.T, opts Options) *Log {
	t.Helper()
	opts = opts.withDefaults()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	f, err := os.OpenFile(filepath.Join(opts.Dir, logName(0)), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	l := &Log{rank: 0, opts: opts, dir: opts.Dir, file: f, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	close(l.done)
	l.stopped = false
	return l
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Path: "/a", Off: 0, Now: 10, Data: []byte("hello")},
		{Path: "/a", Off: 5, Now: 20, Data: []byte("world")},
		{Path: "/b/c", Off: 4096, Now: 30, Data: bytes.Repeat([]byte{0xAB}, 1024)},
		{Path: "/empty", Off: 7, Now: 40, Data: nil},
	}
	for _, rec := range want {
		if _, err := appendRecord(f, rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	got, stats, good, err := recoverRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(want) || stats.Dropped != 0 || stats.TailBytes != 0 {
		t.Fatalf("stats = %v, want %d clean records", stats, len(want))
	}
	fi, _ := f.Stat()
	if good != fi.Size() {
		t.Fatalf("good offset %d != file size %d", good, fi.Size())
	}
	for i, rec := range got {
		if rec.Path != want[i].Path || rec.Off != want[i].Off || rec.Now != want[i].Now ||
			!bytes.Equal(rec.Data, want[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want[i])
		}
	}
	f.Close()
}

func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var goodEnd int64
	for i := 0; i < 3; i++ {
		n, err := appendRecord(f, Record{Path: "/t", Off: int64(i) * 8, Now: uint64(10 * i), Data: []byte("payload!")}, true)
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			goodEnd += n
		}
	}
	fi, _ := f.Stat()
	// Tear the last record at every byte boundary inside it.
	for cut := goodEnd + 1; cut < fi.Size(); cut += 3 {
		if err := f.Truncate(cut); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		recs, stats, good, err := recoverRecords(f)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 2 || stats.Dropped != 1 || good != goodEnd {
			t.Fatalf("cut=%d: recs=%d dropped=%d good=%d, want 2/1/%d", cut, len(recs), stats.Dropped, good, goodEnd)
		}
		if stats.TailBytes != cut-goodEnd {
			t.Fatalf("cut=%d: tail=%d want %d", cut, stats.TailBytes, cut-goodEnd)
		}
	}
	f.Close()
}

func TestOpenSalvagesAndResumesAppends(t *testing.T) {
	dir := t.TempDir()
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	h := mustOpen(t, fs, 0, "/f")

	l, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write(h, 0, []byte("first"), 20); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail by appending garbage, as a crash mid-append would.
	path := filepath.Join(dir, logName(0))
	if f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0); err != nil {
		t.Fatal(err)
	} else {
		f.Write([]byte("WALR\xff\xff"))
		f.Close()
	}

	l2, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Stats().Salvaged; got != 1 {
		t.Fatalf("salvaged %d records, want 1", got)
	}
	fs2 := pfs.New(pfs.Options{Semantics: pfs.Strong})
	h2 := mustOpen(t, fs2, 0, "/f")
	if _, err := l2.Write(h2, 5, []byte("second"), 30); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	recs, stats, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Dropped != 0 || len(recs[0]) != 2 {
		t.Fatalf("after salvage+append: %d records, stats %v; want 2 clean", len(recs[0]), stats[0])
	}
	if string(recs[0][0].Data) != "first" || string(recs[0][1].Data) != "second" {
		t.Fatalf("recovered %q/%q", recs[0][0].Data, recs[0][1].Data)
	}
}

func TestWriteAcksAndBarrierDrains(t *testing.T) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	h := mustOpen(t, fs, 0, "/f")
	l := noDrainLog(t, Options{})

	ackCost, err := l.Write(h, 0, bytes.Repeat([]byte{1}, 4096), 20)
	if err != nil {
		t.Fatal(err)
	}
	directCost, err := h.Write(8192, bytes.Repeat([]byte{2}, 4096), 30)
	if err != nil {
		t.Fatal(err)
	}
	if ackCost >= directCost {
		t.Fatalf("ack cost %d not cheaper than direct pfs write %d", ackCost, directCost)
	}
	if got := l.Stats(); got.Acked != 1 || got.Drained != 0 {
		t.Fatalf("stats = %+v, want 1 acked, 0 drained", got)
	}
	// Read-your-writes through the barrier: the read must see the queued
	// write drained first.
	data, _, err := l.Read(h, 0, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{1, 1, 1, 1}) {
		t.Fatalf("read %v after barrier, want drained write visible", data)
	}
	if got := l.Stats(); got.Drained != 1 {
		t.Fatalf("stats = %+v, want 1 drained", got)
	}
}

func TestWatermarkDegradesToWriteThrough(t *testing.T) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Commit})
	h := mustOpen(t, fs, 0, "/f")
	l := noDrainLog(t, Options{Watermark: 2})

	for i := 0; i < 2; i++ {
		if _, err := l.Write(h, int64(i)*4, []byte("abcd"), uint64(20+10*i)); err != nil {
			t.Fatal(err)
		}
	}
	// Queue is at the watermark: the next write must drain and write through.
	if _, err := l.Write(h, 8, []byte("abcd"), 50); err != nil {
		t.Fatal(err)
	}
	got := l.Stats()
	if got.Acked != 2 || got.WriteThrough != 1 || got.Drained != 2 || got.QueuePeak != 2 {
		t.Fatalf("stats = %+v, want acked=2 writethrough=1 drained=2 peak=2", got)
	}
	if l.Degraded() {
		t.Fatal("watermark pressure must not stick the log in degraded mode")
	}
	// Pressure released: the next write acks from the log again.
	if _, err := l.Write(h, 12, []byte("abcd"), 60); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats(); got.Acked != 3 {
		t.Fatalf("stats = %+v, want acked=3 after pressure release", got)
	}
}

func TestLogFailureDegradesSticky(t *testing.T) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	h := mustOpen(t, fs, 0, "/f")
	l := noDrainLog(t, Options{})

	// Kill the log disk out from under the Log.
	l.file.Close()
	for i := 0; i < 2; i++ {
		if _, err := l.Write(h, int64(i)*4, []byte("data"), uint64(20+10*i)); err != nil {
			t.Fatalf("write %d must survive log failure via write-through: %v", i, err)
		}
	}
	got := l.Stats()
	if !l.Degraded() || got.WriteThrough != 2 || got.Acked != 0 {
		t.Fatalf("degraded=%v stats=%+v, want sticky write-through", l.Degraded(), got)
	}
	data, _, err := h.Read(0, 8, 100)
	if err != nil || !bytes.Equal(data, []byte("datadata")) {
		t.Fatalf("read %q, %v; write-through writes must land", data, err)
	}
}

func TestDeferredDrainErrorSurfaces(t *testing.T) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	c := fs.NewClient(0, 0)
	h, _, err := c.Open("/f", pfs.OCreat|pfs.ORdwr, 10)
	if err != nil {
		t.Fatal(err)
	}
	l := noDrainLog(t, Options{})
	if _, err := l.Write(h, 0, []byte("doomed"), 20); err != nil {
		t.Fatal(err)
	}
	c.Crash() // the queued record can now never drain
	if _, _, err := l.Read(h, 0, 6, 30); !errors.Is(err, pfs.ErrCrashed) {
		t.Fatalf("barrier error = %v, want ErrCrashed from the failed drain", err)
	}
	// The error was surfaced once; the barrier itself is clean afterwards.
	if err := l.Barrier(); err != nil {
		t.Fatalf("second barrier = %v, want nil (error already surfaced, record dropped)", err)
	}
}

type transientInjector struct {
	mu        sync.Mutex
	remaining int // fail this many write intercepts, then pass everything
}

func (ti *transientInjector) Intercept(op pfs.OpInfo) pfs.FaultAction {
	if op.Kind != pfs.OpWrite {
		return pfs.FaultAction{}
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if ti.remaining > 0 {
		ti.remaining--
		return pfs.FaultAction{Transient: true}
	}
	return pfs.FaultAction{}
}

func TestDrainRetriesTransientWithBackoff(t *testing.T) {
	// MaxRetries < 0 disables the client's own retry loop, so every
	// injected transient fault surfaces to the WAL drain loop directly.
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong, Retry: pfs.RetryPolicy{MaxRetries: -1}})
	h := mustOpen(t, fs, 0, "/f")
	fs.SetInjector(&transientInjector{remaining: 1 << 30})
	l := noDrainLog(t, Options{MaxRetries: 3, Retry: Backoff{BaseNS: 1000, CapNS: 10_000}})

	if _, err := l.Write(h, 0, []byte("x"), 20); err != nil {
		t.Fatal(err)
	}
	err := l.Barrier()
	if !errors.Is(err, pfs.ErrTransient) {
		t.Fatalf("barrier = %v, want ErrTransient after retries exhausted", err)
	}
	if got := l.Stats(); got.Retries != 3 || got.Drained != 0 {
		t.Fatalf("stats = %+v, want 3 retries, 0 drained", got)
	}

	// Now let the fault clear after two failed attempts: the drain succeeds.
	fs.SetInjector(&transientInjector{remaining: 2})
	if _, err := l.Write(h, 0, []byte("y"), 30); err != nil {
		t.Fatal(err)
	}
	if err := l.Barrier(); err != nil {
		t.Fatalf("barrier after fault cleared = %v", err)
	}
	if got := l.Stats(); got.Drained != 1 {
		t.Fatalf("stats = %+v, want the retried record drained", got)
	}
}

func TestCloseDrainsEverything(t *testing.T) {
	dir := t.TempDir()
	fs := pfs.New(pfs.Options{Semantics: pfs.Eventual})
	h := mustOpen(t, fs, 0, "/f")
	l, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 256)
	for i := 0; i < 50; i++ {
		if _, err := l.Write(h, int64(i)*256, payload, uint64(20+10*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Drained+st.WriteThrough != 50 {
		t.Fatalf("stats = %+v, want all 50 writes in the pfs", st)
	}
	dump := fs.ContentDump()
	if len(dump["/f"]) != 50*256 {
		t.Fatalf("pfs content %d bytes, want %d", len(dump["/f"]), 50*256)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{BaseNS: 100_000, Multiplier: 2, CapNS: 1 << 30, Seed: 42}
	nominal := uint64(100_000)
	for attempt := 0; attempt < 20; attempt++ {
		d := b.Delay(attempt)
		lo, hi := nominal-nominal/4, nominal+nominal/4
		if d < lo || d > hi {
			t.Fatalf("attempt %d: delay %d outside documented ±25%% bounds [%d, %d] of nominal %d",
				attempt, d, lo, hi, nominal)
		}
		if nominal < (1<<30)/2 {
			nominal *= 2
		} else {
			nominal = 1 << 30
		}
	}
	// Pure function of (Seed, attempt): identical across calls and goroutines.
	for attempt := 0; attempt < 8; attempt++ {
		want := b.Delay(attempt)
		var wg sync.WaitGroup
		got := make([]uint64, 8)
		for i := range got {
			wg.Add(1)
			go func(i, attempt int) {
				defer wg.Done()
				got[i] = b.Delay(attempt)
			}(i, attempt)
		}
		wg.Wait()
		for i, g := range got {
			if g != want {
				t.Fatalf("concurrent Delay(%d) call %d = %d, want %d", attempt, i, g, want)
			}
		}
	}
}
