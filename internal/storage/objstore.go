package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// objstore is a flat-namespace object store with write-then-publish
// visibility, the backend whose native semantics are genuinely eventual.
// Every caller path is an opaque key; a "file" is the newest *visible*
// immutable version of its key. Writes buffer in the handle; Sync uploads
// the whole buffer as a new version whose publish instant lies
// VisibilityDelay in the future — durable immediately (the version object
// is fsync'd host state, so an acked write survives SIGKILL), but readable
// by nobody until the publish instant passes. That lag is real, not
// simulated: a reader that looks too early sees the previous version or
// nothing, exactly the propagation window "Exploring Scientific
// Application Performance Using Large Scale Object Storage" (PAPERS.md)
// measures on Rados/S3-style stores. Rename is copy+delete (object stores
// have no atomic rename), so the ckpt manifest's write-temp→rename commit
// runs here under the weaker publish the paper's relaxed models assume.
//
// On-host layout under Root (the store's persistent state, shared by every
// process that opens the same Root):
//
//	obj/<enckey>.v<gen>.<publishUnixNano>   one immutable version
//	stage/<enckey>.<suffix>                 in-flight upload staging
type objstore struct {
	root  string
	delay time.Duration

	mu sync.Mutex // serializes publish (gen allocation) per process
}

// ObjStoreOptions configures an object-store backend.
type ObjStoreOptions struct {
	// Root is the host directory holding the store's persistent state. Two
	// backends opened on the same Root see the same objects — that is how a
	// kill-and-recover harness's second process finds the first one's
	// versions. Empty means a fresh private temp directory (in-process
	// tests and chaos runs).
	Root string
	// VisibilityDelay is how long after a successful Sync a version stays
	// invisible to readers (default 25ms).
	VisibilityDelay time.Duration
}

// NewObjStore opens (creating if needed) the object store rooted at
// o.Root.
func NewObjStore(o ObjStoreOptions) Backend {
	if o.VisibilityDelay <= 0 {
		o.VisibilityDelay = 25 * time.Millisecond
	}
	root := o.Root
	if root == "" {
		d, err := os.MkdirTemp("", "semfs-objstore-")
		if err != nil {
			// No host temp space: nothing downstream can work either.
			panic(fmt.Sprintf("storage: objstore temp root: %v", err))
		}
		root = d
	}
	_ = os.MkdirAll(filepath.Join(root, "obj"), 0o755)
	_ = os.MkdirAll(filepath.Join(root, "stage"), 0o755)
	return &objstore{root: root, delay: o.VisibilityDelay}
}

func (s *objstore) Name() string              { return "objstore" }
func (s *objstore) PublishLag() time.Duration { return s.delay }

var keyEncoder = strings.NewReplacer("%", "%P", "/", "%S")
var keyDecoder = strings.NewReplacer("%S", "/", "%P", "%")

func encodeKey(path string) string { return keyEncoder.Replace(path) }
func decodeKey(enc string) string  { return keyDecoder.Replace(enc) }

// version is one parsed obj/ entry.
type version struct {
	file    string // host file name under obj/
	gen     uint64
	publish int64 // UnixNano visibility instant
}

// versions lists key's versions, oldest gen first.
func (s *objstore) versions(key string) ([]version, error) {
	enc := encodeKey(key)
	ents, err := os.ReadDir(filepath.Join(s.root, "obj"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	prefix := enc + ".v"
	var out []version
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		genStr, pubStr, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		gen, err1 := strconv.ParseUint(genStr, 10, 64)
		pub, err2 := strconv.ParseInt(pubStr, 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, version{file: name, gen: gen, publish: pub})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].gen < out[j].gen })
	return out, nil
}

// newestVisible returns key's newest published version at now, or ok=false.
func (s *objstore) newestVisible(key string, now int64) (version, bool, error) {
	vs, err := s.versions(key)
	if err != nil {
		return version{}, false, err
	}
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].publish <= now {
			return vs[i], true, nil
		}
	}
	return version{}, false, nil
}

func (s *objstore) readVersion(v version) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.root, "obj", v.file))
}

// publish uploads data as key's next version: staged, fsync'd, renamed
// into obj/ (host rename is what makes the version durable-or-absent,
// never torn), visible after the store's delay.
func (s *objstore) publish(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs, err := s.versions(key)
	if err != nil {
		return err
	}
	var gen uint64 = 1
	if n := len(vs); n > 0 {
		gen = vs[n-1].gen + 1
	}
	enc := encodeKey(key)
	stage := filepath.Join(s.root, "stage", enc+"."+uniqueSuffix())
	f, err := os.OpenFile(stage, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(stage)
		return err
	}
	hitKillPoint("storage.sync.before")
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(stage)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(stage)
		return err
	}
	publish := time.Now().UnixNano() + s.delay.Nanoseconds()
	final := filepath.Join(s.root, "obj", fmt.Sprintf("%s.v%d.%d", enc, gen, publish))
	if err := os.Rename(stage, final); err != nil {
		os.Remove(stage)
		return err
	}
	if d, err := os.Open(filepath.Join(s.root, "obj")); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	hitKillPoint("storage.sync.after")
	publishVersions.Inc()
	publishBytes.Add(int64(len(data)))
	publishLagNS.Observe(s.delay.Nanoseconds())
	return nil
}

func (s *objstore) Open(path string, flags int, perm uint32) (File, error) {
	opens.Inc()
	var buf []byte
	v, ok, err := s.newestVisible(path, time.Now().UnixNano())
	if err != nil {
		opErrors.Inc()
		return nil, err
	}
	switch {
	case ok && flags&OTrunc == 0:
		if buf, err = s.readVersion(v); err != nil {
			opErrors.Inc()
			return nil, err
		}
	case !ok && flags&OCreate == 0:
		return nil, fmt.Errorf("%w: %s", errNotExist, path)
	}
	f := &objFile{store: s, key: path, buf: buf, append: flags&OAppend != 0}
	if flags&OCreate != 0 && !ok {
		// Creating a key publishes an (empty) first version only at Sync or
		// Close — an object store has no zero-byte create-on-open. Mark
		// dirty so a bare create+close still materializes the key.
		f.dirty = true
	}
	return f, nil
}

func (s *objstore) ReadFile(path string) ([]byte, error) {
	reads.Inc()
	v, ok, err := s.newestVisible(path, time.Now().UnixNano())
	if err != nil {
		opErrors.Inc()
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", errNotExist, path)
	}
	return s.readVersion(v)
}

func (s *objstore) Stat(path string) (int64, error) {
	v, ok, err := s.newestVisible(path, time.Now().UnixNano())
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: %s", errNotExist, path)
	}
	fi, err := os.Stat(filepath.Join(s.root, "obj", v.file))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Rename is server-side copy + delete: the newest version's bytes are
// republished under the new key (fresh visibility delay), then the old
// key's versions are removed. A crash between the two leaves both keys —
// the non-atomicity every object-store "rename" has.
func (s *objstore) Rename(oldpath, newpath string) error {
	hitKillPoint("storage.rename.before")
	renames.Inc()
	// The copy sees the newest version regardless of publish state: the
	// server owns all versions; the delay models propagation to readers,
	// not the server's own view.
	vs, err := s.versions(oldpath)
	if err != nil {
		opErrors.Inc()
		return err
	}
	if len(vs) == 0 {
		opErrors.Inc()
		return fmt.Errorf("%w: %s", errNotExist, oldpath)
	}
	data, err := s.readVersion(vs[len(vs)-1])
	if err != nil {
		opErrors.Inc()
		return err
	}
	if err := s.publish(newpath, data); err != nil {
		opErrors.Inc()
		return err
	}
	if err := s.Remove(oldpath); err != nil && !IsNotExist(err) {
		return err
	}
	hitKillPoint("storage.rename.after")
	return nil
}

func (s *objstore) Remove(path string) error {
	removes.Inc()
	vs, err := s.versions(path)
	if err != nil {
		return err
	}
	if len(vs) == 0 {
		return fmt.Errorf("%w: %s", errNotExist, path)
	}
	for _, v := range vs {
		if err := os.Remove(filepath.Join(s.root, "obj", v.file)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// MkdirAll is a no-op: the namespace is flat, directories are prefixes.
func (s *objstore) MkdirAll(path string) error { return nil }

// SyncDir is a no-op: there is no entry table separate from the objects.
func (s *objstore) SyncDir(dir string) error { return nil }

// List returns the visible entries directly under dir: keys with prefix
// dir+"/", truncated at the next separator and deduplicated.
func (s *objstore) List(dir string) ([]string, error) {
	lists.Inc()
	ents, err := os.ReadDir(filepath.Join(s.root, "obj"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		opErrors.Inc()
		return nil, err
	}
	now := time.Now().UnixNano()
	prefix := dir
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	// Visibility per key: a key is listed iff its newest visible version
	// exists. Collect per-key max visible publish as we scan.
	visible := map[string]bool{}
	for _, e := range ents {
		name := e.Name()
		i := strings.LastIndex(name, ".v")
		if i < 0 {
			continue
		}
		rest := name[i+2:]
		_, pubStr, ok := strings.Cut(rest, ".")
		if !ok {
			continue
		}
		pub, err := strconv.ParseInt(pubStr, 10, 64)
		if err != nil || pub > now {
			continue
		}
		key := decodeKey(name[:i])
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		seg := key[len(prefix):]
		if j := strings.IndexByte(seg, '/'); j >= 0 {
			seg = seg[:j]
		}
		visible[seg] = true
	}
	return sortedNames(visible), nil
}

// objFile is one open handle: a private buffer snapshot of the newest
// visible version plus local edits. Sync/Close publish the buffer as a new
// immutable version.
type objFile struct {
	store  *objstore
	key    string
	buf    []byte
	pos    int64
	append bool
	dirty  bool
	closed bool
}

func (f *objFile) Name() string { return f.key }

func (f *objFile) Read(p []byte) (int, error) {
	if f.pos >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *objFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *objFile) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
	case io.SeekCurrent:
		off += f.pos
	case io.SeekEnd:
		off += int64(len(f.buf))
	default:
		return 0, fmt.Errorf("storage: bad whence %d", whence)
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: negative seek %d", off)
	}
	f.pos = off
	return off, nil
}

func (f *objFile) extend(end int64) {
	if end > int64(len(f.buf)) {
		f.buf = append(f.buf, make([]byte, end-int64(len(f.buf)))...)
	}
}

func (f *objFile) Write(p []byte) (int, error) {
	hitKillPoint("storage.write.before")
	writes.Inc()
	writeBytes.Add(int64(len(p)))
	if f.append {
		f.pos = int64(len(f.buf))
	}
	f.extend(f.pos + int64(len(p)))
	copy(f.buf[f.pos:], p)
	f.pos += int64(len(p))
	f.dirty = true
	hitKillPoint("storage.write.after")
	return len(p), nil
}

func (f *objFile) WriteAt(p []byte, off int64) (int, error) {
	hitKillPoint("storage.write.before")
	writes.Inc()
	writeBytes.Add(int64(len(p)))
	f.extend(off + int64(len(p)))
	copy(f.buf[off:], p)
	f.dirty = true
	hitKillPoint("storage.write.after")
	return len(p), nil
}

func (f *objFile) Truncate(size int64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative truncate %d", size)
	}
	if size <= int64(len(f.buf)) {
		f.buf = f.buf[:size]
	} else {
		f.extend(size)
	}
	f.dirty = true
	return nil
}

// Sync is the upload: the buffer becomes a durable new version, visible
// after the store's delay. Sync of a clean handle is a no-op (nothing new
// to publish).
func (f *objFile) Sync() error {
	syncs.Inc()
	if !f.dirty {
		return nil
	}
	start := time.Now()
	err := f.store.publish(f.key, f.buf)
	syncNS.Observe(time.Since(start).Nanoseconds())
	if err != nil {
		opErrors.Inc()
		return err
	}
	f.dirty = false
	return nil
}

// Close completes the upload if writes are pending — the multipart-commit
// idiom: an object only exists once its upload completes.
func (f *objFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	return f.Sync()
}
