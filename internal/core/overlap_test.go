package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func iv(t uint64, rank int32, os, oe int64, write bool) Interval {
	return Interval{T: t, TEnd: t + 1, Rank: rank, Os: os, Oe: oe, Write: write,
		To: NoTime, TcCommit: NoTime, TcClose: NoTime}
}

func collectPairs(ivs []Interval, detect func([]Interval, func(OverlapPair)) RankPairTable) ([]OverlapPair, RankPairTable) {
	var pairs []OverlapPair
	table := detect(ivs, func(p OverlapPair) { pairs = append(pairs, p) })
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs, table
}

func TestOverlapBasic(t *testing.T) {
	ivs := []Interval{
		iv(10, 0, 0, 100, true),   // 0
		iv(20, 1, 50, 150, false), // 1: overlaps 0
		iv(30, 2, 100, 200, true), // 2: touches 0 (no overlap), overlaps 1
		iv(40, 3, 500, 600, true), // 3: disjoint
	}
	pairs, table := collectPairs(ivs, DetectOverlaps)
	// Candidate pairs (earlier op is a write): (0,1) write-read, (1,2) has
	// earlier=1 which is a read → skipped.
	want := []OverlapPair{{A: 0, B: 1}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	if table[rankKey(0, 1)] != 1 || table[rankKey(1, 2)] != 1 {
		t.Fatalf("table = %v", table)
	}
	if table[rankKey(0, 2)] != 0 || table[rankKey(0, 3)] != 0 {
		t.Fatalf("touching or disjoint intervals counted as overlap: %v", table)
	}
}

func TestOverlapContained(t *testing.T) {
	ivs := []Interval{
		iv(10, 0, 0, 1000, true),
		iv(20, 1, 400, 500, true), // fully inside
	}
	pairs, _ := collectPairs(ivs, DetectOverlaps)
	if len(pairs) != 1 || pairs[0] != (OverlapPair{A: 0, B: 1}) {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestOverlapTimeOrdersPairs(t *testing.T) {
	// Later-by-offset but earlier-by-time: pair must be time-ordered.
	ivs := []Interval{
		iv(50, 0, 0, 100, false), // read at t=50
		iv(10, 1, 50, 60, true),  // write at t=10
	}
	pairs, _ := collectPairs(ivs, DetectOverlaps)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0].A != 1 || pairs[0].B != 0 {
		t.Fatalf("pair not time-ordered: %v", pairs[0])
	}
}

func TestOverlapSkipsReadReadPairs(t *testing.T) {
	ivs := []Interval{
		iv(10, 0, 0, 100, false),
		iv(20, 1, 0, 100, false),
	}
	pairs, table := collectPairs(ivs, DetectOverlaps)
	if len(pairs) != 0 {
		t.Fatalf("read-read pair materialized: %v", pairs)
	}
	if table[rankKey(0, 1)] != 1 {
		t.Fatal("read-read overlap must still count in the rank table")
	}
}

func TestOverlapMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		ivs := make([]Interval, n)
		for i := range ivs {
			os := int64(rng.Intn(500))
			ivs[i] = iv(uint64(rng.Intn(1000)), int32(rng.Intn(4)), os, os+int64(rng.Intn(100)+1), rng.Intn(2) == 0)
		}
		gotPairs, gotTable := collectPairs(ivs, DetectOverlaps)
		wantPairs, wantTable := collectPairs(ivs, DetectOverlapsBruteForce)
		if !reflect.DeepEqual(gotPairs, wantPairs) {
			t.Fatalf("trial %d: pair mismatch\n got %v\nwant %v\nivs=%v", trial, gotPairs, wantPairs, ivs)
		}
		if len(gotTable) != len(wantTable) {
			t.Fatalf("trial %d: table size mismatch %v vs %v", trial, gotTable, wantTable)
		}
		for k, v := range wantTable {
			if gotTable[k] != v {
				t.Fatalf("trial %d: table[%v] = %d, want %d", trial, k, gotTable[k], v)
			}
		}
	}
}

func TestOverlapEmptyAndSingle(t *testing.T) {
	if got := DetectOverlaps(nil, nil); len(got) != 0 {
		t.Fatal("empty input should produce empty table")
	}
	single := []Interval{iv(1, 0, 0, 10, true)}
	if got := DetectOverlaps(single, func(OverlapPair) { t.Fatal("pair from single interval") }); len(got) != 0 {
		t.Fatal("single interval cannot overlap")
	}
}

func TestOverlapIdenticalOffsets(t *testing.T) {
	// Several writes to exactly the same range (the HDF5 metadata shape).
	ivs := []Interval{
		iv(10, 0, 96, 368, true),
		iv(20, 1, 96, 368, true),
		iv(30, 2, 96, 368, true),
	}
	pairs, _ := collectPairs(ivs, DetectOverlaps)
	if len(pairs) != 3 { // (0,1), (0,2), (1,2)
		t.Fatalf("expected 3 pairs, got %v", pairs)
	}
}
