package wal

import "repro/internal/obs"

// Host-side write-ahead-log telemetry on the process-wide registry
// (DESIGN.md §9 naming: wal.append.* for the local durable-append path,
// wal.ack.* for the acknowledgement the application sees, wal.drain.* for
// the background replay into the pfs backend, wal.degrade.* for
// write-through fallbacks, wal.recover.* for crash recovery). As with
// ckpt.journal.fsync_ns, the fsync histogram records host wall time — real
// durability cost — so it varies between otherwise identical runs; every
// other instrument is a deterministic function of the run.
var (
	appendRecords = obs.Default().Counter("wal.append.records")
	appendBytes   = obs.Default().Counter("wal.append.bytes")
	appendFsyncNS = obs.Default().Histogram("wal.append.fsync_ns")

	ackCostNS = obs.Default().Histogram("wal.ack.cost_ns")

	drainRecords   = obs.Default().Counter("wal.drain.records")
	drainBatches   = obs.Default().Counter("wal.drain.batches")
	drainRetries   = obs.Default().Counter("wal.drain.retries")
	drainBackoffNS = obs.Default().Histogram("wal.drain.backoff_ns")
	drainErrors    = obs.Default().Counter("wal.drain.errors")

	queueDepthPeak = obs.Default().Gauge("wal.queue.depth_peak")

	degradeWriteThrough = obs.Default().Counter("wal.degrade.write_through")
	degradeLogFailures  = obs.Default().Counter("wal.degrade.log_failures")

	recoverRecordsKept = obs.Default().Counter("wal.recover.records_kept")
	recoverDropped     = obs.Default().Counter("wal.recover.records_dropped")
	recoverTruncated   = obs.Default().Counter("wal.recover.bytes_truncated")
)

// Flight-recorder event classes: the degrade transitions are exactly the
// "something went sideways" moments a post-mortem wants in the ring.
var (
	flightDegrade      = obs.FlightClassFor("wal.degrade")
	flightWriteThrough = obs.FlightClassFor("wal.write-through")
)
