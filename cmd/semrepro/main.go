// Command semrepro regenerates every table and figure of the paper's
// evaluation section from freshly simulated runs: Table 1 (PFS
// categorization), Table 3 (high-level patterns), Table 4 (conflicts under
// session/commit semantics), Table 5 (configuration inventory), Figure 1
// (access-pattern mixes), Figure 2 (FLASH access scatter CSVs) and Figure 3
// (metadata census). Results land in the output directory as text and CSV.
//
// Usage:
//
//	semrepro -out results -ranks 64 -ppn 8
//	semrepro -out results -checkpoint ckptdir            # journal as you go
//	semrepro -out results -checkpoint ckptdir -resume    # replay after a crash
//	semrepro -out results -chaos -chaos-seeds 1,2,3
//	semrepro -out results -chaos -chaos-wal              # chaos with per-rank write-ahead logs
//	semrepro -out results -only consistency              # formal-spec-checked cross-model table
//	semrepro -out results -wal-burst -wal-dir wal        # WAL checkpoint burst (SIGKILL-safe)
//	semrepro -out results -wal-recover -wal-dir wal      # salvage, verify zero acked-write loss
//
// Exit codes: 0 = everything completed, 1 = hard failure (no configuration
// produced a result, or an artifact could not be written), 2 = usage error,
// 3 = the run completed in degraded form — some configurations failed, or
// the chaos sweep found invariant violations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/report"
	"repro/internal/storage"
	"repro/internal/wal"

	// Live /metrics exporter behind the -serve-metrics flag.
	_ "repro/internal/obs/live"
)

const (
	exitOK       = 0
	exitError    = 1 // nothing usable was produced
	exitUsage    = 2
	exitDegraded = 3 // partial results or chaos violations
)

func main() { os.Exit(run()) }

func run() (code int) {
	var (
		out        = flag.String("out", "results", "output directory")
		ranks      = flag.Int("ranks", 64, "ranks per run")
		ppn        = flag.Int("ppn", 8, "processes per node")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		semName    = flag.String("semantics", "strong", "consistency model for the sweep: strong|commit|session|eventual")
		only       = flag.String("only", "", "generate a single artifact: table1|table3|table4|table5|figure1|figure2|figure3|verdicts|consistency|walcompare")
		consApps   = flag.String("consistency-apps", "", "comma-separated configuration names for -only consistency (default: full registry)")
		workers    = flag.Int("workers", 0, "how many configurations to run concurrently: 0 = GOMAXPROCS, 1 = serial")
		timeout    = flag.Duration("task-timeout", 0, "abandon any single configuration after this long (0 = no limit)")
		ckptDir    = flag.String("checkpoint", "", "journal completed configurations to this directory (crash-safe)")
		resume     = flag.Bool("resume", false, "replay configurations already journaled in -checkpoint instead of re-running them")
		chaos      = flag.Bool("chaos", false, "run the fault-injection chaos sweep instead of the paper artifacts")
		chaosSeeds = flag.String("chaos-seeds", "1", "comma-separated schedule seeds for -chaos")
		chaosApps  = flag.String("chaos-apps", "", "comma-separated configuration names for -chaos (default: full registry)")
		chaosSem   = flag.String("chaos-semantics", "", "comma-separated consistency models for -chaos (default: all four)")
		chaosWAL   = flag.Bool("chaos-wal", false, "route -chaos runs through per-rank write-ahead logs (exercises drain/retry/degrade under faults)")
		walBurst   = flag.Bool("wal-burst", false, "run the deterministic WAL checkpoint burst into -wal-dir (uses -ranks, -seed, -semantics); safe to SIGKILL")
		walRecover = flag.Bool("wal-recover", false, "recover a (possibly crash-interrupted) WAL burst from -wal-dir and verify zero acked-write loss")
		walDir     = flag.String("wal-dir", "", "write-ahead log directory for -wal-burst / -wal-recover")
		walApps    = flag.String("wal-apps", "", "comma-separated configuration names for -only walcompare (default: the FLASH/HACC burst set)")
		flightDump = flag.String("flight-dump", "", "replay a flight-recorder dump file (written by -flight on a crash) and exit")
		backSpec   = flag.String("backend", "osdisk", "durable storage backend for -checkpoint/-wal-burst/-wal-recover/-chaos state: osdisk | objstore[:delay=D,root=DIR] | flaky[:base=B,seed=N,count=N,kinds=transient|all]")
		backRetry  = flag.Bool("backend-retry", true, "wrap -backend with the bounded-retry/degrade policy (storage.NewRetry)")
		tele       obs.CLIFlags
	)
	tele.Register(flag.CommandLine)
	flag.Parse()
	defer obs.FlightPanicDump()
	if *flightDump != "" {
		d, err := obs.LoadFlightDump(*flightDump)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro:", err)
			return exitError
		}
		fmt.Print(obs.FormatFlightDump(d))
		return exitOK
	}
	// Telemetry first: -flight arms the flight recorder, so the kill.armed
	// events ArmKillPointsFromEnv records land in the ring.
	if err := tele.Start(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "semrepro:", err)
		return exitUsage
	}
	if err := faults.ArmKillPointsFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "semrepro:", err)
		return exitUsage
	}
	defer func() {
		if err := tele.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "semrepro:", err)
			if code == exitOK {
				code = exitError
			}
		}
	}()

	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "semrepro: -resume requires -checkpoint")
		return exitUsage
	}
	semantics, err := pfs.ParseSemantics(*semName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semrepro: -semantics:", err)
		return exitUsage
	}
	backend, err := storage.ParseSpec(*backSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semrepro: -backend:", err)
		return exitUsage
	}
	if *backRetry {
		backend = storage.NewRetry(backend, storage.RetryOptions{})
	}
	osdiskBackend := *backSpec == "osdisk" || *backSpec == ""

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "semrepro:", err)
		return exitError
	}
	scale := experiments.Scale{Ranks: *ranks, PPN: *ppn, Seed: *seed, Semantics: semantics}

	hardErr := false
	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "semrepro:", err)
			hardErr = true
			return
		}
		fmt.Println("wrote", path)
	}

	if *walBurst || *walRecover {
		// WAL burst / recovery legs: a deterministic checkpoint burst whose
		// log directory can be recovered after a crash (or SIGKILL via
		// SEMFS_KILL at a wal.* point) with zero acked-write loss. Both
		// sides must agree on -ranks, -seed and -semantics.
		if *walDir == "" {
			fmt.Fprintln(os.Stderr, "semrepro: -wal-burst/-wal-recover require -wal-dir")
			return exitUsage
		}
		if *walBurst && *walRecover {
			fmt.Fprintln(os.Stderr, "semrepro: -wal-burst and -wal-recover are separate runs")
			return exitUsage
		}
		spec := wal.BurstSpec{Semantics: semantics, Ranks: *ranks, Seed: *seed,
			Log: wal.Options{Dir: *walDir, Backend: backend}}
		if *walBurst {
			if err := backend.MkdirAll(*walDir); err != nil {
				fmt.Fprintln(os.Stderr, "semrepro:", err)
				return exitError
			}
			res, err := wal.RunBurst(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "semrepro: wal burst:", err)
				return exitError
			}
			text := wal.FormatBurst(spec, res)
			fmt.Print(text)
			write("wal_burst.txt", text)
			write("wal_state.txt", wal.FormatDump(res.Dump))
			if hardErr {
				return exitError
			}
			if !res.Spec.OK() {
				return exitDegraded
			}
			return exitOK
		}
		rep, err := wal.RecoverBurst(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro: wal recovery:", err)
			return exitError
		}
		text := wal.FormatReport(rep)
		fmt.Print(text)
		write("wal_recover.txt", text)
		write("wal_state.txt", wal.FormatDump(rep.Dump))
		if hardErr {
			return exitError
		}
		return exitOK
	}

	if *chaos {
		seeds, err := parseSeeds(*chaosSeeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro: -chaos-seeds:", err)
			return exitUsage
		}
		sems, err := parseSemanticsList(*chaosSem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro: -chaos-semantics:", err)
			return exitUsage
		}
		sweepOpts := faults.SweepOptions{
			Apps:      parseList(*chaosApps),
			Semantics: sems,
			Seeds:     seeds,
			Workers:   *workers,
		}
		if *chaosWAL || !osdiskBackend {
			// On osdisk, NoFsync: chaos probes the drain/retry/degrade
			// machinery, not host-disk durability (the kill-and-recover
			// harness covers that). A non-default -backend implies WAL
			// routing — the WAL is the only layer chaos touches a durable
			// backend through — and keeps fsync on, because on objstore/flaky
			// the Sync path is exactly what is under test.
			sweepOpts.WAL = &wal.Options{NoFsync: osdiskBackend, Backend: backend}
		}
		rep, err := faults.Sweep(context.Background(), sweepOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro: chaos:", err)
			return exitError
		}
		text := faults.RenderSweep(rep)
		fmt.Print(text)
		write("chaos_report.txt", text)
		if hardErr {
			return exitError
		}
		if len(rep.Violations) > 0 {
			return exitDegraded
		}
		return exitOK
	}

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		write("table1_semantics.txt", experiments.Table1())
	}
	if want("table5") {
		write("table5_configurations.txt", experiments.Table5())
	}
	if *only == "table1" || *only == "table5" {
		if hardErr {
			return exitError
		}
		return exitOK
	}

	if *only == "consistency" {
		// Cross-model comparison with formal-spec verification: each
		// configuration reruns under all four models with the op-history
		// recorder attached, and every history must satisfy its model's
		// executable spec (internal/consistency). Not part of the default
		// artifact set — the 4x rerun cost is opt-in.
		cells, err := experiments.ConsistencyComparison(context.Background(), scale, parseList(*consApps))
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro: consistency:", err)
			if len(cells) == 0 {
				return exitError
			}
		}
		write("consistency_models.txt", experiments.ConsistencyTable(cells))
		if hardErr {
			return exitError
		}
		for _, c := range cells {
			if !c.Accepted {
				fmt.Fprintf(os.Stderr, "semrepro: %s under %v rejected by its formal spec (clause %s)\n",
					c.Config, c.Semantics, c.Clause)
				return exitDegraded
			}
		}
		return exitOK
	}

	if *only == "walcompare" {
		// WAL on/off checkpoint-burst table: each cell reruns with the
		// op-history recorder attached and must pass its model's formal
		// spec, so the ack-latency win is only reported for runs proven
		// semantics-preserving. Opt-in like -only consistency (2x reruns).
		cells, err := experiments.WALComparison(context.Background(), scale, parseList(*walApps))
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro: walcompare:", err)
			if len(cells) == 0 {
				return exitError
			}
		}
		write("wal_compare.txt", experiments.WALTable(cells))
		if hardErr {
			return exitError
		}
		for _, c := range cells {
			if !c.Accepted {
				fmt.Fprintf(os.Stderr, "semrepro: %s under %v (wal=%v) rejected by its formal spec (clause %s)\n",
					c.Config, c.Semantics, c.WAL, c.Clause)
				return exitDegraded
			}
		}
		return exitOK
	}

	sweep := experiments.SweepOptions{Workers: *workers, TaskTimeout: *timeout, Resume: *resume}
	if *ckptDir != "" {
		store, err := experiments.OpenCheckpointOn(backend, *ckptDir, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semrepro: -checkpoint:", err)
			return exitError
		}
		defer store.Close()
		if rs := store.Stats(); rs.Degraded() {
			fmt.Println("checkpoint recovery:", rs.String())
		}
		sweep.Checkpoint = store
	}

	fmt.Printf("running all %d configurations at %d ranks...\n", 25, *ranks)
	results, err := experiments.RunAllCtx(context.Background(), scale, sweep)
	if *ckptDir != "" && results != nil {
		sum := results.Summarize()
		fmt.Printf("checkpoint: %d replayed, %d executed\n", sum.Replayed, sum.Executed)
	}
	degraded := false
	if err != nil {
		// Failures are per-configuration and already wrapped with the failing
		// configuration's name: report every one, then keep going with
		// whatever succeeded rather than losing the whole sweep.
		fmt.Fprintln(os.Stderr, "semrepro: some configurations failed:\n", err)
		if len(results.Ordered) == 0 {
			return exitError
		}
		degraded = true
	}

	if want("table3") {
		write("table3_patterns.txt", experiments.Table3(results))
	}
	if want("table4") {
		write("table4_conflicts.txt", experiments.Table4(results))
	}
	if want("figure1") {
		text, csv := experiments.Figure1(results)
		write("figure1_patterns.txt", text)
		write("figure1_patterns.csv", csv)
	}
	if want("figure2") {
		for name, csv := range experiments.Figure2(results) {
			write("figure2_"+name, csv)
		}
	}
	if want("figure3") {
		write("figure3_metadata.txt", experiments.Figure3(results))
	}
	if want("verdicts") || *only == "" {
		write("verdicts.txt", experiments.VerdictsReport(results))
	}
	if want("metadeps") || *only == "" {
		write("metadata_dependencies.txt", experiments.MetaTable(results))
	}
	if want("reports") || *only == "" {
		// Per-run detailed reports, like the paper's published artifact.
		if err := os.MkdirAll(filepath.Join(*out, "reports"), 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "semrepro:", err)
			return exitError
		}
		for _, name := range results.Ordered {
			rep := report.BuildRunReport(results.ByName[name].Trace)
			write(filepath.Join("reports", sanitize(name)+".txt"), rep.Render())
		}
	}
	if hardErr {
		return exitError
	}
	if degraded {
		return exitDegraded
	}
	return exitOK
}

func parseSeeds(s string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", part, err)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", s)
	}
	return seeds, nil
}

// parseList splits a comma-separated flag value, dropping empty entries.
func parseList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseSemanticsList(s string) ([]pfs.Semantics, error) {
	var out []pfs.Semantics
	for _, name := range parseList(s) {
		sem, err := pfs.ParseSemantics(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sem)
	}
	return out, nil
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r == '/' || r == ' ' {
			return '_'
		}
		return r
	}, name)
}
