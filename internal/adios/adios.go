// Package adios emulates the ADIOS2/BP output engine at file-system level:
// writer ranks are grouped into substreams, each substream's aggregator
// appends data blocks to its own data.N subfile (the paper's M-M pattern
// for LAMMPS-ADIOS), and rank 0 maintains a metadata file (md.0, appended)
// plus an index file (md.idx) whose step-status byte is overwritten at
// every step — the single-byte overwrite the paper identifies as the
// source of LAMMPS-ADIOS's WAW-S conflict ("the conflict is due to the
// overwriting of a single byte of the ADIOS metadata file (*/md.idx)").
package adios

import (
	"errors"
	"fmt"

	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/posix"
	"repro/internal/recorder"
)

// Index file layout.
const (
	idxStatusOff = 24 // offset of the step-status byte within md.idx
	idxHeaderLen = 64
	idxEntryLen  = 64
)

// Options configures the engine.
type Options struct {
	// Substreams is the number of data subfiles / aggregators (ADIOS's
	// NumAggregators). 0 means one per compute node.
	Substreams int
}

// Writer is one rank's handle on an open ADIOS output.
type Writer struct {
	comm   *mpi.Proc
	os     *posix.Proc
	tracer *recorder.RankTracer

	dir        string // output directory (name.bp/)
	substreams int
	sub        int // this rank's substream
	agg        int // aggregator rank of this substream
	dataFD     int // aggregator-only: data.N descriptor
	mdFD       int // rank 0: md.0 descriptor
	idxFD      int // rank 0: md.idx descriptor
	step       int64
	closed     bool
}

// OpenWriter opens an ADIOS output collectively.
func OpenWriter(comm *mpi.Proc, os *posix.Proc, tracer *recorder.RankTracer, name string, opts Options) (*Writer, error) {
	w := &Writer{comm: comm, os: os, tracer: tracer, dir: name + ".bp"}
	w.substreams = opts.Substreams
	if w.substreams <= 0 {
		w.substreams = comm.Nodes()
	}
	if w.substreams > comm.Size() {
		w.substreams = comm.Size()
	}
	// Ranks are split into contiguous substream groups; the first rank of
	// each group aggregates.
	group := (comm.Size() + w.substreams - 1) / w.substreams
	w.sub = comm.Rank() / group
	w.agg = w.sub * group

	ts := os.Clock().Stamp()
	var err error
	if comm.Rank() == 0 {
		// ADIOS resolves the output path, clears a stale index and creates
		// the .bp directory (the getcwd/unlink Figure 3 attributes to it).
		os.Getcwd()
		_ = os.Remove(w.dir + "/md.idx")
		if merr := os.Mkdir(w.dir, 0o755); merr != nil && !errors.Is(merr, pfs.ErrExist) {
			err = merr
		}
	}
	comm.Barrier() // directory must exist before subfile creation
	if err != nil {
		w.emit(recorder.FuncADIOSOpen, ts, w.dir)
		return nil, fmt.Errorf("adios: %w", err)
	}
	if comm.Rank() == w.agg {
		w.dataFD, err = os.Open(fmt.Sprintf("%s/data.%d", w.dir, w.sub),
			recorder.OCreat|recorder.OWronly|recorder.OAppend, 0o644)
	}
	if err == nil && comm.Rank() == 0 {
		w.mdFD, err = os.Open(w.dir+"/md.0", recorder.OCreat|recorder.OWronly|recorder.OAppend, 0o644)
		if err == nil {
			w.idxFD, err = os.Open(w.dir+"/md.idx", recorder.OCreat|recorder.ORdwr, 0o644)
		}
		if err == nil {
			_, err = os.Pwrite(w.idxFD, make([]byte, idxHeaderLen), 0)
		}
	}
	w.emit(recorder.FuncADIOSOpen, ts, w.dir)
	if err != nil {
		return nil, fmt.Errorf("adios: %w", err)
	}
	return w, nil
}

func (w *Writer) emit(fn recorder.Func, ts uint64, path string, args ...int64) {
	w.tracer.Emit(recorder.Record{
		Layer:  recorder.LayerADIOS,
		Func:   fn,
		TStart: ts,
		TEnd:   w.os.Clock().Stamp(),
		Path:   path,
		Args:   args,
	})
}

// Put stages this rank's data block for the current step and ships it to
// the substream aggregator, which appends it to the substream's data file.
func (w *Writer) Put(varName string, data []byte) error {
	ts := w.os.Clock().Stamp()
	defer w.emit(recorder.FuncADIOSPut, ts, w.dir, int64(len(data)))
	if w.comm.Rank() == w.agg {
		// Collect from the group members (including self), in rank order.
		group := w.groupRanks()
		for _, r := range group {
			var block []byte
			if r == w.comm.Rank() {
				block = data
			} else {
				block = w.comm.Recv(r, 100+int(w.step)%100)
			}
			if _, err := w.os.Write(w.dataFD, block); err != nil {
				return err
			}
		}
		return nil
	}
	w.comm.Send(w.agg, 100+int(w.step)%100, data)
	return nil
}

func (w *Writer) groupRanks() []int {
	group := (w.comm.Size() + w.substreams - 1) / w.substreams
	lo := w.sub * group
	hi := lo + group
	if hi > w.comm.Size() {
		hi = w.comm.Size()
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

// EndStep seals the step: rank 0 appends a metadata block to md.0, appends
// an index entry to md.idx, and overwrites the index status byte — the
// WAW-S single-byte overwrite.
func (w *Writer) EndStep() error {
	ts := w.os.Clock().Stamp()
	defer w.emit(recorder.FuncADIOSEndStep, ts, w.dir, w.step)
	w.comm.Barrier() // steps are collective
	if w.comm.Rank() == 0 {
		if _, err := w.os.Write(w.mdFD, make([]byte, 256)); err != nil {
			return err
		}
		entryOff := idxHeaderLen + w.step*idxEntryLen
		if _, err := w.os.Pwrite(w.idxFD, make([]byte, idxEntryLen), entryOff); err != nil {
			return err
		}
		// Overwrite the step-status byte in the index header.
		if _, err := w.os.Pwrite(w.idxFD, []byte{byte(w.step + 1)}, idxStatusOff); err != nil {
			return err
		}
	}
	w.step++
	return nil
}

// Close closes the engine collectively.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("adios: double close of %s", w.dir)
	}
	w.closed = true
	ts := w.os.Clock().Stamp()
	var err error
	if w.comm.Rank() == w.agg {
		err = w.os.Close(w.dataFD)
	}
	if w.comm.Rank() == 0 {
		if cerr := w.os.Close(w.mdFD); err == nil {
			err = cerr
		}
		if cerr := w.os.Close(w.idxFD); err == nil {
			err = cerr
		}
	}
	w.comm.Barrier()
	w.emit(recorder.FuncADIOSClose, ts, w.dir)
	return err
}

// Aggregator reports whether this rank aggregates its substream.
func (w *Writer) Aggregator() bool { return w.comm.Rank() == w.agg }

// Step returns the current step index.
func (w *Writer) Step() int64 { return w.step }
