package core

import (
	"fmt"
	"sort"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

// ConflictKind distinguishes the paper's two hazard classes.
type ConflictKind int

const (
	RAW ConflictKind = iota // read-after-write
	WAW                     // write-after-write
)

func (k ConflictKind) String() string {
	if k == RAW {
		return "RAW"
	}
	return "WAW"
}

// Conflict is one detected conflicting access pair: the earlier operation is
// always a write; the pair would produce a wrong result under the given
// consistency model unless the PFS orders it (same-process pairs are ordered
// correctly by every PFS in the study except BurstFS; see §6.3).
type Conflict struct {
	Path        string
	Kind        ConflictKind
	SameProcess bool
	First       Interval
	Second      Interval
}

func (c Conflict) String() string {
	sd := "D"
	if c.SameProcess {
		sd = "S"
	}
	return fmt.Sprintf("%s-%s %s [%d,%d)@r%d t=%d -> [%d,%d)@r%d t=%d",
		c.Kind, sd, c.Path,
		c.First.Os, c.First.Oe, c.First.Rank, c.First.T,
		c.Second.Os, c.Second.Oe, c.Second.Rank, c.Second.T)
}

// DetectConflicts finds the conflicting access pairs of one file under the
// given consistency model (§5.2):
//
//	(1) the pair overlaps,
//	(2) the earlier operation is a write,
//	(3) commit semantics: the writer executes no commit operation between
//	    the two operations,
//	(4) session semantics: there is no close by the writer followed by an
//	    open by the second process, both between the two operations.
//
// Under strong semantics no pairs conflict (the PFS serializes them), and
// under eventual semantics every candidate pair conflicts (no operation
// bounds the propagation delay).
func DetectConflicts(fa *FileAccesses, model pfs.Semantics) []Conflict {
	if model == pfs.Strong {
		return nil
	}
	var out []Conflict
	DetectOverlaps(fa.Intervals, func(p OverlapPair) {
		first, second := &fa.Intervals[p.A], &fa.Intervals[p.B]
		conflict := false
		switch model {
		case pfs.Commit:
			// Condition (3): first commit by the writer after t1 must come
			// before t2, otherwise the pair conflicts.
			conflict = first.TcCommit == NoTime || first.TcCommit >= second.T
		case pfs.Session:
			conflict = !sessionOrdered(fa, first, second)
		case pfs.Eventual:
			conflict = true
		}
		if conflict {
			out = append(out, Conflict{
				Path:        fa.Path,
				Kind:        kindOf(second),
				SameProcess: first.Rank == second.Rank,
				First:       *first,
				Second:      *second,
			})
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].First.T != out[j].First.T {
			return out[i].First.T < out[j].First.T
		}
		return out[i].Second.T < out[j].Second.T
	})
	return out
}

func kindOf(second *Interval) ConflictKind {
	if second.Write {
		return WAW
	}
	return RAW
}

// sessionOrdered reports whether condition (4) holds: a close by the
// writer's process at tc and an open by the reader's process at to exist
// with t1 < tc < to < t2.
func sessionOrdered(fa *FileAccesses, first, second *Interval) bool {
	tc := firstAfter(fa.ClosesByRank[first.Rank], first.T)
	if tc == NoTime || tc >= second.T {
		return false
	}
	// An open by the second process strictly inside (tc, t2)?
	opens := fa.OpensByRank[second.Rank]
	idx := sort.Search(len(opens), func(i int) bool { return opens[i] > tc })
	return idx < len(opens) && opens[idx] < second.T
}

// ConflictSignature is one row of Table 4: which of the four potential
// conflict classes (§4.1) an application exhibits.
type ConflictSignature struct {
	WAWSame, WAWDiff bool
	RAWSame, RAWDiff bool
}

// Any reports whether any conflict class is present.
func (s ConflictSignature) Any() bool {
	return s.WAWSame || s.WAWDiff || s.RAWSame || s.RAWDiff
}

// HasDifferentProcess reports whether a cross-process conflict is present —
// the class that actually breaks applications on weak-semantics PFSs (§6.3).
func (s ConflictSignature) HasDifferentProcess() bool {
	return s.WAWDiff || s.RAWDiff
}

// Signature aggregates conflicts into a Table 4 row.
func Signature(conflicts []Conflict) ConflictSignature {
	var s ConflictSignature
	for _, c := range conflicts {
		switch {
		case c.Kind == WAW && c.SameProcess:
			s.WAWSame = true
		case c.Kind == WAW:
			s.WAWDiff = true
		case c.Kind == RAW && c.SameProcess:
			s.RAWSame = true
		default:
			s.RAWDiff = true
		}
	}
	return s
}

// AnalyzeConflicts runs extraction and conflict detection over a whole
// trace for one model, returning conflicts per file (files without
// conflicts omitted) and the aggregate signature.
func AnalyzeConflicts(tr *recorder.Trace, model pfs.Semantics) (map[string][]Conflict, ConflictSignature) {
	byFile := make(map[string][]Conflict)
	var all []Conflict
	for _, fa := range Extract(tr) {
		cs := DetectConflicts(fa, model)
		if len(cs) > 0 {
			byFile[fa.Path] = cs
			all = append(all, cs...)
		}
	}
	return byFile, Signature(all)
}

// Verdict is the paper's bottom line for one application (§6.3): the
// weakest consistency model under which it runs correctly, given that
// same-process conflicts are handled by any PFS with per-process ordering.
type Verdict struct {
	Session ConflictSignature
	Commit  ConflictSignature
	// Weakest is the weakest model with no cross-process conflicts.
	Weakest pfs.Semantics
	// NeedsPerProcessOrdering is set when same-process conflicts exist, in
	// which case PFSs without per-process ordering (BurstFS) are unsafe
	// even at the Weakest level.
	NeedsPerProcessOrdering bool
}

// Analyze computes the full verdict for a trace.
func Analyze(tr *recorder.Trace) Verdict {
	_, session := AnalyzeConflicts(tr, pfs.Session)
	_, commit := AnalyzeConflicts(tr, pfs.Commit)
	return VerdictFrom(session, commit)
}

// VerdictFrom derives the §6.3 verdict from the two model signatures — the
// shared tail of the serial and parallel analysis paths.
func VerdictFrom(session, commit ConflictSignature) Verdict {
	v := Verdict{Session: session, Commit: commit}
	switch {
	case !session.HasDifferentProcess():
		v.Weakest = pfs.Session
	case !commit.HasDifferentProcess():
		v.Weakest = pfs.Commit
	default:
		v.Weakest = pfs.Strong
	}
	v.NeedsPerProcessOrdering = session.WAWSame || session.RAWSame ||
		commit.WAWSame || commit.RAWSame
	return v
}
