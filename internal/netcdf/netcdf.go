// Package netcdf emulates the classic NetCDF (CDF-1 style) library layer:
// a header at the start of the file holding dimensions, variable
// definitions and the record count, followed by fixed and record variable
// data. Appending a record rewrites the header's numrecs field — the
// same-process write-after-write (WAW-S) the paper attributes to
// LAMMPS-NetCDF in Table 4.
package netcdf

import (
	"fmt"

	"repro/internal/posix"
	"repro/internal/recorder"
)

// Header layout constants.
const (
	numrecsOff = 4 // offset of the 4-byte record counter within the header
	numrecsLen = 4
	headerSize = 1024 // fixed header region
)

// Var is a variable definition.
type Var struct {
	Name    string
	RecSize int64 // bytes per record
	offset  int64 // start of this variable's data region
}

// File is an emulated NetCDF file. The study's NetCDF configuration
// (LAMMPS-NetCDF) is serial: one process performs all I/O.
type File struct {
	os      *posix.Proc
	tracer  *recorder.RankTracer
	path    string
	fd      int
	defMode bool
	vars    []*Var
	numrecs int64
	recSize int64 // total bytes of one record across record variables
	closed  bool
}

// Create creates a NetCDF file in define mode.
func Create(os *posix.Proc, tracer *recorder.RankTracer, path string) (*File, error) {
	f := &File{os: os, tracer: tracer, path: path, defMode: true}
	ts := os.Clock().Stamp()
	// Existence probe and cwd resolution, as the C library performs (the
	// extra metadata operations Figure 3 attributes to NetCDF).
	os.Getcwd()
	_ = os.Access(path)
	fd, err := os.Open(path, recorder.OCreat|recorder.ORdwr|recorder.OTrunc, 0o644)
	f.fd = fd
	f.emit(recorder.FuncNCCreate, ts, path)
	if err != nil {
		return nil, fmt.Errorf("netcdf: %w", err)
	}
	return f, nil
}

// Open opens an existing NetCDF file and reads its header.
func Open(os *posix.Proc, tracer *recorder.RankTracer, path string) (*File, error) {
	f := &File{os: os, tracer: tracer, path: path}
	ts := os.Clock().Stamp()
	fd, err := os.Open(path, recorder.ORdonly, 0)
	f.fd = fd
	if err == nil {
		_, err = os.Pread(fd, headerSize, 0)
	}
	f.emit(recorder.FuncNCOpen, ts, path)
	if err != nil {
		return nil, fmt.Errorf("netcdf: %w", err)
	}
	return f, nil
}

func (f *File) emit(fn recorder.Func, ts uint64, path string, args ...int64) {
	f.tracer.Emit(recorder.Record{
		Layer:  recorder.LayerNetCDF,
		Func:   fn,
		TStart: ts,
		TEnd:   f.os.Clock().Stamp(),
		Path:   path,
		Args:   args,
	})
}

// DefVar defines a record variable with the given bytes per record. Only
// legal in define mode.
func (f *File) DefVar(name string, recSize int64) (*Var, error) {
	if !f.defMode {
		return nil, fmt.Errorf("netcdf: DefVar outside define mode")
	}
	v := &Var{Name: name, RecSize: recSize}
	f.vars = append(f.vars, v)
	return v, nil
}

// EndDef leaves define mode, lays out the variables and writes the header.
func (f *File) EndDef() error {
	if !f.defMode {
		return fmt.Errorf("netcdf: EndDef outside define mode")
	}
	f.defMode = false
	ts := f.os.Clock().Stamp()
	off := int64(headerSize)
	f.recSize = 0
	for _, v := range f.vars {
		v.offset = off + f.recSize // interleaved record layout base
		f.recSize += v.RecSize
	}
	_, err := f.os.Pwrite(f.fd, headerBytes(f.path, headerSize), 0)
	f.emit(recorder.FuncNCEnddef, ts, f.path)
	return err
}

// PutRecord appends one record of a variable (record index = current
// numrecs for rec < 0, or an explicit index). After the data write the
// header's numrecs field is rewritten — the WAW-S pattern.
func (f *File) PutRecord(v *Var, rec int64, data []byte) error {
	if f.defMode {
		return fmt.Errorf("netcdf: PutRecord in define mode")
	}
	if int64(len(data)) != v.RecSize {
		return fmt.Errorf("netcdf: record size %d != %d", len(data), v.RecSize)
	}
	if rec < 0 {
		rec = f.numrecs
	}
	ts := f.os.Clock().Stamp()
	off := v.offset + rec*f.recSize
	if _, err := f.os.Pwrite(f.fd, data, off); err != nil {
		return err
	}
	if rec >= f.numrecs {
		f.numrecs = rec + 1
		// Update numrecs in the header (the 1-byte-to-4-byte overwrite).
		if _, err := f.os.Pwrite(f.fd, counterBytes(f.numrecs), numrecsOff); err != nil {
			return err
		}
	}
	f.emit(recorder.FuncNCPutVara, ts, f.path, rec, v.RecSize)
	return nil
}

// GetRecord reads one record of a variable.
func (f *File) GetRecord(v *Var, rec int64) ([]byte, error) {
	ts := f.os.Clock().Stamp()
	off := v.offset + rec*f.recSize
	data, err := f.os.Pread(f.fd, v.RecSize, off)
	f.emit(recorder.FuncNCGetVara, ts, f.path, rec, v.RecSize)
	return data, err
}

// Sync flushes the file (nc_sync → fsync).
func (f *File) Sync() error {
	ts := f.os.Clock().Stamp()
	err := f.os.Fsync(f.fd)
	f.emit(recorder.FuncNCSync, ts, f.path)
	return err
}

// Close writes the final header state and closes the file.
func (f *File) Close() error {
	if f.closed {
		return fmt.Errorf("netcdf: double close of %s", f.path)
	}
	f.closed = true
	ts := f.os.Clock().Stamp()
	err := f.os.Close(f.fd)
	f.emit(recorder.FuncNCClose, ts, f.path)
	return err
}

// NumRecs returns the current record count.
func (f *File) NumRecs() int64 { return f.numrecs }

func headerBytes(path string, n int64) []byte {
	b := make([]byte, n)
	h := uint64(1469598103934665603)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * 1099511628211
	}
	for i := range b {
		h = h*6364136223846793005 + 1442695040888963407
		b[i] = byte(h >> 56)
	}
	return b
}

func counterBytes(v int64) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}
