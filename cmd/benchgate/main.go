// Command benchgate parses `go test -bench` output, emits a JSON baseline,
// and gates regressions against a checked-in baseline (BENCH_pr5.json).
//
// Usage:
//
//	go test -bench X -benchmem ./... | benchgate -emit BENCH_pr5.json
//	go test -bench X -benchmem ./... | benchgate -baseline BENCH_pr5.json -threshold 20
//
// Gating compares allocs/op and B/op, which are machine-independent for a
// deterministic workload; ns/op is recorded and reported but only gated
// when -ns-threshold is set, because wall-clock baselines do not transfer
// across hosts (CI runners differ from the machine that emitted the
// baseline).
//
// Exit codes: 0 = within thresholds, 1 = regression or missing benchmark,
// 2 = usage/input error (bad stdin, no benchmark lines), 4 = the baseline
// file itself is missing, unreadable, unparsable or empty — distinct from
// a regression so CI can tell "the code got slower" apart from "the gate
// is not wired up".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's measured values. Extra holds custom
// b.ReportMetric units (MB/s, records/s, ...): they are recorded in the
// baseline and reported on comparison but never gated — throughput numbers
// do not transfer across hosts and exist to document the measured headroom.
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Baseline is the checked-in benchmark baseline file.
type Baseline struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// exitBadBaseline distinguishes a broken gate (baseline missing, unreadable,
// unparsable or empty) from a genuine regression (exit 1) or bad input
// (exit 2).
const exitBadBaseline = 4

// loadBaseline reads and validates a baseline file. Every failure mode
// names the path and the reason — this file is checked in and referenced
// from CI, so "why did the gate not run" must be answerable from the
// message alone.
func loadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, fmt.Errorf("baseline %s: %w (regenerate with -emit)", path, err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return Baseline{}, fmt.Errorf("baseline %s: not valid baseline JSON: %w (regenerate with -emit)", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("baseline %s: no benchmarks (regenerate with -emit)", path)
	}
	return base, nil
}

// parse consumes `go test -bench` output lines of the form
//
//	BenchmarkName-8   	     100	  11093 ns/op	  2048 B/op	      12 allocs/op
//
// keyed by the benchmark name with the -GOMAXPROCS suffix stripped.
func parse(lines []string) map[string]Bench {
	out := make(map[string]Bench)
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var b Bench
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp, seen = v, true
			case "B/op":
				b.BytesPerOp, seen = v, true
			case "allocs/op":
				b.AllocsPerOp, seen = v, true
			default:
				if !strings.Contains(unit, "/") {
					continue // iteration counts, stray numbers
				}
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit], seen = v, true
			}
		}
		if seen {
			out[name] = b
		}
	}
	return out
}

// mergeBaseline folds results into the baseline file at path: existing
// entries for other benchmarks are kept, entries this run re-measured are
// overwritten, and a missing file starts empty. This is how a PR refreshes
// its own benchmarks in a shared checked-in baseline without clobbering the
// rest. Returns the baseline entries that were kept untouched (sorted) so
// the caller can state exactly what this run did NOT re-measure — a silent
// keep is indistinguishable from an overwrite in the diff.
func mergeBaseline(path string, results map[string]Bench) (kept []string, err error) {
	merged := Baseline{Benchmarks: map[string]Bench{}}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &merged); err != nil {
			return nil, fmt.Errorf("baseline %s: not valid baseline JSON: %w (refusing to overwrite)", path, err)
		}
		if merged.Benchmarks == nil {
			merged.Benchmarks = map[string]Bench{}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	for name := range merged.Benchmarks {
		if _, ok := results[name]; !ok {
			kept = append(kept, name)
		}
	}
	sort.Strings(kept)
	for name, b := range results {
		merged.Benchmarks[name] = b
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	return kept, nil
}

// worse reports the regression of got over base as a percentage (negative
// when got improved). A zero baseline with a nonzero result is treated as
// fully regressed.
func worse(base, got float64) float64 {
	if base == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	return (got - base) / base * 100
}

func main() {
	emit := flag.String("emit", "", "write the parsed results as a JSON baseline to this path")
	writeBaseline := flag.String("write-baseline", "", "merge the parsed results into the JSON baseline at this path (keeps other entries; creates the file if missing)")
	baseline := flag.String("baseline", "", "compare against this JSON baseline")
	threshold := flag.Float64("threshold", 20, "max allowed regression %% for allocs/op and B/op")
	nsThreshold := flag.Float64("ns-threshold", 0, "max allowed regression %% for ns/op (0 disables wall-clock gating)")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // passthrough so CI logs keep the raw output
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading stdin: %v\n", err)
		os.Exit(2)
	}
	results := parse(lines)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines found on stdin")
		os.Exit(2)
	}

	if *emit != "" {
		data, err := json.MarshalIndent(Baseline{Benchmarks: results}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*emit, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchgate: wrote %d benchmarks to %s\n", len(results), *emit)
	}
	if *writeBaseline != "" {
		kept, err := mergeBaseline(*writeBaseline, results)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "benchgate: merged %d benchmarks into %s (%d total)\n",
			len(results), *writeBaseline, len(results)+len(kept))
		if len(kept) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: kept %d baseline entries not re-measured by this run: %s\n",
				len(kept), strings.Join(kept, ", "))
		}
	}

	if *baseline == "" {
		return
	}
	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(exitBadBaseline)
	}

	failed := false
	for name, b := range base.Benchmarks {
		got, ok := results[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: in baseline but not in this run\n", name)
			failed = true
			continue
		}
		check := func(metric string, d, limit float64) {
			switch {
			case limit > 0 && d > limit:
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s: %s regressed %+.1f%% (limit %.0f%%)\n",
					name, metric, d, limit)
				failed = true
			case d > 0:
				fmt.Fprintf(os.Stderr, "benchgate: note %s: %s %+.1f%%\n", name, metric, d)
			}
		}
		check("allocs/op", worse(b.AllocsPerOp, got.AllocsPerOp), *threshold)
		check("B/op", worse(b.BytesPerOp, got.BytesPerOp), *threshold)
		check("ns/op", worse(b.NsPerOp, got.NsPerOp), *nsThreshold)
		// Extra metrics (MB/s, records/s, ...) are informational only.
		units := make([]string, 0, len(b.Extra))
		for unit := range b.Extra {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if cur, ok := got.Extra[unit]; ok {
				fmt.Fprintf(os.Stderr, "benchgate: info %s: %s %.4g (baseline %.4g, not gated)\n",
					name, unit, cur, b.Extra[unit])
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d benchmarks within %.0f%% of %s\n",
		len(base.Benchmarks), *threshold, *baseline)
}
