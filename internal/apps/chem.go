package apps

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/hdf5"
	"repro/internal/recorder"
)

// nwchemConfig emulates the NWChem gas-phase dynamics run of Table 5: every
// rank keeps a private scratch file (N-N consecutive), while rank 0 writes
// the trajectory file — header first, frames appended, header rewritten at
// the end (WAW-S) and read back for the summary (RAW-S), all within one
// open session (the Table 4 signature).
func nwchemConfig() *Config {
	const trjHeader = 256
	return &Config{
		App: "NWChem", Library: "POSIX",
		Description: "3-Carboxybenzisoxazole gas-phase dynamics; per-rank AO-integral scratch files plus a rank-0 trajectory file with header rewrite",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/nwchem.nw", 800)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/nwchem.nw"); err != nil {
				return err
			}
			scratch, err := ctx.OS.Open(fmt.Sprintf("/scratch/aoints.%04d", ctx.Rank),
				recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
			if err != nil {
				return err
			}
			var trj int
			if ctx.Rank == 0 {
				if trj, err = ctx.OS.Open("/md.trj", recorder.OCreat|recorder.ORdwr|recorder.OTrunc, 0o644); err != nil {
					return err
				}
				if _, err := ctx.OS.Write(trj, fill("trjhdr", 0, 0, trjHeader)); err != nil {
					return err
				}
			}
			for step := 1; step <= p.Steps; step++ {
				ctx.Compute(50, 150)
				ctx.MPI.Allreduce(int64(step), mpiOpSum)
				// Scratch integrals, appended consecutively.
				if _, err := ctx.OS.Write(scratch, fill("aoints", ctx.Rank, step, p.Block)); err != nil {
					return err
				}
				// Solute coordinates to the trajectory every step (Table 5).
				frame := ctx.MPI.Gather(0, fill("frame", ctx.Rank, step, p.Block/8))
				if ctx.Rank == 0 {
					for _, part := range frame {
						if _, err := ctx.OS.Write(trj, part); err != nil {
							return err
						}
					}
				}
			}
			if ctx.Rank == 0 {
				// Final header rewrite with the frame count (WAW-S), then
				// read-back for the run summary (RAW-S) — same session.
				if _, err := ctx.OS.Lseek(trj, 0, recorder.SeekSet); err != nil {
					return err
				}
				if _, err := ctx.OS.Write(trj, fill("trjhdr", 0, p.Steps, trjHeader)); err != nil {
					return err
				}
				if _, err := ctx.OS.Lseek(trj, 0, recorder.SeekSet); err != nil {
					return err
				}
				got, err := ctx.OS.Read(trj, trjHeader)
				if err != nil {
					return err
				}
				if p.Verify {
					checkFill(ctx, "nwchem trajectory header", "trjhdr", 0, p.Steps, got, trjHeader)
				}
				if err := ctx.OS.Close(trj); err != nil {
					return err
				}
			}
			if err := ctx.OS.Close(scratch); err != nil {
				return err
			}
			ctx.OS.Unlink(fmt.Sprintf("/scratch/aoints.%04d", ctx.Rank))
			return ctx.Failures()
		},
	}
}

// gamessConfig emulates the GAMESS closed-shell functional test: a subset of
// group-master ranks each own a DICTNRY-style scratch file whose master
// record (record 0) is rewritten after the run (WAW-S), giving the M-M
// consecutive pattern of Table 3.
func gamessConfig() *Config {
	const record0 = 256
	return &Config{
		App: "GAMESS", Library: "POSIX",
		Description: "Closed-shell test on ethyl alcohol; one DICTNRY scratch file per group master, master record rewritten in place",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/gamess.inp", 600)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/gamess.inp"); err != nil {
				return err
			}
			group := 4
			if ctx.Size < group {
				group = ctx.Size
			}
			master := ctx.Rank%group == 0
			var fd int
			if master {
				var err error
				fd, err = ctx.OS.Open(fmt.Sprintf("/gms/scr.%03d", ctx.Rank/group),
					recorder.OCreat|recorder.ORdwr|recorder.OTrunc, 0o644)
				if err != nil {
					return err
				}
				if _, err := ctx.OS.Write(fd, fill("dictnry", ctx.Rank, 0, record0)); err != nil {
					return err
				}
			}
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(1)
				if master {
					// Group members ship integral batches to the master.
					for m := 1; m < group && ctx.Rank+m < ctx.Size; m++ {
						ctx.MPI.Recv(ctx.Rank+m, 40)
					}
					if _, err := ctx.OS.Write(fd, fill("ints", ctx.Rank, step, p.Block)); err != nil {
						return err
					}
				} else {
					ctx.MPI.Send((ctx.Rank/group)*group, 40, fill("batch", ctx.Rank, step, p.Block/4))
				}
			}
			if master {
				// Rewrite the master record in place: the WAW-S of Table 4.
				if _, err := ctx.OS.Pwrite(fd, fill("dictnry", ctx.Rank, p.Steps, record0), 0); err != nil {
					return err
				}
				if err := ctx.OS.Close(fd); err != nil {
					return err
				}
			}
			ctx.MPI.Barrier()
			return ctx.Failures()
		},
	}
}

// qmcpackConfig emulates the QMCPACK diffusion Monte Carlo run: rank 0
// writes an HDF5 checkpoint series (1-1, no conflicts).
func qmcpackConfig() *Config {
	return &Config{
		App: "QMCPACK", Library: "HDF5",
		Description: "Short DMC of a water molecule; rank 0 writes .config.h5 checkpoints every CheckpointEvery steps",
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/qmcpack.xml", 2048)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/qmcpack.xml"); err != nil {
				return err
			}
			ckpt := 0
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(2)
				ctx.MPI.Allreduce(int64(step), mpiOpSum) // energy estimator
				if step%p.CheckpointEvery != 0 {
					continue
				}
				walkers := ctx.MPI.Gather(0, fill("walkers", ctx.Rank, step, p.Block))
				if ctx.Rank == 0 {
					f, err := hdf5.CreateSerial(ctx.OS, ctx.Tracer,
						fmt.Sprintf("/qmc.s%03d.config.h5", ckpt), hdf5.Options{DataBase: 32 << 10})
					if err != nil {
						return err
					}
					d, err := f.CreateDataset("walkers", int64(len(walkers))*p.Block)
					if err != nil {
						return err
					}
					for r, w := range walkers {
						if err := d.Write(int64(r)*p.Block, w); err != nil {
							return err
						}
					}
					d.Close()
					e, err := f.CreateDataset("energies", 512)
					if err != nil {
						return err
					}
					if err := e.Write(0, fill("energy", 0, step, 512)); err != nil {
						return err
					}
					e.Close()
					if err := f.Close(); err != nil {
						return err
					}
				}
				ckpt++
			}
			return ctx.Failures()
		},
	}
}

// vaspConfig emulates VASP: every rank reads the staged wavefunction data
// (N-1 consecutive) while rank 0 writes OUTCAR/CHGCAR (1-1).
func vaspConfig() *Config {
	return &Config{
		App: "VASP", Library: "POSIX",
		Description: "Elastic properties of zinc-blende GaAs; all ranks read the wavefunction file, rank 0 writes OUTCAR and CHGCAR",
		Setup: func(ctx *harness.Ctx, p Params) error {
			if err := stageInput(ctx, "/in/INCAR", 400); err != nil {
				return err
			}
			if ctx.Rank != 0 {
				return nil
			}
			fd, err := ctx.OS.Open("/data/WAVECAR", recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
			if err != nil {
				return err
			}
			for c := 0; c < ctx.Size; c++ {
				if _, err := ctx.OS.Write(fd, fill("wave", 0, c, p.Block)); err != nil {
					return err
				}
			}
			return ctx.OS.Close(fd)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/INCAR"); err != nil {
				return err
			}
			// Every rank reads the whole wavefunction file consecutively.
			fd, err := ctx.OS.Open("/data/WAVECAR", recorder.ORdonly, 0)
			if err != nil {
				return err
			}
			for c := 0; c < ctx.Size; c++ {
				got, err := ctx.OS.Read(fd, p.Block)
				if err != nil {
					return err
				}
				if p.Verify {
					checkFill(ctx, "vasp wavecar", "wave", 0, c, got, p.Block)
				}
				ctx.MPI.Compute(1)
			}
			if err := ctx.OS.Close(fd); err != nil {
				return err
			}
			var out, chg int
			if ctx.Rank == 0 {
				if out, err = ctx.OS.Fopen("/OUTCAR", "w"); err != nil {
					return err
				}
			}
			for step := 1; step <= p.Steps; step++ {
				ctx.MPI.Compute(2)
				ctx.MPI.Allreduce(int64(step), mpiOpSum)
				if ctx.Rank == 0 {
					if _, err := ctx.OS.Fwrite(out, fill("outcar", 0, step, 1024), 1, 1024); err != nil {
						return err
					}
				}
			}
			if ctx.Rank == 0 {
				if err := ctx.OS.Fclose(out); err != nil {
					return err
				}
				if chg, err = ctx.OS.Open("/CHGCAR", recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644); err != nil {
					return err
				}
				if _, err := ctx.OS.Write(chg, fill("chgcar", 0, 0, 4*p.Block)); err != nil {
					return err
				}
				if err := ctx.OS.Close(chg); err != nil {
					return err
				}
			}
			return ctx.Failures()
		},
	}
}
