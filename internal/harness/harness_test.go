package harness

import (
	"errors"
	"testing"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

func TestRunProducesAlignedTrace(t *testing.T) {
	res, err := Run(Config{Ranks: 4, Semantics: pfs.Strong},
		recorder.Meta{App: "test", Library: "POSIX"},
		func(ctx *Ctx) error {
			fd, err := ctx.OS.Open("/out", recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			if _, err := ctx.OS.Pwrite(fd, make([]byte, 64), int64(ctx.Rank*64)); err != nil {
				return err
			}
			return ctx.OS.Close(fd)
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if !tr.Meta.Aligned {
		t.Fatal("trace not aligned")
	}
	if tr.Meta.Ranks != 4 || tr.Meta.App != "test" {
		t.Fatalf("meta = %+v", tr.Meta)
	}
	// Alignment barrier exit is time zero on every rank.
	for rank, rs := range tr.PerRank {
		if rs[0].Func != recorder.FuncMPIBarrier {
			t.Fatalf("rank %d first record is %v, not barrier", rank, rs[0].Func)
		}
		if rs[0].TEnd != 0 {
			t.Fatalf("rank %d barrier exit at %d, want 0 after alignment", rank, rs[0].TEnd)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The shared file has all 4 writes.
	info, _, err := res.FS.Stat("/out")
	if err != nil || info.Size != 256 {
		t.Fatalf("stat /out = %+v, %v", info, err)
	}
}

func TestRunDeterministic(t *testing.T) {
	body := func(ctx *Ctx) error {
		fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Pwrite(fd, make([]byte, int(ctx.RNG.Intn(100))+1), int64(ctx.Rank)*128)
		ctx.OS.Close(fd)
		ctx.MPI.Barrier()
		return nil
	}
	run := func() *recorder.Trace {
		res, err := Run(Config{Ranks: 3, Seed: 99}, recorder.Meta{App: "det"}, body)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	a, b := run(), run()
	if a.NumRecords() != b.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", a.NumRecords(), b.NumRecords())
	}
	for rank := range a.PerRank {
		for i := range a.PerRank[rank] {
			ra, rb := a.PerRank[rank][i], b.PerRank[rank][i]
			if ra.TStart != rb.TStart || ra.Func != rb.Func || ra.Arg(1) != rb.Arg(1) {
				t.Fatalf("rank %d record %d differs: %v vs %v", rank, i, ra, rb)
			}
		}
	}
}

func TestRunReportsRankErrors(t *testing.T) {
	res, err := Run(Config{Ranks: 2}, recorder.Meta{App: "err"}, func(ctx *Ctx) error {
		if ctx.Rank == 1 {
			return errors.New("boom")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) != 1 {
		t.Fatalf("want 1 rank error, got %v", res.Errs)
	}
	if res.Err() == nil {
		t.Fatal("Err() should surface the failure")
	}
}

func TestCtxFailureAccumulation(t *testing.T) {
	res, err := Run(Config{Ranks: 2}, recorder.Meta{App: "fail"}, func(ctx *Ctx) error {
		if ctx.Rank == 0 {
			ctx.Failf("mismatch at %d", 42)
			ctx.Failf("mismatch at %d", 43)
		}
		ctx.MPI.Barrier() // all ranks still reach the collective
		return ctx.Failures()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errs) != 1 {
		t.Fatalf("want 1 failing rank, got %v", res.Errs)
	}
}

func TestSkewIsBoundedAndRemoved(t *testing.T) {
	res, err := Run(Config{Ranks: 8, SkewMaxNS: 10_000, Seed: 7},
		recorder.Meta{App: "skew"},
		func(ctx *Ctx) error {
			ctx.MPI.Barrier()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// After alignment, the second barrier must end at the same stamp on all
	// ranks (constant skew is fully removed by barrier alignment).
	var want uint64
	for rank, rs := range res.Trace.PerRank {
		if len(rs) < 2 {
			t.Fatalf("rank %d missing records", rank)
		}
		end := rs[1].TEnd
		if rank == 0 {
			want = end
			continue
		}
		diff := int64(end) - int64(want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 20_000 { // paper's residual bound
			t.Fatalf("rank %d second barrier end %d deviates %dns from rank 0", rank, end, diff)
		}
	}
}

func TestSharedFSAcrossRuns(t *testing.T) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	_, err := Run(Config{Ranks: 1, FS: fs}, recorder.Meta{App: "w"}, func(ctx *Ctx) error {
		fd, _ := ctx.OS.Open("/persist", recorder.OCreat|recorder.OWronly, 0o644)
		ctx.OS.Write(fd, []byte("kept"))
		return ctx.OS.Close(fd)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Ranks: 1, FS: fs}, recorder.Meta{App: "r"}, func(ctx *Ctx) error {
		fd, err := ctx.OS.Open("/persist", recorder.ORdonly, 0)
		if err != nil {
			return err
		}
		got, _ := ctx.OS.Read(fd, 4)
		if string(got) != "kept" {
			ctx.Failf("read %q", got)
		}
		return ctx.Failures()
	})
	if err != nil || res.Err() != nil {
		t.Fatalf("second run failed: %v %v", err, res.Err())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Ranks: 0}, recorder.Meta{}, func(*Ctx) error { return nil }); err == nil {
		t.Fatal("zero ranks should be rejected")
	}
}
