package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

var allModels = []pfs.Semantics{pfs.Strong, pfs.Commit, pfs.Session, pfs.Eventual}

// TestFusedMatchesPerModelRandom: the single-sweep multi-model pass must be
// byte-identical to one DetectConflicts call per model, on randomized
// histories.
func TestFusedMatchesPerModelRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		fa := randomFA(rng)
		lists := DetectConflictsMulti(fa, allModels)
		for i, m := range allModels {
			want := DetectConflicts(fa, m)
			if !reflect.DeepEqual(lists[i], want) {
				t.Fatalf("trial %d: fused list under %v diverges\nfused: %v\nwant:  %v",
					trial, m, lists[i], want)
			}
		}
	}
}

// TestConflictCapPreservesSignature: under a tiny MaxConflictsPerFile the
// materialized list truncates but the Table 4 signature stays exact (the
// appender always admits the first conflict of an unseen class), and the
// fused pass still matches the per-model pass exactly.
func TestConflictCapPreservesSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	orig := MaxConflictsPerFile
	defer func() { MaxConflictsPerFile = orig }()
	for trial := 0; trial < 100; trial++ {
		fa := randomFA(rng)

		MaxConflictsPerFile = orig
		full := DetectConflicts(fa, pfs.Eventual)
		if len(full) < 8 {
			continue // need a storm for the cap to bind
		}
		wantSig := Signature(full)

		MaxConflictsPerFile = 3
		capped := DetectConflicts(fa, pfs.Eventual)
		// At most cap entries plus one extra per late-appearing class.
		if len(capped) > 3+4 {
			t.Fatalf("trial %d: cap not applied: %d conflicts", trial, len(capped))
		}
		if len(capped) >= len(full) {
			t.Fatalf("trial %d: cap did not truncate (%d vs %d)", trial, len(capped), len(full))
		}
		if got := Signature(capped); got != wantSig {
			t.Fatalf("trial %d: capped signature %+v, want %+v", trial, got, wantSig)
		}
		lists := DetectConflictsMulti(fa, allModels)
		for i, m := range allModels {
			if want := DetectConflicts(fa, m); !reflect.DeepEqual(lists[i], want) {
				t.Fatalf("trial %d: capped fused list under %v diverges", trial, m)
			}
		}
	}
}

// TestConflictAppenderClassCoverage pins the cap mechanics: a class seen
// only after the cap is reached is still admitted.
func TestConflictAppenderClassCoverage(t *testing.T) {
	app := conflictAppender{max: 2}
	waw := Conflict{Kind: WAW, SameProcess: false}
	raw := Conflict{Kind: RAW, SameProcess: true}
	app.add(waw)
	app.add(waw)
	app.add(waw) // past cap, class already seen -> suppressed
	if len(app.out) != 2 || app.suppressed != 1 {
		t.Fatalf("got %d kept, %d suppressed; want 2, 1", len(app.out), app.suppressed)
	}
	app.add(raw) // past cap but unseen class -> kept
	if len(app.out) != 3 || app.suppressed != 1 {
		t.Fatalf("unseen class past cap: got %d kept, %d suppressed; want 3, 1", len(app.out), app.suppressed)
	}
	if got := Signature(app.out); !got.WAWDiff || !got.RAWSame {
		t.Fatalf("signature lost a class: %+v", got)
	}
}

// TestExtractSharedCaches: same trace pointer -> same extraction slice;
// invalidation forces a re-extract; distinct traces get distinct entries;
// the cached result matches the plain serial Extract.
func TestExtractSharedCaches(t *testing.T) {
	tr := synthTrace(3, 4)
	a := ExtractShared(tr)
	b := ExtractShared(tr)
	if len(a) == 0 {
		t.Fatal("empty extraction from a non-empty trace")
	}
	if &a[0] != &b[0] {
		t.Fatal("second ExtractShared did not return the cached slice")
	}
	if want := Extract(tr); !reflect.DeepEqual(a, want) {
		t.Fatal("cached extraction diverges from serial Extract")
	}
	InvalidateExtraction(tr)
	c := ExtractShared(tr)
	if &c[0] == &a[0] {
		t.Fatal("InvalidateExtraction did not evict: got the old slice back")
	}
	tr2 := synthTrace(2, 2)
	d := ExtractShared(tr2)
	if len(d) == len(c) && &d[0] == &c[0] {
		t.Fatal("distinct traces share one cache entry")
	}
	InvalidateExtraction(tr)
	InvalidateExtraction(tr2)
}

// TestExtractSharedEviction fills the cache past its cap and checks old
// entries are evicted while fresh ones still hit.
func TestExtractSharedEviction(t *testing.T) {
	first := synthTrace(1, 1)
	ExtractShared(first)
	var trs []*recorder.Trace
	for i := 0; i < extractCacheCap; i++ {
		tr := synthTrace(1, 1)
		trs = append(trs, tr)
		ExtractShared(tr)
	}
	extractions.mu.Lock()
	_, firstStill := extractions.byTr[first]
	_, lastStill := extractions.byTr[trs[len(trs)-1]]
	size := len(extractions.byTr)
	extractions.mu.Unlock()
	if firstStill {
		t.Fatal("oldest entry survived past the FIFO cap")
	}
	if !lastStill {
		t.Fatal("newest entry missing from cache")
	}
	if size > extractCacheCap {
		t.Fatalf("cache holds %d entries, cap is %d", size, extractCacheCap)
	}
	for _, tr := range trs {
		InvalidateExtraction(tr)
	}
}

// TestSweepTableRankRegimes: the rank-pair table is identical across the
// dense accumulator (small ranks), the map fallback (ranks past
// denseRankLimit), and the brute-force oracle.
func TestSweepTableRankRegimes(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 50; trial++ {
		var ivs []Interval
		n := 2 + rng.Intn(30)
		// Half the trials push ranks past the dense limit.
		rankSpan := int32(4)
		if trial%2 == 1 {
			rankSpan = denseRankLimit + 4
		}
		for i := 0; i < n; i++ {
			os := int64(rng.Intn(200))
			ivs = append(ivs, Interval{
				T: uint64(i + 1), Rank: rng.Int31n(rankSpan),
				Os: os, Oe: os + int64(rng.Intn(50)) + 1,
				Write: rng.Intn(2) == 0,
			})
		}
		got := DetectOverlaps(ivs, nil)
		want := DetectOverlapsBruteForce(ivs, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (rankSpan=%d): table mismatch\ngot:  %v\nwant: %v",
				trial, rankSpan, got, want)
		}
	}
}

// TestFdTableSpill pins the dense/map split of the descriptor table.
func TestFdTableSpill(t *testing.T) {
	var fds fdTable
	fds.set(3, fdState{path: "/a"})
	fds.set(fdTableSpan-1, fdState{path: "/b"})
	fds.set(fdTableSpan+7, fdState{path: "/c"}) // spills to the map
	fds.set(1<<40, fdState{path: "/d"})
	for fd, want := range map[int64]string{3: "/a", fdTableSpan - 1: "/b", fdTableSpan + 7: "/c", 1 << 40: "/d"} {
		st := fds.get(fd)
		if st == nil || st.path != want {
			t.Fatalf("get(%d) = %v, want path %q", fd, st, want)
		}
	}
	if st := fds.get(4); st != nil {
		t.Fatalf("get(4) on never-opened fd: %v", st)
	}
	// Offsets persist through the table (pointer semantics in both regimes).
	fds.get(3).offset = 42
	if got := fds.get(3).offset; got != 42 {
		t.Fatalf("dense offset lost: %d", got)
	}
	fds.get(fdTableSpan + 7).offset = 99
	if got := fds.get(fdTableSpan + 7).offset; got != 99 {
		t.Fatalf("map offset lost: %d", got)
	}
	if st := fds.closeFD(3); st == nil || st.path != "/a" {
		t.Fatalf("closeFD(3) = %v", st)
	}
	if st := fds.get(3); st != nil {
		t.Fatalf("fd 3 still open after close: %v", st)
	}
	if st := fds.closeFD(1 << 40); st == nil || st.path != "/d" {
		t.Fatalf("closeFD(big) = %v", st)
	}
	if st := fds.closeFD(1 << 40); st != nil {
		t.Fatal("double close returned state")
	}
}
