package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/consistency"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/wal"
)

// WAL on/off checkpoint-burst comparison: the payoff table for the
// host-side write-ahead log. Each checkpoint-heavy configuration runs under
// every consistency model twice — once writing straight to the PFS, once
// through per-rank WALs — with the op-history recorder attached. The table
// reports per-write acknowledgement latency (TEnd-TStart of the trace's
// POSIX write records: with the WAL that is the local fsync'd append, not
// the PFS round trip) and certifies every cell's history against the
// model's executable formal spec, so the latency win is only reported for
// runs proven semantics-preserving.

var (
	walCompareRuns   = obs.Default().Counter("experiments.wal.runs")
	walCompareWall   = obs.Default().Histogram("experiments.wal.run_wall_ns")
	walCompareFailed = obs.Default().Counter("experiments.wal.failed")
)

// WALApps is the default configuration set for the WAL comparison: the
// paper's two checkpoint-burst archetypes (FLASH with and without forced
// block sizes, HACC-IO via MPI-IO and raw POSIX).
func WALApps() []string {
	return []string{"FLASH-fbs", "FLASH-nofbs", "HACC-IO-MPI-IO", "HACC-IO-POSIX"}
}

// WALCell is one (configuration, model, wal on/off) run.
type WALCell struct {
	Config    string
	Semantics pfs.Semantics
	WAL       bool

	Writes    int     // POSIX-layer write records in the traced phase
	AckMeanNS float64 // mean write acknowledgement latency (simulated)
	AckP99NS  uint64  // 99th-percentile write acknowledgement latency
	ElapsedNS uint64  // simulated wall time of the traced phase

	Events   int    // recorded op-history length
	Accepted bool   // history satisfies the model's formal spec
	Clause   string // failed predicate clause when rejected
}

// WALComparison runs names (default WALApps) under all four models with the
// WAL off and on. Cells come back grouped by configuration, then model,
// with the off cell before the on cell.
func WALComparison(ctx context.Context, s Scale, names []string) ([]WALCell, error) {
	if len(names) == 0 {
		names = WALApps()
	}
	var cells []WALCell
	for _, name := range names {
		cfg, ok := apps.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown configuration %q", name)
		}
		for _, sem := range pfs.AllSemantics() {
			for _, withWAL := range []bool{false, true} {
				if err := ctx.Err(); err != nil {
					return cells, err
				}
				cell, err := walCell(cfg, sem, s, withWAL)
				if err != nil {
					walCompareFailed.Inc()
					return cells, fmt.Errorf("experiments: %s under %v (wal=%v): %w",
						cfg.Name(), sem, withWAL, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

func walCell(cfg *apps.Config, sem pfs.Semantics, s Scale, withWAL bool) (WALCell, error) {
	span := obs.Default().Tracer().Start(
		fmt.Sprintf("%s/%s/wal=%v", cfg.Name(), sem, withWAL), "experiments.wal")
	defer span.End()
	start := time.Now()
	defer func() { walCompareWall.Observe(time.Since(start).Nanoseconds()) }()
	walCompareRuns.Inc()

	fs := pfs.New(pfs.Options{Semantics: sem})
	log := consistency.NewLog()
	fs.SetHistoryRecorder(log)
	opts := apps.Options{
		Ranks:     s.Ranks,
		PPN:       s.PPN,
		Seed:      s.Seed,
		Semantics: sem,
		FS:        fs,
		Params:    s.Params,
	}
	if withWAL {
		// The acknowledgement cost model is what the comparison measures;
		// NoFsync only skips host-disk flushes of the simulation's own log
		// files (durability is the kill-and-recover harness's department).
		opts.WAL = &wal.Options{NoFsync: true}
	}
	res, err := apps.Execute(cfg, opts)
	if err != nil {
		return WALCell{}, err
	}
	if err := res.Err(); err != nil {
		return WALCell{}, err
	}

	cell := WALCell{Config: cfg.Name(), Semantics: sem, WAL: withWAL}
	var lats []uint64
	var sum float64
	for _, rs := range res.Trace.PerRank {
		for i := range rs {
			if rs[i].TEnd > cell.ElapsedNS {
				cell.ElapsedNS = rs[i].TEnd
			}
			if rs[i].IsWriteOp() {
				d := rs[i].TEnd - rs[i].TStart
				lats = append(lats, d)
				sum += float64(d)
			}
		}
	}
	cell.Writes = len(lats)
	if len(lats) > 0 {
		cell.AckMeanNS = sum / float64(len(lats))
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		cell.AckP99NS = lats[len(lats)*99/100]
	}
	check := consistency.CheckLog(sem, log, consistency.Options{
		EventualDelayNS: fs.Options().EventualDelay,
	})
	cell.Events = check.Events
	cell.Accepted = check.OK()
	if !check.OK() {
		cell.Clause = check.Violation.Clause
	}
	return cell, nil
}

// WALTable renders the comparison: one row per (configuration, model) with
// the direct and WAL-mediated ack latencies side by side and the speedup.
func WALTable(cells []WALCell) string {
	type key struct {
		cfg string
		sem pfs.Semantics
	}
	rows := map[key][2]*WALCell{}
	var order []key
	for i := range cells {
		c := &cells[i]
		k := key{c.Config, c.Semantics}
		pair, seen := rows[k]
		if !seen {
			order = append(order, k)
		}
		if c.WAL {
			pair[1] = c
		} else {
			pair[0] = c
		}
		rows[k] = pair
	}
	var b strings.Builder
	b.WriteString("Checkpoint-burst write acknowledgement: direct PFS vs host-side WAL\n")
	b.WriteString("(simulated ns per POSIX write; every cell formal-spec-checked)\n\n")
	fmt.Fprintf(&b, "%-16s  %-9s  %7s  %13s  %13s  %8s  %13s  %13s  %s\n",
		"configuration", "semantics", "writes",
		"direct mean", "wal mean", "speedup", "direct p99", "wal p99", "spec")
	b.WriteString(strings.Repeat("-", 118) + "\n")
	for _, k := range order {
		pair := rows[k]
		off, on := pair[0], pair[1]
		if off == nil || on == nil {
			continue
		}
		speedup := "-"
		if on.AckMeanNS > 0 {
			speedup = fmt.Sprintf("%.1fx", off.AckMeanNS/on.AckMeanNS)
		}
		verdict := "ok"
		if !off.Accepted {
			verdict = "REJECTED(direct) " + off.Clause
		}
		if !on.Accepted {
			verdict = "REJECTED(wal) " + on.Clause
		}
		fmt.Fprintf(&b, "%-16s  %-9s  %7d  %13.0f  %13.0f  %8s  %13d  %13d  %s\n",
			k.cfg, k.sem, on.Writes, off.AckMeanNS, on.AckMeanNS, speedup,
			off.AckP99NS, on.AckP99NS, verdict)
	}
	return b.String()
}
