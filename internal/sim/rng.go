package sim

// RNG is a small deterministic pseudo-random generator (splitmix64). The
// simulation must be reproducible run-to-run, so all randomness — clock
// skews, jitter in operation costs, synthetic data sizes — is drawn from
// seeded RNGs rather than from math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct streams (one per
// rank, say) should be derived with Split.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from this one, keyed by id. The
// derivation is deterministic: the same (seed, id) always yields the same
// stream.
func (r *RNG) Split(id uint64) *RNG {
	mixed := splitmix(r.state + 0x9e3779b97f4a7c15*(id+1))
	return &RNG{state: mixed}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// SkewNS returns a pseudo-random clock skew in [-maxAbs, +maxAbs] ns.
func (r *RNG) SkewNS(maxAbs int64) int64 {
	if maxAbs <= 0 {
		return 0
	}
	return r.Int63n(2*maxAbs+1) - maxAbs
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
