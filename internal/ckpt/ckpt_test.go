package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/recorder"
)

func testManifest() Manifest {
	return Manifest{Kind: "test", Ranks: 4, PPN: 2, Seed: 1, Semantics: "strong", Params: "p=1"}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, testManifest())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func journalPath(dir string) string { return filepath.Join(dir, journalName) }

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Append("a", []byte("one")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Append("b", []byte("two")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	// Re-appending a key supersedes it (last-wins).
	if err := s.Append("a", []byte("one-v2")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = mustOpen(t, dir)
	defer s.Close()
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Keys = %v, want [a b]", got)
	}
	if b, ok := s.Lookup("a"); !ok || string(b) != "one-v2" {
		t.Fatalf("Lookup(a) = %q, %v; want one-v2", b, ok)
	}
	st := s.Stats()
	if st.Degraded() {
		t.Fatalf("clean journal reported degraded: %+v", st)
	}
	if st.Records != 3 || st.Keys != 2 {
		t.Fatalf("Stats = %+v, want 3 records, 2 keys", st)
	}
}

func TestManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir).Close()
	m := testManifest()
	m.Seed = 99
	if _, err := Open(dir, m); !errors.Is(err, ErrMismatch) {
		t.Fatalf("Open with different seed: err = %v, want ErrMismatch", err)
	}
}

func TestTornTailSalvage(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Append("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("b", []byte("two")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	intact, err := os.Stat(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves a half-written record: magic plus a few
	// header bytes, no payload.
	f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(recMagic + "\x40\x00")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir)
	st := s.Stats()
	if !st.Degraded() || st.Dropped != 1 || st.TailBytes != 6 {
		t.Fatalf("Stats = %+v, want 1 dropped torn record, 6 tail bytes", st)
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Keys after salvage = %v, want [a b]", got)
	}
	// Recovery must have truncated the torn tail so appends land clean.
	now, err := os.Stat(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if now.Size() != intact.Size() {
		t.Fatalf("journal is %d bytes after recovery, want %d (tail truncated)", now.Size(), intact.Size())
	}
	if err := s.Append("c", []byte("three")); err != nil {
		t.Fatalf("Append after salvage: %v", err)
	}
	s.Close()

	s = mustOpen(t, dir)
	defer s.Close()
	if st := s.Stats(); st.Degraded() {
		t.Fatalf("journal still degraded after salvage+append: %+v", st)
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys = %v, want [a b c]", got)
	}
}

func TestCorruptRecordCutsTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Append("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	first, err := os.Stat(journalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("b", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("c", []byte("three")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte of the second record: its CRC no longer matches,
	// and everything from there on is untrusted tail.
	f, err := os.OpenFile(journalPath(dir), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, first.Size()+int64(recHeaderLen)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir)
	defer s.Close()
	st := s.Stats()
	if st.Records != 1 || st.Dropped != 1 || st.TailBytes == 0 {
		t.Fatalf("Stats = %+v, want 1 record kept, 1 dropped, nonzero tail", st)
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Keys = %v, want [a]", got)
	}
}

func TestReadJournalIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Append("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(journalPath(dir))

	keys, st, err := ReadJournal(dir)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if !reflect.DeepEqual(keys, []string{"a"}) || st.Dropped != 1 {
		t.Fatalf("ReadJournal = %v, %+v; want [a], 1 dropped", keys, st)
	}
	after, _ := os.Stat(journalPath(dir))
	if after.Size() != before.Size() {
		t.Fatalf("ReadJournal changed the journal: %d -> %d bytes", before.Size(), after.Size())
	}
}

func TestZeroLengthJournalResumes(t *testing.T) {
	// A crash between journal creation and the first record's append (the
	// ckpt.append.begin window) leaves a valid manifest next to a
	// zero-length journal. Reopening must treat that as a clean empty
	// store — no salvage, no error — and resume appends normally.
	dir := t.TempDir()
	mustOpen(t, dir).Close()
	if fi, err := os.Stat(journalPath(dir)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal after open+close: size=%v err=%v, want empty file", fi, err)
	}

	s := mustOpen(t, dir)
	if st := s.Stats(); st.Degraded() || st.Records != 0 || st.Keys != 0 {
		t.Fatalf("zero-length journal recovered as %v, want clean empty", st)
	}
	if err := s.Append("a", []byte("after-empty-recovery")); err != nil {
		t.Fatalf("Append after empty recovery: %v", err)
	}
	s.Close()

	s = mustOpen(t, dir)
	defer s.Close()
	if b, ok := s.Lookup("a"); !ok || string(b) != "after-empty-recovery" {
		t.Fatalf("Lookup after resume = %q, %v", b, ok)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.Close()
	if err := s.Append("a", []byte("x")); err == nil {
		t.Fatal("Append on a closed store succeeded")
	}
}

// smallResult runs a tiny harness workload so the codec test exercises a real
// trace, not a hand-built one.
func smallResult(t *testing.T) *harness.Result {
	t.Helper()
	meta := recorder.Meta{App: "codec-test", Ranks: 2, PPN: 2, Seed: 1}
	res, err := harness.Run(harness.Config{Ranks: 2, PPN: 2, Seed: 1}, meta, func(c *harness.Ctx) error {
		fd, err := c.OS.Open("/out.dat", recorder.OCreat|recorder.OWronly, 0o644)
		if err != nil {
			return err
		}
		if _, err := c.OS.Pwrite(fd, make([]byte, 64), int64(c.Rank)*64); err != nil {
			return err
		}
		return c.OS.Close(fd)
	})
	if err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("rank error: %v", err)
	}
	return res
}

func TestResultCodecRoundtrip(t *testing.T) {
	res := smallResult(t)
	blob, err := EncodeResult(res)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	got, err := DecodeResult(blob)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if !got.Replayed {
		t.Fatal("decoded result not marked Replayed")
	}
	if got.FS != nil || len(got.Errs) != 0 {
		t.Fatal("decoded result carries a file system or rank errors")
	}
	if !reflect.DeepEqual(got.Trace.Meta, res.Trace.Meta) {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Trace.Meta, res.Trace.Meta)
	}
	if !reflect.DeepEqual(got.Trace.PerRank, res.Trace.PerRank) {
		t.Fatal("per-rank records differ after roundtrip")
	}
	// The contract behind byte-identical resumed reports: encoding is stable.
	blob2, err := EncodeResult(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !reflect.DeepEqual(blob, blob2) {
		t.Fatal("re-encoding a decoded result changed the bytes")
	}
}

func TestEncodeResultRefusesBadInput(t *testing.T) {
	if _, err := EncodeResult(nil); err == nil {
		t.Fatal("EncodeResult(nil) succeeded")
	}
	if _, err := EncodeResult(&harness.Result{}); err == nil {
		t.Fatal("EncodeResult with no trace succeeded")
	}
	res := smallResult(t)
	res.Errs = []error{errors.New("rank 0 failed")}
	if _, err := EncodeResult(res); err == nil {
		t.Fatal("EncodeResult with rank errors succeeded")
	}
}

func TestStoreResultHelpers(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	res := smallResult(t)
	if err := s.AppendResult("cfg", res); err != nil {
		t.Fatalf("AppendResult: %v", err)
	}
	s.Close()

	s = mustOpen(t, dir)
	defer s.Close()
	got, ok, err := s.LookupResult("cfg")
	if err != nil || !ok {
		t.Fatalf("LookupResult = %v, %v", ok, err)
	}
	if !reflect.DeepEqual(got.Trace.PerRank, res.Trace.PerRank) {
		t.Fatal("journaled result differs from the original")
	}
	if _, ok, err := s.LookupResult("missing"); ok || err != nil {
		t.Fatalf("LookupResult(missing) = %v, %v; want miss", ok, err)
	}
}
