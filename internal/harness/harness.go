// Package harness assembles and runs a simulated MPI job: it builds the
// shared file system and MPI world, gives every rank its own clock (with a
// bounded random skew), tracer, PFS client and POSIX layer, runs the
// application body on one goroutine per rank bracketed by barriers, and
// returns the aligned multi-rank trace — the same artifact the paper
// collects with Recorder on a real machine.
package harness

import (
	"fmt"
	"runtime/debug"
	"sync"

	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/posix"
	"repro/internal/recorder"
	"repro/internal/sim"
	"repro/internal/wal"
)

// Config parameterizes a run.
type Config struct {
	Ranks     int
	PPN       int             // processes per node; 0 means min(Ranks, 8)
	Seed      uint64          // simulation seed; 0 means 1
	Semantics pfs.Semantics   // consistency model of the underlying PFS
	SkewMaxNS int64           // max |clock skew| per rank; 0 means 10 µs
	Cost      sim.CostModel   // zero value means sim.DefaultCostModel()
	FS        *pfs.FileSystem // optional pre-built FS (shared across runs)
	// Injector, if set, is registered on the file system before the run so
	// every client operation passes through fault injection (see pfs.hooks
	// and internal/faults).
	Injector pfs.FaultInjector
	// WAL, if set, gives every rank a host-side write-ahead log in front of
	// its pfs client (see internal/wal): writes ack at local-append cost and
	// drain in the background. Logs are closed (fully drained) after the
	// final barrier; a drain error surfaces as that rank's error.
	WAL *wal.Options
}

func (c Config) withDefaults() Config {
	if c.PPN == 0 {
		c.PPN = 8
		if c.Ranks < 8 {
			c.PPN = c.Ranks
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SkewMaxNS == 0 {
		c.SkewMaxNS = 10_000 // 10 µs, within the paper's <20 µs bound
	}
	if c.Cost == (sim.CostModel{}) {
		c.Cost = sim.DefaultCostModel()
	}
	return c
}

// Ctx is the per-rank execution context handed to application bodies.
//
// Bodies run SPMD: every rank must reach the same MPI calls in the same
// order, so a body must not return early between collectives. Verification
// failures (e.g. a stale read under weak semantics) should be accumulated
// with Failf and surfaced by returning Failures() at the end.
type Ctx struct {
	Rank   int
	Size   int
	MPI    *mpi.Proc
	OS     *posix.Proc
	RNG    *sim.RNG
	Tracer *recorder.RankTracer

	failures []string
}

// Compute advances this rank's clock by a random computation time drawn
// uniformly from [minUS, maxUS] microseconds (per-rank seeded). This is the
// load imbalance that desynchronizes ranks between collectives, so their
// subsequent I/O interleaves in the global request stream the way the
// paper's Figure 1 shows. Use MPI.Compute for deterministic uniform work.
func (c *Ctx) Compute(minUS, maxUS int) {
	if maxUS < minUS {
		maxUS = minUS
	}
	d := uint64(minUS) * 1000
	if span := maxUS - minUS; span > 0 {
		d += uint64(c.RNG.Intn(span*1000 + 1))
	}
	c.MPI.Clock().Advance(d)
}

// Failf records a non-fatal verification failure for this rank.
func (c *Ctx) Failf(format string, args ...any) {
	c.failures = append(c.failures, fmt.Sprintf(format, args...))
}

// Failures returns an error summarizing recorded failures, or nil.
func (c *Ctx) Failures() error {
	if len(c.failures) == 0 {
		return nil
	}
	return fmt.Errorf("%d verification failure(s), first: %s", len(c.failures), c.failures[0])
}

// FailureCount returns how many failures this rank recorded.
func (c *Ctx) FailureCount() int { return len(c.failures) }

// Result is what a run produces.
type Result struct {
	Trace *recorder.Trace
	FS    *pfs.FileSystem
	Errs  []error // one entry per failed rank (nil-free)
	// Replayed marks a result reconstructed from a checkpoint journal
	// instead of executed: the trace is complete and byte-identical to the
	// original run's, but FS is nil and Errs empty (only successful runs are
	// journaled — see internal/ckpt).
	Replayed bool
}

// Err returns the first rank error, or nil.
func (r *Result) Err() error {
	if len(r.Errs) > 0 {
		return r.Errs[0]
	}
	return nil
}

// Run executes body once per rank. Every rank first passes an alignment
// barrier (the paper's time-zero reference), runs the body, and passes a
// final barrier. The returned trace is aligned and validated.
func Run(cfg Config, meta recorder.Meta, body func(*Ctx) error) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("harness: non-positive rank count %d", cfg.Ranks)
	}
	topo := sim.NewTopology(cfg.Ranks, cfg.PPN)
	fs := cfg.FS
	if fs == nil {
		fs = pfs.New(pfs.Options{Semantics: cfg.Semantics, Cost: cfg.Cost})
	}
	if cfg.Injector != nil {
		fs.SetInjector(cfg.Injector)
	}
	world := mpi.NewWorld(topo, cfg.Cost)
	root := sim.NewRNG(cfg.Seed)

	tracers := make([]*recorder.RankTracer, cfg.Ranks)
	ctxs := make([]*Ctx, cfg.Ranks)
	// Clocks start at an epoch larger than any skew so local stamps never
	// clamp at zero (wall clocks are epoch-based; a negative stamp would
	// silently corrupt the constant-skew model that barrier alignment
	// removes).
	clockEpoch := uint64(10 * cfg.SkewMaxNS)
	for r := 0; r < cfg.Ranks; r++ {
		rng := root.Split(uint64(r))
		clock := sim.NewClock(clockEpoch, rng.SkewNS(cfg.SkewMaxNS))
		tracers[r] = recorder.NewRankTracer(r)
		client := fs.NewClient(r, topo.NodeOf(r))
		ctxs[r] = &Ctx{
			Rank:   r,
			Size:   cfg.Ranks,
			MPI:    mpi.NewProc(world, r, clock, tracers[r]),
			OS:     posix.NewProc(r, client, clock, tracers[r], cfg.Cost),
			RNG:    rng,
			Tracer: tracers[r],
		}
		ctxs[r].OS.SetJitter(rng.Split(0x10b0 + uint64(r)))
	}

	logs := make([]*wal.Log, cfg.Ranks)
	if cfg.WAL != nil {
		for r := 0; r < cfg.Ranks; r++ {
			l, err := wal.Open(r, *cfg.WAL)
			if err != nil {
				for _, prev := range logs[:r] {
					prev.Close()
				}
				return nil, fmt.Errorf("harness: wal rank %d: %w", r, err)
			}
			logs[r] = l
			ctxs[r].OS.SetWAL(l)
		}
	}

	errs := make([]error, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(ctx *Ctx) {
			defer wg.Done()
			completed := false
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						errs[ctx.Rank] = fmt.Errorf("rank %d panicked: %v\n%s", ctx.Rank, rec, debug.Stack())
						completed = false
					}
				}()
				ctx.MPI.Barrier() // alignment barrier: trace time zero
				if err := body(ctx); err != nil {
					errs[ctx.Rank] = fmt.Errorf("rank %d: %w", ctx.Rank, err)
					return
				}
				completed = true
			}()
			// A failed rank may have bailed out mid-body with collectives
			// still ahead of it (a crash fault, an exhausted retry, a
			// panic). Detaching removes it from collective accounting so
			// surviving ranks complete their remaining rounds instead of
			// wedging; clean ranks meet at the final barrier as before.
			if completed {
				ctx.MPI.Barrier()
			} else {
				ctx.MPI.Detach()
			}
		}(ctxs[r])
	}
	wg.Wait()

	if cfg.WAL != nil {
		for r, l := range logs {
			if err := l.Close(); err != nil && errs[r] == nil {
				errs[r] = fmt.Errorf("rank %d: wal close: %w", r, err)
			}
		}
	}

	meta.Ranks = cfg.Ranks
	meta.PPN = cfg.PPN
	meta.Seed = cfg.Seed
	trace := recorder.NewTrace(meta, tracers)
	if err := trace.Align(); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("harness: invalid trace: %w", err)
	}
	res := &Result{Trace: trace, FS: fs}
	for _, e := range errs {
		if e != nil {
			res.Errs = append(res.Errs, e)
		}
	}
	return res, nil
}
