package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/recorder"
)

// Figure2SVG renders the offset-over-time scatter of one file's writes as a
// standalone SVG (the visual form of the paper's Figure 2 panels), with one
// color per rank and marker size scaled by access size. Pure stdlib — the
// SVG is assembled textually. Extraction goes through the process-wide
// cache.
func Figure2SVG(tr *recorder.Trace, path, title string) string {
	return Figure2SVGOf(core.ExtractShared(tr), path, title)
}

// Figure2SVGOf is Figure2SVG over pre-extracted accesses.
func Figure2SVGOf(fas []*core.FileAccesses, path, title string) string {
	type pt struct {
		t    uint64
		rank int32
		off  int64
		n    int64
	}
	var pts []pt
	var tMax uint64
	var offMax int64
	ranks := make(map[int32]bool)
	for _, fa := range fas {
		if fa.Path != path {
			continue
		}
		for _, ivl := range fa.Intervals {
			if !ivl.Write {
				continue
			}
			pts = append(pts, pt{ivl.T, ivl.Rank, ivl.Os, ivl.Oe - ivl.Os})
			ranks[ivl.Rank] = true
			if ivl.T > tMax {
				tMax = ivl.T
			}
			if ivl.Oe > offMax {
				offMax = ivl.Oe
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].t < pts[j].t })

	const (
		w, h         = 720, 420
		padL, padR   = 70, 20
		padT, padB   = 40, 50
		plotW, plotH = w - padL - padR, h - padT - padB
	)
	if tMax == 0 {
		tMax = 1
	}
	if offMax == 0 {
		offMax = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15">%s</text>`, padL, xmlEscape(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, padT, padL, padT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, padL, padT+plotH, padL+plotW, padT+plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">time (us)</text>`,
		padL+plotW/2, h-12)
	fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="11" transform="rotate(-90 14 %d)" text-anchor="middle">file offset (KiB)</text>`,
		padT+plotH/2, padT+plotH/2)
	// Axis ticks (4 per axis).
	for i := 0; i <= 4; i++ {
		tx := padL + plotW*i/4
		tv := float64(tMax) * float64(i) / 4 / 1000
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%.0f</text>`,
			tx, padT+plotH+16, tv)
		oy := padT + plotH - plotH*i/4
		ov := float64(offMax) * float64(i) / 4 / 1024
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%.1f</text>`,
			padL-6, oy+4, ov)
	}
	// Points.
	for _, p := range pts {
		x := float64(padL) + float64(plotW)*float64(p.t)/float64(tMax)
		y := float64(padT+plotH) - float64(plotH)*float64(p.off)/float64(offMax)
		r := 1.5
		if p.n >= 1024 {
			r = 3
		}
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.7"/>`,
			x, y, r, rankColor(p.rank))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%d writes, %d ranks</text>`,
		padL, padT-6, len(pts), len(ranks))
	b.WriteString(`</svg>`)
	return b.String()
}

func rankColor(rank int32) string {
	// Deterministic qualitative palette via golden-angle hue stepping.
	hue := (int(rank) * 137) % 360
	return fmt.Sprintf("hsl(%d,70%%,45%%)", hue)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
