package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

// Parallel analysis engine. Every pass of the paper's offline analysis is
// embarrassingly parallel across rank streams (extraction, census, metadata
// events) or across files (conflict detection, pattern classification), so
// each *Parallel entry point shards its input over a bounded worker pool
// and then performs a deterministic merge: shard results land in
// index-addressed slots and are folded back in input (rank or path) order,
// so the output is identical to the serial pass — the serial functions
// remain the correctness oracle the equivalence tests compare against.

// EffectiveWorkers normalizes a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is used as given.
func EffectiveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded pool of
// workers goroutines (see EffectiveWorkers; capped at n). Indices are
// handed out by an atomic counter, so the pool load-balances uneven work
// items. fn must be safe to call concurrently for distinct indices; the
// call returns once every index has been processed.
func ParallelFor(n, workers int, fn func(i int)) {
	workers = EffectiveWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ExtractParallel is the sharded Extract: rank streams are processed
// concurrently into per-rank partial maps, merged in rank order (which
// reproduces the serial append order of every per-path table), and the
// per-file §5.2 annotation pass is then sharded across files. Output is
// identical to Extract.
func ExtractParallel(tr *recorder.Trace, workers int) []*FileAccesses {
	n := len(tr.PerRank)
	if EffectiveWorkers(workers) <= 1 || n <= 1 {
		return Extract(tr)
	}
	partial := make([]map[string]*FileAccesses, n)
	ParallelFor(n, workers, func(r int) {
		m := make(map[string]*FileAccesses)
		extractRank(tr.PerRank[r], m)
		partial[r] = m
	})

	merged := make(map[string]*FileAccesses)
	for r := 0; r < n; r++ { // rank order = serial append order
		for p, part := range partial[r] {
			dst, ok := merged[p]
			if !ok {
				merged[p] = part
				continue
			}
			dst.Intervals = append(dst.Intervals, part.Intervals...)
			mergeTimes(dst.OpensByRank, part.OpensByRank)
			mergeTimes(dst.ClosesByRank, part.ClosesByRank)
			mergeTimes(dst.CommitsByRank, part.CommitsByRank)
		}
	}
	out := sortedFiles(merged)
	ParallelFor(len(out), workers, func(i int) { annotate(out[i]) })
	return out
}

func mergeTimes(dst, src map[int32][]uint64) {
	for r, ts := range src {
		dst[r] = append(dst[r], ts...)
	}
}

// ConflictsForFiles runs per-file conflict detection over already-extracted
// accesses on a worker pool and merges in path order — the shared core of
// AnalyzeConflictsParallel and semfs.AnalyzeParallel (which reuses one
// extraction across passes). fas must not be mutated concurrently.
func ConflictsForFiles(fas []*FileAccesses, model pfs.Semantics, workers int) (map[string][]Conflict, ConflictSignature) {
	per := make([][]Conflict, len(fas))
	ParallelFor(len(fas), workers, func(i int) { per[i] = DetectConflicts(fas[i], model) })
	byFile := make(map[string][]Conflict)
	var all []Conflict
	for i, fa := range fas {
		if len(per[i]) > 0 {
			byFile[fa.Path] = per[i]
			all = append(all, per[i]...)
		}
	}
	return byFile, Signature(all)
}

// AnalyzeConflictsParallel is the sharded AnalyzeConflicts.
func AnalyzeConflictsParallel(tr *recorder.Trace, model pfs.Semantics, workers int) (map[string][]Conflict, ConflictSignature) {
	return ConflictsForFiles(ExtractParallel(tr, workers), model, workers)
}

// AnalyzeParallel is the sharded Analyze: one extraction, then both model
// sweeps scattered over a single pool (session tasks first, commit tasks
// after, so every worker stays busy across the model boundary).
func AnalyzeParallel(tr *recorder.Trace, workers int) Verdict {
	fas := ExtractParallel(tr, workers)
	n := len(fas)
	per := make([][]Conflict, 2*n)
	ParallelFor(2*n, workers, func(i int) {
		if i < n {
			per[i] = DetectConflicts(fas[i], pfs.Session)
		} else {
			per[i] = DetectConflicts(fas[i-n], pfs.Commit)
		}
	})
	var session, commit []Conflict
	for i := 0; i < n; i++ {
		session = append(session, per[i]...)
		commit = append(commit, per[n+i]...)
	}
	return VerdictFrom(Signature(session), Signature(commit))
}

// MetadataCensusParallel is the sharded MetadataCensus: per-rank partial
// censuses merged by addition (commutative, so any merge order is exact).
func MetadataCensusParallel(tr *recorder.Trace, workers int) *Census {
	n := len(tr.PerRank)
	if EffectiveWorkers(workers) <= 1 || n <= 1 {
		return MetadataCensus(tr)
	}
	partial := make([]*Census, n)
	ParallelFor(n, workers, func(r int) {
		c := &Census{Counts: make(map[string]map[recorder.Func]int)}
		censusRank(tr.PerRank[r], c)
		partial[r] = c
	})
	out := &Census{Counts: make(map[string]map[recorder.Func]int)}
	for _, c := range partial {
		for origin, m := range c.Counts {
			dst, ok := out.Counts[origin]
			if !ok {
				dst = make(map[recorder.Func]int)
				out.Counts[origin] = dst
			}
			for f, v := range m {
				dst[f] += v
			}
		}
	}
	return out
}

// DetectMetadataConflictsParallel is the sharded DetectMetadataConflicts:
// per-rank event collection in parallel, folded in rank order, then the
// per-path scans sharded across paths. The final total-order sort makes the
// merge order immaterial.
func DetectMetadataConflictsParallel(tr *recorder.Trace, workers int) []MetaConflict {
	n := len(tr.PerRank)
	if EffectiveWorkers(workers) <= 1 || n <= 1 {
		return DetectMetadataConflicts(tr)
	}
	locals := make([][]metaEvent, n)
	ParallelFor(n, workers, func(r int) { locals[r] = metaEventsRank(tr.PerRank[r]) })
	events := make(map[string][]metaEvent)
	for _, local := range locals { // rank order, as in the serial pass
		addMetaEvents(events, local)
	}
	paths := make([]string, 0, len(events))
	for p := range events {
		paths = append(paths, p)
	}
	per := make([][]MetaConflict, len(paths))
	ParallelFor(len(paths), workers, func(i int) {
		per[i] = metaConflictsForPath(paths[i], events[paths[i]])
	})
	var out []MetaConflict
	for _, cs := range per {
		out = append(out, cs...)
	}
	sortMetaConflicts(out)
	return out
}

// GlobalPatternParallel is the sharded GlobalPattern (per-file mixes are
// summed; addition is commutative so the merge is exact).
func GlobalPatternParallel(fas []*FileAccesses, workers int) PatternMix {
	return patternParallel(fas, workers, globalPatternFile)
}

// LocalPatternParallel is the sharded LocalPattern.
func LocalPatternParallel(fas []*FileAccesses, workers int) PatternMix {
	return patternParallel(fas, workers, localPatternFile)
}

func patternParallel(fas []*FileAccesses, workers int, file func(*FileAccesses) PatternMix) PatternMix {
	per := make([]PatternMix, len(fas))
	ParallelFor(len(fas), workers, func(i int) { per[i] = file(fas[i]) })
	var mix PatternMix
	for _, m := range per {
		mix = mix.plus(m)
	}
	return mix
}

// ClassifyHighLevelParallel is the sharded ClassifyHighLevel: the per-file
// summaries (the expensive part — per-rank layout classification) are
// computed concurrently, then compacted in path order and grouped serially,
// reproducing the serial family order exactly. opts.Exclude, if supplied,
// must be safe for concurrent calls.
func ClassifyHighLevelParallel(fas []*FileAccesses, opts HLOptions, workers int) []HighLevelPattern {
	o := opts.withDefaults()
	slots := make([]*fileSummary, len(fas))
	ParallelFor(len(fas), workers, func(i int) {
		fa := fas[i]
		if o.Exclude(fa.Path) || len(fa.Intervals) == 0 {
			return
		}
		slots[i] = summarize(fa, o.MetaSizeThreshold)
	})
	sums := make([]*fileSummary, 0, len(slots))
	for _, s := range slots {
		if s != nil {
			sums = append(sums, s)
		}
	}
	return groupSummaries(sums, o.WorldSize)
}
