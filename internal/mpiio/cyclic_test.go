package mpiio

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/recorder"
)

func TestWriteAllAdvancesSharedLayout(t *testing.T) {
	run(t, 4, 2, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/wa", ModeCreate|ModeRdwr, Options{})
		if err != nil {
			return err
		}
		// Each rank positions its pointer at its slot, then two collective
		// rounds append.
		f.SeekPtr(int64(ctx.Rank)*8, recorder.SeekSet)
		for round := 0; round < 2; round++ {
			payload := bytes.Repeat([]byte{byte('a' + ctx.Rank)}, 8)
			if err := f.WriteAll(payload); err != nil {
				return err
			}
			f.SeekPtr(int64(4*8)-8, recorder.SeekCur) // skip others' slots
		}
		if err := f.Sync(); err != nil {
			return err
		}
		got, err := f.ReadAt(0, 64)
		if err != nil {
			return err
		}
		want := []byte("aaaaaaaabbbbbbbbccccccccddddddddaaaaaaaabbbbbbbbccccccccdddddddd")
		if !bytes.Equal(got, want) {
			ctx.Failf("WriteAll layout = %q", got)
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestCyclicDomainsProduceInterleavedBlocks(t *testing.T) {
	const ranks, ppn = 8, 2 // 4 aggregators
	res := run(t, ranks, ppn, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/cyc", ModeCreate|ModeWronly,
			Options{CyclicDomains: true, CBBufferSize: 64})
		if err != nil {
			return err
		}
		if err := f.WriteAtAll(int64(ctx.Rank)*64, bytes.Repeat([]byte{byte(ctx.Rank)}, 64)); err != nil {
			return err
		}
		return f.Close()
	})
	// Each aggregator must write several non-adjacent 64-byte blocks with a
	// constant stride of nAgg*64 = 256.
	perRank := map[int32][]int64{}
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool { return r.IsWriteOp() }) {
		perRank[r.Rank] = append(perRank[r.Rank], r.Arg(2))
	}
	if len(perRank) != 4 {
		t.Fatalf("writer count = %d, want 4 aggregators", len(perRank))
	}
	for rank, offs := range perRank {
		if len(offs) != 2 {
			t.Fatalf("aggregator %d wrote %d blocks, want 2 (cyclic)", rank, len(offs))
		}
		if offs[1]-offs[0] != 256 {
			t.Fatalf("aggregator %d stride = %d, want 256", rank, offs[1]-offs[0])
		}
	}
	// Content integrity across the cyclic reassembly.
	info, _, err := res.FS.Stat("/cyc")
	if err != nil || info.Size != 8*64 {
		t.Fatalf("file size %d, %v", info.Size, err)
	}
}

func TestCyclicDomainsDataIntegrity(t *testing.T) {
	run(t, 6, 3, func(ctx *harness.Ctx) error {
		f, err := Open(ctx.MPI, ctx.OS, ctx.Tracer, "/ci2", ModeCreate|ModeRdwr,
			Options{CyclicDomains: true, CBBufferSize: 32, CBNodes: 2})
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{byte('0' + ctx.Rank)}, 48) // not block-aligned
		if err := f.WriteAtAll(int64(ctx.Rank)*48, payload); err != nil {
			return err
		}
		ctx.MPI.Barrier()
		got, err := f.ReadAt(int64(ctx.Rank)*48, 48)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			ctx.Failf("cyclic reassembly mismatch: %q", got[:8])
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}
