// Package sim provides the deterministic simulation substrate shared by the
// MPI runtime, the parallel file system and the I/O layers: per-rank logical
// clocks with configurable skew, the node topology, a deterministic RNG and
// the I/O cost model.
//
// All time in the simulation is logical and expressed in nanoseconds as
// uint64. Every rank owns a Clock; operations advance it by amounts taken
// from a CostModel, and MPI synchronization merges clocks with max(), so the
// resulting timestamps form a total order per rank that is consistent with
// the happens-before partial order across ranks — exactly the property the
// paper's conflict-detection methodology (Section 5.2) relies on.
package sim

import "fmt"

// Clock is a per-rank logical clock. Now reports "true" simulation time;
// Stamp reports the time as observed by the rank's (skewed) local clock, the
// value a real tracer would record. The recorder removes the skew via
// barrier alignment, mirroring the paper's methodology.
type Clock struct {
	now  uint64 // true logical time, ns
	skew int64  // constant local-clock offset, ns (may be negative)
}

// NewClock returns a clock starting at time start with the given constant skew.
func NewClock(start uint64, skew int64) *Clock {
	return &Clock{now: start, skew: skew}
}

// Now returns the true logical time in nanoseconds.
func (c *Clock) Now() uint64 { return c.now }

// Skew returns the constant local-clock offset in nanoseconds.
func (c *Clock) Skew() int64 { return c.skew }

// Stamp returns the timestamp the rank's local clock would record now.
func (c *Clock) Stamp() uint64 {
	s := int64(c.now) + c.skew
	if s < 0 {
		return 0
	}
	return uint64(s)
}

// Advance moves the clock forward by d nanoseconds and returns the new time.
func (c *Clock) Advance(d uint64) uint64 {
	c.now += d
	return c.now
}

// MergeAtLeast advances the clock to at least t (used when receiving a
// message or leaving a collective: local time becomes the max of the
// participants' times). It never moves the clock backwards.
func (c *Clock) MergeAtLeast(t uint64) {
	if t > c.now {
		c.now = t
	}
}

func (c *Clock) String() string {
	return fmt.Sprintf("clock{now=%dns skew=%dns}", c.now, c.skew)
}

// Topology maps MPI ranks onto compute nodes. Ranks are placed block-wise:
// ranks [0,PPN) on node 0, [PPN,2*PPN) on node 1, and so on, matching the
// paper's "8 nodes with 8 processes per node" style of allocation.
type Topology struct {
	Ranks int // total number of ranks
	PPN   int // processes per node
}

// NewTopology returns a topology with the given total ranks and processes
// per node. It panics if either is not positive or ranks is not divisible
// into whole nodes only when ppn > ranks (a single partially-filled node is
// allowed, as on real systems).
func NewTopology(ranks, ppn int) Topology {
	if ranks <= 0 || ppn <= 0 {
		panic(fmt.Sprintf("sim: invalid topology ranks=%d ppn=%d", ranks, ppn))
	}
	return Topology{Ranks: ranks, PPN: ppn}
}

// Nodes returns the number of compute nodes in the allocation.
func (t Topology) Nodes() int { return (t.Ranks + t.PPN - 1) / t.PPN }

// NodeOf returns the node hosting the given rank.
func (t Topology) NodeOf(rank int) int {
	if rank < 0 || rank >= t.Ranks {
		panic(fmt.Sprintf("sim: rank %d out of range [0,%d)", rank, t.Ranks))
	}
	return rank / t.PPN
}

// SameNode reports whether two ranks share a compute node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// RanksOnNode returns the ranks hosted on the given node, in rank order.
func (t Topology) RanksOnNode(node int) []int {
	lo := node * t.PPN
	hi := lo + t.PPN
	if hi > t.Ranks {
		hi = t.Ranks
	}
	if lo >= hi {
		return nil
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}
