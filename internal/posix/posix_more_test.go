package posix

import (
	"testing"

	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/sim"
)

func TestCreatAndRemove(t *testing.T) {
	p, tr := newProc(t, pfs.Strong)
	fd, err := p.Creat("/c.dat", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("/c.dat"); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove("/c.dat"); err == nil {
		t.Fatal("remove of missing file should fail")
	}
	seen := map[recorder.Func]bool{}
	for _, r := range tr.Records() {
		seen[r.Func] = true
	}
	if !seen[recorder.FuncCreat] || !seen[recorder.FuncRemove] {
		t.Fatal("creat/remove records missing")
	}
}

func TestDirectoryWalkAndMmap(t *testing.T) {
	p, tr := newProc(t, pfs.Strong)
	if err := p.Opendir("/d"); err != nil {
		t.Fatal(err)
	}
	p.Readdir("/d")
	p.Readdir("/d")
	p.Closedir("/d")
	fd, _ := p.Open("/m", recorder.OCreat|recorder.ORdwr, 0o644)
	p.Write(fd, make([]byte, 64))
	if err := p.Mmap(fd, 64); err != nil {
		t.Fatal(err)
	}
	if err := p.Mmap(99, 64); err == nil {
		t.Fatal("mmap of bad fd should fail")
	}
	counts := map[recorder.Func]int{}
	for _, r := range tr.Records() {
		counts[r.Func]++
	}
	if counts[recorder.FuncOpendir] != 1 || counts[recorder.FuncReaddir] != 2 ||
		counts[recorder.FuncClosedir] != 1 || counts[recorder.FuncMmap] != 2 {
		t.Fatalf("dir/mmap records: %v", counts)
	}
}

func TestFdatasyncPublishes(t *testing.T) {
	a, b := twoProcs(t, pfs.Commit)
	fda, _ := a.Open("/fd", recorder.OCreat|recorder.OWronly, 0o644)
	a.Write(fda, []byte("data"))
	if err := a.Fdatasync(fda); err != nil {
		t.Fatal(err)
	}
	fdb, _ := b.Open("/fd", recorder.ORdonly, 0)
	if got, _ := b.Read(fdb, 4); string(got) != "data" {
		t.Fatalf("fdatasync did not publish: %q", got)
	}
	if err := a.Fdatasync(999); err == nil {
		t.Fatal("fdatasync of bad fd should fail")
	}
}

func TestFseekStream(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	fd, _ := p.Fopen("/s", "w+")
	p.Fwrite(fd, make([]byte, 100), 1, 100)
	if off, err := p.Fseek(fd, 25, recorder.SeekSet); err != nil || off != 25 {
		t.Fatalf("fseek = %d, %v", off, err)
	}
	got, err := p.Fread(fd, 5, 5)
	if err != nil || len(got) != 25 {
		t.Fatalf("fread after fseek = %d bytes, %v", len(got), err)
	}
	if _, err := p.Fread(999, 1, 1); err == nil {
		t.Fatal("fread of bad fd should fail")
	}
	if _, err := p.Ftell(999); err == nil {
		t.Fatal("ftell of bad fd should fail")
	}
	p.Fclose(fd)
}

func TestPositionalBadFD(t *testing.T) {
	p, _ := newProc(t, pfs.Strong)
	if _, err := p.Pwrite(42, []byte("x"), 0); err == nil {
		t.Fatal("pwrite bad fd")
	}
	if _, err := p.Pread(42, 1, 0); err == nil {
		t.Fatal("pread bad fd")
	}
	if _, err := p.Lseek(42, 0, recorder.SeekSet); err == nil {
		t.Fatal("lseek bad fd")
	}
	if err := p.Ftruncate(42, 0); err == nil {
		t.Fatal("ftruncate bad fd")
	}
	if _, err := p.Fstat(42); err == nil {
		t.Fatal("fstat bad fd")
	}
	if _, err := p.Dup(42); err == nil {
		t.Fatal("dup bad fd")
	}
	if _, err := p.PathOf(42); err == nil {
		t.Fatal("PathOf bad fd")
	}
	if _, err := p.Offset(42); err == nil {
		t.Fatal("Offset bad fd")
	}
	if _, err := p.Fileno(42); err == nil {
		t.Fatal("fileno bad fd")
	}
}

func TestJitterBoundsAndRank(t *testing.T) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	clock := sim.NewClock(0, 0)
	p := NewProc(3, fs.NewClient(3, 0), clock, recorder.NewRankTracer(3), sim.DefaultCostModel())
	if p.Rank() != 3 {
		t.Fatal("Rank accessor")
	}
	p.SetJitter(sim.NewRNG(1))
	fd, _ := p.Open("/j", recorder.OCreat|recorder.OWronly, 0o644)
	before := clock.Now()
	p.Write(fd, make([]byte, 1000))
	cost := clock.Now() - before
	// Strong semantics: client I/O cost plus the lock round trip.
	base := sim.DefaultCostModel().IOCost(1000) + sim.DefaultCostModel().LockRPC
	if cost < base || cost > base+base/4+1 {
		t.Fatalf("jittered cost %d outside [%d, %d]", cost, base, base+base/4+1)
	}
	// Writes to a pfs error path still record and propagate.
	p.Close(fd)
	if _, err := p.Write(fd, []byte("x")); err == nil {
		t.Fatal("write after close should fail")
	}
}
