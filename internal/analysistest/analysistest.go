// Package analysistest is the serial-equivalence harness of the parallel
// analysis engine: the serial semfs.Analyze path is the correctness oracle
// (it is the literal transcription of the paper's algorithms), and any
// concurrent path must produce identical results. Tests at every layer
// reuse these helpers so the parallel engine can never silently diverge —
// add a worker count or a new workload here and every equivalence test
// picks it up.
package analysistest

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	semfs "repro"
	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/recorder/colfmt"
	"repro/internal/report"
	"repro/internal/storage"
)

// DefaultWorkerCounts covers the interesting pool shapes: GOMAXPROCS (0),
// the serial fallback (1), a small pool, an odd pool, and a pool far larger
// than any test trace's file count.
var DefaultWorkerCounts = []int{0, 1, 2, 5, 32}

// RequireEqual fails t unless the two analyses are identical, reporting the
// first field that differs (field-by-field beats one opaque DeepEqual on
// the whole struct: a census mismatch should not print conflict lists).
func RequireEqual(t testing.TB, label string, serial, parallel *semfs.Analysis) {
	t.Helper()
	check := func(field string, a, b any) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: parallel %s diverges from serial oracle\nserial:   %+v\nparallel: %+v",
				label, field, a, b)
		}
	}
	check("Verdict", serial.Verdict, parallel.Verdict)
	check("SessionConflicts", serial.SessionConflicts, parallel.SessionConflicts)
	check("CommitConflicts", serial.CommitConflicts, parallel.CommitConflicts)
	check("Patterns", serial.Patterns, parallel.Patterns)
	check("Global", serial.Global, parallel.Global)
	check("Local", serial.Local, parallel.Local)
	check("Census", serial.Census, parallel.Census)
	check("MetaConflicts", serial.MetaConflicts, parallel.MetaConflicts)
	check("MetaSignature", serial.MetaSignature, parallel.MetaSignature)
}

// CheckTrace asserts AnalyzeParallel(tr, w) == Analyze(tr) for every worker
// count (DefaultWorkerCounts when none given), and that the fused
// multi-model conflict engine matches the per-model oracle on the same
// trace.
func CheckTrace(t testing.TB, label string, tr *recorder.Trace, workerCounts ...int) {
	t.Helper()
	if len(workerCounts) == 0 {
		workerCounts = DefaultWorkerCounts
	}
	oracle := semfs.Analyze(tr)
	for _, w := range workerCounts {
		RequireEqual(t, labelWorkers(label, w), oracle, semfs.AnalyzeParallel(tr, w))
	}
	CheckFused(t, label, tr, workerCounts...)
}

// AllModels lists the four consistency models the fused engine is checked
// against, strongest first.
var AllModels = []pfs.Semantics{pfs.Strong, pfs.Commit, pfs.Session, pfs.Eventual}

// CheckFused asserts the single-sweep multi-model engine
// (core.AnalyzeConflictsAll, serial and parallel) produces byte-identical
// per-file conflict lists and signatures to the per-model oracle
// core.AnalyzeConflicts for every consistency model, and that the derived
// verdicts agree.
func CheckFused(t testing.TB, label string, tr *recorder.Trace, workerCounts ...int) {
	t.Helper()
	if len(workerCounts) == 0 {
		workerCounts = DefaultWorkerCounts
	}
	wantByFile := make([]map[string][]core.Conflict, len(AllModels))
	wantSig := make([]core.ConflictSignature, len(AllModels))
	for i, m := range AllModels {
		wantByFile[i], wantSig[i] = core.AnalyzeConflicts(tr, m)
	}

	requireModels := func(how string, ms []core.ModelConflicts) {
		t.Helper()
		for i, m := range AllModels {
			if ms[i].Model != m {
				t.Errorf("%s: %s model order: got %v want %v", label, how, ms[i].Model, m)
			}
			if ms[i].Signature != wantSig[i] {
				t.Errorf("%s: %s signature under %v diverges from per-model oracle\noracle: %+v\nfused:  %+v",
					label, how, m, wantSig[i], ms[i].Signature)
			}
			if !reflect.DeepEqual(ms[i].ByFile, wantByFile[i]) {
				t.Errorf("%s: %s conflicts under %v diverge from per-model oracle", label, how, m)
			}
		}
	}
	requireModels("fused-serial", core.ConflictsAllOverFiles(core.Extract(tr), AllModels))
	fas := core.ExtractShared(tr)
	for _, w := range workerCounts {
		requireModels(fmt.Sprintf("fused-parallel/workers=%d", w),
			core.ConflictsAllForFiles(fas, AllModels, w))
	}

	sessionI, commitI := indexOf(pfs.Session), indexOf(pfs.Commit)
	wantVerdict := core.VerdictFrom(wantSig[sessionI], wantSig[commitI])
	if got := core.Analyze(tr); got != wantVerdict {
		t.Errorf("%s: fused verdict %+v, per-model oracle %+v", label, got, wantVerdict)
	}
}

func indexOf(m pfs.Semantics) int {
	for i, x := range AllModels {
		if x == m {
			return i
		}
	}
	panic("model not in AllModels")
}

// CheckFormats is the on-disk format equivalence gate: tr is saved in the
// columnar and v1 formats plus both convert round trips, reloaded at every
// worker count, and each reload must carry byte-identical records (the
// strict v1 load is the disk oracle) and produce a byte-identical analysis
// and rendered report. The columnar directory is additionally consumed
// through the zero-copy cursor path (colfmt.OpenDirOn → core.ExtractCursors)
// which must reproduce the materializing extraction exactly.
func CheckFormats(t testing.TB, label string, tr *recorder.Trace, workerCounts ...int) {
	t.Helper()
	if len(workerCounts) == 0 {
		workerCounts = DefaultWorkerCounts
	}
	base := t.TempDir()
	dirs := []struct{ name, path string }{
		{"v1", filepath.Join(base, "v1")},
		{"columnar", filepath.Join(base, "col")},
		{"v1-to-columnar", filepath.Join(base, "conv-col")},
		{"columnar-to-v1", filepath.Join(base, "conv-v1")},
	}
	if err := semfs.SaveTraceFormat(dirs[0].path, tr, semfs.FormatV1); err != nil {
		t.Fatalf("%s: saving v1: %v", label, err)
	}
	if err := semfs.SaveTraceFormat(dirs[1].path, tr, semfs.FormatColumnar); err != nil {
		t.Fatalf("%s: saving columnar: %v", label, err)
	}
	if _, err := semfs.ConvertTrace(dirs[0].path, dirs[2].path, semfs.FormatColumnar, 0); err != nil {
		t.Fatalf("%s: converting v1->columnar: %v", label, err)
	}
	if _, err := semfs.ConvertTrace(dirs[1].path, dirs[3].path, semfs.FormatV1, 0); err != nil {
		t.Fatalf("%s: converting columnar->v1: %v", label, err)
	}

	// The strict v1 reload is the record-level oracle: the v1 decoder
	// predates the columnar format, so every other load path must agree
	// with it byte for byte.
	oracle, err := semfs.LoadTrace(dirs[0].path, 1)
	if err != nil {
		t.Fatalf("%s: loading v1 oracle: %v", label, err)
	}
	oracleAnalysis := semfs.Analyze(oracle)
	oracleReport := report.BuildRunReport(oracle).Render()
	oracleFA := core.Extract(oracle)

	for _, d := range dirs {
		for _, w := range workerCounts {
			got, err := semfs.LoadTrace(d.path, w)
			if err != nil {
				t.Fatalf("%s/%s/workers=%d: load: %v", label, d.name, w, err)
			}
			if !reflect.DeepEqual(got.Meta, oracle.Meta) {
				t.Errorf("%s/%s/workers=%d: meta diverges:\noracle: %+v\ngot:    %+v",
					label, d.name, w, oracle.Meta, got.Meta)
			}
			if !reflect.DeepEqual(got.PerRank, oracle.PerRank) {
				t.Errorf("%s/%s/workers=%d: records diverge from the v1 oracle", label, d.name, w)
				continue
			}
			RequireEqual(t, fmt.Sprintf("%s/%s/workers=%d", label, d.name, w),
				oracleAnalysis, semfs.Analyze(got))
			if rep := report.BuildRunReport(got).Render(); rep != oracleReport {
				t.Errorf("%s/%s/workers=%d: rendered report diverges", label, d.name, w)
			}
		}
	}

	// Zero-copy cursor extraction over the mapped columnar directory.
	for _, w := range workerCounts {
		dr, err := colfmt.OpenDirOn(storage.OS(), dirs[1].path, w)
		if err != nil {
			t.Fatalf("%s/cursors/workers=%d: open: %v", label, w, err)
		}
		fas, err := core.ExtractCursors(dr.Cursors(), w)
		if cerr := dr.Close(); cerr != nil {
			t.Errorf("%s/cursors/workers=%d: close: %v", label, w, cerr)
		}
		if err != nil {
			t.Fatalf("%s/cursors/workers=%d: extract: %v", label, w, err)
		}
		if !reflect.DeepEqual(fas, oracleFA) {
			t.Errorf("%s/cursors/workers=%d: cursor extraction diverges from materialized extraction",
				label, w)
		}
	}
}

// CheckApp runs one registry application configuration and asserts
// serial/parallel analysis equivalence on its trace.
func CheckApp(t testing.TB, name string, o semfs.RunOptions, workerCounts ...int) {
	t.Helper()
	res, err := semfs.Run(name, o)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("%s: rank error: %v", name, err)
	}
	CheckTrace(t, name, res.Trace, workerCounts...)
}

func labelWorkers(label string, w int) string {
	return fmt.Sprintf("%s/workers=%d", label, w)
}
