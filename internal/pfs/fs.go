package pfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Errors returned by file system operations.
var (
	ErrNotExist  = errors.New("pfs: file does not exist")
	ErrExist     = errors.New("pfs: file already exists")
	ErrIsDir     = errors.New("pfs: path is a directory")
	ErrClosed    = errors.New("pfs: handle is closed")
	ErrReadOnly  = errors.New("pfs: handle not open for writing")
	ErrWriteOnly = errors.New("pfs: handle not open for reading")
	ErrLaminated = errors.New("pfs: file is laminated (permanently read-only)")
	ErrCrashed   = errors.New("pfs: client process has crashed")
	ErrTransient = errors.New("pfs: transient I/O error (retries exhausted)")
)

// Options configures a FileSystem.
type Options struct {
	Semantics     Semantics
	StripeSize    int64  // bytes per stripe; <=0 means 1 MiB
	DataServers   int    // number of data servers; <=0 means 4
	EventualDelay uint64 // visibility delay for Eventual semantics, ns
	Cost          sim.CostModel
	// UnorderedSameProcess models BurstFS (§3.5): conflicting accesses by
	// the SAME process are not guaranteed to take effect in program order —
	// a read following two overlapping writes from the same process may
	// return the value of either. Implemented by overlaying a client's
	// unpublished writes in reverse order on reads. Applications with
	// same-process conflicts (WAW-S/RAW-S in Table 4) misbehave here even
	// when the base semantics would otherwise suffice.
	UnorderedSameProcess bool
	// PathRules override the consistency model per path prefix — the
	// "tunable consistency semantics" direction the paper cites (§2.3,
	// Kuhn et al. / Vilayannur et al.): e.g. run checkpoints under commit
	// semantics while a shared exchange file keeps strong semantics. First
	// matching rule wins; unmatched paths use Options.Semantics.
	PathRules []PathRule
	// Retry governs client-side retries of transient I/O errors (see
	// RetryPolicy). The zero value selects 3 retries with 200 µs backoff
	// doubling per attempt; MaxRetries < 0 disables retrying.
	Retry RetryPolicy
}

// PathRule binds a path prefix to a consistency model.
type PathRule struct {
	Prefix    string
	Semantics Semantics
}

// semFor resolves the consistency model governing a path.
func (fs *FileSystem) semFor(path string) Semantics {
	for _, r := range fs.opts.PathRules {
		if len(path) >= len(r.Prefix) && path[:len(r.Prefix)] == r.Prefix {
			return r.Semantics
		}
	}
	return fs.opts.Semantics
}

func (o Options) withDefaults() Options {
	if o.StripeSize <= 0 {
		o.StripeSize = 1 << 20
	}
	if o.DataServers <= 0 {
		o.DataServers = 4
	}
	if o.EventualDelay == 0 {
		o.EventualDelay = 50_000_000 // 50 ms
	}
	if o.Cost == (sim.CostModel{}) {
		o.Cost = sim.DefaultCostModel()
	}
	if o.Retry == (RetryPolicy{}) {
		o.Retry = RetryPolicy{MaxRetries: 3, BackoffNS: 200_000, Multiplier: 2}
	}
	return o
}

// extent is one published or pending write.
type extent struct {
	off     int64
	data    []byte
	seq     uint64 // publish sequence number (0 while pending)
	pubTime uint64 // true simulation time of publish
	writer  int32
}

func (e extent) end() int64 { return e.off + int64(len(e.data)) }

// file is the server-side state of one file.
type file struct {
	published []extent       // in publish (seq) order
	size      int64          // max published end, adjusted by truncate
	sharers   int            // handles currently open
	openers   map[int32]bool // distinct clients that ever opened the file
	acquires  int64          // strong-mode lock acquisitions on this file
	dir       bool
	laminated bool // UnifyFS lamination: permanently read-only, globally visible
}

// Stats aggregates server-side counters. Per-server request counts expose
// the striping layout; lock counters expose the strong-semantics overhead
// that motivates relaxed models (Section 3.1).
type Stats struct {
	Reads, Writes    int64
	BytesRead        int64
	BytesWritten     int64
	MetaOps          int64
	Commits          int64
	LockAcquires     int64
	LockContended    int64 // acquires on files shared by >1 distinct client
	ServerRequests   []int64
	PublishedExtents int64
	StaleReads       int64 // reads that observed fewer bytes than the strong view held
	Retries          int64 // transient-error retry attempts by clients
	TransientErrors  int64 // transient failures that exhausted the retry policy
	// VisibilityWaitMaxNS is the high-water mark of how far a reader was
	// from the strong view, in simulated ns: under Eventual the remaining
	// propagation delay of a hidden extent, under Commit/Session the age of
	// published-but-hidden data at read time (see the pfs.visibility.wait_ns
	// gauges, which report the same quantity process-wide per model).
	VisibilityWaitMaxNS int64
}

// FileSystem is the shared, server-side half of the PFS. Clients (one per
// rank) are created with NewClient and hold the pending-write state.
type FileSystem struct {
	mu         sync.Mutex
	opts       Options
	files      map[string]*file
	pubSeq     uint64
	stats      Stats
	injector   FaultInjector   // optional fault-injection hook (see hooks.go)
	history    HistoryRecorder // optional op-history recorder (see history.go)
	histSeq    uint64          // total-order logical timestamp of recorded events
	nextHandle uint64          // open file description identity for the history
}

// New creates a file system with the given options.
func New(opts Options) *FileSystem {
	o := opts.withDefaults()
	return &FileSystem{
		opts:  o,
		files: make(map[string]*file),
		stats: Stats{ServerRequests: make([]int64, o.DataServers)},
	}
}

// Options returns the (defaulted) options the file system runs with.
func (fs *FileSystem) Options() Options { return fs.opts }

// Stats returns a snapshot of the server-side counters. LockContended is
// derived deterministically: every acquisition on a file that more than one
// distinct client opened counts as contended (lock traffic that a shared
// lock manager must serialize), independent of goroutine scheduling.
func (fs *FileSystem) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.stats
	s.ServerRequests = append([]int64(nil), fs.stats.ServerRequests...)
	s.LockContended = 0
	for _, f := range fs.files {
		if len(f.openers) > 1 {
			s.LockContended += f.acquires
		}
	}
	return s
}

// serverSpan counts one request per data server whose stripes intersect
// [off, off+n).
func (fs *FileSystem) serverSpan(off, n int64) {
	if n <= 0 {
		return
	}
	first := off / fs.opts.StripeSize
	last := (off + n - 1) / fs.opts.StripeSize
	for s := first; s <= last; s++ {
		fs.stats.ServerRequests[s%int64(fs.opts.DataServers)]++
	}
}

// mkdir creates a directory entry (directories are flat markers; the
// analysis only needs the metadata traffic).
func (fs *FileSystem) Mkdir(path string) (cost uint64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetaOps++
	if f, ok := fs.files[path]; ok {
		if f.dir {
			return fs.opts.Cost.MetaRPC, ErrExist
		}
		return fs.opts.Cost.MetaRPC, ErrExist
	}
	fs.files[path] = &file{dir: true}
	return fs.opts.Cost.MetaRPC, nil
}

// Unlink removes a file.
func (fs *FileSystem) Unlink(path string) (cost uint64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetaOps++
	f, ok := fs.files[path]
	if !ok {
		return fs.opts.Cost.MetaRPC, ErrNotExist
	}
	if f.dir {
		return fs.opts.Cost.MetaRPC, ErrIsDir
	}
	delete(fs.files, path)
	return fs.opts.Cost.MetaRPC, nil
}

// Rename moves a file from old to new.
func (fs *FileSystem) Rename(oldPath, newPath string) (cost uint64, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetaOps++
	f, ok := fs.files[oldPath]
	if !ok {
		return fs.opts.Cost.MetaRPC, ErrNotExist
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = f
	return fs.opts.Cost.MetaRPC, nil
}

// FileInfo is the result of a Stat.
type FileInfo struct {
	Path  string
	Size  int64
	IsDir bool
}

// Stat returns metadata for path. The size reported is the published
// (strong-view) size, as a real metadata server would report.
func (fs *FileSystem) Stat(path string) (FileInfo, uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetaOps++
	f, ok := fs.files[path]
	if !ok {
		return FileInfo{}, fs.opts.Cost.MetaRPC, ErrNotExist
	}
	return FileInfo{Path: path, Size: f.size, IsDir: f.dir}, fs.opts.Cost.MetaRPC, nil
}

// Exists reports whether a path exists (no cost accounting; used by tests
// and examples).
func (fs *FileSystem) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Paths returns all existing paths in sorted order.
func (fs *FileSystem) Paths() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ensure returns the file at path, creating it if create is set.
func (fs *FileSystem) ensure(path string, create bool) (*file, error) {
	f, ok := fs.files[path]
	if !ok {
		if !create {
			return nil, ErrNotExist
		}
		f = &file{}
		fs.files[path] = f
	}
	if f.dir {
		return nil, ErrIsDir
	}
	return f, nil
}

// truncateLocked resets a file to the given length. Data above length is
// discarded; the operation is globally visible immediately in every model
// (metadata-path operation).
func (f *file) truncateLocked(length int64) {
	if length < 0 {
		length = 0
	}
	kept := f.published[:0]
	for _, e := range f.published {
		if e.off >= length {
			continue
		}
		if e.end() > length {
			e.data = e.data[:length-e.off]
		}
		kept = append(kept, e)
	}
	f.published = kept
	f.size = length
}

// publishLocked appends extents to the file's published list, assigning
// sequence numbers, and updates size.
func (fs *FileSystem) publishLocked(f *file, exts []extent, now uint64) {
	publishBatches.Inc()
	publishExtents.Add(int64(len(exts)))
	publishBatch.Observe(int64(len(exts)))
	for _, e := range exts {
		fs.pubSeq++
		e.seq = fs.pubSeq
		e.pubTime = now
		f.published = append(f.published, e)
		if e.end() > f.size {
			f.size = e.end()
		}
		fs.stats.PublishedExtents++
	}
}

// publishBatchLocked publishes a batch under an (optionally perturbing)
// fault action: the batch may be reversed (reordered publish) and its
// publish time pushed back (delayed server-side ingest).
func (fs *FileSystem) publishBatchLocked(f *file, exts []extent, now uint64, act FaultAction) {
	if act.PublishDelay > 0 {
		publishDelay.Observe(int64(act.PublishDelay))
	}
	if act.ReorderPublish && len(exts) > 1 {
		rev := make([]extent, len(exts))
		for i, e := range exts {
			rev[len(exts)-1-i] = e
		}
		exts = rev
	}
	fs.publishLocked(f, exts, now+act.PublishDelay)
}

// materialize builds the visible content of [off, off+n) for a reader:
// published extents passing the visibility predicate are applied in publish
// order, then the reader's own pending extents are overlaid in write order.
// Returns the bytes and the highest visible end offset within the range.
func materialize(f *file, off, n int64, visible func(extent) bool, own []extent) ([]byte, int64) {
	buf := make([]byte, n)
	var visEnd int64
	apply := func(e extent) {
		lo, hi := e.off, e.end()
		if hi > visEnd {
			visEnd = hi
		}
		if hi <= off || lo >= off+n {
			return
		}
		if lo < off {
			e.data = e.data[off-lo:]
			lo = off
		}
		if hi > off+n {
			e.data = e.data[:off+n-lo]
		}
		copy(buf[lo-off:], e.data)
	}
	for _, e := range f.published {
		if visible(e) {
			apply(e)
		}
	}
	for _, e := range own {
		apply(e)
	}
	return buf, visEnd
}

// ContentDump snapshots every regular file's fully-published content —
// all published extents applied in publish order over [0, size), pending
// (uncommitted) data excluded. Two file systems that went through
// equivalent op sequences dump byte-identical maps, which is what the WAL
// kill-and-recover harness diffs: state recovered after a crash versus the
// state of an uninterrupted run.
func (fs *FileSystem) ContentDump() map[string][]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dump := make(map[string][]byte, len(fs.files))
	for path, f := range fs.files {
		if f.dir {
			continue
		}
		buf, _ := materialize(f, 0, f.size, func(extent) bool { return true }, nil)
		dump[path] = buf
	}
	return dump
}

func (fs *FileSystem) String() string {
	return fmt.Sprintf("pfs{%s, %d servers, stripe %d}", fs.opts.Semantics, fs.opts.DataServers, fs.opts.StripeSize)
}
