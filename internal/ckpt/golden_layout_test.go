package ckpt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestOSDiskLayoutGolden pins the storage-seam compatibility oracle: the
// same manifest + append workload that generated the checked-in goldens on
// the pre-seam os.* code must still produce byte-identical ckpt.json and
// journal.wal through the osdisk backend. The goldens were frozen BEFORE
// the seam refactor — any diff here is a real layout change, not a test
// regenerated to agree with the bug.
func TestOSDiskLayoutGolden(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Manifest{
		Kind: "pr9.golden", Ranks: 4, PPN: 2, Seed: 7,
		Semantics: "commit", Params: "p=1",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		blob := append([]byte(fmt.Sprintf("result-%02d:", i)), make([]byte, i*3)...)
		if err := s.Append(fmt.Sprintf("unit-%02d", i), blob); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ file, golden string }{
		{manifestName, "pr9_manifest.golden"},
		{journalName, "pr9_journal.golden"},
	} {
		got, err := os.ReadFile(filepath.Join(dir, tc.file))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from pre-seam layout %s: %d bytes vs %d\n got: %q\nwant: %q",
				tc.file, tc.golden, len(got), len(want), got, want)
		}
	}
}
