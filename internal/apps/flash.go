package apps

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/hdf5"
	"repro/internal/recorder"
)

// flashDatasets are the per-checkpoint unknowns FLASH's Sedov setup writes.
var flashDatasets = []string{
	"dens", "pres", "temp", "ener", "gamc", "game",
	"velx", "vely", "velz", "gpot", "eint", "refine level",
}

// flashConfig emulates FLASH 4.4 running the 2D Sedov explosion (Table 5):
// checkpoint files and plot files through parallel HDF5, with H5Fflush
// called after each dataset — the behaviour behind the paper's only
// cross-process conflict (§6.3). With fbs (fixed block size) the HDF5 layer
// uses MPI-IO collective buffering (six aggregators, block-cyclic file
// domains, Figure 2a–c); with nofbs every rank writes independently
// (Figure 2d–f).
func flashConfig(fbs bool) *Config {
	variant := "fbs"
	desc := "2D 512x512 Sedov explosion, collective I/O (fixed block size); checkpoint every CheckpointEvery steps, H5Fflush per dataset"
	if !fbs {
		variant = "nofbs"
		desc = "2D 512x512 Sedov explosion, independent I/O (dynamic block size); checkpoint every CheckpointEvery steps, H5Fflush per dataset"
	}
	return &Config{
		App: "FLASH", Library: "HDF5", Variant: variant,
		Description: desc,
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/flash.par", 1024)
		},
		Run: func(ctx *harness.Ctx, p Params) error {
			if err := readInput(ctx, "/in/flash.par"); err != nil {
				return err
			}
			ckpt := 0
			for step := 1; step <= p.Steps; step++ {
				// AMR load imbalance: ranks advance at different speeds.
				ctx.Compute(50, 200)
				ctx.MPI.Allreduce(int64(step), mpiOpMax)
				if step%p.CheckpointEvery != 0 {
					continue
				}
				if err := flashCheckpoint(ctx, p, fbs, ckpt); err != nil {
					return err
				}
				if err := flashPlot(ctx, p, fbs, ckpt); err != nil {
					return err
				}
				ckpt++
			}
			return ctx.Failures()
		},
	}
}

func flashHDF5Opts(ctx *harness.Ctx, p Params, fbs bool) hdf5.Options {
	opts := hdf5.Options{
		DataBase:       64 << 10,
		VerifyMetadata: p.Verify,
		OnCorruption:   func(msg string) { ctx.Failf("%s", msg) },
	}
	if fbs {
		opts.Collective = true
		opts.CBNodes = 6 // the six aggregator processes of Figure 2(a)
		opts.CyclicDomains = true
		opts.CBBlock = p.Block
	}
	return opts
}

// flashCheckpoint writes one checkpoint file: every dataset is created and
// written by all ranks, then flushed (H5Fflush → metadata writes + fsync).
func flashCheckpoint(ctx *harness.Ctx, p Params, fbs bool, idx int) error {
	path := fmt.Sprintf("/flash_hdf5_chk_%04d", idx)
	f, err := hdf5.Create(ctx.MPI, ctx.OS, ctx.Tracer, path, flashHDF5Opts(ctx, p, fbs))
	if err != nil {
		return err
	}
	for _, name := range flashDatasets {
		d, err := f.CreateDataset(name, int64(ctx.Size)*p.Block)
		if err != nil {
			return err
		}
		if !fbs {
			// Independent I/O: ranks arrive at their own pace.
			ctx.Compute(20, 150)
		}
		if err := d.Write(int64(ctx.Rank)*p.Block, fill("flash:"+name, ctx.Rank, idx, p.Block)); err != nil {
			return err
		}
		if err := f.Flush(); err != nil { // FLASH flushes after each dataset
			return err
		}
		d.Close()
	}
	return f.Close()
}

// flashFixMeta labels traces of the §6.3 "one-line fix" experiment.
func flashFixMeta() recorder.Meta {
	return recorder.Meta{App: "FLASH", Library: "HDF5", Variant: "fixed"}
}

// flashCheckpointFixed is flashCheckpoint with the paper's proposed fix
// applied: HDF5 collective metadata mode, so rank 0 performs all metadata
// I/O and the cross-process conflict cannot arise.
func flashCheckpointFixed(ctx *harness.Ctx, p Params, idx int) error {
	path := fmt.Sprintf("/flash_fixed_chk_%04d", idx)
	opts := flashHDF5Opts(ctx, p, false)
	opts.CollectiveMetadata = true
	f, err := hdf5.Create(ctx.MPI, ctx.OS, ctx.Tracer, path, opts)
	if err != nil {
		return err
	}
	for _, name := range flashDatasets {
		d, err := f.CreateDataset(name, int64(ctx.Size)*p.Block)
		if err != nil {
			return err
		}
		if err := d.Write(int64(ctx.Rank)*p.Block, fill("flash:"+name, ctx.Rank, idx, p.Block)); err != nil {
			return err
		}
		if err := f.Flush(); err != nil {
			return err
		}
		d.Close()
	}
	return f.Close()
}

// flashPlot writes one plot file: a single dataset whose data comes from
// rank 0 only, while metadata writes still spread over many ranks
// (Figure 2c).
func flashPlot(ctx *harness.Ctx, p Params, fbs bool, idx int) error {
	path := fmt.Sprintf("/flash_hdf5_plt_cnt_%04d", idx)
	f, err := hdf5.Create(ctx.MPI, ctx.OS, ctx.Tracer, path, flashHDF5Opts(ctx, p, fbs))
	if err != nil {
		return err
	}
	for _, name := range []string{"dens", "temp"} {
		d, err := f.CreateDataset(name, int64(ctx.Size)*p.Block)
		if err != nil {
			return err
		}
		var payload []byte
		if ctx.Rank == 0 {
			payload = fill("flashplt:"+name, 0, idx, p.Block)
		}
		if fbs {
			if err := d.Write(0, payload); err != nil { // collective; only rank 0 contributes
				return err
			}
		} else if ctx.Rank == 0 {
			if err := d.Write(0, payload); err != nil {
				return err
			}
		}
		if err := f.Flush(); err != nil {
			return err
		}
		d.Close()
	}
	return f.Close()
}
