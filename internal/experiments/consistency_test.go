package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/pfs"
)

func TestConsistencyComparison(t *testing.T) {
	names := []string{"GTC", "FLASH-fbs"}
	cells, err := ConsistencyComparison(context.Background(), TestScale(), names)
	if err != nil {
		t.Fatalf("ConsistencyComparison: %v", err)
	}
	if len(cells) != len(names)*len(pfs.AllSemantics()) {
		t.Fatalf("got %d cells, want %d", len(cells), len(names)*len(pfs.AllSemantics()))
	}
	byConfig := map[string]int{}
	for _, c := range cells {
		byConfig[c.Config]++
		// The tentpole guarantee surfaced end-to-end: every real
		// application run is certified by its model's formal spec.
		if !c.Accepted {
			t.Errorf("%s under %v rejected by its own spec: clause %s",
				c.Config, c.Semantics, c.Clause)
		}
		if c.Events == 0 {
			t.Errorf("%s under %v recorded no history", c.Config, c.Semantics)
		}
		if c.ElapsedNS == 0 {
			t.Errorf("%s under %v has zero elapsed time", c.Config, c.Semantics)
		}
		// Only strong semantics pays lock round trips; only the relaxed
		// models can serve stale reads.
		if c.Semantics == pfs.Strong && c.LockAcquires == 0 {
			t.Errorf("%s under strong acquired no locks", c.Config)
		}
		if c.Semantics != pfs.Strong && c.LockAcquires != 0 {
			t.Errorf("%s under %v acquired %d locks, want 0",
				c.Config, c.Semantics, c.LockAcquires)
		}
		if c.Semantics == pfs.Strong && c.StaleReads != 0 {
			t.Errorf("%s under strong reported %d stale reads", c.Config, c.StaleReads)
		}
	}
	for _, n := range names {
		if byConfig[n] != len(pfs.AllSemantics()) {
			t.Errorf("config %s has %d cells, want %d", n, byConfig[n], len(pfs.AllSemantics()))
		}
	}

	table := ConsistencyTable(cells)
	for _, want := range []string{"configuration", "semantics", "vis-wait(ms)", "spec",
		"GTC", "FLASH-fbs", "strong", "eventual", "ok"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if strings.Contains(table, "REJECTED") {
		t.Errorf("table contains rejected cells:\n%s", table)
	}
}

func TestConsistencyComparisonUnknownConfig(t *testing.T) {
	if _, err := ConsistencyComparison(context.Background(), TestScale(), []string{"nope"}); err == nil {
		t.Fatal("unknown configuration should error")
	}
}

func TestConsistencyComparisonCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells, err := ConsistencyComparison(ctx, TestScale(), []string{"GTC"})
	if err == nil {
		t.Fatal("cancelled context should error")
	}
	if len(cells) != 0 {
		t.Fatalf("cancelled run produced %d cells", len(cells))
	}
}
