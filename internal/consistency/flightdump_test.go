package consistency

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pfs"
)

// TestViolationTriggersFlightDump pins the post-mortem path end to end: with
// the flight recorder armed, a history the strong spec rejects must leave a
// dump file on disk whose formatted rendering names the violating read (its
// history seq, rank and first bad offset) and the implicated write's causal
// trace — exactly what `semrepro -flight-dump` prints.
func TestViolationTriggersFlightDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "violation.flight")
	obs.Flight().Reset()
	obs.ArmFlightDump(path)
	t.Cleanup(func() {
		obs.ArmFlightDump("")
		obs.Flight().Reset()
	})

	// Lost update under strong semantics; the superseding write carries a
	// causal trace ID, as a WAL-drained publish would stamp it.
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		open(1, 2, pfs.ORdwr, 20).
		write(0, 1, 0, "aaa", 30).
		add(pfs.HistoryEvent{Kind: pfs.EvWrite, Rank: 0, Handle: 1, Off: 0,
			Len: 3, Data: []byte("bbb"), Now: 40, Trace: 0xfeed}).
		read(1, 2, 0, 3, "aaa", 50)

	res := Check(pfs.Strong, h.evs, Options{})
	if res.OK() {
		t.Fatal("strong spec accepted the violating history")
	}
	if !strings.Contains(res.Violation.String(), "trace=0xfeed") {
		t.Errorf("Violation.String() does not name the write's trace: %s", res.Violation)
	}

	if _, err := os.Stat(path); err != nil {
		t.Fatalf("violation did not write the armed dump: %v", err)
	}
	d, err := obs.LoadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	out := obs.FormatFlightDump(d)
	for _, want := range []string{
		"consistency.violation",
		"attribution: consistency violation",
		"violating read seq=5",
		"rank=1",
		"implicated write trace=0xfeed",
		"first differing offset=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted dump missing %q:\n%s", want, out)
		}
	}

	// The rejected verdict lands in the ring once Check returns (its defer
	// runs after the dump is written, so it is absent from the file).
	found := false
	for _, ev := range obs.Flight().Events() {
		if ev.Class == "consistency.verdict" && ev.B == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no rejected consistency.verdict event in the ring")
	}
}

// TestAcceptedHistoryDoesNotDump: verdict events land in the ring, but an
// accepted history must not write the dump file.
func TestAcceptedHistoryDoesNotDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "accepted.flight")
	obs.Flight().Reset()
	obs.ArmFlightDump(path)
	t.Cleanup(func() {
		obs.ArmFlightDump("")
		obs.Flight().Reset()
	})

	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		write(0, 1, 0, "abc", 20).
		read(0, 1, 0, 3, "abc", 30)
	if res := Check(pfs.Strong, h.evs, Options{}); !res.OK() {
		t.Fatalf("conforming history rejected: %v", res.Violation)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("accepted history wrote a dump (stat err = %v)", err)
	}
	found := false
	for _, ev := range obs.Flight().Events() {
		if ev.Class == "consistency.verdict" && ev.B == 1 {
			found = true
		}
	}
	if !found {
		t.Error("no accepted consistency.verdict event in the ring")
	}
}
