package apps

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pfs"
)

const (
	testRanks = 16
	testPPN   = 2 // 8 nodes, so FLASH/VPIC's 6 aggregators fit
)

func execute(t *testing.T, name string, opts Options) *harness.Result {
	t.Helper()
	cfg, ok := Lookup(name)
	if !ok {
		t.Fatalf("no config named %q", name)
	}
	if opts.Ranks == 0 {
		opts.Ranks = testRanks
		opts.PPN = testPPN
	}
	res, err := Execute(cfg, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("%s: rank failure: %v", name, err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 25 {
		t.Fatalf("registry has %d configs, want 25: %v", len(names), names)
	}
	apps := map[string]bool{}
	for _, c := range Registry() {
		apps[c.App] = true
		if c.Description == "" {
			t.Errorf("%s has no Table 5 description", c.Name())
		}
		if c.Run == nil {
			t.Errorf("%s has no Run body", c.Name())
		}
	}
	if len(apps) != 17 {
		t.Fatalf("registry covers %d applications, want 17: %v", len(apps), apps)
	}
	if _, ok := Lookup("FLASH-fbs"); !ok {
		t.Fatal("Lookup(FLASH-fbs) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
}

// table4Expected is Table 4 of the paper: the conflict signature of every
// configuration under session semantics. Configurations not listed are
// conflict-free.
var table4Expected = map[string]core.ConflictSignature{
	"FLASH-fbs":     {WAWSame: true, WAWDiff: true},
	"FLASH-nofbs":   {WAWSame: true, WAWDiff: true},
	"ENZO-HDF5":     {RAWSame: true},
	"NWChem":        {WAWSame: true, RAWSame: true},
	"pF3D-IO":       {RAWSame: true},
	"MACSio-Silo":   {WAWSame: true},
	"GAMESS":        {WAWSame: true},
	"LAMMPS-ADIOS":  {WAWSame: true},
	"LAMMPS-NetCDF": {WAWSame: true},
}

func TestTable4SessionConflicts(t *testing.T) {
	for _, cfg := range Registry() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			res := execute(t, cfg.Name(), Options{})
			_, sig := core.AnalyzeConflicts(res.Trace, pfs.Session)
			want := table4Expected[cfg.Name()]
			if sig != want {
				t.Fatalf("session signature = %+v, want %+v (Table 4)", sig, want)
			}
		})
	}
}

func TestTable4CommitConflicts(t *testing.T) {
	// §6.3: under commit semantics the FLASH conflicts disappear and every
	// other signature is unchanged.
	for _, cfg := range Registry() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			res := execute(t, cfg.Name(), Options{})
			_, sig := core.AnalyzeConflicts(res.Trace, pfs.Commit)
			want := table4Expected[cfg.Name()]
			if strings.HasPrefix(cfg.Name(), "FLASH") {
				want = core.ConflictSignature{}
			}
			if sig != want {
				t.Fatalf("commit signature = %+v, want %+v", sig, want)
			}
		})
	}
}

// table3Expected is the Table 3 entry each configuration must exhibit
// (some configurations legitimately show additional patterns, e.g. NWChem's
// rank-0 trajectory next to its N-N scratch files; we assert containment).
var table3Expected = map[string]string{
	"FLASH-fbs":         "M-1 strided cyclic",
	"FLASH-nofbs":       "N-1 strided",
	"Nek5000":           "1-1 consecutive",
	"QMCPACK-HDF5":      "1-1 consecutive",
	"VASP":              "N-1 consecutive",
	"LBANN":             "N-1 consecutive",
	"LAMMPS-ADIOS":      "M-M consecutive",
	"LAMMPS-NetCDF":     "1-1 consecutive",
	"LAMMPS-HDF5":       "1-1 consecutive",
	"LAMMPS-MPI-IO":     "M-1 strided",
	"LAMMPS-POSIX":      "1-1 consecutive",
	"ENZO-HDF5":         "N-N consecutive",
	"NWChem":            "N-N consecutive",
	"ParaDiS-HDF5":      "N-1 strided",
	"ParaDiS-POSIX":     "N-1 strided",
	"Chombo-HDF5":       "N-1 strided",
	"GTC":               "1-1 consecutive",
	"GAMESS":            "M-M consecutive",
	"MILC-QCD-serial":   "1-1 consecutive",
	"MILC-QCD-parallel": "N-1 strided",
	"MACSio-Silo":       "N-M strided",
	"pF3D-IO":           "N-N consecutive",
	"HACC-IO-MPI-IO":    "N-N consecutive",
	"HACC-IO-POSIX":     "N-N consecutive",
	"VPIC-IO-HDF5":      "M-1 strided cyclic",
}

func TestTable3HighLevelPatterns(t *testing.T) {
	for _, cfg := range Registry() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			res := execute(t, cfg.Name(), Options{})
			fas := core.Extract(res.Trace)
			ps := core.ClassifyHighLevel(fas, core.HLOptions{WorldSize: testRanks})
			want := table3Expected[cfg.Name()]
			for _, p := range ps {
				if p.Key() == want {
					return
				}
			}
			keys := make([]string, len(ps))
			for i, p := range ps {
				keys[i] = p.Key()
			}
			t.Fatalf("patterns %v do not contain %q (Table 3)", keys, want)
		})
	}
}

func TestConflictsAreSynchronized(t *testing.T) {
	// §5.2 validation: every detected conflict pair must be ordered by the
	// program's MPI synchronization (the applications are race-free).
	for _, name := range []string{"FLASH-fbs", "FLASH-nofbs", "NWChem", "MACSio-Silo", "LAMMPS-ADIOS"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := execute(t, name, Options{})
			hb, err := core.BuildHB(res.Trace)
			if err != nil {
				t.Fatal(err)
			}
			byFile, _ := core.AnalyzeConflicts(res.Trace, pfs.Session)
			total := 0
			for path, cs := range byFile {
				if un := core.ValidateConflicts(hb, cs); len(un) > 0 {
					t.Fatalf("%s: %d unsynchronized conflict pairs, first: %v", path, len(un), un[0])
				}
				total += len(cs)
			}
			if total == 0 {
				t.Fatal("expected conflicts to validate")
			}
		})
	}
}

func TestScaleInvariance(t *testing.T) {
	// §6.1: conflict signatures do not depend on scale. Run a conflicting
	// and a clean app at two scales and compare.
	for _, name := range []string{"FLASH-nofbs", "HACC-IO-POSIX", "LAMMPS-NetCDF"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			small := execute(t, name, Options{Ranks: 8, PPN: 2})
			large := execute(t, name, Options{Ranks: 32, PPN: 4})
			_, sigS := core.AnalyzeConflicts(small.Trace, pfs.Session)
			_, sigL := core.AnalyzeConflicts(large.Trace, pfs.Session)
			if sigS != sigL {
				t.Fatalf("signature changed with scale: %+v vs %+v", sigS, sigL)
			}
		})
	}
}

func TestVerdicts(t *testing.T) {
	// §6.3 bottom line: FLASH needs commit semantics; everything else runs
	// under session semantics.
	for _, cfg := range Registry() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			res := execute(t, cfg.Name(), Options{})
			v := core.Analyze(res.Trace)
			wantWeakest := pfs.Session
			if strings.HasPrefix(cfg.Name(), "FLASH") {
				wantWeakest = pfs.Commit
			}
			if v.Weakest != wantWeakest {
				t.Fatalf("weakest sufficient model = %v, want %v", v.Weakest, wantWeakest)
			}
		})
	}
}

func TestAppsRunCorrectlyOnSufficientSemantics(t *testing.T) {
	// The executable version of the paper's headline (§6.3): with data
	// verification on, EVERY configuration runs clean on a PFS providing
	// its verdict's weakest sufficient semantics — session for all, commit
	// for the two FLASH variants.
	for _, cfg := range Registry() {
		cfg := cfg
		sem := pfs.Session
		if strings.HasPrefix(cfg.Name(), "FLASH") {
			sem = pfs.Commit
		}
		t.Run(cfg.Name()+"/"+sem.String(), func(t *testing.T) {
			t.Parallel()
			execute(t, cfg.Name(), Options{Semantics: sem, Params: Params{Verify: true}})
		})
	}
}

func TestFlashFailsUnderSessionSemantics(t *testing.T) {
	// The one application of the study that breaks on a session-semantics
	// PFS: its cross-process HDF5 metadata writes read back stale.
	cfg, _ := Lookup("FLASH-nofbs")
	res, err := Execute(cfg, Options{Ranks: testRanks, PPN: testPPN,
		Semantics: pfs.Session, Params: Params{Verify: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("FLASH ran clean on session semantics; expected stale metadata corruption")
	}
	if !strings.Contains(res.Err().Error(), "stale root header") {
		t.Fatalf("unexpected failure: %v", res.Err())
	}
}

func TestFlashFixedByCollectiveMetadata(t *testing.T) {
	// §6.3's proposed fix: with collective metadata mode, rank 0 performs
	// all metadata I/O and the cross-process conflict disappears — even the
	// session run verifies clean. We emulate the fix by running the
	// checkpoint path directly with the option set.
	res, err := harness.Run(harness.Config{Ranks: 8, PPN: 2, Semantics: pfs.Session},
		flashFixMeta(), func(ctx *harness.Ctx) error {
			p := Params{Verify: true}.withDefaults()
			for c := 0; c < 2; c++ {
				if err := flashCheckpointFixed(ctx, p, c); err != nil {
					return err
				}
			}
			return ctx.Failures()
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatalf("collective-metadata FLASH failed on session semantics: %v", res.Err())
	}
	_, sig := core.AnalyzeConflicts(res.Trace, pfs.Session)
	if sig.HasDifferentProcess() {
		t.Fatalf("cross-process conflicts remain with collective metadata: %+v", sig)
	}
}

func TestDeterministicTraces(t *testing.T) {
	a := execute(t, "LAMMPS-MPI-IO", Options{Seed: 5})
	b := execute(t, "LAMMPS-MPI-IO", Options{Seed: 5})
	if a.Trace.NumRecords() != b.Trace.NumRecords() {
		t.Fatalf("record counts differ: %d vs %d", a.Trace.NumRecords(), b.Trace.NumRecords())
	}
	for rank := range a.Trace.PerRank {
		for i := range a.Trace.PerRank[rank] {
			ra, rb := a.Trace.PerRank[rank][i], b.Trace.PerRank[rank][i]
			if ra.TStart != rb.TStart || ra.Func != rb.Func {
				t.Fatalf("rank %d record %d differs: %v vs %v", rank, i, ra, rb)
			}
		}
	}
}
