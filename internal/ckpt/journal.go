package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/faults"
	"repro/internal/storage"
)

// The journal is an append-only write-ahead log of completed work units.
// One record per unit:
//
//	magic   "CKJR" (4 bytes)
//	length  uint32 LE — payload length
//	crc     uint32 LE — CRC-32C (Castagnoli) of the payload
//	payload uvarint key length | key | blob
//
// Commit discipline (the paper's commit-semantics model, applied to our own
// durability): a record exists once Append's fsync returns, and not before.
// Recovery scans records in order, keeping the last blob per key, and stops
// at the first torn or corrupt record — which, under append discipline, can
// only be the tail left by a crash mid-append. The tail is measured,
// reported, and truncated away so subsequent appends land on a clean
// boundary.
const (
	recMagic     = "CKJR"
	recHeaderLen = len(recMagic) + 8 // magic + length + crc
	// maxPayload bounds a declared payload length: recovery must not trust a
	// torn length field into allocating gigabytes.
	maxPayload = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RecoverStats reports what journal recovery salvaged and what it dropped.
type RecoverStats struct {
	Records   int   // committed records recovered (including superseded keys)
	Keys      int   // distinct keys after last-wins replay
	Dropped   int   // torn/corrupt tail records cut (0 or 1 under append discipline)
	TailBytes int64 // bytes truncated with the torn tail
}

// Degraded reports whether recovery had to cut anything.
func (s RecoverStats) Degraded() bool { return s.Dropped > 0 || s.TailBytes > 0 }

func (s RecoverStats) String() string {
	if !s.Degraded() {
		return fmt.Sprintf("journal: %d record(s), %d key(s), clean tail", s.Records, s.Keys)
	}
	return fmt.Sprintf("journal: %d record(s), %d key(s); salvage cut %d torn record(s), %d byte(s)",
		s.Records, s.Keys, s.Dropped, s.TailBytes)
}

// encodePayload renders key + blob as a record payload.
func encodePayload(key string, blob []byte) []byte {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	p := make([]byte, 0, n+len(key)+len(blob))
	p = append(p, hdr[:n]...)
	p = append(p, key...)
	p = append(p, blob...)
	return p
}

// decodePayload splits a record payload back into key + blob.
func decodePayload(p []byte) (string, []byte, error) {
	br := bytes.NewReader(p)
	klen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", nil, fmt.Errorf("ckpt: payload key length: %w", err)
	}
	rest := p[len(p)-br.Len():]
	if klen > uint64(len(rest)) {
		return "", nil, fmt.Errorf("ckpt: payload key length %d exceeds payload", klen)
	}
	return string(rest[:klen]), rest[klen:], nil
}

// appendRecord writes one record to f and makes it durable. The named kill
// points bracket every stage of the commit so a crash-recovery harness can
// die with the journal untouched (begin), with a torn tail (torn), with a
// complete-but-unsynced record (before-fsync), or just after the commit
// (after-fsync).
func appendRecord(f storage.File, key string, blob []byte) (int64, error) {
	payload := encodePayload(key, blob)
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("ckpt: record for %q is %d bytes, over the %d limit", key, len(payload), maxPayload)
	}
	rec := make([]byte, 0, recHeaderLen+len(payload))
	rec = append(rec, recMagic...)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)

	faults.Hit("ckpt.append.begin")
	// Two writes with a kill point between them: the torn-tail salvage path
	// is only honest if a crash can actually leave half a record behind.
	half := len(rec) / 2
	if _, err := f.Write(rec[:half]); err != nil {
		return 0, fmt.Errorf("ckpt: journal write: %w", err)
	}
	faults.Hit("ckpt.append.torn")
	if _, err := f.Write(rec[half:]); err != nil {
		return 0, fmt.Errorf("ckpt: journal write: %w", err)
	}
	faults.Hit("ckpt.append.before-fsync")
	start := time.Now()
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("ckpt: journal fsync: %w", err)
	}
	journalFsyncNS.Observe(time.Since(start).Nanoseconds())
	faults.Hit("ckpt.append.after-fsync")
	journalAppends.Inc()
	journalBytes.Add(int64(len(rec)))
	return int64(len(rec)), nil
}

// recoverJournal scans r from the start, returning the last-wins key → blob
// map, salvage stats, and the offset just past the last intact record — the
// point the caller truncates to before appending. Only a torn or corrupt
// tail is survivable; it is measured and dropped. An error is returned for
// I/O failures, never for damage.
func recoverJournal(r io.Reader) (map[string][]byte, RecoverStats, int64, error) {
	byKey := make(map[string][]byte)
	var stats RecoverStats
	var good int64
	br := newCountingReader(r)
	for {
		hdr := make([]byte, recHeaderLen)
		_, err := io.ReadFull(br, hdr)
		if err == io.EOF {
			break // clean tail
		}
		if err != nil || string(hdr[:len(recMagic)]) != recMagic {
			if err != nil && err != io.ErrUnexpectedEOF {
				return nil, stats, 0, fmt.Errorf("ckpt: journal read: %w", err)
			}
			stats.Dropped++ // torn header or foreign bytes: cut the tail here
			break
		}
		plen := binary.LittleEndian.Uint32(hdr[len(recMagic):])
		wantCRC := binary.LittleEndian.Uint32(hdr[len(recMagic)+4:])
		if plen > maxPayload {
			stats.Dropped++
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				return nil, stats, 0, fmt.Errorf("ckpt: journal read: %w", err)
			}
			stats.Dropped++ // torn payload
			break
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			stats.Dropped++ // corrupt record: everything after is untrusted
			break
		}
		key, blob, err := decodePayload(payload)
		if err != nil {
			stats.Dropped++
			break
		}
		byKey[key] = blob
		stats.Records++
		good = br.n
	}
	// Whatever remains after the last intact record is tail damage: drain it
	// so the count covers unread bytes too.
	if _, err := io.Copy(io.Discard, br); err != nil {
		return nil, stats, 0, fmt.Errorf("ckpt: journal read: %w", err)
	}
	stats.TailBytes = br.n - good
	stats.Keys = len(byKey)
	return byKey, stats, good, nil
}

// countingReader tracks how many bytes have been consumed, so recovery knows
// the exact offset of the last intact record.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
