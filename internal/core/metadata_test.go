package core

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func TestMetadataCensusCountsAndAttributes(t *testing.T) {
	res, err := harness.Run(harness.Config{Ranks: 1, Semantics: pfs.Strong},
		recorder.Meta{App: "census"}, func(ctx *harness.Ctx) error {
			// App-level metadata.
			ctx.OS.Getcwd()
			ctx.OS.Mkdir("/d", 0o755)
			ctx.OS.Stat("/d")
			ctx.OS.Stat("/d")
			// Library-level metadata: wrap an access in an HDF5 record.
			ts := ctx.OS.Clock().Stamp()
			ctx.OS.Access("/d")
			ctx.OS.Lstat("/d")
			ctx.Tracer.Emit(recorder.Record{
				Layer: recorder.LayerHDF5, Func: recorder.FuncH5Fopen,
				TStart: ts, TEnd: ctx.OS.Clock().Stamp(), Path: "/d",
			})
			return nil
		})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	c := MetadataCensus(res.Trace)
	if c.Counts["App"][recorder.FuncGetcwd] != 1 {
		t.Fatalf("getcwd count = %d", c.Counts["App"][recorder.FuncGetcwd])
	}
	if c.Counts["App"][recorder.FuncStat] != 2 {
		t.Fatalf("stat count = %d", c.Counts["App"][recorder.FuncStat])
	}
	if c.Counts["HDF5"][recorder.FuncAccess] != 1 || c.Counts["HDF5"][recorder.FuncLstat] != 1 {
		t.Fatalf("HDF5 attribution broken: %+v", c.Counts)
	}
	if !c.Used(recorder.FuncMkdir) || c.Used(recorder.FuncRename) {
		t.Fatal("Used() broken")
	}
	if c.Total() != 6 {
		t.Fatalf("total = %d, want 6", c.Total())
	}
	if len(c.Origins()) != 2 {
		t.Fatalf("origins = %v", c.Origins())
	}
	if len(c.Funcs()) != 5 {
		t.Fatalf("funcs = %v", c.Funcs())
	}
}

func TestOriginNames(t *testing.T) {
	cases := map[recorder.Layer]string{
		recorder.LayerMPIIO:  "MPI",
		recorder.LayerHDF5:   "HDF5",
		recorder.LayerNetCDF: "NetCDF",
		recorder.LayerADIOS:  "ADIOS",
		recorder.LayerSilo:   "Silo",
		recorder.LayerApp:    "App",
		recorder.LayerPOSIX:  "App",
	}
	for l, want := range cases {
		if got := OriginName(l); got != want {
			t.Errorf("OriginName(%v) = %q, want %q", l, got, want)
		}
	}
}

func TestCensusDataOpsNotCounted(t *testing.T) {
	res, err := harness.Run(harness.Config{Ranks: 1, Semantics: pfs.Strong},
		recorder.Meta{App: "census2"}, func(ctx *harness.Ctx) error {
			fd, _ := ctx.OS.Open("/f", recorder.OCreat|recorder.OWronly, 0o644)
			ctx.OS.Write(fd, make([]byte, 100))
			return ctx.OS.Close(fd)
		})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	c := MetadataCensus(res.Trace)
	if c.Total() != 0 {
		t.Fatalf("open/write/close are not §6.4 metadata ops; census = %+v", c.Counts)
	}
}
