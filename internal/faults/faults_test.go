package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/pfs"
)

func TestScheduleDeterminism(t *testing.T) {
	o := GenOptions{Ranks: 8}
	a, b := Generate(42, o), Generate(42, o)
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a.Encode(), b.Encode())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ for identical schedules")
	}
	if c := Generate(43, o); bytes.Equal(a.Encode(), c.Encode()) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Injections) == 0 {
		t.Fatal("empty schedule")
	}
	for _, in := range a.Injections {
		if in.Rank < 0 || in.Rank >= 8 || in.N < 1 {
			t.Fatalf("out-of-range injection %+v", in)
		}
	}
	// Restricting kinds restricts the draw.
	only := Generate(42, GenOptions{Ranks: 8, Kinds: []Kind{TornWrite}})
	for _, in := range only.Injections {
		if in.Kind != TornWrite {
			t.Fatalf("kind restriction violated: %+v", in)
		}
	}
}

func TestKindStringsAndClasses(t *testing.T) {
	for _, k := range AllKinds() {
		if strings.HasPrefix(k.String(), "kind#") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "kind#99" {
		t.Fatal("unknown kind string")
	}
	// Each kind's class must consider the ops it perturbs eligible.
	if !TornWrite.class().matches(pfs.OpWrite) ||
		!LostFsync.class().matches(pfs.OpCommit) ||
		!ReorderPublish.class().matches(pfs.OpClose) ||
		!TransientError.class().matches(pfs.OpRead) ||
		!CrashBeforeCommit.class().matches(pfs.OpCommit) {
		t.Fatal("class eligibility broken")
	}
	if classCommit.matches(pfs.OpWrite) || classWrite.matches(pfs.OpRead) {
		t.Fatal("class over-matching")
	}
}

// injectorFS builds a file system with one armed injection and two clients.
func injectorFS(t *testing.T, sem pfs.Semantics, injs ...Injection) (*pfs.FileSystem, *Injector, *pfs.Client, *pfs.Client) {
	t.Helper()
	inj := NewInjector(Schedule{Injections: injs})
	fs := pfs.New(pfs.Options{Semantics: sem, EventualDelay: 1000})
	fs.SetInjector(inj)
	return fs, inj, fs.NewClient(0, 0), fs.NewClient(1, 0)
}

func write(t *testing.T, h *pfs.Handle, off int64, data []byte, now uint64) {
	t.Helper()
	if _, err := h.Write(off, data, now); err != nil {
		t.Fatal(err)
	}
}

func readAt(t *testing.T, c *pfs.Client, path string, n int64, now uint64) []byte {
	t.Helper()
	h, _, err := c.Open(path, pfs.ORdonly, now)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := h.Read(0, n, now)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Close(now); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestTornWriteKeepsPrefix(t *testing.T) {
	_, inj, w, r := injectorFS(t, pfs.Strong, Injection{Rank: 0, Kind: TornWrite, N: 1, Arg: 4})
	h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("ABCDEFGH"), 2)
	if _, err := h.Close(3); err != nil {
		t.Fatal(err)
	}
	got := readAt(t, r, "/f", 8, 10)
	if string(got) != "ABCD" {
		t.Fatalf("torn write left %q, want ABCD", got)
	}
	if inj.Fired() != 1 {
		t.Fatalf("fired = %d", inj.Fired())
	}
	// The second write on the same rank is untouched.
	h2, _, err := w.Open("/g", pfs.OCreat|pfs.OWronly, 20)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h2, 0, []byte("ABCDEFGH"), 21)
	if got := readAt(t, r, "/g", 8, 30); string(got) != "ABCDEFGH" {
		t.Fatalf("second write perturbed: %q", got)
	}
}

func TestTornWriteNeverKeepsWholePayload(t *testing.T) {
	_, _, w, r := injectorFS(t, pfs.Strong, Injection{Rank: 0, Kind: TornWrite, N: 1, Arg: 512})
	h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("ABCD"), 2)
	if got := readAt(t, r, "/f", 4, 10); string(got) != "ABC" {
		t.Fatalf("torn write with oversized keep left %q, want ABC", got)
	}
}

func TestLostFsyncThenRealCommit(t *testing.T) {
	_, inj, w, r := injectorFS(t, pfs.Commit, Injection{Rank: 0, Kind: LostFsync, N: 1})
	h, _, err := w.Open("/ckpt", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("DATA"), 2)
	if _, err := h.Commit(3); err != nil {
		t.Fatalf("lost fsync must look like success: %v", err)
	}
	if got := readAt(t, r, "/ckpt", 4, 4); len(got) != 0 {
		t.Fatalf("dropped commit still published %q", got)
	}
	// The writes stay pending: the next (uninjected) fsync publishes them.
	if _, err := h.Commit(5); err != nil {
		t.Fatal(err)
	}
	if got := readAt(t, r, "/ckpt", 4, 6); string(got) != "DATA" {
		t.Fatalf("recovery commit published %q", got)
	}
	if inj.Fired() != 1 {
		t.Fatalf("fired = %d", inj.Fired())
	}
}

func TestCrashBeforeCommitLosesPending(t *testing.T) {
	_, inj, w, r := injectorFS(t, pfs.Commit, Injection{Rank: 0, Kind: CrashBeforeCommit, N: 1})
	h, _, err := w.Open("/ckpt", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("DATA"), 2)
	if _, err := h.Commit(3); !errors.Is(err, pfs.ErrCrashed) {
		t.Fatalf("commit err = %v, want ErrCrashed", err)
	}
	if !w.Crashed() {
		t.Fatal("client not marked crashed")
	}
	if _, err := h.Write(4, []byte("MORE"), 4); !errors.Is(err, pfs.ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if got := readAt(t, r, "/ckpt", 4, 10); len(got) != 0 {
		t.Fatalf("crashed commit published %q", got)
	}
	if ranks := inj.CrashedRanks(); len(ranks) != 1 || ranks[0] != 0 {
		t.Fatalf("CrashedRanks = %v", ranks)
	}
}

func TestCrashAfterCommitIsDurable(t *testing.T) {
	_, _, w, r := injectorFS(t, pfs.Commit, Injection{Rank: 0, Kind: CrashAfterCommit, N: 1})
	h, _, err := w.Open("/ckpt", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("DATA"), 2)
	if _, err := h.Commit(3); !errors.Is(err, pfs.ErrCrashed) {
		t.Fatalf("commit err = %v, want ErrCrashed", err)
	}
	// The commit landed before the crash: other processes see the data.
	if got := readAt(t, r, "/ckpt", 4, 10); string(got) != "DATA" {
		t.Fatalf("crash-after-commit lost the commit: %q", got)
	}
}

func TestDelayedPublishUnderEventual(t *testing.T) {
	// EventualDelay is 1000 ns (injectorFS); the injection adds 5000 more.
	_, _, w, r := injectorFS(t, pfs.Eventual, Injection{Rank: 0, Kind: DelayedPublish, N: 1, Arg: 5000})
	h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("DATA"), 1000)
	// Normal propagation point: still invisible because of the added delay.
	if got := readAt(t, r, "/f", 4, 1000+1000); len(got) != 0 {
		t.Fatalf("delayed publish visible too early: %q", got)
	}
	// After the injected delay has elapsed as well: visible.
	if got := readAt(t, r, "/f", 4, 1000+1000+5000); string(got) != "DATA" {
		t.Fatalf("delayed publish never arrived: %q", got)
	}
}

func TestReorderPublishFlipsSameProcessOverlap(t *testing.T) {
	// Two overlapping writes in one commit batch: in order, the second wins;
	// reordered, the first does.
	run := func(reorder bool) string {
		var injs []Injection
		if reorder {
			injs = append(injs, Injection{Rank: 0, Kind: ReorderPublish, N: 1})
		}
		_, _, w, r := injectorFS(t, pfs.Commit, injs...)
		h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
		if err != nil {
			t.Fatal(err)
		}
		write(t, h, 0, []byte("AAAA"), 2)
		write(t, h, 0, []byte("BBBB"), 3)
		if _, err := h.Commit(4); err != nil {
			t.Fatal(err)
		}
		return string(readAt(t, r, "/f", 4, 10))
	}
	if got := run(false); got != "BBBB" {
		t.Fatalf("in-order publish read %q, want BBBB", got)
	}
	if got := run(true); got != "AAAA" {
		t.Fatalf("reordered publish read %q, want AAAA", got)
	}
}

func TestTransientErrorRetriesThenSucceeds(t *testing.T) {
	// Default policy allows 3 retries; 2 failing attempts succeed on retry.
	fs, inj, w, r := injectorFS(t, pfs.Strong, Injection{Rank: 0, Kind: TransientError, N: 1, Arg: 2})
	h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("DATA"), 2)
	if got := readAt(t, r, "/f", 4, 10); string(got) != "DATA" {
		t.Fatalf("retried write lost: %q", got)
	}
	if st := fs.Stats(); st.Retries == 0 || st.TransientErrors != 0 {
		t.Fatalf("stats = %+v, want retries > 0 and no exhausted errors", st)
	}
	if inj.Fired() != 1 {
		t.Fatalf("fired = %d", inj.Fired())
	}
}

func TestTransientErrorExhaustsRetries(t *testing.T) {
	// 10 failing attempts exceed the default 3-retry budget.
	fs, _, w, _ := injectorFS(t, pfs.Strong, Injection{Rank: 0, Kind: TransientError, N: 1, Arg: 10})
	h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(0, []byte("DATA"), 2); !errors.Is(err, pfs.ErrTransient) {
		t.Fatalf("write err = %v, want ErrTransient", err)
	}
	if st := fs.Stats(); st.TransientErrors != 1 {
		t.Fatalf("stats = %+v, want one exhausted transient", st)
	}
}

func TestInjectionTargetsOnlyItsRank(t *testing.T) {
	_, inj, w, other := injectorFS(t, pfs.Strong, Injection{Rank: 1, Kind: TornWrite, N: 1, Arg: 1})
	h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("ABCD"), 2)
	if got := readAt(t, other, "/f", 4, 10); string(got) != "ABCD" {
		t.Fatalf("rank-0 write perturbed by rank-1 injection: %q", got)
	}
	if inj.Fired() != 0 {
		t.Fatalf("fired = %d for the wrong rank", inj.Fired())
	}
}

func TestEventLogStableAcrossIdenticalRuns(t *testing.T) {
	sched := Generate(7, GenOptions{Ranks: 2, Kinds: []Kind{TornWrite, TransientError}})
	run := func() string {
		inj := NewInjector(sched)
		fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
		fs.SetInjector(inj)
		for rank := 0; rank < 2; rank++ {
			c := fs.NewClient(rank, 0)
			h, _, err := c.Open("/shared", pfs.OCreat|pfs.ORdwr, 1)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 8; k++ {
				h.Write(int64(k*16), []byte("0123456789abcdef"), uint64(2+k))
				h.Read(0, 16, uint64(3+k))
			}
			if _, err := h.Close(20); err != nil {
				t.Fatal(err)
			}
		}
		return inj.EventLog()
	}
	a, b := run(), run()
	if a != b || a == "" {
		t.Fatalf("event logs differ or empty:\n%s\nvs\n%s", a, b)
	}
}

func TestKindTalliesScheduledFiredSuppressed(t *testing.T) {
	// Two torn writes armed on rank 0: the first (N=1) fires on the first
	// write, the second (N=99) targets an operation the rank never reaches
	// and stays suppressed.
	_, inj, w, _ := injectorFS(t, pfs.Strong,
		Injection{Rank: 0, Kind: TornWrite, N: 1, Arg: 4},
		Injection{Rank: 0, Kind: TornWrite, N: 99, Arg: 4})
	h, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 1)
	if err != nil {
		t.Fatal(err)
	}
	write(t, h, 0, []byte("ABCDEFGH"), 2)
	if _, err := h.Close(3); err != nil {
		t.Fatal(err)
	}

	tallies := inj.KindTallies()
	if len(tallies) != int(numKinds) {
		t.Fatalf("KindTallies covers %d kinds, want %d", len(tallies), numKinds)
	}
	for i, tl := range tallies {
		if tl.Kind != Kind(i) {
			t.Fatalf("tallies out of taxonomy order at %d: %v", i, tl.Kind)
		}
		if tl.Kind == TornWrite {
			continue
		}
		if tl.Scheduled != 0 || tl.Fired != 0 {
			t.Fatalf("unexpected tally for %v: %+v", tl.Kind, tl)
		}
	}
	torn := tallies[TornWrite]
	if torn.Scheduled != 2 || torn.Fired != 1 || torn.Suppressed() != 1 {
		t.Fatalf("torn-write tally wrong: %+v (suppressed %d)", torn, torn.Suppressed())
	}
}

func TestKindSummaryAggregatesAndRenders(t *testing.T) {
	rep := &Report{Cells: []Cell{
		{App: "a", Tallies: []KindTally{{Kind: TornWrite, Scheduled: 3, Fired: 1}}},
		{App: "b", Tallies: []KindTally{
			{Kind: TornWrite, Scheduled: 2, Fired: 2},
			{Kind: LostFsync, Scheduled: 1, Fired: 0},
		}},
		{App: "c"}, // failed cell: no tallies
	}}
	sum := rep.KindSummary()
	if len(sum) != int(numKinds) {
		t.Fatalf("summary covers %d kinds, want %d", len(sum), numKinds)
	}
	torn := sum[TornWrite]
	if torn.Scheduled != 5 || torn.Fired != 3 || torn.Suppressed() != 2 {
		t.Fatalf("aggregated torn-write tally wrong: %+v", torn)
	}
	if fsync := sum[LostFsync]; fsync.Scheduled != 1 || fsync.Fired != 0 {
		t.Fatalf("aggregated lost-fsync tally wrong: %+v", fsync)
	}

	out := RenderSweep(rep)
	for _, want := range []string{"kind", "scheduled", "suppressed", TornWrite.String(), LostFsync.String()} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered sweep missing %q:\n%s", want, out)
		}
	}
}
