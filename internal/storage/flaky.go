package storage

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The flaky backend wraps any other backend and fires seed-deterministic
// injected faults, mirroring internal/faults' schedule discipline: a
// Schedule is a fixed list of injections generated entirely from a seed,
// each firing at the Nth eligible operation of its class, so the same seed
// always yields the same fault sequence for the same operation stream.
//
// Fault contract the retry policy leans on: FaultTransient and
// FaultRenameFail fail the operation *before* it reaches the wrapped
// backend — a retry is side-effect-safe. FaultTorn mutates state (half the
// write lands) and therefore returns a permanent error; FaultLostSync
// succeeds without syncing (the durability lie a broken disk tells), also
// not retryable because the caller cannot see it at all.

// FaultKind enumerates injectable storage faults.
type FaultKind int

const (
	// FaultLatency sleeps Arg nanoseconds before the operation proceeds —
	// a slow backend, not a broken one.
	FaultLatency FaultKind = iota
	// FaultTransient fails the operation with ErrTransient before it
	// touches the wrapped backend; the next Arg-1 operations of the same
	// class fail too (a blip, not a single lost packet).
	FaultTransient
	// FaultTorn writes only the first half of the payload to the wrapped
	// backend, then fails permanently — the classic torn write.
	FaultTorn
	// FaultLostSync makes a Sync succeed without syncing: the caller
	// believes in durability that does not exist.
	FaultLostSync
	// FaultRenameFail fails a Rename with ErrTransient before it executes.
	FaultRenameFail

	numFaultKinds
)

var faultKindNames = [...]string{
	FaultLatency:    "latency",
	FaultTransient:  "transient",
	FaultTorn:       "torn-write",
	FaultLostSync:   "lost-sync",
	FaultRenameFail: "rename-fail",
}

func (k FaultKind) String() string {
	if k >= 0 && int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("faultkind#%d", int(k))
}

// opClass partitions backend operations for Nth-eligible-op counting.
type opClass int

const (
	classWrite  opClass = iota // File.Write / File.WriteAt
	classSync                  // File.Sync
	classRename                // Backend.Rename
	classAny                   // any of the above
	numOpClasses
)

func (k FaultKind) class() opClass {
	switch k {
	case FaultTorn:
		return classWrite
	case FaultLatency, FaultLostSync:
		return classSync
	case FaultRenameFail:
		return classRename
	case FaultTransient:
		return classAny
	}
	return classAny
}

func (c opClass) matches(op opClass) bool { return c == classAny || c == op }

// FaultInjection is one scheduled fault: at the Nth (1-based) eligible
// operation of Kind's class, fire Kind with parameter Arg.
type FaultInjection struct {
	Kind FaultKind
	N    int
	Arg  uint64
}

func (in FaultInjection) String() string {
	return fmt.Sprintf("kind=%s n=%d arg=%d", in.Kind, in.N, in.Arg)
}

// Schedule is a deterministic storage-fault plan. WedgeAfter > 0 turns the
// backend persistently unhealthy after that many eligible operations:
// every subsequent write/sync/rename fails with ErrTransient forever, the
// shape that exhausts the retry policy and drives the degradation ladder
// (WAL → write-through, ckpt → config error).
type Schedule struct {
	Seed       uint64
	WedgeAfter int
	Injections []FaultInjection
}

// Encode renders the schedule canonically; equal seeds and options produce
// equal encodings (the determinism contract, same as faults.Schedule).
func (s Schedule) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "storage schedule seed=%d wedge=%d n=%d\n", s.Seed, s.WedgeAfter, len(s.Injections))
	for _, in := range s.Injections {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// GenOptions bounds storage-fault schedule generation.
type GenOptions struct {
	// Count is the number of injections (default 4).
	Count int
	// Kinds restricts the taxonomy; nil means all kinds.
	Kinds []FaultKind
	// MaxNth bounds the random spacing between injection indices N: the
	// first injection of each op class lands within the first MaxNth
	// eligible operations, each later same-class injection within MaxNth
	// counted ops of the previous one (default 12).
	MaxNth int
	// WedgeAfter, if > 0, wedges the backend after that many operations.
	WedgeAfter int
}

// GenSchedule derives a schedule from a seed. All randomness flows through
// a splitmix64 stream seeded with seed, so the same (seed, options) pair
// yields the identical schedule on every run and machine.
func GenSchedule(seed uint64, o GenOptions) Schedule {
	if o.Count <= 0 {
		o.Count = 4
	}
	kinds := o.Kinds
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultLatency, FaultTransient, FaultTorn, FaultLostSync, FaultRenameFail}
	}
	if o.MaxNth <= 0 {
		o.MaxNth = 12
	}
	rng := sim.NewRNG(seed).Split(0x57047A6E) // "STORAGE"
	s := Schedule{Seed: seed, WedgeAfter: o.WedgeAfter}
	// Same-class injections are spaced ≥ 3 counted ops apart. That caps the
	// consecutive failures any single retried operation can face at one
	// transient blip (Arg ≤ 3, counting its trigger) — by the time the blip
	// budget drains and the op counters advance again, the gap guarantees no
	// further injection is waiting at the next index. Generated
	// transient-only schedules therefore always converge under the retry
	// policy's default budget (5 attempts > 3 failures), the property
	// TestRetryTransientOnlyConverges pins.
	var nextN [numOpClasses]int
	for i := 0; i < o.Count; i++ {
		k := kinds[rng.Intn(len(kinds))]
		c := k.class()
		n := nextN[c] + 1 + rng.Intn(o.MaxNth)
		nextN[c] = n + 2
		inj := FaultInjection{Kind: k, N: n}
		switch k {
		case FaultLatency:
			inj.Arg = uint64(200_000 + rng.Intn(1_800_000)) // 0.2–2 ms
		case FaultTransient:
			inj.Arg = uint64(1 + rng.Intn(3))
		}
		s.Injections = append(s.Injections, inj)
	}
	return s
}

// TransientOnly reports whether every injection in the schedule is
// convergent under retry (latency and bounded transient errors only) and
// the backend never wedges — the precondition for the "no degradation"
// property the policy tests assert.
func (s Schedule) TransientOnly() bool {
	if s.WedgeAfter > 0 {
		return false
	}
	for _, in := range s.Injections {
		if in.Kind != FaultLatency && in.Kind != FaultTransient && in.Kind != FaultRenameFail {
			return false
		}
	}
	return true
}

// FlakyStats counts what a flaky backend actually did.
type FlakyStats struct {
	Ops   int64 // eligible operations observed
	Fired int64 // injections fired
}

type flaky struct {
	inner Backend
	sched Schedule

	mu            sync.Mutex
	counts        [numOpClasses]int
	pending       map[[2]int][]FaultInjection // {class, n} → injections
	transientLeft [numOpClasses]int
	wedged        bool
	stats         FlakyStats
}

// NewFlaky wraps inner with a fault schedule.
func NewFlaky(inner Backend, sched Schedule) Backend {
	f := &flaky{inner: inner, sched: sched, pending: map[[2]int][]FaultInjection{}}
	for _, in := range sched.Injections {
		k := [2]int{int(in.Kind.class()), in.N}
		f.pending[k] = append(f.pending[k], in)
	}
	return f
}

func (f *flaky) Name() string    { return "flaky(" + f.inner.Name() + ")" }
func (f *flaky) Unwrap() Backend { return f.inner }

// action is what the schedule decided for one operation.
type action struct {
	latency  time.Duration
	fail     bool // ErrTransient before the op executes
	torn     bool // write half, then permanent error
	lostSync bool // skip the sync, report success
}

// decide counts one eligible operation of class c and folds every firing
// injection into an action. Fired faults land in the flight ring.
func (f *flaky) decide(c opClass) action {
	f.mu.Lock()
	defer f.mu.Unlock()
	var act action
	f.stats.Ops++
	// Pending transient budget first: while a blip is live, operations of
	// its class fail without advancing the schedule (a retry storm must not
	// shift later injections).
	if f.transientLeft[c] > 0 {
		f.transientLeft[c]--
		act.fail = true
		return act
	}
	if f.transientLeft[classAny] > 0 {
		f.transientLeft[classAny]--
		act.fail = true
		return act
	}
	for _, cl := range []opClass{c, classAny} {
		f.counts[cl]++
		for _, in := range f.pending[[2]int{int(cl), f.counts[cl]}] {
			if in.Kind.class() != cl {
				continue
			}
			f.apply(in, &act)
		}
		delete(f.pending, [2]int{int(cl), f.counts[cl]})
	}
	if f.sched.WedgeAfter > 0 && f.counts[classAny] > f.sched.WedgeAfter {
		f.wedged = true
	}
	if f.wedged {
		act = action{fail: true}
		f.stats.Fired++
	}
	return act
}

func (f *flaky) apply(in FaultInjection, act *action) {
	f.stats.Fired++
	faultsFired.Inc()
	obs.Flight().Record(flightFault, -1, 0, int64(in.Kind), int64(in.N))
	switch in.Kind {
	case FaultLatency:
		d := time.Duration(in.Arg)
		if d > act.latency {
			act.latency = d
		}
		faultLatencyNS.Observe(int64(in.Arg))
	case FaultTransient:
		act.fail = true
		if in.Arg > 1 {
			f.transientLeft[classAny] += int(in.Arg) - 1
		}
	case FaultTorn:
		act.torn = true
	case FaultLostSync:
		act.lostSync = true
	case FaultRenameFail:
		act.fail = true
	}
}

// Stats snapshots the backend's activity.
func (f *flaky) Stats() FlakyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Wedged reports whether the schedule has turned the backend persistently
// unhealthy.
func (f *flaky) Wedged() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wedged
}

func (f *flaky) Open(path string, flags int, perm uint32) (File, error) {
	inner, err := f.inner.Open(path, flags, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{inner: inner, b: f}, nil
}

func (f *flaky) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }
func (f *flaky) Stat(path string) (int64, error)      { return f.inner.Stat(path) }
func (f *flaky) MkdirAll(path string) error           { return f.inner.MkdirAll(path) }
func (f *flaky) List(dir string) ([]string, error)    { return f.inner.List(dir) }
func (f *flaky) SyncDir(dir string) error             { return f.inner.SyncDir(dir) }
func (f *flaky) Remove(path string) error             { return f.inner.Remove(path) }

func (f *flaky) Rename(oldpath, newpath string) error {
	act := f.decide(classRename)
	if act.latency > 0 {
		time.Sleep(act.latency)
	}
	if act.fail {
		return fmt.Errorf("%w: injected rename failure (%s -> %s)", ErrTransient, oldpath, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

type flakyFile struct {
	inner File
	b     *flaky
}

func (ff *flakyFile) Read(p []byte) (int, error)              { return ff.inner.Read(p) }
func (ff *flakyFile) ReadAt(p []byte, off int64) (int, error) { return ff.inner.ReadAt(p, off) }
func (ff *flakyFile) Seek(off int64, w int) (int64, error)    { return ff.inner.Seek(off, w) }
func (ff *flakyFile) Truncate(size int64) error               { return ff.inner.Truncate(size) }
func (ff *flakyFile) Name() string                            { return ff.inner.Name() }
func (ff *flakyFile) Close() error                            { return ff.inner.Close() }

func (ff *flakyFile) Write(p []byte) (int, error) {
	act := ff.b.decide(classWrite)
	if act.latency > 0 {
		time.Sleep(act.latency)
	}
	if act.fail {
		return 0, fmt.Errorf("%w: injected write failure (%s)", ErrTransient, ff.inner.Name())
	}
	if act.torn {
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("storage: injected torn write (%s): %d of %d bytes landed", ff.inner.Name(), n, len(p))
	}
	return ff.inner.Write(p)
}

func (ff *flakyFile) WriteAt(p []byte, off int64) (int, error) {
	act := ff.b.decide(classWrite)
	if act.latency > 0 {
		time.Sleep(act.latency)
	}
	if act.fail {
		return 0, fmt.Errorf("%w: injected write failure (%s)", ErrTransient, ff.inner.Name())
	}
	if act.torn {
		n, _ := ff.inner.WriteAt(p[:len(p)/2], off)
		return n, fmt.Errorf("storage: injected torn write (%s): %d of %d bytes landed", ff.inner.Name(), n, len(p))
	}
	return ff.inner.WriteAt(p, off)
}

func (ff *flakyFile) Sync() error {
	act := ff.b.decide(classSync)
	if act.latency > 0 {
		time.Sleep(act.latency)
	}
	if act.fail {
		return fmt.Errorf("%w: injected sync failure (%s)", ErrTransient, ff.inner.Name())
	}
	if act.lostSync {
		return nil // the lie: success without durability
	}
	return ff.inner.Sync()
}
