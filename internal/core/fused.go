package core

import (
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// ModelConflicts is one model's slice of a fused analysis: the per-file
// conflict lists (files without conflicts omitted) and the aggregate
// Table 4 signature — exactly what AnalyzeConflicts returns for that model.
type ModelConflicts struct {
	Model     pfs.Semantics
	ByFile    map[string][]Conflict
	Signature ConflictSignature
}

// DetectConflictsMulti evaluates every model's conflict predicate (§5.2) in
// ONE offset-sorted sweep of the file's intervals, instead of one sweep per
// model. For each candidate pair the Conflict value is built at most once
// and shared across the models that admit it; per-model results are
// byte-identical to DetectConflicts (same cap, same class-preserving
// appender, same stable sort).
func DetectConflictsMulti(fa *FileAccesses, models []pfs.Semantics) [][]Conflict {
	out := make([][]Conflict, len(models))
	active := 0
	for _, m := range models {
		if m != pfs.Strong {
			active++
		}
	}
	if active == 0 {
		return out
	}
	apps := make([]conflictAppender, len(models))
	for i := range apps {
		apps[i].max = MaxConflictsPerFile
	}
	sweepOverlaps(fa.Intervals, false, func(p OverlapPair) {
		first, second := &fa.Intervals[p.A], &fa.Intervals[p.B]
		var c Conflict
		built := false
		for i, m := range models {
			if m == pfs.Strong || !conflictUnder(fa, m, first, second) {
				continue
			}
			if !built {
				c = Conflict{
					Path:        fa.Path,
					Kind:        kindOf(second),
					SameProcess: first.Rank == second.Rank,
					First:       *first,
					Second:      *second,
				}
				built = true
			}
			apps[i].add(c)
		}
	})
	var suppressed int64
	for i := range apps {
		suppressed += apps[i].suppressed
		sortConflicts(apps[i].out)
		out[i] = apps[i].out
	}
	if suppressed > 0 {
		conflictsSuppressed.Add(suppressed)
	}
	return out
}

// ConflictsAllOverFiles folds DetectConflictsMulti over pre-extracted
// accesses, serially, producing one ModelConflicts per requested model.
func ConflictsAllOverFiles(fas []*FileAccesses, models []pfs.Semantics) []ModelConflicts {
	defer startFusedPass()()
	ms := make([]ModelConflicts, len(models))
	for i, m := range models {
		ms[i] = ModelConflicts{Model: m, ByFile: make(map[string][]Conflict)}
	}
	for _, fa := range fas {
		lists := DetectConflictsMulti(fa, models)
		for i, cs := range lists {
			if len(cs) > 0 {
				ms[i].ByFile[fa.Path] = cs
				ms[i].Signature.merge(Signature(cs))
			}
		}
	}
	return ms
}

// AnalyzeConflictsAll is the fused replacement for calling AnalyzeConflicts
// once per model: one (cached) extraction, one sweep per file evaluating
// every model's predicate. Results index-match the models argument.
func AnalyzeConflictsAll(tr *recorder.Trace, models ...pfs.Semantics) []ModelConflicts {
	return ConflictsAllOverFiles(ExtractShared(tr), models)
}
