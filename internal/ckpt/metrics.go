package ckpt

import "repro/internal/obs"

// Checkpoint-store telemetry on the process-wide registry (DESIGN.md §9
// naming: ckpt.journal.* for the write path, ckpt.recover.* for salvage,
// ckpt.resume.* for cache effectiveness). The fsync histogram records host
// wall time — the one real-durability cost in an otherwise simulated stack —
// so it is the only ckpt instrument that varies between identical runs.
var (
	journalAppends = obs.Default().Counter("ckpt.journal.appends")
	journalBytes   = obs.Default().Counter("ckpt.journal.bytes")
	journalFsyncNS = obs.Default().Histogram("ckpt.journal.fsync_ns")

	recoverKept      = obs.Default().Counter("ckpt.recover.records_kept")
	recoverDropped   = obs.Default().Counter("ckpt.recover.records_dropped")
	recoverTruncated = obs.Default().Counter("ckpt.recover.bytes_truncated")

	resumeHits   = obs.Default().Counter("ckpt.resume.hits")
	resumeMisses = obs.Default().Counter("ckpt.resume.misses")
)
