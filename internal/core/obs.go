package core

import (
	"runtime/metrics"
	"time"

	"repro/internal/obs"
)

// Telemetry for the parallel analysis engine. Pool instruments are updated
// inside ParallelForCtx (one atomic add per task — a no-op load when the
// registry is disabled); pass-level spans and duration histograms wrap each
// *ParallelCtx entry point, so a -trace-spans export shows the extraction /
// conflict / patterns / census / metadata passes as nested intervals with
// per-worker lanes underneath.
//
// Naming (DESIGN.md §9): core.pool.*, core.pass.<pass>.*.
var (
	poolRuns    = obs.Default().Counter("core.pool.runs")
	poolTasks   = obs.Default().Counter("core.pool.tasks")
	poolSerial  = obs.Default().Counter("core.pool.serial_runs")
	poolWorkers = obs.Default().Gauge("core.pool.workers")
	poolQueue   = obs.Default().Gauge("core.pool.queue_peak")
	// poolUtilization is the high-water percentage of (sum of worker active
	// time) / (pool size x wall time) over pool runs — 100 means every
	// worker stayed busy until the queue drained; low values expose uneven
	// shards at the tail of a pass.
	poolUtilization = obs.Default().Gauge("core.pool.utilization_pct")

	passDur = map[string]*obs.Histogram{
		"extract":         obs.Default().Histogram("core.pass.extract.wall_ns"),
		"conflicts":       obs.Default().Histogram("core.pass.conflicts.wall_ns"),
		"fused-conflicts": obs.Default().Histogram("core.pass.fused-conflicts.wall_ns"),
		"patterns":        obs.Default().Histogram("core.pass.patterns.wall_ns"),
		"classify":        obs.Default().Histogram("core.pass.classify.wall_ns"),
		"census":          obs.Default().Histogram("core.pass.census.wall_ns"),
		"meta-conflicts":  obs.Default().Histogram("core.pass.meta-conflicts.wall_ns"),
		"analyze":         obs.Default().Histogram("core.pass.analyze.wall_ns"),
	}

	// Fused engine instruments (DESIGN.md §11): extraction-cache traffic,
	// rank-table accumulator selection, conflict-cap suppression, and the
	// heap bytes allocated per fused conflict pass.
	extractCacheHits      = obs.Default().Counter("core.extract.cache.hits")
	extractCacheMisses    = obs.Default().Counter("core.extract.cache.misses")
	extractCacheEvictions = obs.Default().Counter("core.extract.cache.evictions")
	sweepDenseTables      = obs.Default().Counter("core.sweep.dense_tables")
	sweepMapTables        = obs.Default().Counter("core.sweep.map_tables")
	conflictsSuppressed   = obs.Default().Counter("core.conflicts.suppressed")
	fusedAllocBytes       = obs.Default().Histogram("core.pass.fused-conflicts.alloc_bytes")
)

// startPass opens a span plus a wall-clock histogram sample for one
// analysis pass. The returned func must be called when the pass ends; it is
// cheap enough to defer. When both the registry and tracer are disabled the
// cost is two atomic loads and a clock read.
func startPass(name string) func() {
	span := obs.Default().Tracer().Start(name, "core.pass")
	h := passDur[name]
	start := time.Now()
	return func() {
		span.End()
		h.Observe(time.Since(start).Nanoseconds())
	}
}

// heapAllocBytes reads the cumulative heap-allocation byte counter. The
// runtime/metrics read costs ~1µs, so the fused pass only samples it when
// the registry is enabled.
func heapAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	return s[0].Value.Uint64()
}

// startFusedPass wraps one fused conflict pass with the standard wall-time
// span/histogram plus a bytes-allocated histogram. Allocation attribution is
// goroutine-agnostic (it reads the process-wide counter), so it is only
// meaningful for the serial fused pass; the parallel path records wall time
// only.
func startFusedPass() func() {
	done := startPass("fused-conflicts")
	if !obs.Default().Enabled() {
		return done
	}
	before := heapAllocBytes()
	return func() {
		fusedAllocBytes.Observe(int64(heapAllocBytes() - before))
		done()
	}
}
