package storage

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RetryOptions tunes the policy wrapper NewRetry returns.
type RetryOptions struct {
	// MaxAttempts bounds tries per operation (first try included);
	// default 5.
	MaxAttempts int
	// Deadline bounds one operation's total wall time including backoff
	// sleeps; once exceeded no further attempt starts. Default 2s.
	Deadline time.Duration
	// Backoff schedules inter-attempt sleeps (zero value = documented
	// defaults; Delay is a pure function of (Seed, attempt)).
	Backoff Backoff
	// Sleep replaces time.Sleep, for deterministic tests. Nil = real sleep.
	Sleep func(time.Duration)
	// Now replaces time.Now for the deadline clock, for tests.
	Now func() time.Time
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.Deadline <= 0 {
		o.Deadline = 2 * time.Second
	}
	o.Backoff = o.Backoff.WithDefaults()
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// RetryStats counts what the policy layer did.
type RetryStats struct {
	Retries   int64 // extra attempts beyond the first
	SleepNS   int64 // cumulative backoff sleep
	Exhausted int64 // operations that ran out of attempts or deadline
}

// retrier wraps a backend with the degrade ladder's first rung: transient
// failures are retried with bounded deterministic backoff; only when an
// operation exhausts its budget does the error escape, rewrapped as
// ErrUnavailable (deliberately shedding ErrTransient — the layer above
// must degrade, not keep retrying). Mutating operations are safe to retry
// because the backends guarantee transient failures fire before any state
// changes (see flaky.go); torn writes return permanent errors and pass
// through on the first attempt.
type retrier struct {
	inner Backend
	opts  RetryOptions

	retries   atomic.Int64
	sleepNS   atomic.Int64
	exhausted atomic.Int64
}

// NewRetry wraps inner with the retry/degrade policy.
func NewRetry(inner Backend, opts RetryOptions) Backend {
	return &retrier{inner: inner, opts: opts.withDefaults()}
}

func (r *retrier) Name() string    { return "retry(" + r.inner.Name() + ")" }
func (r *retrier) Unwrap() Backend { return r.inner }

// Stats snapshots policy activity.
func (r *retrier) Stats() RetryStats {
	return RetryStats{
		Retries:   r.retries.Load(),
		SleepNS:   r.sleepNS.Load(),
		Exhausted: r.exhausted.Load(),
	}
}

// Healthy reports whether the policy has never had to give up on the
// backend. Sticky-false after the first exhaustion: the layers above use
// it as the "stop trusting this store" signal.
func (r *retrier) Healthy() bool { return r.exhausted.Load() == 0 }

// do runs op under the attempt/deadline budget. op must be side-effect-free
// on ErrTransient failures (the backend contract). The operation is named by
// (verb, name) parts so the healthy path never pays a string concatenation —
// the message is only assembled when the budget is exhausted.
func (r *retrier) do(verb, name string, op func() error) error {
	start := r.opts.Now()
	var err error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := time.Duration(r.opts.Backoff.Delay(attempt - 1))
			remain := r.opts.Deadline - r.opts.Now().Sub(start)
			if remain <= 0 || d > remain {
				retryDeadline.Inc()
				break
			}
			r.opts.Sleep(d)
			r.sleepNS.Add(int64(d))
			retrySleepNS.Observe(int64(d))
			r.retries.Add(1)
			retryAttempts.Inc()
		}
		err = op()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrTransient) {
			return err
		}
	}
	r.exhausted.Add(1)
	retryExhausted.Inc()
	obs.Flight().Record(flightExhausted, -1, 0, int64(r.opts.MaxAttempts), 0)
	return fmt.Errorf("%w: %s %s gave up after %d attempts: %v",
		ErrUnavailable, verb, name, r.opts.MaxAttempts, err)
}

func (r *retrier) Open(path string, flags int, perm uint32) (File, error) {
	var f File
	err := r.do("open", path, func() error {
		var e error
		f, e = r.inner.Open(path, flags, perm)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{inner: f, r: r}, nil
}

func (r *retrier) ReadFile(path string) ([]byte, error) {
	var b []byte
	err := r.do("read", path, func() error {
		var e error
		b, e = r.inner.ReadFile(path)
		return e
	})
	return b, err
}

func (r *retrier) Rename(oldpath, newpath string) error {
	return r.do("rename", oldpath, func() error { return r.inner.Rename(oldpath, newpath) })
}

func (r *retrier) Remove(path string) error {
	return r.do("remove", path, func() error { return r.inner.Remove(path) })
}

func (r *retrier) MkdirAll(path string) error {
	return r.do("mkdir", path, func() error { return r.inner.MkdirAll(path) })
}

func (r *retrier) List(dir string) ([]string, error) {
	var names []string
	err := r.do("list", dir, func() error {
		var e error
		names, e = r.inner.List(dir)
		return e
	})
	return names, err
}

func (r *retrier) SyncDir(dir string) error {
	return r.do("syncdir", dir, func() error { return r.inner.SyncDir(dir) })
}

func (r *retrier) Stat(path string) (int64, error) {
	var n int64
	err := r.do("stat", path, func() error {
		var e error
		n, e = r.inner.Stat(path)
		return e
	})
	return n, err
}

type retryFile struct {
	inner File
	r     *retrier
}

func (f *retryFile) Read(p []byte) (int, error)              { return f.inner.Read(p) }
func (f *retryFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *retryFile) Seek(off int64, w int) (int64, error)    { return f.inner.Seek(off, w) }
func (f *retryFile) Truncate(size int64) error               { return f.inner.Truncate(size) }
func (f *retryFile) Name() string                            { return f.inner.Name() }
func (f *retryFile) Close() error                            { return f.inner.Close() }

func (f *retryFile) Write(p []byte) (int, error) {
	var n int
	err := f.r.do("write", f.inner.Name(), func() error {
		var e error
		n, e = f.inner.Write(p)
		return e
	})
	return n, err
}

func (f *retryFile) WriteAt(p []byte, off int64) (int, error) {
	var n int
	err := f.r.do("writeat", f.inner.Name(), func() error {
		var e error
		n, e = f.inner.WriteAt(p, off)
		return e
	})
	return n, err
}

func (f *retryFile) Sync() error {
	return f.r.do("sync", f.inner.Name(), func() error { return f.inner.Sync() })
}

// Health reports whether b (or any wrapper in its chain) has declared the
// store unhealthy. Backends without a health signal are always healthy.
func Health(b Backend) bool {
	type healthy interface{ Healthy() bool }
	for {
		if h, ok := b.(healthy); ok && !h.Healthy() {
			return false
		}
		u, ok := b.(unwrapper)
		if !ok {
			return true
		}
		b = u.Unwrap()
	}
}
