// Package semfs reproduces "File System Semantics Requirements of HPC
// Applications" (Wang, Mohror, Snir — HPDC 2021) as an executable system:
// a deterministic simulated HPC I/O stack (MPI runtime, parallel file
// system with four consistency models, POSIX/MPI-IO/HDF5/NetCDF/ADIOS/Silo
// layers, 17 application workload emulators, and a Recorder-style
// multi-level tracer) together with the paper's trace analysis (overlap
// detection, conflict detection under commit/session semantics, access
// pattern classification, metadata census, happens-before validation).
//
// The typical flow mirrors the paper's methodology:
//
//	res, err := semfs.Run("FLASH-nofbs", semfs.RunOptions{Ranks: 64})
//	...
//	an := semfs.Analyze(res.Trace)
//	fmt.Println(an.Verdict.Weakest) // the weakest sufficient PFS semantics
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package semfs

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/recorder/colfmt"
	"repro/internal/report"
	"repro/internal/storage"
)

// Semantics re-exports the PFS consistency models of Section 3.
type Semantics = pfs.Semantics

// The four consistency models, strongest first.
const (
	Strong   = pfs.Strong
	Commit   = pfs.Commit
	Session  = pfs.Session
	Eventual = pfs.Eventual
)

// RunOptions configures an emulated application run.
type RunOptions struct {
	// Ranks is the number of MPI processes (default 64, the paper's small
	// scale).
	Ranks int
	// PPN is processes per node (default 8, as in the paper's 8x8 runs).
	PPN int
	// Seed drives all simulated randomness; equal seeds give byte-identical
	// traces.
	Seed uint64
	// Semantics selects the consistency model of the underlying simulated
	// PFS (default Strong, like the paper's Lustre testbed).
	Semantics Semantics
	// Steps, CheckpointEvery and Block scale the workload (see apps.Params).
	Steps           int
	CheckpointEvery int
	Block           int64
	// Verify makes applications check the data they read, surfacing stale
	// reads on weak-semantics file systems as rank errors.
	Verify bool
}

// Result of an application run.
type Result struct {
	// Trace is the aligned multi-level I/O trace (the Recorder artifact).
	Trace *recorder.Trace
	// FS is the simulated file system after the run.
	FS *pfs.FileSystem
	// RankErrors holds per-rank failures (stale reads under Verify, I/O
	// errors); empty on a clean run.
	RankErrors []error
}

// Applications lists the available application configurations, e.g.
// "FLASH-fbs", "LAMMPS-ADIOS", "GTC" (the 24 configurations of the study).
func Applications() []string { return apps.Names() }

// Describe returns the Table 5 description of a configuration.
func Describe(name string) (string, error) {
	cfg, ok := apps.Lookup(name)
	if !ok {
		return "", fmt.Errorf("semfs: unknown application %q (see Applications())", name)
	}
	return cfg.Description, nil
}

// Run stages and executes one application configuration on a simulated PFS
// and returns its trace.
func Run(name string, o RunOptions) (*Result, error) {
	cfg, ok := apps.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("semfs: unknown application %q (see Applications())", name)
	}
	if o.Ranks == 0 {
		o.Ranks = 64
	}
	if o.PPN == 0 {
		o.PPN = 8
		if o.Ranks < 8 {
			o.PPN = o.Ranks
		}
	}
	res, err := apps.Execute(cfg, apps.Options{
		Ranks:     o.Ranks,
		PPN:       o.PPN,
		Seed:      o.Seed,
		Semantics: o.Semantics,
		Params: apps.Params{
			Steps:           o.Steps,
			CheckpointEvery: o.CheckpointEvery,
			Block:           o.Block,
			Verify:          o.Verify,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{Trace: res.Trace, FS: res.FS, RankErrors: res.Errs}, nil
}

// Err returns the first rank error, or nil.
func (r *Result) Err() error {
	if len(r.RankErrors) > 0 {
		return r.RankErrors[0]
	}
	return nil
}

// Analysis bundles everything the paper's method extracts from one trace.
type Analysis struct {
	// Verdict is the §6.3 bottom line: conflict signatures under session
	// and commit semantics and the weakest sufficient model.
	Verdict core.Verdict
	// SessionConflicts / CommitConflicts list the conflicting access pairs
	// per file under each model.
	SessionConflicts map[string][]core.Conflict
	CommitConflicts  map[string][]core.Conflict
	// Patterns are the Table 3 high-level patterns.
	Patterns []core.HighLevelPattern
	// Global and Local are the Figure 1 access-pattern mixes.
	Global, Local core.PatternMix
	// Census is the Figure 3 metadata-operation census.
	Census *core.Census
	// MetaConflicts are cross-process metadata dependencies (the paper's
	// §7 future-work analysis): namespace mutations one process makes that
	// another process's operations rely on seeing. Applications with any
	// need prompt metadata visibility (unsafe on fully-relaxed-metadata
	// PFSs without extra discipline).
	MetaConflicts []core.MetaConflict
	MetaSignature core.MetaSignature
}

// Analyze runs the full paper analysis over a trace. This is the serial
// reference path — the oracle AnalyzeParallel is tested against — so every
// pass here is strictly sequential and per-model (no fused sweep, no
// extraction cache): the trace is extracted once up front and each model's
// conflicts are detected independently.
func Analyze(tr *recorder.Trace) *Analysis {
	fas := core.Extract(tr)
	sessionByFile, sessionSig := core.ConflictsOverFiles(fas, pfs.Session)
	commitByFile, commitSig := core.ConflictsOverFiles(fas, pfs.Commit)
	metaConflicts := core.DetectMetadataConflicts(tr)
	return &Analysis{
		Verdict:          core.VerdictFrom(sessionSig, commitSig),
		SessionConflicts: sessionByFile,
		CommitConflicts:  commitByFile,
		Patterns:         core.ClassifyHighLevel(fas, core.HLOptions{WorldSize: tr.Meta.Ranks}),
		Global:           core.GlobalPattern(fas),
		Local:            core.LocalPattern(fas),
		Census:           core.MetadataCensus(tr),
		MetaConflicts:    metaConflicts,
		MetaSignature:    core.MetaSignatureOf(metaConflicts),
	}
}

// AnalyzeParallel runs the same analysis concurrently: the trace is
// extracted once with rank-sharded extraction (through the process-wide
// extraction cache, so repeated analyses of one trace share the work), then
// the four independent passes (fused session+commit conflict sweep, pattern
// classification + Figure 1 mixes, metadata census, metadata-conflict
// detection) fan out as a scatter/gather, each internally sharded across a
// pool of the given size (workers <= 0 selects runtime.GOMAXPROCS). Every
// merge is deterministic, so the result is identical to Analyze — the
// serial path stays the correctness oracle (see
// TestAnalyzeParallelMatchesSerial).
func AnalyzeParallel(tr *recorder.Trace, workers int) *Analysis {
	an, _ := AnalyzeParallelCtx(context.Background(), tr, workers)
	return an
}

// AnalyzeParallelCtx is AnalyzeParallel under a context: cancellation stops
// every pass within one task boundary (no new per-file or per-rank task
// starts once ctx is done) and the call returns ctx.Err() instead of a
// partial Analysis.
func AnalyzeParallelCtx(ctx context.Context, tr *recorder.Trace, workers int) (*Analysis, error) {
	fas, err := core.ExtractSharedCtx(ctx, tr, workers)
	if err != nil {
		return nil, err
	}
	an := &Analysis{}
	var sessionSig, commitSig core.ConflictSignature

	// The scatter/gather fans the four passes out as named spans under one
	// root, so a -trace-spans export shows which pass dominates the wall
	// clock and how the passes overlap.
	root := obs.Default().Tracer().Start("analyze", "semfs")
	defer root.End()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	launch := func(i int, name string, f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			span := root.Child(name)
			errs[i] = f()
			span.End()
		}()
	}
	launch(0, "conflicts", func() error {
		ms, err := core.ConflictsAllForFilesCtx(ctx, fas, []pfs.Semantics{pfs.Session, pfs.Commit}, workers)
		if err != nil {
			return err
		}
		an.SessionConflicts, sessionSig = ms[0].ByFile, ms[0].Signature
		an.CommitConflicts, commitSig = ms[1].ByFile, ms[1].Signature
		return nil
	})
	launch(1, "patterns", func() (err error) {
		if an.Patterns, err = core.ClassifyHighLevelParallelCtx(ctx, fas, core.HLOptions{WorldSize: tr.Meta.Ranks}, workers); err != nil {
			return err
		}
		if an.Global, err = core.GlobalPatternParallelCtx(ctx, fas, workers); err != nil {
			return err
		}
		an.Local, err = core.LocalPatternParallelCtx(ctx, fas, workers)
		return err
	})
	launch(2, "census", func() (err error) {
		an.Census, err = core.MetadataCensusParallelCtx(ctx, tr, workers)
		return err
	})
	launch(3, "meta-conflicts", func() (err error) {
		if an.MetaConflicts, err = core.DetectMetadataConflictsParallelCtx(ctx, tr, workers); err != nil {
			return err
		}
		an.MetaSignature = core.MetaSignatureOf(an.MetaConflicts)
		return nil
	})
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// The verdict is derived from the signatures the conflict passes already
	// computed; serial Analyze re-detects, arriving at the same values.
	an.Verdict = core.VerdictFrom(sessionSig, commitSig)
	return an, nil
}

// ValidateSynchronization performs the §5.2 check: every conflict detected
// under session semantics must be ordered by the application's MPI
// synchronization. It returns the unordered pairs (nil for race-free
// applications).
func ValidateSynchronization(tr *recorder.Trace) ([]core.Conflict, error) {
	hb, err := core.BuildHB(tr)
	if err != nil {
		return nil, err
	}
	byFile, _ := core.ConflictsOverFiles(core.ExtractShared(tr), pfs.Session)
	var unordered []core.Conflict
	for _, cs := range byFile {
		unordered = append(unordered, core.ValidateConflicts(hb, cs)...)
	}
	return unordered, nil
}

// Report builds the per-run digest (function counters, size histogram,
// per-file conflict summary) the paper's published artifact ships with each
// trace. Render it with its Render method.
func Report(tr *recorder.Trace) *report.RunReport { return report.BuildRunReport(tr) }

// Trace re-exports the recorder's trace type for callers that hold loaded
// traces without importing internal packages.
type Trace = recorder.Trace

// SaveTrace persists a trace as a directory of per-rank binary streams in
// the columnar format (see internal/recorder/colfmt). Use SaveTraceFormat
// to write the v1 record-framed format for old readers.
func SaveTrace(dir string, tr *recorder.Trace) error {
	return colfmt.SaveDir(dir, tr, colfmt.FormatColumnar)
}

// SaveTraceOn is SaveTrace against an explicit storage backend (see
// internal/storage.ParseSpec for backend construction).
func SaveTraceOn(b storage.Backend, dir string, tr *recorder.Trace) error {
	return colfmt.SaveDirOn(b, dir, tr, colfmt.FormatColumnar)
}

// TraceFormat selects an on-disk trace format ("columnar" or "v1").
type TraceFormat = colfmt.Format

// Trace format constants.
const (
	FormatColumnar = colfmt.FormatColumnar
	FormatV1       = colfmt.FormatV1
)

// ParseTraceFormat parses a trace format name ("columnar" or "v1").
func ParseTraceFormat(s string) (TraceFormat, error) { return colfmt.ParseFormat(s) }

// SaveTraceFormat is SaveTrace with an explicit on-disk format.
func SaveTraceFormat(dir string, tr *recorder.Trace, f TraceFormat) error {
	return colfmt.SaveDir(dir, tr, f)
}

// SaveTraceFormatOn is SaveTraceFormat against an explicit storage backend.
func SaveTraceFormatOn(b storage.Backend, dir string, tr *recorder.Trace, f TraceFormat) error {
	return colfmt.SaveDirOn(b, dir, tr, f)
}

// LoadTrace loads a trace written by SaveTrace, sniffing each rank file's
// format (columnar or v1 — mixed directories are fine) and decoding ranks
// in parallel across workers (0 means GOMAXPROCS).
func LoadTrace(dir string, workers int) (*recorder.Trace, error) {
	return colfmt.LoadDir(dir, workers)
}

// LoadTraceOn is LoadTrace against an explicit storage backend.
func LoadTraceOn(b storage.Backend, dir string, workers int) (*recorder.Trace, error) {
	return colfmt.LoadDirOn(b, dir, workers)
}

// ConvertTrace rewrites a trace directory into the requested format at a
// new path (src and dst must differ), returning the loaded trace.
func ConvertTrace(src, dst string, f TraceFormat, workers int) (*recorder.Trace, error) {
	return colfmt.ConvertDir(src, dst, f, workers)
}

// ConvertTraceOn is ConvertTrace against an explicit storage backend.
func ConvertTraceOn(b storage.Backend, src, dst string, f TraceFormat, workers int) (*recorder.Trace, error) {
	return colfmt.ConvertDirOn(b, src, dst, f, workers)
}

// Salvage re-exports the degraded-mode load report (see LoadTraceLenient).
type Salvage = recorder.Salvage

// LoadTraceLenient loads a trace in degraded mode: truncated rank streams
// contribute their valid prefix, unreadable ones are skipped, and the
// Salvage reports exactly what was lost — so a damaged trace can still be
// analyzed instead of aborting the pipeline. It fails only when the
// metadata is unusable or no records survive at all.
func LoadTraceLenient(dir string, workers int) (*recorder.Trace, *Salvage, error) {
	return colfmt.LoadDirLenient(dir, workers)
}

// LoadTraceLenientOn is LoadTraceLenient against an explicit storage
// backend.
func LoadTraceLenientOn(b storage.Backend, dir string, workers int) (*recorder.Trace, *Salvage, error) {
	return colfmt.LoadDirLenientOn(b, dir, workers)
}

// Ctx is the per-rank context handed to custom application bodies.
type Ctx = harness.Ctx

// RunCustom executes a hand-written SPMD body on the simulated stack and
// traces it — the way to study your own I/O protocol with the paper's
// analysis (see examples/conflictlab).
func RunCustom(name string, o RunOptions, body func(*Ctx) error) (*Result, error) {
	if o.Ranks == 0 {
		o.Ranks = 8
	}
	res, err := harness.Run(harness.Config{
		Ranks:     o.Ranks,
		PPN:       o.PPN,
		Seed:      o.Seed,
		Semantics: o.Semantics,
	}, recorder.Meta{App: name, Library: "POSIX"}, body)
	if err != nil {
		return nil, err
	}
	return &Result{Trace: res.Trace, FS: res.FS, RankErrors: res.Errs}, nil
}
