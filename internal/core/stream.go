package core

import (
	"context"
	"fmt"

	"repro/internal/recorder"
)

// Streaming extraction: the §5.1 offset reconstruction consumes one record
// at a time in stream order, so it does not need a materialized []Record at
// all. RecordCursor is the pull seam a zero-copy decoder (the columnar
// format's mmap cursor, internal/recorder/colfmt) plugs into; rankExtractor
// is the per-record fold both Extract and the cursor path share, so the two
// paths cannot drift.

// RecordCursor yields one rank's records in stream (TStart) order. Next
// advances and reports whether a record is available; Record returns the
// current record, which the cursor may overwrite on the following Next —
// consumers must copy anything they keep (rankExtractor copies by value
// into intervals and tables). After Next returns false, Err distinguishes a
// clean end (nil) from a decode failure.
type RecordCursor interface {
	Next() bool
	Record() *recorder.Record
	Err() error
}

// sliceCursor adapts a materialized record slice to RecordCursor.
type sliceCursor struct {
	rs []recorder.Record
	i  int
}

// SliceCursor wraps an in-memory record stream as a RecordCursor — the shim
// that lets slice-backed ranks (v1 streams, tests) flow through the same
// cursor pipeline as mapped columnar ranks.
func SliceCursor(rs []recorder.Record) RecordCursor { return &sliceCursor{rs: rs, i: -1} }

func (c *sliceCursor) Next() bool {
	if c.i+1 >= len(c.rs) {
		return false
	}
	c.i++
	return true
}

func (c *sliceCursor) Record() *recorder.Record { return &c.rs[c.i] }
func (c *sliceCursor) Err() error               { return nil }

// originFrame is one not-yet-ended enclosing library call.
type originFrame struct {
	idx   int // stream index, the phase identity
	tend  uint64
	layer recorder.Layer
}

// originStack is the streaming form of the origin/phase attribution sweep:
// frames are library-layer records (non-POSIX, non-MPI) not yet known to
// have ended. Because streams are TStart-ordered, feeding records in order
// reproduces exactly what the old whole-slice precompute produced.
type originStack struct {
	frames []originFrame
}

// step computes the origin (layer of the outermost enclosing frame that
// covers r, or LayerApp) and phase (stream index of the innermost such
// frame, or -1) for the record at stream index i, then pushes r if it is
// itself a library-layer call.
func (s *originStack) step(i int, r *recorder.Record) (recorder.Layer, int) {
	for len(s.frames) > 0 && s.frames[len(s.frames)-1].tend < r.TStart {
		s.frames = s.frames[:len(s.frames)-1]
	}
	origin, phase := recorder.LayerApp, -1
	for _, fr := range s.frames { // bottom = outermost
		if fr.tend >= r.TEnd {
			origin = fr.layer
			break
		}
	}
	for k := len(s.frames) - 1; k >= 0; k-- { // top = innermost
		if s.frames[k].tend >= r.TEnd {
			phase = s.frames[k].idx
			break
		}
	}
	if r.Layer != recorder.LayerPOSIX && r.Layer != recorder.LayerMPI {
		s.frames = append(s.frames, originFrame{idx: i, tend: r.TEnd, layer: r.Layer})
	}
	return origin, phase
}

// rankExtractor folds one rank's records into per-file accesses one record
// at a time: descriptor offsets (§5.1), open/close/commit time tables, and
// origin/phase attribution all advance in a single pass.
type rankExtractor struct {
	files      map[string]*FileAccesses
	fds        fdTable
	sizeByPath map[string]int64 // this rank's view, for O_APPEND
	stack      originStack
	i          int // stream index of the next record
}

func newRankExtractor(files map[string]*FileAccesses) *rankExtractor {
	return &rankExtractor{files: files, sizeByPath: make(map[string]int64, 8)}
}

func (e *rankExtractor) get(path string) *FileAccesses {
	fa, ok := e.files[path]
	if !ok {
		fa = &FileAccesses{
			Path:          path,
			OpensByRank:   make(map[int32][]uint64),
			ClosesByRank:  make(map[int32][]uint64),
			CommitsByRank: make(map[int32][]uint64),
		}
		e.files[path] = fa
	}
	return fa
}

func (e *rankExtractor) noteSize(path string, end int64) {
	if end > e.sizeByPath[path] {
		e.sizeByPath[path] = end
	}
}

// step folds one record. r may be a cursor's reused record: everything kept
// is copied by value (interval fields, times, interned path strings).
func (e *rankExtractor) step(r *recorder.Record) {
	origin, phase := e.stack.step(e.i, r)
	e.i++
	if r.Layer != recorder.LayerPOSIX {
		return
	}
	switch {
	case r.IsOpenOp():
		fd := r.Arg(2)
		if fd < 0 {
			return // failed open
		}
		flags := int(r.Arg(0))
		e.fds.set(fd, fdState{path: r.Path, appendMd: flags&recorder.OAppend != 0})
		if flags&recorder.OTrunc != 0 {
			e.sizeByPath[r.Path] = 0
		}
		fa := e.get(r.Path)
		fa.OpensByRank[r.Rank] = append(fa.OpensByRank[r.Rank], r.TStart)
	case r.IsCloseOp():
		if st := e.fds.closeFD(r.Arg(0)); st != nil {
			fa := e.get(st.path)
			fa.ClosesByRank[r.Rank] = append(fa.ClosesByRank[r.Rank], r.TStart)
			fa.CommitsByRank[r.Rank] = append(fa.CommitsByRank[r.Rank], r.TStart)
		}
	case r.Func == recorder.FuncFsync || r.Func == recorder.FuncFdatasync || r.Func == recorder.FuncFflush:
		if st := e.fds.get(r.Arg(0)); st != nil {
			fa := e.get(st.path)
			fa.CommitsByRank[r.Rank] = append(fa.CommitsByRank[r.Rank], r.TStart)
		}
	case r.Func == recorder.FuncLseek || r.Func == recorder.FuncFseek:
		st := e.fds.get(r.Arg(0))
		if st == nil {
			return
		}
		off, whence, ret := r.Arg(1), r.Arg(2), r.Arg(3)
		switch whence {
		case recorder.SeekSet:
			st.offset = off
		case recorder.SeekCur:
			st.offset += off
		case recorder.SeekEnd:
			// The file size is not derivable from one rank's record stream;
			// use the call's recorded return value, as a real tracer would.
			st.offset = ret
		}
	case r.Func == recorder.FuncFtruncate:
		if st := e.fds.get(r.Arg(0)); st != nil {
			e.sizeByPath[st.path] = r.Arg(1)
		}
	case r.Func == recorder.FuncTruncate:
		e.sizeByPath[r.Path] = r.Arg(1)
	case r.IsDataOp():
		iv, path, ok := dataInterval(r, &e.fds, e.sizeByPath)
		if !ok {
			return
		}
		iv.Origin, iv.Phase = origin, phase
		e.noteSize(path, iv.Oe)
		fa := e.get(path)
		fa.Intervals = append(fa.Intervals, iv)
	}
}

// extractCursor drains one rank's cursor into files.
func extractCursor(c RecordCursor, files map[string]*FileAccesses) error {
	ext := newRankExtractor(files)
	for c.Next() {
		ext.step(c.Record())
	}
	return c.Err()
}

// ExtractCursors is Extract over per-rank cursors instead of materialized
// slices: rank i's cursor plays the role of tr.PerRank[i]. Cursors are
// single-use and each is consumed by exactly one worker.
func ExtractCursors(cursors []RecordCursor, workers int) ([]*FileAccesses, error) {
	return ExtractCursorsCtx(context.Background(), cursors, workers)
}

// ExtractCursorsCtx is ExtractCursors under a context. The output is
// byte-identical to Extract on the same records at every worker count:
// serial walks share one map in rank order, parallel walks fold per-rank
// partial maps in rank order (the serial append order of every per-path
// table). Any cursor decode error fails the extraction; the lowest-ranked
// error is reported.
func ExtractCursorsCtx(ctx context.Context, cursors []RecordCursor, workers int) ([]*FileAccesses, error) {
	defer startPass("extract")()
	n := len(cursors)
	if EffectiveWorkers(workers) <= 1 || n <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		files := make(map[string]*FileAccesses)
		for rank, c := range cursors {
			if err := extractCursor(c, files); err != nil {
				return nil, fmt.Errorf("core: extracting rank %d: %w", rank, err)
			}
		}
		out := sortedFiles(files)
		for _, fa := range out {
			annotate(fa)
		}
		return out, nil
	}
	partial := make([]map[string]*FileAccesses, n)
	errs := make([]error, n)
	if err := ParallelForCtx(ctx, n, workers, func(r int) {
		m := make(map[string]*FileAccesses)
		errs[r] = extractCursor(cursors[r], m)
		partial[r] = m
	}); err != nil {
		return nil, err
	}
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: extracting rank %d: %w", rank, err)
		}
	}
	out := sortedFiles(mergePartials(partial))
	if err := ParallelForCtx(ctx, len(out), workers, func(i int) { annotate(out[i]) }); err != nil {
		return nil, err
	}
	return out, nil
}

// mergePartials folds per-rank partial extraction maps in rank order, which
// reproduces the serial append order of every per-path table.
func mergePartials(partial []map[string]*FileAccesses) map[string]*FileAccesses {
	merged := make(map[string]*FileAccesses)
	for r := range partial {
		for p, part := range partial[r] {
			dst, ok := merged[p]
			if !ok {
				merged[p] = part
				continue
			}
			dst.Intervals = append(dst.Intervals, part.Intervals...)
			mergeTimes(dst.OpensByRank, part.OpensByRank)
			mergeTimes(dst.ClosesByRank, part.ClosesByRank)
			mergeTimes(dst.CommitsByRank, part.CommitsByRank)
		}
	}
	return merged
}
