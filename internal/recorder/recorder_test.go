package recorder

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func mkRecord(rank int, layer Layer, fn Func, ts, te uint64, path string, args ...int64) Record {
	return Record{Rank: int32(rank), Layer: layer, Func: fn, TStart: ts, TEnd: te, Path: path, Args: args}
}

func TestFuncNames(t *testing.T) {
	cases := map[Func]string{
		FuncPwrite:            "pwrite",
		FuncH5Fflush:          "H5Fflush",
		FuncMPIFileWriteAtAll: "MPI_File_write_at_all",
		FuncGetcwd:            "getcwd",
		FuncNCPutVara:         "nc_put_vara",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", f, got, want)
		}
		if got := FuncByName(want); got != f {
			t.Errorf("FuncByName(%q) = %v, want %v", want, got, f)
		}
	}
	if FuncByName("no_such_fn") != FuncUnknown {
		t.Error("FuncByName of unknown name should be FuncUnknown")
	}
	// Every defined func has a name.
	for f := Func(1); f < Func(NumFuncs()); f++ {
		if !f.Valid() {
			t.Errorf("func %d not valid", f)
		}
		if f.String() == "" || f.String()[0] == 'f' && f.String() == "func#"+itoa(int(f)) {
			t.Errorf("func %d has no name", f)
		}
	}
}

func TestRecordPredicates(t *testing.T) {
	w := mkRecord(0, LayerPOSIX, FuncPwrite, 0, 1, "/f", 3, 100, 0, 100)
	if !w.IsDataOp() || !w.IsWriteOp() {
		t.Error("pwrite should be a data write op")
	}
	r := mkRecord(0, LayerPOSIX, FuncRead, 0, 1, "/f", 3, 100, 100)
	if !r.IsDataOp() || r.IsWriteOp() {
		t.Error("read should be data op, not write")
	}
	for _, fn := range []Func{FuncFsync, FuncFdatasync, FuncFflush, FuncClose, FuncFclose} {
		c := mkRecord(0, LayerPOSIX, fn, 0, 1, "", 3)
		if !c.IsCommitOp() {
			t.Errorf("%v should be a commit op", fn)
		}
	}
	wr := mkRecord(0, LayerPOSIX, FuncWrite, 0, 1, "/f")
	if wr.IsCommitOp() {
		t.Error("write is not a commit op")
	}
	// Layer gating: an HDF5-layer "write" is not a POSIX data op.
	h := mkRecord(0, LayerHDF5, FuncH5Dwrite, 0, 1, "/f.h5")
	if h.IsDataOp() {
		t.Error("HDF5-layer record must not be a POSIX data op")
	}
	m := mkRecord(0, LayerPOSIX, FuncGetcwd, 0, 1, "")
	if !m.IsMetadataOp() {
		t.Error("getcwd should be a metadata op")
	}
	op := mkRecord(0, LayerPOSIX, FuncOpen, 0, 1, "/f", ORdonly, 0, 3)
	if !op.IsOpenOp() {
		t.Error("open should be an open op")
	}
	cl := mkRecord(0, LayerPOSIX, FuncFclose, 0, 1, "", 3)
	if !cl.IsCloseOp() {
		t.Error("fclose should be a close op")
	}
}

func TestRecordArgAccessor(t *testing.T) {
	r := mkRecord(0, LayerPOSIX, FuncPwrite, 0, 1, "/f", 3, 100)
	if r.Arg(0) != 3 || r.Arg(1) != 100 {
		t.Error("Arg returned wrong values")
	}
	if r.Arg(5) != 0 || r.Arg(-1) != 0 {
		t.Error("out-of-range Arg should be 0")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	recs := []Record{
		mkRecord(3, LayerPOSIX, FuncOpen, 100, 120, "/data/ckpt.h5", OCreat|OWronly, 0o644, 7),
		mkRecord(3, LayerPOSIX, FuncPwrite, 130, 150, "/data/ckpt.h5", 7, 4096, 0, 4096),
		mkRecord(3, LayerHDF5, FuncH5Fflush, 160, 200, "/data/ckpt.h5"),
		mkRecord(3, LayerPOSIX, FuncClose, 210, 215, "", 7),
		mkRecord(3, LayerMPI, FuncMPIBarrier, 220, 230, "", -1, 0, 4),
	}
	var buf bytes.Buffer
	if err := EncodeRankStream(&buf, 3, recs); err != nil {
		t.Fatal(err)
	}
	rank, got, err := DecodeRankStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rank != 3 {
		t.Fatalf("decoded rank %d, want 3", rank)
	}
	if !reflect.DeepEqual(normalize(recs), normalize(got)) {
		t.Fatalf("round trip mismatch:\n in: %v\nout: %v", recs, got)
	}
}

// normalize maps empty arg slices to nil for DeepEqual.
func normalize(rs []Record) []Record {
	out := make([]Record, len(rs))
	copy(out, rs)
	for i := range out {
		if len(out[i].Args) == 0 {
			out[i].Args = nil
		}
	}
	return out
}

func TestStreamRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	paths := []string{"", "/a", "/data/x.h5", "/scratch/run/out.nc"}
	gen := func() []Record {
		n := rng.Intn(50)
		recs := make([]Record, n)
		var tprev uint64
		for i := range recs {
			tprev += uint64(rng.Intn(1000))
			recs[i] = Record{
				Rank:   9,
				Layer:  Layer(rng.Intn(NumLayers())),
				Func:   Func(1 + rng.Intn(NumFuncs()-1)),
				TStart: tprev,
				TEnd:   tprev + uint64(rng.Intn(100)),
				Path:   paths[rng.Intn(len(paths))],
				Path2:  paths[rng.Intn(len(paths))],
			}
			na := rng.Intn(5)
			for j := 0; j < na; j++ {
				recs[i].Args = append(recs[i].Args, rng.Int63n(1<<40)-1<<39)
			}
		}
		return recs
	}
	for trial := 0; trial < 50; trial++ {
		recs := gen()
		var buf bytes.Buffer
		if err := EncodeRankStream(&buf, 9, recs); err != nil {
			t.Fatal(err)
		}
		_, got, err := DecodeRankStream(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalize(recs), normalize(got)) {
			t.Fatalf("trial %d: round trip mismatch (n=%d)", trial, len(recs))
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, _, err := DecodeRankStream(bytes.NewBufferString("NOTATRACE....")); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestEncodeRejectsBackwardsTime(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeRankStream(&buf, 0, []Record{{Rank: 0, Func: FuncRead, TStart: 10, TEnd: 5}})
	if err == nil {
		t.Fatal("expected error for TEnd < TStart")
	}
}

func TestSaveLoadDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	tr := &Trace{
		Meta: Meta{App: "FLASH", Library: "HDF5", Variant: "fbs", Ranks: 2, PPN: 2, Steps: 10, Seed: 42},
		PerRank: [][]Record{
			{mkRecord(0, LayerMPI, FuncMPIBarrier, 5, 10, ""), mkRecord(0, LayerPOSIX, FuncOpen, 12, 20, "/f", ORdonly, 0, 3)},
			{mkRecord(1, LayerMPI, FuncMPIBarrier, 6, 10, ""), mkRecord(1, LayerPOSIX, FuncRead, 15, 25, "/f", 3, 64, 64)},
		},
	}
	if err := SaveDir(dir, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != tr.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, tr.Meta)
	}
	if got.NumRecords() != tr.NumRecords() {
		t.Fatalf("record count %d, want %d", got.NumRecords(), tr.NumRecords())
	}
	if !reflect.DeepEqual(normalize(got.PerRank[1]), normalize(tr.PerRank[1])) {
		t.Fatal("rank 1 records mismatch after round trip")
	}
}

func TestAlign(t *testing.T) {
	// Rank 0 has skew +100 (all stamps shifted up), rank 1 has no skew.
	tr := &Trace{
		Meta: Meta{App: "X", Ranks: 2},
		PerRank: [][]Record{
			{mkRecord(0, LayerMPI, FuncMPIBarrier, 100, 150, ""), mkRecord(0, LayerPOSIX, FuncWrite, 200, 250, "/f", 3, 10, 10)},
			{mkRecord(1, LayerMPI, FuncMPIBarrier, 0, 50, ""), mkRecord(1, LayerPOSIX, FuncRead, 300, 350, "/f", 3, 10, 10)},
		},
	}
	if err := tr.Align(); err != nil {
		t.Fatal(err)
	}
	if tr.PerRank[0][0].TEnd != 0 || tr.PerRank[1][0].TEnd != 0 {
		t.Fatal("barrier exit should be time zero after alignment")
	}
	if got := tr.PerRank[0][1].TStart; got != 50 {
		t.Fatalf("rank 0 write TStart = %d, want 50", got)
	}
	if got := tr.PerRank[1][1].TStart; got != 250 {
		t.Fatalf("rank 1 read TStart = %d, want 250", got)
	}
	if !tr.Meta.Aligned {
		t.Fatal("Aligned flag not set")
	}
	// Idempotent.
	if err := tr.Align(); err != nil {
		t.Fatal(err)
	}
	if got := tr.PerRank[0][1].TStart; got != 50 {
		t.Fatalf("second Align changed stamps: %d", got)
	}
}

func TestAlignErrorsWithoutBarrier(t *testing.T) {
	tr := &Trace{Meta: Meta{Ranks: 1}, PerRank: [][]Record{
		{mkRecord(0, LayerPOSIX, FuncRead, 1, 2, "/f")},
	}}
	if err := tr.Align(); err == nil {
		t.Fatal("expected error when no barrier record exists")
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{Meta: Meta{Ranks: 1}, PerRank: [][]Record{
		{mkRecord(0, LayerPOSIX, FuncOpen, 1, 2, "/f"), mkRecord(0, LayerPOSIX, FuncClose, 3, 4, "")},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := &Trace{Meta: Meta{Ranks: 1}, PerRank: [][]Record{
		{mkRecord(0, LayerPOSIX, FuncClose, 5, 6, ""), mkRecord(0, LayerPOSIX, FuncOpen, 1, 2, "/f")},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	wrongRank := &Trace{Meta: Meta{Ranks: 1}, PerRank: [][]Record{
		{mkRecord(2, LayerPOSIX, FuncOpen, 1, 2, "/f")},
	}}
	if err := wrongRank.Validate(); err == nil {
		t.Fatal("wrong-rank record accepted")
	}
}

func TestAllByTimeMergesSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Meta: Meta{Ranks: 3}, PerRank: make([][]Record, 3)}
		for rank := 0; rank < 3; rank++ {
			var ts uint64
			for i := 0; i < rng.Intn(20); i++ {
				ts += uint64(rng.Intn(100))
				tr.PerRank[rank] = append(tr.PerRank[rank],
					mkRecord(rank, LayerPOSIX, FuncWrite, ts, ts+1, "/f"))
			}
		}
		all := tr.AllByTime()
		if len(all) != tr.NumRecords() {
			return false
		}
		for i := 1; i < len(all); i++ {
			if all[i].TStart < all[i-1].TStart {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaConfigName(t *testing.T) {
	cases := []struct {
		meta Meta
		want string
	}{
		{Meta{App: "FLASH", Library: "HDF5", Variant: "fbs"}, "FLASH-fbs"},
		{Meta{App: "LAMMPS", Library: "ADIOS"}, "LAMMPS-ADIOS"},
		{Meta{App: "LAMMPS", Library: "POSIX"}, "LAMMPS-POSIX"},
		{Meta{App: "GTC", Library: "POSIX"}, "GTC"},
		{Meta{App: "QMCPACK", Library: "HDF5"}, "QMCPACK-HDF5"},
		{Meta{App: "HACC-IO", Library: "MPI-IO"}, "HACC-IO-MPI-IO"},
	}
	for _, c := range cases {
		if got := c.meta.ConfigName(); got != c.want {
			t.Errorf("ConfigName(%+v) = %q, want %q", c.meta, got, c.want)
		}
	}
}

func TestRankTracer(t *testing.T) {
	rt := NewRankTracer(5)
	rt.Emit(Record{Rank: 99, Layer: LayerPOSIX, Func: FuncOpen, TStart: 1, TEnd: 2, Path: "/f"})
	if rt.Len() != 1 {
		t.Fatal("Emit did not append")
	}
	if rt.Records()[0].Rank != 5 {
		t.Fatal("Emit must force the tracer's rank")
	}
}
