package wal

import "repro/internal/storage"

// Backoff is an alias of storage.Backoff: the deterministic jittered
// exponential retry schedule moved down to the storage seam (whose policy
// layer shares it with the WAL drainer); the wal name survives so existing
// callers and the faults-package property tests keep compiling unchanged.
// Delay remains a pure function of (Seed, attempt) — see storage/backoff.go.
type Backoff = storage.Backoff
