package core

import (
	"testing"

	"repro/internal/pfs"
)

// mkFA builds a FileAccesses with explicit open/close/commit tables and
// annotates the intervals.
func mkFA(path string, ivs []Interval, opens, closes, commits map[int32][]uint64) *FileAccesses {
	fa := &FileAccesses{
		Path:          path,
		Intervals:     ivs,
		OpensByRank:   opens,
		ClosesByRank:  closes,
		CommitsByRank: commits,
	}
	if fa.OpensByRank == nil {
		fa.OpensByRank = map[int32][]uint64{}
	}
	if fa.ClosesByRank == nil {
		fa.ClosesByRank = map[int32][]uint64{}
	}
	if fa.CommitsByRank == nil {
		fa.CommitsByRank = map[int32][]uint64{}
	}
	annotate(fa)
	return fa
}

func TestStrongNeverConflicts(t *testing.T) {
	fa := mkFA("/f", []Interval{
		iv(10, 0, 0, 100, true),
		iv(20, 1, 0, 100, false),
	}, nil, nil, nil)
	if got := DetectConflicts(fa, pfs.Strong); len(got) != 0 {
		t.Fatalf("strong semantics produced conflicts: %v", got)
	}
}

func TestCommitConflictWithoutCommit(t *testing.T) {
	fa := mkFA("/f", []Interval{
		iv(10, 0, 0, 100, true),
		iv(50, 1, 50, 60, false),
	}, nil, nil, nil)
	got := DetectConflicts(fa, pfs.Commit)
	if len(got) != 1 {
		t.Fatalf("conflicts = %v", got)
	}
	c := got[0]
	if c.Kind != RAW || c.SameProcess {
		t.Fatalf("conflict misclassified: %v", c)
	}
}

func TestCommitResolvedByFsyncBetween(t *testing.T) {
	fa := mkFA("/f", []Interval{
		iv(10, 0, 0, 100, true),
		iv(50, 1, 50, 60, false),
	}, nil, nil, map[int32][]uint64{0: {30}}) // writer committed at t=30
	if got := DetectConflicts(fa, pfs.Commit); len(got) != 0 {
		t.Fatalf("commit at t=30 should clear the conflict: %v", got)
	}
}

func TestCommitAfterSecondOpDoesNotHelp(t *testing.T) {
	fa := mkFA("/f", []Interval{
		iv(10, 0, 0, 100, true),
		iv(50, 1, 50, 60, false),
	}, nil, nil, map[int32][]uint64{0: {70}}) // commit too late
	if got := DetectConflicts(fa, pfs.Commit); len(got) != 1 {
		t.Fatalf("late commit must not clear the conflict: %v", got)
	}
}

func TestCommitByWrongProcessDoesNotHelp(t *testing.T) {
	fa := mkFA("/f", []Interval{
		iv(10, 0, 0, 100, true),
		iv(50, 1, 50, 60, false),
	}, nil, nil, map[int32][]uint64{1: {30}}) // reader committed, not writer
	if got := DetectConflicts(fa, pfs.Commit); len(got) != 1 {
		t.Fatalf("reader's commit must not clear the conflict: %v", got)
	}
}

func TestSessionConflictAndResolution(t *testing.T) {
	ivs := []Interval{
		iv(10, 0, 0, 100, true),
		iv(80, 1, 0, 10, false),
	}
	// No close/open pair: conflict.
	fa := mkFA("/f", ivs, nil, nil, nil)
	if got := DetectConflicts(fa, pfs.Session); len(got) != 1 {
		t.Fatalf("expected session conflict: %v", got)
	}
	// Writer closes at 30, reader opens at 50: ordered.
	fa = mkFA("/f", ivs,
		map[int32][]uint64{1: {50}},
		map[int32][]uint64{0: {30}},
		map[int32][]uint64{0: {30}})
	if got := DetectConflicts(fa, pfs.Session); len(got) != 0 {
		t.Fatalf("close-then-open should clear the conflict: %v", got)
	}
	// Close after the reader's open: still a conflict.
	fa = mkFA("/f", ivs,
		map[int32][]uint64{1: {20}},
		map[int32][]uint64{0: {30}},
		map[int32][]uint64{0: {30}})
	if got := DetectConflicts(fa, pfs.Session); len(got) != 1 {
		t.Fatalf("open-before-close must stay a conflict: %v", got)
	}
}

func TestSessionFsyncAloneDoesNotResolve(t *testing.T) {
	// The FLASH situation: fsync (commit) between the writes but no
	// close/open — conflict under session, clean under commit.
	ivs := []Interval{
		iv(10, 0, 96, 368, true),
		iv(80, 1, 96, 368, true),
	}
	fa := mkFA("/f", ivs, nil, nil, map[int32][]uint64{0: {40}})
	if got := DetectConflicts(fa, pfs.Session); len(got) != 1 {
		t.Fatalf("session must conflict despite fsync: %v", got)
	}
	if got := DetectConflicts(fa, pfs.Commit); len(got) != 0 {
		t.Fatalf("commit must be clean with fsync between: %v", got)
	}
	c := DetectConflicts(fa, pfs.Session)[0]
	if c.Kind != WAW || c.SameProcess {
		t.Fatalf("misclassified: %v", c)
	}
}

func TestSameProcessSessionCloseReopenResolves(t *testing.T) {
	// Same process writes, closes, reopens, rewrites: condition (4) permits
	// r1 == r2, so the pair is ordered.
	ivs := []Interval{
		iv(10, 0, 0, 128, true),
		iv(80, 0, 0, 128, true),
	}
	fa := mkFA("/f", ivs,
		map[int32][]uint64{0: {5, 50}},
		map[int32][]uint64{0: {30}},
		map[int32][]uint64{0: {30}})
	if got := DetectConflicts(fa, pfs.Session); len(got) != 0 {
		t.Fatalf("close-reopen by same process should order the pair: %v", got)
	}
}

func TestEventualAlwaysConflicts(t *testing.T) {
	ivs := []Interval{
		iv(10, 0, 0, 100, true),
		iv(80, 1, 0, 10, false),
	}
	fa := mkFA("/f", ivs,
		map[int32][]uint64{1: {50}},
		map[int32][]uint64{0: {30}},
		map[int32][]uint64{0: {30}})
	if got := DetectConflicts(fa, pfs.Eventual); len(got) != 1 {
		t.Fatalf("eventual semantics should flag every candidate: %v", got)
	}
}

func TestWriteAfterReadIsNotAConflict(t *testing.T) {
	fa := mkFA("/f", []Interval{
		iv(10, 0, 0, 100, false), // read first
		iv(50, 1, 0, 100, true),  // write second
	}, nil, nil, nil)
	if got := DetectConflicts(fa, pfs.Session); len(got) != 0 {
		t.Fatalf("WAR pair flagged: %v", got)
	}
}

func TestSignature(t *testing.T) {
	cs := []Conflict{
		{Kind: WAW, SameProcess: true},
		{Kind: RAW, SameProcess: false},
	}
	s := Signature(cs)
	if !s.WAWSame || !s.RAWDiff || s.WAWDiff || s.RAWSame {
		t.Fatalf("signature = %+v", s)
	}
	if !s.Any() || !s.HasDifferentProcess() {
		t.Fatal("signature predicates wrong")
	}
	var empty ConflictSignature
	if empty.Any() || empty.HasDifferentProcess() {
		t.Fatal("empty signature predicates wrong")
	}
}

func TestConflictString(t *testing.T) {
	c := Conflict{Path: "/f", Kind: WAW, SameProcess: false,
		First: iv(1, 0, 0, 10, true), Second: iv(2, 1, 5, 15, true)}
	s := c.String()
	if s == "" || c.Kind.String() != "WAW" || RAW.String() != "RAW" {
		t.Fatalf("String() broken: %q", s)
	}
}
