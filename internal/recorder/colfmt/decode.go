package colfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/recorder"
)

// Sniff reports whether data begins with the columnar magic. Dir loaders use
// it to dispatch between the columnar decoder and the v1 compatibility
// reader on a per-file basis.
func Sniff(data []byte) bool {
	return len(data) >= len(Magic) && string(data[:len(Magic)]) == Magic
}

// CorruptError reports a frame that failed CRC, framing, or column decoding
// mid-stream — damage, as opposed to a torn tail where bytes are simply
// missing (that is recorder.TruncatedError). The valid record prefix decoded
// before the bad block is always preserved alongside it.
type CorruptError struct {
	Block  int    // 0-based index of the frame that failed
	Reason string // what broke
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("colfmt: block %d corrupt: %s", e.Block, e.Reason)
}

// Reader decodes one columnar rank stream from a byte slice — memory-mapped
// by Open when the backend allows it, read whole otherwise. All decoding is
// bounds-checked against the slice; a Reader never reads outside data.
type Reader struct {
	data     []byte
	unmap    func() error // releases the mapping; nil for read-backed data
	rank     int
	declared uint64
	blockOff int      // offset of the first frame
	dictOff  int      // offset of the footer dictionary frame; -1 if unusable
	dict     []string // footer dictionary; nil when dictOff < 0
}

// NewReader parses the stream header and probes the footer of an in-memory
// columnar stream. It fails only when the header itself is unusable (bad
// magic, forged rank/count) — a torn or corrupt tail is detected during the
// cursor walk so the valid prefix stays recoverable.
func NewReader(data []byte) (*Reader, error) {
	if !Sniff(data) {
		return nil, fmt.Errorf("colfmt: bad magic")
	}
	off := len(Magic)
	urank, off, ok := uvarintAt(data, off)
	if !ok {
		return nil, &recorder.TruncatedError{}
	}
	if urank >= maxRank {
		return nil, fmt.Errorf("colfmt: rank %d out of range", urank)
	}
	declared, off, ok := uvarintAt(data, off)
	if !ok {
		return nil, &recorder.TruncatedError{}
	}
	if declared > maxRecords {
		return nil, fmt.Errorf("colfmt: record count %d too large", declared)
	}
	r := &Reader{data: data, rank: int(urank), declared: declared, blockOff: off, dictOff: -1}
	r.probeFooter()
	return r, nil
}

// probeFooter validates the trailer and footer dictionary frame. Success
// arms the fast path: the dictionary is interned once and any data block is
// decodable in isolation (absolute dictionary refs, block-local timestamps),
// which is also what lets a lenient cursor skip a corrupt mid-file block.
// Failure leaves the Reader in salvage mode: the cursor rebuilds the
// dictionary incrementally from per-block deltas instead.
func (r *Reader) probeFooter() {
	data := r.data
	if len(data) < r.blockOff+frameHdrLen+1+trailerLen {
		return
	}
	tr := data[len(data)-trailerLen:]
	if string(tr[16:]) != endMagic {
		return
	}
	dictOff := binary.LittleEndian.Uint64(tr[0:])
	count := binary.LittleEndian.Uint64(tr[8:])
	if count != r.declared {
		return
	}
	if dictOff < uint64(r.blockOff) || dictOff > uint64(len(data)-trailerLen-frameHdrLen) {
		return
	}
	fo := int(dictOff)
	if data[fo] != kindDict {
		return
	}
	plen := binary.LittleEndian.Uint32(data[fo+1:])
	wantCRC := binary.LittleEndian.Uint32(data[fo+5:])
	if uint64(plen) > maxPayload || fo+frameHdrLen+int(plen) != len(data)-trailerLen {
		return
	}
	payload := data[fo+frameHdrLen : fo+frameHdrLen+int(plen)]
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return
	}
	dict, ok := parseDict(payload, nil)
	if !ok {
		return
	}
	r.dictOff = fo
	r.dict = dict
}

// parseDict decodes a string-table payload (or a per-block delta section
// laid out the same way), appending to dst. Strings are copied out of data:
// they must outlive an unmapped Reader.
func parseDict(payload []byte, dst []string) ([]string, bool) {
	off := 0
	count, off, ok := uvarintAt(payload, off)
	if !ok || count > uint64(len(payload)) {
		return dst, false
	}
	for i := uint64(0); i < count; i++ {
		n, noff, ok := uvarintAt(payload, off)
		if !ok || n > maxString || noff+int(n) > len(payload) {
			return dst, false
		}
		dst = append(dst, string(payload[noff:noff+int(n)]))
		off = noff + int(n)
	}
	if off != len(payload) {
		return dst, false
	}
	return dst, true
}

// Rank returns the stream's rank from the header.
func (r *Reader) Rank() int { return r.rank }

// Declared returns the record count the header promises — the exact-salvage
// denominator even when the tail (and footer) is gone.
func (r *Reader) Declared() int { return int(r.declared) }

// HasFooter reports whether the footer dictionary validated, i.e. the fast
// path is armed and the stream tail is intact.
func (r *Reader) HasFooter() bool { return r.dictOff >= 0 }

// Close releases the mapping, if any. Records yielded by cursors alias the
// mapped bytes only for Args; paths are interned strings and survive Close.
// Callers must finish cursor walks (and copy any Args they keep) first.
func (r *Reader) Close() error {
	if r.unmap != nil {
		u := r.unmap
		r.unmap = nil
		r.data = nil
		return u()
	}
	return nil
}

// Stats reports what one cursor walk decoded, for per-block salvage
// accounting.
type Stats struct {
	Records int // records yielded
	Blocks  int // data blocks decoded cleanly
	Skipped int // corrupt data blocks skipped (lenient walk, intact footer)
}

// Cursor walks a stream record by record without materializing a slice: the
// yielded Record reuses one struct whose Args alias an internal buffer,
// both valid only until the next call to Next. Columns are consumed
// in place from the mapped bytes; the only per-record heap work is nothing
// at all once the args buffer has grown to its high-water mark.
type Cursor struct {
	r       *Reader
	lenient bool
	dict    []string
	incr    bool // no footer: dictionary built from per-block deltas
	off     int  // offset of the next frame
	block   int  // index of the next frame

	// Current block state: remaining bytes of each column segment.
	n, i    int
	prevT   uint64
	layers  []byte
	funcs   []byte
	tstarts []byte
	durs    []byte
	paths   []byte
	paths2  []byte
	nargs   []byte
	args    []byte

	rec    recorder.Record
	argbuf []int64

	stats Stats
	err   error
	done  bool
}

// Cursor returns a strict cursor: any torn tail or corrupt block fails the
// walk (after yielding the valid prefix).
func (r *Reader) Cursor() *Cursor { return r.newCursor(false) }

// LenientCursor returns a salvaging cursor: with an intact footer it skips
// individually corrupt blocks and keeps decoding (refs are absolute, blocks
// are time-self-contained); without one it keeps the longest valid prefix.
// Err still reports what was lost; Stats says how much survived.
func (r *Reader) LenientCursor() *Cursor { return r.newCursor(true) }

func (r *Reader) newCursor(lenient bool) *Cursor {
	c := &Cursor{r: r, lenient: lenient, off: r.blockOff}
	c.rec.Rank = int32(r.rank)
	if r.dictOff >= 0 {
		c.dict = r.dict
	} else {
		c.incr = true
	}
	return c
}

// Next advances to the next record, returning false at the end of the walk.
// After a false return, Err distinguishes a clean end (nil) from a torn or
// corrupt stream.
func (c *Cursor) Next() bool {
	for {
		if c.done {
			return false
		}
		for c.i >= c.n {
			if !c.nextBlock() {
				return false
			}
		}
		if c.decodeRecord() {
			c.i++
			c.stats.Records++
			return true
		}
		// decodeRecord set a corruption error for the current block; in a
		// lenient footer-mode walk later blocks are independent (absolute
		// dictionary refs, block-local timestamps), so drop the rest of this
		// block and resync at the next frame.
		if c.lenient && !c.incr {
			c.err = nil
			c.done = false
			c.stats.Skipped++
			c.n, c.i = 0, 0
			continue
		}
		c.done = true
		return false
	}
}

// Record returns the current record. The pointee (and its Args) are
// overwritten by the next call to Next.
func (c *Cursor) Record() *recorder.Record { return &c.rec }

// Err returns nil after a clean walk, a recorder.TruncatedError (wrapping
// recorder.ErrTruncated) for a torn tail, or a *CorruptError for damage.
func (c *Cursor) Err() error { return c.err }

// Stats returns the walk's per-block accounting so far.
func (c *Cursor) Stats() Stats { return c.stats }

func (c *Cursor) fail(err error) bool {
	c.err = err
	c.done = true
	return false
}

func (c *Cursor) failTorn() bool {
	return c.fail(&recorder.TruncatedError{Declared: c.r.declared, Decoded: c.stats.Records})
}

func (c *Cursor) failCorrupt(block int, format string, a ...any) bool {
	return c.fail(&CorruptError{Block: block, Reason: fmt.Sprintf(format, a...)})
}

// nextBlock advances the cursor to the next data block, handling stream end.
// It returns true with a loaded block, or false with done set (and err set
// unless the stream ended cleanly).
func (c *Cursor) nextBlock() bool {
	data := c.r.data
	for {
		// Footer mode: data frames occupy exactly [blockOff, dictOff).
		if !c.incr && c.off >= c.r.dictOff {
			if c.off != c.r.dictOff {
				return c.failCorrupt(c.block-1, "frame overruns the dictionary at %d", c.r.dictOff)
			}
			return c.finish()
		}
		if c.incr && c.off == len(data) {
			return c.failTorn()
		}
		if c.off+frameHdrLen > len(data) {
			return c.failTorn()
		}
		kind := data[c.off]
		plen := int(binary.LittleEndian.Uint32(data[c.off+1:]))
		wantCRC := binary.LittleEndian.Uint32(data[c.off+5:])
		if plen > maxPayload {
			return c.failCorrupt(c.block, "payload length %d exceeds %d", plen, maxPayload)
		}
		start := c.off + frameHdrLen
		if start+plen > len(data) {
			return c.failTorn()
		}
		payload := data[start : start+plen]
		block := c.block
		c.off = start + plen
		c.block++
		switch kind {
		case kindDict:
			// Incremental mode only (footer mode never reaches a dict frame):
			// the trailer was damaged but the dictionary survived. All data
			// frames precede it, so a count match means a complete walk.
			if crc32.Checksum(payload, castagnoli) != wantCRC {
				return c.failCorrupt(block, "dictionary CRC mismatch")
			}
			return c.finish()
		case kindData:
			if crc32.Checksum(payload, castagnoli) != wantCRC {
				if c.skippable(block, "CRC mismatch") {
					continue
				}
				return false
			}
			if !c.loadBlock(block, payload) {
				// loadBlock failures are all CorruptError; a lenient
				// footer-mode walk resyncs at the next frame.
				if c.lenient && !c.incr {
					c.err = nil
					c.done = false
					c.stats.Skipped++
					continue
				}
				return false
			}
			blocksDecoded.Inc()
			c.stats.Blocks++
			return true
		default:
			if c.skippable(block, "unknown frame kind") {
				continue
			}
			return false
		}
	}
}

// skippable records a corrupt frame and reports whether the walk may hop
// over it: only a lenient cursor with an intact footer can, because only
// then are later blocks self-describing (absolute dictionary refs) and the
// frame length trustworthy enough to bounds-checked resync.
func (c *Cursor) skippable(block int, reason string) bool {
	if c.lenient && !c.incr {
		c.stats.Skipped++
		return true
	}
	c.failCorrupt(block, "%s", reason)
	return false
}

// finish validates the walk's end: every declared record must have been
// yielded, otherwise blocks went missing mid-stream.
func (c *Cursor) finish() bool {
	c.done = true
	if uint64(c.stats.Records) != c.r.declared && c.err == nil {
		if c.stats.Skipped > 0 {
			// Lenient walk dropped blocks; the shortfall is accounted by the
			// caller against Declared, not an error here.
			return false
		}
		c.err = &recorder.TruncatedError{Declared: c.r.declared, Decoded: c.stats.Records}
	}
	return false
}

// loadBlock parses a CRC-valid data payload into column slices. A false
// return with c.err == *CorruptError means the payload was malformed.
func (c *Cursor) loadBlock(block int, payload []byte) bool {
	off := 0
	count, off, ok := uvarintAt(payload, off)
	if !ok || count == 0 || count > maxRecords {
		return c.failCorrupt(block, "bad record count")
	}
	if uint64(c.stats.Records)+count > c.r.declared {
		// More records than the header declared: the header and blocks
		// disagree, so the stream is forged or damaged beyond trusting.
		return c.failCorrupt(block, "blocks exceed declared record count")
	}
	nnew, off, ok := uvarintAt(payload, off)
	if !ok || nnew > count*2 {
		return c.failCorrupt(block, "bad dictionary delta count")
	}
	if c.incr {
		// Rebuild the dictionary from the delta; parseDict wants the count
		// prefix, so hand it the section starting at the count.
		dict, pok := parseDictN(payload, &off, nnew, c.dict)
		if !pok {
			return c.failCorrupt(block, "bad dictionary delta")
		}
		c.dict = dict
	} else {
		for i := uint64(0); i < nnew; i++ {
			n, noff, ok := uvarintAt(payload, off)
			if !ok || n > maxString || noff+int(n) > len(payload) {
				return c.failCorrupt(block, "bad dictionary delta")
			}
			off = noff + int(n)
		}
	}
	var segs [colSegments][]byte
	for s := 0; s < colSegments; s++ {
		slen, noff, ok := uvarintAt(payload, off)
		if !ok || noff+int(slen) > len(payload) {
			return c.failCorrupt(block, "bad column segment %d", s)
		}
		segs[s] = payload[noff : noff+int(slen)]
		off = noff + int(slen)
	}
	if off != len(payload) {
		return c.failCorrupt(block, "trailing bytes after columns")
	}
	if uint64(len(segs[colLayers])) != count {
		return c.failCorrupt(block, "layer column length mismatch")
	}
	c.n, c.i = int(count), 0
	c.layers = segs[colLayers]
	c.funcs = segs[colFuncs]
	c.tstarts = segs[colTStarts]
	c.durs = segs[colDurs]
	c.paths = segs[colPaths]
	c.paths2 = segs[colPaths2]
	c.nargs = segs[colNArgs]
	c.args = segs[colArgs]
	return true
}

// parseDictN appends n delta strings (uvarint len + bytes each) from
// payload at *off to dst, advancing *off.
func parseDictN(payload []byte, off *int, n uint64, dst []string) ([]string, bool) {
	o := *off
	for i := uint64(0); i < n; i++ {
		l, noff, ok := uvarintAt(payload, o)
		if !ok || l > maxString || noff+int(l) > len(payload) {
			return dst, false
		}
		dst = append(dst, string(payload[noff:noff+int(l)]))
		o = noff + int(l)
	}
	*off = o
	return dst, true
}

// decodeRecord fills c.rec from the current block's columns. A false return
// set a corruption error on the current block.
func (c *Cursor) decodeRecord() bool {
	block := c.block - 1
	layer := c.layers[c.i] // length validated against count in loadBlock
	fn, ok := takeUvarint(&c.funcs)
	if !ok {
		return c.failCorrupt(block, "funcs column short")
	}
	var tstart uint64
	if c.i == 0 {
		tstart, ok = takeUvarint(&c.tstarts)
	} else {
		var d int64
		d, ok = takeVarint(&c.tstarts)
		tstart = c.prevT + uint64(d)
	}
	if !ok {
		return c.failCorrupt(block, "tstarts column short")
	}
	c.prevT = tstart
	dur, ok := takeUvarint(&c.durs)
	if !ok {
		return c.failCorrupt(block, "durs column short")
	}
	tend := tstart + dur
	if tend < tstart {
		return c.failCorrupt(block, "duration overflows")
	}
	pref, ok := takeUvarint(&c.paths)
	if !ok {
		return c.failCorrupt(block, "paths column short")
	}
	path, ok := c.resolve(pref)
	if !ok {
		return c.failCorrupt(block, "path ref %d out of dictionary (%d entries)", pref, len(c.dict))
	}
	pref2, ok := takeUvarint(&c.paths2)
	if !ok {
		return c.failCorrupt(block, "paths2 column short")
	}
	path2, ok := c.resolve(pref2)
	if !ok {
		return c.failCorrupt(block, "path2 ref %d out of dictionary (%d entries)", pref2, len(c.dict))
	}
	nargs, ok := takeUvarint(&c.nargs)
	if !ok {
		return c.failCorrupt(block, "nargs column short")
	}
	if nargs > maxArgs {
		return c.failCorrupt(block, "%d args too many", nargs)
	}
	rec := &c.rec
	rec.Layer = recorder.Layer(layer)
	rec.Func = recorder.Func(fn)
	rec.TStart = tstart
	rec.TEnd = tend
	rec.Path = path
	rec.Path2 = path2
	if nargs == 0 {
		rec.Args = nil
	} else {
		if cap(c.argbuf) < int(nargs) {
			c.argbuf = make([]int64, nargs)
		}
		rec.Args = c.argbuf[:nargs]
		for j := range rec.Args {
			a, ok := takeVarint(&c.args)
			if !ok {
				return c.failCorrupt(block, "args column short")
			}
			rec.Args[j] = a
		}
	}
	return true
}

// resolve maps a wire path ref (0 = none, k >= 1 = dict[k-1]) to its string.
func (c *Cursor) resolve(ref uint64) (string, bool) {
	if ref == 0 {
		return "", true
	}
	if ref > uint64(len(c.dict)) {
		return "", false
	}
	return c.dict[ref-1], true
}

// Materialize decodes the whole stream into a fresh []Record — the shim for
// callers that still want slices. Args are copied into chunked arenas so
// records stay valid after Close. On error the valid prefix is returned
// alongside it, mirroring recorder.DecodeRankStream.
func (r *Reader) Materialize() ([]recorder.Record, error) {
	return r.materialize(r.Cursor())
}

// MaterializeLenient is Materialize on a salvaging walk; it additionally
// returns the per-block Stats. A non-nil error describes what was lost (the
// returned prefix is still valid); skipped blocks alone do not error.
func (r *Reader) MaterializeLenient() ([]recorder.Record, Stats, error) {
	c := r.LenientCursor()
	recs, err := r.materialize(c)
	return recs, c.Stats(), err
}

const argArenaLen = 8192

func (r *Reader) materialize(c *Cursor) ([]recorder.Record, error) {
	// A record costs at least two column bytes, so len(data) safely bounds a
	// forged declared count's preallocation.
	prealloc := r.declared
	if prealloc > uint64(len(r.data)) {
		prealloc = uint64(len(r.data))
	}
	records := make([]recorder.Record, 0, prealloc)
	var arena []int64
	for c.Next() {
		rec := c.rec
		if n := len(rec.Args); n > 0 {
			if len(arena) < n {
				arena = make([]int64, argArenaLen)
			}
			copy(arena, rec.Args)
			rec.Args = arena[:n:n]
			arena = arena[n:]
		}
		records = append(records, rec)
	}
	return records, c.Err()
}

// uvarintAt decodes a uvarint from data at off, returning the value, the
// new offset, and whether the read stayed in bounds.
func uvarintAt(data []byte, off int) (uint64, int, bool) {
	if off < 0 || off > len(data) {
		return 0, 0, false
	}
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, false
	}
	return v, off + n, true
}

// takeUvarint consumes a uvarint from the front of a column slice.
func takeUvarint(col *[]byte) (uint64, bool) {
	v, n := binary.Uvarint(*col)
	if n <= 0 {
		return 0, false
	}
	*col = (*col)[n:]
	return v, true
}

// takeVarint consumes a varint from the front of a column slice.
func takeVarint(col *[]byte) (int64, bool) {
	v, n := binary.Varint(*col)
	if n <= 0 {
		return 0, false
	}
	*col = (*col)[n:]
	return v, true
}
