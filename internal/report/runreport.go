package report

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// RunReport is the per-application-run digest the paper's published
// artifact ships alongside each trace: function counters, I/O sizes,
// per-file access and conflict summaries.
type RunReport struct {
	Config  string
	Ranks   int
	Records int

	// FuncCounts tallies every traced call by layer and function.
	FuncCounts map[recorder.Layer]map[recorder.Func]int
	// BytesRead/BytesWritten are POSIX-layer data totals.
	BytesRead, BytesWritten int64
	// SizeHistogram buckets POSIX data accesses by power-of-two size
	// (bucket [2^k, 2^(k+1)); zero-length accesses get a dedicated bucket).
	SizeHistogram *obs.Histogram
	Files         []FileReport
}

// FileReport summarizes one file.
type FileReport struct {
	Path             string
	Reads, Writes    int
	BytesRead        int64
	BytesWritten     int64
	Ranks            int
	SessionConflicts int
	CommitConflicts  int
}

// BuildRunReport computes the digest for a trace, extracting through the
// process-wide cache (so a report after an analysis pays no second
// extraction).
func BuildRunReport(tr *recorder.Trace) *RunReport {
	return BuildRunReportFrom(tr, core.ExtractShared(tr))
}

// BuildRunReportFrom computes the digest from pre-extracted accesses —
// callers that already hold the extraction (or a cache handle) pass it in
// instead of re-extracting. fas is read, never mutated.
func BuildRunReportFrom(tr *recorder.Trace, fas []*core.FileAccesses) *RunReport {
	rep := &RunReport{
		Config:        tr.Meta.ConfigName(),
		Ranks:         tr.Meta.Ranks,
		Records:       tr.NumRecords(),
		FuncCounts:    make(map[recorder.Layer]map[recorder.Func]int),
		SizeHistogram: obs.NewHistogram(),
	}
	for _, rs := range tr.PerRank {
		for i := range rs {
			r := &rs[i]
			m, ok := rep.FuncCounts[r.Layer]
			if !ok {
				m = make(map[recorder.Func]int)
				rep.FuncCounts[r.Layer] = m
			}
			m[r.Func]++
		}
	}
	models := []pfs.Semantics{pfs.Session, pfs.Commit}
	rep.Files = make([]FileReport, 0, len(fas))
	for _, fa := range fas {
		fr := FileReport{Path: fa.Path}
		ranks := map[int32]bool{}
		for _, iv := range fa.Intervals {
			n := iv.Oe - iv.Os
			ranks[iv.Rank] = true
			if iv.Write {
				fr.Writes++
				fr.BytesWritten += n
				rep.BytesWritten += n
			} else {
				fr.Reads++
				fr.BytesRead += n
				rep.BytesRead += n
			}
			rep.SizeHistogram.Observe(n)
		}
		fr.Ranks = len(ranks)
		lists := core.DetectConflictsMulti(fa, models)
		fr.SessionConflicts = len(lists[0])
		fr.CommitConflicts = len(lists[1])
		rep.Files = append(rep.Files, fr)
	}
	slices.SortFunc(rep.Files, func(a, b FileReport) int { return strings.Compare(a.Path, b.Path) })
	return rep
}

// Render formats the report for terminals.
func (r *RunReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Run report: %s (%d ranks, %d trace records)\n\n", r.Config, r.Ranks, r.Records)
	fmt.Fprintf(&b, "Data volume: %s written, %s read\n\n", human(r.BytesWritten), human(r.BytesRead))

	b.WriteString("Function counters by layer:\n")
	layers := make([]recorder.Layer, 0, len(r.FuncCounts))
	for l := range r.FuncCounts {
		layers = append(layers, l)
	}
	sort.Slice(layers, func(i, j int) bool { return layers[i] < layers[j] })
	for _, l := range layers {
		fns := make([]recorder.Func, 0, len(r.FuncCounts[l]))
		for f := range r.FuncCounts[l] {
			fns = append(fns, f)
		}
		sort.Slice(fns, func(i, j int) bool {
			ci, cj := r.FuncCounts[l][fns[i]], r.FuncCounts[l][fns[j]]
			if ci != cj {
				return ci > cj
			}
			return fns[i].String() < fns[j].String() // total order: ties came from a map
		})
		fmt.Fprintf(&b, "  [%s]", l)
		for _, f := range fns {
			fmt.Fprintf(&b, " %s:%d", f, r.FuncCounts[l][f])
		}
		b.WriteString("\n")
	}

	b.WriteString("\nAccess-size histogram (POSIX data ops):\n")
	hs := r.SizeHistogram.Snapshot()
	if hs.Zero > 0 {
		fmt.Fprintf(&b, "  %18s  %d\n", "zero-length", hs.Zero)
	}
	for _, bk := range hs.Buckets { // occupied buckets, ascending
		fmt.Fprintf(&b, "  [%7s, %7s)  %d\n", human(bk.Lo), human(bk.Hi), bk.N)
	}

	b.WriteString("\nPer-file summary (top 20 by traffic):\n")
	files := append([]FileReport(nil), r.Files...)
	sort.Slice(files, func(i, j int) bool {
		ti := files[i].BytesWritten + files[i].BytesRead
		tj := files[j].BytesWritten + files[j].BytesRead
		if ti != tj {
			return ti > tj
		}
		return files[i].Path < files[j].Path // sort.Slice is unstable; keep ties total
	})
	if len(files) > 20 {
		files = files[:20]
	}
	fmt.Fprintf(&b, "  %-34s %6s %6s %9s %9s %5s %8s %8s\n",
		"path", "reads", "writes", "rd bytes", "wr bytes", "ranks", "conf(se)", "conf(co)")
	for _, f := range files {
		fmt.Fprintf(&b, "  %-34s %6d %6d %9s %9s %5d %8d %8d\n",
			trunc(f.Path, 34), f.Reads, f.Writes, human(f.BytesRead), human(f.BytesWritten),
			f.Ranks, f.SessionConflicts, f.CommitConflicts)
	}
	if extra := len(r.Files) - len(files); extra > 0 {
		fmt.Fprintf(&b, "  ... %d more files\n", extra)
	}
	return b.String()
}

func human(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n+3:]
}
