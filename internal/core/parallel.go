package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// Parallel analysis engine. Every pass of the paper's offline analysis is
// embarrassingly parallel across rank streams (extraction, census, metadata
// events) or across files (conflict detection, pattern classification), so
// each *Parallel entry point shards its input over a bounded worker pool
// and then performs a deterministic merge: shard results land in
// index-addressed slots and are folded back in input (rank or path) order,
// so the output is identical to the serial pass — the serial functions
// remain the correctness oracle the equivalence tests compare against.
//
// Every entry point has a Ctx variant that threads a context.Context through
// the pool: cancellation is observed at task boundaries (no index is handed
// out after the context is done; in-flight tasks finish), and the variant
// returns ctx.Err() instead of a partial result. The plain names wrap the
// Ctx variants with context.Background().

// EffectiveWorkers normalizes a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is used as given.
func EffectiveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded pool of
// workers goroutines (see EffectiveWorkers; capped at n). Indices are
// handed out by an atomic counter, so the pool load-balances uneven work
// items. fn must be safe to call concurrently for distinct indices; the
// call returns once every index has been processed.
func ParallelFor(n, workers int, fn func(i int)) {
	ParallelForCtx(context.Background(), n, workers, fn)
}

// ParallelForCtx is ParallelFor under a context: the pool stops handing out
// indices once ctx is done and returns ctx.Err(). Cancellation is checked
// before every index — one in-flight fn per worker may still complete, so a
// cancelled call stops within one task boundary. A nil error means every
// index ran.
func ParallelForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	workers = EffectiveWorkers(workers)
	if workers > n {
		workers = n
	}
	poolRuns.Inc()
	poolTasks.Add(int64(n))
	poolWorkers.Set(int64(workers))
	poolQueue.SetMax(int64(n))
	if workers <= 1 {
		poolSerial.Inc()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	// Utilization accounting (sum of per-worker active time over pool-size x
	// wall) and per-worker spans are live only while telemetry is on; the
	// task loop itself carries no instrumentation, so the disabled path adds
	// nothing per task.
	instrumented := obs.Default().Enabled()
	tracer := obs.Default().Tracer()
	start := time.Now()
	var busyNS atomic.Int64
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			span := tracer.Start("pool-worker", "core.pool").OnLane(w + 1)
			var t0 time.Time
			if instrumented {
				t0 = time.Now()
			}
			for ctx.Err() == nil {
				i := int(next.Add(1))
				if i >= n {
					break
				}
				fn(i)
			}
			if instrumented {
				busyNS.Add(time.Since(t0).Nanoseconds())
			}
			span.End()
		}(w)
	}
	wg.Wait()
	if instrumented {
		if wall := time.Since(start).Nanoseconds(); wall > 0 {
			poolUtilization.Set(busyNS.Load() * 100 / (int64(workers) * wall))
		}
	}
	return ctx.Err()
}

// ExtractParallel is the sharded Extract: rank streams are processed
// concurrently into per-rank partial maps, merged in rank order (which
// reproduces the serial append order of every per-path table), and the
// per-file §5.2 annotation pass is then sharded across files. Output is
// identical to Extract.
func ExtractParallel(tr *recorder.Trace, workers int) []*FileAccesses {
	fas, _ := ExtractParallelCtx(context.Background(), tr, workers)
	return fas
}

// ExtractParallelCtx is ExtractParallel under a context.
func ExtractParallelCtx(ctx context.Context, tr *recorder.Trace, workers int) ([]*FileAccesses, error) {
	defer startPass("extract")()
	n := len(tr.PerRank)
	if EffectiveWorkers(workers) <= 1 || n <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return Extract(tr), nil
	}
	partial := make([]map[string]*FileAccesses, n)
	if err := ParallelForCtx(ctx, n, workers, func(r int) {
		m := make(map[string]*FileAccesses)
		extractRank(tr.PerRank[r], m)
		partial[r] = m
	}); err != nil {
		return nil, err
	}

	out := sortedFiles(mergePartials(partial)) // rank order = serial append order
	if err := ParallelForCtx(ctx, len(out), workers, func(i int) { annotate(out[i]) }); err != nil {
		return nil, err
	}
	return out, nil
}

func mergeTimes(dst, src map[int32][]uint64) {
	for r, ts := range src {
		dst[r] = append(dst[r], ts...)
	}
}

// ConflictsForFiles runs per-file conflict detection over already-extracted
// accesses on a worker pool and merges in path order — the shared core of
// AnalyzeConflictsParallel and semfs.AnalyzeParallel (which reuses one
// extraction across passes). fas must not be mutated concurrently.
func ConflictsForFiles(fas []*FileAccesses, model pfs.Semantics, workers int) (map[string][]Conflict, ConflictSignature) {
	byFile, sig, _ := ConflictsForFilesCtx(context.Background(), fas, model, workers)
	return byFile, sig
}

// ConflictsForFilesCtx is ConflictsForFiles under a context.
func ConflictsForFilesCtx(ctx context.Context, fas []*FileAccesses, model pfs.Semantics, workers int) (map[string][]Conflict, ConflictSignature, error) {
	defer startPass("conflicts")()
	per := make([][]Conflict, len(fas))
	if err := ParallelForCtx(ctx, len(fas), workers, func(i int) { per[i] = DetectConflicts(fas[i], model) }); err != nil {
		return nil, ConflictSignature{}, err
	}
	byFile := make(map[string][]Conflict)
	var all []Conflict
	for i, fa := range fas {
		if len(per[i]) > 0 {
			byFile[fa.Path] = per[i]
			all = append(all, per[i]...)
		}
	}
	return byFile, Signature(all), nil
}

// AnalyzeConflictsParallel is the sharded AnalyzeConflicts.
func AnalyzeConflictsParallel(tr *recorder.Trace, model pfs.Semantics, workers int) (map[string][]Conflict, ConflictSignature) {
	return ConflictsForFiles(ExtractParallel(tr, workers), model, workers)
}

// ConflictsAllForFiles runs the fused multi-model sweep over
// already-extracted accesses on a worker pool, merging in path order —
// per-model results are identical to ConflictsForFiles. fas must not be
// mutated concurrently.
func ConflictsAllForFiles(fas []*FileAccesses, models []pfs.Semantics, workers int) []ModelConflicts {
	ms, _ := ConflictsAllForFilesCtx(context.Background(), fas, models, workers)
	return ms
}

// ConflictsAllForFilesCtx is ConflictsAllForFiles under a context.
func ConflictsAllForFilesCtx(ctx context.Context, fas []*FileAccesses, models []pfs.Semantics, workers int) ([]ModelConflicts, error) {
	defer startPass("fused-conflicts")()
	per := make([][][]Conflict, len(fas))
	if err := ParallelForCtx(ctx, len(fas), workers, func(i int) {
		per[i] = DetectConflictsMulti(fas[i], models)
	}); err != nil {
		return nil, err
	}
	ms := make([]ModelConflicts, len(models))
	for j, m := range models {
		ms[j] = ModelConflicts{Model: m, ByFile: make(map[string][]Conflict)}
	}
	for i, fa := range fas { // path order
		for j, cs := range per[i] {
			if len(cs) > 0 {
				ms[j].ByFile[fa.Path] = cs
				ms[j].Signature.merge(Signature(cs))
			}
		}
	}
	return ms, nil
}

// AnalyzeParallel is the sharded Analyze: one (cached) extraction, then one
// fused sweep evaluating both model predicates per candidate pair.
func AnalyzeParallel(tr *recorder.Trace, workers int) Verdict {
	v, _ := AnalyzeParallelCtx(context.Background(), tr, workers)
	return v
}

// AnalyzeParallelCtx is AnalyzeParallel under a context: a cancelled ctx
// stops the sweep within one per-file task boundary and returns ctx.Err().
func AnalyzeParallelCtx(ctx context.Context, tr *recorder.Trace, workers int) (Verdict, error) {
	defer startPass("analyze")()
	fas, err := ExtractSharedCtx(ctx, tr, workers)
	if err != nil {
		return Verdict{}, err
	}
	ms, err := ConflictsAllForFilesCtx(ctx, fas, []pfs.Semantics{pfs.Session, pfs.Commit}, workers)
	if err != nil {
		return Verdict{}, err
	}
	return VerdictFrom(ms[0].Signature, ms[1].Signature), nil
}

// MetadataCensusParallel is the sharded MetadataCensus: per-rank partial
// censuses merged by addition (commutative, so any merge order is exact).
func MetadataCensusParallel(tr *recorder.Trace, workers int) *Census {
	c, _ := MetadataCensusParallelCtx(context.Background(), tr, workers)
	return c
}

// MetadataCensusParallelCtx is MetadataCensusParallel under a context.
func MetadataCensusParallelCtx(ctx context.Context, tr *recorder.Trace, workers int) (*Census, error) {
	defer startPass("census")()
	n := len(tr.PerRank)
	if EffectiveWorkers(workers) <= 1 || n <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return MetadataCensus(tr), nil
	}
	partial := make([]*Census, n)
	if err := ParallelForCtx(ctx, n, workers, func(r int) {
		c := &Census{Counts: make(map[string]map[recorder.Func]int)}
		censusRank(tr.PerRank[r], c)
		partial[r] = c
	}); err != nil {
		return nil, err
	}
	out := &Census{Counts: make(map[string]map[recorder.Func]int)}
	for _, c := range partial {
		for origin, m := range c.Counts {
			dst, ok := out.Counts[origin]
			if !ok {
				dst = make(map[recorder.Func]int)
				out.Counts[origin] = dst
			}
			for f, v := range m {
				dst[f] += v
			}
		}
	}
	return out, nil
}

// DetectMetadataConflictsParallel is the sharded DetectMetadataConflicts:
// per-rank event collection in parallel, folded in rank order, then the
// per-path scans sharded across paths. The final total-order sort makes the
// merge order immaterial.
func DetectMetadataConflictsParallel(tr *recorder.Trace, workers int) []MetaConflict {
	cs, _ := DetectMetadataConflictsParallelCtx(context.Background(), tr, workers)
	return cs
}

// DetectMetadataConflictsParallelCtx is DetectMetadataConflictsParallel
// under a context.
func DetectMetadataConflictsParallelCtx(ctx context.Context, tr *recorder.Trace, workers int) ([]MetaConflict, error) {
	defer startPass("meta-conflicts")()
	n := len(tr.PerRank)
	if EffectiveWorkers(workers) <= 1 || n <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return DetectMetadataConflicts(tr), nil
	}
	locals := make([][]metaEvent, n)
	if err := ParallelForCtx(ctx, n, workers, func(r int) { locals[r] = metaEventsRank(tr.PerRank[r]) }); err != nil {
		return nil, err
	}
	events := make(map[string][]metaEvent)
	for _, local := range locals { // rank order, as in the serial pass
		addMetaEvents(events, local)
	}
	paths := make([]string, 0, len(events))
	for p := range events {
		paths = append(paths, p)
	}
	per := make([][]MetaConflict, len(paths))
	if err := ParallelForCtx(ctx, len(paths), workers, func(i int) {
		per[i] = metaConflictsForPath(paths[i], events[paths[i]])
	}); err != nil {
		return nil, err
	}
	var out []MetaConflict
	for _, cs := range per {
		out = append(out, cs...)
	}
	sortMetaConflicts(out)
	return out, nil
}

// GlobalPatternParallel is the sharded GlobalPattern (per-file mixes are
// summed; addition is commutative so the merge is exact).
func GlobalPatternParallel(fas []*FileAccesses, workers int) PatternMix {
	m, _ := patternParallel(context.Background(), fas, workers, globalPatternFile)
	return m
}

// GlobalPatternParallelCtx is GlobalPatternParallel under a context.
func GlobalPatternParallelCtx(ctx context.Context, fas []*FileAccesses, workers int) (PatternMix, error) {
	return patternParallel(ctx, fas, workers, globalPatternFile)
}

// LocalPatternParallel is the sharded LocalPattern.
func LocalPatternParallel(fas []*FileAccesses, workers int) PatternMix {
	m, _ := patternParallel(context.Background(), fas, workers, localPatternFile)
	return m
}

// LocalPatternParallelCtx is LocalPatternParallel under a context.
func LocalPatternParallelCtx(ctx context.Context, fas []*FileAccesses, workers int) (PatternMix, error) {
	return patternParallel(ctx, fas, workers, localPatternFile)
}

func patternParallel(ctx context.Context, fas []*FileAccesses, workers int, file func(*FileAccesses) PatternMix) (PatternMix, error) {
	defer startPass("patterns")()
	per := make([]PatternMix, len(fas))
	if err := ParallelForCtx(ctx, len(fas), workers, func(i int) { per[i] = file(fas[i]) }); err != nil {
		return PatternMix{}, err
	}
	var mix PatternMix
	for _, m := range per {
		mix = mix.plus(m)
	}
	return mix, nil
}

// ClassifyHighLevelParallel is the sharded ClassifyHighLevel: the per-file
// summaries (the expensive part — per-rank layout classification) are
// computed concurrently, then compacted in path order and grouped serially,
// reproducing the serial family order exactly. opts.Exclude, if supplied,
// must be safe for concurrent calls.
func ClassifyHighLevelParallel(fas []*FileAccesses, opts HLOptions, workers int) []HighLevelPattern {
	ps, _ := ClassifyHighLevelParallelCtx(context.Background(), fas, opts, workers)
	return ps
}

// ClassifyHighLevelParallelCtx is ClassifyHighLevelParallel under a context.
func ClassifyHighLevelParallelCtx(ctx context.Context, fas []*FileAccesses, opts HLOptions, workers int) ([]HighLevelPattern, error) {
	defer startPass("classify")()
	o := opts.withDefaults()
	slots := make([]*fileSummary, len(fas))
	if err := ParallelForCtx(ctx, len(fas), workers, func(i int) {
		fa := fas[i]
		if o.Exclude(fa.Path) || len(fa.Intervals) == 0 {
			return
		}
		slots[i] = summarize(fa, o.MetaSizeThreshold)
	}); err != nil {
		return nil, err
	}
	sums := make([]*fileSummary, 0, len(slots))
	for _, s := range slots {
		if s != nil {
			sums = append(sums, s)
		}
	}
	return groupSummaries(sums, o.WorldSize), nil
}
