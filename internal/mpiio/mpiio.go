// Package mpiio emulates the MPI-IO library layer. Independent operations
// translate to positional POSIX I/O; collective operations implement
// two-phase I/O: ranks exchange their requests, a configurable set of
// aggregator processes (by default one per compute node) assembles
// contiguous file domains, and only the aggregators touch the file system —
// the mechanism behind the paper's M-1 access patterns (FLASH-fbs, VPIC-IO,
// LAMMPS-MPIIO) and the "six aggregator processes" of Figure 2(a).
//
// Every MPI_File_* call emits an MPI-IO-layer trace record; the POSIX
// traffic it generates is recorded by the posix layer underneath, giving the
// multi-level traces the paper's analysis consumes.
package mpiio

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/mpi"
	"repro/internal/posix"
	"repro/internal/recorder"
)

// Access mode flags (MPI_MODE_*-like).
const (
	ModeRdonly = 1 << iota
	ModeWronly
	ModeRdwr
	ModeCreate
	ModeExcl
	ModeAppend
)

// Options configures the emulated library.
type Options struct {
	// CBNodes is the number of collective-buffering aggregators
	// (ROMIO's cb_nodes). 0 means one aggregator per compute node.
	CBNodes int
	// CBBufferSize caps each aggregator's contiguous write size; larger
	// domains are written in several consecutive chunks. 0 means 16 MiB.
	// With CyclicDomains it is the block size of the round-robin domains.
	CBBufferSize int64
	// CyclicDomains assigns collective-buffering file domains block-cyclically
	// (blocks of CBBufferSize handed round-robin to the aggregators) instead
	// of as one contiguous span per aggregator. This makes each aggregator
	// write several strided blocks per collective call — the "strided
	// cyclic" in-file layout of Table 3 (FLASH-fbs, VPIC-IO).
	CyclicDomains bool
}

func (o Options) withDefaults(nodes int) Options {
	if o.CBNodes <= 0 {
		o.CBNodes = nodes
	}
	if o.CBBufferSize <= 0 {
		o.CBBufferSize = 16 << 20
	}
	return o
}

// File is one rank's handle on a file opened through MPI-IO.
type File struct {
	comm   *mpi.Proc
	os     *posix.Proc
	tracer *recorder.RankTracer
	opts   Options

	fd       int
	path     string
	amode    int
	disp     int64 // file-view displacement
	indepPtr int64 // individual file pointer
	aggs     []int // aggregator ranks
	closed   bool
}

// Open opens path collectively on every rank of the communicator.
func Open(comm *mpi.Proc, os *posix.Proc, tracer *recorder.RankTracer, path string, amode int, opts Options) (*File, error) {
	o := opts.withDefaults(comm.Nodes())
	ts := os.Clock().Stamp()
	flags := amodeToPosix(amode)
	fd, err := os.Open(path, flags, 0o644)
	f := &File{comm: comm, os: os, tracer: tracer, opts: o, fd: fd, path: path, amode: amode}
	f.aggs = aggregators(comm, o.CBNodes)
	emit(f, recorder.FuncMPIFileOpen, ts, path, int64(amode), int64(fd))
	if err != nil {
		return nil, fmt.Errorf("mpiio: %w", err)
	}
	// MPI_File_open is collective.
	comm.Barrier()
	return f, nil
}

func amodeToPosix(amode int) int {
	var flags int
	switch {
	case amode&ModeRdwr != 0:
		flags = recorder.ORdwr
	case amode&ModeWronly != 0:
		flags = recorder.OWronly
	default:
		flags = recorder.ORdonly
	}
	if amode&ModeCreate != 0 {
		flags |= recorder.OCreat
	}
	if amode&ModeAppend != 0 {
		flags |= recorder.OAppend
	}
	return flags
}

// aggregators picks the first rank of each of the first cbNodes nodes.
func aggregators(comm *mpi.Proc, cbNodes int) []int {
	// Node layout is block-wise; infer the PPN from node of rank size-1.
	// We enumerate node-leader ranks: a rank is a leader if its node differs
	// from rank-1's node. Rank 0 is always a leader.
	var leaders []int
	prevNode := -1
	for r := 0; r < comm.Size(); r++ {
		n := comm.NodeOfRank(r)
		if n != prevNode {
			leaders = append(leaders, r)
			prevNode = n
		}
	}
	if cbNodes < len(leaders) {
		leaders = leaders[:cbNodes]
	}
	return leaders
}

func emit(f *File, fn recorder.Func, ts uint64, path string, args ...int64) {
	f.tracer.Emit(recorder.Record{
		Layer:  recorder.LayerMPIIO,
		Func:   fn,
		TStart: ts,
		TEnd:   f.os.Clock().Stamp(),
		Path:   path,
		Args:   args,
	})
}

// SetView sets the file-view displacement (etype/filetype structure beyond
// the displacement is recorded but not interpreted; the applications in the
// study use explicit offsets).
func (f *File) SetView(disp, blocklen, stride int64) {
	ts := f.os.Clock().Stamp()
	f.disp = disp
	emit(f, recorder.FuncMPIFileSetView, ts, "", int64(f.fd), disp, blocklen, stride)
}

// WriteAt writes independently at the given offset (relative to the view
// displacement).
func (f *File) WriteAt(off int64, data []byte) error {
	ts := f.os.Clock().Stamp()
	_, err := f.os.Pwrite(f.fd, data, f.disp+off)
	emit(f, recorder.FuncMPIFileWriteAt, ts, "", int64(f.fd), int64(len(data)), off)
	return err
}

// ReadAt reads independently at the given offset.
func (f *File) ReadAt(off, n int64) ([]byte, error) {
	ts := f.os.Clock().Stamp()
	data, err := f.os.Pread(f.fd, n, f.disp+off)
	emit(f, recorder.FuncMPIFileReadAt, ts, "", int64(f.fd), n, off)
	return data, err
}

// Write writes independently at the individual file pointer.
func (f *File) Write(data []byte) error {
	ts := f.os.Clock().Stamp()
	_, err := f.os.Pwrite(f.fd, data, f.disp+f.indepPtr)
	if err == nil {
		f.indepPtr += int64(len(data))
	}
	emit(f, recorder.FuncMPIFileWrite, ts, "", int64(f.fd), int64(len(data)))
	return err
}

// Read reads independently at the individual file pointer.
func (f *File) Read(n int64) ([]byte, error) {
	ts := f.os.Clock().Stamp()
	data, err := f.os.Pread(f.fd, n, f.disp+f.indepPtr)
	if err == nil {
		f.indepPtr += int64(len(data))
	}
	emit(f, recorder.FuncMPIFileRead, ts, "", int64(f.fd), n)
	return data, err
}

// SeekPtr moves the individual file pointer (MPI_File_seek).
func (f *File) SeekPtr(off int64, whence int) int64 {
	ts := f.os.Clock().Stamp()
	switch whence {
	case recorder.SeekSet:
		f.indepPtr = off
	case recorder.SeekCur:
		f.indepPtr += off
	case recorder.SeekEnd:
		// View end is not tracked; treat as absolute (applications in the
		// study do not seek relative to end through MPI-IO).
		f.indepPtr = off
	}
	emit(f, recorder.FuncMPIFileSeek, ts, "", int64(f.fd), off, int64(whence))
	return f.indepPtr
}

// request is one rank's contribution to a collective operation.
type request struct {
	Rank int64
	Off  int64
	Len  int64
}

func encodeRequest(off int64, data []byte) []byte {
	buf := make([]byte, 16+len(data))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(off))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(data)))
	copy(buf[16:], data)
	return buf
}

func decodeRequest(b []byte) (off int64, data []byte) {
	off = int64(binary.LittleEndian.Uint64(b[0:8]))
	n := int64(binary.LittleEndian.Uint64(b[8:16]))
	return off, b[16 : 16+n]
}

// WriteAtAll performs a collective write: every rank contributes (off, data)
// — possibly empty — and the aggregator ranks perform the actual file
// writes over contiguous file domains (two-phase I/O).
func (f *File) WriteAtAll(off int64, data []byte) error {
	ts := f.os.Clock().Stamp()
	slots := f.comm.Allgather(encodeRequest(f.disp+off, data))
	err := f.aggregateWrite(slots)
	emit(f, recorder.FuncMPIFileWriteAtAll, ts, "", int64(f.fd), int64(len(data)), off)
	return err
}

// WriteAll is the collective write at the individual file pointer.
func (f *File) WriteAll(data []byte) error {
	ts := f.os.Clock().Stamp()
	slots := f.comm.Allgather(encodeRequest(f.disp+f.indepPtr, data))
	err := f.aggregateWrite(slots)
	if err == nil {
		f.indepPtr += int64(len(data))
	}
	emit(f, recorder.FuncMPIFileWriteAll, ts, "", int64(f.fd), int64(len(data)))
	return err
}

func (f *File) aggregateWrite(slots [][]byte) error {
	reqs := make([]request, 0, len(slots))
	payloads := make([][]byte, len(slots))
	var lo, hi int64
	first := true
	for r, s := range slots {
		off, data := decodeRequest(s)
		if len(data) == 0 {
			continue
		}
		reqs = append(reqs, request{Rank: int64(r), Off: off, Len: int64(len(data))})
		payloads[r] = data
		if first || off < lo {
			lo = off
		}
		if first || off+int64(len(data)) > hi {
			hi = off + int64(len(data))
		}
		first = false
	}
	if first {
		return nil // nothing to write anywhere
	}
	myIdx := -1
	for i, a := range f.aggs {
		if a == f.comm.Rank() {
			myIdx = i
			break
		}
	}
	if myIdx < 0 {
		return nil // non-aggregators do no file I/O in the write phase
	}
	for _, dom := range f.domains(myIdx, lo, hi) {
		if err := f.writeDomain(reqs, payloads, dom[0], dom[1]); err != nil {
			return err
		}
	}
	return nil
}

// domains returns the file-domain ranges owned by aggregator idx over
// [lo, hi): one contiguous span by default, or round-robin blocks of
// CBBufferSize with CyclicDomains.
func (f *File) domains(idx int, lo, hi int64) [][2]int64 {
	nAgg := int64(len(f.aggs))
	if !f.opts.CyclicDomains {
		span := (hi - lo + nAgg - 1) / nAgg
		dLo := lo + int64(idx)*span
		dHi := dLo + span
		if dHi > hi {
			dHi = hi
		}
		if dLo >= dHi {
			return nil
		}
		return [][2]int64{{dLo, dHi}}
	}
	var out [][2]int64
	b := f.opts.CBBufferSize
	for blk := int64(idx); ; blk += nAgg {
		dLo := lo + blk*b
		if dLo >= hi {
			break
		}
		dHi := dLo + b
		if dHi > hi {
			dHi = hi
		}
		out = append(out, [2]int64{dLo, dHi})
	}
	return out
}

// writeDomain assembles the contributions that fall inside [dLo, dHi) and
// writes coalesced contiguous runs (bounded by the collective buffer size).
func (f *File) writeDomain(reqs []request, payloads [][]byte, dLo, dHi int64) error {
	type piece struct {
		off  int64
		data []byte
	}
	var pieces []piece
	for _, rq := range reqs {
		data := payloads[rq.Rank]
		pLo, pHi := rq.Off, rq.Off+rq.Len
		if pHi <= dLo || pLo >= dHi {
			continue
		}
		if pLo < dLo {
			data = data[dLo-pLo:]
			pLo = dLo
		}
		if pHi > dHi {
			data = data[:dHi-pLo]
		}
		pieces = append(pieces, piece{off: pLo, data: data})
	}
	if len(pieces) == 0 {
		return nil
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].off < pieces[j].off })
	var runOff int64
	var run []byte
	flush := func() error {
		for len(run) > 0 {
			chunk := run
			if int64(len(chunk)) > f.opts.CBBufferSize {
				chunk = chunk[:f.opts.CBBufferSize]
			}
			if _, err := f.os.Pwrite(f.fd, chunk, runOff); err != nil {
				return err
			}
			runOff += int64(len(chunk))
			run = run[len(chunk):]
		}
		return nil
	}
	for _, pc := range pieces {
		if run == nil {
			runOff, run = pc.off, append([]byte(nil), pc.data...)
			continue
		}
		end := runOff + int64(len(run))
		switch {
		case pc.off == end:
			run = append(run, pc.data...)
		case pc.off < end:
			// Overlapping contributions: later rank wins within the run.
			overlap := end - pc.off
			if overlap >= int64(len(pc.data)) {
				copy(run[pc.off-runOff:], pc.data)
			} else {
				copy(run[pc.off-runOff:], pc.data[:overlap])
				run = append(run, pc.data[overlap:]...)
			}
		default:
			if err := flush(); err != nil {
				return err
			}
			runOff, run = pc.off, append([]byte(nil), pc.data...)
		}
	}
	return flush()
}

// ReadAtAll performs a collective read: aggregators read contiguous domains
// and the data is redistributed to the requesting ranks.
func (f *File) ReadAtAll(off, n int64) ([]byte, error) {
	ts := f.os.Clock().Stamp()
	slots := f.comm.Allgather(encodeRequest(f.disp+off, make([]byte, n)))
	// Phase 1: every aggregator reads the union range restricted to its domain.
	var lo, hi int64
	first := true
	for _, s := range slots {
		o, d := decodeRequest(s)
		if len(d) == 0 {
			continue
		}
		if first || o < lo {
			lo = o
		}
		if first || o+int64(len(d)) > hi {
			hi = o + int64(len(d))
		}
		first = false
	}
	var domain []byte
	var dLo int64
	if !first {
		for i, a := range f.aggs {
			if a != f.comm.Rank() {
				continue
			}
			nAgg := int64(len(f.aggs))
			span := (hi - lo + nAgg - 1) / nAgg
			dLo = lo + int64(i)*span
			dHi := dLo + span
			if dHi > hi {
				dHi = hi
			}
			if dLo < dHi {
				var err error
				domain, err = f.os.Pread(f.fd, dHi-dLo, dLo)
				if err != nil {
					return nil, err
				}
			}
		}
	}
	// Phase 2: redistribute aggregator buffers to everyone.
	all := f.comm.Allgather(encodeRequest(dLo, domain))
	out := make([]byte, n)
	want := f.disp + off
	for _, s := range all {
		o, d := decodeRequest(s)
		if len(d) == 0 {
			continue
		}
		for i := int64(0); i < int64(len(d)); i++ {
			pos := o + i - want
			if pos >= 0 && pos < n {
				out[pos] = d[i]
			}
		}
	}
	emit(f, recorder.FuncMPIFileReadAtAll, ts, "", int64(f.fd), n, off)
	return out, nil
}

// Sync flushes the file (a commit operation under commit semantics).
// MPI_File_sync is collective.
func (f *File) Sync() error {
	ts := f.os.Clock().Stamp()
	err := f.os.Fsync(f.fd)
	emit(f, recorder.FuncMPIFileSync, ts, "", int64(f.fd))
	f.comm.Barrier()
	return err
}

// SetSize truncates/extends the file (collective).
func (f *File) SetSize(size int64) error {
	ts := f.os.Clock().Stamp()
	var err error
	if f.comm.Rank() == 0 {
		err = f.os.Ftruncate(f.fd, size)
	}
	emit(f, recorder.FuncMPIFileSetSize, ts, "", int64(f.fd), size)
	f.comm.Barrier()
	return err
}

// SetAtomicity toggles MPI-IO atomic mode (recorded; the simulated PFS
// applies its configured semantics regardless).
func (f *File) SetAtomicity(on bool) {
	ts := f.os.Clock().Stamp()
	v := int64(0)
	if on {
		v = 1
	}
	emit(f, recorder.FuncMPIFileSetAtomicity, ts, "", int64(f.fd), v)
	f.comm.Barrier()
}

// Close closes the file collectively. MPI_File_close synchronizes the
// communicator before releasing the file, so every rank's outstanding
// transfers complete before any descriptor closes.
func (f *File) Close() error {
	if f.closed {
		return fmt.Errorf("mpiio: double close of %s", f.path)
	}
	f.closed = true
	ts := f.os.Clock().Stamp()
	f.comm.Barrier()
	err := f.os.Close(f.fd)
	emit(f, recorder.FuncMPIFileClose, ts, "", int64(f.fd))
	f.comm.Barrier()
	return err
}

// Aggregators exposes the aggregator ranks (for tests and pattern checks).
func (f *File) Aggregators() []int { return append([]int(nil), f.aggs...) }
