// Quickstart: trace one HPC application on the simulated I/O stack and ask
// the paper's question — what is the weakest file-system consistency model
// this application can run on?
package main

import (
	"fmt"
	"log"

	semfs "repro"
)

func main() {
	// Run the NWChem emulator at the paper's small scale: 64 ranks over 8
	// nodes, writing per-rank scratch files and a rank-0 trajectory.
	res, err := semfs.Run("NWChem", semfs.RunOptions{Ranks: 64, PPN: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced NWChem: %d ranks, %d I/O records\n\n",
		res.Trace.Meta.Ranks, res.Trace.NumRecords())

	// Run the full analysis: offset reconstruction, overlap detection,
	// conflict detection under commit and session semantics, pattern
	// classification and the metadata census.
	an := semfs.Analyze(res.Trace)

	fmt.Println("High-level access patterns (Table 3):")
	for _, p := range an.Patterns {
		fmt.Printf("  %-20s %d file(s)\n", p.Key(), len(p.Files))
	}

	fmt.Println("\nConflicts under session semantics (Table 4):")
	sig := an.Verdict.Session
	fmt.Printf("  WAW same-process: %v   WAW cross-process: %v\n", sig.WAWSame, sig.WAWDiff)
	fmt.Printf("  RAW same-process: %v   RAW cross-process: %v\n", sig.RAWSame, sig.RAWDiff)
	for path, cs := range an.SessionConflicts {
		fmt.Printf("  %s: %d conflicting pairs, e.g. %v\n", path, len(cs), cs[0])
	}

	fmt.Printf("\nVerdict: NWChem runs correctly on any PFS providing %q semantics\n",
		an.Verdict.Weakest)
	if an.Verdict.NeedsPerProcessOrdering {
		fmt.Println("         provided the PFS orders same-process accesses (all but BurstFS do).")
	}
}
