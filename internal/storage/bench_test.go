package storage

// The backend op-cost benchmarks behind BENCH_pr9.json. Like the WAL gate
// (BENCH_pr7.json) they report a *simulated* per-op cost as ns/op via
// b.ReportMetric — a documented deterministic cost model, not host wall
// time — so the number transfers across machines and CI gates it directly.
// allocs/op and B/op are measured as usual and gated at the default
// threshold; the policy wrapper's healthy path must stay alloc-free on top
// of the bare backend.

import (
	"path/filepath"
	"testing"
)

const benchPayload = 4096

// Simulated storage op costs, mirroring the WAL's ack pricing: a node-local
// NVMe append is base + len/8 ns (the wal.Options default), and an
// object-store publish pays an HTTP round trip plus streaming.
const (
	simDiskAppendBaseNS   = 1500
	simDiskBytesPerNS     = 8
	simPublishBaseNS      = 250_000 // one PUT round trip
	simPublishBytesPerNS  = 4
	simRetryCheckOverhead = 20 // policy bookkeeping per op, healthy path
)

func benchAppendSync(b *testing.B, backend Backend, path string, simPerOp uint64) {
	f, err := backend.Open(path, OCreate|OWronly, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, benchPayload)
	b.ResetTimer()
	var simTotal uint64
	for i := 0; i < b.N; i++ {
		if _, err := f.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			b.Fatal(err)
		}
		simTotal += simPerOp
	}
	b.StopTimer()
	b.ReportMetric(float64(simTotal)/float64(b.N), "ns/op")
}

// BenchmarkStorageOSDiskAppendSync: one 4 KiB append + fsync on the osdisk
// backend — the WAL's per-record durability point through the seam.
func BenchmarkStorageOSDiskAppendSync(b *testing.B) {
	path := filepath.Join(b.TempDir(), "seg.wal")
	benchAppendSync(b, OS(), path, simDiskAppendBaseNS+benchPayload/simDiskBytesPerNS)
}

// BenchmarkStorageRetryAppendSync: the same append through the retry policy
// wrapper with a healthy backend — the wrapper's overhead is the diff
// against BenchmarkStorageOSDiskAppendSync, and its allocs/op must match
// the bare backend (the healthy path allocates nothing).
func BenchmarkStorageRetryAppendSync(b *testing.B) {
	backend := NewRetry(OS(), RetryOptions{})
	path := filepath.Join(b.TempDir(), "seg.wal")
	benchAppendSync(b, backend, path,
		simDiskAppendBaseNS+benchPayload/simDiskBytesPerNS+simRetryCheckOverhead)
}

// BenchmarkStorageObjStorePublish: one 4 KiB object publish (write + Sync)
// followed by a delete, on a zero-delay objstore. The delete keeps the
// store's version listing bounded, so allocs/op does not depend on how many
// iterations the bench runner picks. The simulated cost prices the pair as
// two round trips (PUT + DELETE) plus streaming.
func BenchmarkStorageObjStorePublish(b *testing.B) {
	backend := NewObjStore(ObjStoreOptions{Root: b.TempDir(), VisibilityDelay: 0})
	data := make([]byte, benchPayload)
	b.ResetTimer()
	var simTotal uint64
	for i := 0; i < b.N; i++ {
		f, err := backend.Open("bench/obj", OCreate|OWronly, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		if err := backend.Remove("bench/obj"); err != nil {
			b.Fatal(err)
		}
		simTotal += 2*simPublishBaseNS + benchPayload/simPublishBytesPerNS
	}
	b.StopTimer()
	b.ReportMetric(float64(simTotal)/float64(b.N), "ns/op")
}

// BenchmarkStorageBackoffDelay: the pure backoff computation — zero-alloc,
// so regressions in the hot retry path show up as allocs/op here.
func BenchmarkStorageBackoffDelay(b *testing.B) {
	bo := Backoff{Seed: 7}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += bo.Delay(i & 7)
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("backoff produced zero delay")
	}
	b.ReportMetric(float64(sink/uint64(b.N)), "ns/op")
}
