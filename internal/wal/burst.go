package wal

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/consistency"
	"repro/internal/pfs"
	"repro/internal/storage"
)

// BurstPath is the single shared checkpoint file every burst rank writes.
const BurstPath = "/ckpt.dat"

// BurstSpec describes the deterministic checkpoint-burst workload used by
// the kill-and-recover harness and `semrepro -wal-burst`: Ranks writers
// append Records strided blocks each into one shared file (N-1 pattern,
// disjoint offsets), committing every CommitEvery records — the FLASH/HACC
// checkpoint shape from the paper, reduced to a protocol so deterministic
// that recovery can verify every salvaged record against what the workload
// must have written.
type BurstSpec struct {
	Semantics   pfs.Semantics
	Ranks       int   // default 4
	Records     int   // per-rank record count; default 64
	Block       int64 // record payload size; default 1024
	CommitEvery int   // commit cadence in records; default 16
	Seed        uint64
	Log         Options // Log.Dir must be set: it is the recovery root
}

func (s BurstSpec) withDefaults() BurstSpec {
	if s.Log.Backend == nil {
		s.Log.Backend = storage.OS()
	}
	if s.Ranks <= 0 {
		s.Ranks = 4
	}
	if s.Records <= 0 {
		s.Records = 64
	}
	if s.Block <= 0 {
		s.Block = 1024
	}
	if s.CommitEvery <= 0 {
		s.CommitEvery = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// offset places rank r's k-th record: block-strided so all ranks interleave
// in the shared file without overlap (which also makes the final state
// independent of cross-rank publish order).
func (s BurstSpec) offset(rank, k int) int64 {
	return (int64(k)*int64(s.Ranks) + int64(rank)) * s.Block
}

// payload is the deterministic record body: any salvaged byte that differs
// from it is corruption, not just loss.
func (s BurstSpec) payload(rank, k int) []byte {
	buf := make([]byte, s.Block)
	h := s.Seed ^ uint64(rank)*0x9e3779b97f4a7c15 ^ uint64(k)*0xbf58476d1ce4e5b9
	for i := range buf {
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		buf[i] = byte(h >> 56)
	}
	return buf
}

func ackName(rank int) string { return fmt.Sprintf("acks-rank-%04d.log", rank) }

// BurstResult is one uninterrupted burst run's outcome.
type BurstResult struct {
	Dump  map[string][]byte // final fully-published pfs content
	Stats []Stats           // per-rank wal counters
	Spec  consistency.Result
}

// RunBurst executes the burst through per-rank WALs against one fresh pfs,
// recording the op history and checking it against the model's formal spec.
// After each acknowledged write the rank appends the record index to a
// plain ack file; on osdisk completed file writes survive SIGKILL in the
// page cache, and on every other backend each ack line is Sync'd before the
// next write issues, so the ack files are a trustworthy floor on what
// recovery must return — the "zero acked writes lost" half of the harness.
// Safe to SIGKILL at any point (that is its purpose); everything it needs
// for recovery lives under spec.Log.Dir on spec.Log.Backend.
func RunBurst(spec BurstSpec) (*BurstResult, error) {
	spec = spec.withDefaults()
	if spec.Log.Dir == "" {
		return nil, errors.New("wal: burst needs Log.Dir (recovery root)")
	}
	sb := spec.Log.Backend
	if err := sb.MkdirAll(spec.Log.Dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// On osdisk an un-synced append is still crash-durable enough for the
	// floor argument (page cache outlives SIGKILL); weaker backends only
	// make a write recoverable at Sync, so the floor must pay for it.
	syncAcks := storage.Base(sb).Name() != "osdisk"
	fs := pfs.New(pfs.Options{Semantics: spec.Semantics})
	hist := consistency.NewLog()
	fs.SetHistoryRecorder(hist)
	var clock atomic.Uint64
	now := func() uint64 { return clock.Add(10) }

	stats := make([]Stats, spec.Ranks)
	errs := make([]error, spec.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < spec.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = func() error {
				l, err := Open(r, spec.Log)
				if err != nil {
					return err
				}
				defer func() { stats[r] = l.Stats() }()
				ack, err := sb.Open(filepath.Join(spec.Log.Dir, ackName(r)),
					storage.OCreate|storage.OWronly|storage.OAppend, 0o644)
				if err != nil {
					l.Close()
					return err
				}
				c := fs.NewClient(r, 0)
				h, _, err := l.Open(c, BurstPath, pfs.OCreat|pfs.ORdwr, now())
				if err != nil {
					ack.Close()
					l.Close()
					return err
				}
				for k := 0; k < spec.Records; k++ {
					if _, err := l.Write(h, spec.offset(r, k), spec.payload(r, k), now()); err != nil {
						break
					}
					fmt.Fprintf(ack, "%d\n", k)
					if syncAcks {
						if err := ack.Sync(); err != nil {
							break
						}
					}
					if (k+1)%spec.CommitEvery == 0 {
						if _, err := l.Commit(h, now()); err != nil {
							break
						}
					}
				}
				if _, err := l.Commit(h, now()); err != nil {
					ack.Close()
					l.Close()
					return err
				}
				if _, err := l.CloseHandle(h, now()); err != nil {
					ack.Close()
					l.Close()
					return err
				}
				if err := ack.Close(); err != nil {
					l.Close()
					return err
				}
				return l.Close()
			}()
			if errs[r] != nil {
				errs[r] = fmt.Errorf("rank %d: %w", r, errs[r])
			}
		}(r)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	res := &BurstResult{Dump: fs.ContentDump(), Stats: stats}
	res.Spec = consistency.CheckLog(spec.Semantics, hist,
		consistency.Options{EventualDelayNS: uint64(fs.Options().EventualDelay)})
	return res, nil
}

// readAcks returns the per-rank count of acknowledged records from the
// burst's ack files, plus a per-rank flag distinguishing a zero-length ack
// file (rank started, acked nothing — an explicit floor of 0) from a
// missing one (rank never got as far as opening it). Both floors are 0, but
// conflating them hid a class of harness bugs where a rank silently never
// ran; the recovery report now states which case each rank is in.
func readAcks(b storage.Backend, dir string, ranks int) (counts []int, present []bool, err error) {
	counts = make([]int, ranks)
	present = make([]bool, ranks)
	for r := 0; r < ranks; r++ {
		data, err := b.ReadFile(filepath.Join(dir, ackName(r)))
		if err != nil {
			if storage.IsNotExist(err) {
				continue
			}
			return nil, nil, err
		}
		present[r] = true
		for _, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) != "" {
				counts[r]++
			}
		}
	}
	return counts, present, nil
}

// RecoveryReport is the outcome of RecoverBurst, formatted into the
// `semrepro -wal-recover` artifact.
type RecoveryReport struct {
	Spec      BurstSpec
	PerRank   []int  // recovered record count per rank
	Acked     []int  // ack-file floor per rank
	AckFiles  []bool // ack file present (possibly zero-length) per rank
	Records   int
	Dropped   int   // torn-tail records discarded (≤1 per rank)
	TailBytes int64 // torn-tail bytes truncated
	Check     consistency.Result
	Dump      map[string][]byte // replayed state
}

// RecoverBurst salvages a (possibly crash-interrupted) burst's log
// directory and proves the recovery claims:
//
//  1. zero acked-write loss — each rank's salvaged records are a strict
//     prefix of the burst protocol, byte-exact, at least as long as the
//     rank's ack file;
//  2. consistency — the records replayed through a fresh pfs yield a
//     history the model's formal spec accepts;
//  3. byte-identical state — the replayed file system's content equals an
//     uninterrupted direct run of the same per-rank prefixes.
func RecoverBurst(spec BurstSpec) (*RecoveryReport, error) {
	spec = spec.withDefaults()
	if spec.Log.Dir == "" {
		return nil, errors.New("wal: recovery needs Log.Dir")
	}
	recs, stats, err := RecoverDirOn(spec.Log.Backend, spec.Log.Dir)
	if err != nil {
		return nil, err
	}
	acked, ackFiles, err := readAcks(spec.Log.Backend, spec.Log.Dir, spec.Ranks)
	if err != nil {
		return nil, err
	}
	rep := &RecoveryReport{Spec: spec, PerRank: make([]int, spec.Ranks), Acked: acked, AckFiles: ackFiles}
	for r := 0; r < spec.Ranks; r++ {
		rr := recs[r]
		rep.PerRank[r] = len(rr)
		rep.Records += len(rr)
		rep.Dropped += stats[r].Dropped
		rep.TailBytes += stats[r].TailBytes
		if stats[r].Dropped > 1 {
			return nil, fmt.Errorf("wal: rank %d: %d torn records (append discipline allows at most 1)", r, stats[r].Dropped)
		}
		if len(rr) > spec.Records {
			return nil, fmt.Errorf("wal: rank %d: %d records exceeds workload's %d", r, len(rr), spec.Records)
		}
		if len(rr) < acked[r] {
			return nil, fmt.Errorf("wal: rank %d: ACKED WRITE LOST: recovered %d records, %d were acknowledged", r, len(rr), acked[r])
		}
		for k, rec := range rr {
			if rec.Path != BurstPath || rec.Off != spec.offset(r, k) || !bytes.Equal(rec.Data, spec.payload(r, k)) {
				return nil, fmt.Errorf("wal: rank %d record %d: salvaged bytes differ from protocol (path=%s off=%d len=%d)",
					r, k, rec.Path, rec.Off, len(rec.Data))
			}
		}
	}

	fs := pfs.New(pfs.Options{Semantics: spec.Semantics})
	hist := consistency.NewLog()
	fs.SetHistoryRecorder(hist)
	if err := Replay(fs, recs); err != nil {
		return nil, err
	}
	rep.Check = consistency.CheckLog(spec.Semantics, hist,
		consistency.Options{EventualDelayNS: uint64(fs.Options().EventualDelay)})
	if !rep.Check.OK() {
		return rep, fmt.Errorf("wal: replayed history rejected by %s spec: %s", spec.Semantics, rep.Check.Violation)
	}
	rep.Dump = fs.ContentDump()
	want := DirectDump(spec, rep.PerRank)
	if err := diffDumps(want, rep.Dump); err != nil {
		return rep, fmt.Errorf("wal: recovered state differs from uninterrupted run: %w", err)
	}
	return rep, nil
}

// DirectDump executes counts[r] records per rank straight against a fresh
// pfs — no WAL anywhere — and dumps the result: the state an uninterrupted
// run of exactly those writes produces.
func DirectDump(spec BurstSpec, counts []int) map[string][]byte {
	spec = spec.withDefaults()
	fs := pfs.New(pfs.Options{Semantics: spec.Semantics})
	var now uint64
	tick := func() uint64 { now += 10; return now }
	for r := 0; r < spec.Ranks; r++ {
		n := 0
		if r < len(counts) {
			n = counts[r]
		}
		if n == 0 {
			continue
		}
		c := fs.NewClient(r, 0)
		h, _, err := c.Open(BurstPath, pfs.OCreat|pfs.ORdwr, tick())
		if err != nil {
			panic(err) // deterministic workload on a fresh fs cannot fail
		}
		for k := 0; k < n; k++ {
			if _, err := h.Write(spec.offset(r, k), spec.payload(r, k), tick()); err != nil {
				panic(err)
			}
		}
		if _, err := h.Commit(tick()); err != nil {
			panic(err)
		}
		if _, err := h.Close(tick()); err != nil {
			panic(err)
		}
	}
	return fs.ContentDump()
}

func diffDumps(want, got map[string][]byte) error {
	for path, w := range want {
		g, ok := got[path]
		if !ok {
			return fmt.Errorf("%s missing", path)
		}
		if !bytes.Equal(w, g) {
			i := 0
			for i < len(w) && i < len(g) && w[i] == g[i] {
				i++
			}
			return fmt.Errorf("%s differs at byte %d (want %d bytes, got %d)", path, i, len(w), len(g))
		}
	}
	for path := range got {
		if _, ok := want[path]; !ok {
			return fmt.Errorf("unexpected file %s", path)
		}
	}
	return nil
}

// FormatDump renders a content dump deterministically: one line per file
// with its size and SHA-256. Two runs with byte-identical state produce
// byte-identical dumps, so CI can diff the artifact files directly.
func FormatDump(dump map[string][]byte) string {
	paths := make([]string, 0, len(dump))
	for p := range dump {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		sum := sha256.Sum256(dump[p])
		fmt.Fprintf(&b, "%s\t%d\t%x\n", p, len(dump[p]), sum)
	}
	return b.String()
}

// FormatBurst renders an uninterrupted burst's outcome for the
// `semrepro -wal-burst` artifact.
func FormatBurst(spec BurstSpec, res *BurstResult) string {
	spec = spec.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "wal burst: semantics=%s ranks=%d records=%d block=%d commit_every=%d\n",
		spec.Semantics, spec.Ranks, spec.Records, spec.Block, spec.CommitEvery)
	for r, st := range res.Stats {
		fmt.Fprintf(&b, "  rank %d: acked=%d (%d bytes) drained=%d write_through=%d retries=%d queue_peak=%d\n",
			r, st.Acked, st.AckedBytes, st.Drained, st.WriteThrough, st.Retries, st.QueuePeak)
	}
	verdict := "ACCEPTED"
	if !res.Spec.OK() {
		verdict = "REJECTED: " + res.Spec.Violation.String()
	}
	fmt.Fprintf(&b, "spec check: %s (%s, %d events, %d reads)\n",
		verdict, res.Spec.Model, res.Spec.Events, res.Spec.Reads)
	return b.String()
}

// FormatReport renders a RecoveryReport for the semrepro artifact.
func FormatReport(rep *RecoveryReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal recovery: semantics=%s ranks=%d recovered %d record(s), dropped=%d torn, tail_bytes=%d\n",
		rep.Spec.Semantics, rep.Spec.Ranks, rep.Records, rep.Dropped, rep.TailBytes)
	for r := 0; r < rep.Spec.Ranks; r++ {
		ackNote := "no ack file"
		if r < len(rep.AckFiles) && rep.AckFiles[r] {
			ackNote = "ack file present"
		}
		fmt.Fprintf(&b, "  rank %d: records=%d acked>=%d (%s)\n", r, rep.PerRank[r], rep.Acked[r], ackNote)
	}
	fmt.Fprintf(&b, "spec check: ACCEPTED (%s, %d events, %d reads)\n",
		rep.Check.Model, rep.Check.Events, rep.Check.Reads)
	fmt.Fprintf(&b, "zero acked writes lost: OK\n")
	b.WriteString(FormatDump(rep.Dump))
	return b.String()
}
