package colfmt

import (
	"bytes"
	"fmt"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/recorder"
	"repro/internal/storage"
)

// DirReader holds every rank stream of a trace directory open for
// cursor-based decoding: columnar ranks stay memory-mapped and decode
// zero-copy through their cursors; v1 ranks are materialized once behind a
// slice cursor (the compatibility shim). Feed Cursors() to
// core.ExtractCursors (or core.ExtractCursorsSharedCtx keyed by the
// DirReader) to run extraction without ever building Trace.PerRank.
type DirReader struct {
	Meta    recorder.Meta
	streams []dirStream
}

type dirStream struct {
	r  *Reader // columnar; nil when the rank file was v1
	v1 []recorder.Record
}

// OpenDirOn opens a trace directory for cursor-based decoding, sniffing
// each rank file's format in parallel across workers. Strict: any damaged
// stream fails the open.
func OpenDirOn(b storage.Backend, dir string, workers int) (*DirReader, error) {
	storage.Settle(b)
	meta, err := loadMeta(b, dir)
	if err != nil {
		return nil, err
	}
	d := &DirReader{Meta: meta, streams: make([]dirStream, meta.Ranks)}
	errs := make([]error, meta.Ranks)
	core.ParallelFor(meta.Ranks, workers, func(rank int) {
		errs[rank] = d.openStream(b, dir, rank)
	})
	for rank, err := range errs {
		if err != nil {
			_ = d.Close()
			return nil, fmt.Errorf("recorder: reading rank %d: %w", rank, err)
		}
	}
	return d, nil
}

func (d *DirReader) openStream(b storage.Backend, dir string, rank int) error {
	path := filepath.Join(dir, recorder.RankFileName(rank))
	data, unmap, err := readStream(b, path)
	if err != nil {
		return err
	}
	if Sniff(data) {
		r, rerr := NewReader(data)
		if rerr != nil {
			if unmap != nil {
				_ = unmap()
			}
			return rerr
		}
		r.unmap = unmap
		if r.Rank() != rank {
			_ = r.Close()
			return fmt.Errorf("holds rank %d", r.Rank())
		}
		if !r.HasFooter() {
			// A strict open refuses torn streams up front rather than
			// failing mid-extraction.
			_ = r.Close()
			return &recorder.TruncatedError{Declared: uint64(r.Declared())}
		}
		d.streams[rank].r = r
		return nil
	}
	defer func() {
		if unmap != nil {
			_ = unmap()
		}
	}()
	gotRank, recs, derr := recorder.DecodeRankStream(bytes.NewReader(data))
	if derr != nil {
		return derr
	}
	if gotRank != rank {
		return fmt.Errorf("holds rank %d", gotRank)
	}
	d.streams[rank].v1 = recs
	return nil
}

// Cursors returns one fresh single-use cursor per rank, in rank order.
func (d *DirReader) Cursors() []core.RecordCursor {
	out := make([]core.RecordCursor, len(d.streams))
	for i := range d.streams {
		if r := d.streams[i].r; r != nil {
			out[i] = r.Cursor()
		} else {
			out[i] = core.SliceCursor(d.streams[i].v1)
		}
	}
	return out
}

// Close releases every mapping. Extractions must be finished first; the
// FileAccesses they produced remain valid (paths are interned strings,
// intervals are values).
func (d *DirReader) Close() error {
	var first error
	for i := range d.streams {
		if r := d.streams[i].r; r != nil {
			if err := r.Close(); err != nil && first == nil {
				first = err
			}
			d.streams[i].r = nil
		}
	}
	return first
}
