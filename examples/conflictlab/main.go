// Conflictlab: build a custom I/O protocol with a real cross-process
// read-after-write, watch the detector flag it under both commit and
// session semantics, then fix it twice — once with an fsync (sufficient for
// commit semantics) and once with a close/reopen pair (sufficient for
// session semantics) — exactly the remedies Section 4.1 prescribes.
package main

import (
	"fmt"
	"log"

	semfs "repro"
	"repro/internal/recorder"
)

// protocol writes on rank 0 and reads on rank 1 after a barrier, with
// configurable commit/session discipline between the two.
func protocol(fsync, reopen bool) func(ctx *semfs.Ctx) error {
	return func(ctx *semfs.Ctx) error {
		fd, err := ctx.OS.Open("/exchange.dat", recorder.OCreat|recorder.ORdwr, 0o644)
		if err != nil {
			return err
		}
		open := true
		if ctx.Rank == 0 {
			if _, err := ctx.OS.Pwrite(fd, make([]byte, 4096), 0); err != nil {
				return err
			}
			if fsync {
				if err := ctx.OS.Fsync(fd); err != nil {
					return err
				}
			}
			if reopen { // writer closes before the reader opens
				if err := ctx.OS.Close(fd); err != nil {
					return err
				}
				open = false
			}
		}
		ctx.MPI.Barrier() // the synchronization that makes this race-free
		if ctx.Rank == 1 {
			if reopen {
				// Session discipline: drop the stale handle, open fresh
				// after the writer's close.
				if err := ctx.OS.Close(fd); err != nil {
					return err
				}
				if fd, err = ctx.OS.Open("/exchange.dat", recorder.ORdonly, 0); err != nil {
					return err
				}
			}
			if _, err := ctx.OS.Pread(fd, 4096, 0); err != nil {
				return err
			}
		}
		if open {
			return ctx.OS.Close(fd)
		}
		return nil
	}
}

func report(name string, fsync, reopen bool) {
	res, err := semfs.RunCustom(name, semfs.RunOptions{Ranks: 4, PPN: 2}, protocol(fsync, reopen))
	if err != nil || res.Err() != nil {
		log.Fatal(err, res.Err())
	}
	an := semfs.Analyze(res.Trace)
	fmt.Printf("%-28s commit: RAW-D=%-5v   session: RAW-D=%-5v   weakest=%s\n",
		name, an.Verdict.Commit.RAWDiff, an.Verdict.Session.RAWDiff, an.Verdict.Weakest)

	// The detector's finding must be a synchronized (race-free) pair.
	unordered, err := semfs.ValidateSynchronization(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	if len(unordered) > 0 {
		fmt.Printf("  WARNING: %d unsynchronized pairs (a data race!)\n", len(unordered))
	}
}

func main() {
	fmt.Println("A cross-process producer/consumer protocol, three ways:")
	fmt.Println()
	report("naive (no discipline)", false, false)
	report("with fsync (commit fix)", true, false)
	report("with close/open (session fix)", true, true)
	fmt.Println()
	fmt.Println("Reading the rows: the naive protocol needs strong semantics; adding the")
	fmt.Println("writer's fsync satisfies commit semantics; adding the close-before-open")
	fmt.Println("pair satisfies session (close-to-open) semantics as well.")
}
