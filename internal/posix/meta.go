package posix

import (
	"repro/internal/pfs"
	"repro/internal/recorder"
)

// This file implements the POSIX metadata and utility operations the paper
// monitors (Section 6.4, footnote 3). Operations that contact the metadata
// server go through the pfs; purely process-local ones (getcwd, umask, dup,
// fcntl, ...) only cost local time. All emit POSIX-layer records so the
// metadata census (Figure 3) sees them.

// Stat queries file metadata by path.
func (p *Proc) Stat(pth string) (pfs.FileInfo, error) {
	return p.statAs(recorder.FuncStat, pth)
}

// Lstat behaves as Stat (the simulated FS has no symlinks to follow).
func (p *Proc) Lstat(pth string) (pfs.FileInfo, error) {
	return p.statAs(recorder.FuncLstat, pth)
}

func (p *Proc) statAs(fn recorder.Func, pth string) (pfs.FileInfo, error) {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	if berr := p.metaBarrier(); berr != nil {
		p.emit(fn, ts, apth, "")
		return pfs.FileInfo{}, berr
	}
	info, cost, err := p.client.FS().Stat(apth)
	p.advance(cost + p.cost.MetaCost)
	p.emit(fn, ts, apth, "")
	return info, err
}

// Fstat queries metadata through a descriptor.
func (p *Proc) Fstat(fdnum int) (pfs.FileInfo, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncFstat, ts, "", "", int64(fdnum))
		return pfs.FileInfo{}, err
	}
	if berr := p.metaBarrier(); berr != nil {
		p.emit(recorder.FuncFstat, ts, "", "", int64(fdnum))
		return pfs.FileInfo{}, berr
	}
	info, cost, serr := p.client.FS().Stat(f.path)
	p.advance(cost + p.cost.MetaCost)
	p.emit(recorder.FuncFstat, ts, "", "", int64(fdnum))
	return info, serr
}

// Access checks whether a path exists (mode bits are not modeled).
func (p *Proc) Access(pth string) error {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	if berr := p.metaBarrier(); berr != nil {
		p.emit(recorder.FuncAccess, ts, apth, "")
		return berr
	}
	_, cost, err := p.client.FS().Stat(apth)
	p.advance(cost + p.cost.MetaCost)
	p.emit(recorder.FuncAccess, ts, apth, "")
	return err
}

// Unlink removes a file.
func (p *Proc) Unlink(pth string) error {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	if berr := p.metaBarrier(); berr != nil {
		p.emit(recorder.FuncUnlink, ts, apth, "")
		return berr
	}
	cost, err := p.client.FS().Unlink(apth)
	p.advance(cost + p.cost.MetaCost)
	p.emit(recorder.FuncUnlink, ts, apth, "")
	return err
}

// Remove is the stdio remove(); same effect as Unlink, distinct record.
func (p *Proc) Remove(pth string) error {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	if berr := p.metaBarrier(); berr != nil {
		p.emit(recorder.FuncRemove, ts, apth, "")
		return berr
	}
	cost, err := p.client.FS().Unlink(apth)
	p.advance(cost + p.cost.MetaCost)
	p.emit(recorder.FuncRemove, ts, apth, "")
	return err
}

// Mkdir creates a directory.
func (p *Proc) Mkdir(pth string, mode int64) error {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	cost, err := p.client.FS().Mkdir(apth)
	p.advance(cost + p.cost.MetaCost)
	p.emit(recorder.FuncMkdir, ts, apth, "", mode)
	return err
}

// Rename moves a file.
func (p *Proc) Rename(oldPth, newPth string) error {
	ts := p.clock.Stamp()
	ao, an := p.abs(oldPth), p.abs(newPth)
	if berr := p.metaBarrier(); berr != nil {
		p.emit(recorder.FuncRename, ts, ao, an)
		return berr
	}
	cost, err := p.client.FS().Rename(ao, an)
	p.advance(cost + p.cost.MetaCost)
	p.emit(recorder.FuncRename, ts, ao, an)
	return err
}

// Truncate sets a file's length by path.
func (p *Proc) Truncate(pth string, length int64) error {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	// Path truncate: open-truncate-close on the metadata path.
	h, cost, err := p.pfsOpen(apth, recorder.OWronly, p.clock.Now())
	p.advance(cost)
	if err == nil {
		var tcost uint64
		tcost, err = p.pfsTruncate(h, length)
		p.advance(tcost)
		ccost, _ := p.pfsClose(h, p.clock.Now())
		p.advance(ccost)
	}
	p.emit(recorder.FuncTruncate, ts, apth, "", length)
	return err
}

// Getcwd reports the working directory.
func (p *Proc) Getcwd() string {
	ts := p.clock.Stamp()
	p.advance(p.cost.MetaCost / 4)
	p.emit(recorder.FuncGetcwd, ts, p.cwd, "")
	return p.cwd
}

// Chdir changes the working directory.
func (p *Proc) Chdir(pth string) error {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	p.advance(p.cost.MetaCost / 4)
	p.cwd = apth
	p.emit(recorder.FuncChdir, ts, apth, "")
	return nil
}

// Umask sets the file-creation mask and returns the previous value.
func (p *Proc) Umask(mask int64) int64 {
	ts := p.clock.Stamp()
	old := p.umask
	p.umask = mask
	p.emit(recorder.FuncUmask, ts, "", "", mask, old)
	return old
}

// Fcntl issues a descriptor control operation (modeled as a no-op).
func (p *Proc) Fcntl(fdnum int, cmd int64) error {
	ts := p.clock.Stamp()
	_, err := p.get(fdnum)
	p.emit(recorder.FuncFcntl, ts, "", "", int64(fdnum), cmd)
	return err
}

// Dup duplicates a descriptor. The duplicate shares the pfs handle and the
// offset state (as on a real system, where both number the same open file
// description; our model copies the offset and keeps them loosely coupled,
// which suffices for the traced applications).
func (p *Proc) Dup(fdnum int) (int, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncDup, ts, "", "", int64(fdnum), -1)
		return -1, err
	}
	n := &fd{num: p.nextFD, h: f.h, path: f.path, offset: f.offset, appendMd: f.appendMd}
	p.nextFD++
	p.fds[n.num] = n
	p.emit(recorder.FuncDup, ts, "", "", int64(fdnum), int64(n.num))
	return n.num, nil
}

// Opendir begins a directory listing (the listing itself is not modeled;
// the calls exist for the metadata census).
func (p *Proc) Opendir(pth string) error {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	p.advance(p.cost.MetaCost)
	p.emit(recorder.FuncOpendir, ts, apth, "")
	return nil
}

// Readdir reads one directory entry.
func (p *Proc) Readdir(pth string) {
	ts := p.clock.Stamp()
	p.advance(p.cost.MetaCost / 2)
	p.emit(recorder.FuncReaddir, ts, p.abs(pth), "")
}

// Closedir ends a directory listing.
func (p *Proc) Closedir(pth string) {
	ts := p.clock.Stamp()
	p.advance(p.cost.MetaCost / 2)
	p.emit(recorder.FuncClosedir, ts, p.abs(pth), "")
}

// Mmap records a memory-map of a descriptor (data access through the map is
// not modeled; LBANN-style apps use it for read-only loads).
func (p *Proc) Mmap(fdnum int, length int64) error {
	ts := p.clock.Stamp()
	_, err := p.get(fdnum)
	p.advance(p.cost.MetaCost)
	p.emit(recorder.FuncMmap, ts, "", "", int64(fdnum), length)
	return err
}
