package consistency

import "repro/internal/obs"

// Checker telemetry on the process-wide obs registry. Naming follows
// DESIGN.md §9: consistency.check.*.
var (
	checkHistories = obs.Default().Counter("consistency.check.histories")
	checkAccepted  = obs.Default().Counter("consistency.check.accepted")
	checkRejected  = obs.Default().Counter("consistency.check.rejected")
	checkEvents    = obs.Default().Counter("consistency.check.events")
	checkBytes     = obs.Default().Counter("consistency.check.bytes")
	checkWall      = obs.Default().Histogram("consistency.check.wall_ns")
)

// Flight-recorder event classes: every spec verdict lands in the ring, and
// a rejection both records the violating op (read seq, first bad offset,
// implicated write's causal trace) and triggers the armed post-mortem dump
// — a consistency violation is precisely the moment the recent-op ring is
// worth its memory.
var (
	flightVerdict   = obs.FlightClassFor("consistency.verdict")
	flightViolation = obs.FlightClassFor("consistency.violation")
)

// recordVerdictFlight records one check's outcome (a = events checked,
// b = 1 accepted / 0 rejected).
func recordVerdictFlight(events int, ok bool) {
	b := int64(0)
	if ok {
		b = 1
	}
	obs.Flight().Record(flightVerdict, -1, 0, int64(events), b)
}

// recordViolationFlight records the counterexample and dumps the ring. The
// event carries the violating read's history seq (a), the first violating
// byte (b), the reader's rank, and the implicated write's trace ID — what
// `semrepro -flight-dump` prints as the attribution line.
func recordViolationFlight(v *Violation) {
	var trace uint64
	if v.Write != nil {
		trace = v.Write.Trace
	}
	obs.Flight().Record(flightViolation, int32(v.Read.Rank), trace, int64(v.Read.Seq), v.Offset)
	obs.TriggerFlightDump("consistency-violation")
}
