package sim

// CostModel holds the latency/bandwidth constants used to advance the
// logical clocks. Absolute values are loosely inspired by the paper's
// environment (Omni-Path network, Lustre over disk/flash) but are not claims;
// the reproduction's claims are about orderings, counts and category mixes,
// not absolute time (see DESIGN.md §5). What matters is that I/O operations
// take tens of microseconds to milliseconds while residual clock skew is
// kept below 20 µs, preserving the paper's "timestamp order of conflicting
// operations matches execution order" property.
type CostModel struct {
	// Network.
	MsgLatency   uint64 // p2p message latency, ns
	MsgPerByte   uint64 // additional ns per byte transferred
	BarrierCost  uint64 // cost of a barrier once all ranks arrive, ns
	CollPerByte  uint64 // per-byte cost inside data-moving collectives, ns
	LocalCompute uint64 // generic per-step compute cost, ns

	// File system client operations (excluding server-side costs, which the
	// PFS adds itself depending on the consistency model).
	OpenCost  uint64 // open/creat, ns
	CloseCost uint64 // close, ns
	MetaCost  uint64 // stat/access/unlink/... metadata op, ns
	SeekCost  uint64 // lseek/fseek, ns
	SyncCost  uint64 // fsync/fdatasync base cost, ns
	IOBase    uint64 // fixed cost of any read/write, ns
	IOPerByte uint64 // ns per byte read or written

	// Server-side model used by the PFS.
	MetaRPC       uint64 // one metadata-server round trip, ns
	LockRPC       uint64 // one lock-manager round trip, ns
	LockPerSharer uint64 // extra queueing ns per concurrent sharer of a file under strong semantics
}

// DefaultCostModel returns the cost model used throughout the repository.
func DefaultCostModel() CostModel {
	return CostModel{
		MsgLatency:    2_000, // 2 µs
		MsgPerByte:    1,     // ~1 GB/s effective
		BarrierCost:   5_000, // 5 µs
		CollPerByte:   1,
		LocalCompute:  50_000, // 50 µs per compute step
		OpenCost:      20_000, // 20 µs
		CloseCost:     10_000,
		MetaCost:      8_000,
		SeekCost:      500,
		SyncCost:      100_000, // 100 µs
		IOBase:        10_000,  // 10 µs
		IOPerByte:     1,       // ~1 GB/s
		MetaRPC:       10_000,
		LockRPC:       12_000,
		LockPerSharer: 6_000,
	}
}

// IOCost returns the client-side cost of a data operation of n bytes.
func (c CostModel) IOCost(n int64) uint64 {
	if n < 0 {
		n = 0
	}
	return c.IOBase + uint64(n)*c.IOPerByte
}

// MsgCost returns the cost of moving an n-byte point-to-point message.
func (c CostModel) MsgCost(n int64) uint64 {
	if n < 0 {
		n = 0
	}
	return c.MsgLatency + uint64(n)*c.MsgPerByte
}
