// Package analysistest is the serial-equivalence harness of the parallel
// analysis engine: the serial semfs.Analyze path is the correctness oracle
// (it is the literal transcription of the paper's algorithms), and any
// concurrent path must produce identical results. Tests at every layer
// reuse these helpers so the parallel engine can never silently diverge —
// add a worker count or a new workload here and every equivalence test
// picks it up.
package analysistest

import (
	"fmt"
	"reflect"
	"testing"

	semfs "repro"
	"repro/internal/recorder"
)

// DefaultWorkerCounts covers the interesting pool shapes: GOMAXPROCS (0),
// the serial fallback (1), a small pool, an odd pool, and a pool far larger
// than any test trace's file count.
var DefaultWorkerCounts = []int{0, 1, 2, 5, 32}

// RequireEqual fails t unless the two analyses are identical, reporting the
// first field that differs (field-by-field beats one opaque DeepEqual on
// the whole struct: a census mismatch should not print conflict lists).
func RequireEqual(t testing.TB, label string, serial, parallel *semfs.Analysis) {
	t.Helper()
	check := func(field string, a, b any) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: parallel %s diverges from serial oracle\nserial:   %+v\nparallel: %+v",
				label, field, a, b)
		}
	}
	check("Verdict", serial.Verdict, parallel.Verdict)
	check("SessionConflicts", serial.SessionConflicts, parallel.SessionConflicts)
	check("CommitConflicts", serial.CommitConflicts, parallel.CommitConflicts)
	check("Patterns", serial.Patterns, parallel.Patterns)
	check("Global", serial.Global, parallel.Global)
	check("Local", serial.Local, parallel.Local)
	check("Census", serial.Census, parallel.Census)
	check("MetaConflicts", serial.MetaConflicts, parallel.MetaConflicts)
	check("MetaSignature", serial.MetaSignature, parallel.MetaSignature)
}

// CheckTrace asserts AnalyzeParallel(tr, w) == Analyze(tr) for every worker
// count (DefaultWorkerCounts when none given).
func CheckTrace(t testing.TB, label string, tr *recorder.Trace, workerCounts ...int) {
	t.Helper()
	if len(workerCounts) == 0 {
		workerCounts = DefaultWorkerCounts
	}
	oracle := semfs.Analyze(tr)
	for _, w := range workerCounts {
		RequireEqual(t, labelWorkers(label, w), oracle, semfs.AnalyzeParallel(tr, w))
	}
}

// CheckApp runs one registry application configuration and asserts
// serial/parallel analysis equivalence on its trace.
func CheckApp(t testing.TB, name string, o semfs.RunOptions, workerCounts ...int) {
	t.Helper()
	res, err := semfs.Run(name, o)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("%s: rank error: %v", name, err)
	}
	CheckTrace(t, name, res.Trace, workerCounts...)
}

func labelWorkers(label string, w int) string {
	return fmt.Sprintf("%s/workers=%d", label, w)
}
