package apps

import (
	"testing"

	"repro/internal/core"
)

// TestMetadataDependencies is the future-work extension of §7 applied to
// the study's applications: which of them depend on *cross-process
// metadata visibility*? Exactly two do — LAMMPS-ADIOS (aggregators create
// subfiles inside the .bp directory rank 0 just made) and MACSio (group
// members open the Silo file the group root just created/truncated).
// Everything else creates and uses namespace entries within a single
// process or against pre-staged files, so relaxed-metadata PFSs
// (GekkoFS, BatchFS) suffice for 23 of the 25 configurations.
func TestMetadataDependencies(t *testing.T) {
	expected := map[string]core.MetaSignature{
		"LAMMPS-ADIOS": {CreateUse: true},
		"MACSio-Silo":  {CreateUse: true, ResizeUse: true},
	}
	for _, cfg := range Registry() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			res := execute(t, cfg.Name(), Options{})
			cs := core.DetectMetadataConflicts(res.Trace)
			sig := core.MetaSignatureOf(cs)
			if want := expected[cfg.Name()]; sig != want {
				t.Fatalf("metadata signature = %+v, want %+v (pairs: %v)", sig, want, cs)
			}
			// Like the data conflicts, all metadata dependencies must be
			// ordered by the program's synchronization.
			if len(cs) > 0 {
				hb, err := core.BuildHB(res.Trace)
				if err != nil {
					t.Fatal(err)
				}
				if un := core.ValidateMetaConflicts(hb, cs); len(un) > 0 {
					t.Fatalf("%d unsynchronized metadata dependencies: %v", len(un), un[0])
				}
			}
		})
	}
}
