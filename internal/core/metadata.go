package core

import (
	"sort"

	"repro/internal/recorder"
)

// OriginName maps a record's originating layer to the categories Figure 3
// uses: the MPI library (MPI-IO), HDF5, other I/O libraries, or the
// application itself.
func OriginName(l recorder.Layer) string {
	switch l {
	case recorder.LayerMPIIO:
		return "MPI"
	case recorder.LayerHDF5:
		return "HDF5"
	case recorder.LayerNetCDF:
		return "NetCDF"
	case recorder.LayerADIOS:
		return "ADIOS"
	case recorder.LayerSilo:
		return "Silo"
	default:
		return "App"
	}
}

// Census is the Figure 3 data for one application configuration: for each
// POSIX metadata/utility operation used, how many calls were issued and
// from which layer they originated.
type Census struct {
	// Counts[origin][func] = number of calls.
	Counts map[string]map[recorder.Func]int
}

// Funcs returns the metadata operations observed, sorted by name.
func (c *Census) Funcs() []recorder.Func {
	set := make(map[recorder.Func]bool)
	for _, m := range c.Counts {
		for f := range m {
			set[f] = true
		}
	}
	out := make([]recorder.Func, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Origins returns the layer categories observed, sorted.
func (c *Census) Origins() []string {
	out := make([]string, 0, len(c.Counts))
	for o := range c.Counts {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Total returns the total number of metadata calls.
func (c *Census) Total() int {
	n := 0
	for _, m := range c.Counts {
		for _, v := range m {
			n += v
		}
	}
	return n
}

// Used reports whether a given operation appears at all.
func (c *Census) Used(f recorder.Func) bool {
	for _, m := range c.Counts {
		if m[f] > 0 {
			return true
		}
	}
	return false
}

// MetadataCensus reproduces the §6.4 analysis: it counts every POSIX
// metadata/utility operation in the trace and attributes each call to the
// I/O layer that issued it (the outermost enclosing library record, or the
// application when none).
func MetadataCensus(tr *recorder.Trace) *Census {
	c := &Census{Counts: make(map[string]map[recorder.Func]int)}
	for _, rs := range tr.PerRank {
		censusRank(rs, c)
	}
	return c
}

// censusRank tallies one rank's metadata operations into c.
func censusRank(rs []recorder.Record, c *Census) {
	origins, _ := attributeOrigins(rs)
	for i := range rs {
		r := &rs[i]
		if !r.IsMetadataOp() {
			continue
		}
		origin := OriginName(origins[i])
		m, ok := c.Counts[origin]
		if !ok {
			m = make(map[recorder.Func]int)
			c.Counts[origin] = m
		}
		m[r.Func]++
	}
}
