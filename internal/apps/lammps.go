package apps

import (
	"fmt"

	"repro/internal/adios"
	"repro/internal/harness"
	"repro/internal/hdf5"
	"repro/internal/mpiio"
	"repro/internal/netcdf"
)

// lammpsConfig emulates the LAMMPS 2D LJ flow simulation of Table 5: the
// same dump of unscaled atom coordinates written through five different I/O
// backends. The backend determines the entire Table 3/Table 4 behaviour:
// POSIX and HDF5 are rank-0-only (1-1), MPI-IO is collective (M-1 strided),
// ADIOS is aggregated subfiles (M-M, WAW-S on md.idx), NetCDF is rank-0 with
// a numrecs header rewrite per dump (WAW-S).
func lammpsConfig(library string) *Config {
	cfg := &Config{
		App: "LAMMPS", Library: library,
		Description: "2D LJ flow, dump of unscaled atom coordinates every CheckpointEvery steps via " + library,
		Setup: func(ctx *harness.Ctx, p Params) error {
			return stageInput(ctx, "/in/lammps.flow", 512)
		},
	}
	cfg.Run = func(ctx *harness.Ctx, p Params) error {
		if err := readInput(ctx, "/in/lammps.flow"); err != nil {
			return err
		}
		dump, err := lammpsOpenDump(ctx, p, library)
		if err != nil {
			return err
		}
		step := 0
		for s := 1; s <= p.Steps; s++ {
			ctx.Compute(50, 150)
			ctx.MPI.Allreduce(int64(s), mpiOpSum) // thermo output reduction
			if s%p.CheckpointEvery != 0 {
				continue
			}
			if err := dump.write(ctx, p, step); err != nil {
				return err
			}
			step++
		}
		if err := dump.close(ctx); err != nil {
			return err
		}
		return ctx.Failures()
	}
	return cfg
}

// lammpsDump abstracts the per-backend dump stream.
type lammpsDump struct {
	write func(ctx *harness.Ctx, p Params, step int) error
	close func(ctx *harness.Ctx) error
}

func lammpsOpenDump(ctx *harness.Ctx, p Params, library string) (*lammpsDump, error) {
	switch library {
	case "POSIX":
		var fd int
		if ctx.Rank == 0 {
			var err error
			fd, err = ctx.OS.Fopen("/dump.atom", "a")
			if err != nil {
				return nil, err
			}
		}
		return &lammpsDump{
			write: func(ctx *harness.Ctx, p Params, step int) error {
				parts := ctx.MPI.Gather(0, fill("lmp", ctx.Rank, step, p.Block))
				if ctx.Rank != 0 {
					return nil
				}
				for _, part := range parts {
					if _, err := ctx.OS.Fwrite(fd, part, 1, int64(len(part))); err != nil {
						return err
					}
				}
				return nil
			},
			close: func(ctx *harness.Ctx) error {
				if ctx.Rank != 0 {
					return nil
				}
				return ctx.OS.Fclose(fd)
			},
		}, nil

	case "HDF5":
		var f *hdf5.File
		if ctx.Rank == 0 {
			var err error
			f, err = hdf5.CreateSerial(ctx.OS, ctx.Tracer, "/dump.h5", hdf5.Options{DataBase: 32 << 10})
			if err != nil {
				return nil, err
			}
		}
		return &lammpsDump{
			write: func(ctx *harness.Ctx, p Params, step int) error {
				parts := ctx.MPI.Gather(0, fill("lmp", ctx.Rank, step, p.Block))
				if ctx.Rank != 0 {
					return nil
				}
				d, err := f.CreateDataset(fmt.Sprintf("atoms_%04d", step), int64(len(parts))*p.Block)
				if err != nil {
					return err
				}
				for r, part := range parts {
					if err := d.Write(int64(r)*p.Block, part); err != nil {
						return err
					}
				}
				d.Close()
				return nil
			},
			close: func(ctx *harness.Ctx) error {
				if ctx.Rank != 0 {
					return nil
				}
				return f.Close()
			},
		}, nil

	case "NetCDF":
		var f *netcdf.File
		var v *netcdf.Var
		if ctx.Rank == 0 {
			var err error
			f, err = netcdf.Create(ctx.OS, ctx.Tracer, "/dump.nc")
			if err != nil {
				return nil, err
			}
			if v, err = f.DefVar("coordinates", int64(ctx.Size)*p.Block); err != nil {
				return nil, err
			}
			if err := f.EndDef(); err != nil {
				return nil, err
			}
		}
		return &lammpsDump{
			write: func(ctx *harness.Ctx, p Params, step int) error {
				parts := ctx.MPI.Gather(0, fill("lmp", ctx.Rank, step, p.Block))
				if ctx.Rank != 0 {
					return nil
				}
				rec := make([]byte, 0, int64(len(parts))*p.Block)
				for _, part := range parts {
					rec = append(rec, part...)
				}
				return f.PutRecord(v, -1, rec)
			},
			close: func(ctx *harness.Ctx) error {
				if ctx.Rank != 0 {
					return nil
				}
				return f.Close()
			},
		}, nil

	case "MPI-IO":
		f, err := mpiio.Open(ctx.MPI, ctx.OS, ctx.Tracer, "/dump.mpiio",
			mpiio.ModeCreate|mpiio.ModeWronly, mpiio.Options{})
		if err != nil {
			return nil, err
		}
		return &lammpsDump{
			write: func(ctx *harness.Ctx, p Params, step int) error {
				base := int64(step) * int64(ctx.Size) * p.Block
				return f.WriteAtAll(base+int64(ctx.Rank)*p.Block, fill("lmp", ctx.Rank, step, p.Block))
			},
			close: func(ctx *harness.Ctx) error { return f.Close() },
		}, nil

	case "ADIOS":
		w, err := adios.OpenWriter(ctx.MPI, ctx.OS, ctx.Tracer, "/dump", adios.Options{})
		if err != nil {
			return nil, err
		}
		return &lammpsDump{
			write: func(ctx *harness.Ctx, p Params, step int) error {
				if err := w.Put("atoms", fill("lmp", ctx.Rank, step, p.Block)); err != nil {
					return err
				}
				return w.EndStep()
			},
			close: func(ctx *harness.Ctx) error { return w.Close() },
		}, nil
	}
	return nil, fmt.Errorf("apps: unknown LAMMPS backend %q", library)
}
