// Package pfstest provides the shared machinery of the pfs property-test
// suites: a seeded randomized schedule generator, deterministic and
// concurrent schedule runners, a greedy schedule shrinker, and seed
// reporting so any failure is reproducible with a single environment
// variable.
//
// A Schedule is an explicit multi-rank op interleaving over one shared
// file. Run replays it serially (deterministic — the same schedule can be
// compared across consistency models), RunConcurrent replays each rank's
// subsequence on its own goroutine (the interleaving is then decided by
// the scheduler, and the pfs history hook records whichever total order
// actually happened — the input the consistency checker verifies).
//
// Seeding protocol: tests derive per-trial RNGs via Trials, which names
// each subtest "seed=N"; a failing trial therefore prints the exact seed
// in its test path. Rerun just that trial with SEMFS_PROP_SEED=N. CI runs
// the suite twice — once with the fixed default seeds, once with a
// time-derived SEMFS_PROP_SEED — so coverage grows nightly without ever
// producing an unreproducible failure.
package pfstest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pfs"
)

// SeedEnv is the environment variable overriding property-test base seeds.
const SeedEnv = "SEMFS_PROP_SEED"

// TrialsEnv is the environment variable overriding property-test trial
// counts: a positive integer that replaces every suite's compiled-in count.
// CI uses it to scale coverage (nightly long runs, quick smoke legs)
// without touching code; combined with SEMFS_PROP_SEED=N and
// SEMFS_PROP_TRIALS=1 it replays exactly one failing trial.
const TrialsEnv = "SEMFS_PROP_TRIALS"

// Kind enumerates schedule operations.
type Kind int

const (
	// OpWrite writes Data at Off through the rank's handle.
	OpWrite Kind = iota
	// OpRead reads Len bytes at Off through the rank's handle.
	OpRead
	// OpCommit fsyncs the rank's handle.
	OpCommit
	// OpReopen closes and reopens the rank's handle (a fresh session).
	OpReopen
	// OpTruncate truncates the file to Len via the rank's handle.
	OpTruncate
	// OpLaminate laminates the file via the rank's handle.
	OpLaminate
)

func (k Kind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpCommit:
		return "commit"
	case OpReopen:
		return "reopen"
	case OpTruncate:
		return "truncate"
	case OpLaminate:
		return "laminate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Op is one step of a schedule, executed by one rank.
type Op struct {
	Kind Kind
	Rank int
	Off  int64
	Len  int64 // read length, or truncate target length
	Data []byte
}

// Schedule is an explicit interleaving of ops over one shared file.
type Schedule []Op

// GenOptions bounds the random schedule generator. The zero value gives the
// historical visibility-suite shape: two ranks, rank 0 the only writer,
// 5–29 ops, offsets below 200, writes up to 50 bytes, 64-byte reads, no
// truncation or lamination.
type GenOptions struct {
	Ranks    int   // total ranks (>=1); default 2
	Writers  int   // ranks 0..Writers-1 may write/commit/truncate/laminate; default 1
	MaxOps   int   // upper bound on schedule length; default 29 (min is 5)
	MaxOff   int64 // exclusive bound on write/read offsets; default 200
	MaxWrite int   // max write payload bytes; default 50
	ReadLen  int64 // read request length; default 64
	Truncate bool  // include truncate ops
	Laminate bool  // include a lamination (at most one, with a read tail after it)
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Ranks <= 0 {
		o.Ranks = 2
	}
	if o.Writers <= 0 {
		o.Writers = 1
	}
	if o.Writers > o.Ranks {
		o.Writers = o.Ranks
	}
	if o.MaxOps < 5 {
		o.MaxOps = 29
	}
	if o.MaxOff <= 0 {
		o.MaxOff = 200
	}
	if o.MaxWrite <= 0 {
		o.MaxWrite = 50
	}
	if o.ReadLen <= 0 {
		o.ReadLen = 64
	}
	return o
}

// Generate produces a random schedule from the given RNG. Identical
// (rng state, opt) pairs produce identical schedules.
func Generate(rng *rand.Rand, opt GenOptions) Schedule {
	opt = opt.withDefaults()
	n := 5 + rng.Intn(opt.MaxOps-4)
	ops := make(Schedule, 0, n)
	writer := func() int { return rng.Intn(opt.Writers) }
	laminated := false
	for i := 0; i < n; i++ {
		roll := rng.Intn(24)
		switch {
		case roll < 4: // commit
			ops = append(ops, Op{Kind: OpCommit, Rank: writer()})
		case roll < 8: // reopen (any rank: a reader reopen starts a fresh session)
			ops = append(ops, Op{Kind: OpReopen, Rank: rng.Intn(opt.Ranks)})
		case roll < 16: // write
			data := make([]byte, rng.Intn(opt.MaxWrite)+1)
			fill := byte(rng.Intn(256))
			for j := range data {
				data[j] = fill
			}
			ops = append(ops, Op{Kind: OpWrite, Rank: writer(),
				Off: int64(rng.Intn(int(opt.MaxOff))), Data: data})
		case roll < 22: // read
			ops = append(ops, Op{Kind: OpRead, Rank: rng.Intn(opt.Ranks),
				Off: int64(rng.Intn(int(opt.MaxOff))), Len: opt.ReadLen})
		case roll < 23 && opt.Truncate:
			ops = append(ops, Op{Kind: OpTruncate, Rank: writer(),
				Len: int64(rng.Intn(int(opt.MaxOff)))})
		case opt.Laminate && !laminated:
			ops = append(ops, Op{Kind: OpLaminate, Rank: writer()})
			laminated = true
		default:
			ops = append(ops, Op{Kind: OpRead, Rank: rng.Intn(opt.Ranks),
				Off: int64(rng.Intn(int(opt.MaxOff))), Len: opt.ReadLen})
		}
	}
	if laminated {
		// Ops after lamination mostly fail; end with a read per rank so the
		// laminated global-visibility property is always exercised.
		for r := 0; r < opt.Ranks; r++ {
			ops = append(ops, Op{Kind: OpRead, Rank: r, Off: 0, Len: opt.ReadLen})
		}
	}
	return ops
}

// ReadResult is one read's outcome during a run, in execution order for
// Run and in completion order per rank for RunConcurrent.
type ReadResult struct {
	Rank int
	Off  int64
	Data []byte
}

// Path is the single shared file every schedule targets.
const Path = "/f"

// run is the shared executor: exec serializes ops through it.
type runner struct {
	fs      *pfs.FileSystem
	clients []*pfs.Client
	handles []*pfs.Handle
	clock   atomic.Uint64

	mu    sync.Mutex
	reads []ReadResult
}

func newRunner(fs *pfs.FileSystem, ranks int) (*runner, error) {
	r := &runner{fs: fs, clients: make([]*pfs.Client, ranks), handles: make([]*pfs.Handle, ranks)}
	r.clock.Store(10)
	for rank := 0; rank < ranks; rank++ {
		r.clients[rank] = fs.NewClient(rank, 0)
		flags := pfs.ORdwr
		if rank == 0 {
			flags |= pfs.OCreat
		}
		h, _, err := r.clients[rank].Open(Path, flags, r.now())
		if err != nil {
			return nil, fmt.Errorf("pfstest: rank %d open: %w", rank, err)
		}
		r.handles[rank] = h
	}
	return r, nil
}

func (r *runner) now() uint64 { return r.clock.Add(10) }

// exec runs one op. Errors from operating on a laminated file are part of
// the contract (schedules keep going after lamination) and are swallowed;
// anything else is a real failure.
func (r *runner) exec(op Op) error {
	now := r.now()
	h := r.handles[op.Rank]
	var err error
	switch op.Kind {
	case OpWrite:
		_, err = h.Write(op.Off, op.Data, now)
	case OpRead:
		var got []byte
		got, _, err = h.Read(op.Off, op.Len, now)
		if err == nil {
			r.mu.Lock()
			r.reads = append(r.reads, ReadResult{Rank: op.Rank, Off: op.Off, Data: got})
			r.mu.Unlock()
		}
	case OpCommit:
		_, err = h.Commit(now)
	case OpReopen:
		if _, err = h.Close(now); err == nil {
			r.handles[op.Rank], _, err = r.clients[op.Rank].Open(Path, pfs.ORdwr, r.now())
		}
	case OpTruncate:
		_, err = h.Truncate(op.Len)
	case OpLaminate:
		_, err = h.Laminate(now)
	}
	if errors.Is(err, pfs.ErrLaminated) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("pfstest: rank %d %s: %w", op.Rank, op.Kind, err)
	}
	return nil
}

func ranksOf(sched Schedule) int {
	n := 1
	for _, op := range sched {
		if op.Rank+1 > n {
			n = op.Rank + 1
		}
	}
	return n
}

// Run replays the schedule serially in the given interleaving against fs,
// returning every successful read's result in execution order. Identical
// (fs options, schedule) pairs produce identical results, so runs across
// consistency models are directly comparable read-by-read.
func Run(fs *pfs.FileSystem, sched Schedule) ([]ReadResult, error) {
	r, err := newRunner(fs, ranksOf(sched))
	if err != nil {
		return nil, err
	}
	for _, op := range sched {
		if err := r.exec(op); err != nil {
			return r.reads, err
		}
	}
	return r.reads, nil
}

// RunConcurrent replays each rank's subsequence of the schedule on its own
// goroutine; program order holds within a rank while the cross-rank
// interleaving is left to the scheduler. Read results are NOT comparable
// across runs — use the pfs history hook to capture the total order that
// actually happened.
func RunConcurrent(fs *pfs.FileSystem, sched Schedule) error {
	ranks := ranksOf(sched)
	r, err := newRunner(fs, ranks)
	if err != nil {
		return err
	}
	perRank := make([]Schedule, ranks)
	for _, op := range sched {
		perRank[op.Rank] = append(perRank[op.Rank], op)
	}
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for _, op := range perRank[rank] {
				if errs[rank] = r.exec(op); errs[rank] != nil {
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Shrink greedily minimizes a failing schedule: it repeatedly deletes
// chunks (halving the chunk size down to single ops) while fails keeps
// returning true, and returns the smallest still-failing schedule found.
// fails must be deterministic.
func Shrink(sched Schedule, fails func(Schedule) bool) Schedule {
	cur := append(Schedule(nil), sched...)
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(cur); {
			cand := append(append(Schedule(nil), cur[:i]...), cur[i+chunk:]...)
			if fails(cand) {
				cur = cand
			} else {
				i += chunk
			}
		}
	}
	return cur
}

// Format renders a schedule one op per line, for failure messages.
func Format(sched Schedule) string {
	s := ""
	for i, op := range sched {
		s += fmt.Sprintf("%3d: rank %d %-8s", i, op.Rank, op.Kind)
		switch op.Kind {
		case OpWrite:
			s += fmt.Sprintf(" off=%d len=%d fill=%#02x", op.Off, len(op.Data), firstByte(op.Data))
		case OpRead:
			s += fmt.Sprintf(" off=%d len=%d", op.Off, op.Len)
		case OpTruncate:
			s += fmt.Sprintf(" len=%d", op.Len)
		}
		s += "\n"
	}
	return s
}

func firstByte(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// BaseSeed returns the base seed for a property suite: SEMFS_PROP_SEED if
// set (decimal), else def. The chosen seed is logged either way.
func BaseSeed(tb testing.TB, def int64) int64 {
	if s := os.Getenv(SeedEnv); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			tb.Fatalf("pfstest: bad %s=%q: %v", SeedEnv, s, err)
		}
		tb.Logf("pfstest: base seed %d (from %s)", v, SeedEnv)
		return v
	}
	tb.Logf("pfstest: base seed %d (default; override with %s)", def, SeedEnv)
	return def
}

// Trials runs fn once per trial, each inside a subtest named with the
// trial's exact derived seed — a failing trial therefore reports its seed
// in the test path, and SEMFS_PROP_SEED=<seed> with SEMFS_PROP_TRIALS=1
// replays it. The trials argument is a default: SEMFS_PROP_TRIALS, when
// set, overrides it for every suite, and the effective count is logged
// alongside the base seed so a test log always states exactly what ran.
func Trials(t *testing.T, base int64, trials int, fn func(t *testing.T, rng *rand.Rand)) {
	t.Helper()
	if s := os.Getenv(TrialsEnv); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			t.Fatalf("pfstest: bad %s=%q: want a positive integer", TrialsEnv, s)
		}
		trials = v
		t.Logf("pfstest: base seed %d, %d trial(s) (from %s)", base, trials, TrialsEnv)
	} else {
		t.Logf("pfstest: base seed %d, %d trial(s) (override count with %s)", base, trials, TrialsEnv)
	}
	for i := 0; i < trials; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fn(t, rand.New(rand.NewSource(seed)))
		})
	}
}
