package pfstest

import (
	"math/rand"
	"testing"
)

func TestTrialsEnvOverridesCount(t *testing.T) {
	t.Setenv(TrialsEnv, "3")
	ran := 0
	Trials(t, 100, 10, func(t *testing.T, rng *rand.Rand) { ran++ })
	if ran != 3 {
		t.Fatalf("ran %d trials with %s=3, want 3", ran, TrialsEnv)
	}
}

func TestTrialsDefaultCount(t *testing.T) {
	t.Setenv(TrialsEnv, "")
	ran := 0
	var seeds []int64
	Trials(t, 7, 4, func(t *testing.T, rng *rand.Rand) {
		ran++
		seeds = append(seeds, rng.Int63())
	})
	if ran != 4 {
		t.Fatalf("ran %d trials, want the default 4", ran)
	}
	// Same base seed, same derived streams.
	var again []int64
	Trials(t, 7, 4, func(t *testing.T, rng *rand.Rand) { again = append(again, rng.Int63()) })
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatalf("trial %d drew %d then %d from the same seed", i, seeds[i], again[i])
		}
	}
}
