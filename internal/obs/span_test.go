package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestTracerDisabledByDefault: a fresh registry collects no spans until the
// tracer is explicitly enabled.
func TestTracerDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	r.Tracer().Start("a", "b").End()
	if n := r.Tracer().Len(); n != 0 {
		t.Errorf("disabled tracer collected %d spans", n)
	}
}

// TestChromeTraceExport checks the exported document parses as the Chrome
// trace_event format: a traceEvents array of complete ("X") events with
// microsecond timestamps, parent links in args, and lanes as tids.
func TestChromeTraceExport(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)

	root := tr.Start("analyze", "core")
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := root.Child("worker").OnLane(w + 1)
			sp.Child("task").End()
			sp.End()
		}(w)
	}
	wg.Wait()
	root.End()

	if got, want := tr.Len(), 7; got != want {
		t.Fatalf("collected %d spans, want %d", got, want)
	}
	b, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export is not valid trace_event JSON: %v\n%s", err, b)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("exported %d events, want 7", len(doc.TraceEvents))
	}
	lanes := map[int]bool{}
	children := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative ts/dur (%f, %f)", ev.Name, ev.TS, ev.Dur)
		}
		lanes[ev.TID] = true
		if ev.Args["parent"] != nil {
			children++
		}
	}
	for w := 1; w <= 3; w++ {
		if !lanes[w] {
			t.Errorf("lane %d missing from export", w)
		}
	}
	if children != 6 {
		t.Errorf("%d events carry parent links, want 6", children)
	}
}

// TestChromeTraceExportEmpty: an empty tracer still produces a valid
// document (the CI step runs the validator unconditionally).
func TestChromeTraceExportEmpty(t *testing.T) {
	var tr Tracer
	b, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v\n%s", err, b)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents is not an array: %s", b)
	}
}
