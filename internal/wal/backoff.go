package wal

import "repro/internal/sim"

// Backoff computes the delay before drain retry attempt n (0-based) after a
// transient pfs fault. The nominal delay grows geometrically from BaseNS by
// Multiplier, saturating at CapNS; deterministic jitter then spreads
// retries across [¾·nominal, 5⁄4·nominal] — i.e. jitter is bounded by
// ±25% of the nominal delay. Delay is a pure function of (Seed, attempt):
// it derives a fresh splitmix64 stream per attempt instead of mutating
// shared RNG state, so concurrent drainers with the same seed see the same
// schedule regardless of interleaving — the property the faults package
// tests lean on.
type Backoff struct {
	BaseNS     uint64 // first-retry nominal delay; default 100µs
	Multiplier uint64 // geometric growth per attempt; default 2
	CapNS      uint64 // nominal-delay ceiling; default ~1s
	Seed       uint64 // jitter stream identity; default 1
}

func (b Backoff) withDefaults() Backoff {
	if b.BaseNS == 0 {
		b.BaseNS = 100_000
	}
	if b.Multiplier == 0 {
		b.Multiplier = 2
	}
	if b.CapNS == 0 {
		b.CapNS = 1 << 30
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

// Delay returns the jittered backoff for the given attempt, in nanoseconds.
func (b Backoff) Delay(attempt int) uint64 {
	b = b.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := b.BaseNS
	for i := 0; i < attempt; i++ {
		if d >= b.CapNS/b.Multiplier {
			d = b.CapNS
			break
		}
		d *= b.Multiplier
	}
	if d > b.CapNS {
		d = b.CapNS
	}
	// j ∈ [0, d/2]; delay = d - d/4 + j ∈ [d - d/4, d + d/4].
	j := sim.NewRNG(b.Seed).Split(uint64(attempt)).Uint64() % (d/2 + 1)
	return d - d/4 + j
}
