// Package hdf5 emulates the HDF5 library layer at the level of file-system
// behaviour: a metadata region at low file offsets (superblock, object
// headers, index nodes), raw dataset data at high offsets, deferred
// metadata flushing, and the H5Fflush semantics that the paper identifies
// as the source of FLASH's conflicts (Section 6.3).
//
// Metadata model (mirrors the observations in the paper, not the full HDF5
// format):
//
//   - The superblock occupies [0, 96). Each flush epoch updates it (HDF5
//     rewrites the end-of-file address), always by rank 0 in parallel mode —
//     repeated same-offset writes by one process: the WAW-S of Table 4.
//   - The root group object header occupies [96, 368). Every H5Dcreate
//     dirties it; at each flush epoch it is rewritten by a *varying* owner
//     rank (HDF5's independent metadata mode writes an entry from whichever
//     process's cache holds it dirty) — same-offset writes by different
//     processes across flush epochs: the WAW-D of Table 4. Because each
//     flush ends with fsync on all ranks before the next epoch's writes
//     (H5Fflush is collective), these conflicts exist under session
//     semantics but disappear under commit semantics, exactly as the paper
//     reports.
//   - Each dataset has an object header and an index node, flushed once by
//     hash-selected owner ranks; with tens of datasets per checkpoint this
//     spreads metadata writes over roughly half the ranks ("~30 of 64
//     processes" in Figure 2).
//   - With CollectiveMetadata set, rank 0 performs all metadata writes (the
//     paper's proposed one-line FLASH fix).
//   - In serial (single-process) mode, dataset headers are written through
//     at create time and read back by H5Dopen — the RAW-S pattern ENZO
//     exhibits — while shared headers are written once at close, so
//     write-once serial workloads (LAMMPS-HDF5, QMCPACK) stay conflict-free.
package hdf5

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/posix"
	"repro/internal/recorder"
)

// Layout constants (bytes). Values are representative of HDF5 1.8-era
// metadata object sizes; only their smallness relative to data matters.
const (
	SuperblockLen  = 96
	RootHeaderOff  = 96
	RootHeaderLen  = 272
	headerLen      = 272
	indexNodeLen   = 136
	metaCursorBase = RootHeaderOff + RootHeaderLen
)

// Options configures an emulated HDF5 file.
type Options struct {
	// Collective routes dataset writes through MPI-IO collective buffering.
	Collective bool
	// CBNodes bounds the number of MPI-IO aggregators (0 = one per node).
	CBNodes int
	// CyclicDomains selects block-cyclic collective-buffering file domains
	// of CBBlock bytes (see mpiio.Options.CyclicDomains).
	CyclicDomains bool
	// CBBlock is the collective-buffering block size (0 = mpiio default).
	CBBlock int64
	// CollectiveMetadata makes rank 0 perform all metadata I/O.
	CollectiveMetadata bool
	// DataBase is the file offset where raw dataset data starts
	// (metadata lives below it). 0 means 16 KiB.
	DataBase int64
	// VerifyMetadata makes each root-header flush a read-modify-write: the
	// owner rank reads the current header and checks it is the content the
	// previous flush epoch wrote before writing the new epoch's content.
	// On a PFS whose semantics hide the previous owner's write, the check
	// fails — this is how FLASH's cross-process metadata conflict actually
	// corrupts a file on a session-semantics PFS. Off by default because
	// the extra read changes the traced conflict signature (adds RAW where
	// the paper reports only WAW).
	VerifyMetadata bool
	// OnCorruption receives a description of each stale metadata read
	// detected by VerifyMetadata.
	OnCorruption func(msg string)
}

func (o Options) withDefaults() Options {
	if o.DataBase == 0 {
		o.DataBase = 16 << 10
	}
	return o
}

// File is an emulated HDF5 file. Parallel files are opened collectively on
// every rank; serial files belong to a single process and perform no
// communication.
type File struct {
	comm   *mpi.Proc // nil for serial files
	os     *posix.Proc
	tracer *recorder.RankTracer
	opts   Options

	path          string
	fd            int         // posix descriptor (independent/serial modes)
	mpf           *mpiio.File // collective mode
	metaCursor    int64
	dataCursor    int64
	flushEpoch    int64
	rootFlushedAt int64 // epoch of the last root-header write, -1 if never
	rootDirty     bool
	sbDirty       bool
	datasets      map[string]*Dataset
	order         []string // dataset creation order
	closed        bool
}

// Dataset is an emulated HDF5 dataset within a file.
type Dataset struct {
	f         *File
	name      string
	headerOff int64
	indexOff  int64
	dataOff   int64
	size      int64
	dirty     bool
	flushed   bool
}

// Create creates a parallel HDF5 file collectively.
func Create(comm *mpi.Proc, os *posix.Proc, tracer *recorder.RankTracer, path string, opts Options) (*File, error) {
	f, err := newFile(comm, os, tracer, path, opts, true)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// OpenRead opens an existing parallel HDF5 file read-only.
func OpenRead(comm *mpi.Proc, os *posix.Proc, tracer *recorder.RankTracer, path string, opts Options) (*File, error) {
	return newFile(comm, os, tracer, path, opts, false)
}

// CreateSerial creates an HDF5 file owned by this process only.
func CreateSerial(os *posix.Proc, tracer *recorder.RankTracer, path string, opts Options) (*File, error) {
	return newFile(nil, os, tracer, path, opts, true)
}

// OpenSerialRead opens a serial HDF5 file read-only.
func OpenSerialRead(os *posix.Proc, tracer *recorder.RankTracer, path string, opts Options) (*File, error) {
	return newFile(nil, os, tracer, path, opts, false)
}

func newFile(comm *mpi.Proc, os *posix.Proc, tracer *recorder.RankTracer, path string, opts Options, create bool) (*File, error) {
	o := opts.withDefaults()
	f := &File{
		comm:          comm,
		os:            os,
		tracer:        tracer,
		opts:          o,
		path:          path,
		metaCursor:    metaCursorBase,
		dataCursor:    o.DataBase,
		rootFlushedAt: -1,
		datasets:      make(map[string]*Dataset),
	}
	ts := os.Clock().Stamp()
	fn := recorder.FuncH5Fcreate
	if !create {
		fn = recorder.FuncH5Fopen
	}
	var err error
	if o.Collective {
		if comm == nil {
			return nil, fmt.Errorf("hdf5: collective mode requires a communicator")
		}
		amode := mpiio.ModeRdonly
		if create {
			amode = mpiio.ModeCreate | mpiio.ModeRdwr
		}
		f.mpf, err = mpiio.Open(comm, os, tracer, path, amode, mpiio.Options{
			CBNodes:       o.CBNodes,
			CyclicDomains: o.CyclicDomains,
			CBBufferSize:  o.CBBlock,
		})
	} else {
		flags := recorder.ORdonly
		if create {
			flags = recorder.OCreat | recorder.ORdwr
			// Existence probe + explicit truncation, as the HDF5 sec2/mpio
			// drivers do (the extra lstat/ftruncate the paper observes for
			// ParaDiS-HDF5 in Figure 3).
			os.Lstat(path)
		}
		f.fd, err = os.Open(path, flags, 0o644)
		if err == nil && create {
			os.Ftruncate(f.fd, 0)
		}
		if err == nil && !create {
			os.Fstat(f.fd)
		}
	}
	f.emit(fn, ts, path, "")
	if err != nil {
		return nil, fmt.Errorf("hdf5: open %s: %w", path, err)
	}
	if create {
		f.sbDirty = true
		if f.serial() {
			// Serial HDF5 writes the superblock eagerly... at close in our
			// model (exactly one write per entry keeps write-once serial
			// workloads conflict-free; see package comment).
		}
	}
	if comm != nil && !o.Collective {
		comm.Barrier() // file opens are collective in parallel HDF5
	}
	return f, nil
}

func (f *File) serial() bool { return f.comm == nil }

func (f *File) rank() int {
	if f.comm == nil {
		return 0
	}
	return f.comm.Rank()
}

func (f *File) size() int {
	if f.comm == nil {
		return 1
	}
	return f.comm.Size()
}

func (f *File) emit(fn recorder.Func, ts uint64, path, dset string, args ...int64) {
	f.tracer.Emit(recorder.Record{
		Layer:  recorder.LayerHDF5,
		Func:   fn,
		TStart: ts,
		TEnd:   f.os.Clock().Stamp(),
		Path:   path,
		Path2:  dset, // dataset/attribute name (library-specific operand)
		Args:   args,
	})
}

// metaWrite performs one metadata write at [off, off+n) with deterministic
// content derived from the file path and offset (so any owner writes
// identical bytes, as HDF5 caches do).
func (f *File) metaWrite(off, n int64) error {
	return f.metaWriteContent(off, metaBytes(f.path, off, n))
}

func (f *File) metaWriteContent(off int64, data []byte) error {
	if f.mpf != nil {
		return f.mpf.WriteAt(off, data) // metadata bypasses the aggregators
	}
	_, err := f.os.Pwrite(f.fd, data, off)
	return err
}

func (f *File) metaRead(off, n int64) ([]byte, error) {
	if f.mpf != nil {
		return f.mpf.ReadAt(off, n)
	}
	return f.os.Pread(f.fd, n, off)
}

// metaBytes generates the deterministic content of a metadata entry.
func metaBytes(path string, off, n int64) []byte {
	h := fnv64(path) ^ uint64(off)*0x9e3779b97f4a7c15
	b := make([]byte, n)
	for i := range b {
		h = h*0x100000001b3 + uint64(i)
		b[i] = byte(h >> 32)
	}
	return b
}

// epochBytes generates epoch-dependent metadata content (entries whose
// value changes at every flush, like the superblock EOF address).
func epochBytes(path string, off, n, epoch int64) []byte {
	b := metaBytes(path, off, n)
	for i := range b {
		b[i] ^= byte(uint64(epoch+1) * 0x9e3779b9 >> (uint(i%8) * 8))
	}
	return b
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fnv64(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// owner selects the rank whose metadata cache flushes an entry: rank 0 when
// collective metadata is enabled, otherwise a deterministic hash of the
// entry key and flush epoch (the cache-state-dependent writer of HDF5's
// independent metadata mode).
func (f *File) owner(key string, epoch int64) int {
	if f.opts.CollectiveMetadata || f.serial() {
		return 0
	}
	return int((fnv64(key) ^ uint64(epoch)*0x9e3779b9) % uint64(f.size()))
}

// CreateDataset creates a dataset of the given total byte size. In parallel
// mode the call is collective (all ranks must create identically).
func (f *File) CreateDataset(name string, size int64) (*Dataset, error) {
	ts := f.os.Clock().Stamp()
	if _, ok := f.datasets[name]; ok {
		return nil, fmt.Errorf("hdf5: dataset %s exists", name)
	}
	d := &Dataset{
		f:         f,
		name:      name,
		headerOff: f.metaCursor,
		indexOff:  f.metaCursor + headerLen,
		dataOff:   f.dataCursor,
		size:      size,
		dirty:     true,
	}
	f.metaCursor += headerLen + indexNodeLen
	if f.metaCursor > f.opts.DataBase {
		return nil, fmt.Errorf("hdf5: metadata region overflow in %s (raise Options.DataBase)", f.path)
	}
	f.dataCursor += (size + 511) &^ 511
	f.datasets[name] = d
	f.order = append(f.order, name)
	f.rootDirty = true // new link in the root group
	f.sbDirty = true
	var err error
	if f.serial() {
		// Write-through of the dataset's own header (read back by H5Dopen).
		err = f.metaWrite(d.headerOff, headerLen)
		d.dirty = false
		d.flushed = true
	}
	f.emit(recorder.FuncH5Dcreate, ts, f.path, name, size)
	return d, err
}

// AttachDataset declares a dataset of a reopened file (restart path):
// layouts are allocated in creation order, so a reader that attaches the
// datasets in the order the writer created them reconstructs the same
// offsets. The superblock and the dataset's object header are read from the
// file, as H5Dopen does on a real restart.
func (f *File) AttachDataset(name string, size int64) (*Dataset, error) {
	ts := f.os.Clock().Stamp()
	if _, ok := f.datasets[name]; ok {
		return nil, fmt.Errorf("hdf5: dataset %s already attached", name)
	}
	if len(f.datasets) == 0 {
		if _, err := f.metaRead(0, SuperblockLen); err != nil {
			return nil, err
		}
	}
	d := &Dataset{
		f:         f,
		name:      name,
		headerOff: f.metaCursor,
		indexOff:  f.metaCursor + headerLen,
		dataOff:   f.dataCursor,
		size:      size,
		flushed:   true,
	}
	f.metaCursor += headerLen + indexNodeLen
	f.dataCursor += (size + 511) &^ 511
	f.datasets[name] = d
	f.order = append(f.order, name)
	_, err := f.metaRead(d.headerOff, headerLen)
	f.emit(recorder.FuncH5Dopen, ts, f.path, name, size)
	return d, err
}

// OpenDataset opens an existing dataset, reading its object header from the
// file (the read-back that produces ENZO's RAW-S pattern).
func (f *File) OpenDataset(name string) (*Dataset, error) {
	ts := f.os.Clock().Stamp()
	d, ok := f.datasets[name]
	if !ok {
		f.emit(recorder.FuncH5Dopen, ts, f.path, name)
		return nil, fmt.Errorf("hdf5: no dataset %s", name)
	}
	_, err := f.metaRead(d.headerOff, headerLen)
	f.emit(recorder.FuncH5Dopen, ts, f.path, name)
	return d, err
}

// Write writes data at byte offset off within the dataset. Independent mode
// issues a pwrite from this rank; collective mode is a collective call
// routed through the MPI-IO aggregators.
func (d *Dataset) Write(off int64, data []byte) error {
	ts := d.f.os.Clock().Stamp()
	if off+int64(len(data)) > d.size {
		return fmt.Errorf("hdf5: write beyond dataset %s extent", d.name)
	}
	var err error
	if d.f.opts.Collective && d.f.mpf != nil {
		err = d.f.mpf.WriteAtAll(d.dataOff+off, data)
	} else {
		_, err = d.f.os.Pwrite(d.f.fd, data, d.dataOff+off)
	}
	d.dirty = true // chunk index update
	d.f.sbDirty = true
	d.f.emit(recorder.FuncH5Dwrite, ts, d.f.path, d.name, off, int64(len(data)))
	return err
}

// Read reads n bytes at offset off within the dataset.
func (d *Dataset) Read(off, n int64) ([]byte, error) {
	ts := d.f.os.Clock().Stamp()
	var data []byte
	var err error
	if d.f.opts.Collective && d.f.mpf != nil {
		data, err = d.f.mpf.ReadAtAll(d.dataOff+off, n)
	} else {
		data, err = d.f.os.Pread(d.f.fd, n, d.dataOff+off)
	}
	d.f.emit(recorder.FuncH5Dread, ts, d.f.path, d.name, off, n)
	return data, err
}

// ReadIndependent reads without collective participation (restart-style).
func (d *Dataset) ReadIndependent(off, n int64) ([]byte, error) {
	ts := d.f.os.Clock().Stamp()
	var data []byte
	var err error
	if d.f.mpf != nil {
		data, err = d.f.mpf.ReadAt(d.dataOff+off, n)
	} else {
		data, err = d.f.os.Pread(d.f.fd, n, d.dataOff+off)
	}
	d.f.emit(recorder.FuncH5Dread, ts, d.f.path, d.name, off, n)
	return data, err
}

// DataOff exposes the dataset's raw-data file offset (for tests).
func (d *Dataset) DataOff() int64 { return d.dataOff }

// Close closes the dataset handle (bookkeeping only; metadata flushing
// happens at file flush/close).
func (d *Dataset) Close() {
	ts := d.f.os.Clock().Stamp()
	d.f.emit(recorder.FuncH5Dclose, ts, d.f.path, d.name)
}

// WriteAttribute writes a small attribute on the root group (metadata-only).
func (f *File) WriteAttribute(name string, n int64) error {
	ts := f.os.Clock().Stamp()
	f.rootDirty = true
	f.sbDirty = true
	f.emit(recorder.FuncH5Awrite, ts, f.path, name, n)
	return nil
}

// flushMetadata writes every dirty metadata entry whose owner is this rank
// for the current epoch, then clears the dirty state. Returns the owners
// involved (for tests).
func (f *File) flushMetadata() error {
	epoch := f.flushEpoch
	myRank := f.rank()
	// Superblock: rank 0 updates the end-of-file address each epoch.
	if f.sbDirty && myRank == 0 {
		if err := f.metaWrite(0, SuperblockLen); err != nil {
			return err
		}
	}
	f.sbDirty = false
	// Root group header: epoch-varying owner. The header content encodes
	// the flush epoch (HDF5 metadata such as the end-of-file address and
	// link counts changes at every flush).
	if f.rootDirty && f.owner(f.path+"/root", epoch) == myRank {
		if f.opts.VerifyMetadata && f.rootFlushedAt >= 0 {
			got, err := f.metaRead(RootHeaderOff, RootHeaderLen)
			if err != nil {
				return err
			}
			want := epochBytes(f.path, RootHeaderOff, RootHeaderLen, f.rootFlushedAt)
			if !bytesEqual(got, want) && f.opts.OnCorruption != nil {
				f.opts.OnCorruption(fmt.Sprintf(
					"hdf5 %s: stale root header at flush epoch %d (expected epoch-%d content)",
					f.path, epoch, f.rootFlushedAt))
			}
		}
		if err := f.metaWriteContent(RootHeaderOff, epochBytes(f.path, RootHeaderOff, RootHeaderLen, epoch)); err != nil {
			return err
		}
	}
	if f.rootDirty {
		f.rootFlushedAt = epoch // every rank tracks the epoch of the write
	}
	f.rootDirty = false
	// Dataset headers and index nodes: flushed once by hash-owners.
	for _, name := range f.order {
		d := f.datasets[name]
		if !d.dirty || d.flushed {
			d.dirty = false
			continue
		}
		if f.owner(f.path+"/"+name+"/hdr", epoch) == myRank {
			if err := f.metaWrite(d.headerOff, headerLen); err != nil {
				return err
			}
		}
		if f.owner(f.path+"/"+name+"/idx", epoch) == myRank {
			if err := f.metaWrite(d.indexOff, indexNodeLen); err != nil {
				return err
			}
		}
		d.dirty = false
		d.flushed = true
	}
	f.flushEpoch++
	return nil
}

// Flush implements H5Fflush: flush dirty metadata, then fsync (the commit
// operation of commit semantics). In parallel mode the call is collective
// and ends with a barrier, ordering this epoch's metadata writes and fsyncs
// before the next epoch's — the property that makes the FLASH conflicts
// disappear under commit semantics.
func (f *File) Flush() error {
	ts := f.os.Clock().Stamp()
	err := f.flushMetadata()
	if err == nil {
		if f.mpf != nil {
			err = f.mpf.Sync() // includes the collective barrier
		} else {
			err = f.os.Fsync(f.fd)
			if f.comm != nil {
				f.comm.Barrier()
			}
		}
	}
	f.emit(recorder.FuncH5Fflush, ts, f.path, "")
	return err
}

// Close implements H5Fclose: flush metadata and close the file.
func (f *File) Close() error {
	if f.closed {
		return fmt.Errorf("hdf5: double close of %s", f.path)
	}
	f.closed = true
	ts := f.os.Clock().Stamp()
	err := f.flushMetadata()
	if f.mpf != nil {
		if cerr := f.mpf.Close(); err == nil {
			err = cerr
		}
	} else {
		if cerr := f.os.Close(f.fd); err == nil {
			err = cerr
		}
		if f.comm != nil {
			f.comm.Barrier()
		}
	}
	f.emit(recorder.FuncH5Fclose, ts, f.path, "")
	return err
}

// Datasets returns the dataset names in creation order.
func (f *File) Datasets() []string { return append([]string(nil), f.order...) }
