package report

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/pfs"
)

func TestFigure2SVG(t *testing.T) {
	cfg, _ := apps.Lookup("FLASH-nofbs")
	res, err := apps.Execute(cfg, apps.Options{Ranks: 8, PPN: 2, Semantics: pfs.Strong})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	svg := Figure2SVG(res.Trace, "/flash_hdf5_chk_0000", "FLASH nofbs checkpoint <writes>")
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "&lt;writes&gt;") {
		t.Fatal("title not escaped")
	}
	if strings.Count(svg, "<circle") < 8*3 {
		t.Fatalf("too few points: %d", strings.Count(svg, "<circle"))
	}
	if !strings.Contains(svg, "8 ranks") {
		t.Fatal("rank count missing")
	}
	// Empty panel still renders valid skeleton.
	empty := Figure2SVG(res.Trace, "/no/such/file", "empty")
	if !strings.Contains(empty, "0 writes, 0 ranks") {
		t.Fatal("empty panel wrong")
	}
}

func TestRankColorsDistinctAndDeterministic(t *testing.T) {
	if rankColor(3) != rankColor(3) {
		t.Fatal("color not deterministic")
	}
	seen := map[string]bool{}
	for r := int32(0); r < 8; r++ {
		seen[rankColor(r)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d distinct colors for 8 ranks", len(seen))
	}
}
