package report

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/obs"
	"repro/internal/pfs"
)

func TestRunReport(t *testing.T) {
	cfg, ok := apps.Lookup("NWChem")
	if !ok {
		t.Fatal("NWChem missing")
	}
	res, err := apps.Execute(cfg, apps.Options{Ranks: 8, PPN: 2, Semantics: pfs.Strong})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	rep := BuildRunReport(res.Trace)
	if rep.Config != "NWChem" || rep.Ranks != 8 {
		t.Fatalf("header wrong: %+v", rep)
	}
	if rep.BytesWritten == 0 || rep.Records == 0 {
		t.Fatal("empty report")
	}
	var trj *FileReport
	for i := range rep.Files {
		if rep.Files[i].Path == "/md.trj" {
			trj = &rep.Files[i]
		}
	}
	if trj == nil {
		t.Fatal("trajectory file missing from report")
	}
	if trj.SessionConflicts == 0 || trj.CommitConflicts == 0 {
		t.Fatalf("trajectory conflicts not counted: %+v", trj)
	}
	if trj.Ranks != 1 {
		t.Fatalf("trajectory written by %d ranks", trj.Ranks)
	}
	out := rep.Render()
	for _, want := range []string{"Run report: NWChem", "Function counters", "histogram", "md.trj", "[POSIX]", "[MPI]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBucketsAndHuman(t *testing.T) {
	if obs.BucketOf(1) != 0 || obs.BucketOf(2) != 1 || obs.BucketOf(4096) != 12 || obs.BucketOf(4097) != 12 {
		t.Fatal("BucketOf wrong")
	}
	// Zero-length accesses must not land in the [1B, 2B) bucket.
	if obs.BucketOf(0) != -1 {
		t.Fatalf("BucketOf(0) = %d, want -1", obs.BucketOf(0))
	}
	if human(512) != "512B" || human(2048) != "2.0KiB" || human(3<<20) != "3.0MiB" || human(2<<30) != "2.0GiB" {
		t.Fatalf("human wrong: %s %s", human(2048), human(3<<20))
	}
	if trunc("abc", 5) != "abc" || trunc("abcdefghij", 6) != "...hij" {
		t.Fatalf("trunc wrong: %q", trunc("abcdefghij", 6))
	}
}

func TestHistogramRendersSortedWithZeroBucket(t *testing.T) {
	r := &RunReport{
		Config:        "synthetic",
		SizeHistogram: obs.NewHistogram(),
	}
	// Observe out of order, including zero-length accesses.
	for _, n := range []int64{1 << 20, 0, 17, 0, 4096, 1} {
		r.SizeHistogram.Observe(n)
	}
	out := r.Render()
	zi := strings.Index(out, "zero-length")
	bi := strings.Index(out, "[     1B,      2B)")
	ki := strings.Index(out, "[ 4.0KiB,  8.0KiB)")
	mi := strings.Index(out, "[ 1.0MiB,  2.0MiB)")
	if zi < 0 || bi < 0 || ki < 0 || mi < 0 {
		t.Fatalf("histogram lines missing:\n%s", out)
	}
	if !(zi < bi && bi < ki && ki < mi) {
		t.Fatalf("histogram lines out of order:\n%s", out)
	}
	if !strings.Contains(out, "zero-length  2\n") {
		t.Fatalf("zero bucket count wrong:\n%s", out)
	}
}
