// Package pfs implements an in-memory parallel file system with pluggable
// consistency semantics, following the categorization of Section 3 of the
// paper: strong (POSIX sequential consistency), commit (writes become
// globally visible on an explicit commit such as fsync or close), session
// (close-to-open visibility) and eventual (visibility after a propagation
// delay).
//
// Files are stored as lists of published extents carrying publish sequence
// numbers; each client additionally holds pending (not yet published)
// extents. The four models differ only in when a write moves from pending to
// published and in which published extents a read may observe:
//
//	strong:   published at write time (under simulated range locks);
//	          reads observe everything published.
//	commit:   published on fsync/fdatasync/close; reads observe everything
//	          published.
//	session:  published on close; reads observe only extents published
//	          before the reader opened the file (close-to-open).
//	eventual: published at write time but visible only after a propagation
//	          delay.
//
// In every model a client always observes its own writes in program order
// (the paper notes BurstFS as the lone exception; see Registry).
package pfs

import "fmt"

// Semantics identifies one of the four consistency models of Section 3.
type Semantics int

const (
	// Strong is POSIX sequential consistency (Section 3.1).
	Strong Semantics = iota
	// Commit makes writes globally visible upon an explicit commit
	// operation — fsync, fdatasync or close (Section 3.2).
	Commit
	// Session provides close-to-open visibility: writes are visible to
	// readers that open the file after the writer closed it (Section 3.3).
	Session
	// Eventual makes writes visible to everyone after a propagation delay,
	// with no commit operation required (Section 3.4).
	Eventual
)

var semanticsNames = [...]string{
	Strong:   "strong",
	Commit:   "commit",
	Session:  "session",
	Eventual: "eventual",
}

func (s Semantics) String() string {
	if int(s) < len(semanticsNames) {
		return semanticsNames[s]
	}
	return "semantics#" + string(rune('0'+int(s)))
}

// ParseSemantics maps a model name ("strong", "commit", "session",
// "eventual") back to its Semantics — the inverse of String, for CLI flags
// and checkpoint manifests.
func ParseSemantics(name string) (Semantics, error) {
	for i, n := range semanticsNames {
		if n == name {
			return Semantics(i), nil
		}
	}
	return 0, fmt.Errorf("pfs: unknown semantics %q (want strong|commit|session|eventual)", name)
}

// WeakerThan reports whether s is a strictly weaker model than other
// (strong > commit > session > eventual).
func (s Semantics) WeakerThan(other Semantics) bool { return s > other }

// AllSemantics lists the four models strongest-first.
func AllSemantics() []Semantics { return []Semantics{Strong, Commit, Session, Eventual} }

// SystemInfo describes one real-world parallel file system as categorized in
// Table 1 of the paper.
type SystemInfo struct {
	Name      string
	Semantics Semantics
	// PerProcessOrdering reports whether conflicting accesses by the same
	// process take effect in program order. True for every PFS in the study
	// except BurstFS (and undefined-overlap systems PLFS/PVFS2; see §3.5).
	PerProcessOrdering bool
	Note               string
}

// Registry reproduces Table 1: HPC file systems and their consistency
// semantics, plus the per-process ordering discussion of Section 3.5.
func Registry() []SystemInfo {
	return []SystemInfo{
		{Name: "GPFS", Semantics: Strong, PerProcessOrdering: true},
		{Name: "Lustre", Semantics: Strong, PerProcessOrdering: true},
		{Name: "GekkoFS", Semantics: Strong, PerProcessOrdering: true, Note: "relaxed metadata, strict data consistency"},
		{Name: "BeeGFS", Semantics: Strong, PerProcessOrdering: true},
		{Name: "BatchFS", Semantics: Strong, PerProcessOrdering: true, Note: "relaxed metadata, strict data consistency"},
		{Name: "OrangeFS", Semantics: Strong, PerProcessOrdering: false, Note: "non-conflicting write semantics; overlapping writes undefined"},
		{Name: "BSCFS", Semantics: Commit, PerProcessOrdering: true},
		{Name: "UnifyFS", Semantics: Commit, PerProcessOrdering: true, Note: "commit via fsync or lamination"},
		{Name: "SymphonyFS", Semantics: Commit, PerProcessOrdering: true, Note: "commit via fsync"},
		{Name: "BurstFS", Semantics: Commit, PerProcessOrdering: false, Note: "read after two same-process writes may return either"},
		{Name: "NFS", Semantics: Session, PerProcessOrdering: true},
		{Name: "AFS", Semantics: Session, PerProcessOrdering: true},
		{Name: "DDN IME", Semantics: Session, PerProcessOrdering: true},
		{Name: "Gfarm/BB", Semantics: Session, PerProcessOrdering: true},
		{Name: "PLFS", Semantics: Eventual, PerProcessOrdering: false, Note: "overlapping writes undefined even with synchronization"},
		{Name: "echofs", Semantics: Eventual, PerProcessOrdering: true, Note: "POSIX locally per node; global visibility on transfer"},
		{Name: "MarFS", Semantics: Eventual, PerProcessOrdering: true},
	}
}

// LookupSystem returns the registry entry for a named file system.
func LookupSystem(name string) (SystemInfo, bool) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, true
		}
	}
	return SystemInfo{}, false
}
