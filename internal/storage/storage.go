// Package storage is the durable-storage seam under every host-side
// persistence layer in the repo (internal/ckpt manifests + journals,
// internal/wal log segments + ack files, recorder trace directories). The
// paper argues most HPC applications only need relaxed (session/commit)
// file-system semantics; until this seam existed, the repo could only test
// that claim against the local OS disk, whose semantics are strictly
// stronger than what the claim requires. A Backend abstracts the handful of
// operations the durable layers actually use — open/read/write-at/sync/
// rename/remove/list, the catalyst-forge fs + go-objstore StorageFS shape —
// so the same journals and logs can run against:
//
//   - osdisk: the local file system, byte-identical to the pre-seam os.*
//     paths (the compatibility oracle, pinned by golden-layout tests);
//   - objstore: a flat-namespace object store with write-then-publish
//     visibility — a Sync uploads an immutable version that only becomes
//     readable after a tunable delay, so eventual semantics are real, not
//     simulated (see "Exploring Scientific Application Performance Using
//     Large Scale Object Storage", PAPERS.md);
//   - flaky: a wrapper over either, firing seed-deterministic injected
//     faults (latency, transient errors, torn writes, lost syncs, rename
//     failures) at the Nth eligible operation, mirroring internal/faults'
//     schedule discipline.
//
// Retry returns a policy wrapper adding per-op deadlines, Backoff-based
// bounded retries on ErrTransient, and a health signal the WAL (degrade to
// write-through) and ckpt (demote to config error) layers consume.
//
// The package sits below internal/faults in the import order (faults
// imports wal imports storage), so process-kill points use the same
// hook indirection as internal/wal: faults installs its Hit counter via
// SetKillPointHook when a "storage."-prefixed point is armed.
package storage

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Open flags, a strict subset of the os.O_* set the durable layers use.
// Values intentionally match the os package so the osdisk backend is a
// pass-through.
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// ErrTransient marks a failure worth retrying: the operation may succeed on
// a later attempt against the same backend (injected flaky-backend errors,
// an objstore read racing a publish). Wrap with %w so errors.Is sees it.
var ErrTransient = errors.New("storage: transient backend error")

// ErrUnavailable marks a backend the retry policy has given up on: the
// per-op attempt budget or deadline was exhausted without a success. The
// layers above map it onto their degradation ladder — the WAL falls back to
// synchronous write-through, ckpt surfaces it as a configuration error.
var ErrUnavailable = errors.New("storage: backend unavailable")

// File is one open object on a Backend. The durable layers use it as an
// append log (Write after Seek to the recovered tail), a random-access blob
// (ReadAt/WriteAt), and a sequential recovery stream (Read from offset 0).
// Sync is the durability point: a write is crash-safe exactly when the Sync
// covering it has returned. On the objstore backend Sync is also the
// *publish* point — the version it uploads becomes visible to readers only
// after the store's visibility delay.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Truncate cuts the file to size bytes (recovery truncates torn tails).
	Truncate(size int64) error
	// Sync makes every preceding write durable (and, on publish-style
	// backends, schedules it for visibility).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// Backend is the minimal durable-store surface. Path semantics follow the
// slash-separated os layout; a flat-namespace backend is free to treat the
// separator as part of an opaque key (MkdirAll a no-op, List a prefix scan).
type Backend interface {
	// Name identifies the backend kind ("osdisk", "objstore", "flaky",
	// "retry"); wrappers report their own name, Root the chain's base.
	Name() string
	// Open opens path with the O* flags above, creating it if OCreate.
	Open(path string, flags int, perm uint32) (File, error)
	// ReadFile returns path's full (visible) contents.
	ReadFile(path string) ([]byte, error)
	// Rename moves oldpath to newpath. On osdisk it is the atomic commit
	// primitive; an object store implements it as copy+delete, which is
	// exactly the weaker publish the paper's relaxed models allow.
	Rename(oldpath, newpath string) error
	// Remove deletes path (nil if it does not exist is NOT guaranteed;
	// callers that want idempotence check IsNotExist).
	Remove(path string) error
	// MkdirAll ensures the directory exists (no-op on flat namespaces).
	MkdirAll(path string) error
	// List returns the names (not full paths) of entries directly under
	// dir, sorted. A missing directory lists empty, not an error.
	List(dir string) ([]string, error)
	// SyncDir makes a directory's entry table durable after a Rename or
	// Remove (best effort; flat namespaces no-op).
	SyncDir(dir string) error
	// Stat reports path's visible size, or an error satisfying
	// IsNotExist(err) if the path does not (yet) exist.
	Stat(path string) (int64, error)
}

// unwrapper is implemented by wrapper backends (flaky, retry) so helpers
// can reach the base of the chain.
type unwrapper interface{ Unwrap() Backend }

// Base walks wrapper chains down to the innermost backend.
func Base(b Backend) Backend {
	for {
		u, ok := b.(unwrapper)
		if !ok {
			return b
		}
		b = u.Unwrap()
	}
}

// laggy is implemented by backends whose writes publish with a delay.
type laggy interface{ PublishLag() time.Duration }

// PublishLag returns the longest time a Sync'd write on b (or any backend
// it wraps) can take to become visible to readers. Zero for read-your-
// writes backends like osdisk.
func PublishLag(b Backend) time.Duration {
	var max time.Duration
	for {
		if l, ok := b.(laggy); ok {
			if d := l.PublishLag(); d > max {
				max = d
			}
		}
		u, ok := b.(unwrapper)
		if !ok {
			return max
		}
		b = u.Unwrap()
	}
}

// Settle blocks until every write already published to b is visible —
// recovery calls it before trusting a List. On an eventual backend this is
// a real wait for the visibility horizon to pass; on osdisk it returns
// immediately. It is the honest version of "read repair": recovery does not
// peek behind the visibility rule, it waits the rule out.
func Settle(b Backend) {
	if lag := PublishLag(b); lag > 0 {
		time.Sleep(lag + time.Millisecond)
	}
}

// MapsFiles reports whether paths on b name plain local files whose bytes
// may be read outside the Backend interface — e.g. memory-mapped by a
// zero-copy reader. True only when the chain bottoms out at osdisk through
// pass-through wrappers (retry): a flaky wrapper must keep intercepting
// reads so its fault schedule fires, and an object store has no local file
// to map at all. Callers that get false fall back to ReadFile.
func MapsFiles(b Backend) bool {
	for {
		switch b.(type) {
		case osdisk:
			return true
		case *retrier:
			// Pass-through on the healthy path; a read that would need the
			// retry policy fails the mmap open and surfaces normally.
		default:
			return false
		}
		u, ok := b.(unwrapper)
		if !ok {
			return false
		}
		b = u.Unwrap()
	}
}

// IsNotExist reports whether err means "no such file" on any backend.
func IsNotExist(err error) bool {
	return errors.Is(err, errNotExist) || osIsNotExist(err)
}

// errNotExist is the backend-neutral not-exist sentinel non-os backends
// return.
var errNotExist = errors.New("storage: file does not exist")

// WriteFileAtomic publishes data at path via the backend's strongest
// whole-file commit: write a sibling temp object, Sync it, Rename it over
// path, SyncDir the parent. On osdisk this is the classic write-temp →
// fsync → rename discipline; on an object store the rename is copy+delete,
// so the commit is only as atomic as the store's semantics allow — which is
// the point of running the harnesses against it.
func WriteFileAtomic(b Backend, path string, data []byte) error {
	dir, base := splitPath(path)
	tmp := joinPath(dir, ".tmp-"+base+"-"+uniqueSuffix())
	f, err := b.Open(tmp, OCreate|OWronly|OTrunc, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		b.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		b.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		b.Remove(tmp)
		return err
	}
	if err := b.Rename(tmp, path); err != nil {
		b.Remove(tmp)
		return err
	}
	return b.SyncDir(dir)
}

// TempDir creates a fresh private directory on b and returns its path. On
// osdisk it is a real os.MkdirTemp dir; on flat-namespace backends it is a
// process-unique key prefix (MkdirAll being a no-op there).
func TempDir(b Backend, pattern string) (string, error) {
	if _, ok := Base(b).(osdisk); ok {
		return osMkdirTemp(pattern)
	}
	dir := pattern + uniqueSuffix()
	return dir, b.MkdirAll(dir)
}

// RemoveAll removes every entry under dir plus dir itself, best effort.
// On an eventually-consistent backend it first waits out the publish
// horizon: a List taken inside the visibility window would miss
// freshly-published versions and leak them past the cleanup.
func RemoveAll(b Backend, dir string) error {
	if _, ok := Base(b).(osdisk); ok {
		return osRemoveAll(dir)
	}
	Settle(b)
	names, err := b.List(dir)
	if err != nil {
		return err
	}
	var first error
	for _, name := range names {
		p := joinPath(dir, name)
		err := b.Remove(p)
		if err != nil && !IsNotExist(err) {
			// Maybe a subdirectory: recurse once before giving up.
			if rerr := RemoveAll(b, p); rerr != nil && first == nil {
				first = err
			}
		}
	}
	if err := b.Remove(dir); err != nil && !IsNotExist(err) && first == nil {
		first = err
	}
	return first
}

func splitPath(path string) (dir, base string) {
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return ".", path
	}
	if i == 0 {
		return "/", path[1:]
	}
	return path[:i], path[i+1:]
}

func joinPath(dir, name string) string {
	if dir == "" || dir == "." {
		return name
	}
	if strings.HasSuffix(dir, "/") {
		return dir + name
	}
	return dir + "/" + name
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseSpec builds a backend from a CLI -backend spec:
//
//	osdisk
//	objstore                         (default 25ms visibility delay)
//	objstore:delay=5ms
//	objstore:root=/tmp/store         (persistent root, for cross-process runs)
//	flaky:seed=3                     (flaky over osdisk)
//	flaky:base=objstore,seed=3,count=8,delay=5ms,kinds=transient
//
// Every backend is returned bare; callers that want the retry/degrade
// policy wrap the result with Retry themselves (the CLIs do).
func ParseSpec(spec string) (Backend, error) {
	kind, args, _ := strings.Cut(spec, ":")
	opts := map[string]string{}
	if args != "" {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("storage: backend spec %q: want key=value, got %q", spec, kv)
			}
			opts[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	delay := 25 * time.Millisecond
	if v, ok := opts["delay"]; ok {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, fmt.Errorf("storage: backend spec %q: delay: %w", spec, err)
		}
		delay = d
	}
	switch kind {
	case "", "osdisk":
		return OS(), nil
	case "objstore":
		return NewObjStore(ObjStoreOptions{Root: opts["root"], VisibilityDelay: delay}), nil
	case "flaky":
		var base Backend
		switch opts["base"] {
		case "", "osdisk":
			base = OS()
		case "objstore":
			base = NewObjStore(ObjStoreOptions{Root: opts["root"], VisibilityDelay: delay})
		default:
			return nil, fmt.Errorf("storage: backend spec %q: unknown base %q", spec, opts["base"])
		}
		var seed uint64 = 1
		if v, ok := opts["seed"]; ok {
			if _, err := fmt.Sscanf(v, "%d", &seed); err != nil {
				return nil, fmt.Errorf("storage: backend spec %q: seed: %w", spec, err)
			}
		}
		count := 0
		if v, ok := opts["count"]; ok {
			if _, err := fmt.Sscanf(v, "%d", &count); err != nil {
				return nil, fmt.Errorf("storage: backend spec %q: count: %w", spec, err)
			}
		}
		gen := GenOptions{Count: count}
		if v, ok := opts["kinds"]; ok {
			switch v {
			case "transient":
				gen.Kinds = []FaultKind{FaultLatency, FaultTransient}
			case "all":
			default:
				return nil, fmt.Errorf("storage: backend spec %q: kinds must be transient|all", spec)
			}
		}
		return NewFlaky(base, GenSchedule(seed, gen)), nil
	default:
		return nil, fmt.Errorf("storage: unknown backend %q (want osdisk|objstore|flaky)", kind)
	}
}
