// Package silo emulates the Silo library's multi-file ("poor man's
// parallel" / baton-passing) output mode as used by MACSio: the job's ranks
// are split into M groups, each group shares one Silo file, and within a
// group the ranks write one after another — each rank receives the baton
// from its predecessor, opens the file, writes its mesh and variable
// blocks at strided per-rank offsets, and hands the baton on. The group
// root finally rewrites the file's table of contents, producing the
// same-process WAW the paper reports for MACSio (Table 4), and the
// group-strided layout produces MACSio's N-M strided pattern (Table 3).
package silo

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/posix"
	"repro/internal/recorder"
)

const (
	tocLen   = 384 // table-of-contents region at the start of each file
	batonTag = 7001
)

// Options configures the multi-file layout.
type Options struct {
	// Files is M, the number of Silo files shared by the N ranks.
	// 0 means one file per compute node.
	Files int
	// BlockSize is the bytes each rank writes per variable.
	BlockSize int64
}

func (o Options) withDefaults(comm *mpi.Proc) Options {
	if o.Files <= 0 {
		o.Files = comm.Nodes()
	}
	if o.Files > comm.Size() {
		o.Files = comm.Size()
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 1024
	}
	return o
}

// Dump writes one MACSio-style dump: every rank writes a mesh block and one
// block per variable into its group's file, serialized by baton passing.
// Variables are laid out variable-major: all ranks' blocks of variable 0,
// then variable 1, ... so each rank's accesses within the file are strided.
func Dump(comm *mpi.Proc, os *posix.Proc, tracer *recorder.RankTracer, baseName string, vars []string, opts Options) error {
	o := opts.withDefaults(comm)
	group := (comm.Size() + o.Files - 1) / o.Files
	fileIdx := comm.Rank() / group
	groupLo := fileIdx * group
	groupHi := groupLo + group
	if groupHi > comm.Size() {
		groupHi = comm.Size()
	}
	inGroup := comm.Rank() - groupLo
	groupN := int64(groupHi - groupLo)
	path := fmt.Sprintf("%s.%03d.silo", baseName, fileIdx)

	emit := func(fn recorder.Func, ts uint64, args ...int64) {
		tracer.Emit(recorder.Record{
			Layer: recorder.LayerSilo, Func: fn,
			TStart: ts, TEnd: os.Clock().Stamp(),
			Path: path, Args: args,
		})
	}

	// Wait for the baton from the previous rank in the group.
	if inGroup > 0 {
		comm.Recv(comm.Rank()-1, batonTag)
	}

	var fd int
	var err error
	if inGroup == 0 {
		ts := os.Clock().Stamp()
		fd, err = os.Open(path, recorder.OCreat|recorder.ORdwr|recorder.OTrunc, 0o644)
		emit(recorder.FuncDBCreate, ts)
		if err == nil {
			// Initial TOC write; rewritten after all ranks are done (WAW-S).
			_, err = os.Pwrite(fd, tocBytes(path), 0)
		}
	} else {
		ts := os.Clock().Stamp()
		fd, err = os.Open(path, recorder.ORdwr, 0o644)
		emit(recorder.FuncDBOpen, ts)
	}
	if err != nil {
		return fmt.Errorf("silo: %w", err)
	}

	// Mesh block, then one block per variable, at variable-major strided
	// offsets.
	tsm := os.Clock().Stamp()
	meshOff := int64(tocLen) + int64(inGroup)*o.BlockSize
	if _, err := os.Pwrite(fd, fill('M', o.BlockSize), meshOff); err != nil {
		return err
	}
	emit(recorder.FuncDBPutQuadmesh, tsm, meshOff, o.BlockSize)
	varBase := int64(tocLen) + groupN*o.BlockSize
	for vi, v := range vars {
		tsv := os.Clock().Stamp()
		off := varBase + int64(vi)*groupN*o.BlockSize + int64(inGroup)*o.BlockSize
		if _, err := os.Pwrite(fd, fill(byte('0'+vi%10), o.BlockSize), off); err != nil {
			return err
		}
		emit(recorder.FuncDBPutQuadvar, tsv, off, o.BlockSize)
		_ = v
	}

	// The group root registers the multi-block directory, updating the
	// front of the TOC it wrote at DBCreate — a second same-process write
	// over the same bytes within one open session: MACSio's WAW-S conflict
	// (no commit and no close/open pair between the two writes).
	if inGroup == 0 {
		tsd := os.Clock().Stamp()
		if _, err := os.Pwrite(fd, tocBytes(path)[:128], 0); err != nil {
			return err
		}
		emit(recorder.FuncDBMkDir, tsd)
	}

	// Pass the baton or, as the last rank, notify the group root to seal.
	if int64(inGroup) < groupN-1 {
		if err := os.Close(fd); err != nil {
			return err
		}
		comm.Send(comm.Rank()+1, batonTag, []byte{1})
		if inGroup == 0 {
			// Root waits for the seal notification from the last rank.
			comm.Recv(groupLo+int(groupN)-1, batonTag+1)
			tsr := os.Clock().Stamp()
			fd2, err := os.Open(path, recorder.ORdwr, 0o644)
			emit(recorder.FuncDBOpen, tsr)
			if err != nil {
				return err
			}
			tst := os.Clock().Stamp()
			if _, err := os.Pwrite(fd2, tocBytes(path), 0); err != nil {
				return err
			}
			emit(recorder.FuncDBMkDir, tst) // TOC/directory update
			tsc := os.Clock().Stamp()
			err = os.Close(fd2)
			emit(recorder.FuncDBClose, tsc)
			return err
		}
		return nil
	}
	// Last rank in the group.
	if err := os.Close(fd); err != nil {
		return err
	}
	if groupN > 1 {
		comm.Send(groupLo, batonTag+1, []byte{1})
		tsc := os.Clock().Stamp()
		emit(recorder.FuncDBClose, tsc)
		return nil
	}
	// Single-rank group: root seals its own file.
	tsr := os.Clock().Stamp()
	fd2, err := os.Open(path, recorder.ORdwr, 0o644)
	emit(recorder.FuncDBOpen, tsr)
	if err != nil {
		return err
	}
	if _, err := os.Pwrite(fd2, tocBytes(path), 0); err != nil {
		return err
	}
	tsc := os.Clock().Stamp()
	err = os.Close(fd2)
	emit(recorder.FuncDBClose, tsc)
	return err
}

func fill(b byte, n int64) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func tocBytes(path string) []byte {
	b := make([]byte, tocLen)
	h := uint64(14695981039346656037)
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * 1099511628211
	}
	for i := range b {
		h = h*2862933555777941757 + 3037000493
		b[i] = byte(h >> 48)
	}
	return b
}
