package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pfs"
	"repro/internal/recorder"
)

// randomTrace synthesizes a multi-rank trace straight at the record level
// (the property-test analogue of randomFA, one level down): per-rank
// TStart-ordered streams of opens with random flags, sequential and
// positional data ops, seeks, fsyncs, closes, metadata traffic
// (stat/unlink/mkdir/truncate/rename) and occasional enclosing
// library-layer records, across a small shared namespace so ranks collide
// on files, offsets and metadata.
func randomTrace(rng *rand.Rand) *recorder.Trace {
	ranks := 1 + rng.Intn(6)
	paths := []string{"/a", "/b", "/d/x", "/d/y", "/ckpt0001", "/ckpt0002"}
	tr := &recorder.Trace{
		Meta:    recorder.Meta{App: "prop", Ranks: ranks},
		PerRank: make([][]recorder.Record, ranks),
	}
	for r := 0; r < ranks; r++ {
		var rs []recorder.Record
		t := uint64(1 + rng.Intn(5))
		tick := func() (uint64, uint64) {
			start := t
			t += uint64(1 + rng.Intn(9))
			return start, t - 1
		}
		emit := func(layer recorder.Layer, fn recorder.Func, path, path2 string, args ...int64) {
			ts, te := tick()
			rs = append(rs, recorder.Record{
				Rank: int32(r), Layer: layer, Func: fn,
				TStart: ts, TEnd: te, Path: path, Path2: path2, Args: args,
			})
		}
		var fds []int64 // open descriptors, deterministic pick order
		nextFD := int64(3)
		var libEnd uint64 // active library-record window, 0 when none

		nOps := 10 + rng.Intn(60)
		for op := 0; op < nOps; op++ {
			// Occasionally open a library-layer window enclosing the next
			// few POSIX calls, exercising origin attribution.
			if libEnd == 0 && rng.Intn(12) == 0 {
				span := uint64(30 + rng.Intn(40))
				rs = append(rs, recorder.Record{
					Rank: int32(r), Layer: recorder.LayerHDF5, Func: recorder.FuncH5Dwrite,
					TStart: t, TEnd: t + span, Path: paths[rng.Intn(len(paths))],
				})
				libEnd = t + span
				t++
			}
			if libEnd > 0 && t >= libEnd {
				libEnd = 0
			}
			p := paths[rng.Intn(len(paths))]
			switch rng.Intn(12) {
			case 0: // open
				flags := int64(recorder.OCreat | recorder.ORdwr)
				if rng.Intn(3) == 0 {
					flags |= int64(recorder.OTrunc)
				}
				if rng.Intn(4) == 0 {
					flags |= int64(recorder.OAppend)
				}
				fd := nextFD
				nextFD++
				fds = append(fds, fd)
				emit(recorder.LayerPOSIX, recorder.FuncOpen, p, "", flags, 0o644, fd)
			case 1, 2: // sequential write/read
				if len(fds) > 0 {
					fd := fds[rng.Intn(len(fds))]
					fn, n := recorder.FuncWrite, int64(1+rng.Intn(200))
					if rng.Intn(2) == 0 {
						fn = recorder.FuncRead
					}
					emit(recorder.LayerPOSIX, fn, "", "", fd, n, n)
				}
			case 3, 4: // positional write/read
				if len(fds) > 0 {
					fd := fds[rng.Intn(len(fds))]
					fn := recorder.FuncPwrite
					if rng.Intn(2) == 0 {
						fn = recorder.FuncPread
					}
					n, off := int64(1+rng.Intn(150)), int64(rng.Intn(400))
					emit(recorder.LayerPOSIX, fn, "", "", fd, n, off, n)
				}
			case 5: // seek
				if len(fds) > 0 {
					fd := fds[rng.Intn(len(fds))]
					whence := int64(rng.Intn(3))
					off := int64(rng.Intn(300))
					emit(recorder.LayerPOSIX, recorder.FuncLseek, "", "", fd, off, whence, off)
				}
			case 6: // fsync
				if len(fds) > 0 {
					emit(recorder.LayerPOSIX, recorder.FuncFsync, "", "", fds[rng.Intn(len(fds))])
				}
			case 7: // close
				if len(fds) > 0 {
					i := rng.Intn(len(fds))
					emit(recorder.LayerPOSIX, recorder.FuncClose, "", "", fds[i])
					fds = append(fds[:i], fds[i+1:]...)
				}
			case 8: // stat family
				fns := []recorder.Func{recorder.FuncStat, recorder.FuncLstat, recorder.FuncAccess, recorder.FuncOpendir}
				emit(recorder.LayerPOSIX, fns[rng.Intn(len(fns))], p, "")
			case 9: // namespace mutations
				switch rng.Intn(3) {
				case 0:
					emit(recorder.LayerPOSIX, recorder.FuncUnlink, p, "")
				case 1:
					emit(recorder.LayerPOSIX, recorder.FuncMkdir, p, "", 0o755)
				default:
					emit(recorder.LayerPOSIX, recorder.FuncRename, p, paths[rng.Intn(len(paths))])
				}
			case 10: // truncate
				emit(recorder.LayerPOSIX, recorder.FuncTruncate, p, "", int64(rng.Intn(500)))
			case 11: // utility metadata
				emit(recorder.LayerPOSIX, recorder.FuncGetcwd, "", "")
			}
		}
		tr.PerRank[r] = rs
	}
	return tr
}

var equivWorkerCounts = []int{2, 3, 8, 64}

// TestPropertyParallelAnalysisEquivalence drives every sharded pass with
// randomized traces and asserts exact agreement with its serial oracle:
// extraction, conflict detection per model (verdicts and per-file conflict
// lists), pattern classification and mixes, the metadata census and the
// metadata-conflict list.
func TestPropertyParallelAnalysisEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 120; trial++ {
		tr := randomTrace(rng)
		fas := Extract(tr)
		hl := ClassifyHighLevel(fas, HLOptions{WorldSize: tr.Meta.Ranks})
		global, local := GlobalPattern(fas), LocalPattern(fas)
		census := MetadataCensus(tr)
		metas := DetectMetadataConflicts(tr)
		verdict := Analyze(tr)
		type modelConflicts struct {
			byFile map[string][]Conflict
			sig    ConflictSignature
		}
		models := map[pfs.Semantics]modelConflicts{}
		for _, model := range []pfs.Semantics{pfs.Session, pfs.Commit, pfs.Eventual} {
			byFile, sig := AnalyzeConflicts(tr, model)
			models[model] = modelConflicts{byFile, sig}
		}

		for _, w := range equivWorkerCounts {
			ctx := fmt.Sprintf("trial %d workers %d", trial, w)
			if got := ExtractParallel(tr, w); !reflect.DeepEqual(fas, got) {
				t.Fatalf("%s: ExtractParallel diverges", ctx)
			}
			for model, want := range models {
				gotByFile, gotSig := AnalyzeConflictsParallel(tr, model, w)
				if !reflect.DeepEqual(want.byFile, gotByFile) {
					t.Fatalf("%s: conflicts under %v diverge", ctx, model)
				}
				if want.sig != gotSig {
					t.Fatalf("%s: signature under %v diverges: %+v vs %+v", ctx, model, want.sig, gotSig)
				}
			}
			if got := AnalyzeParallel(tr, w); got != verdict {
				t.Fatalf("%s: verdict diverges: %+v vs %+v", ctx, verdict, got)
			}
			if got := ClassifyHighLevelParallel(fas, HLOptions{WorldSize: tr.Meta.Ranks}, w); !reflect.DeepEqual(hl, got) {
				t.Fatalf("%s: high-level patterns diverge:\n%+v\n%+v", ctx, hl, got)
			}
			if got := GlobalPatternParallel(fas, w); got != global {
				t.Fatalf("%s: global mix diverges: %+v vs %+v", ctx, global, got)
			}
			if got := LocalPatternParallel(fas, w); got != local {
				t.Fatalf("%s: local mix diverges: %+v vs %+v", ctx, local, got)
			}
			if got := MetadataCensusParallel(tr, w); !reflect.DeepEqual(census, got) {
				t.Fatalf("%s: census diverges", ctx)
			}
			if got := DetectMetadataConflictsParallel(tr, w); !reflect.DeepEqual(metas, got) {
				t.Fatalf("%s: metadata conflicts diverge:\n%v\n%v", ctx, metas, got)
			}
		}
	}
}

// TestPropertyMetaConflictOrderTotal pins the deterministic-merge
// requirement on the metadata pass: the output order must be a total
// function of the trace (no map-iteration leakage), which the parallel
// merge relies on.
func TestPropertyMetaConflictOrderTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 60; trial++ {
		tr := randomTrace(rng)
		want := DetectMetadataConflicts(tr)
		for rep := 0; rep < 5; rep++ {
			if got := DetectMetadataConflicts(tr); !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d: serial metadata conflict order unstable across runs", trial)
			}
		}
	}
}
