// Package posix implements the POSIX I/O layer of the simulated stack: file
// descriptors with tracked offsets, open flags (O_CREAT, O_TRUNC, O_APPEND),
// positional and stream I/O, the stdio family, and the metadata/utility
// operations the paper monitors in Section 6.4. Every call advances the
// rank's logical clock and emits a POSIX-layer trace record with the same
// argument conventions a real interception tracer would capture (see
// recorder.Record).
package posix

import (
	"errors"
	"fmt"
	"path"

	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/sim"
	"repro/internal/wal"
)

// Errors returned by the layer (in addition to wrapped pfs errors).
var (
	ErrBadFD = errors.New("posix: bad file descriptor")
)

// FD is an open file descriptor.
type fd struct {
	num      int
	h        *pfs.Handle
	path     string
	offset   int64
	appendMd bool
	stdio    bool // opened via fopen
}

// Proc is one rank's POSIX I/O endpoint.
type Proc struct {
	rank   int
	clock  *sim.Clock
	tracer *recorder.RankTracer
	client *pfs.Client
	wal    *wal.Log // optional write-ahead log in front of the pfs data path
	cost   sim.CostModel
	jit    *sim.RNG // optional per-op cost jitter
	fds    map[int]*fd
	nextFD int
	cwd    string
	umask  int64
}

// NewProc creates the POSIX layer for a rank, sharing the rank's clock and
// tracer with the other layers.
func NewProc(rank int, client *pfs.Client, clock *sim.Clock, tracer *recorder.RankTracer, cost sim.CostModel) *Proc {
	return &Proc{
		rank:   rank,
		clock:  clock,
		tracer: tracer,
		client: client,
		cost:   cost,
		fds:    make(map[int]*fd),
		nextFD: 3, // 0,1,2 reserved as on a real system
		cwd:    "/",
		umask:  0o022,
	}
}

// Rank returns the owning rank.
func (p *Proc) Rank() int { return p.rank }

// Clock exposes the rank clock.
func (p *Proc) Clock() *sim.Clock { return p.clock }

// SetJitter enables per-operation cost jitter drawn from rng (up to +25% of
// each operation's base cost). Real I/O times vary run to run — server
// queueing, cache state — which is what interleaves concurrent ranks'
// requests in the global stream (§6.2's "interleaved in time"). Without a
// source, costs are exact.
func (p *Proc) SetJitter(rng *sim.RNG) { p.jit = rng }

// SetWAL interposes a host-side write-ahead log between this rank's POSIX
// layer and the pfs data path: writes return at local-append cost and drain
// in the background, while every non-write operation is a drain barrier
// (see internal/wal). Once attached, the log owns all access to the rank's
// pfs client — posix must not bypass it, because the client itself is not
// goroutine-safe against the background drainer.
func (p *Proc) SetWAL(l *wal.Log) { p.wal = l }

// WAL returns the attached write-ahead log, if any.
func (p *Proc) WAL() *wal.Log { return p.wal }

// The pfs* helpers are the single seam where handle operations either go
// straight to the pfs or through the attached WAL.

func (p *Proc) pfsOpen(apth string, flags int, now uint64) (*pfs.Handle, uint64, error) {
	if p.wal != nil {
		return p.wal.Open(p.client, apth, flags, now)
	}
	return p.client.Open(apth, flags, now)
}

func (p *Proc) pfsWrite(h *pfs.Handle, off int64, data []byte, now uint64) (uint64, error) {
	if p.wal != nil {
		return p.wal.Write(h, off, data, now)
	}
	return h.Write(off, data, now)
}

func (p *Proc) pfsRead(h *pfs.Handle, off, n int64, now uint64) ([]byte, uint64, error) {
	if p.wal != nil {
		return p.wal.Read(h, off, n, now)
	}
	return h.Read(off, n, now)
}

func (p *Proc) pfsCommit(h *pfs.Handle, now uint64) (uint64, error) {
	if p.wal != nil {
		return p.wal.Commit(h, now)
	}
	return h.Commit(now)
}

func (p *Proc) pfsClose(h *pfs.Handle, now uint64) (uint64, error) {
	if p.wal != nil {
		return p.wal.CloseHandle(h, now)
	}
	return h.Close(now)
}

func (p *Proc) pfsTruncate(h *pfs.Handle, length int64) (uint64, error) {
	if p.wal != nil {
		return p.wal.Truncate(h, length)
	}
	return h.Truncate(length)
}

func (p *Proc) pfsVisibleSize(h *pfs.Handle, now uint64) int64 {
	if p.wal != nil {
		return p.wal.VisibleSize(h, now)
	}
	return h.VisibleSize(now)
}

// metaBarrier drains the WAL before a metadata operation that observes or
// mutates fs-level state (stat, unlink, rename), so acked-but-undrained
// writes are never invisible to metadata.
func (p *Proc) metaBarrier() error {
	if p.wal != nil {
		return p.wal.Barrier()
	}
	return nil
}

// advance moves the clock by the operation cost plus jitter.
func (p *Proc) advance(cost uint64) {
	if p.jit != nil && cost > 0 {
		cost += p.jit.Uint64() % (cost/4 + 1)
	}
	p.clock.Advance(cost)
}

func (p *Proc) abs(pth string) string {
	if pth == "" {
		return p.cwd
	}
	if pth[0] != '/' {
		pth = p.cwd + "/" + pth
	}
	return path.Clean(pth)
}

func (p *Proc) emit(fn recorder.Func, ts uint64, pth, pth2 string, args ...int64) {
	p.tracer.Emit(recorder.Record{
		Layer:  recorder.LayerPOSIX,
		Func:   fn,
		TStart: ts,
		TEnd:   p.clock.Stamp(),
		Path:   pth,
		Path2:  pth2,
		Args:   args,
	})
}

func (p *Proc) get(fdnum int) (*fd, error) {
	f, ok := p.fds[fdnum]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fdnum)
	}
	return f, nil
}

// Open opens a file with POSIX flags, returning the new descriptor.
func (p *Proc) Open(pth string, flags int, mode int64) (int, error) {
	return p.openAs(recorder.FuncOpen, pth, flags, mode, false)
}

// Creat is open(path, O_CREAT|O_WRONLY|O_TRUNC, mode).
func (p *Proc) Creat(pth string, mode int64) (int, error) {
	return p.openAs(recorder.FuncCreat, pth, recorder.OCreat|recorder.OWronly|recorder.OTrunc, mode, false)
}

func (p *Proc) openAs(fn recorder.Func, pth string, flags int, mode int64, stdio bool) (int, error) {
	ts := p.clock.Stamp()
	apth := p.abs(pth)
	h, cost, err := p.pfsOpen(apth, flags, p.clock.Now())
	p.advance(cost)
	if err != nil {
		p.emit(fn, ts, apth, "", int64(flags), mode, -1)
		return -1, err
	}
	f := &fd{num: p.nextFD, h: h, path: apth, appendMd: flags&recorder.OAppend != 0, stdio: stdio}
	if f.appendMd {
		// POSIX: the read offset starts at 0; writes position at EOF.
		f.offset = 0
	}
	p.nextFD++
	p.fds[f.num] = f
	p.emit(fn, ts, apth, "", int64(flags), mode, int64(f.num))
	return f.num, nil
}

// Close closes a descriptor. Under commit/session semantics this publishes
// the process's pending writes (close acts as commit / ends the session).
func (p *Proc) Close(fdnum int) error {
	return p.closeAs(recorder.FuncClose, fdnum)
}

func (p *Proc) closeAs(fn recorder.Func, fdnum int) error {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(fn, ts, "", "", int64(fdnum))
		return err
	}
	cost, cerr := p.pfsClose(f.h, p.clock.Now())
	p.advance(cost)
	delete(p.fds, fdnum)
	p.emit(fn, ts, "", "", int64(fdnum))
	return cerr
}

// Write writes data at the descriptor's current offset (or at EOF under
// O_APPEND) and advances the offset.
func (p *Proc) Write(fdnum int, data []byte) (int64, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncWrite, ts, "", "", int64(fdnum), int64(len(data)), -1)
		return -1, err
	}
	if f.appendMd {
		f.offset = p.pfsVisibleSize(f.h, p.clock.Now())
	}
	cost, werr := p.pfsWrite(f.h, f.offset, data, p.clock.Now())
	p.advance(cost)
	if werr != nil {
		p.emit(recorder.FuncWrite, ts, "", "", int64(fdnum), int64(len(data)), -1)
		return -1, werr
	}
	f.offset += int64(len(data))
	p.emit(recorder.FuncWrite, ts, "", "", int64(fdnum), int64(len(data)), int64(len(data)))
	return int64(len(data)), nil
}

// Read reads up to n bytes at the current offset, advancing it by the count
// actually read.
func (p *Proc) Read(fdnum int, n int64) ([]byte, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncRead, ts, "", "", int64(fdnum), n, -1)
		return nil, err
	}
	data, cost, rerr := p.pfsRead(f.h, f.offset, n, p.clock.Now())
	p.advance(cost)
	if rerr != nil {
		p.emit(recorder.FuncRead, ts, "", "", int64(fdnum), n, -1)
		return nil, rerr
	}
	f.offset += int64(len(data))
	p.emit(recorder.FuncRead, ts, "", "", int64(fdnum), n, int64(len(data)))
	return data, nil
}

// Pwrite writes at an explicit offset without moving the descriptor offset.
func (p *Proc) Pwrite(fdnum int, data []byte, off int64) (int64, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncPwrite, ts, "", "", int64(fdnum), int64(len(data)), off, -1)
		return -1, err
	}
	cost, werr := p.pfsWrite(f.h, off, data, p.clock.Now())
	p.advance(cost)
	if werr != nil {
		p.emit(recorder.FuncPwrite, ts, "", "", int64(fdnum), int64(len(data)), off, -1)
		return -1, werr
	}
	p.emit(recorder.FuncPwrite, ts, "", "", int64(fdnum), int64(len(data)), off, int64(len(data)))
	return int64(len(data)), nil
}

// Pread reads at an explicit offset without moving the descriptor offset.
func (p *Proc) Pread(fdnum int, n, off int64) ([]byte, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncPread, ts, "", "", int64(fdnum), n, off, -1)
		return nil, err
	}
	data, cost, rerr := p.pfsRead(f.h, off, n, p.clock.Now())
	p.advance(cost)
	if rerr != nil {
		p.emit(recorder.FuncPread, ts, "", "", int64(fdnum), n, off, -1)
		return nil, rerr
	}
	p.emit(recorder.FuncPread, ts, "", "", int64(fdnum), n, off, int64(len(data)))
	return data, nil
}

// Lseek repositions the descriptor offset and returns the new offset.
func (p *Proc) Lseek(fdnum int, off int64, whence int) (int64, error) {
	return p.seekAs(recorder.FuncLseek, fdnum, off, whence)
}

func (p *Proc) seekAs(fn recorder.Func, fdnum int, off int64, whence int) (int64, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(fn, ts, "", "", int64(fdnum), off, int64(whence), -1)
		return -1, err
	}
	p.advance(p.cost.SeekCost)
	var base int64
	switch whence {
	case recorder.SeekSet:
		base = 0
	case recorder.SeekCur:
		base = f.offset
	case recorder.SeekEnd:
		base = p.pfsVisibleSize(f.h, p.clock.Now())
	default:
		p.emit(fn, ts, "", "", int64(fdnum), off, int64(whence), -1)
		return -1, fmt.Errorf("posix: bad whence %d", whence)
	}
	newOff := base + off
	if newOff < 0 {
		p.emit(fn, ts, "", "", int64(fdnum), off, int64(whence), -1)
		return -1, fmt.Errorf("posix: negative seek to %d", newOff)
	}
	f.offset = newOff
	p.emit(fn, ts, "", "", int64(fdnum), off, int64(whence), newOff)
	return newOff, nil
}

// Fsync commits the file: under commit semantics the process's pending
// writes become globally visible.
func (p *Proc) Fsync(fdnum int) error { return p.syncAs(recorder.FuncFsync, fdnum) }

// Fdatasync behaves as Fsync for visibility purposes.
func (p *Proc) Fdatasync(fdnum int) error { return p.syncAs(recorder.FuncFdatasync, fdnum) }

func (p *Proc) syncAs(fn recorder.Func, fdnum int) error {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(fn, ts, "", "", int64(fdnum))
		return err
	}
	cost, serr := p.pfsCommit(f.h, p.clock.Now())
	p.advance(cost)
	p.emit(fn, ts, "", "", int64(fdnum))
	return serr
}

// Ftruncate sets the file length via a descriptor.
func (p *Proc) Ftruncate(fdnum int, length int64) error {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncFtruncate, ts, "", "", int64(fdnum), length)
		return err
	}
	cost, terr := p.pfsTruncate(f.h, length)
	p.advance(cost)
	p.emit(recorder.FuncFtruncate, ts, "", "", int64(fdnum), length)
	return terr
}

// PathOf returns the absolute path behind a descriptor (helper for layered
// libraries; does not emit a record).
func (p *Proc) PathOf(fdnum int) (string, error) {
	f, err := p.get(fdnum)
	if err != nil {
		return "", err
	}
	return f.path, nil
}

// Offset returns the descriptor's current offset (helper; no record).
func (p *Proc) Offset(fdnum int) (int64, error) {
	f, err := p.get(fdnum)
	if err != nil {
		return 0, err
	}
	return f.offset, nil
}
