package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of every instrument in a registry.
// Export is deterministic: encoding/json sorts map keys, histogram buckets
// are ascending, and Text emits sorted lines — two identical runs produce
// byte-identical output (the property the CI telemetry step checks).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every registered instrument. Instruments registered but
// never touched export as zeros — a snapshot's key set is the full
// instrument namespace, so diffs between runs line up.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// JSON renders the snapshot as indented JSON with sorted keys.
func (s Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	return append(b, '\n'), nil
}

// Text renders the snapshot as "name value" lines, sorted by name, with
// histograms expanded into per-bucket lines — the terminal-friendly form.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%-44s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%-44s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "%-44s count=%d sum=%d\n", name, h.Count, h.Sum)
		if h.Zero > 0 {
			fmt.Fprintf(&b, "  %-42s %d\n", "[0]", h.Zero)
		}
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "  %-42s %d\n", fmt.Sprintf("[%d, %d)", bk.Lo, bk.Hi), bk.N)
		}
	}
	return b.String()
}

// Diff returns a snapshot holding other minus s for counters and histograms
// (gauges copy from other — instantaneous values do not subtract). Used by
// tests and the per-phase reporting in the CLIs.
func (s Snapshot) Diff(other Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64, len(other.Gauges)),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, v := range other.Counters {
		if dv := v - s.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range other.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range other.Histograms {
		prev := s.Histograms[name]
		if h.Count == prev.Count {
			continue
		}
		dh := HistogramSnapshot{
			Count: h.Count - prev.Count,
			Sum:   h.Sum - prev.Sum,
			Zero:  h.Zero - prev.Zero,
		}
		prevByLo := make(map[int64]int64, len(prev.Buckets))
		for _, bk := range prev.Buckets {
			prevByLo[bk.Lo] = bk.N
		}
		for _, bk := range h.Buckets {
			if n := bk.N - prevByLo[bk.Lo]; n > 0 {
				dh.Buckets = append(dh.Buckets, Bucket{Lo: bk.Lo, Hi: bk.Hi, N: n})
			}
		}
		sort.Slice(dh.Buckets, func(i, j int) bool { return dh.Buckets[i].Lo < dh.Buckets[j].Lo })
		d.Histograms[name] = dh
	}
	return d
}
