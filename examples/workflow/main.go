// Workflow: the emerging-workload case the paper defers to future work
// (§3.5) — a simulation pipelined to an analysis module through the file
// system. On an eventual-consistency PFS no commit or close/open discipline
// makes data promptly visible; the analysis must *poll* until propagation
// completes. This example runs a producer job and then a consumer job
// against the same simulated eventual-consistency file system and shows
// (a) an impatient consumer reads short/stale data, and (b) a polling
// consumer eventually reads every snapshot correctly — quantifying the
// waiting the propagation delay costs.
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

const (
	snapshots = 4
	snapBytes = 8 << 10
	delayNS   = 40_000_000 // 40 ms propagation delay
)

func pattern(i int, n int64) []byte {
	b := make([]byte, n)
	for j := range b {
		b[j] = byte(i*31 + j%97)
	}
	return b
}

func producer(fs *pfs.FileSystem) {
	res, err := harness.Run(harness.Config{Ranks: 8, PPN: 4, FS: fs},
		recorder.Meta{App: "sim-producer"}, func(ctx *harness.Ctx) error {
			for s := 0; s < snapshots; s++ {
				ctx.Compute(100, 300)
				fd, err := ctx.OS.Open(fmt.Sprintf("/pipe/snap.%03d.r%02d", s, ctx.Rank),
					recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
				if err != nil {
					return err
				}
				if _, err := ctx.OS.Write(fd, pattern(s, snapBytes)); err != nil {
					return err
				}
				if err := ctx.OS.Close(fd); err != nil {
					return err
				}
			}
			return nil
		})
	if err != nil || res.Err() != nil {
		log.Fatal(err, res.Err())
	}
	fmt.Printf("producer: wrote %d snapshots x %d ranks (%d KiB total)\n",
		snapshots, 8, snapshots*8*snapBytes/1024)
}

// consume reads every snapshot; with polling it waits (advancing simulated
// time) until the file has propagated, without polling it takes whatever is
// visible immediately. Returns (shortReads, pollRounds).
func consume(fs *pfs.FileSystem, poll bool) (int, int) {
	short, rounds := 0, 0
	res, err := harness.Run(harness.Config{Ranks: 4, PPN: 4, FS: fs},
		recorder.Meta{App: "analysis-consumer"}, func(ctx *harness.Ctx) error {
			for s := ctx.Rank; s < snapshots*8; s += ctx.Size {
				path := fmt.Sprintf("/pipe/snap.%03d.r%02d", s/8, s%8)
				for {
					fd, err := ctx.OS.Open(path, recorder.ORdonly, 0)
					if err != nil {
						return err
					}
					got, err := ctx.OS.Read(fd, snapBytes)
					if cerr := ctx.OS.Close(fd); cerr != nil {
						return cerr
					}
					if err != nil {
						return err
					}
					if int64(len(got)) == snapBytes {
						break
					}
					if !poll {
						if ctx.Rank == 0 {
							short++
						}
						break
					}
					// Eventual consistency: wait out the propagation delay
					// and retry (simulated time advances).
					if ctx.Rank == 0 {
						rounds++
					}
					ctx.Compute(5_000, 10_000) // 5-10 ms backoff
				}
			}
			return ctx.Failures()
		})
	if err != nil || res.Err() != nil {
		log.Fatal(err, res.Err())
	}
	return short, rounds
}

func main() {
	fmt.Println("Pipelined simulation→analysis on an eventual-consistency PFS")
	fmt.Printf("(propagation delay %d ms)\n\n", delayNS/1_000_000)

	fs := pfs.New(pfs.Options{Semantics: pfs.Eventual, EventualDelay: delayNS})
	producer(fs)

	short, _ := consume(fs, false)
	fmt.Printf("impatient consumer: %d of its snapshots read short/stale — close()\n", short)
	fmt.Println("  gave no visibility guarantee here, unlike commit/session semantics")

	fs2 := pfs.New(pfs.Options{Semantics: pfs.Eventual, EventualDelay: delayNS})
	producer(fs2)
	short2, rounds := consume(fs2, true)
	fmt.Printf("polling consumer:   %d short reads after %d backoff rounds — correct,\n", short2, rounds)
	fmt.Println("  at the price of waiting out the propagation delay per snapshot")

	fmt.Println("\nThis is why the paper scopes its study to the three strongest models:")
	fmt.Println("traditional applications assume a deterministic write→read relationship;")
	fmt.Println("eventual consistency pushes the synchronization burden into the workflow.")
}
