package storage

import (
	"path/filepath"
	"testing"
	"time"
)

// TestOSDiskRoundTrip drives the whole Backend surface on the OS backend —
// the operations the durable layers (ckpt, wal, recorder) actually perform.
func TestOSDiskRoundTrip(t *testing.T) {
	b := OS()
	if b.Name() != "osdisk" {
		t.Fatalf("Name = %q", b.Name())
	}
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := b.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "c.dat")
	f, err := b.Open(path, OCreate|ORdwr, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ?????")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("world"), 6); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("ReadFile = %q", got)
	}
	if n, err := b.Stat(path); err != nil || n != 11 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
	names, err := b.List(sub)
	if err != nil || len(names) != 1 || names[0] != "c.dat" {
		t.Fatalf("List = %v, %v", names, err)
	}
	moved := filepath.Join(sub, "d.dat")
	if err := b.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadFile(path); !IsNotExist(err) {
		t.Fatalf("old path after rename: err = %v, want not-exist", err)
	}
	if err := b.Remove(moved); err != nil {
		t.Fatal(err)
	}
	// A missing directory lists empty, not an error (recovery scans
	// directories that may never have been created).
	names, err = b.List(filepath.Join(dir, "never-created"))
	if err != nil || len(names) != 0 {
		t.Fatalf("List(missing) = %v, %v", names, err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	b := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	for _, content := range []string{"first", "second and longer"} {
		if err := WriteFileAtomic(b, path, []byte(content)); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("after WriteFileAtomic(%q): %q, %v", content, got, err)
		}
	}
	// No temp litter left behind: the directory holds exactly the target.
	names, err := b.List(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("List = %v, %v (want just manifest.json)", names, err)
	}
}

func TestTempDirRemoveAll(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    Backend
	}{
		{"osdisk", OS()},
		{"objstore", NewObjStore(ObjStoreOptions{Root: t.TempDir(), VisibilityDelay: time.Millisecond})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir, err := TempDir(tc.b, "semfs-test-")
			if err != nil {
				t.Fatal(err)
			}
			path := joinPath(dir, "x.dat")
			if err := WriteFileAtomic(tc.b, path, []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := RemoveAll(tc.b, dir); err != nil {
				t.Fatal(err)
			}
			Settle(tc.b)
			if _, err := tc.b.ReadFile(path); !IsNotExist(err) {
				t.Fatalf("after RemoveAll: err = %v, want not-exist", err)
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	root := t.TempDir()
	for _, tc := range []struct {
		spec     string
		wantName string
		wantBase string
		wantLag  time.Duration
	}{
		{"osdisk", "osdisk", "osdisk", 0},
		{"", "osdisk", "osdisk", 0},
		{"objstore:delay=5ms,root=" + root, "objstore", "objstore", 5 * time.Millisecond},
		{"flaky:seed=3", "flaky(osdisk)", "osdisk", 0},
		{"flaky:base=objstore,delay=1ms,root=" + root + ",seed=3,kinds=transient", "flaky(objstore)", "objstore", time.Millisecond},
	} {
		b, err := ParseSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if b.Name() != tc.wantName {
			t.Errorf("ParseSpec(%q).Name() = %q, want %q", tc.spec, b.Name(), tc.wantName)
		}
		if Base(b).Name() != tc.wantBase {
			t.Errorf("ParseSpec(%q) base = %q, want %q", tc.spec, Base(b).Name(), tc.wantBase)
		}
		if got := PublishLag(b); got != tc.wantLag {
			t.Errorf("ParseSpec(%q) PublishLag = %v, want %v", tc.spec, got, tc.wantLag)
		}
	}
	for _, bad := range []string{"s3", "objstore:delay=nope", "flaky:base=tape", "flaky:kinds=spicy", "osdisk:x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestParseSpecTransientKinds pins the CLI contract the backend-matrix CI
// leans on: kinds=transient must yield a schedule the retry policy always
// converges under (Schedule.TransientOnly).
func TestParseSpecTransientKinds(t *testing.T) {
	for seed := uint64(1); seed <= 32; seed++ {
		sched := GenSchedule(seed, GenOptions{Kinds: []FaultKind{FaultLatency, FaultTransient}})
		if !sched.TransientOnly() {
			t.Fatalf("seed %d: kinds=transient schedule is not TransientOnly:\n%s", seed, sched.Encode())
		}
	}
	all := GenSchedule(7, GenOptions{Count: 32})
	if all.TransientOnly() {
		t.Fatalf("32-injection all-kinds schedule claims TransientOnly:\n%s", all.Encode())
	}
	if !(Schedule{}).TransientOnly() {
		t.Fatal("empty schedule must be TransientOnly")
	}
	if (Schedule{WedgeAfter: 1}).TransientOnly() {
		t.Fatal("wedging schedule must not be TransientOnly")
	}
}

func TestBaseAndHealthWalkWrapperChains(t *testing.T) {
	inner := OS()
	b := NewRetry(NewFlaky(inner, Schedule{}), RetryOptions{})
	if Base(b) != inner {
		t.Fatalf("Base = %v", Base(b))
	}
	if !Health(b) {
		t.Fatal("fresh chain reports unhealthy")
	}
}

func TestSplitJoinPath(t *testing.T) {
	for _, tc := range []struct{ path, dir, base string }{
		{"a/b/c", "a/b", "c"},
		{"c", ".", "c"},
		{"/c", "/", "c"},
	} {
		d, b := splitPath(tc.path)
		if d != tc.dir || b != tc.base {
			t.Errorf("splitPath(%q) = %q, %q", tc.path, d, b)
		}
	}
	if got := joinPath(".", "x"); got != "x" {
		t.Errorf("joinPath(., x) = %q", got)
	}
	if got := joinPath("a/b", "x"); got != "a/b/x" {
		t.Errorf("joinPath = %q", got)
	}
}
