package core

import (
	"container/heap"
	"slices"
	"sync"
)

// DetectOverlapsMerge is the variant the paper sketches ("sorting can be
// replaced by merging as records for each rank are already sorted"): the
// intervals are partitioned per rank, each rank's list is sorted by start
// offset independently (in parallel), and the sweep consumes them through a
// k-way merge instead of one global sort. Results are identical to
// DetectOverlaps.
func DetectOverlapsMerge(ivs []Interval, onPair func(OverlapPair)) RankPairTable {
	table := make(RankPairTable)
	if len(ivs) < 2 {
		return table
	}
	// Partition indices by rank.
	perRank := make(map[int32][]int)
	for i := range ivs {
		perRank[ivs[i].Rank] = append(perRank[ivs[i].Rank], i)
	}
	lists := make([][]int, 0, len(perRank))
	for _, l := range perRank {
		lists = append(lists, l)
	}
	// Sort each rank's list by offset, concurrently.
	var wg sync.WaitGroup
	for _, l := range lists {
		wg.Add(1)
		go func(l []int) {
			defer wg.Done()
			slices.SortFunc(l, func(a, b int) int {
				ia, ib := &ivs[a], &ivs[b]
				switch {
				case ia.Os != ib.Os:
					if ia.Os < ib.Os {
						return -1
					}
					return 1
				case ia.T != ib.T:
					if ia.T < ib.T {
						return -1
					}
					return 1
				default:
					return a - b
				}
			})
		}(l)
	}
	wg.Wait()

	// K-way merge into offset order, sweeping with the active-window check
	// of Algorithm 1: an interval overlaps every later-starting interval
	// until one starts at or past its end.
	h := &mergeHeap{ivs: ivs}
	for _, l := range lists {
		if len(l) > 0 {
			h.items = append(h.items, mergeItem{list: l})
		}
	}
	heap.Init(h)
	// Active window: intervals whose Oe may still cover upcoming starts.
	var active []int
	for h.Len() > 0 {
		it := &h.items[0]
		idx := it.list[it.pos]
		it.pos++
		if it.pos >= len(it.list) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
		cur := &ivs[idx]
		// Drop exhausted actives and pair with the rest.
		kept := active[:0]
		for _, a := range active {
			if ivs[a].Oe <= cur.Os {
				continue
			}
			kept = append(kept, a)
			table[rankKey(ivs[a].Rank, cur.Rank)]++
			if onPair != nil {
				first, second := a, idx
				if earlier(ivs, second, first) {
					first, second = second, first
				}
				if ivs[first].Write {
					onPair(OverlapPair{A: first, B: second})
				}
			}
		}
		active = append(kept, idx)
	}
	return table
}

type mergeItem struct {
	list []int
	pos  int
}

type mergeHeap struct {
	ivs   []Interval
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a := &h.ivs[h.items[i].list[h.items[i].pos]]
	b := &h.ivs[h.items[j].list[h.items[j].pos]]
	if a.Os != b.Os {
		return a.Os < b.Os
	}
	return a.T < b.T
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
