package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	lines := []string{
		"goos: linux",
		"BenchmarkAnalyze-8   \t     100\t  11093 ns/op\t  2048 B/op\t      12 allocs/op",
		"BenchmarkNoMem-8     \t    5000\t    321 ns/op",
		"BenchmarkDecode-8    \t       2\t  48995 ns/op\t 208.20 MB/s\t 20410659 records/s\t  328 B/op\t  10 allocs/op",
		"PASS",
	}
	got := parse(lines)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	b := got["BenchmarkAnalyze"]
	if b.NsPerOp != 11093 || b.BytesPerOp != 2048 || b.AllocsPerOp != 12 {
		t.Fatalf("BenchmarkAnalyze = %+v", b)
	}
	if b.Extra != nil {
		t.Fatalf("BenchmarkAnalyze grew extra metrics: %+v", b.Extra)
	}
	if got["BenchmarkNoMem"].NsPerOp != 321 {
		t.Fatalf("BenchmarkNoMem = %+v", got["BenchmarkNoMem"])
	}
	// Custom b.ReportMetric units land in Extra, standard units stay typed.
	d := got["BenchmarkDecode"]
	if d.BytesPerOp != 328 || d.AllocsPerOp != 10 {
		t.Fatalf("BenchmarkDecode = %+v", d)
	}
	if d.Extra["MB/s"] != 208.20 || d.Extra["records/s"] != 20410659 {
		t.Fatalf("BenchmarkDecode extra metrics = %+v", d.Extra)
	}
}

func TestWorse(t *testing.T) {
	for _, tc := range []struct{ base, got, want float64 }{
		{100, 120, 20},
		{100, 80, -20},
		{0, 0, 0},
		{0, 5, 100},
	} {
		if d := worse(tc.base, tc.got); d != tc.want {
			t.Errorf("worse(%v, %v) = %v, want %v", tc.base, tc.got, d, tc.want)
		}
	}
}

func TestMergeBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")

	// Missing file: starts empty, nothing kept.
	kept, err := mergeBaseline(path, map[string]Bench{"BenchmarkA": {NsPerOp: 10, AllocsPerOp: 1}})
	if err != nil || len(kept) != 0 {
		t.Fatalf("merge into missing file: kept=%v err=%v", kept, err)
	}

	// Re-measured entries overwrite, unrelated entries survive.
	kept, err = mergeBaseline(path, map[string]Bench{
		"BenchmarkA": {NsPerOp: 20, AllocsPerOp: 2},
		"BenchmarkB": {NsPerOp: 5},
	})
	if err != nil || len(kept) != 0 {
		t.Fatalf("merge update: kept=%v err=%v", kept, err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if a := base.Benchmarks["BenchmarkA"]; a.NsPerOp != 20 || a.AllocsPerOp != 2 {
		t.Fatalf("BenchmarkA not overwritten: %+v", a)
	}
	if b := base.Benchmarks["BenchmarkB"]; b.NsPerOp != 5 {
		t.Fatalf("BenchmarkB missing: %+v", b)
	}

	// A partial re-run must preserve entries it did not measure AND report
	// them as kept — the regression this guards: a narrowed -bench filter
	// silently dropping the rest of a shared baseline.
	kept, err = mergeBaseline(path, map[string]Bench{"BenchmarkB": {NsPerOp: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 || kept[0] != "BenchmarkA" {
		t.Fatalf("kept = %v, want [BenchmarkA]", kept)
	}
	base, err = loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if a := base.Benchmarks["BenchmarkA"]; a.NsPerOp != 20 || a.AllocsPerOp != 2 {
		t.Fatalf("BenchmarkA clobbered by partial re-run: %+v", a)
	}
	if b := base.Benchmarks["BenchmarkB"]; b.NsPerOp != 6 {
		t.Fatalf("BenchmarkB not updated: %+v", b)
	}

	// A corrupt existing baseline is refused, not clobbered.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeBaseline(bad, map[string]Bench{"BenchmarkA": {}}); err == nil {
		t.Fatal("mergeBaseline accepted a corrupt baseline")
	}
	if data, _ := os.ReadFile(bad); string(data) != "{not json" {
		t.Fatalf("corrupt baseline was rewritten: %q", data)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"benchmarks":{"BenchmarkX":{"ns_per_op":1,"bytes_per_op":2,"allocs_per_op":3}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(good)
	if err != nil {
		t.Fatalf("good baseline: %v", err)
	}
	if b := base.Benchmarks["BenchmarkX"]; b.AllocsPerOp != 3 {
		t.Fatalf("BenchmarkX = %+v", b)
	}

	cases := []struct {
		name    string
		path    string
		content string // "" = do not create the file
		wantMsg string
	}{
		{"missing", filepath.Join(dir, "absent.json"), "", "regenerate with -emit"},
		{"unparsable", filepath.Join(dir, "broken.json"), "{not json", "not valid baseline JSON"},
		{"empty-object", filepath.Join(dir, "empty.json"), "{}", "no benchmarks"},
		{"wrong-shape", filepath.Join(dir, "shape.json"), `{"benchmarks":{}}`, "no benchmarks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.content != "" {
				if err := os.WriteFile(tc.path, []byte(tc.content), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			_, err := loadBaseline(tc.path)
			if err == nil {
				t.Fatalf("loadBaseline(%s) succeeded, want error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Errorf("error %q does not name the file", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q missing %q", err, tc.wantMsg)
			}
		})
	}
}
