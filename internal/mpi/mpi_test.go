package mpi

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/recorder"
	"repro/internal/sim"
)

// runWorld spawns n ranks, runs body on each, and returns the per-rank procs
// after completion.
func runWorld(t *testing.T, n int, body func(p *Proc)) []*Proc {
	t.Helper()
	topo := sim.NewTopology(n, 4)
	w := NewWorld(topo, sim.DefaultCostModel())
	procs := make([]*Proc, n)
	for r := 0; r < n; r++ {
		procs[r] = NewProc(w, r, sim.NewClock(0, 0), recorder.NewRankTracer(r))
	}
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			body(p)
		}(procs[r])
	}
	wg.Wait()
	return procs
}

func TestSendRecvDeliversData(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 7, []byte("payload"))
		} else {
			got := p.Recv(0, 7)
			if !bytes.Equal(got, []byte("payload")) {
				t.Errorf("recv got %q", got)
			}
		}
	})
}

func TestRecvAdvancesClockPastSend(t *testing.T) {
	procs := runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Compute(10) // sender is "ahead" in time
			p.Send(1, 0, []byte("x"))
		} else {
			p.Recv(0, 0)
		}
	})
	sendTime := procs[0].Clock().Now()
	recvTime := procs[1].Clock().Now()
	if recvTime <= 0 || recvTime < sendTime-procs[0].world.cost.MsgLatency {
		t.Fatalf("receiver clock %d did not advance past sender activity %d", recvTime, sendTime)
	}
}

func TestSendRecvFIFOPerTag(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 10; i++ {
				p.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				got := p.Recv(0, 3)
				if got[0] != byte(i) {
					t.Errorf("message %d arrived out of order: %d", i, got[0])
				}
			}
		}
	})
}

func TestTagsMatchIndependently(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("one"))
			p.Send(1, 2, []byte("two"))
		} else {
			// Receive in the opposite order of sends — tags must isolate.
			if got := p.Recv(0, 2); !bytes.Equal(got, []byte("two")) {
				t.Errorf("tag 2 got %q", got)
			}
			if got := p.Recv(0, 1); !bytes.Equal(got, []byte("one")) {
				t.Errorf("tag 1 got %q", got)
			}
		}
	})
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	procs := runWorld(t, 4, func(p *Proc) {
		p.Compute(p.Rank() + 1) // ranks arrive at different times
		p.Barrier()
	})
	exit := procs[0].Clock().Now()
	for _, p := range procs[1:] {
		if p.Clock().Now() != exit {
			t.Fatalf("barrier exit clocks differ: %d vs %d", p.Clock().Now(), exit)
		}
	}
	// Exit must be at least the slowest arrival.
	slowest := uint64(4) * sim.DefaultCostModel().LocalCompute
	if exit < slowest {
		t.Fatalf("barrier exit %d earlier than slowest arrival %d", exit, slowest)
	}
}

func TestBcast(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		var data []byte
		if p.Rank() == 2 {
			data = []byte("from-root")
		}
		got := p.Bcast(2, data)
		if !bytes.Equal(got, []byte("from-root")) {
			t.Errorf("rank %d bcast got %q", p.Rank(), got)
		}
	})
}

func TestGather(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		out := p.Gather(0, []byte{byte(p.Rank() * 10)})
		if p.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if out[r][0] != byte(r*10) {
					t.Errorf("gather slot %d = %d", r, out[r][0])
				}
			}
		} else if out != nil {
			t.Errorf("non-root rank %d got gather data", p.Rank())
		}
	})
}

func TestAllgather(t *testing.T) {
	runWorld(t, 3, func(p *Proc) {
		out := p.Allgather([]byte{byte('a' + p.Rank())})
		want := []byte{'a', 'b', 'c'}
		for r := 0; r < 3; r++ {
			if out[r][0] != want[r] {
				t.Errorf("rank %d allgather slot %d = %c", p.Rank(), r, out[r][0])
			}
		}
	})
}

func TestScatter(t *testing.T) {
	runWorld(t, 3, func(p *Proc) {
		var parts [][]byte
		if p.Rank() == 1 {
			parts = [][]byte{[]byte("p0"), []byte("p1"), []byte("p2")}
		}
		got := p.Scatter(1, parts)
		want := []byte{'p', byte('0' + p.Rank())}
		if !bytes.Equal(got, want) {
			t.Errorf("rank %d scatter got %q, want %q", p.Rank(), got, want)
		}
	})
}

func TestReduceAndAllreduce(t *testing.T) {
	runWorld(t, 4, func(p *Proc) {
		sum := p.Reduce(0, int64(p.Rank()+1), OpSum)
		if p.Rank() == 0 && sum != 10 {
			t.Errorf("reduce sum = %d, want 10", sum)
		}
		if p.Rank() != 0 && sum != 0 {
			t.Errorf("non-root reduce = %d, want 0", sum)
		}
		max := p.Allreduce(int64(p.Rank()*5), OpMax)
		if max != 15 {
			t.Errorf("allreduce max = %d, want 15", max)
		}
		min := p.Allreduce(int64(p.Rank()), OpMin)
		if min != 0 {
			t.Errorf("allreduce min = %d, want 0", min)
		}
	})
}

func TestAlltoall(t *testing.T) {
	runWorld(t, 3, func(p *Proc) {
		parts := make([][]byte, 3)
		for dst := 0; dst < 3; dst++ {
			parts[dst] = []byte{byte(p.Rank()), byte(dst)}
		}
		got := p.Alltoall(parts)
		for src := 0; src < 3; src++ {
			want := []byte{byte(src), byte(p.Rank())}
			if !bytes.Equal(got[src], want) {
				t.Errorf("rank %d alltoall from %d = %v, want %v", p.Rank(), src, got[src], want)
			}
		}
	})
}

func TestCollectiveSequenceNumbersMatch(t *testing.T) {
	procs := runWorld(t, 3, func(p *Proc) {
		p.Barrier()
		p.Allreduce(1, OpSum)
		p.Barrier()
	})
	// Every rank's k-th collective record must carry the same sequence number.
	var seqs [3][]int64
	for r, p := range procs {
		for _, rec := range p.tracer.Records() {
			if rec.Layer == recorder.LayerMPI {
				seqs[r] = append(seqs[r], rec.Arg(2))
			}
		}
	}
	if len(seqs[0]) != 3 {
		t.Fatalf("expected 3 collective records, got %d", len(seqs[0]))
	}
	for r := 1; r < 3; r++ {
		for k := range seqs[0] {
			if seqs[r][k] != seqs[0][k] {
				t.Fatalf("collective %d seq mismatch: rank %d has %d, rank 0 has %d", k, r, seqs[r][k], seqs[0][k])
			}
		}
	}
}

func TestTraceRecordsEmitted(t *testing.T) {
	procs := runWorld(t, 2, func(p *Proc) {
		p.Barrier()
		if p.Rank() == 0 {
			p.Send(1, 5, []byte("abc"))
		} else {
			p.Recv(0, 5)
		}
	})
	recs0 := procs[0].tracer.Records()
	if len(recs0) != 2 {
		t.Fatalf("rank 0 has %d records, want 2", len(recs0))
	}
	if recs0[0].Func != recorder.FuncMPIBarrier {
		t.Fatalf("first record %v, want MPI_Barrier", recs0[0].Func)
	}
	send := recs0[1]
	if send.Func != recorder.FuncMPISend || send.Arg(0) != 1 || send.Arg(1) != 5 || send.Arg(2) != 3 {
		t.Fatalf("send record wrong: %v", send)
	}
	recv := procs[1].tracer.Records()[1]
	if recv.Func != recorder.FuncMPIRecv || recv.Arg(0) != 0 || recv.Arg(1) != 5 {
		t.Fatalf("recv record wrong: %v", recv)
	}
	if recv.TEnd < send.TStart {
		t.Fatalf("recv completed (%d) before send started (%d)", recv.TEnd, send.TStart)
	}
}

func TestDeterministicClocks(t *testing.T) {
	run := func() []uint64 {
		procs := runWorld(t, 4, func(p *Proc) {
			p.Barrier()
			if p.Rank()%2 == 0 {
				p.Send(p.Rank()+1, 0, make([]byte, 100))
			} else {
				p.Recv(p.Rank()-1, 0)
			}
			p.Allreduce(int64(p.Rank()), OpSum)
		})
		out := make([]uint64, 4)
		for i, p := range procs {
			out[i] = p.Clock().Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d clock differs between runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestDetachReleasesCollectives(t *testing.T) {
	// Rank 3 "crashes" after the first barrier; the survivors' remaining
	// collectives must complete without it instead of wedging.
	procs := runWorld(t, 4, func(p *Proc) {
		p.Barrier()
		if p.Rank() == 3 {
			p.Detach()
			return
		}
		p.Barrier()
		if got := p.Allreduce(1, OpSum); got != 3 {
			t.Errorf("rank %d: post-detach allreduce = %d, want 3", p.Rank(), got)
		}
		p.Barrier()
	})
	_ = procs
}

func TestDetachMidRoundReleasesWaiters(t *testing.T) {
	// Ranks 0 and 1 are already blocked in a barrier when rank 2 detaches:
	// the in-progress round must be released, not just future ones.
	start := make(chan struct{})
	runWorld(t, 3, func(p *Proc) {
		if p.Rank() == 2 {
			<-start
			p.Detach()
			return
		}
		if p.Rank() == 0 {
			close(start) // imperfect ordering is fine; depart covers both cases
		}
		p.Barrier()
	})
}

func TestRecvFromDepartedPeerReturnsNil(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("before-death"))
			p.Detach()
			return
		}
		if got := p.Recv(0, 1); !bytes.Equal(got, []byte("before-death")) {
			t.Errorf("queued message lost: %q", got)
		}
		if got := p.Recv(0, 2); got != nil {
			t.Errorf("recv from dead peer = %q, want nil", got)
		}
	})
}

func TestDetachIdempotent(t *testing.T) {
	runWorld(t, 2, func(p *Proc) {
		p.Barrier()
		if p.Rank() == 1 {
			p.Detach()
			p.Detach() // double-detach must not corrupt the departed count
			return
		}
		p.Barrier()
		p.Barrier()
	})
}
