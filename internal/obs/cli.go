package obs

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// CLI plumbing shared by cmd/semanalyze, cmd/semrepro and cmd/pfsbench:
// the -metrics / -trace-spans / -pprof flags all funnel through here so the
// three binaries expose telemetry identically.

// CLIFlags bundles the telemetry flags of the repo's binaries. Call
// Register before flag.Parse, Start right after it, and Flush (usually
// deferred) once the run finishes.
type CLIFlags struct {
	Metrics    string
	TraceSpans string
	Pprof      string
}

// Register installs the three flags on fs.
func (f *CLIFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Metrics, "metrics", "",
		`write a JSON metrics snapshot to this file on exit ("-" for stdout)`)
	fs.StringVar(&f.TraceSpans, "trace-spans", "",
		"write spans to this file on exit as Chrome trace_event JSON (open in chrome://tracing or Perfetto)")
	fs.StringVar(&f.Pprof, "pprof", "",
		`serve net/http/pprof on this address (e.g. "localhost:6060" or ":0")`)
}

// Start applies the parsed flags: resets the default registry so the
// snapshot covers exactly this invocation, enables span collection when
// -trace-spans was given, and starts the pprof listener when -pprof was,
// logging its URL to w.
func (f *CLIFlags) Start(w io.Writer) error {
	if f.Metrics != "" {
		Default().Reset()
	}
	if f.TraceSpans != "" {
		Default().Tracer().SetEnabled(true)
	}
	if f.Pprof != "" {
		addr, err := StartPprof(f.Pprof)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "pprof: http://%s/debug/pprof/\n", addr)
	}
	return nil
}

// Flush writes the requested telemetry files.
func (f *CLIFlags) Flush() error {
	var errs []error
	if f.Metrics != "" {
		errs = append(errs, WriteMetricsFile(f.Metrics))
	}
	if f.TraceSpans != "" {
		errs = append(errs, WriteSpansFile(f.TraceSpans))
	}
	return errors.Join(errs...)
}

// WriteMetricsFile snapshots the default registry and writes it to path as
// JSON ("-" writes to stdout).
func WriteMetricsFile(path string) error {
	b, err := Default().Snapshot().JSON()
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write metrics: %w", err)
	}
	return nil
}

// WriteSpansFile writes the default tracer's spans to path as a Chrome
// trace_event JSON document (open in chrome://tracing or Perfetto).
func WriteSpansFile(path string) error {
	b, err := Default().Tracer().ChromeTraceJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("obs: write spans: %w", err)
	}
	return nil
}

// StartPprof serves net/http/pprof on addr (e.g. "localhost:6060") in a
// background goroutine and returns the bound address, so callers can pass
// ":0" and print where the profiler actually landed. The listener lives for
// the remainder of the process.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		// The listener is closed only by process exit; Serve's error is
		// uninteresting by then.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}
