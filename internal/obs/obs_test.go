package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// hammer drives one registry through a deterministic concurrent workload:
// every goroutine touches the same instruments with values derived only
// from its loop index, so the end state is independent of interleaving.
func hammer(r *Registry, goroutines, iters int) {
	c := r.Counter("test.ops")
	g := r.Gauge("test.depth")
	hi := r.Gauge("test.high")
	h := r.Histogram("test.sizes")
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				hi.SetMax(int64(i % 17))
				h.Observe(int64(i % 5000))
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentHammer checks, under -race, that parallel instrument
// updates lose nothing: counts, histogram totals and the high-water mark
// are exact after an 8-goroutine hammering.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines, iters = 8, 2000
	hammer(r, goroutines, iters)

	if got, want := r.Counter("test.ops").Value(), int64(goroutines*iters); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("test.depth").Value(); got != 0 {
		t.Errorf("balanced gauge = %d, want 0", got)
	}
	if got := r.Gauge("test.high").Value(); got != 16 {
		t.Errorf("high-water gauge = %d, want 16", got)
	}
	hs := r.Histogram("test.sizes").Snapshot()
	if got, want := hs.Count, int64(goroutines*iters); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	var inBuckets int64
	for _, b := range hs.Buckets {
		inBuckets += b.N
	}
	if inBuckets+hs.Zero != hs.Count {
		t.Errorf("buckets (%d) + zero (%d) != count (%d)", inBuckets, hs.Zero, hs.Count)
	}
	// i%5000 hits 0 once per goroutine per 5000 iterations: iters/5000
	// rounded up times goroutines... with iters=2000 only i=0 is zero.
	if hs.Zero != goroutines {
		t.Errorf("zero bucket = %d, want %d", hs.Zero, goroutines)
	}
}

// TestSnapshotDeterminism runs the identical workload on two fresh
// registries and requires byte-identical JSON and text exports.
func TestSnapshotDeterminism(t *testing.T) {
	export := func() ([]byte, string) {
		r := NewRegistry()
		hammer(r, 4, 500)
		r.Counter("zzz.registered.untouched") // zero-valued keys still export
		s := r.Snapshot()
		j, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j, s.Text()
	}
	j1, t1 := export()
	j2, t2 := export()
	if !bytes.Equal(j1, j2) {
		t.Errorf("snapshot JSON differs between identical runs:\n%s\n---\n%s", j1, j2)
	}
	if t1 != t2 {
		t.Errorf("snapshot text differs between identical runs:\n%s\n---\n%s", t1, t2)
	}
	var round Snapshot
	if err := json.Unmarshal(j1, &round); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if round.Counters["zzz.registered.untouched"] != 0 {
		t.Error("untouched counter missing from snapshot")
	}
}

// TestBucketOf pins the bucket function, including the zero/negative edge.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, -1}, {0, -1}, {1, 0}, {2, 1}, {3, 1}, {4, 2},
		{1023, 9}, {1024, 10}, {1 << 40, 40},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestDisabledPathAllocatesZero asserts the near-free contract: with the
// registry disabled, counter/gauge/histogram updates and span starts
// allocate nothing.
func TestDisabledPathAllocatesZero(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("off.counter")
	g := r.Gauge("off.gauge")
	h := r.Histogram("off.hist")
	r.SetEnabled(false)
	tr := r.Tracer() // never enabled
	fl := NewFlightRecorder(64)
	class := FlightClassFor("test.disabled")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		g.SetMax(9)
		h.Observe(4096)
		sp := tr.Start("noop", "test")
		sp.Child("inner").End()
		sp.OnLane(2).End()
		ts := tr.StartTrace("noop", "test")
		tr.StartLinked("linked", "test", ts.TraceID(), ts.ID()).End()
		ts.End()
		fl.Record(class, 1, 0, 2, 3)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f per op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Error("disabled instruments recorded data")
	}
	if len(fl.Events()) != 0 {
		t.Error("disabled flight recorder recorded events")
	}
}

// TestResetAndReenable checks Reset zeroes values but keeps registration,
// and that SetEnabled(true) restores collection.
func TestResetAndReenable(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(7)
	r.Histogram("h").Observe(10)
	r.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after Reset = %d", c.Value())
	}
	if n := r.Histogram("h").Count(); n != 0 {
		t.Errorf("histogram count after Reset = %d", n)
	}
	r.SetEnabled(false)
	c.Add(1)
	r.SetEnabled(true)
	c.Add(1)
	if c.Value() != 1 {
		t.Errorf("counter = %d, want 1 (only the re-enabled Add)", c.Value())
	}
	if _, ok := r.Snapshot().Counters["x"]; !ok {
		t.Error("Reset dropped the registration")
	}
}

// BenchmarkDisabledOverhead measures the no-op cost of a fully
// instrumented hot path with the registry disabled — the bound that lets
// instrumentation stay compiled into pfs and core. Run with -benchmem:
// allocs/op must be 0.
func BenchmarkDisabledOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	g := r.Gauge("bench.gauge")
	h := r.Histogram("bench.hist")
	r.SetEnabled(false)
	tr := r.Tracer()
	fl := NewFlightRecorder(64)
	class := FlightClassFor("bench.disabled")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(int64(i))
		tr.Start("noop", "bench").End()
		fl.Record(class, 0, 0, int64(i), 0)
	}
}

// BenchmarkEnabledOverhead is the enabled-path counterpart, for the
// DESIGN.md §9 overhead table.
func BenchmarkEnabledOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	g := r.Gauge("bench.gauge")
	h := r.Histogram("bench.hist")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(int64(i))
	}
}
