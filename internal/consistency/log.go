package consistency

import (
	"sync"

	"repro/internal/pfs"
)

// Log is the standard pfs.HistoryRecorder: a thread-safe append-only list
// of recorded operations. The pfs delivers events under its own lock in
// total order, but distinct FileSystems may share one Log (they do not in
// practice), and tests read the log while runs drain — so the Log carries
// its own mutex.
type Log struct {
	mu     sync.Mutex
	events []pfs.HistoryEvent
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Record implements pfs.HistoryRecorder.
func (l *Log) Record(ev pfs.HistoryEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns a snapshot of the recorded history in total order.
func (l *Log) Events() []pfs.HistoryEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]pfs.HistoryEvent(nil), l.events...)
}

// Len reports how many events have been recorded.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset discards the recorded history.
func (l *Log) Reset() {
	l.mu.Lock()
	l.events = nil
	l.mu.Unlock()
}
