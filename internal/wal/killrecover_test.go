//go:build unix

package wal_test

// Kill-and-recover harness for the write-ahead log: the parent re-execs this
// test binary as a burst child, SIGKILLs it at an armed wal.* kill point
// (mid-append, torn frame, either side of fsync, either side of a drain
// publish), then recovers the log directory in-process. RecoverBurst itself
// carries the acceptance assertions: zero acked-write loss (ack-file floor),
// byte-exact salvaged records, a replay history the model's formal spec
// accepts, and final state byte-identical to an uninterrupted run of the
// same prefixes.

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faults"
	"repro/internal/pfs"
	"repro/internal/storage"
	"repro/internal/wal"
)

const (
	walKillDirEnv     = "SEMFS_WAL_DIR"
	walKillSemEnv     = "SEMFS_WAL_SEM"
	walKillBackendEnv = "SEMFS_WAL_BACKEND"
)

// walKillSpec is the burst both sides of the harness agree on; only Log.Dir
// and the storage backend vary per cell. Small enough that the child
// re-execs stay cheap, large enough that every kill point fires mid-run
// with records already acked.
func walKillSpec(dir string, sem pfs.Semantics, b storage.Backend) wal.BurstSpec {
	return wal.BurstSpec{
		Semantics:   sem,
		Ranks:       2,
		Records:     32,
		Block:       256,
		CommitEvery: 8,
		Log:         wal.Options{Dir: dir, Backend: b},
	}
}

// killBackend resolves a CLI-style backend spec and wraps it in the retry
// policy — the same stack `semrepro -backend` runs, so a flaky cell's
// transient faults are absorbed and the burst keeps appending (and keeps
// hitting kill points) instead of degrading to write-through.
func killBackend(t *testing.T, spec string) storage.Backend {
	t.Helper()
	b, err := storage.ParseSpec(spec)
	if err != nil {
		t.Fatalf("backend spec %q: %v", spec, err)
	}
	return storage.NewRetry(b, storage.RetryOptions{})
}

// TestWALKillRecoverChild is the re-exec'd child body; without the env gate
// it is skipped. It arms SEMFS_KILL and runs the burst on the backend named
// by SEMFS_WAL_BACKEND — with a wal.* point armed it must die by SIGKILL
// before finishing.
func TestWALKillRecoverChild(t *testing.T) {
	dir := os.Getenv(walKillDirEnv)
	if dir == "" {
		t.Skip("not in a wal kill-and-recover child")
	}
	if err := faults.ArmKillPointsFromEnv(); err != nil {
		t.Fatalf("arming kill points: %v", err)
	}
	sem, err := pfs.ParseSemantics(os.Getenv(walKillSemEnv))
	if err != nil {
		t.Fatalf("bad %s: %v", walKillSemEnv, err)
	}
	b := killBackend(t, os.Getenv(walKillBackendEnv))
	res, err := wal.RunBurst(walKillSpec(dir, sem, b))
	if err != nil {
		t.Fatalf("burst: %v", err)
	}
	if !res.Spec.OK() {
		t.Fatalf("burst history rejected: %s", res.Spec.Violation)
	}
}

func runWALKillChild(t *testing.T, dir, sem, backendSpec, killSpec string) ([]byte, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWALKillRecoverChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		walKillDirEnv+"="+dir,
		walKillSemEnv+"="+sem,
		walKillBackendEnv+"="+backendSpec,
		faults.KillEnv+"="+killSpec,
	)
	return cmd.CombinedOutput()
}

// killCell describes one backend column of the kill matrix: how to derive
// the child's backend spec, the recovery backend spec (the flaky wrapper is
// a child-side fault injector — the bytes land on its base, which is what
// recovery reads), and the burst's Log.Dir from the cell's scratch dir.
type killCell struct {
	name        string
	childSpec   func(scratch string, seed int64) string
	recoverSpec func(scratch string) string
	logDir      func(scratch string) string
}

var killCells = []killCell{
	{
		name:        "osdisk",
		childSpec:   func(scratch string, _ int64) string { return "osdisk" },
		recoverSpec: func(scratch string) string { return "osdisk" },
		logDir:      func(scratch string) string { return filepath.Join(scratch, "wal") },
	},
	{
		// The store root is host state shared by both processes: the parent's
		// fresh objstore instance over the same root sees every version the
		// killed child managed to publish (after settling the delay).
		name: "objstore",
		childSpec: func(scratch string, _ int64) string {
			return "objstore:root=" + filepath.Join(scratch, "store") + ",delay=5ms"
		},
		recoverSpec: func(scratch string) string {
			return "objstore:root=" + filepath.Join(scratch, "store") + ",delay=5ms"
		},
		logDir: func(scratch string) string { return "wal" },
	},
	{
		// Transient-only faults under the retry policy: the burst converges
		// through the blips, then dies at the kill point like everyone else.
		// The real bytes live on the flaky backend's osdisk base.
		name: "flaky",
		childSpec: func(scratch string, seed int64) string {
			return fmt.Sprintf("flaky:seed=%d,kinds=transient", seed)
		},
		recoverSpec: func(scratch string) string { return "osdisk" },
		logDir:      func(scratch string) string { return filepath.Join(scratch, "wal") },
	},
}

// TestWALKillRecover is the acceptance matrix: every wal.* kill point x
// every consistency model x every storage backend. Each cell SIGKILLs a
// burst child at the armed point, then recovery must return every
// acknowledged write, byte-exact, replaying to spec-accepted,
// byte-identical state.
func TestWALKillRecover(t *testing.T) {
	if os.Getenv(walKillDirEnv) != "" {
		t.Skip("inside a wal kill-and-recover child")
	}
	semantics := pfs.AllSemantics()
	points := []string{
		"wal.append.begin",
		"wal.append.torn",
		"wal.append.before-fsync",
		"wal.append.after-fsync",
		"wal.drain.before-publish",
		"wal.drain.after-publish",
	}
	cells := killCells
	if testing.Short() {
		semantics = semantics[:2]
		points = []string{"wal.append.torn", "wal.drain.before-publish"}
		cells = cells[:2]
	}
	for i, sem := range semantics {
		sem := sem
		rng := rand.New(rand.NewSource(0x5A1D + int64(i)))
		t.Run(sem.String(), func(t *testing.T) {
			t.Parallel()
			for _, cell := range cells {
				for _, point := range points {
					// Seeded hit count: deep enough that acked records exist,
					// shallow enough the burst cannot finish first.
					kill := fmt.Sprintf("%s:%d", point, 2+rng.Intn(10))
					scratch := t.TempDir()
					dir := cell.logDir(scratch)
					childSpec := cell.childSpec(scratch, 1+rng.Int63n(1<<20))

					out, err := runWALKillChild(t, dir, sem.String(), childSpec, kill)
					if err == nil {
						t.Fatalf("[%s] child armed with %s completed instead of dying\n%s", cell.name, kill, out)
					}
					ee, isExit := err.(*exec.ExitError)
					if !isExit {
						t.Fatalf("[%s] child armed with %s: %v\n%s", cell.name, kill, err, out)
					}
					ws, isWait := ee.Sys().(syscall.WaitStatus)
					if !isWait || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
						t.Fatalf("[%s] child armed with %s did not die by SIGKILL: %v\n%s", cell.name, kill, err, out)
					}

					rb, err := storage.ParseSpec(cell.recoverSpec(scratch))
					if err != nil {
						t.Fatal(err)
					}
					rep, err := wal.RecoverBurst(walKillSpec(dir, sem, rb))
					if err != nil {
						t.Fatalf("[%s] recovery after %s: %v", cell.name, kill, err)
					}
					t.Logf("[%s] kill=%s: recovered %d record(s) (%v, acked floor %v, dropped %d torn)",
						cell.name, kill, rep.Records, rep.PerRank, rep.Acked, rep.Dropped)
				}
			}
		})
	}
}
