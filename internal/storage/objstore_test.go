package storage

import (
	"bytes"
	"testing"
	"time"
)

// TestObjStoreVisibilityDelay proves the eventual semantics are real: a
// published (Sync'd) object is NOT readable until the visibility delay has
// elapsed — there is no backdoor a reader could race through.
func TestObjStoreVisibilityDelay(t *testing.T) {
	const delay = 120 * time.Millisecond
	b := NewObjStore(ObjStoreOptions{Root: t.TempDir(), VisibilityDelay: delay})
	if PublishLag(b) != delay {
		t.Fatalf("PublishLag = %v, want %v", PublishLag(b), delay)
	}
	f, err := b.Open("dir/obj.dat", OCreate|OWronly, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // the publish point
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Within the visibility window the object does not exist for readers.
	if _, err := b.ReadFile("dir/obj.dat"); !IsNotExist(err) {
		t.Fatalf("read inside visibility window: err = %v, want not-exist", err)
	}
	if _, err := b.Stat("dir/obj.dat"); !IsNotExist(err) {
		t.Fatalf("stat inside visibility window: err = %v, want not-exist", err)
	}
	Settle(b) // wait the horizon out — the honest read repair
	got, err := b.ReadFile("dir/obj.dat")
	if err != nil || string(got) != "payload" {
		t.Fatalf("after settle: %q, %v", got, err)
	}
	if n, err := b.Stat("dir/obj.dat"); err != nil || n != 7 {
		t.Fatalf("Stat after settle = %d, %v", n, err)
	}
}

// TestObjStorePersistentRoot pins the cross-process contract the CI
// backend matrix relies on: two store instances over the same root see the
// same objects (the burst child writes, the recovering parent reads).
func TestObjStorePersistentRoot(t *testing.T) {
	root := t.TempDir()
	w := NewObjStore(ObjStoreOptions{Root: root, VisibilityDelay: time.Millisecond})
	if err := WriteFileAtomic(w, "logs/rank-0000.wal", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(w, "logs/rank-0001.wal", []byte("beta")); err != nil {
		t.Fatal(err)
	}

	r := NewObjStore(ObjStoreOptions{Root: root, VisibilityDelay: time.Millisecond})
	Settle(r)
	names, err := r.List("logs")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "rank-0000.wal" || names[1] != "rank-0001.wal" {
		t.Fatalf("List = %v", names)
	}
	got, err := r.ReadFile("logs/rank-0001.wal")
	if err != nil || string(got) != "beta" {
		t.Fatalf("cross-instance read: %q, %v", got, err)
	}
}

// TestObjStoreRename exercises the copy+delete rename — the weaker publish
// an object store offers in place of an atomic rename.
func TestObjStoreRename(t *testing.T) {
	b := NewObjStore(ObjStoreOptions{Root: t.TempDir(), VisibilityDelay: time.Millisecond})
	if err := WriteFileAtomic(b, "tmp/stage.json", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	Settle(b)
	if err := b.Rename("tmp/stage.json", "meta/ckpt.json"); err != nil {
		t.Fatal(err)
	}
	Settle(b)
	got, err := b.ReadFile("meta/ckpt.json")
	if err != nil || string(got) != `{"v":1}` {
		t.Fatalf("renamed object: %q, %v", got, err)
	}
	if _, err := b.ReadFile("tmp/stage.json"); !IsNotExist(err) {
		t.Fatalf("source survived rename: err = %v", err)
	}
}

// TestObjStoreAppendAcrossOpens is the WAL usage pattern: reopen the log
// object, seek to the end, append, publish — the previous contents must be
// preserved in the newly published version.
func TestObjStoreAppendAcrossOpens(t *testing.T) {
	b := NewObjStore(ObjStoreOptions{Root: t.TempDir(), VisibilityDelay: time.Millisecond})
	write := func(chunk string) {
		f, err := b.Open("seg.wal", OCreate|ORdwr, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Seek(0, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		Settle(b)
	}
	write("rec1|")
	write("rec2|")
	got, err := b.ReadFile("seg.wal")
	if err != nil || !bytes.Equal(got, []byte("rec1|rec2|")) {
		t.Fatalf("after two append sessions: %q, %v", got, err)
	}
}
