package harness

import (
	"testing"

	"repro/internal/recorder"
)

func TestCtxComputeAdvancesWithinBounds(t *testing.T) {
	res, err := Run(Config{Ranks: 2, Seed: 3}, recorder.Meta{App: "compute"},
		func(ctx *Ctx) error {
			before := ctx.MPI.Clock().Now()
			ctx.Compute(50, 150)
			d := ctx.MPI.Clock().Now() - before
			if d < 50_000 || d > 150_000 {
				ctx.Failf("Compute advanced %d ns, want [50000,150000]", d)
			}
			before = ctx.MPI.Clock().Now()
			ctx.Compute(10, 10) // degenerate range: exact
			if got := ctx.MPI.Clock().Now() - before; got != 10_000 {
				ctx.Failf("exact Compute advanced %d", got)
			}
			before = ctx.MPI.Clock().Now()
			ctx.Compute(20, 5) // max < min clamps to min
			if got := ctx.MPI.Clock().Now() - before; got != 20_000 {
				ctx.Failf("clamped Compute advanced %d", got)
			}
			if ctx.FailureCount() != len(ctx.failures) {
				ctx.Failf("FailureCount mismatch")
			}
			return ctx.Failures()
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() != nil {
		t.Fatal(res.Err())
	}
}

func TestCtxComputeDesynchronizesRanks(t *testing.T) {
	res, err := Run(Config{Ranks: 8, Seed: 9}, recorder.Meta{App: "desync"},
		func(ctx *Ctx) error {
			ctx.Compute(10, 500)
			fd, err := ctx.OS.Open("/d", recorder.OCreat|recorder.OWronly, 0o644)
			if err != nil {
				return err
			}
			ctx.OS.Pwrite(fd, make([]byte, 8), int64(ctx.Rank)*8)
			return ctx.OS.Close(fd)
		})
	if err != nil || res.Err() != nil {
		t.Fatal(err, res.Err())
	}
	// The pwrite start times must not be identical across ranks.
	times := map[uint64]bool{}
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool { return r.IsWriteOp() }) {
		times[r.TStart] = true
	}
	if len(times) < 4 {
		t.Fatalf("ranks not desynchronized: %d distinct write times", len(times))
	}
}
