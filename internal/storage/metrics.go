package storage

import "repro/internal/obs"

// Durable-storage telemetry on the process-wide registry (DESIGN.md §9
// naming: storage.op.* for seam operations, storage.sync.ns for the real
// durability cost, storage.fault.* for flaky-backend injections,
// storage.retry.* for the policy layer, storage.publish.* for objstore
// write-then-publish). storage.sync.ns records host wall time — like
// ckpt.journal.fsync_ns it varies between otherwise identical runs; every
// other instrument is a deterministic function of the run and its fault
// schedule.
var (
	opens      = obs.Default().Counter("storage.op.opens")
	reads      = obs.Default().Counter("storage.op.reads")
	writes     = obs.Default().Counter("storage.op.writes")
	writeBytes = obs.Default().Counter("storage.op.write_bytes")
	syncs      = obs.Default().Counter("storage.op.syncs")
	renames    = obs.Default().Counter("storage.op.renames")
	removes    = obs.Default().Counter("storage.op.removes")
	lists      = obs.Default().Counter("storage.op.lists")
	opErrors   = obs.Default().Counter("storage.op.errors")
	syncNS     = obs.Default().Histogram("storage.sync.ns")

	publishVersions = obs.Default().Counter("storage.publish.versions")
	publishBytes    = obs.Default().Counter("storage.publish.bytes")
	publishLagNS    = obs.Default().Histogram("storage.publish.lag_ns")

	faultsFired    = obs.Default().Counter("storage.fault.fired")
	faultLatencyNS = obs.Default().Histogram("storage.fault.latency_ns")

	retryAttempts  = obs.Default().Counter("storage.retry.attempts")
	retrySleepNS   = obs.Default().Histogram("storage.retry.sleep_ns")
	retryExhausted = obs.Default().Counter("storage.retry.exhausted")
	retryDeadline  = obs.Default().Counter("storage.retry.deadline_exceeded")
)

// Flight-recorder event classes: degrade-relevant storage moments for the
// post-mortem ring.
var (
	flightFault     = obs.FlightClassFor("storage.fault")
	flightExhausted = obs.FlightClassFor("storage.exhausted")
)
