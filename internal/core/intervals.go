// Package core implements the paper's analysis algorithms over multi-level
// I/O traces: byte-offset reconstruction for POSIX data operations (§5.1),
// overlap detection (Algorithm 1), conflict detection under commit and
// session consistency semantics (§5.2), access-pattern classification at the
// local and global levels (§4, Figure 1), high-level X-Y pattern
// classification (Table 3), the metadata-operation census (§6.4, Figure 3),
// happens-before validation of conflict ordering (§5.2), and per-application
// consistency-semantics verdicts (§6.3).
//
// The package consumes recorder traces only — offsets are re-derived from
// open flags, seek operations and transfer byte counts exactly as the
// paper's analysis does, never taken from simulator internals.
package core

import (
	"slices"
	"sort"
	"strings"

	"repro/internal/recorder"
)

// Interval is one data operation expanded with the fields the conflict
// algorithm needs: the paper's tuple (t, r, os, oe, type) plus the
// `to`/`tc` annotations of §5.2. Offsets are half-open: [Os, Oe).
type Interval struct {
	T     uint64 // entry timestamp
	TEnd  uint64 // exit timestamp
	Rank  int32
	Os    int64
	Oe    int64
	Write bool

	// §5.2 record expansion, all with respect to this interval's rank and
	// file: To is the time of the last preceding open; TcCommit the time of
	// the first succeeding commit operation (fsync/fdatasync/fflush/close);
	// TcClose the time of the first succeeding close. ^uint64(0) when none.
	To       uint64
	TcCommit uint64
	TcClose  uint64

	// Origin is the I/O layer responsible for this operation: the outermost
	// enclosing library-layer record, or LayerApp when the application
	// called POSIX directly.
	Origin recorder.Layer
	// Phase identifies the enclosing library call (an index unique within
	// the rank stream), used to group a rank's accesses issued by a single
	// collective/library call. -1 when app-level.
	Phase int
}

// NoTime marks a missing To/Tc annotation.
const NoTime = ^uint64(0)

// FileAccesses collects everything the analysis needs about one file.
type FileAccesses struct {
	Path      string
	Intervals []Interval // all ranks, unsorted across ranks (per-rank time order)
	// Per-rank sorted operation times on this file.
	OpensByRank   map[int32][]uint64
	ClosesByRank  map[int32][]uint64
	CommitsByRank map[int32][]uint64
}

// fdState tracks one open descriptor during offset reconstruction.
type fdState struct {
	path     string
	offset   int64
	appendMd bool
	open     bool
}

// fdTableSpan bounds the dense descriptor array; larger or negative fds
// spill to the map. The simulated POSIX layer assigns fds monotonically
// from 3, so real traces live entirely in the dense span.
const fdTableSpan = 4096

// fdTable is the descriptor state of one rank during extraction: a dense
// slice for small fds (the overwhelmingly common case — no hashing in the
// per-record hot loop) with a map fallback for out-of-span descriptors.
type fdTable struct {
	small []fdState
	big   map[int64]*fdState
}

// get returns the live state for fd, or nil.
func (t *fdTable) get(fd int64) *fdState {
	if fd >= 0 && fd < int64(len(t.small)) {
		if st := &t.small[fd]; st.open {
			return st
		}
		return nil
	}
	return t.big[fd]
}

// set records fd as open with the given state.
func (t *fdTable) set(fd int64, st fdState) {
	st.open = true
	if fd >= 0 && fd < fdTableSpan {
		if fd >= int64(len(t.small)) {
			n := int64(cap(t.small))
			if n < 16 {
				n = 16
			}
			for n <= fd {
				n *= 2
			}
			if n > fdTableSpan {
				n = fdTableSpan
			}
			grown := make([]fdState, n)
			copy(grown, t.small)
			t.small = grown
		}
		t.small[fd] = st
		return
	}
	if t.big == nil {
		t.big = make(map[int64]*fdState)
	}
	t.big[fd] = &st
}

// closeFD removes fd and returns its former state, or nil if not open. The
// returned pointer is only valid until the slot is reused by a later set.
func (t *fdTable) closeFD(fd int64) *fdState {
	if fd >= 0 && fd < int64(len(t.small)) {
		if st := &t.small[fd]; st.open {
			st.open = false
			return st
		}
		return nil
	}
	if st, ok := t.big[fd]; ok {
		delete(t.big, fd)
		return st
	}
	return nil
}

// Extract reconstructs per-file access intervals from a trace. It walks
// each rank's record stream in order, tracking the current offset of every
// descriptor (updated by open flags, seeks and transfer sizes, per §5.1),
// and annotates every data operation with its To/Tc times and originating
// layer. Results are keyed by path and returned sorted by path.
func Extract(tr *recorder.Trace) []*FileAccesses {
	files := make(map[string]*FileAccesses)
	for _, rs := range tr.PerRank {
		extractRank(rs, files)
	}
	out := sortedFiles(files)
	for _, fa := range out {
		annotate(fa)
	}
	return out
}

// extractRank walks one rank's record stream and accumulates its file
// accesses into files. Offset and size state is rank-local (§5.1), so rank
// streams can be processed independently as long as each rank's records are
// appended to a path's tables in rank order. The per-record fold lives in
// rankExtractor (stream.go), shared with the cursor-based zero-copy path.
func extractRank(rs []recorder.Record, files map[string]*FileAccesses) {
	ext := newRankExtractor(files)
	for i := range rs {
		ext.step(&rs[i])
	}
}

// sortedFiles flattens an extraction map into the path-sorted slice every
// analysis consumes. Annotation is the caller's responsibility.
func sortedFiles(files map[string]*FileAccesses) []*FileAccesses {
	out := make([]*FileAccesses, 0, len(files))
	for _, fa := range files {
		out = append(out, fa)
	}
	slices.SortFunc(out, func(a, b *FileAccesses) int { return strings.Compare(a.Path, b.Path) })
	return out
}

// dataInterval converts a data-op record into an interval, updating the
// descriptor offset state.
func dataInterval(r *recorder.Record, fds *fdTable, sizeByPath map[string]int64) (Interval, string, bool) {
	iv := Interval{T: r.TStart, TEnd: r.TEnd, Rank: r.Rank, Write: r.IsWriteOp(),
		To: NoTime, TcCommit: NoTime, TcClose: NoTime}
	var st *fdState
	var n int64
	switch r.Func {
	case recorder.FuncRead, recorder.FuncWrite, recorder.FuncReadv, recorder.FuncWritev:
		st = fds.get(r.Arg(0))
		if st == nil {
			return iv, "", false
		}
		n = r.Arg(2) // return value: bytes transferred
		if n <= 0 {
			return iv, "", false
		}
		off := st.offset
		if iv.Write && st.appendMd {
			off = sizeByPath[st.path]
		}
		iv.Os, iv.Oe = off, off+n
		st.offset = off + n
	case recorder.FuncFread, recorder.FuncFwrite:
		st = fds.get(r.Arg(0))
		if st == nil {
			return iv, "", false
		}
		n = r.Arg(3)
		if n <= 0 {
			return iv, "", false
		}
		off := st.offset
		if iv.Write && st.appendMd {
			off = sizeByPath[st.path]
		}
		iv.Os, iv.Oe = off, off+n
		st.offset = off + n
	case recorder.FuncPread, recorder.FuncPwrite:
		st = fds.get(r.Arg(0))
		if st == nil {
			return iv, "", false
		}
		n = r.Arg(3)
		if n <= 0 {
			return iv, "", false
		}
		iv.Os, iv.Oe = r.Arg(2), r.Arg(2)+n
	default:
		return iv, "", false
	}
	return iv, st.path, true
}

// annotate fills the To/Tc fields of every interval from the per-rank
// open/close/commit time tables using binary search (§5.2's "one or two
// binary searches").
func annotate(fa *FileAccesses) {
	for i := range fa.Intervals {
		iv := &fa.Intervals[i]
		iv.To = lastBefore(fa.OpensByRank[iv.Rank], iv.T)
		iv.TcCommit = firstAfter(fa.CommitsByRank[iv.Rank], iv.T)
		iv.TcClose = firstAfter(fa.ClosesByRank[iv.Rank], iv.T)
	}
}

// lastBefore returns the largest element <= t, or NoTime.
func lastBefore(times []uint64, t uint64) uint64 {
	idx := sort.Search(len(times), func(i int) bool { return times[i] > t })
	if idx == 0 {
		return NoTime
	}
	return times[idx-1]
}

// firstAfter returns the smallest element > t, or NoTime.
func firstAfter(times []uint64, t uint64) uint64 {
	idx := sort.Search(len(times), func(i int) bool { return times[i] > t })
	if idx == len(times) {
		return NoTime
	}
	return times[idx]
}

// attributeOrigins computes, for every record in a rank stream, the layer
// of the outermost enclosing library-layer record (by time containment) and
// the stream index of the innermost one (the "phase"). It is the
// whole-slice form of originStack's streaming sweep (stream.go).
func attributeOrigins(rs []recorder.Record) ([]recorder.Layer, []int) {
	origins := make([]recorder.Layer, len(rs))
	phases := make([]int, len(rs))
	var stack originStack
	for i := range rs {
		origins[i], phases[i] = stack.step(i, &rs[i])
	}
	return origins, phases
}
