package pfs

import (
	"bytes"
	"testing"
)

// TestTunablePathSemantics exercises the §2.3 "tunable consistency"
// direction: one namespace, two disciplines — checkpoints under commit
// semantics (cheap), a coordination file under strong semantics (promptly
// visible).
func TestTunablePathSemantics(t *testing.T) {
	fs := New(Options{
		Semantics: Commit,
		PathRules: []PathRule{{Prefix: "/coord/", Semantics: Strong}},
	})
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)

	// Checkpoint path: commit semantics — invisible until fsync.
	hw, _, err := w.Open("/ckpt/state", OCreat|OWronly, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Write(0, []byte("ck"), 20); err != nil {
		t.Fatal(err)
	}
	hr, _, err := r.Open("/ckpt/state", ORdonly, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := hr.Read(0, 2, 30); len(got) != 0 {
		t.Fatalf("commit-path data visible before commit: %q", got)
	}

	// Coordination path: strong semantics — immediately visible, locked.
	hc, _, err := w.Open("/coord/flag", OCreat|OWronly, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Write(0, []byte("go"), 50); err != nil {
		t.Fatal(err)
	}
	hcr, _, err := r.Open("/coord/flag", ORdonly, 45)
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := hcr.Read(0, 2, 60); !bytes.Equal(got, []byte("go")) {
		t.Fatalf("strong-path data not immediately visible: %q", got)
	}
	if st := fs.Stats(); st.LockAcquires == 0 {
		t.Fatal("strong-path accesses should acquire locks")
	}
}

func TestPathRuleFirstMatchWins(t *testing.T) {
	fs := New(Options{
		Semantics: Strong,
		PathRules: []PathRule{
			{Prefix: "/a/b/", Semantics: Session},
			{Prefix: "/a/", Semantics: Commit},
		},
	})
	if got := fs.semFor("/a/b/f"); got != Session {
		t.Fatalf("semFor(/a/b/f) = %v", got)
	}
	if got := fs.semFor("/a/x"); got != Commit {
		t.Fatalf("semFor(/a/x) = %v", got)
	}
	if got := fs.semFor("/other"); got != Strong {
		t.Fatalf("semFor(/other) = %v", got)
	}
}
