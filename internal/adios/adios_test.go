package adios

import (
	"fmt"
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func run(t *testing.T, n, ppn int, body func(ctx *harness.Ctx) error) *harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: n, PPN: ppn, Semantics: pfs.Strong},
		recorder.Meta{App: "adios-test", Library: "ADIOS"}, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSubstreamAggregation(t *testing.T) {
	const ranks, ppn = 8, 2 // 4 nodes → default 4 substreams
	res := run(t, ranks, ppn, func(ctx *harness.Ctx) error {
		w, err := OpenWriter(ctx.MPI, ctx.OS, ctx.Tracer, "/out", Options{})
		if err != nil {
			return err
		}
		if err := w.Put("atoms", make([]byte, 100)); err != nil {
			return err
		}
		if err := w.EndStep(); err != nil {
			return err
		}
		return w.Close()
	})
	// Each data.N file must hold its group's blocks (2 ranks × 100B).
	for s := 0; s < 4; s++ {
		info, _, err := res.FS.Stat(fmt.Sprintf("/out.bp/data.%d", s))
		if err != nil {
			t.Fatalf("data.%d: %v", s, err)
		}
		if info.Size != 200 {
			t.Fatalf("data.%d size %d, want 200", s, info.Size)
		}
	}
	// Only aggregator ranks write data files.
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool { return r.Func == recorder.FuncWrite }) {
		if r.Rank%2 != 0 {
			t.Fatalf("non-aggregator rank %d wrote", r.Rank)
		}
	}
}

func TestIndexByteOverwrittenPerStep(t *testing.T) {
	res := run(t, 4, 2, func(ctx *harness.Ctx) error {
		w, err := OpenWriter(ctx.MPI, ctx.OS, ctx.Tracer, "/lj", Options{})
		if err != nil {
			return err
		}
		for step := 0; step < 3; step++ {
			if err := w.Put("v", make([]byte, 64)); err != nil {
				return err
			}
			if err := w.EndStep(); err != nil {
				return err
			}
		}
		return w.Close()
	})
	// The status byte at idxStatusOff must be overwritten once per step by
	// rank 0 — the paper's single-byte WAW-S.
	n := 0
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool {
		return r.Func == recorder.FuncPwrite && r.Arg(2) == idxStatusOff && r.Arg(1) == 1
	}) {
		if r.Rank != 0 {
			t.Fatalf("status byte written by rank %d", r.Rank)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("status byte overwritten %d times, want 3", n)
	}
}

func TestMetadataFilesOnRank0(t *testing.T) {
	res := run(t, 4, 4, func(ctx *harness.Ctx) error {
		w, err := OpenWriter(ctx.MPI, ctx.OS, ctx.Tracer, "/md", Options{Substreams: 2})
		if err != nil {
			return err
		}
		w.Put("x", make([]byte, 10))
		w.EndStep()
		return w.Close()
	})
	if !res.FS.Exists("/md.bp/md.0") || !res.FS.Exists("/md.bp/md.idx") {
		t.Fatalf("metadata files missing: %v", res.FS.Paths())
	}
}

func TestSubstreamsCappedAtSize(t *testing.T) {
	run(t, 2, 1, func(ctx *harness.Ctx) error {
		w, err := OpenWriter(ctx.MPI, ctx.OS, ctx.Tracer, "/cap", Options{Substreams: 16})
		if err != nil {
			return err
		}
		if w.substreams != 2 {
			ctx.Failf("substreams = %d, want 2", w.substreams)
		}
		if !w.Aggregator() {
			ctx.Failf("every rank aggregates when substreams == size")
		}
		w.Put("x", make([]byte, 8))
		w.EndStep()
		if err := w.Close(); err != nil {
			return err
		}
		if err := w.Close(); err == nil {
			ctx.Failf("double close accepted")
		}
		return ctx.Failures()
	})
}

func TestADIOSLayerRecords(t *testing.T) {
	res := run(t, 2, 2, func(ctx *harness.Ctx) error {
		w, err := OpenWriter(ctx.MPI, ctx.OS, ctx.Tracer, "/rec", Options{})
		if err != nil {
			return err
		}
		w.Put("x", make([]byte, 8))
		w.EndStep()
		return w.Close()
	})
	seen := map[recorder.Func]bool{}
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool { return r.Layer == recorder.LayerADIOS }) {
		seen[r.Func] = true
	}
	for _, fn := range []recorder.Func{
		recorder.FuncADIOSOpen, recorder.FuncADIOSPut,
		recorder.FuncADIOSEndStep, recorder.FuncADIOSClose,
	} {
		if !seen[fn] {
			t.Errorf("missing ADIOS record %v", fn)
		}
	}
}
