// Flight recorder: a fixed-size lock-free ring of recent semantic events
// (op begin/end, fault fired, kill point armed, WAL degrade, spec verdict)
// that survives to a CRC-framed dump file when the process dies violently —
// panic, a SIGKILL-adjacent kill point, or a consistency violation. The
// ring is the Recorder idea at event granularity: continuous low-overhead
// capture so a post-mortem can attribute a crash to the ops in flight,
// without the cost or volume of full tracing.
//
// Concurrency model: slots hold only atomics. A writer claims a global
// sequence number with one atomic add, fills the slot's payload fields and
// publishes the sequence stamp last; a dumper reads the stamp, the payload,
// then the stamp again, and discards the slot if a concurrent writer moved
// it. No locks anywhere on the record path, so the recorder is safe to call
// from under fs.mu, l.mu or a dying signal path. The disabled path is one
// atomic load and allocates nothing (gated with the other instruments in
// BenchmarkDisabledOverhead).
//
// Event classes (the string names) are interned once at init time into a
// process-wide table; recording passes the small integer class, so no
// strings move through the hot path or the ring.
package obs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FlightClass is an interned event-class name (see FlightClassFor).
type FlightClass uint32

var flightClasses struct {
	mu    sync.Mutex
	names []string
	index map[string]FlightClass
}

// FlightClassFor interns a class name, returning its stable class id.
// Call it from package-level vars (like Registry instruments); the lookup
// locks, the returned id is hot-path-safe.
func FlightClassFor(name string) FlightClass {
	flightClasses.mu.Lock()
	defer flightClasses.mu.Unlock()
	if flightClasses.index == nil {
		flightClasses.index = make(map[string]FlightClass)
	}
	if c, ok := flightClasses.index[name]; ok {
		return c
	}
	c := FlightClass(len(flightClasses.names))
	flightClasses.names = append(flightClasses.names, name)
	flightClasses.index[name] = c
	return c
}

func flightClassName(c FlightClass) string {
	flightClasses.mu.Lock()
	defer flightClasses.mu.Unlock()
	if int(c) < len(flightClasses.names) {
		return flightClasses.names[c]
	}
	return fmt.Sprintf("class#%d", uint32(c))
}

func flightClassTable() []string {
	flightClasses.mu.Lock()
	defer flightClasses.mu.Unlock()
	return append([]string(nil), flightClasses.names...)
}

// FlightEvent is one recorded semantic event, as read back from the ring
// or a dump file.
type FlightEvent struct {
	Seq    uint64 // global claim order (1-based, gaps only at torn slots)
	WallNS int64  // wall-clock time of the event
	Class  string // interned class name, e.g. "pfs.write.begin"
	Rank   int32  // owning rank, -1 when not attributable
	Trace  uint64 // causal trace ID (see Tracer.StartTrace), 0 when none
	A, B   int64  // class-specific payload (offset/length, cost, seq...)
}

// flightSlot is all-atomic so concurrent Record and Events never race.
// stamp is written last (the publish): a reader that sees the same stamp
// before and after reading the payload got a consistent event.
type flightSlot struct {
	stamp atomic.Uint64 // seq of the event occupying the slot; 0 = empty
	wall  atomic.Int64
	class atomic.Uint32
	rank  atomic.Int32
	trace atomic.Uint64
	a, b  atomic.Int64
}

// FlightRecorder is the fixed-size ring. The zero value is not usable; use
// NewFlightRecorder or the process-wide Flight().
type FlightRecorder struct {
	enabled atomic.Bool
	next    atomic.Uint64
	mask    uint64
	slots   []flightSlot
}

// DefaultFlightSize is the process-wide ring's capacity: enough to hold the
// last few thousand semantic events at ~56 bytes a slot.
const DefaultFlightSize = 4096

// NewFlightRecorder returns a disabled recorder with capacity rounded up to
// a power of two (minimum 8).
func NewFlightRecorder(size int) *FlightRecorder {
	n := 8
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]flightSlot, n)}
}

var defaultFlight = NewFlightRecorder(DefaultFlightSize)

// Flight returns the process-wide flight recorder the instrumented layers
// (pfs, wal, faults, consistency) record on. Disabled until armed
// (ArmFlightDump or SetEnabled).
func Flight() *FlightRecorder { return defaultFlight }

// SetEnabled turns recording on or off. Events already in the ring stay.
func (f *FlightRecorder) SetEnabled(on bool) { f.enabled.Store(on) }

// Enabled reports whether events are being recorded.
func (f *FlightRecorder) Enabled() bool { return f != nil && f.enabled.Load() }

// Record appends one event to the ring, overwriting the oldest when full.
// Nil-safe; one atomic load and an early return when disabled. rank -1
// means "not attributable"; trace links the event to a span chain.
func (f *FlightRecorder) Record(class FlightClass, rank int32, trace uint64, a, b int64) {
	if f == nil || !f.enabled.Load() {
		return
	}
	seq := f.next.Add(1)
	s := &f.slots[(seq-1)&f.mask]
	s.wall.Store(time.Now().UnixNano())
	s.class.Store(uint32(class))
	s.rank.Store(rank)
	s.trace.Store(trace)
	s.a.Store(a)
	s.b.Store(b)
	s.stamp.Store(seq) // publish
	flightEvents.Inc()
}

// Events snapshots the ring, oldest first. Slots being overwritten while
// the snapshot runs are skipped (their stamp moved), so the result is
// always a set of individually consistent events.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		seq := s.stamp.Load()
		if seq == 0 {
			continue
		}
		ev := FlightEvent{
			Seq:    seq,
			WallNS: s.wall.Load(),
			Class:  flightClassName(FlightClass(s.class.Load())),
			Rank:   s.rank.Load(),
			Trace:  s.trace.Load(),
			A:      s.a.Load(),
			B:      s.b.Load(),
		}
		if s.stamp.Load() != seq {
			continue // torn by a concurrent writer; skip
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Reset empties the ring and zeroes the sequence (test support).
func (f *FlightRecorder) Reset() {
	for i := range f.slots {
		f.slots[i].stamp.Store(0)
	}
	f.next.Store(0)
}

// Dump-file framing, ckpt/wal style: every frame is independently
// CRC-checked so a dump written by a dying process is salvageable up to
// its torn tail.
//
//	magic "SFLT1\n\x00\x00" (8)
//	frames: magic "FLTR" (4) | payload len uint32 LE | CRC-32C(payload) | payload
//
// Frame payloads: type byte 0 = class name (class ids are assigned in
// frame order), type byte 1 = one event (fixed little-endian layout).
const (
	flightMagic      = "SFLT1\n\x00\x00"
	flightFrameMagic = "FLTR"
	frameClass       = 0
	frameEvent       = 1
	maxFlightFrame   = 1 << 16
)

var flightCRC = crc32.MakeTable(crc32.Castagnoli)

func appendFrame(buf, payload []byte) []byte {
	var hdr [12]byte
	copy(hdr[:4], flightFrameMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, flightCRC))
	return append(append(buf, hdr[:]...), payload...)
}

// EncodeFlightDump renders the recorder's current contents (plus the class
// table) as a CRC-framed dump.
func (f *FlightRecorder) EncodeFlightDump() []byte {
	events := f.Events()
	buf := []byte(flightMagic)
	for _, name := range flightClassTable() {
		payload := append([]byte{frameClass}, name...)
		buf = appendFrame(buf, payload)
	}
	var p [53]byte
	for _, ev := range events {
		p[0] = frameEvent
		binary.LittleEndian.PutUint64(p[1:9], ev.Seq)
		binary.LittleEndian.PutUint64(p[9:17], uint64(ev.WallNS))
		binary.LittleEndian.PutUint32(p[17:21], uint32(classIndexOf(ev.Class)))
		binary.LittleEndian.PutUint32(p[21:25], uint32(ev.Rank))
		binary.LittleEndian.PutUint64(p[25:33], ev.Trace)
		binary.LittleEndian.PutUint64(p[33:41], uint64(ev.A))
		binary.LittleEndian.PutUint64(p[41:49], uint64(ev.B))
		binary.LittleEndian.PutUint32(p[49:53], 0) // reserved
		buf = appendFrame(buf, p[:])
	}
	return buf
}

func classIndexOf(name string) FlightClass { return FlightClassFor(name) }

// WriteDump writes the ring to path, fsyncing before close — the file must
// survive the SIGKILL that typically follows.
func (f *FlightRecorder) WriteDump(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	if _, err := out.Write(f.EncodeFlightDump()); err != nil {
		out.Close()
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("obs: flight dump: %w", err)
	}
	flightDumps.Inc()
	return nil
}

// FlightDump is a decoded dump file.
type FlightDump struct {
	Events []FlightEvent
	// TornBytes counts trailing bytes discarded because a frame was torn or
	// failed its CRC — expected when the writer died mid-dump.
	TornBytes int
}

// LoadFlightDump decodes a dump file, salvaging every complete frame and
// truncating at the first torn or corrupt one (the writer was dying; a torn
// tail is the expected shape, not an error). A missing or foreign file is
// an error.
func LoadFlightDump(path string) (*FlightDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: flight dump: %w", err)
	}
	if len(data) < len(flightMagic) || string(data[:len(flightMagic)]) != flightMagic {
		return nil, fmt.Errorf("obs: %s is not a flight dump (bad magic)", path)
	}
	rest := data[len(flightMagic):]
	d := &FlightDump{}
	var classes []string
	for len(rest) > 0 {
		if len(rest) < 12 || string(rest[:4]) != flightFrameMagic {
			d.TornBytes = len(rest)
			break
		}
		n := binary.LittleEndian.Uint32(rest[4:8])
		if n == 0 || n > maxFlightFrame || int(n) > len(rest)-12 {
			d.TornBytes = len(rest)
			break
		}
		payload := rest[12 : 12+n]
		if crc32.Checksum(payload, flightCRC) != binary.LittleEndian.Uint32(rest[8:12]) {
			d.TornBytes = len(rest)
			break
		}
		rest = rest[12+n:]
		switch payload[0] {
		case frameClass:
			classes = append(classes, string(payload[1:]))
		case frameEvent:
			if len(payload) < 53 {
				d.TornBytes = len(rest) + 12 + int(n)
				return d, nil
			}
			ev := FlightEvent{
				Seq:    binary.LittleEndian.Uint64(payload[1:9]),
				WallNS: int64(binary.LittleEndian.Uint64(payload[9:17])),
				Rank:   int32(binary.LittleEndian.Uint32(payload[21:25])),
				Trace:  binary.LittleEndian.Uint64(payload[25:33]),
				A:      int64(binary.LittleEndian.Uint64(payload[33:41])),
				B:      int64(binary.LittleEndian.Uint64(payload[41:49])),
			}
			ci := binary.LittleEndian.Uint32(payload[17:21])
			if int(ci) < len(classes) {
				ev.Class = classes[ci]
			} else {
				ev.Class = fmt.Sprintf("class#%d", ci)
			}
			d.Events = append(d.Events, ev)
		}
	}
	return d, nil
}

// FormatFlightDump renders a decoded dump for post-mortem reading: events
// oldest-first with wall-clock offsets from the first event, then an
// attribution section naming the trigger and — for a consistency
// violation — the violating op (rank, history seq, trace).
func FormatFlightDump(d *FlightDump) string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder dump: %d event(s)", len(d.Events))
	if d.TornBytes > 0 {
		fmt.Fprintf(&b, ", %d torn tail byte(s) discarded", d.TornBytes)
	}
	b.WriteString("\n")
	var epoch int64
	if len(d.Events) > 0 {
		epoch = d.Events[0].WallNS
	}
	for _, ev := range d.Events {
		fmt.Fprintf(&b, "  #%-6d +%-12s %-28s", ev.Seq,
			time.Duration(ev.WallNS-epoch).String(), ev.Class)
		if ev.Rank >= 0 {
			fmt.Fprintf(&b, " rank=%d", ev.Rank)
		}
		if ev.Trace != 0 {
			fmt.Fprintf(&b, " trace=%#x", ev.Trace)
		}
		fmt.Fprintf(&b, " a=%d b=%d\n", ev.A, ev.B)
	}
	for i := len(d.Events) - 1; i >= 0; i-- {
		ev := d.Events[i]
		switch ev.Class {
		case "consistency.violation":
			fmt.Fprintf(&b, "attribution: consistency violation — violating read seq=%d rank=%d", ev.A, ev.Rank)
			if ev.Trace != 0 {
				fmt.Fprintf(&b, ", implicated write trace=%#x", ev.Trace)
			}
			if ev.B >= 0 {
				fmt.Fprintf(&b, ", first differing offset=%d", ev.B)
			}
			b.WriteString("\n")
		case "flight.trigger", "kill.fired", "panic":
			fmt.Fprintf(&b, "attribution: dump trigger = %s (event #%d)\n", ev.Class, ev.Seq)
			continue
		default:
			continue
		}
		break
	}
	return b.String()
}

// Process-wide dump arming. ArmFlightDump enables the default recorder and
// pins the path violent-exit paths (kill points, consistency violations,
// FlightPanicDump) write to.
var flightDumpPath atomic.Pointer[string]

// ArmFlightDump enables the process-wide recorder and sets where triggered
// dumps land. An empty path disarms (recording stops, ring kept).
func ArmFlightDump(path string) {
	if path == "" {
		flightDumpPath.Store(nil)
		defaultFlight.SetEnabled(false)
		return
	}
	flightDumpPath.Store(&path)
	defaultFlight.SetEnabled(true)
}

// FlightDumpPath returns the armed dump path ("" when disarmed).
func FlightDumpPath() string {
	if p := flightDumpPath.Load(); p != nil {
		return *p
	}
	return ""
}

var flightTriggerClass = FlightClassFor("flight.trigger")

// TriggerFlightDump records a trigger event and writes the armed dump file.
// It is the one call every violent-exit site makes (kill points before
// SIGKILL, the consistency checker on a rejected history, FlightPanicDump).
// A no-op returning ("", nil) when no dump path is armed.
func TriggerFlightDump(reason string) (string, error) {
	path := FlightDumpPath()
	if path == "" {
		return "", nil
	}
	defaultFlight.Record(FlightClassFor("flight.reason."+sanitizeClass(reason)), -1, 0, 0, 0)
	defaultFlight.Record(flightTriggerClass, -1, 0, 0, 0)
	return path, defaultFlight.WriteDump(path)
}

// sanitizeClass makes a free-form reason safe as a dot-path class suffix.
func sanitizeClass(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '-', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		case r == ' ':
			return '-'
		default:
			return -1
		}
	}, s)
}

var panicClass = FlightClassFor("panic")

// FlightPanicDump is deferred at the top of each CLI: if the process is
// panicking it records the fact, writes the armed dump and re-panics, so
// the flight ring survives even deaths that unwind the stack.
//
//	defer obs.FlightPanicDump()
func FlightPanicDump() {
	r := recover()
	if r == nil {
		return
	}
	defaultFlight.Record(panicClass, -1, 0, 0, 0)
	TriggerFlightDump("panic")
	panic(r)
}

// Flight-recorder telemetry (DESIGN.md §14 naming: flight.*).
var (
	flightEvents = Default().Counter("flight.events")
	flightDumps  = Default().Counter("flight.dumps")
)
