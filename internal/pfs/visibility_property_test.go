package pfs

import (
	"bytes"
	"math/rand"
	"testing"
)

// schedule is a random single-file op sequence executed identically against
// several consistency models.
type schedOp struct {
	kind string // "write", "fsync", "close-open", "read"
	off  int64
	data []byte
}

func randomSchedule(rng *rand.Rand) []schedOp {
	n := 5 + rng.Intn(25)
	ops := make([]schedOp, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			ops = append(ops, schedOp{kind: "fsync"})
		case 1:
			ops = append(ops, schedOp{kind: "close-open"})
		case 2, 3:
			off := int64(rng.Intn(200))
			data := bytes.Repeat([]byte{byte(rng.Intn(256))}, rng.Intn(50)+1)
			ops = append(ops, schedOp{kind: "write", off: off, data: data})
		default:
			ops = append(ops, schedOp{kind: "read", off: int64(rng.Intn(200))})
		}
	}
	return ops
}

// runSchedule executes the ops: writer is rank 0 (writes/fsyncs/reopens),
// reader is rank 1 (reads through a handle reopened at each close-open).
// It returns the reader's read results in order.
func runSchedule(sem Semantics, ops []schedOp) [][]byte {
	fs := New(Options{Semantics: sem})
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	now := uint64(10)
	hw, _, err := w.Open("/f", OCreat|OWronly, now)
	if err != nil {
		panic(err)
	}
	hr, _, err := r.Open("/f", ORdonly, now)
	if err != nil {
		panic(err)
	}
	var reads [][]byte
	for _, op := range ops {
		now += 10
		switch op.kind {
		case "write":
			if _, err := hw.Write(op.off, op.data, now); err != nil {
				panic(err)
			}
		case "fsync":
			if _, err := hw.Commit(now); err != nil {
				panic(err)
			}
		case "close-open":
			// Writer closes and reopens; reader also reopens (fresh
			// session) — the full close-to-open discipline.
			if _, err := hw.Close(now); err != nil {
				panic(err)
			}
			if hw, _, err = w.Open("/f", OWronly, now+1); err != nil {
				panic(err)
			}
			if _, err := hr.Close(now); err != nil {
				panic(err)
			}
			if hr, _, err = r.Open("/f", ORdonly, now+2); err != nil {
				panic(err)
			}
		case "read":
			got, _, err := hr.Read(op.off, 64, now)
			if err != nil {
				panic(err)
			}
			reads = append(reads, got)
		}
	}
	return reads
}

// TestPropertyVisibilityHierarchy: for the same schedule, every read under
// a weaker model returns a prefix-compatible subset of what strong
// semantics returns — strong sees at least as many bytes as commit, and
// commit at least as many as session. (Values may differ only where the
// weaker model legitimately returns older data; sizes are monotonic.)
func TestPropertyVisibilityHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		ops := randomSchedule(rng)
		strong := runSchedule(Strong, ops)
		commit := runSchedule(Commit, ops)
		session := runSchedule(Session, ops)
		if len(strong) != len(commit) || len(commit) != len(session) {
			t.Fatalf("trial %d: read counts differ", trial)
		}
		for i := range strong {
			if len(commit[i]) > len(strong[i]) {
				t.Fatalf("trial %d read %d: commit returned more bytes (%d) than strong (%d)",
					trial, i, len(commit[i]), len(strong[i]))
			}
			if len(session[i]) > len(commit[i]) {
				t.Fatalf("trial %d read %d: session returned more bytes (%d) than commit (%d)",
					trial, i, len(session[i]), len(commit[i]))
			}
		}
	}
}

// TestPropertyFullDisciplineEqualizesModels: when every write batch is
// followed by fsync + close and the reader reopens before reading (the
// strictest portable discipline), all three models return identical data.
func TestPropertyFullDisciplineEqualizesModels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		var ops []schedOp
		for i := 0; i < 5+rng.Intn(8); i++ {
			off := int64(rng.Intn(100))
			data := bytes.Repeat([]byte{byte(rng.Intn(256))}, rng.Intn(30)+1)
			ops = append(ops,
				schedOp{kind: "write", off: off, data: data},
				schedOp{kind: "fsync"},
				schedOp{kind: "close-open"},
				schedOp{kind: "read", off: off},
			)
		}
		strong := runSchedule(Strong, ops)
		commit := runSchedule(Commit, ops)
		session := runSchedule(Session, ops)
		for i := range strong {
			if !bytes.Equal(strong[i], commit[i]) || !bytes.Equal(strong[i], session[i]) {
				t.Fatalf("trial %d read %d: models disagree under full discipline:\n strong %v\n commit %v\n session %v",
					trial, i, strong[i], commit[i], session[i])
			}
		}
	}
}
