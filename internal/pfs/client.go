package pfs

import "fmt"

// Client is one process's view of the file system. A client always observes
// its own writes in program order; what it observes of *other* processes'
// writes depends on the consistency model. Clients are not safe for
// concurrent use — each simulated rank owns exactly one.
type Client struct {
	fs      *FileSystem
	rank    int
	node    int
	pending map[string][]extent // written but not yet published, per path
	crashed bool
}

// NewClient creates the client for a rank on a node.
func (fs *FileSystem) NewClient(rank, node int) *Client {
	return &Client{fs: fs, rank: rank, node: node, pending: make(map[string][]extent)}
}

// Rank returns the owning rank.
func (c *Client) Rank() int { return c.rank }

// FS returns the shared file system this client talks to.
func (c *Client) FS() *FileSystem { return c.fs }

// Handle is an open file description.
type Handle struct {
	c        *Client
	id       uint64 // open-description identity in the operation history
	path     string
	flags    int
	openSeq  uint64 // publish sequence snapshot at open (session visibility)
	closed   bool
	readable bool
	writable bool
}

// Path returns the file path this handle refers to.
func (h *Handle) Path() string { return h.path }

// Semantics returns the consistency model governing this handle's path.
// fs.opts (including PathRules) is immutable after New, so this is safe
// without fs.mu — the WAL drainer labels its visibility-lag observations
// with it from outside the lock.
func (h *Handle) Semantics() Semantics { return h.c.fs.semFor(h.path) }

// Open flag bits (match recorder's conventional values).
const (
	ORdonly = 0x0
	OWronly = 0x1
	ORdwr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400

	accessMask = 0x3
)

// Open opens path with POSIX-style flags at simulation time now, returning
// the handle and the simulated cost of the operation.
func (c *Client) Open(path string, flags int, now uint64) (*Handle, uint64, error) {
	fs := c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetaOps++
	cost := fs.opts.Cost.MetaRPC + fs.opts.Cost.OpenCost
	f, err := fs.ensure(path, flags&OCreat != 0)
	if err != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvOpen, Rank: c.rank, Path: path,
			Flags: flags, Now: now, Err: errString(err)})
		return nil, cost, fmt.Errorf("open %s: %w", path, err)
	}
	if flags&OTrunc != 0 {
		if f.laminated {
			fs.recordHistoryLocked(HistoryEvent{Kind: EvOpen, Rank: c.rank, Path: path,
				Flags: flags, Now: now, Err: errString(ErrLaminated)})
			return nil, cost, fmt.Errorf("open %s: %w", path, ErrLaminated)
		}
		f.truncateLocked(0)
		delete(c.pending, path) // truncation discards this client's unpublished writes too
	}
	f.sharers++
	if f.openers == nil {
		f.openers = make(map[int32]bool)
	}
	f.openers[int32(c.rank)] = true
	acc := flags & accessMask
	fs.nextHandle++
	h := &Handle{
		c:        c,
		id:       fs.nextHandle,
		path:     path,
		flags:    flags,
		openSeq:  fs.pubSeq,
		readable: acc == ORdonly || acc == ORdwr,
		writable: acc == OWronly || acc == ORdwr,
	}
	fs.recordHistoryLocked(HistoryEvent{Kind: EvOpen, Rank: c.rank, Path: path,
		Handle: h.id, Flags: flags, Now: now})
	return h, cost, nil
}

// visibleLocked returns the visibility predicate for this handle under the
// file system's consistency model. Callers hold fs.mu. A laminated file's
// published content is visible to everyone regardless of the model
// (UnifyFS lamination renders the file permanently read-only and globally
// visible, §3.2).
func (h *Handle) visibleLocked(now uint64) func(extent) bool {
	if f, err := h.c.fs.ensure(h.path, false); err == nil && f.laminated {
		return func(extent) bool { return true }
	}
	switch h.c.fs.semFor(h.path) {
	case Strong, Commit:
		// Everything published is visible. (The models differ in *when*
		// publishing happens, not in read-side filtering.)
		return func(extent) bool { return true }
	case Session:
		openSeq := h.openSeq
		return func(e extent) bool { return e.seq <= openSeq }
	case Eventual:
		delay := h.c.fs.opts.EventualDelay
		rank := int32(h.c.rank)
		// Own writes are always visible (per-process ordering); remote
		// writes propagate after the delay.
		return func(e extent) bool { return e.writer == rank || e.pubTime+delay <= now }
	default:
		panic("pfs: unknown semantics")
	}
}

// Write stores data at offset off at simulation time now. Under strong
// semantics the write publishes immediately (paying the range-lock cost);
// under commit/session it is buffered pending a commit/close; under eventual
// it publishes with a propagation delay.
func (h *Handle) Write(off int64, data []byte, now uint64) (uint64, error) {
	return h.WriteTraced(off, data, now, 0)
}

// WriteTraced is Write carrying a causal trace ID (obs.Tracer span chain)
// that is stamped into the operation's history event — the hand-off that
// lets the WAL drainer's publish tie back to the rank's original write.
// Zero trace makes this identical to Write.
func (h *Handle) WriteTraced(off int64, data []byte, now uint64, trace uint64) (uint64, error) {
	if h.c.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, ErrClosed
	}
	if !h.writable {
		return 0, ErrReadOnly
	}
	fs := h.c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.ensure(h.path, false)
	if err != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvWrite, Trace: trace, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: off, Len: int64(len(data)), Now: now, Err: errString(err)})
		return 0, err
	}
	if f.laminated {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvWrite, Trace: trace, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: off, Len: int64(len(data)), Now: now, Err: errString(ErrLaminated)})
		return 0, ErrLaminated
	}
	act := fs.interceptLocked(OpInfo{Kind: OpWrite, Rank: h.c.rank, Path: h.path,
		Off: off, Len: int64(len(data)), Now: now})
	if act.CrashBefore {
		h.c.crashLocked()
		fs.recordHistoryLocked(HistoryEvent{Kind: EvWrite, Trace: trace, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: off, Len: int64(len(data)), Now: now, Err: errString(ErrCrashed)})
		return 0, ErrCrashed
	}
	fs.stats.Writes++
	fs.stats.BytesWritten += int64(len(data))
	fs.serverSpan(off, int64(len(data)))
	cost := fs.opts.Cost.IOCost(int64(len(data)))
	if act.Transient {
		var extra uint64
		act, extra, _ = fs.retryTransientLocked(OpInfo{Kind: OpWrite, Rank: h.c.rank,
			Path: h.path, Off: off, Len: int64(len(data)), Now: now})
		cost += extra
		if act.Transient {
			fs.recordHistoryLocked(HistoryEvent{Kind: EvWrite, Trace: trace, Rank: h.c.rank, Path: h.path,
				Handle: h.id, Off: off, Len: int64(len(data)), Now: now, Err: errString(ErrTransient)})
			return cost, fmt.Errorf("write %s: %w", h.path, ErrTransient)
		}
	}
	if act.Torn && act.TornKeep < int64(len(data)) {
		keep := act.TornKeep
		if keep < 0 {
			keep = 0
		}
		data = data[:keep]
	}
	e := extent{off: off, data: append([]byte(nil), data...), writer: int32(h.c.rank)}
	switch fs.semFor(h.path) {
	case Strong:
		cost += fs.lockCostLocked(f)
		fs.publishBatchLocked(f, []extent{e}, now, act)
	case Commit, Session:
		h.c.pending[h.path] = append(h.c.pending[h.path], e)
	case Eventual:
		fs.publishBatchLocked(f, []extent{e}, now, act)
	}
	observeOp(OpWrite, h.c.rank, cost)
	bytesWrittenCounter.Add(int64(len(data)))
	// A crash-after write is recorded as successful: the data landed on the
	// servers even though the process never observed the completion.
	fs.recordHistoryLocked(HistoryEvent{Kind: EvWrite, Trace: trace, Rank: h.c.rank, Path: h.path,
		Handle: h.id, Off: off, Len: int64(len(e.data)), Data: e.data, Now: now})
	if act.CrashAfter {
		h.c.crashLocked()
		return cost, ErrCrashed
	}
	return cost, nil
}

// lockCostLocked models the distributed range-lock acquisition that strong
// semantics requires (Section 3.1): one lock-manager round trip per data
// operation. Contention is tallied in the stats (LockContended counts
// acquisitions that found other processes sharing the file) but kept out of
// the charged cost so logical time stays independent of goroutine
// scheduling — simulated runs are reproducible, and the strong-vs-relaxed
// gap is the per-operation lock round trip itself.
func (fs *FileSystem) lockCostLocked(f *file) uint64 {
	fs.stats.LockAcquires++
	f.acquires++
	return fs.opts.Cost.LockRPC
}

// Read returns up to n bytes from offset off as visible to this handle at
// time now. Bytes inside the visible size that no visible extent covers read
// as zero (holes). The returned count is min(n, visibleSize-off), never
// negative.
func (h *Handle) Read(off, n int64, now uint64) ([]byte, uint64, error) {
	if h.c.crashed {
		return nil, 0, ErrCrashed
	}
	if h.closed {
		return nil, 0, ErrClosed
	}
	if !h.readable {
		return nil, 0, ErrWriteOnly
	}
	fs := h.c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.ensure(h.path, false)
	if err != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvRead, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: off, Len: n, Now: now, Err: errString(err)})
		return nil, 0, err
	}
	act := fs.interceptLocked(OpInfo{Kind: OpRead, Rank: h.c.rank, Path: h.path,
		Off: off, Len: n, Now: now})
	if act.CrashBefore {
		h.c.crashLocked()
		fs.recordHistoryLocked(HistoryEvent{Kind: EvRead, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: off, Len: n, Now: now, Err: errString(ErrCrashed)})
		return nil, 0, ErrCrashed
	}
	fs.stats.Reads++
	fs.serverSpan(off, n)
	cost := fs.opts.Cost.IOCost(n)
	if act.Transient {
		var extra uint64
		act, extra, _ = fs.retryTransientLocked(OpInfo{Kind: OpRead, Rank: h.c.rank,
			Path: h.path, Off: off, Len: n, Now: now})
		cost += extra
		if act.Transient {
			fs.recordHistoryLocked(HistoryEvent{Kind: EvRead, Rank: h.c.rank, Path: h.path,
				Handle: h.id, Off: off, Len: n, Now: now, Err: errString(ErrTransient)})
			return nil, cost, fmt.Errorf("read %s: %w", h.path, ErrTransient)
		}
	}
	sem := fs.semFor(h.path)
	if sem == Strong {
		cost += fs.lockCostLocked(f)
	}
	visible := h.visibleLocked(now)
	// Stale-read accounting: any published extent overlapping the request
	// that the model hides from this reader. The visibility-wait gauges
	// record how far the reader is from the strong view — under Eventual
	// the remaining propagation delay of a hidden extent, otherwise the age
	// of the published-but-hidden data (both in simulated ns).
	stale := false
	for _, e := range f.published {
		if !visible(e) && e.off < off+n && e.end() > off {
			if !stale {
				stale = true
				fs.stats.StaleReads++
				staleReadCounters[sem].Inc()
			}
			var wait int64
			if sem == Eventual {
				wait = int64(e.pubTime) + int64(fs.opts.EventualDelay) - int64(now)
			} else {
				wait = int64(now) - int64(e.pubTime)
			}
			if wait > 0 {
				visWait[sem].SetMax(wait)
				if wait > fs.stats.VisibilityWaitMaxNS {
					fs.stats.VisibilityWaitMaxNS = wait
				}
			}
		}
	}
	own := h.c.pending[h.path]
	if fs.opts.UnorderedSameProcess && len(own) > 1 {
		// BurstFS-style: same-process overlapping writes resolve in an
		// undefined order; model the worst case by overlaying the client's
		// pending writes newest-first, so the oldest write wins overlaps.
		rev := make([]extent, len(own))
		for i, e := range own {
			rev[len(own)-1-i] = e
		}
		own = rev
	}
	buf, visEnd := materialize(f, off, n, visible, own)
	observeOp(OpRead, h.c.rank, cost)
	avail := visEnd - off
	if avail <= 0 {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvRead, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: off, Len: n, Now: now})
		return nil, cost, nil
	}
	if avail > n {
		avail = n
	}
	fs.stats.BytesRead += avail
	bytesReadCounter.Add(avail)
	if fs.history != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvRead, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: off, Len: n, Data: append([]byte(nil), buf[:avail]...), Now: now})
	}
	return buf[:avail], cost, nil
}

// VisibleSize returns the file size as visible to this handle at time now:
// the maximum end offset over visible published extents and the client's own
// pending extents. POSIX append mode and SEEK_END resolve against this.
func (h *Handle) VisibleSize(now uint64) int64 {
	fs := h.c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.ensure(h.path, false)
	if err != nil {
		return 0
	}
	visible := h.visibleLocked(now)
	var size int64
	for _, e := range f.published {
		if visible(e) && e.end() > size {
			size = e.end()
		}
	}
	for _, e := range h.c.pending[h.path] {
		if e.end() > size {
			size = e.end()
		}
	}
	if fs.semFor(h.path) == Strong && f.size > size {
		size = f.size // truncation may have shrunk below extent ends
	}
	return size
}

// Commit publishes this client's pending writes to the file (the commit
// operation of commit semantics: fsync/fdatasync). Under session semantics
// fsync persists data but does not make it visible to other processes, so
// pending writes stay pending. Under strong/eventual there is nothing to
// publish. Returns the simulated cost.
func (h *Handle) Commit(now uint64) (uint64, error) {
	if h.c.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, ErrClosed
	}
	fs := h.c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	act := fs.interceptLocked(OpInfo{Kind: OpCommit, Rank: h.c.rank, Path: h.path, Now: now})
	if act.CrashBefore {
		h.c.crashLocked()
		fs.recordHistoryLocked(HistoryEvent{Kind: EvCommit, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Now: now, Err: errString(ErrCrashed)})
		return 0, ErrCrashed
	}
	fs.stats.Commits++
	cost := fs.opts.Cost.SyncCost
	observeOp(OpCommit, h.c.rank, cost)
	if fs.semFor(h.path) != Commit {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvCommit, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Now: now})
		if act.CrashAfter {
			h.c.crashLocked()
			return cost, ErrCrashed
		}
		return cost, nil
	}
	f, err := fs.ensure(h.path, false)
	if err != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvCommit, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Now: now, Err: errString(err)})
		return cost, err
	}
	if act.DropCommit {
		// Lost fsync: the sync "succeeds" but nothing durably publishes —
		// the silent failure mode commit-semantics protocols must tolerate.
		// The history marks it as dropped so the checker treats it as the
		// no-op it server-side was.
		fs.recordHistoryLocked(HistoryEvent{Kind: EvCommit, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Now: now, Err: "fault: dropped commit"})
		return cost, nil
	}
	fs.publishBatchLocked(f, h.c.pending[h.path], now, act)
	delete(h.c.pending, h.path)
	fs.recordHistoryLocked(HistoryEvent{Kind: EvCommit, Rank: h.c.rank, Path: h.path,
		Handle: h.id, Now: now})
	if act.CrashAfter {
		h.c.crashLocked()
		return cost, ErrCrashed
	}
	return cost, nil
}

// Close closes the handle. Under commit and session semantics closing
// publishes the client's pending writes (close acts as a commit, and session
// visibility is close-to-open). Returns the simulated cost.
func (h *Handle) Close(now uint64) (uint64, error) {
	if h.c.crashed {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, ErrClosed
	}
	fs := h.c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	act := fs.interceptLocked(OpInfo{Kind: OpClose, Rank: h.c.rank, Path: h.path, Now: now})
	if act.CrashBefore {
		// The process dies before close: the session never ends, pending
		// writes are lost, and the server eventually reaps the open handle.
		h.c.crashLocked()
		if f, err := fs.ensure(h.path, false); err == nil && f.sharers > 0 {
			f.sharers--
		}
		h.closed = true
		fs.recordHistoryLocked(HistoryEvent{Kind: EvClose, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Now: now, Err: errString(ErrCrashed)})
		return 0, ErrCrashed
	}
	h.closed = true
	cost := fs.opts.Cost.CloseCost + fs.opts.Cost.MetaRPC
	observeOp(OpClose, h.c.rank, cost)
	f, err := fs.ensure(h.path, false)
	if err != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvClose, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Now: now, Err: errString(err)})
		return cost, err
	}
	if f.sharers > 0 {
		f.sharers--
	}
	switch fs.semFor(h.path) {
	case Commit, Session:
		fs.publishBatchLocked(f, h.c.pending[h.path], now, act)
		delete(h.c.pending, h.path)
	}
	fs.recordHistoryLocked(HistoryEvent{Kind: EvClose, Rank: h.c.rank, Path: h.path,
		Handle: h.id, Now: now})
	if act.CrashAfter {
		h.c.crashLocked()
		return cost, ErrCrashed
	}
	return cost, nil
}

// Laminate implements UnifyFS's lamination (§3.2): the client's pending
// writes publish, and the file becomes permanently read-only with its
// content globally visible under every consistency model. Returns the
// simulated cost (a sync plus a metadata round trip).
func (h *Handle) Laminate(now uint64) (uint64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	fs := h.c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, err := fs.ensure(h.path, false)
	cost := fs.opts.Cost.SyncCost + fs.opts.Cost.MetaRPC
	if err != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvLaminate, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Now: now, Err: errString(err)})
		return cost, err
	}
	fs.stats.Commits++
	fs.publishLocked(f, h.c.pending[h.path], now)
	delete(h.c.pending, h.path)
	f.laminated = true
	fs.recordHistoryLocked(HistoryEvent{Kind: EvLaminate, Rank: h.c.rank, Path: h.path,
		Handle: h.id, Now: now})
	return cost, nil
}

// Truncate sets the file length; the change is immediately visible in all
// models (metadata-path operation).
func (h *Handle) Truncate(length int64) (uint64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	fs := h.c.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.stats.MetaOps++
	f, err := fs.ensure(h.path, false)
	if err != nil {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvTruncate, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: length, Err: errString(err)})
		return fs.opts.Cost.MetaRPC, err
	}
	if f.laminated {
		fs.recordHistoryLocked(HistoryEvent{Kind: EvTruncate, Rank: h.c.rank, Path: h.path,
			Handle: h.id, Off: length, Err: errString(ErrLaminated)})
		return fs.opts.Cost.MetaRPC, ErrLaminated
	}
	f.truncateLocked(length)
	// Drop this client's pending extents beyond the new length.
	kept := h.c.pending[h.path][:0]
	for _, e := range h.c.pending[h.path] {
		if e.off >= length {
			continue
		}
		if e.end() > length {
			e.data = e.data[:length-e.off]
		}
		kept = append(kept, e)
	}
	if len(kept) == 0 {
		delete(h.c.pending, h.path)
	} else {
		h.c.pending[h.path] = kept
	}
	fs.recordHistoryLocked(HistoryEvent{Kind: EvTruncate, Rank: h.c.rank, Path: h.path,
		Handle: h.id, Off: length})
	return fs.opts.Cost.MetaRPC, nil
}

// Crash simulates the client's process dying: all unpublished (pending)
// writes are lost and its handles become unusable. Under commit/session
// semantics this is exactly the data a checkpoint loses when a node fails
// before fsync/close — the durability flip side of buffering writes that
// strong semantics (publish-on-write) does not have. The file system itself
// survives (server-side state is durable).
func (c *Client) Crash() {
	c.fs.mu.Lock()
	defer c.fs.mu.Unlock()
	c.crashLocked()
}

// crashLocked is Crash for callers already holding fs.mu (fault hooks).
func (c *Client) crashLocked() {
	c.pending = make(map[string][]extent)
	c.crashed = true
}

// Crashed reports whether Crash was called.
func (c *Client) Crashed() bool { return c.crashed }

// PendingBytes reports how many unpublished bytes the client holds for path
// (useful in tests and the semantics checker).
func (c *Client) PendingBytes(path string) int64 {
	var n int64
	for _, e := range c.pending[path] {
		n += int64(len(e.data))
	}
	return n
}
