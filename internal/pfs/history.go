package pfs

// Operation-history recording. A HistoryRecorder registered on a FileSystem
// receives one HistoryEvent per client data-path operation, stamped with a
// total-order logical sequence number assigned under fs.mu — the same lock
// that serializes the operations themselves, so the recorded order IS the
// linearization the file system executed. The history is the input of the
// formal consistency checker (internal/consistency), which re-derives
// publication and visibility from the formal model definitions alone and
// compares the predicted read results against the recorded ones.
//
// Like FaultInjector, the recorder is invoked while fs.mu is held:
// implementations must not call back into the file system and should be
// cheap appends (see consistency.Log).

// EventKind identifies one recorded client operation.
type EventKind int

const (
	EvOpen EventKind = iota
	EvWrite
	EvRead
	EvCommit // fsync/fdatasync (Handle.Commit)
	EvClose
	EvLaminate
	EvTruncate
)

var eventKindNames = [...]string{
	EvOpen:     "open",
	EvWrite:    "write",
	EvRead:     "read",
	EvCommit:   "commit",
	EvClose:    "close",
	EvLaminate: "laminate",
	EvTruncate: "truncate",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event#" + string(rune('0'+int(k)))
}

// HistoryEvent is one recorded client operation.
type HistoryEvent struct {
	// Seq is the total-order logical timestamp (1-based), assigned under
	// fs.mu in the order operations took effect.
	Seq  uint64
	Kind EventKind
	Rank int
	Path string
	// Handle identifies the open file description: every operation through
	// one Open carries the same value. Zero for failed opens.
	Handle uint64
	// Flags carries the POSIX open flags (EvOpen only); an O_TRUNC open
	// truncates the file as part of the operation.
	Flags int
	// Off is the write/read offset, or the new length for EvTruncate.
	Off int64
	// Len is the payload length for EvWrite, the *requested* length for
	// EvRead (the returned length is len(Data)).
	Len int64
	// Data is the payload stored by a write or the bytes a read returned
	// (copies — safe to retain).
	Data []byte
	// Digest is an FNV-1a hash of Data, for display and cheap comparison.
	Digest uint64
	// Now is the simulated time of the operation (visibility input for
	// time-based models).
	Now uint64
	// Trace is the causal trace ID of the write's span chain (see
	// obs.Tracer.StartTrace): a WAL-routed write carries the same value
	// from its append through the drain publish to this history event, so
	// a consistency verdict can name the exact op pipeline that produced
	// the bytes. Zero when tracing is off or the op was not traced.
	Trace uint64
	// Err is the failure the operation surfaced ("" on success). Failed
	// operations left the file system unchanged.
	Err string
}

// HistoryRecorder receives every client data-path operation in total order.
// Implementations must be cheap, must not call back into the FileSystem
// (the client holds fs.mu across the call), and must retain or copy the
// event before returning if they keep it.
type HistoryRecorder interface {
	Record(ev HistoryEvent)
}

// SetHistoryRecorder registers (or, with nil, removes) the operation-history
// recorder. Set it before the run starts; recording covers every client of
// this file system.
func (fs *FileSystem) SetHistoryRecorder(rec HistoryRecorder) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.history = rec
}

// HistoryDigest is the FNV-1a hash the recorder stamps into Digest.
func HistoryDigest(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

// recordHistoryLocked stamps and delivers one event. Callers hold fs.mu.
// Data must already be a private copy (or otherwise never mutated again).
func (fs *FileSystem) recordHistoryLocked(ev HistoryEvent) {
	if fs.history == nil {
		return
	}
	fs.histSeq++
	ev.Seq = fs.histSeq
	ev.Digest = HistoryDigest(ev.Data)
	historyEvents.Inc()
	fs.history.Record(ev)
}

// errString renders an operation error for HistoryEvent.Err.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
