package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// generationOf extracts the "# generation N" comment PromText leads with.
func generationOf(t *testing.T, text string) uint64 {
	t.Helper()
	line, _, _ := strings.Cut(text, "\n")
	n, err := strconv.ParseUint(strings.TrimPrefix(line, "# generation "), 10, 64)
	if err != nil {
		t.Fatalf("no generation comment in %q: %v", line, err)
	}
	return n
}

// TestServerEndpoints drives a live server end to end: /healthz, a strictly
// parsed /metrics scrape, and the guarantee the issue pins — the JSON
// snapshot of a generation agrees exactly with the text rendering of the
// same generation.
func TestServerEndpoints(t *testing.T) {
	r := obs.NewRegistry()
	ops := r.Counter("test.ops")
	ops.Add(5)
	r.Histogram("test.lag").Observe(100)

	s, err := StartServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = (%d, %q), want (200, ok)", code, body)
	}

	code, text := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	m, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("/metrics failed strict parse: %v\n%s", err, text)
	}
	if v, ok := m.Value("test_ops"); !ok || v != 5 {
		t.Errorf("scraped test_ops = (%g, %v), want (5, true)", v, ok)
	}
	gen := generationOf(t, text)

	// The JSON view of the same generation must be the same frozen snapshot:
	// rendering it through PromText reproduces the scraped text byte for byte
	// — even though the registry has moved on since.
	ops.Add(100)
	code, body := get(t, fmt.Sprintf("%s/metrics.json?gen=%d", base, gen))
	if code != 200 {
		t.Fatalf("/metrics.json?gen=%d status %d: %s", gen, code, body)
	}
	var resp struct {
		Generation uint64        `json:"generation"`
		Snapshot   *obs.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	if resp.Generation != gen || resp.Snapshot == nil {
		t.Fatalf("gen lookup returned generation %d, snapshot nil=%v", resp.Generation, resp.Snapshot == nil)
	}
	if got := PromText(*resp.Snapshot, gen); got != text {
		t.Errorf("text and JSON of generation %d disagree:\n--- text\n%s--- from JSON\n%s", gen, text, got)
	}

	// A bare JSON scrape advances the generation and sees the new value.
	code, body = get(t, base+"/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Generation <= gen {
		t.Errorf("generation did not advance: %d -> %d", gen, resp.Generation)
	}
	if resp.Snapshot.Counters["test.ops"] != 105 {
		t.Errorf("fresh snapshot test.ops = %d, want 105", resp.Snapshot.Counters["test.ops"])
	}
}

// TestServerDeltaAndEviction covers the ?since= delta path and the retention
// window: deltas subtract the base generation, evicted and bogus generations
// get 410/400.
func TestServerDeltaAndEviction(t *testing.T) {
	r := obs.NewRegistry()
	ops := r.Counter("test.ops")
	ops.Add(10)

	s, err := StartServer(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	base := "http://" + s.Addr()

	_, text := get(t, base+"/metrics")
	gen := generationOf(t, text)

	ops.Add(7)
	code, body := get(t, fmt.Sprintf("%s/metrics.json?since=%d", base, gen))
	if code != 200 {
		t.Fatalf("?since status %d: %s", code, body)
	}
	var resp struct {
		Generation uint64        `json:"generation"`
		Since      uint64        `json:"since"`
		Delta      *obs.Snapshot `json:"delta"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Since != gen || resp.Delta == nil {
		t.Fatalf("delta response: since=%d delta nil=%v", resp.Since, resp.Delta == nil)
	}
	if got := resp.Delta.Counters["test.ops"]; got != 7 {
		t.Errorf("delta test.ops = %d, want 7 (the Add since gen %d)", got, gen)
	}

	// Push the first generation out of the retention window.
	for i := 0; i < retainLimit+2; i++ {
		get(t, base+"/metrics")
	}
	if code, _ := get(t, fmt.Sprintf("%s/metrics.json?gen=%d", base, gen)); code != http.StatusGone {
		t.Errorf("evicted generation: status %d, want 410", code)
	}
	if code, _ := get(t, base+"/metrics.json?gen=banana"); code != http.StatusBadRequest {
		t.Errorf("bad gen parameter: status %d, want 400", code)
	}
}

// TestParseScrapedExpositionFile strictly parses an exposition scraped from
// a real binary — the CI obs-live job curls a running semrepro's /metrics
// into a file and points SEMFS_SCRAPE_FILE here, so the validation is the
// same strict parser the in-process tests use (no promtool). Skipped when
// the variable is unset.
func TestParseScrapedExpositionFile(t *testing.T) {
	path := os.Getenv("SEMFS_SCRAPE_FILE")
	if path == "" {
		t.Skip("SEMFS_SCRAPE_FILE not set (CI scrape validation leg)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParsePromText(string(data))
	if err != nil {
		t.Fatalf("scraped exposition failed strict parse: %v", err)
	}
	// The scrape itself increments the live counter, and the instrumented
	// layers' registrations must be visible even when untouched.
	if v, ok := m.Value("obs_live_scrapes"); !ok || v < 1 {
		t.Errorf("obs_live_scrapes = (%g, %v), want >= 1", v, ok)
	}
	for _, fam := range []string{"pfs_visibility_lag_strong", "flight_events"} {
		if _, ok := m[fam]; !ok {
			t.Errorf("scraped exposition missing family %q", fam)
		}
	}
	t.Logf("scraped exposition: %d families", len(m.Families()))
}

// TestCLIBoundAddressLine is the satellite check on obs.CLIFlags.Start: with
// ":0"-style flags, each listener logs one consistent
// "obs: <what> listening on <url>" line carrying the *bound* port, the
// accessors agree with the log, the endpoints answer, and Flush tears both
// listeners down.
func TestCLIBoundAddressLine(t *testing.T) {
	var f obs.CLIFlags
	f.Pprof = "127.0.0.1:0"
	f.ServeMetrics = "127.0.0.1:0"
	var log bytes.Buffer
	if err := f.Start(&log); err != nil {
		t.Fatal(err)
	}
	lineRE := regexp.MustCompile(`(?m)^obs: (pprof|metrics) listening on http://127\.0\.0\.1:(\d+)/\S*$`)
	lines := lineRE.FindAllStringSubmatch(log.String(), -1)
	if len(lines) != 2 {
		t.Fatalf("want 2 listener log lines, got %d:\n%s", len(lines), log.String())
	}
	ports := map[string]string{}
	for _, m := range lines {
		ports[m[1]] = m[2]
	}
	wantPprof, wantMetrics := f.PprofAddr(), f.MetricsAddr()
	if got := "127.0.0.1:" + ports["pprof"]; got != wantPprof {
		t.Errorf("pprof log says %s, accessor says %s", got, wantPprof)
	}
	if got := "127.0.0.1:" + ports["metrics"]; got != wantMetrics {
		t.Errorf("metrics log says %s, accessor says %s", got, wantMetrics)
	}
	if strings.Contains(wantPprof, ":0") || strings.Contains(wantMetrics, ":0") {
		t.Errorf("bound addresses still carry port 0: %s / %s", wantPprof, wantMetrics)
	}

	if code, body := get(t, "http://"+wantMetrics+"/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("live /healthz via CLI flags = (%d, %q)", code, body)
	}
	if code, _ := get(t, "http://"+wantPprof+"/debug/pprof/"); code != 200 {
		t.Errorf("pprof index status %d", code)
	}

	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	// A fresh transport forces new dials: pprof's stop only closes the
	// listener, so a pooled keep-alive connection would still answer.
	client := http.Client{Timeout: 500 * time.Millisecond, Transport: &http.Transport{}}
	if _, err := client.Get("http://" + wantMetrics + "/healthz"); err == nil {
		t.Error("metrics listener still up after Flush")
	}
	if _, err := client.Get("http://" + wantPprof + "/debug/pprof/"); err == nil {
		t.Error("pprof listener still up after Flush")
	}
}
