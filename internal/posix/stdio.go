package posix

import (
	"fmt"

	"repro/internal/recorder"
)

// Fopen opens a stream with a C fopen mode string ("r", "w", "a", "r+",
// "w+", "a+", optionally with a trailing "b" which is ignored). The stream
// shares the descriptor table with open(); the returned value is a
// descriptor usable with the F* calls.
func (p *Proc) Fopen(pth, mode string) (int, error) {
	flags, err := fopenFlags(mode)
	if err != nil {
		return -1, err
	}
	return p.openAs(recorder.FuncFopen, pth, flags, 0, true)
}

func fopenFlags(mode string) (int, error) {
	if len(mode) > 1 && (mode[len(mode)-1] == 'b') {
		mode = mode[:len(mode)-1]
	}
	switch mode {
	case "r":
		return recorder.ORdonly, nil
	case "r+":
		return recorder.ORdwr, nil
	case "w":
		return recorder.OWronly | recorder.OCreat | recorder.OTrunc, nil
	case "w+":
		return recorder.ORdwr | recorder.OCreat | recorder.OTrunc, nil
	case "a":
		return recorder.OWronly | recorder.OCreat | recorder.OAppend, nil
	case "a+":
		return recorder.ORdwr | recorder.OCreat | recorder.OAppend, nil
	}
	return 0, fmt.Errorf("posix: bad fopen mode %q", mode)
}

// Fwrite writes len(data) bytes as nmemb items of the given size at the
// stream position. len(data) must equal size*nmemb.
func (p *Proc) Fwrite(fdnum int, data []byte, size, nmemb int64) (int64, error) {
	ts := p.clock.Stamp()
	if size*nmemb != int64(len(data)) {
		p.emit(recorder.FuncFwrite, ts, "", "", int64(fdnum), size, nmemb, -1)
		return -1, fmt.Errorf("posix: fwrite size %d*%d != %d bytes", size, nmemb, len(data))
	}
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncFwrite, ts, "", "", int64(fdnum), size, nmemb, -1)
		return -1, err
	}
	if f.appendMd {
		f.offset = p.pfsVisibleSize(f.h, p.clock.Now())
	}
	cost, werr := p.pfsWrite(f.h, f.offset, data, p.clock.Now())
	p.advance(cost)
	if werr != nil {
		p.emit(recorder.FuncFwrite, ts, "", "", int64(fdnum), size, nmemb, -1)
		return -1, werr
	}
	f.offset += int64(len(data))
	p.emit(recorder.FuncFwrite, ts, "", "", int64(fdnum), size, nmemb, int64(len(data)))
	return nmemb, nil
}

// Fread reads up to size*nmemb bytes at the stream position.
func (p *Proc) Fread(fdnum int, size, nmemb int64) ([]byte, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncFread, ts, "", "", int64(fdnum), size, nmemb, -1)
		return nil, err
	}
	data, cost, rerr := p.pfsRead(f.h, f.offset, size*nmemb, p.clock.Now())
	p.advance(cost)
	if rerr != nil {
		p.emit(recorder.FuncFread, ts, "", "", int64(fdnum), size, nmemb, -1)
		return nil, rerr
	}
	f.offset += int64(len(data))
	p.emit(recorder.FuncFread, ts, "", "", int64(fdnum), size, nmemb, int64(len(data)))
	return data, nil
}

// Fseek repositions the stream (same semantics as lseek, distinct record).
func (p *Proc) Fseek(fdnum int, off int64, whence int) (int64, error) {
	return p.seekAs(recorder.FuncFseek, fdnum, off, whence)
}

// Ftell reports the stream position.
func (p *Proc) Ftell(fdnum int) (int64, error) {
	ts := p.clock.Stamp()
	f, err := p.get(fdnum)
	if err != nil {
		p.emit(recorder.FuncFtell, ts, "", "", int64(fdnum), -1)
		return -1, err
	}
	p.emit(recorder.FuncFtell, ts, "", "", int64(fdnum), f.offset)
	return f.offset, nil
}

// Fflush flushes the stream; like fsync it acts as a commit operation
// (paper §6.3 footnote 2).
func (p *Proc) Fflush(fdnum int) error { return p.syncAs(recorder.FuncFflush, fdnum) }

// Fclose closes the stream (a commit/close for visibility purposes).
func (p *Proc) Fclose(fdnum int) error { return p.closeAs(recorder.FuncFclose, fdnum) }

// Fileno returns the descriptor behind a stream, emitting the utility-op
// record the paper counts in Figure 3.
func (p *Proc) Fileno(fdnum int) (int, error) {
	ts := p.clock.Stamp()
	_, err := p.get(fdnum)
	ret := int64(fdnum)
	if err != nil {
		ret = -1
	}
	p.emit(recorder.FuncFileno, ts, "", "", int64(fdnum), ret)
	if err != nil {
		return -1, err
	}
	return fdnum, nil
}
