package wal

// The WAL payoff benchmarks behind BENCH_pr7.json. Both report the
// *simulated* per-write cost as ns/op (via b.ReportMetric), which is fully
// deterministic for a fixed iteration count — unlike host wall time it
// transfers across machines, so CI gates it directly: the WAL's local
// acknowledgement must stay an order of magnitude under the strong-
// semantics PFS round trip. allocs/op and B/op are measured as usual.

import (
	"testing"

	"repro/internal/pfs"
)

const benchBlock = 4096

// BenchmarkWALWriteAck: acknowledgement cost of a WAL-fronted write — the
// local append's modeled cost, not the PFS round trip.
func BenchmarkWALWriteAck(b *testing.B) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	c := fs.NewClient(0, 0)
	// Watermark high enough that the foreground path never degrades to
	// write-through; the background drainer keeps the queue bounded.
	l, err := Open(0, Options{Dir: b.TempDir(), NoFsync: true, Watermark: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	var now uint64 = 10
	h, _, err := l.Open(c, "/bench.dat", pfs.OCreat|pfs.ORdwr, now)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, benchBlock)
	var simTotal uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10
		cost, err := l.Write(h, int64(i)*benchBlock, data, now)
		if err != nil {
			b.Fatal(err)
		}
		simTotal += cost
	}
	b.StopTimer()
	if err := l.Barrier(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(simTotal)/float64(b.N), "ns/op")
}

// BenchmarkWALDirectWrite: the same write straight against the PFS under
// strong semantics — the per-operation lock round trip the WAL hides.
func BenchmarkWALDirectWrite(b *testing.B) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	c := fs.NewClient(0, 0)
	var now uint64 = 10
	h, _, err := c.Open("/bench.dat", pfs.OCreat|pfs.ORdwr, now)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, benchBlock)
	var simTotal uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10
		cost, err := h.Write(int64(i)*benchBlock, data, now)
		if err != nil {
			b.Fatal(err)
		}
		simTotal += cost
	}
	b.StopTimer()
	b.ReportMetric(float64(simTotal)/float64(b.N), "ns/op")
}
