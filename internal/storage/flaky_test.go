package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// TestGenScheduleDeterministic: same (seed, options) → byte-identical
// schedule; different seeds diverge. The determinism contract CI's
// backend matrix leans on (a failing seed is replayable verbatim).
func TestGenScheduleDeterministic(t *testing.T) {
	opts := GenOptions{Count: 8}
	for seed := uint64(1); seed <= 64; seed++ {
		a := GenSchedule(seed, opts).Encode()
		b := GenSchedule(seed, opts).Encode()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: schedule not deterministic:\n%s\nvs\n%s", seed, a, b)
		}
	}
	if bytes.Equal(GenSchedule(1, opts).Encode(), GenSchedule(2, opts).Encode()) {
		t.Fatal("seeds 1 and 2 generated identical schedules")
	}
}

// openFlakyFile wires one flaky file over a real osdisk file for direct
// fault-contract tests.
func openFlakyFile(t *testing.T, sched Schedule) (Backend, File, string) {
	t.Helper()
	fb := NewFlaky(OS(), sched)
	path := filepath.Join(t.TempDir(), "f.dat")
	f, err := fb.Open(path, OCreate|ORdwr, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return fb, f, path
}

// TestFlakyTransientFiresBeforeEffects: an injected transient write fails
// with ErrTransient and leaves the underlying file untouched — the
// side-effect-free contract that makes the retry policy safe.
func TestFlakyTransientFiresBeforeEffects(t *testing.T) {
	sched := Schedule{Injections: []FaultInjection{{Kind: FaultTransient, N: 1, Arg: 2}}}
	fb, f, path := openFlakyFile(t, sched)
	// N=1 with Arg=2: first two eligible ops fail, third succeeds.
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("data")); !errors.Is(err, ErrTransient) {
			t.Fatalf("write %d: err = %v, want ErrTransient", i, err)
		}
	}
	if got, _ := OS().ReadFile(path); len(got) != 0 {
		t.Fatalf("transient failure touched the file: %q", got)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatalf("post-blip write: %v", err)
	}
	st := fb.(*flaky).Stats()
	if st.Fired == 0 || st.Ops != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFlakyTornWriteIsPermanent: a torn write lands half the payload and
// returns a NON-transient error. If it were ErrTransient the retry policy
// would replay it and duplicate half-frames into append-only logs.
func TestFlakyTornWriteIsPermanent(t *testing.T) {
	sched := Schedule{Injections: []FaultInjection{{Kind: FaultTorn, N: 1}}}
	_, f, path := openFlakyFile(t, sched)
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if errors.Is(err, ErrTransient) {
		t.Fatalf("torn write returned ErrTransient (%v) — retrying would corrupt the log", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write landed %d bytes, want %d", n, len(payload)/2)
	}
	got, _ := OS().ReadFile(path)
	if !bytes.Equal(got, payload[:len(payload)/2]) {
		t.Fatalf("on disk after torn write: %q", got)
	}
}

// TestFlakyLostSync: the sync reports success but does not reach the inner
// backend — on the objstore base that means the version is never published.
func TestFlakyLostSync(t *testing.T) {
	inner := NewObjStore(ObjStoreOptions{Root: t.TempDir(), VisibilityDelay: time.Millisecond})
	fb := NewFlaky(inner, Schedule{Injections: []FaultInjection{{Kind: FaultLostSync, N: 1}}})
	f, err := fb.Open("k.dat", OCreate|OWronly, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("lost sync must lie with success, got %v", err)
	}
	// Settle past the visibility horizon: the key must be absent because it
	// was never published, not merely still inside the publish window.
	Settle(inner)
	if _, err := inner.ReadFile("k.dat"); !IsNotExist(err) {
		t.Fatalf("lost sync actually published: err = %v", err)
	}
}

// TestFlakyRenameFail: the rename fails with ErrTransient before executing;
// a retry then succeeds, so WriteFileAtomic survives it under the policy.
func TestFlakyRenameFail(t *testing.T) {
	dir := t.TempDir()
	fb := NewFlaky(OS(), Schedule{Injections: []FaultInjection{{Kind: FaultRenameFail, N: 1}}})
	src := filepath.Join(dir, "a")
	dst := filepath.Join(dir, "b")
	if err := WriteFileAtomic(OS(), src, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := fb.Rename(src, dst); !errors.Is(err, ErrTransient) {
		t.Fatalf("first rename: err = %v, want ErrTransient", err)
	}
	if _, err := OS().ReadFile(src); err != nil {
		t.Fatalf("failed rename moved the source: %v", err)
	}
	if err := fb.Rename(src, dst); err != nil {
		t.Fatalf("retried rename: %v", err)
	}
}

// TestFlakyWedge: past WedgeAfter eligible ops, everything fails forever —
// the persistent-failure shape that must exhaust the retry policy.
func TestFlakyWedge(t *testing.T) {
	fb, f, _ := openFlakyFile(t, Schedule{WedgeAfter: 2})
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("pre-wedge write %d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := f.Write([]byte("no")); !errors.Is(err, ErrTransient) {
			t.Fatalf("post-wedge write %d: err = %v, want ErrTransient", i, err)
		}
	}
	if !fb.(*flaky).Wedged() {
		t.Fatal("backend not wedged")
	}
	if err := f.Sync(); !errors.Is(err, ErrTransient) {
		t.Fatalf("post-wedge sync: %v", err)
	}
}

// TestFlakyRetryStormDoesNotShiftSchedule: while a transient blip is live,
// failing retries consume the blip budget without advancing the Nth-op
// counters, so later injections fire at the same workload positions whether
// or not a retry layer sits on top.
func TestFlakyRetryStormDoesNotShiftSchedule(t *testing.T) {
	sched := Schedule{Injections: []FaultInjection{
		{Kind: FaultTransient, N: 1, Arg: 3}, // ops 1..3 fail
		{Kind: FaultTorn, N: 3},              // fires at the 3rd *counted* write
	}}
	_, f, _ := openFlakyFile(t, sched)
	var failures int
	var tornAt int
	for i := 1; i <= 8; i++ {
		_, err := f.Write([]byte("0123456789"))
		if err == nil {
			continue
		}
		if errors.Is(err, ErrTransient) {
			failures++
		} else {
			tornAt = i
		}
	}
	if failures != 3 {
		t.Fatalf("transient failures = %d, want 3", failures)
	}
	// Op 1 counts (and starts the blip); ops 2-3 burn the blip budget
	// without counting; the counter resumes at op 4 (count 2), so the torn
	// injection (counted N=3) fires at overall op 5.
	if tornAt != 5 {
		t.Fatalf("torn write fired at op %d, want 5 (schedule shifted by the retry storm)", tornAt)
	}
}
