package wal

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pfs"
)

// TestBurstRunRecoverRoundTrip proves the uninterrupted half of the
// kill-and-recover contract for every model: the burst's WAL-mediated
// history satisfies the model's formal spec, and recovering its log
// directory replays to a state byte-identical to both the live run and a
// direct (WAL-free) run of the same writes.
func TestBurstRunRecoverRoundTrip(t *testing.T) {
	for _, sem := range pfs.AllSemantics() {
		sem := sem
		t.Run(sem.String(), func(t *testing.T) {
			t.Parallel()
			spec := BurstSpec{
				Semantics: sem,
				Ranks:     3,
				Records:   24,
				Block:     512,
				Log:       Options{Dir: t.TempDir(), NoFsync: true},
			}
			res, err := RunBurst(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Spec.OK() {
				t.Fatalf("live WAL-mediated history rejected: %s", res.Spec.Violation)
			}
			var acked int64
			for _, st := range res.Stats {
				acked += st.Acked + st.WriteThrough
			}
			if acked != int64(spec.Ranks*spec.Records) {
				t.Fatalf("acked+writethrough = %d, want %d", acked, spec.Ranks*spec.Records)
			}

			rep, err := RecoverBurst(spec)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Records != spec.Ranks*spec.Records || rep.Dropped != 0 {
				t.Fatalf("recovered %d records (dropped %d), want %d clean", rep.Records, rep.Dropped, spec.Ranks*spec.Records)
			}
			if !rep.Check.OK() {
				t.Fatalf("replayed history rejected: %s", rep.Check.Violation)
			}
			if err := diffDumps(res.Dump, rep.Dump); err != nil {
				t.Fatalf("recovered state differs from live run: %v", err)
			}
		})
	}
}

// TestRecoverBurstDetectsLoss proves the harness is not vacuous: silently
// deleting an acked record from the middle of a log makes recovery fail
// with an acked-write-loss (protocol mismatch) error.
func TestRecoverBurstDetectsLoss(t *testing.T) {
	dir := t.TempDir()
	spec := BurstSpec{Semantics: pfs.Commit, Ranks: 1, Records: 8, Block: 64,
		Log: Options{Dir: dir, NoFsync: true}}
	if _, err := RunBurst(spec); err != nil {
		t.Fatal(err)
	}
	// Rewrite rank 0's log without record 3 — a lost acked write.
	recs, _, err := RecoverDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, logName(0)))
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs[0] {
		if i == 3 {
			continue
		}
		if _, err := appendRecord(f, rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverBurst(spec); err == nil {
		t.Fatal("RecoverBurst accepted a log with a deleted acked record")
	}
}
