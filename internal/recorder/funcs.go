package recorder

// Func identifies a traced function. The set mirrors what the paper's
// Recorder tool intercepts: the POSIX data and metadata/utility operations
// listed in Section 6.4 (footnote 3), the MPI communication calls used for
// happens-before validation (Section 5.2), MPI-IO, and the higher-level I/O
// library entry points (HDF5, NetCDF, ADIOS, Silo).
type Func uint16

const (
	FuncUnknown Func = iota

	// POSIX data operations.
	FuncOpen
	FuncCreat
	FuncClose
	FuncRead
	FuncWrite
	FuncPread
	FuncPwrite
	FuncLseek
	FuncReadv
	FuncWritev
	FuncFsync
	FuncFdatasync

	// POSIX stdio.
	FuncFopen
	FuncFclose
	FuncFread
	FuncFwrite
	FuncFseek
	FuncFtell
	FuncFflush

	// POSIX metadata and utility operations (paper §6.4 footnote 3).
	FuncStat
	FuncLstat
	FuncFstat
	FuncAccess
	FuncFaccessat
	FuncUnlink
	FuncMkdir
	FuncRmdir
	FuncChdir
	FuncGetcwd
	FuncRename
	FuncLink
	FuncSymlink
	FuncReadlink
	FuncChmod
	FuncChown
	FuncUtime
	FuncOpendir
	FuncReaddir
	FuncClosedir
	FuncMknod
	FuncFcntl
	FuncDup
	FuncDup2
	FuncPipe
	FuncMkfifo
	FuncUmask
	FuncFileno
	FuncTmpfile
	FuncRemove
	FuncTruncate
	FuncFtruncate
	FuncMmap
	FuncMsync

	// MPI communication (used for happens-before reconstruction).
	FuncMPIBarrier
	FuncMPISend
	FuncMPIRecv
	FuncMPIBcast
	FuncMPIReduce
	FuncMPIAllreduce
	FuncMPIGather
	FuncMPIGatherv
	FuncMPIScatter
	FuncMPIAllgather
	FuncMPIAlltoall

	// MPI-IO.
	FuncMPIFileOpen
	FuncMPIFileClose
	FuncMPIFileSetView
	FuncMPIFileSeek
	FuncMPIFileRead
	FuncMPIFileWrite
	FuncMPIFileReadAt
	FuncMPIFileWriteAt
	FuncMPIFileReadAtAll
	FuncMPIFileWriteAtAll
	FuncMPIFileReadAll
	FuncMPIFileWriteAll
	FuncMPIFileSync
	FuncMPIFileSetSize
	FuncMPIFileSetAtomicity

	// HDF5.
	FuncH5Fcreate
	FuncH5Fopen
	FuncH5Fclose
	FuncH5Fflush
	FuncH5Gcreate
	FuncH5Dcreate
	FuncH5Dopen
	FuncH5Dclose
	FuncH5Dwrite
	FuncH5Dread
	FuncH5Acreate
	FuncH5Awrite
	FuncH5Aread

	// NetCDF.
	FuncNCCreate
	FuncNCOpen
	FuncNCClose
	FuncNCEnddef
	FuncNCRedef
	FuncNCSync
	FuncNCPutVara
	FuncNCGetVara

	// ADIOS.
	FuncADIOSOpen
	FuncADIOSClose
	FuncADIOSPut
	FuncADIOSGet
	FuncADIOSEndStep

	// Silo.
	FuncDBCreate
	FuncDBOpen
	FuncDBClose
	FuncDBPutQuadmesh
	FuncDBPutQuadvar
	FuncDBMkDir
	FuncDBSetDir

	funcCount // sentinel; keep last
)

var funcNames = [...]string{
	FuncUnknown:   "unknown",
	FuncOpen:      "open",
	FuncCreat:     "creat",
	FuncClose:     "close",
	FuncRead:      "read",
	FuncWrite:     "write",
	FuncPread:     "pread",
	FuncPwrite:    "pwrite",
	FuncLseek:     "lseek",
	FuncReadv:     "readv",
	FuncWritev:    "writev",
	FuncFsync:     "fsync",
	FuncFdatasync: "fdatasync",

	FuncFopen:  "fopen",
	FuncFclose: "fclose",
	FuncFread:  "fread",
	FuncFwrite: "fwrite",
	FuncFseek:  "fseek",
	FuncFtell:  "ftell",
	FuncFflush: "fflush",

	FuncStat:      "stat",
	FuncLstat:     "lstat",
	FuncFstat:     "fstat",
	FuncAccess:    "access",
	FuncFaccessat: "faccessat",
	FuncUnlink:    "unlink",
	FuncMkdir:     "mkdir",
	FuncRmdir:     "rmdir",
	FuncChdir:     "chdir",
	FuncGetcwd:    "getcwd",
	FuncRename:    "rename",
	FuncLink:      "link",
	FuncSymlink:   "symlink",
	FuncReadlink:  "readlink",
	FuncChmod:     "chmod",
	FuncChown:     "chown",
	FuncUtime:     "utime",
	FuncOpendir:   "opendir",
	FuncReaddir:   "readdir",
	FuncClosedir:  "closedir",
	FuncMknod:     "mknod",
	FuncFcntl:     "fcntl",
	FuncDup:       "dup",
	FuncDup2:      "dup2",
	FuncPipe:      "pipe",
	FuncMkfifo:    "mkfifo",
	FuncUmask:     "umask",
	FuncFileno:    "fileno",
	FuncTmpfile:   "tmpfile",
	FuncRemove:    "remove",
	FuncTruncate:  "truncate",
	FuncFtruncate: "ftruncate",
	FuncMmap:      "mmap",
	FuncMsync:     "msync",

	FuncMPIBarrier:   "MPI_Barrier",
	FuncMPISend:      "MPI_Send",
	FuncMPIRecv:      "MPI_Recv",
	FuncMPIBcast:     "MPI_Bcast",
	FuncMPIReduce:    "MPI_Reduce",
	FuncMPIAllreduce: "MPI_Allreduce",
	FuncMPIGather:    "MPI_Gather",
	FuncMPIGatherv:   "MPI_Gatherv",
	FuncMPIScatter:   "MPI_Scatter",
	FuncMPIAllgather: "MPI_Allgather",
	FuncMPIAlltoall:  "MPI_Alltoall",

	FuncMPIFileOpen:         "MPI_File_open",
	FuncMPIFileClose:        "MPI_File_close",
	FuncMPIFileSetView:      "MPI_File_set_view",
	FuncMPIFileSeek:         "MPI_File_seek",
	FuncMPIFileRead:         "MPI_File_read",
	FuncMPIFileWrite:        "MPI_File_write",
	FuncMPIFileReadAt:       "MPI_File_read_at",
	FuncMPIFileWriteAt:      "MPI_File_write_at",
	FuncMPIFileReadAtAll:    "MPI_File_read_at_all",
	FuncMPIFileWriteAtAll:   "MPI_File_write_at_all",
	FuncMPIFileReadAll:      "MPI_File_read_all",
	FuncMPIFileWriteAll:     "MPI_File_write_all",
	FuncMPIFileSync:         "MPI_File_sync",
	FuncMPIFileSetSize:      "MPI_File_set_size",
	FuncMPIFileSetAtomicity: "MPI_File_set_atomicity",

	FuncH5Fcreate: "H5Fcreate",
	FuncH5Fopen:   "H5Fopen",
	FuncH5Fclose:  "H5Fclose",
	FuncH5Fflush:  "H5Fflush",
	FuncH5Gcreate: "H5Gcreate",
	FuncH5Dcreate: "H5Dcreate",
	FuncH5Dopen:   "H5Dopen",
	FuncH5Dclose:  "H5Dclose",
	FuncH5Dwrite:  "H5Dwrite",
	FuncH5Dread:   "H5Dread",
	FuncH5Acreate: "H5Acreate",
	FuncH5Awrite:  "H5Awrite",
	FuncH5Aread:   "H5Aread",

	FuncNCCreate:  "nc_create",
	FuncNCOpen:    "nc_open",
	FuncNCClose:   "nc_close",
	FuncNCEnddef:  "nc_enddef",
	FuncNCRedef:   "nc_redef",
	FuncNCSync:    "nc_sync",
	FuncNCPutVara: "nc_put_vara",
	FuncNCGetVara: "nc_get_vara",

	FuncADIOSOpen:    "adios2_open",
	FuncADIOSClose:   "adios2_close",
	FuncADIOSPut:     "adios2_put",
	FuncADIOSGet:     "adios2_get",
	FuncADIOSEndStep: "adios2_end_step",

	FuncDBCreate:      "DBCreate",
	FuncDBOpen:        "DBOpen",
	FuncDBClose:       "DBClose",
	FuncDBPutQuadmesh: "DBPutQuadmesh",
	FuncDBPutQuadvar:  "DBPutQuadvar",
	FuncDBMkDir:       "DBMkDir",
	FuncDBSetDir:      "DBSetDir",
}

// String returns the C-style function name, e.g. "pwrite" or "H5Fflush".
func (f Func) String() string {
	if int(f) < len(funcNames) && funcNames[f] != "" {
		return funcNames[f]
	}
	return "func#" + itoa(int(f))
}

// Valid reports whether f is a known traced function.
func (f Func) Valid() bool { return f > FuncUnknown && f < funcCount }

// NumFuncs returns the number of known functions (for table sizing).
func NumFuncs() int { return int(funcCount) }

// itoa is a minimal integer formatter to keep this file free of fmt.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// FuncByName returns the Func with the given name, or FuncUnknown.
func FuncByName(name string) Func {
	for f, n := range funcNames {
		if n == name {
			return Func(f)
		}
	}
	return FuncUnknown
}
