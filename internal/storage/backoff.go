package storage

import "repro/internal/sim"

// Backoff computes the delay before retry attempt n (0-based) after a
// transient fault. The nominal delay grows geometrically from BaseNS by
// Multiplier, saturating at CapNS; deterministic jitter then spreads
// retries across [¾·nominal, 5⁄4·nominal] — i.e. jitter is bounded by
// ±25% of the nominal delay. Delay is a pure function of (Seed, attempt):
// it derives a fresh splitmix64 stream per attempt instead of mutating
// shared RNG state, so concurrent retriers with the same seed see the same
// schedule regardless of interleaving — the property the faults package
// tests lean on. (This type lived in internal/wal before the storage seam;
// wal.Backoff is now an alias of it.)
type Backoff struct {
	BaseNS     uint64 // first-retry nominal delay; default 100µs
	Multiplier uint64 // geometric growth per attempt; default 2
	CapNS      uint64 // nominal-delay ceiling; default ~1s
	Seed       uint64 // jitter stream identity; default 1
}

// WithDefaults fills zero fields with the documented defaults.
func (b Backoff) WithDefaults() Backoff {
	if b.BaseNS == 0 {
		b.BaseNS = 100_000
	}
	if b.Multiplier == 0 {
		b.Multiplier = 2
	}
	if b.CapNS == 0 {
		b.CapNS = 1 << 30
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

// Delay returns the jittered backoff for the given attempt, in nanoseconds.
func (b Backoff) Delay(attempt int) uint64 {
	b = b.WithDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := b.BaseNS
	for i := 0; i < attempt; i++ {
		if d >= b.CapNS/b.Multiplier {
			d = b.CapNS
			break
		}
		d *= b.Multiplier
	}
	if d > b.CapNS {
		d = b.CapNS
	}
	// j ∈ [0, d/2]; delay = d - d/4 + j ∈ [d - d/4, d + d/4].
	j := sim.NewRNG(b.Seed).Split(uint64(attempt)).Uint64() % (d/2 + 1)
	return d - d/4 + j
}

// MaxTotalDelay is the analytic worst-case cumulative sleep across the
// first `attempts` retries: each attempt sleeps at most 5⁄4 of its nominal
// delay, and nominals grow geometrically saturating at CapNS. Independent
// of Seed — the bound the retry policy's property tests pin every seed's
// actual total under.
func (b Backoff) MaxTotalDelay(attempts int) uint64 {
	b = b.WithDefaults()
	var total uint64
	d := b.BaseNS
	for i := 0; i < attempts; i++ {
		if d > b.CapNS {
			d = b.CapNS
		}
		total += d + d/4
		if d >= b.CapNS/b.Multiplier {
			d = b.CapNS
		} else {
			d *= b.Multiplier
		}
	}
	return total
}
