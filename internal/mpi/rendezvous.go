package mpi

import "sync"

// rendezvous implements the collective meeting point. SPMD programs call
// collectives in the same order on every rank, so a single rendezvous per
// communicator suffices; each completed round is immutable once released, so
// a fast rank may begin the next round while slow ranks still read the
// previous one.
type rendezvous struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	departed int // ranks that left the job (crash faults, failed bodies)
	cur      *round
	seq      int64
}

// round is one collective instance.
type round struct {
	seq      int64
	arrived  int
	maxClock uint64
	slots    [][]byte   // per-rank deposited payloads (gather/bcast/reduce)
	scatter  [][]byte   // root-deposited parts (scatter)
	alltoall [][][]byte // [src][dst] parts
	done     bool
}

func newRendezvous(n int) *rendezvous {
	rv := &rendezvous{n: n}
	rv.cond = sync.NewCond(&rv.mu)
	return rv
}

func (rv *rendezvous) beginLocked() *round {
	if rv.cur == nil || rv.cur.done {
		rv.cur = &round{
			seq:   rv.seq,
			slots: make([][]byte, rv.n),
		}
		rv.seq++
	}
	return rv.cur
}

// releaseLocked completes the round once every non-departed rank arrived.
func (rv *rendezvous) releaseLocked(r *round) {
	if !r.done && r.arrived >= rv.n-rv.departed {
		r.done = true
		rv.cond.Broadcast()
	}
}

func (rv *rendezvous) finishLocked(r *round) {
	r.arrived++
	rv.releaseLocked(r)
	for !r.done {
		rv.cond.Wait()
	}
}

// depart removes one rank from collective accounting: the in-progress round
// (if any) and every future round complete without it. Ranks only depart
// from outside a collective, so arrived never counts a departed rank.
func (rv *rendezvous) depart() {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	rv.departed++
	if rv.cur != nil {
		rv.releaseLocked(rv.cur)
	}
}

// arrive deposits data for rank and blocks until all ranks arrive.
func (rv *rendezvous) arrive(rank int, clock uint64, data []byte) *round {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	r := rv.beginLocked()
	r.slots[rank] = data
	if clock > r.maxClock {
		r.maxClock = clock
	}
	rv.finishLocked(r)
	return r
}

// arriveScatter is arrive for scatter: only root deposits the parts.
func (rv *rendezvous) arriveScatter(rank int, clock uint64, root int, parts [][]byte) *round {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	r := rv.beginLocked()
	if rank == root {
		r.scatter = parts
	}
	if clock > r.maxClock {
		r.maxClock = clock
	}
	rv.finishLocked(r)
	return r
}

// arriveAlltoall is arrive for alltoall: every rank deposits a part vector.
func (rv *rendezvous) arriveAlltoall(rank int, clock uint64, parts [][]byte) *round {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	r := rv.beginLocked()
	if r.alltoall == nil {
		r.alltoall = make([][][]byte, rv.n)
	}
	r.alltoall[rank] = parts
	if clock > r.maxClock {
		r.maxClock = clock
	}
	rv.finishLocked(r)
	return r
}
