// Command semrepro regenerates every table and figure of the paper's
// evaluation section from freshly simulated runs: Table 1 (PFS
// categorization), Table 3 (high-level patterns), Table 4 (conflicts under
// session/commit semantics), Table 5 (configuration inventory), Figure 1
// (access-pattern mixes), Figure 2 (FLASH access scatter CSVs) and Figure 3
// (metadata census). Results land in the output directory as text and CSV.
//
// Usage:
//
//	semrepro -out results -ranks 64 -ppn 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		out     = flag.String("out", "results", "output directory")
		ranks   = flag.Int("ranks", 64, "ranks per run")
		ppn     = flag.Int("ppn", 8, "processes per node")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		only    = flag.String("only", "", "generate a single artifact: table1|table3|table4|table5|figure1|figure2|figure3|verdicts")
		workers = flag.Int("workers", 0, "how many configurations to run concurrently: 0 = GOMAXPROCS, 1 = serial")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	scale := experiments.Scale{Ranks: *ranks, PPN: *ppn, Seed: *seed}

	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		write("table1_semantics.txt", experiments.Table1())
	}
	if want("table5") {
		write("table5_configurations.txt", experiments.Table5())
	}
	if *only == "table1" || *only == "table5" {
		return
	}

	fmt.Printf("running all %d configurations at %d ranks...\n", 25, *ranks)
	results, err := experiments.RunAllWorkers(scale, *workers)
	if err != nil {
		// Failures are per-configuration: report every one, then keep going
		// with whatever succeeded rather than losing the whole sweep.
		fmt.Fprintln(os.Stderr, "semrepro: some configurations failed:\n", err)
		if len(results.Ordered) == 0 {
			os.Exit(1)
		}
	}

	if want("table3") {
		write("table3_patterns.txt", experiments.Table3(results))
	}
	if want("table4") {
		write("table4_conflicts.txt", experiments.Table4(results))
	}
	if want("figure1") {
		text, csv := experiments.Figure1(results)
		write("figure1_patterns.txt", text)
		write("figure1_patterns.csv", csv)
	}
	if want("figure2") {
		for name, csv := range experiments.Figure2(results) {
			write("figure2_"+name, csv)
		}
	}
	if want("figure3") {
		write("figure3_metadata.txt", experiments.Figure3(results))
	}
	if want("verdicts") || *only == "" {
		write("verdicts.txt", experiments.VerdictsReport(results))
	}
	if want("metadeps") || *only == "" {
		write("metadata_dependencies.txt", experiments.MetaTable(results))
	}
	if want("reports") || *only == "" {
		// Per-run detailed reports, like the paper's published artifact.
		if err := os.MkdirAll(filepath.Join(*out, "reports"), 0o755); err != nil {
			fatal(err)
		}
		for _, name := range results.Ordered {
			rep := report.BuildRunReport(results.ByName[name].Trace)
			write(filepath.Join("reports", sanitize(name)+".txt"), rep.Render())
		}
	}
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		if r == '/' || r == ' ' {
			return '_'
		}
		return r
	}, name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "semrepro:", err)
	os.Exit(1)
}
