package hdf5

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/pfs"
	"repro/internal/recorder"
)

func run(t *testing.T, n, ppn int, body func(ctx *harness.Ctx) error) *harness.Result {
	t.Helper()
	res, err := harness.Run(harness.Config{Ranks: n, PPN: ppn, Semantics: pfs.Strong},
		recorder.Meta{App: "hdf5-test", Library: "HDF5"}, body)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return res
}

// posixWrites returns the POSIX-layer write records of a trace.
func posixWrites(res *harness.Result) []recorder.Record {
	return res.Trace.Filter(func(r *recorder.Record) bool { return r.IsWriteOp() })
}

func TestSerialDatasetRoundTrip(t *testing.T) {
	run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := CreateSerial(ctx.OS, ctx.Tracer, "/s.h5", Options{})
		if err != nil {
			return err
		}
		d, err := f.CreateDataset("temps", 1024)
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{0x5A}, 1024)
		if err := d.Write(0, payload); err != nil {
			return err
		}
		got, err := d.Read(0, 1024)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			ctx.Failf("read back mismatch")
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
}

func TestSerialCreateWritesHeaderOpenReadsIt(t *testing.T) {
	// The ENZO RAW-S mechanism: write-through of the dataset header at
	// create, pread of the same bytes at H5Dopen, no commit in between.
	res := run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := CreateSerial(ctx.OS, ctx.Tracer, "/e.h5", Options{})
		if err != nil {
			return err
		}
		d, err := f.CreateDataset("grid", 512)
		if err != nil {
			return err
		}
		if err := d.Write(0, make([]byte, 512)); err != nil {
			return err
		}
		if _, err := f.OpenDataset("grid"); err != nil {
			return err
		}
		return f.Close()
	})
	var wroteHeader, readHeader bool
	var hdrOff int64 = metaCursorBase
	for _, rs := range res.Trace.PerRank {
		for _, r := range rs {
			if r.Func == recorder.FuncPwrite && r.Arg(2) == hdrOff {
				wroteHeader = true
			}
			if r.Func == recorder.FuncPread && r.Arg(2) == hdrOff && wroteHeader {
				readHeader = true
			}
		}
	}
	if !wroteHeader || !readHeader {
		t.Fatalf("expected header write-then-read at offset %d (wrote=%v read=%v)", hdrOff, wroteHeader, readHeader)
	}
}

func TestSerialWriteOnceHasNoOverlappingMetadata(t *testing.T) {
	// LAMMPS-HDF5 / QMCPACK shape: serial file, datasets written once, no
	// H5Dopen — every metadata offset must be written exactly once.
	res := run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := CreateSerial(ctx.OS, ctx.Tracer, "/q.h5", Options{})
		if err != nil {
			return err
		}
		for _, name := range []string{"a", "b", "c"} {
			d, err := f.CreateDataset(name, 256)
			if err != nil {
				return err
			}
			if err := d.Write(0, make([]byte, 256)); err != nil {
				return err
			}
			d.Close()
		}
		return f.Close()
	})
	seen := map[int64]int{}
	for _, r := range posixWrites(res) {
		seen[r.Arg(2)]++
	}
	for off, n := range seen {
		if n != 1 {
			t.Fatalf("offset %d written %d times; serial write-once file must have no overwrites", off, n)
		}
	}
}

func TestParallelIndependentWrites(t *testing.T) {
	res := run(t, 4, 2, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.MPI, ctx.OS, ctx.Tracer, "/p.h5", Options{})
		if err != nil {
			return err
		}
		d, err := f.CreateDataset("field", 4*256)
		if err != nil {
			return err
		}
		payload := bytes.Repeat([]byte{byte('0' + ctx.Rank)}, 256)
		if err := d.Write(int64(ctx.Rank)*256, payload); err != nil {
			return err
		}
		ctx.MPI.Barrier()
		got, err := d.Read(int64(ctx.Rank)*256, 256)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, payload) {
			ctx.Failf("parallel read-back mismatch: %q", got[:8])
		}
		if err := f.Close(); err != nil {
			return err
		}
		return ctx.Failures()
	})
	_ = res
}

func TestCollectiveModeUsesAggregators(t *testing.T) {
	res := run(t, 8, 2, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.MPI, ctx.OS, ctx.Tracer, "/c.h5",
			Options{Collective: true, CBNodes: 2, CollectiveMetadata: true})
		if err != nil {
			return err
		}
		d, err := f.CreateDataset("rho", 8*128)
		if err != nil {
			return err
		}
		if err := d.Write(int64(ctx.Rank)*128, bytes.Repeat([]byte{1}, 128)); err != nil {
			return err
		}
		return f.Close()
	})
	// Raw data writes (offset >= DataBase) must come from <= 2 aggregators.
	dataWriters := map[int32]bool{}
	for _, r := range posixWrites(res) {
		if r.Arg(2) >= 16<<10 {
			dataWriters[r.Rank] = true
		}
	}
	if len(dataWriters) == 0 || len(dataWriters) > 2 {
		t.Fatalf("data writers = %v, want 1-2 aggregators", dataWriters)
	}
}

func TestCollectiveMetadataOnlyRank0(t *testing.T) {
	res := run(t, 4, 2, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.MPI, ctx.OS, ctx.Tracer, "/cm.h5",
			Options{CollectiveMetadata: true})
		if err != nil {
			return err
		}
		d, err := f.CreateDataset("x", 4*64)
		if err != nil {
			return err
		}
		if err := d.Write(int64(ctx.Rank)*64, make([]byte, 64)); err != nil {
			return err
		}
		if err := f.Flush(); err != nil {
			return err
		}
		return f.Close()
	})
	for _, r := range posixWrites(res) {
		if r.Arg(2) < 16<<10 && r.Rank != 0 {
			t.Fatalf("rank %d wrote metadata at %d with collective metadata on", r.Rank, r.Arg(2))
		}
	}
}

func TestIndependentMetadataSpreadsAcrossRanks(t *testing.T) {
	// The FLASH shape: many datasets with per-dataset flushes spread the
	// metadata writes over many ranks.
	res := run(t, 16, 4, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.MPI, ctx.OS, ctx.Tracer, "/chk.h5", Options{DataBase: 64 << 10})
		if err != nil {
			return err
		}
		for i := 0; i < 12; i++ {
			d, err := f.CreateDataset(dsname(i), 16*64)
			if err != nil {
				return err
			}
			if err := d.Write(int64(ctx.Rank)*64, make([]byte, 64)); err != nil {
				return err
			}
			if err := f.Flush(); err != nil {
				return err
			}
		}
		return f.Close()
	})
	metaWriters := map[int32]bool{}
	for _, r := range posixWrites(res) {
		if r.Arg(2) < 64<<10 {
			metaWriters[r.Rank] = true
		}
	}
	// Roughly half the ranks (the paper observed ~30/64); demand > 1/4.
	if len(metaWriters) < 4 {
		t.Fatalf("metadata writes concentrated on %d ranks: %v", len(metaWriters), metaWriters)
	}
}

func dsname(i int) string { return string(rune('a'+i%26)) + "_var" }

func TestFlushEpochsCreateCrossRankRewrites(t *testing.T) {
	// Root-header rewrites across flush epochs must come from more than one
	// rank (WAW-D feedstock) and superblock rewrites from rank 0 only
	// (WAW-S feedstock).
	res := run(t, 16, 4, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.MPI, ctx.OS, ctx.Tracer, "/f.h5", Options{DataBase: 64 << 10})
		if err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			d, err := f.CreateDataset(dsname(i), 16*32)
			if err != nil {
				return err
			}
			if err := d.Write(int64(ctx.Rank)*32, make([]byte, 32)); err != nil {
				return err
			}
			if err := f.Flush(); err != nil {
				return err
			}
		}
		return f.Close()
	})
	rootWriters := map[int32]int{}
	sbWrites := 0
	for _, r := range posixWrites(res) {
		switch r.Arg(2) {
		case int64(RootHeaderOff):
			rootWriters[r.Rank]++
		case 0:
			sbWrites++
			if r.Rank != 0 {
				t.Fatalf("superblock written by rank %d", r.Rank)
			}
		}
	}
	if len(rootWriters) < 2 {
		t.Fatalf("root header written by %v; need >=2 distinct ranks for WAW-D", rootWriters)
	}
	if sbWrites < 2 {
		t.Fatalf("superblock written %d times; need repeated rank-0 writes for WAW-S", sbWrites)
	}
}

func TestHDF5LayerRecords(t *testing.T) {
	res := run(t, 2, 2, func(ctx *harness.Ctx) error {
		f, err := Create(ctx.MPI, ctx.OS, ctx.Tracer, "/r.h5", Options{})
		if err != nil {
			return err
		}
		d, err := f.CreateDataset("v", 2*32)
		if err != nil {
			return err
		}
		d.Write(int64(ctx.Rank)*32, make([]byte, 32))
		f.WriteAttribute("time", 8)
		f.Flush()
		d.Close()
		return f.Close()
	})
	seen := map[recorder.Func]bool{}
	for _, r := range res.Trace.Filter(func(r *recorder.Record) bool { return r.Layer == recorder.LayerHDF5 }) {
		seen[r.Func] = true
	}
	for _, fn := range []recorder.Func{
		recorder.FuncH5Fcreate, recorder.FuncH5Dcreate, recorder.FuncH5Dwrite,
		recorder.FuncH5Awrite, recorder.FuncH5Fflush, recorder.FuncH5Dclose,
		recorder.FuncH5Fclose,
	} {
		if !seen[fn] {
			t.Errorf("missing HDF5 record %v", fn)
		}
	}
}

func TestMetadataRegionOverflowRejected(t *testing.T) {
	run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := CreateSerial(ctx.OS, ctx.Tracer, "/o.h5", Options{DataBase: 1024})
		if err != nil {
			return err
		}
		if _, err := f.CreateDataset("a", 64); err != nil {
			return err
		}
		if _, err := f.CreateDataset("b", 64); err == nil {
			ctx.Failf("metadata overflow not detected")
		}
		f.Close()
		return ctx.Failures()
	})
}

func TestDoubleCloseAndDuplicateDataset(t *testing.T) {
	run(t, 1, 1, func(ctx *harness.Ctx) error {
		f, err := CreateSerial(ctx.OS, ctx.Tracer, "/d.h5", Options{})
		if err != nil {
			return err
		}
		if _, err := f.CreateDataset("x", 64); err != nil {
			return err
		}
		if _, err := f.CreateDataset("x", 64); err == nil {
			ctx.Failf("duplicate dataset accepted")
		}
		if _, err := f.OpenDataset("nope"); err == nil {
			ctx.Failf("open of missing dataset accepted")
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := f.Close(); err == nil {
			ctx.Failf("double close accepted")
		}
		return ctx.Failures()
	})
}

func TestMetaBytesDeterministic(t *testing.T) {
	a := metaBytes("/f.h5", 96, 272)
	b := metaBytes("/f.h5", 96, 272)
	if !bytes.Equal(a, b) {
		t.Fatal("metadata content must be deterministic (any owner writes identical bytes)")
	}
	c := metaBytes("/f.h5", 368, 272)
	if bytes.Equal(a, c) {
		t.Fatal("different entries should differ")
	}
}
