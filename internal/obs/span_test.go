package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestTracerDisabledByDefault: a fresh registry collects no spans until the
// tracer is explicitly enabled.
func TestTracerDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	r.Tracer().Start("a", "b").End()
	if n := r.Tracer().Len(); n != 0 {
		t.Errorf("disabled tracer collected %d spans", n)
	}
}

// TestChromeTraceExport checks the exported document parses as the Chrome
// trace_event format: a traceEvents array of complete ("X") events with
// microsecond timestamps, parent links in args, and lanes as tids.
func TestChromeTraceExport(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)

	root := tr.Start("analyze", "core")
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := root.Child("worker").OnLane(w + 1)
			sp.Child("task").End()
			sp.End()
		}(w)
	}
	wg.Wait()
	root.End()

	if got, want := tr.Len(), 7; got != want {
		t.Fatalf("collected %d spans, want %d", got, want)
	}
	b, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export is not valid trace_event JSON: %v\n%s", err, b)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("exported %d events, want 7", len(doc.TraceEvents))
	}
	lanes := map[int]bool{}
	children := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q: negative ts/dur (%f, %f)", ev.Name, ev.TS, ev.Dur)
		}
		lanes[ev.TID] = true
		if ev.Args["parent"] != nil {
			children++
		}
	}
	for w := 1; w <= 3; w++ {
		if !lanes[w] {
			t.Errorf("lane %d missing from export", w)
		}
	}
	if children != 6 {
		t.Errorf("%d events carry parent links, want 6", children)
	}
}

// TestTraceLinkConcurrent exercises the WAL hand-off shape under -race:
// producer goroutines start traces and pass (trace, parent) through a
// channel to a drainer goroutine, which continues each chain with linked
// spans. Every span of a chain must share the producer's trace ID, and the
// Chrome export must carry the trace in args.
func TestTraceLinkConcurrent(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	tr.SetEnabled(true)

	type handoff struct{ trace, parent uint64 }
	const producers, perProducer = 4, 50
	ch := make(chan handoff, producers*perProducer)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				sp := tr.StartTrace("wal.write", "test").OnLane(p)
				sp.Child("wal.append").End()
				ch <- handoff{sp.TraceID(), sp.ID()}
				sp.End()
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { // drainer: continue each chain on another goroutine
		defer close(done)
		for h := range ch {
			pub := tr.StartLinked("drain.publish", "test", h.trace, h.parent)
			tr.StartLinked("visible", "test", h.trace, pub.ID()).End()
			pub.End()
		}
	}()
	wg.Wait()
	close(ch)
	<-done

	spans := tr.Spans()
	if got, want := len(spans), producers*perProducer*4; got != want {
		t.Fatalf("collected %d spans, want %d", got, want)
	}
	byTrace := map[uint64][]SpanInfo{}
	for _, s := range spans {
		if s.Trace == 0 {
			t.Fatalf("span %q has no trace ID", s.Name)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	if len(byTrace) != producers*perProducer {
		t.Fatalf("got %d distinct traces, want %d", len(byTrace), producers*perProducer)
	}
	for trace, chain := range byTrace {
		if len(chain) != 4 {
			t.Fatalf("trace %#x has %d spans, want 4", trace, len(chain))
		}
		names := map[string]SpanInfo{}
		for _, s := range chain {
			names[s.Name] = s
		}
		root := names["wal.write"]
		if root.ID != trace {
			t.Errorf("trace %#x: root span id %d != trace", trace, root.ID)
		}
		if names["wal.append"].Parent != root.ID {
			t.Errorf("trace %#x: append not parented to root", trace)
		}
		if names["drain.publish"].Parent != root.ID {
			t.Errorf("trace %#x: publish not linked to root", trace)
		}
		if names["visible"].Parent != names["drain.publish"].ID {
			t.Errorf("trace %#x: visible not parented to publish", trace)
		}
	}

	b, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export is not valid trace_event JSON: %v", err)
	}
	traced := 0
	for _, ev := range doc.TraceEvents {
		if ev.Args["trace"] != nil {
			traced++
		}
	}
	if traced != len(spans) {
		t.Errorf("%d exported events carry a trace arg, want %d", traced, len(spans))
	}
}

// TestTraceNilAndDisabledFastPaths: every trace-link call is safe and inert
// on a nil tracer, a disabled tracer, and the nil spans they return.
func TestTraceNilAndDisabledFastPaths(t *testing.T) {
	var nilTr *Tracer
	if sp := nilTr.StartLinked("x", "y", 1, 2); sp != nil {
		t.Error("nil tracer StartLinked returned a span")
	}
	if sp := nilTr.Start("x", "y"); sp != nil {
		t.Error("nil tracer Start returned a span")
	}

	r := NewRegistry()
	tr := r.Tracer() // never enabled
	sp := tr.StartTrace("x", "y")
	if sp != nil {
		t.Fatal("disabled tracer StartTrace returned a span")
	}
	// The values a disabled site stores and later hands to StartLinked.
	if sp.TraceID() != 0 || sp.ID() != 0 {
		t.Error("nil span reports nonzero identity")
	}
	sp.Child("c").End()
	sp.OnLane(3).End()
	if got := tr.StartLinked("x", "y", sp.TraceID(), sp.ID()); got != nil {
		t.Error("disabled tracer StartLinked returned a span")
	}
	if tr.Len() != 0 {
		t.Errorf("disabled tracer collected %d spans", tr.Len())
	}
}

// TestChromeTraceExportEmpty: an empty tracer still produces a valid
// document (the CI step runs the validator unconditionally).
func TestChromeTraceExportEmpty(t *testing.T) {
	var tr Tracer
	b, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v\n%s", err, b)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Fatalf("traceEvents is not an array: %s", b)
	}
}
