package consistency

import (
	"strings"
	"testing"

	"repro/internal/pfs"
)

// hist builds hand-crafted histories so each predicate clause can be
// driven in isolation, independent of the pfs implementation.
type hist struct {
	seq uint64
	evs []pfs.HistoryEvent
}

func (h *hist) add(ev pfs.HistoryEvent) *hist {
	h.seq++
	ev.Seq = h.seq
	if ev.Path == "" {
		ev.Path = "/f"
	}
	h.evs = append(h.evs, ev)
	return h
}

func (h *hist) open(rank int, handle uint64, flags int, now uint64) *hist {
	return h.add(pfs.HistoryEvent{Kind: pfs.EvOpen, Rank: rank, Handle: handle, Flags: flags, Now: now})
}
func (h *hist) write(rank int, handle uint64, off int64, data string, now uint64) *hist {
	return h.add(pfs.HistoryEvent{Kind: pfs.EvWrite, Rank: rank, Handle: handle, Off: off,
		Len: int64(len(data)), Data: []byte(data), Now: now})
}

// read records a read that requested n bytes and returned got.
func (h *hist) read(rank int, handle uint64, off, n int64, got string, now uint64) *hist {
	return h.add(pfs.HistoryEvent{Kind: pfs.EvRead, Rank: rank, Handle: handle, Off: off,
		Len: n, Data: []byte(got), Now: now})
}
func (h *hist) commit(rank int, handle uint64, now uint64) *hist {
	return h.add(pfs.HistoryEvent{Kind: pfs.EvCommit, Rank: rank, Handle: handle, Now: now})
}
func (h *hist) close(rank int, handle uint64, now uint64) *hist {
	return h.add(pfs.HistoryEvent{Kind: pfs.EvClose, Rank: rank, Handle: handle, Now: now})
}
func (h *hist) laminate(rank int, handle uint64, now uint64) *hist {
	return h.add(pfs.HistoryEvent{Kind: pfs.EvLaminate, Rank: rank, Handle: handle, Now: now})
}
func (h *hist) truncate(rank int, handle uint64, length int64) *hist {
	return h.add(pfs.HistoryEvent{Kind: pfs.EvTruncate, Rank: rank, Handle: handle, Off: length})
}

func mustAccept(t *testing.T, model pfs.Semantics, h *hist, opt Options) Result {
	t.Helper()
	res := Check(model, h.evs, opt)
	if !res.OK() {
		t.Fatalf("%v spec rejected a conforming history: %v", model, res.Violation)
	}
	return res
}

func mustReject(t *testing.T, model pfs.Semantics, h *hist, opt Options, clause string) *Violation {
	t.Helper()
	res := Check(model, h.evs, opt)
	if res.OK() {
		t.Fatalf("%v spec accepted a violating history (want clause %s)", model, clause)
	}
	if res.Violation.Clause != clause {
		t.Fatalf("%v spec rejected with clause %s, want %s (%v)",
			model, res.Violation.Clause, clause, res.Violation)
	}
	if res.Violation.Read.Kind != pfs.EvRead {
		t.Fatalf("violation anchored to %v, want a read", res.Violation.Read.Kind)
	}
	return res.Violation
}

func TestCheckerStrongAccepts(t *testing.T) {
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		open(1, 2, pfs.ORdwr, 20).
		write(0, 1, 0, "abc", 30).
		read(1, 2, 0, 3, "abc", 40).
		read(1, 2, 1, 64, "bc", 50). // length clamped to visible EOF
		read(1, 2, 100, 8, "", 60)   // past EOF: empty
	res := mustAccept(t, pfs.Strong, h, Options{})
	if res.Reads != 3 || res.Events != 6 {
		t.Fatalf("Reads=%d Events=%d, want 3 and 6", res.Reads, res.Events)
	}
}

func TestCheckerStrongRejectsStaleValue(t *testing.T) {
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		open(1, 2, pfs.ORdwr, 20).
		write(0, 1, 0, "aaa", 30).
		write(0, 1, 0, "bbb", 40).
		read(1, 2, 0, 3, "aaa", 50) // lost update: must see the newest write
	v := mustReject(t, pfs.Strong, h, Options{}, "strong-read-latest")
	if v.Write == nil || v.Write.Seq != 4 {
		t.Fatalf("counterexample write = %+v, want the second write (seq 4)", v.Write)
	}
	if v.Offset != 0 {
		t.Fatalf("violating byte offset = %d, want 0", v.Offset)
	}
}

func TestCheckerStrongRejectsShortRead(t *testing.T) {
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		open(1, 2, pfs.ORdwr, 20).
		write(0, 1, 0, "abc", 30).
		read(1, 2, 0, 3, "", 40) // hidden write: strong mandates visibility
	v := mustReject(t, pfs.Strong, h, Options{}, "strong-read-latest")
	if v.Write == nil || v.Write.Kind != pfs.EvWrite {
		t.Fatalf("counterexample should name the hidden write, got %+v", v.Write)
	}
	if v.Offset != -1 {
		t.Fatalf("length violations carry offset -1, got %d", v.Offset)
	}
}

func TestCheckerCommit(t *testing.T) {
	// Before the commit the write is buffered: an empty read is correct,
	// observing the buffer is an isolation violation.
	pre := func() *hist {
		return new(hist).
			open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
			open(1, 2, pfs.ORdwr, 20).
			write(0, 1, 0, "abc", 30)
	}
	mustAccept(t, pfs.Commit, pre().read(1, 2, 0, 3, "", 40), Options{})
	mustReject(t, pfs.Commit, pre().read(1, 2, 0, 3, "abc", 40), Options{}, "commit-isolation")
	// After the commit the write must be visible.
	mustAccept(t, pfs.Commit, pre().commit(0, 1, 40).read(1, 2, 0, 3, "abc", 50), Options{})
	mustReject(t, pfs.Commit, pre().commit(0, 1, 40).read(1, 2, 0, 3, "", 50),
		Options{}, "commit-visibility")
	// A dropped commit (recorded as failed) publishes nothing.
	dropped := pre()
	dropped.add(pfs.HistoryEvent{Kind: pfs.EvCommit, Rank: 0, Handle: 1, Now: 40,
		Err: "fault: dropped commit"})
	mustAccept(t, pfs.Commit, dropped.read(1, 2, 0, 3, "", 50), Options{})
}

func TestCheckerCommitIsolationNamesLeakedWrite(t *testing.T) {
	// Rank 1 owns published data; rank 0's uncommitted write leaks into a
	// read over the same range — the per-byte path must name the leaked
	// write, not just the length bound.
	h := new(hist).
		open(1, 2, pfs.OCreat|pfs.ORdwr, 10).
		write(1, 2, 0, "zzz", 20).
		commit(1, 2, 30).
		open(0, 1, pfs.ORdwr, 40).
		write(0, 1, 0, "abc", 50).
		read(1, 2, 0, 3, "abc", 60)
	v := mustReject(t, pfs.Commit, h, Options{}, "commit-isolation")
	if v.Write == nil || v.Write.Rank != 0 || v.Write.Kind != pfs.EvWrite {
		t.Fatalf("counterexample should name rank 0's uncommitted write, got %+v", v.Write)
	}
}

func TestCheckerSession(t *testing.T) {
	// Rank 1 opens before rank 0's close: the writes published by that
	// close are outside rank 1's session snapshot.
	pre := func() *hist {
		return new(hist).
			open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
			open(1, 2, pfs.ORdwr, 20).
			write(0, 1, 0, "abc", 30).
			close(0, 1, 40)
	}
	mustAccept(t, pfs.Session, pre().read(1, 2, 0, 3, "", 50), Options{})
	mustReject(t, pfs.Session, pre().read(1, 2, 0, 3, "abc", 50), Options{}, "session-isolation")
	// After reopening (a fresh session) the close-to-open discipline makes
	// the data mandatory.
	reopened := func() *hist { return pre().close(1, 2, 50).open(1, 3, pfs.ORdwr, 60) }
	mustAccept(t, pfs.Session, reopened().read(1, 3, 0, 3, "abc", 70), Options{})
	mustReject(t, pfs.Session, reopened().read(1, 3, 0, 3, "", 70), Options{}, "session-visibility")
}

func TestCheckerEventual(t *testing.T) {
	opt := Options{EventualDelayNS: 100}
	pre := func() *hist {
		return new(hist).
			open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
			open(1, 2, pfs.ORdwr, 10).
			write(0, 1, 0, "abc", 20)
	}
	// Within the staleness bound both views are legal; past it the write
	// is mandatory.
	mustAccept(t, pfs.Eventual, pre().read(1, 2, 0, 3, "", 50), opt)
	mustAccept(t, pfs.Eventual, pre().read(1, 2, 0, 3, "abc", 50), opt)
	mustReject(t, pfs.Eventual, pre().read(1, 2, 0, 3, "", 200), opt, "eventual-bounded-staleness")
	// Own writes are visible immediately (per-process ordering).
	mustReject(t, pfs.Eventual, pre().read(0, 1, 0, 3, "", 30), opt, "eventual-bounded-staleness")
	// Early propagation may expose either of two remote writes, but never
	// a value nobody wrote.
	two := pre().write(0, 1, 0, "xyz", 30)
	mustAccept(t, pfs.Eventual, two.read(1, 2, 0, 3, "abc", 50), opt)
	mustAccept(t, pfs.Eventual, pre().write(0, 1, 0, "xyz", 30).read(1, 2, 0, 3, "xyz", 50), opt)
	mustReject(t, pfs.Eventual, pre().write(0, 1, 0, "xyz", 30).read(1, 2, 0, 3, "qqq", 50),
		opt, "unexplained-value")
}

func TestCheckerReadYourWrites(t *testing.T) {
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		write(0, 1, 0, "abc", 20).
		read(0, 1, 0, 3, "abz", 30) // own buffered write misread
	v := mustReject(t, pfs.Commit, h, Options{}, "po-read-your-writes")
	if v.Offset != 2 {
		t.Fatalf("violating byte = %d, want 2", v.Offset)
	}
	if v.Write == nil || v.Write.Kind != pfs.EvWrite {
		t.Fatalf("counterexample should name the buffered write, got %+v", v.Write)
	}
}

func TestCheckerUnexplainedValue(t *testing.T) {
	// A hole inside the visible size must read as zeros.
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		write(0, 1, 10, "abc", 20).
		read(0, 1, 0, 5, "qqqqq", 30)
	v := mustReject(t, pfs.Strong, h, Options{}, "unexplained-value")
	if v.Offset != 0 {
		t.Fatalf("violating byte = %d, want 0", v.Offset)
	}
}

func TestCheckerMalformedHistory(t *testing.T) {
	h := new(hist).read(1, 99, 0, 3, "", 10)
	res := Check(pfs.Strong, h.evs, Options{})
	if res.OK() || res.Violation.Clause != "history-malformed" {
		t.Fatalf("read without open should be malformed, got %v", res.Violation)
	}
}

func TestCheckerSkipsFailedOps(t *testing.T) {
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10)
	h.add(pfs.HistoryEvent{Kind: pfs.EvWrite, Rank: 0, Handle: 1, Off: 0, Len: 3,
		Now: 20, Err: "pfs: transient I/O error (retries exhausted)"})
	mustAccept(t, pfs.Strong, h.read(0, 1, 0, 3, "", 30), Options{})
}

func TestCheckerTruncate(t *testing.T) {
	pre := func() *hist {
		return new(hist).
			open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
			open(1, 2, pfs.ORdwr, 20).
			write(0, 1, 0, "abcdef", 30).
			truncate(1, 2, 3) // truncation is global, any rank's handle
	}
	mustAccept(t, pfs.Strong, pre().read(1, 2, 0, 6, "abc", 40), Options{})
	// Data past the cut must be gone.
	mustReject(t, pfs.Strong, pre().read(1, 2, 0, 6, "abcdef", 40), Options{}, "strong-read-latest")
}

func TestCheckerTruncatePreservesRemotePending(t *testing.T) {
	// Under commit semantics, truncation clips only the caller's buffer:
	// rank 0's pending write survives in full and republishes past the cut.
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		open(1, 2, pfs.ORdwr, 20).
		write(0, 1, 0, "abcdef", 30).
		truncate(1, 2, 2).
		commit(0, 1, 40).
		read(1, 2, 0, 6, "abcdef", 50)
	mustAccept(t, pfs.Commit, h, Options{})
}

func TestCheckerLaminateGloballyVisible(t *testing.T) {
	// Session model, reader opened before the writer laminated: lamination
	// overrides the session snapshot.
	pre := func() *hist {
		return new(hist).
			open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
			open(1, 2, pfs.ORdwr, 20).
			write(0, 1, 0, "abc", 30).
			laminate(0, 1, 40)
	}
	mustAccept(t, pfs.Session, pre().read(1, 2, 0, 3, "abc", 50), Options{})
	mustReject(t, pfs.Session, pre().read(1, 2, 0, 3, "", 50), Options{}, "session-visibility")
}

func TestCheckerOTruncOpen(t *testing.T) {
	// An O_TRUNC open clears published data and the opener's own buffer.
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		write(0, 1, 0, "abc", 20).
		commit(0, 1, 30).
		open(1, 2, pfs.ORdwr|pfs.OTrunc, 40)
	mustAccept(t, pfs.Commit, h.read(1, 2, 0, 3, "", 50), Options{})
	h2 := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		write(0, 1, 0, "abc", 20).
		commit(0, 1, 30).
		open(1, 2, pfs.ORdwr|pfs.OTrunc, 40).
		read(1, 2, 0, 3, "abc", 50)
	// Observing truncated-away data overruns the admissible length bound —
	// an isolation violation, not a missed write.
	mustReject(t, pfs.Commit, h2, Options{}, "commit-isolation")
}

func TestViolationString(t *testing.T) {
	h := new(hist).
		open(0, 1, pfs.OCreat|pfs.ORdwr, 10).
		open(1, 2, pfs.ORdwr, 20).
		write(0, 1, 0, "aaa", 30).
		write(0, 1, 0, "bbb", 40).
		read(1, 2, 0, 3, "aaa", 50)
	res := Check(pfs.Strong, h.evs, Options{})
	s := res.Violation.String()
	for _, want := range []string{"strong-read-latest", "read #5", "rank 1", "at byte 0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Violation.String() = %q, missing %q", s, want)
		}
	}
	if (*Violation)(nil).String() != "<accepted>" {
		t.Fatalf("nil violation should render <accepted>")
	}
}

// TestCheckLogEndToEnd exercises the real recording pipeline: a pfs run
// with a Log attached, checked by CheckLog.
func TestCheckLogEndToEnd(t *testing.T) {
	fs := pfs.New(pfs.Options{Semantics: pfs.Commit})
	log := NewLog()
	fs.SetHistoryRecorder(log)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw, _, err := w.Open("/f", pfs.OCreat|pfs.OWronly, 10)
	if err != nil {
		t.Fatal(err)
	}
	hr, _, err := r.Open("/f", pfs.ORdonly, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Write(0, []byte("hello"), 30); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Commit(40); err != nil {
		t.Fatal(err)
	}
	if _, _, err := hr.Read(0, 5, 50); err != nil {
		t.Fatal(err)
	}
	if log.Len() != 5 {
		t.Fatalf("recorded %d events, want 5", log.Len())
	}
	res := CheckLog(pfs.Commit, log, Options{})
	if !res.OK() {
		t.Fatalf("conforming pfs run rejected: %v", res.Violation)
	}
	if res.Reads != 1 || res.Bytes != 5 {
		t.Fatalf("Reads=%d Bytes=%d, want 1 and 5", res.Reads, res.Bytes)
	}
	log.Reset()
	if log.Len() != 0 {
		t.Fatalf("Reset left %d events", log.Len())
	}
}
