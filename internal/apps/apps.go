// Package apps provides workload emulators for the 17 HPC applications and
// benchmarks the paper traces (Table 5), in the 24 application × I/O-library
// configurations its results cover. Each emulator regenerates the I/O call
// stream the paper documents for that application — file-per-process
// checkpoints, HDF5 metadata flushes, NetCDF header rewrites, ADIOS index
// overwrites, collective two-phase writes — at a configurable, scaled-down
// size, so the analysis in internal/core reproduces Table 3, Table 4 and
// Figures 1–3 from the resulting traces.
package apps

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/recorder"
	"repro/internal/wal"
)

// Reduction-op aliases so app bodies read like MPI code.
const (
	mpiOpSum = mpi.OpSum
	mpiOpMax = mpi.OpMax
)

// Params scales an emulated run.
type Params struct {
	// Steps is the number of simulated time steps.
	Steps int
	// CheckpointEvery controls how often checkpoint/dump phases run.
	CheckpointEvery int
	// Block is the per-rank payload in bytes per variable/dataset. It is
	// kept 512-aligned by the runner.
	Block int64
	// Verify makes applications check the bytes they read against what the
	// protocol says must be there, recording failures on the Ctx. It also
	// enables HDF5 metadata read-verification (see hdf5.Options), which
	// changes the traced conflict signature — leave it off for table/figure
	// reproduction, on for PFS-correctness experiments.
	Verify bool
}

func (p Params) withDefaults() Params {
	if p.Steps == 0 {
		p.Steps = 10
	}
	if p.CheckpointEvery == 0 {
		p.CheckpointEvery = 2
	}
	if p.Block == 0 {
		p.Block = 2048
	}
	p.Block = (p.Block + 511) &^ 511
	return p
}

// Config is one application × library configuration from the study.
type Config struct {
	App         string
	Library     string
	Variant     string
	Description string // Table 5 configuration description

	// Setup stages pre-existing data (input datasets, restart files) on the
	// file system before the traced run; it executes in a separate,
	// untraced run on the same FS.
	Setup func(ctx *harness.Ctx, p Params) error
	// Run is the traced application body.
	Run func(ctx *harness.Ctx, p Params) error
}

// Name returns the configuration's display name as used in the paper's
// tables (e.g. "FLASH-fbs", "LAMMPS-ADIOS", "GTC").
func (c *Config) Name() string {
	return recorder.Meta{App: c.App, Library: c.Library, Variant: c.Variant}.ConfigName()
}

// Meta returns the trace metadata for this configuration.
func (c *Config) Meta(p Params) recorder.Meta {
	return recorder.Meta{App: c.App, Library: c.Library, Variant: c.Variant, Steps: p.Steps}
}

// Options configures an emulated run.
type Options struct {
	Ranks     int
	PPN       int
	Seed      uint64
	Semantics pfs.Semantics
	// FS optionally supplies a pre-built file system (e.g. one with the
	// BurstFS UnorderedSameProcess quirk); when nil one is created with
	// the given Semantics.
	FS *pfs.FileSystem
	// Injector, if set, registers a fault injector on the file system for
	// the traced run only — the untraced Setup phase stages its data
	// fault-free, so every injected fault lands in the application's own
	// I/O protocol (see internal/faults).
	Injector pfs.FaultInjector
	// WAL, if set, fronts every rank's pfs client with a host-side
	// write-ahead log for the traced run only — Setup stages its data
	// straight through, mirroring how Injector is scoped.
	WAL    *wal.Options
	Params Params
}

// Execute stages and runs a configuration, returning the traced result.
func Execute(cfg *Config, opts Options) (*harness.Result, error) {
	p := opts.Params.withDefaults()
	hc := harness.Config{
		Ranks:     opts.Ranks,
		PPN:       opts.PPN,
		Seed:      opts.Seed,
		Semantics: opts.Semantics,
		FS:        opts.FS,
	}
	if cfg.Setup != nil {
		if hc.FS == nil {
			hc.FS = pfs.New(pfs.Options{Semantics: opts.Semantics})
		}
		setupRes, err := harness.Run(hc, recorder.Meta{App: cfg.App, Variant: "setup"},
			func(ctx *harness.Ctx) error { return cfg.Setup(ctx, p) })
		if err != nil {
			return nil, fmt.Errorf("apps: %s setup: %w", cfg.Name(), err)
		}
		if err := setupRes.Err(); err != nil {
			return nil, fmt.Errorf("apps: %s setup: %w", cfg.Name(), err)
		}
	}
	hc.Injector = opts.Injector
	hc.WAL = opts.WAL
	res, err := harness.Run(hc, cfg.Meta(p), func(ctx *harness.Ctx) error {
		return cfg.Run(ctx, p)
	})
	if err != nil {
		return nil, fmt.Errorf("apps: %s: %w", cfg.Name(), err)
	}
	return res, nil
}

// Registry returns every configuration of the study, in Table 5 order.
func Registry() []*Config {
	return []*Config{
		flashConfig(true),
		flashConfig(false),
		nek5000Config(),
		qmcpackConfig(),
		vaspConfig(),
		lbannConfig(),
		lammpsConfig("ADIOS"),
		lammpsConfig("NetCDF"),
		lammpsConfig("HDF5"),
		lammpsConfig("MPI-IO"),
		lammpsConfig("POSIX"),
		enzoConfig(),
		nwchemConfig(),
		paradisConfig("HDF5"),
		paradisConfig("POSIX"),
		chomboConfig(),
		gtcConfig(),
		gamessConfig(),
		milcConfig(false),
		milcConfig(true),
		macsioConfig(),
		pf3dConfig(),
		haccConfig("MPI-IO"),
		haccConfig("POSIX"),
		vpicConfig(),
	}
}

// Lookup finds a configuration by display name.
func Lookup(name string) (*Config, bool) {
	for _, c := range Registry() {
		if c.Name() == name {
			return c, true
		}
	}
	return nil, false
}

// Names lists every configuration name in registry order.
func Names() []string {
	regs := Registry()
	out := make([]string, len(regs))
	for i, c := range regs {
		out[i] = c.Name()
	}
	return out
}

// fill produces the deterministic payload for (tag, rank, step): any reader
// that knows the protocol can verify what it reads.
func fill(tag string, rank, step int, n int64) []byte {
	h := uint64(1469598103934665603)
	for i := 0; i < len(tag); i++ {
		h = (h ^ uint64(tag[i])) * 1099511628211
	}
	h ^= uint64(rank)*0x9e3779b97f4a7c15 + uint64(step)*0xbf58476d1ce4e5b9
	b := make([]byte, n)
	for i := range b {
		h = h*6364136223846793005 + 1442695040888963407
		b[i] = byte(h >> 56)
	}
	return b
}

// checkFill verifies data against the fill pattern, recording a failure.
func checkFill(ctx *harness.Ctx, where, tag string, rank, step int, got []byte, want int64) {
	exp := fill(tag, rank, step, want)
	if int64(len(got)) != want {
		ctx.Failf("%s: short read %d/%d bytes", where, len(got), want)
		return
	}
	for i := range got {
		if got[i] != exp[i] {
			ctx.Failf("%s: stale/corrupt byte at %d (rank %d step %d)", where, i, rank, step)
			return
		}
	}
}

// readInput emulates the 1-1 configuration-input read every application
// performs at startup: rank 0 probes and reads the input deck, broadcasts
// it. Setup must have staged the file.
func readInput(ctx *harness.Ctx, path string) error {
	var buf []byte
	if ctx.Rank == 0 {
		if err := ctx.OS.Access(path); err != nil {
			return err
		}
		if _, err := ctx.OS.Stat(path); err != nil {
			return err
		}
		fd, err := ctx.OS.Open(path, recorder.ORdonly, 0)
		if err != nil {
			return err
		}
		buf, err = ctx.OS.Read(fd, 4096)
		if err != nil {
			return err
		}
		if err := ctx.OS.Close(fd); err != nil {
			return err
		}
	}
	ctx.MPI.Bcast(0, buf)
	return nil
}

// stageInput writes a small configuration file (used from Setup bodies).
func stageInput(ctx *harness.Ctx, path string, n int64) error {
	if ctx.Rank != 0 {
		return nil
	}
	fd, err := ctx.OS.Open(path, recorder.OCreat|recorder.OWronly|recorder.OTrunc, 0o644)
	if err != nil {
		return err
	}
	if _, err := ctx.OS.Write(fd, fill("input:"+path, 0, 0, n)); err != nil {
		return err
	}
	return ctx.OS.Close(fd)
}
