package wal

import (
	"testing"

	"repro/internal/consistency"
	"repro/internal/obs"
	"repro/internal/pfs"
)

// TestWALCausalTraceChain pins the tentpole guarantee: one WAL-routed write
// produces a linked span chain — wal.write (root, trace = its own id) with
// wal.append as a child on the application side, wal.drain.publish linked to
// the root from the drainer, and a pfs.visible marker parented to the
// publish — the pfs history event carries the same trace ID, and the
// per-model visibility_lag histogram sees a nonzero ack-to-visible
// observation.
func TestWALCausalTraceChain(t *testing.T) {
	tr := obs.Default().Tracer()
	before := tr.Len()
	tr.SetEnabled(true)
	t.Cleanup(func() { tr.SetEnabled(false) })
	lag := obs.Default().Histogram("pfs.visibility_lag.strong")
	lagCount, lagSum := lag.Count(), lag.Snapshot().Sum

	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	hist := consistency.NewLog()
	fs.SetHistoryRecorder(hist)
	l, err := Open(0, Options{Dir: t.TempDir(), NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	c := fs.NewClient(0, 0)
	h, _, err := l.Open(c, "/trace/chain", pfs.OCreat|pfs.ORdwr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write(h, 0, []byte("causal payload"), 20); err != nil {
		t.Fatal(err)
	}
	if err := l.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()[before:]
	byName := map[string]obs.SpanInfo{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["wal.write"]
	if !ok {
		t.Fatalf("no wal.write span collected (have %d spans)", len(spans))
	}
	if root.Trace == 0 || root.Trace != root.ID {
		t.Fatalf("wal.write is not a trace root: id=%d trace=%d", root.ID, root.Trace)
	}
	for name, wantParent := range map[string]uint64{
		"wal.append":        root.ID,
		"wal.drain.publish": root.ID,
	} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing from chain", name)
		}
		if s.Trace != root.Trace {
			t.Errorf("%s trace = %d, want %d", name, s.Trace, root.Trace)
		}
		if s.Parent != wantParent {
			t.Errorf("%s parent = %d, want %d", name, s.Parent, wantParent)
		}
	}
	vis, ok := byName["pfs.visible"]
	if !ok {
		t.Fatal("pfs.visible span missing from chain")
	}
	if vis.Trace != root.Trace {
		t.Errorf("pfs.visible trace = %d, want %d", vis.Trace, root.Trace)
	}
	if vis.Parent != byName["wal.drain.publish"].ID {
		t.Errorf("pfs.visible parent = %d, want the publish span %d",
			vis.Parent, byName["wal.drain.publish"].ID)
	}

	// The same trace ID is stamped on the pfs history event the drained
	// publish recorded, so a consistency verdict can name the write's chain.
	found := false
	for _, ev := range hist.Events() {
		if ev.Kind == pfs.EvWrite && ev.Trace == root.Trace {
			found = true
		}
	}
	if !found {
		t.Errorf("no EvWrite history event carries trace %d", root.Trace)
	}

	// Ack-to-visible lag: at least one new observation, strictly positive.
	if got := lag.Count(); got != lagCount+1 {
		t.Errorf("visibility_lag count = %d, want %d", got, lagCount+1)
	}
	if got := lag.Snapshot().Sum; got <= lagSum {
		t.Errorf("visibility_lag sum did not increase: %d -> %d", lagSum, got)
	}
}

// TestWALWriteThroughSkipsChain: a degraded (write-through) write must not
// fabricate a causal chain — no wal.drain.publish span and a zero Trace on
// its history event.
func TestWALWriteThroughSkipsChain(t *testing.T) {
	tr := obs.Default().Tracer()
	before := tr.Len()
	tr.SetEnabled(true)
	t.Cleanup(func() { tr.SetEnabled(false) })

	fs := pfs.New(pfs.Options{Semantics: pfs.Strong})
	hist := consistency.NewLog()
	fs.SetHistoryRecorder(hist)
	l := noDrainLog(t, Options{NoFsync: true})
	l.degraded = true // sticky write-through
	c := fs.NewClient(0, 0)
	h, _, err := l.Open(c, "/trace/through", pfs.OCreat|pfs.ORdwr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write(h, 0, []byte("direct"), 20); err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Spans()[before:] {
		if s.Name == "wal.drain.publish" || s.Name == "pfs.visible" {
			t.Errorf("write-through produced a %s span", s.Name)
		}
	}
	for _, ev := range hist.Events() {
		if ev.Kind == pfs.EvWrite && ev.Trace != 0 {
			t.Errorf("write-through history event carries trace %d", ev.Trace)
		}
	}
}
