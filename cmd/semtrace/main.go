// Command semtrace runs one emulated application configuration on the
// simulated I/O stack and writes its multi-level trace to a directory, the
// way the paper collects Recorder traces on a real system.
//
// Usage:
//
//	semtrace -app FLASH-nofbs -ranks 64 -ppn 8 -out trace/
//	semtrace -app FLASH-nofbs -out trace/ -format v1
//	semtrace -convert oldtrace/ -out newtrace/ -format columnar
//	semtrace -list
//
// Traces are written in the columnar format by default; -format v1 keeps
// the record-framed v1 format for old readers. -convert rewrites an
// existing trace directory (either format) into -format at -out.
package main

import (
	"flag"
	"fmt"
	"os"

	semfs "repro"
	"repro/internal/obs"
	"repro/internal/storage"

	// Live /metrics exporter behind the -serve-metrics flag.
	_ "repro/internal/obs/live"
)

func main() { os.Exit(run()) }

func run() (code int) {
	var (
		app       = flag.String("app", "", "application configuration name (see -list)")
		list      = flag.Bool("list", false, "list available application configurations")
		ranks     = flag.Int("ranks", 64, "number of MPI ranks")
		ppn       = flag.Int("ppn", 8, "processes per node")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		steps     = flag.Int("steps", 0, "time steps (0 = app default)")
		block     = flag.Int64("block", 0, "per-rank bytes per dataset (0 = default)")
		semantics = flag.String("semantics", "strong", "PFS consistency model: strong|commit|session|eventual")
		verify    = flag.Bool("verify", false, "verify read data (surfaces stale reads on weak PFSs)")
		out       = flag.String("out", "", "output trace directory (omit for a dry run)")
		format    = flag.String("format", "columnar", "on-disk trace format for -out: columnar|v1")
		convert   = flag.String("convert", "", "rewrite this existing trace directory into -format at -out instead of running an app")
		workers   = flag.Int("workers", 0, "parallel rank decode workers for -convert (0 = GOMAXPROCS)")
		spec      = flag.String("backend", "osdisk", "durable storage backend for -out traces: osdisk | objstore[:delay=D,root=DIR] | flaky[:...]")
		tele      obs.CLIFlags
	)
	tele.Register(flag.CommandLine)
	flag.Parse()
	if err := tele.Start(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "semtrace:", err)
		return 2
	}
	defer func() {
		if err := tele.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "semtrace:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *list {
		for _, name := range semfs.Applications() {
			desc, _ := semfs.Describe(name)
			fmt.Printf("%-20s %s\n", name, desc)
		}
		return 0
	}
	tf, err := semfs.ParseTraceFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtrace: -format:", err)
		return 2
	}
	if *convert != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "semtrace: -convert requires -out")
			return 2
		}
		backend, err := storage.ParseSpec(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semtrace: -backend:", err)
			return 2
		}
		backend = storage.NewRetry(backend, storage.RetryOptions{})
		tr, err := semfs.ConvertTraceOn(backend, *convert, *out, tf, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semtrace:", err)
			return 1
		}
		fmt.Printf("converted %s (%d records) to %s format at %s\n",
			*convert, tr.NumRecords(), tf, *out)
		return 0
	}
	if *app == "" {
		fmt.Fprintln(os.Stderr, "semtrace: -app is required (try -list)")
		return 2
	}
	sem, err := parseSemantics(*semantics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtrace:", err)
		return 2
	}
	res, err := semfs.Run(*app, semfs.RunOptions{
		Ranks: *ranks, PPN: *ppn, Seed: *seed,
		Steps: *steps, Block: *block,
		Semantics: sem, Verify: *verify,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "semtrace:", err)
		return 1
	}
	fmt.Printf("ran %s: %d ranks, %d trace records\n", *app, *ranks, res.Trace.NumRecords())
	for _, e := range res.RankErrors {
		fmt.Printf("  rank error: %v\n", e)
	}
	if *out != "" {
		backend, err := storage.ParseSpec(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "semtrace: -backend:", err)
			return 2
		}
		backend = storage.NewRetry(backend, storage.RetryOptions{})
		if err := semfs.SaveTraceFormatOn(backend, *out, res.Trace, tf); err != nil {
			fmt.Fprintln(os.Stderr, "semtrace:", err)
			return 1
		}
		fmt.Printf("trace written to %s (%s format)\n", *out, tf)
	}
	if len(res.RankErrors) > 0 {
		return 1
	}
	return 0
}

func parseSemantics(s string) (semfs.Semantics, error) {
	switch s {
	case "strong":
		return semfs.Strong, nil
	case "commit":
		return semfs.Commit, nil
	case "session":
		return semfs.Session, nil
	case "eventual":
		return semfs.Eventual, nil
	}
	return semfs.Strong, fmt.Errorf("unknown semantics %q", s)
}
