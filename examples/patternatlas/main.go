// Pattern atlas: run every application configuration of the study and print
// the Table 3 pattern matrix plus the Figure 1 access-pattern mixes — a
// one-command tour of what HPC I/O actually looks like to a PFS.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	ranks := flag.Int("ranks", 32, "ranks per run")
	ppn := flag.Int("ppn", 4, "processes per node")
	flag.Parse()

	fmt.Printf("running all 25 configurations at %d ranks (this simulates ~%d processes of I/O)...\n\n",
		*ranks, 25**ranks)
	results, err := experiments.RunAll(experiments.Scale{Ranks: *ranks, PPN: *ppn, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.Table3(results))
	text, _ := experiments.Figure1(results)
	fmt.Println(text)
	fmt.Println(experiments.VerdictsReport(results))
}
