package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/pfs"
	"repro/internal/storage"
)

// RecoverDir salvages every per-rank log file under dir on the local OS
// disk. See RecoverDirOn.
func RecoverDir(dir string) (map[int][]Record, map[int]RecoverStats, error) {
	return RecoverDirOn(storage.OS(), dir)
}

// RecoverDirOn salvages every per-rank log file under dir on backend b. The
// returned records are, per rank, every write that was ever acknowledged
// (logs are append-only and never truncated while live, so drained records
// remain — replaying one is an idempotent same-bytes overwrite). A torn
// tail on any file is a write that was never acknowledged; it is dropped
// and counted. A zero-length log file is a rank that opened its log but was
// killed before the first acked append: it recovers as an explicit empty
// record list, distinct from a rank with no log file at all (no map entry).
//
// On an eventually-consistent backend, recovery first waits out the
// publish-visibility horizon (storage.Settle) so the List and the reads see
// every version a crashed writer managed to publish.
func RecoverDirOn(b storage.Backend, dir string) (map[int][]Record, map[int]RecoverStats, error) {
	storage.Settle(b)
	names, err := b.List(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(names)
	recs := make(map[int][]Record)
	stats := make(map[int]RecoverStats)
	for _, name := range names {
		var rank int
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		if _, err := fmt.Sscanf(name, "rank-%d.wal", &rank); err != nil {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := b.Open(path, storage.ORdonly, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		r, s, _, err := recoverRecords(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("wal: recovering %s: %w", path, err)
		}
		if r == nil {
			r = []Record{} // zero-length log: present but empty, not missing
		}
		recs[rank] = r
		stats[rank] = s
		recoverRecordsKept.Add(int64(s.Records))
		recoverDropped.Add(int64(s.Dropped))
		recoverTruncated.Add(s.TailBytes)
	}
	return recs, stats, nil
}

// Replay feeds recovered records back through the pfs data path: one client
// per rank, records in log order (= the order the application was acked
// in), each write carrying the simulated timestamp captured at ack time,
// then a commit+close per touched path so commit/session-model writes
// publish exactly as an uninterrupted run's final barrier would have
// published them. Ranks replay in ascending order, serially — the replay
// history is deterministic and, because per-rank program order is the log
// order, satisfies every model's formal spec.
func Replay(fs *pfs.FileSystem, recs map[int][]Record) error {
	ranks := make([]int, 0, len(recs))
	var maxNow uint64
	for r, rr := range recs {
		ranks = append(ranks, r)
		for _, rec := range rr {
			if rec.Now > maxNow {
				maxNow = rec.Now
			}
		}
	}
	sort.Ints(ranks)
	now := maxNow
	for _, r := range ranks {
		c := fs.NewClient(r, 0)
		handles := make(map[string]*pfs.Handle)
		var order []string
		for _, rec := range recs[r] {
			h, ok := handles[rec.Path]
			if !ok {
				var err error
				h, _, err = c.Open(rec.Path, pfs.OCreat|pfs.ORdwr, rec.Now)
				if err != nil {
					return fmt.Errorf("wal: replay rank %d open %s: %w", r, rec.Path, err)
				}
				handles[rec.Path] = h
				order = append(order, rec.Path)
			}
			if _, err := h.Write(rec.Off, rec.Data, rec.Now); err != nil {
				return fmt.Errorf("wal: replay rank %d %s+%d: %w", r, rec.Path, rec.Off, err)
			}
		}
		for _, path := range order {
			now += 10
			if _, err := handles[path].Commit(now); err != nil {
				return fmt.Errorf("wal: replay rank %d commit %s: %w", r, path, err)
			}
			now += 10
			if _, err := handles[path].Close(now); err != nil {
				return fmt.Errorf("wal: replay rank %d close %s: %w", r, path, err)
			}
		}
	}
	return nil
}
