package pfs

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Fault-injection hooks. A FaultInjector registered on a FileSystem
// intercepts every client data-path operation and may perturb it: crash the
// process, tear a write, drop a commit, delay or reorder a publish batch, or
// fail the operation transiently (subject to the client's RetryPolicy). The
// injector is consulted while fs.mu is held, so implementations must not
// call back into the file system; they should be cheap, deterministic
// functions of their own state (see internal/faults for the seed-driven
// implementation).

// OpKind identifies one interceptable client operation.
type OpKind int

const (
	OpWrite OpKind = iota
	OpRead
	OpCommit // fsync/fdatasync (Handle.Commit)
	OpClose
)

var opKindNames = [...]string{
	OpWrite:  "write",
	OpRead:   "read",
	OpCommit: "commit",
	OpClose:  "close",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "op#" + string(rune('0'+int(k)))
}

// OpInfo describes the operation being intercepted.
type OpInfo struct {
	Kind OpKind
	Rank int
	Path string
	Off  int64 // write/read offset
	Len  int64 // write/read length in bytes
	Now  uint64
	// Attempt is 0 for the first try and counts up across transient-error
	// retries of the same operation, letting the injector decide how many
	// attempts fail.
	Attempt int
}

// FaultAction tells the client how to perturb the intercepted operation. The
// zero value leaves the operation untouched.
type FaultAction struct {
	// CrashBefore kills the process before the operation takes effect:
	// pending writes are lost and the call returns ErrCrashed.
	CrashBefore bool
	// CrashAfter lets the operation take effect server-side, then kills the
	// process; the call returns ErrCrashed (the process never observed the
	// completion).
	CrashAfter bool
	// Torn shortens a write to TornKeep bytes (a torn/partial write: the
	// tail of the payload never reaches the servers).
	Torn     bool
	TornKeep int64
	// DropCommit makes a commit a silent no-op: the cost is paid but pending
	// writes stay pending (a lost fsync).
	DropCommit bool
	// PublishDelay adds nanoseconds to the publish time of extents published
	// by this operation — a slow data-server ingest. Visibility is affected
	// only under time-based (eventual) semantics; order-based models assign
	// publish sequence numbers at the same point regardless.
	PublishDelay uint64
	// ReorderPublish publishes this operation's pending batch in reverse
	// order — a server applying a commit's extents out of order. Only
	// observable when the batch self-overlaps (same-process conflicts).
	ReorderPublish bool
	// Transient fails the operation with a transient I/O error. The client
	// re-consults the injector with Attempt incremented, paying backoff per
	// its RetryPolicy, and surfaces ErrTransient once retries are exhausted.
	Transient bool
}

// FaultInjector intercepts client operations. Implementations must be safe
// for concurrent calls from distinct ranks and must not call back into the
// FileSystem (the client holds fs.mu across the call).
type FaultInjector interface {
	Intercept(op OpInfo) FaultAction
}

// SetInjector registers (or, with nil, removes) the fault injector consulted
// on every client data-path operation. Set it before the run starts; clients
// read it through the shared FileSystem.
func (fs *FileSystem) SetInjector(inj FaultInjector) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.injector = inj
}

// Injector returns the registered fault injector, or nil.
func (fs *FileSystem) Injector() FaultInjector {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injector
}

// RetryPolicy governs client-side handling of transient I/O errors (injected
// by a FaultInjector, or in a real deployment returned by overloaded
// servers): how many times an operation is retried and how the simulated
// backoff grows between attempts.
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first failure; < 0
	// disables retrying entirely (the first transient failure surfaces).
	MaxRetries int
	// BackoffNS is the simulated backoff before the first retry.
	BackoffNS uint64
	// Multiplier scales the backoff after each attempt; values <= 1 keep it
	// constant.
	Multiplier int
}

// KillPointFunc observes one intercepted data-path operation; see
// SetKillPointHook.
type KillPointFunc func(op OpInfo)

// killHook is the process-wide kill-point hook, read on every intercepted
// operation. It is atomic (not guarded by fs.mu) because it is installed by
// CLI startup or a crash harness while file systems may already exist.
var killHook atomic.Pointer[KillPointFunc]

// SetKillPointHook installs (or, with nil, removes) a process-wide hook that
// observes every intercepted client operation — before fault-injection
// dispatch and regardless of whether an injector is registered. It exists
// for crash-recovery harnesses: internal/faults installs a hook that
// SIGKILLs the process at the Nth matching operation, turning every
// write/read/commit/close into a potential real crash site. The hook runs
// under fs.mu and must not call back into the file system.
func SetKillPointHook(h KillPointFunc) {
	if h == nil {
		killHook.Store(nil)
		return
	}
	killHook.Store(&h)
}

// interceptLocked consults the injector, if any, tallying every requested
// perturbation on the obs registry (the central spot that covers any
// FaultInjector implementation). Callers hold fs.mu.
func (fs *FileSystem) interceptLocked(op OpInfo) FaultAction {
	if op.Attempt == 0 {
		obs.Flight().Record(flightOpBegin[op.Kind], int32(op.Rank), 0, op.Off, op.Len)
	}
	if h := killHook.Load(); h != nil {
		(*h)(op)
	}
	if fs.injector == nil {
		return FaultAction{}
	}
	faultIntercepts.Inc()
	act := fs.injector.Intercept(op)
	observeFaultAction(op, act)
	return act
}

// retryTransientLocked runs the retry loop for an operation whose first
// attempt the injector failed: it re-consults the injector with increasing
// Attempt numbers, accumulating exponential backoff into cost, until an
// attempt succeeds or the policy is exhausted. It returns the final action
// (whose Transient flag reports whether the operation ultimately failed),
// the added cost, and the number of retries performed. Callers hold fs.mu.
func (fs *FileSystem) retryTransientLocked(op OpInfo) (FaultAction, uint64, int) {
	rp := fs.opts.Retry
	backoff := rp.BackoffNS
	var extra uint64
	act := FaultAction{Transient: true}
	retries := 0
	for attempt := 1; attempt <= rp.MaxRetries; attempt++ {
		extra += backoff
		if rp.Multiplier > 1 {
			backoff *= uint64(rp.Multiplier)
		}
		retries++
		op.Attempt = attempt
		act = fs.interceptLocked(op)
		if !act.Transient {
			break
		}
	}
	fs.stats.Retries += int64(retries)
	retryCounter.Add(int64(retries))
	if act.Transient {
		fs.stats.TransientErrors++
		transientCounter.Inc()
	}
	return act, extra, retries
}
