package core

import (
	"fmt"
	"path"
	"sort"

	"repro/internal/recorder"
)

// Metadata-operation conflict detection — the extension the paper leaves as
// future work ("we plan to expand our conflicts detection algorithm to
// support metadata operations", §7). Several PFSs relax *metadata*
// visibility (GekkoFS's decoupled metadata, BatchFS's client-funded
// batches): a namespace mutation by one process may not be promptly visible
// to others. An application depends on cross-process metadata visibility
// whenever one process mutates the namespace (creates, removes or resizes
// an entry) and a different process subsequently performs an operation
// whose outcome depends on that mutation.

// MetaConflictKind classifies the mutation a dependent operation relies on.
type MetaConflictKind int

const (
	// CreateUse: one process creates a file or directory, another then
	// opens/stats it (or creates inside the new directory).
	CreateUse MetaConflictKind = iota
	// RemoveUse: one process unlinks an entry, another then operates on
	// the name.
	RemoveUse
	// ResizeUse: one process truncates an entry, another then queries or
	// opens it.
	ResizeUse
)

func (k MetaConflictKind) String() string {
	switch k {
	case CreateUse:
		return "create-use"
	case RemoveUse:
		return "remove-use"
	default:
		return "resize-use"
	}
}

// MetaOpRef identifies one metadata operation in a trace.
type MetaOpRef struct {
	Rank int32
	T    uint64
	TEnd uint64
	Func recorder.Func
	Path string
}

// MetaConflict is a cross-process (mutation, use) pair: under relaxed
// metadata semantics the use may not observe the mutation.
type MetaConflict struct {
	Kind     MetaConflictKind
	Path     string // the path whose visibility the use depends on
	Mutation MetaOpRef
	Use      MetaOpRef
}

func (c MetaConflict) String() string {
	return fmt.Sprintf("%s %s: %s@r%d t=%d -> %s@r%d t=%d",
		c.Kind, c.Path,
		c.Mutation.Func, c.Mutation.Rank, c.Mutation.T,
		c.Use.Func, c.Use.Rank, c.Use.T)
}

// MetaSignature summarizes which metadata-conflict classes a trace exhibits
// across processes (the Table 4 analogue for metadata).
type MetaSignature struct {
	CreateUse, RemoveUse, ResizeUse bool
}

// Any reports whether any class is present.
func (s MetaSignature) Any() bool { return s.CreateUse || s.RemoveUse || s.ResizeUse }

type metaEvent struct {
	ref      MetaOpRef
	mutation bool
	kind     MetaConflictKind // valid when mutation
}

// DetectMetadataConflicts finds cross-process metadata dependencies in a
// trace. For every dependent use it reports the most recent prior mutation
// of the path by a different process. A stat/access immediately followed by
// the same process's own creating open of the same path is an existence
// probe, not a dependency, and is skipped (the probe tolerates both
// outcomes).
func DetectMetadataConflicts(tr *recorder.Trace) []MetaConflict {
	events := make(map[string][]metaEvent)
	for _, rs := range tr.PerRank {
		addMetaEvents(events, metaEventsRank(rs))
	}

	var out []MetaConflict
	for p, evs := range events {
		out = append(out, metaConflictsForPath(p, evs)...)
	}
	sortMetaConflicts(out)
	return out
}

// metaEventsRank collects one rank's metadata events (with create-probe
// suppression applied): it remembers the last stat-family use per path and
// drops it if the next touch of the path by this rank is a creating open.
// Suppressed events are returned with an empty Path.
func metaEventsRank(rs []recorder.Record) []metaEvent {
	pendingStat := make(map[string]int) // path -> index into local list
	var local []metaEvent
	flushStat := func(p string) {
		delete(pendingStat, p)
	}
	for i := range rs {
		r := &rs[i]
		if r.Layer != recorder.LayerPOSIX {
			continue
		}
		ref := MetaOpRef{Rank: r.Rank, T: r.TStart, TEnd: r.TEnd, Func: r.Func, Path: r.Path}
		switch {
		case r.IsOpenOp():
			flags := int(r.Arg(0))
			if r.Arg(2) < 0 {
				continue // failed open is not a dependency carrier
			}
			if flags&recorder.OCreat != 0 {
				// Creating open: a mutation of the path, a use of the
				// parent directory, and it cancels this rank's pending
				// existence probe.
				if idx, ok := pendingStat[r.Path]; ok {
					local[idx].ref.Path = "" // mark dropped
					flushStat(r.Path)
				}
				kind := CreateUse
				local = append(local, metaEvent{ref: ref, mutation: true, kind: kind})
				if flags&recorder.OTrunc != 0 {
					local = append(local, metaEvent{ref: ref, mutation: true, kind: ResizeUse})
				}
				if dir := path.Dir(r.Path); dir != "/" && dir != "." {
					dref := ref
					dref.Path = dir
					local = append(local, metaEvent{ref: dref})
				}
			} else {
				local = append(local, metaEvent{ref: ref})
			}
		case r.Func == recorder.FuncMkdir:
			local = append(local, metaEvent{ref: ref, mutation: true, kind: CreateUse})
		case r.Func == recorder.FuncUnlink || r.Func == recorder.FuncRemove:
			local = append(local, metaEvent{ref: ref, mutation: true, kind: RemoveUse})
		case r.Func == recorder.FuncRename:
			local = append(local, metaEvent{ref: ref, mutation: true, kind: RemoveUse})
			dst := ref
			dst.Path = r.Path2
			local = append(local, metaEvent{ref: dst, mutation: true, kind: CreateUse})
		case r.Func == recorder.FuncTruncate:
			local = append(local, metaEvent{ref: ref, mutation: true, kind: ResizeUse})
		case r.Func == recorder.FuncStat || r.Func == recorder.FuncLstat ||
			r.Func == recorder.FuncAccess || r.Func == recorder.FuncOpendir:
			local = append(local, metaEvent{ref: ref})
			pendingStat[r.Path] = len(local) - 1
		}
	}
	return local
}

// addMetaEvents folds one rank's event list into the per-path event map,
// skipping suppressed probes. Calling this in rank order for every rank
// gives each path's list a deterministic (rank, program-order) sequence.
func addMetaEvents(events map[string][]metaEvent, local []metaEvent) {
	for _, e := range local {
		p := e.ref.Path
		if p == "" || p == "/" {
			continue // suppressed create probe or root
		}
		events[p] = append(events[p], e)
	}
}

// metaConflictsForPath scans one path's event list (any insertion order;
// it stably re-sorts by time) for cross-process (mutation, use) pairs.
func metaConflictsForPath(p string, evs []metaEvent) []MetaConflict {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].ref.T < evs[j].ref.T })
	var out []MetaConflict
	for i, e := range evs {
		if e.mutation {
			continue
		}
		// Most recent prior cross-rank mutation; a single operation can
		// carry several mutation kinds (O_CREAT|O_TRUNC is both a
		// creation and a resize), so report each kind of that operation.
		for j := i - 1; j >= 0; j-- {
			m := evs[j]
			if !m.mutation || m.ref.Rank == e.ref.Rank {
				continue
			}
			for k := j; k >= 0; k-- {
				mk := evs[k]
				if !mk.mutation || mk.ref.Rank != m.ref.Rank || mk.ref.T != m.ref.T {
					break
				}
				out = append(out, MetaConflict{Kind: mk.kind, Path: p, Mutation: mk.ref, Use: e.ref})
			}
			break
		}
	}
	return out
}

// sortMetaConflicts orders conflicts by a total key so the output is
// deterministic regardless of map iteration order — ties on (Use.T, Path)
// are real (an O_CREAT|O_TRUNC mutation yields a create-use and a
// resize-use pair against the same use) and must not flap between runs.
func sortMetaConflicts(out []MetaConflict) {
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Use.T != b.Use.T {
			return a.Use.T < b.Use.T
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Use.Rank != b.Use.Rank {
			return a.Use.Rank < b.Use.Rank
		}
		if a.Mutation.T != b.Mutation.T {
			return a.Mutation.T > b.Mutation.T // most recent mutation first, as emitted
		}
		if a.Mutation.Rank != b.Mutation.Rank {
			return a.Mutation.Rank < b.Mutation.Rank
		}
		return a.Kind < b.Kind
	})
}

// MetaSignatureOf summarizes the detected metadata conflicts.
func MetaSignatureOf(cs []MetaConflict) MetaSignature {
	var s MetaSignature
	for _, c := range cs {
		switch c.Kind {
		case CreateUse:
			s.CreateUse = true
		case RemoveUse:
			s.RemoveUse = true
		case ResizeUse:
			s.ResizeUse = true
		}
	}
	return s
}

// ValidateMetaConflicts checks that every metadata dependency is ordered by
// the program's MPI synchronization (the §5.2 race-freedom argument applied
// to metadata).
func ValidateMetaConflicts(hb *HB, cs []MetaConflict) []MetaConflict {
	var unordered []MetaConflict
	for _, c := range cs {
		if !hb.OrderedIO(c.Mutation.Rank, c.Mutation.TEnd, c.Use.Rank, c.Use.T) {
			unordered = append(unordered, c)
		}
	}
	return unordered
}
