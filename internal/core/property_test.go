package core

import (
	"math/rand"
	"testing"

	"repro/internal/pfs"
)

// randomFA builds a random single-file access history with open/close/
// commit tables consistent with per-rank program order.
func randomFA(rng *rand.Rand) *FileAccesses {
	nRanks := 1 + rng.Intn(4)
	fa := &FileAccesses{
		Path:          "/f",
		OpensByRank:   map[int32][]uint64{},
		ClosesByRank:  map[int32][]uint64{},
		CommitsByRank: map[int32][]uint64{},
	}
	var t uint64 = 1
	type state struct{ open bool }
	st := make([]state, nRanks)
	for ops := 0; ops < 40; ops++ {
		r := int32(rng.Intn(nRanks))
		t += uint64(rng.Intn(50)) + 1
		switch rng.Intn(5) {
		case 0: // open
			fa.OpensByRank[r] = append(fa.OpensByRank[r], t)
			st[r].open = true
		case 1: // close (commit too)
			if st[r].open {
				fa.ClosesByRank[r] = append(fa.ClosesByRank[r], t)
				fa.CommitsByRank[r] = append(fa.CommitsByRank[r], t)
				st[r].open = false
			}
		case 2: // fsync
			if st[r].open {
				fa.CommitsByRank[r] = append(fa.CommitsByRank[r], t)
			}
		default: // data op
			if st[r].open {
				os := int64(rng.Intn(300))
				fa.Intervals = append(fa.Intervals, Interval{
					T: t, TEnd: t + 1, Rank: r,
					Os: os, Oe: os + int64(rng.Intn(100)) + 1,
					Write: rng.Intn(2) == 0,
					To:    NoTime, TcCommit: NoTime, TcClose: NoTime,
				})
			}
		}
	}
	annotate(fa)
	return fa
}

// TestPropertyCommitConflictImpliesSessionConflict checks the model
// hierarchy: any pair that conflicts under commit semantics must also
// conflict under session semantics (a close is a commit, so "no commit
// between" implies "no close between", and condition (4) cannot hold).
func TestPropertyCommitConflictImpliesSessionConflict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		fa := randomFA(rng)
		commit := DetectConflicts(fa, pfs.Commit)
		session := DetectConflicts(fa, pfs.Session)
		key := func(c Conflict) [4]uint64 {
			return [4]uint64{c.First.T, uint64(c.First.Rank), c.Second.T, uint64(c.Second.Rank)}
		}
		sess := map[[4]uint64]bool{}
		for _, c := range session {
			sess[key(c)] = true
		}
		for _, c := range commit {
			if !sess[key(c)] {
				t.Fatalf("trial %d: commit conflict %v absent under session semantics", trial, c)
			}
		}
		// And eventual dominates session.
		eventual := DetectConflicts(fa, pfs.Eventual)
		if len(eventual) < len(session) {
			t.Fatalf("trial %d: eventual (%d) has fewer conflicts than session (%d)",
				trial, len(eventual), len(session))
		}
		// Strong never conflicts.
		if got := DetectConflicts(fa, pfs.Strong); len(got) != 0 {
			t.Fatalf("trial %d: strong produced conflicts", trial)
		}
	}
}

// TestPropertyConflictsAreOverlapSubset checks every reported conflict is a
// genuine overlapping write-first pair.
func TestPropertyConflictsAreOverlapSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		fa := randomFA(rng)
		for _, model := range []pfs.Semantics{pfs.Commit, pfs.Session, pfs.Eventual} {
			for _, c := range DetectConflicts(fa, model) {
				if !c.First.Write {
					t.Fatalf("trial %d: first op of %v is not a write", trial, c)
				}
				if c.First.T > c.Second.T {
					t.Fatalf("trial %d: conflict not time-ordered: %v", trial, c)
				}
				if c.First.Os >= c.Second.Oe || c.Second.Os >= c.First.Oe {
					t.Fatalf("trial %d: conflict does not overlap: %v", trial, c)
				}
				if (c.First.Rank == c.Second.Rank) != c.SameProcess {
					t.Fatalf("trial %d: SameProcess flag wrong: %v", trial, c)
				}
			}
		}
	}
}

// TestPropertyAnnotationConsistency checks the §5.2 record expansion:
// To <= T < TcCommit <= TcClose-or-later, and TcCommit is never after
// TcClose (closes are commits).
func TestPropertyAnnotationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		fa := randomFA(rng)
		for _, iv := range fa.Intervals {
			if iv.To != NoTime && iv.To > iv.T {
				t.Fatalf("To %d after T %d", iv.To, iv.T)
			}
			if iv.TcCommit != NoTime && iv.TcCommit <= iv.T {
				t.Fatalf("TcCommit %d not after T %d", iv.TcCommit, iv.T)
			}
			if iv.TcClose != NoTime && iv.TcCommit == NoTime {
				t.Fatal("close exists but no commit (closes are commits)")
			}
			if iv.TcClose != NoTime && iv.TcCommit != NoTime && iv.TcCommit > iv.TcClose {
				t.Fatalf("first commit %d after first close %d", iv.TcCommit, iv.TcClose)
			}
		}
	}
}
