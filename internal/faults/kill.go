package faults

// Process-level kill points. The fault kinds in this package simulate rank
// crashes *inside* the simulation; kill points crash the real process, which
// is what a crash-recovery harness needs: arm a point, re-exec the program,
// let it SIGKILL itself mid-journal-append, then resume and prove nothing
// committed was lost (see internal/ckpt and the kill-and-recover harness in
// internal/experiments).
//
// A kill point is a named call site (e.g. "ckpt.append.before-fsync",
// "pfs.op.commit") that calls Hit. Arming "point:N" makes the Nth Hit of
// that point kill the process with SIGKILL — no deferred functions, no
// buffered flushes, exactly the discipline a real crash denies a process.
// Points are armed explicitly (ArmKillPoints) or from the SEMFS_KILL
// environment variable (ArmKillPointsFromEnv), which is how the harness
// reaches into a re-exec'd child.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/pfs"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Flight-recorder event classes. Arming marks the run as a crash
// experiment; the fired event (a = hit count) is the final entry before
// SIGKILL and what FormatFlightDump attributes the dump to.
var (
	flightKillArmed = obs.FlightClassFor("kill.armed")
	flightKillFired = obs.FlightClassFor("kill.fired")
)

// KillEnv is the environment variable ArmKillPointsFromEnv reads: a
// comma-separated list of "point:N" specs (N >= 1; the Nth hit kills).
const KillEnv = "SEMFS_KILL"

var kill struct {
	mu    sync.Mutex
	armed map[string]int // point -> hit number that kills (1-based)
	hits  map[string]int // point -> hits so far
}

// ArmKillPoints parses a "point:N[,point:N...]" spec and arms each point: the
// Nth call to Hit(point) will SIGKILL the process. Arming any point whose
// name starts with "pfs.op." also installs the pfs kill hook, so data-path
// operations (write/read/commit/close) become killable sites too; arming a
// "wal."-prefixed point installs the write-ahead-log hook, and a
// "storage."-prefixed point the durable-backend hook, the same way. An
// empty spec arms nothing.
func ArmKillPoints(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	kill.mu.Lock()
	defer kill.mu.Unlock()
	if kill.armed == nil {
		kill.armed = make(map[string]int)
		kill.hits = make(map[string]int)
	}
	hookPFS, hookWAL, hookStorage := false, false, false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		point, nth, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("faults: kill spec %q: want point:N", part)
		}
		n, err := strconv.Atoi(nth)
		if err != nil || n < 1 {
			return fmt.Errorf("faults: kill spec %q: N must be a positive integer", part)
		}
		kill.armed[point] = n
		obs.Flight().Record(flightKillArmed, -1, 0, int64(n), 0)
		if strings.HasPrefix(point, "pfs.op.") {
			hookPFS = true
		}
		if strings.HasPrefix(point, "wal.") {
			hookWAL = true
		}
		if strings.HasPrefix(point, "storage.") {
			hookStorage = true
		}
	}
	if hookPFS {
		pfs.SetKillPointHook(func(op pfs.OpInfo) { Hit("pfs.op." + op.Kind.String()) })
	}
	if hookWAL {
		wal.SetKillPointHook(Hit)
	}
	if hookStorage {
		storage.SetKillPointHook(Hit)
	}
	return nil
}

// ArmKillPointsFromEnv arms kill points from the SEMFS_KILL environment
// variable; with the variable unset or empty it is a no-op. CLIs call it at
// startup so a crash-recovery harness can arm a child without new flags.
func ArmKillPointsFromEnv() error { return ArmKillPoints(os.Getenv(KillEnv)) }

// Hit records one arrival at a named kill point. If the point is armed and
// this is its fatal hit, the process kills itself with SIGKILL and never
// returns. Unarmed points only count, so instrumented call sites are safe to
// leave in production paths.
func Hit(point string) {
	kill.mu.Lock()
	if kill.armed == nil {
		kill.mu.Unlock()
		return
	}
	kill.hits[point]++
	fatal := kill.armed[point] > 0 && kill.hits[point] == kill.armed[point]
	hits := kill.hits[point]
	kill.mu.Unlock()
	if fatal {
		// Last acts before SIGKILL: put the fatal hit in the flight ring and
		// write the armed dump — the CRC framing tolerates dying mid-write,
		// and the fsync in WriteDump makes a completed dump survive the kill.
		obs.Flight().Record(flightKillFired, -1, 0, int64(hits), 0)
		obs.TriggerFlightDump("kill." + point)
		killProcess()
	}
}

// KillPointHits returns how many times a point has been hit since arming
// (always 0 before the first ArmKillPoints — unarmed processes do not
// count).
func KillPointHits(point string) int {
	kill.mu.Lock()
	defer kill.mu.Unlock()
	return kill.hits[point]
}

// ResetKillPoints disarms every kill point and zeroes the hit counts (test
// support).
func ResetKillPoints() {
	kill.mu.Lock()
	kill.armed, kill.hits = nil, nil
	kill.mu.Unlock()
	pfs.SetKillPointHook(nil)
	wal.SetKillPointHook(nil)
	storage.SetKillPointHook(nil)
}

// fallbackExit is the last-resort crash when SIGKILL is unavailable or
// failed: exit without running deferred functions, status 128+9.
func fallbackExit() { os.Exit(137) }
