package colfmt

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/recorder"
	"repro/internal/storage"
)

// The decode benchmarks run on a >= 1M-op synthetic stream (the acceptance
// bar for the columnar format) encoded once per process.
const benchRecords = 1_000_000

var benchOnce struct {
	sync.Once
	recs []recorder.Record
	v1   []byte
	col  []byte
}

func benchStream(tb testing.TB) ([]recorder.Record, []byte, []byte) {
	benchOnce.Do(func() {
		benchOnce.recs = genStream(0, benchRecords, 99)
		var v1 bytes.Buffer
		if err := recorder.EncodeRankStream(&v1, 0, benchOnce.recs); err != nil {
			tb.Fatal(err)
		}
		benchOnce.v1 = v1.Bytes()
		var col bytes.Buffer
		if err := EncodeStream(&col, 0, benchOnce.recs, EncodeOptions{}); err != nil {
			tb.Fatal(err)
		}
		benchOnce.col = col.Bytes()
	})
	return benchOnce.recs, benchOnce.v1, benchOnce.col
}

// BenchmarkColumnarDecode compares the three decode paths on the same 1M-op
// stream: the v1 record-framed decoder, the columnar materializing shim,
// and the columnar zero-copy cursor. Bytes/op and allocs/op are the gated
// regression surface (BENCH_pr10.json); MB/s and records/s land as
// informational throughput metrics.
func BenchmarkColumnarDecode(b *testing.B) {
	recs, v1, col := benchStream(b)
	report := func(b *testing.B, wire []byte) {
		b.SetBytes(int64(len(wire)))
		b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, got, err := recorder.DecodeRankStream(bytes.NewReader(v1))
			if err != nil || len(got) != len(recs) {
				b.Fatalf("decoded %d records, err %v", len(got), err)
			}
		}
		report(b, v1)
	})
	b.Run("columnar-materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := NewReader(col)
			if err != nil {
				b.Fatal(err)
			}
			got, err := r.Materialize()
			if err != nil || len(got) != len(recs) {
				b.Fatalf("decoded %d records, err %v", len(got), err)
			}
		}
		report(b, col)
	})
	b.Run("columnar-cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := NewReader(col)
			if err != nil {
				b.Fatal(err)
			}
			c := r.Cursor()
			var n int
			var tsum uint64
			for c.Next() {
				rec := c.Record()
				tsum += rec.TStart
				n++
			}
			if c.Err() != nil || n != len(recs) {
				b.Fatalf("cursor yielded %d records, err %v", n, c.Err())
			}
			if tsum == 0 {
				b.Fatal("timestamps summed to zero")
			}
		}
		report(b, col)
	})
}

// BenchmarkLoadDirParallel measures the sharded dir load: 8 columnar rank
// files decoded across the worker pool, against the same load pinned to one
// worker.
func BenchmarkLoadDirParallel(b *testing.B) {
	const ranks, perRank = 8, 125_000
	dir := b.TempDir()
	tr := mkTrace(ranks, perRank, 77)
	if err := SaveDir(dir, tr, FormatColumnar); err != nil {
		b.Fatal(err)
	}
	var wire int64
	for rank := 0; rank < ranks; rank++ {
		n, err := storage.OS().Stat(filepath.Join(dir, recorder.RankFileName(rank)))
		if err != nil {
			b.Fatal(err)
		}
		wire += n
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(wire)
			for i := 0; i < b.N; i++ {
				got, err := LoadDir(dir, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(got.PerRank) != ranks {
					b.Fatal("short load")
				}
			}
			b.ReportMetric(float64(ranks*perRank)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// TestColumnarDecodeAllocRatio is the deterministic half of the >= 10x
// fewer-allocs acceptance bar: wall-clock ratios live in the benchmarks
// (and BENCH_pr10.json), but allocation counts are exact, so the ratio
// between the v1 decoder and the zero-copy cursor is asserted here on every
// test run. The stream is smaller than the benchmark's for test-time
// budget; per-record allocation behavior does not depend on length.
func TestColumnarDecodeAllocRatio(t *testing.T) {
	recs := genStream(0, 50_000, 55)
	var v1buf, colbuf bytes.Buffer
	if err := recorder.EncodeRankStream(&v1buf, 0, recs); err != nil {
		t.Fatal(err)
	}
	if err := EncodeStream(&colbuf, 0, recs, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	v1, col := v1buf.Bytes(), colbuf.Bytes()
	v1Allocs := testing.AllocsPerRun(3, func() {
		if _, got, err := recorder.DecodeRankStream(bytes.NewReader(v1)); err != nil || len(got) != len(recs) {
			t.Fatalf("v1 decode: %d records, %v", len(got), err)
		}
	})
	cursorAllocs := testing.AllocsPerRun(3, func() {
		r, err := NewReader(col)
		if err != nil {
			t.Fatal(err)
		}
		c := r.Cursor()
		n := 0
		for c.Next() {
			n++
		}
		if c.Err() != nil || n != len(recs) {
			t.Fatalf("cursor: %d records, %v", n, c.Err())
		}
	})
	matAllocs := testing.AllocsPerRun(3, func() {
		r, err := NewReader(col)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := r.Materialize(); err != nil || len(got) != len(recs) {
			t.Fatalf("materialize: %d records, %v", len(got), err)
		}
	})
	t.Logf("allocs per decode of %d records: v1=%.0f cursor=%.0f materialize=%.0f",
		len(recs), v1Allocs, cursorAllocs, matAllocs)
	if cursorAllocs*10 > v1Allocs {
		t.Fatalf("zero-copy cursor allocs %.0f not >= 10x below v1's %.0f", cursorAllocs, v1Allocs)
	}
	if matAllocs*10 > v1Allocs {
		t.Fatalf("materialize allocs %.0f not >= 10x below v1's %.0f", matAllocs, v1Allocs)
	}
}
