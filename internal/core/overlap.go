package core

import (
	"slices"
	"sync"
)

// OverlapPair indexes two overlapping intervals within a FileAccesses'
// Intervals slice, ordered so that Intervals[A].T <= Intervals[B].T.
type OverlapPair struct {
	A, B int
}

// RankPairTable is the paper's table P: counts of overlapping operation
// pairs per (rank, rank) pair, with the smaller rank first.
type RankPairTable map[[2]int32]int

// denseRankLimit bounds the rank universe served by the dense rank-pair
// accumulator; larger (or negative) ranks fall back to the map. 256 ranks
// costs a 256 KiB pooled scratch table, far past the registry's scales.
const denseRankLimit = 256

// sweepBuf is the reusable scratch of one overlap sweep: the index
// permutation Algorithm 1 sorts, and the dense rank-pair accumulator with
// its touched-cell list. Pooled so the per-file conflict sweep allocates
// nothing beyond its outputs.
type sweepBuf struct {
	idx     []int32
	dense   []int32 // denseRankLimit*denseRankLimit cells, zeroed between uses
	touched []int32 // dense cells written this sweep, for O(touched) reset
}

var sweepBufs = sync.Pool{New: func() any { return new(sweepBuf) }}

// DetectOverlaps implements Algorithm 1: sort the tuples by starting
// offset, then sweep — for each interval, scan forward until an interval
// starts at or beyond its end (subsequent tuples cannot overlap it). The
// returned table counts overlapping pairs per rank pair.
//
// onPair, when non-nil, is invoked for every overlapping pair (time-ordered)
// where the earlier operation is a write — the candidate conflicts of §4.1;
// read-read overlaps are tallied in the table but never materialized, which
// keeps read-heavy workloads (e.g. LBANN, where every rank reads the whole
// file) from generating quadratic pair lists. (The conflict layer adds the
// write-side counterpart of that guard: see MaxConflictsPerFile.)
func DetectOverlaps(ivs []Interval, onPair func(OverlapPair)) RankPairTable {
	table := sweepOverlaps(ivs, true, onPair)
	if table == nil {
		table = make(RankPairTable)
	}
	return table
}

// sweepOverlaps is the engine behind DetectOverlaps and the fused conflict
// pass: one offset-sorted sweep over a pooled index permutation. When
// wantTable is false (the conflict paths, which discard the table) no
// rank-pair accounting runs at all; when true, small rank universes are
// counted in a pooled dense table and converted to the map form once at the
// end, so the hot loop never hashes.
func sweepOverlaps(ivs []Interval, wantTable bool, onPair func(OverlapPair)) RankPairTable {
	n := len(ivs)
	if n < 2 {
		if wantTable {
			return make(RankPairTable)
		}
		return nil
	}
	sb := sweepBufs.Get().(*sweepBuf)
	defer sweepBufs.Put(sb)
	if cap(sb.idx) < n {
		sb.idx = make([]int32, n)
	}
	idx := sb.idx[:n]
	minRank, maxRank := ivs[0].Rank, ivs[0].Rank
	for i := 0; i < n; i++ {
		idx[i] = int32(i)
		if r := ivs[i].Rank; r < minRank {
			minRank = r
		} else if r > maxRank {
			maxRank = r
		}
	}
	// Total order (offset, time, index): deterministic regardless of input
	// permutation, and a typed comparator — no reflect-based swaps.
	slices.SortFunc(idx, func(a, b int32) int {
		ia, ib := &ivs[a], &ivs[b]
		switch {
		case ia.Os != ib.Os:
			if ia.Os < ib.Os {
				return -1
			}
			return 1
		case ia.T != ib.T:
			if ia.T < ib.T {
				return -1
			}
			return 1
		default:
			return int(a - b)
		}
	})

	var table RankPairTable
	dense := minRank >= 0 && maxRank < denseRankLimit
	if wantTable {
		if dense {
			if sb.dense == nil {
				sb.dense = make([]int32, denseRankLimit*denseRankLimit)
			}
			sweepDenseTables.Inc()
		} else {
			table = make(RankPairTable)
			sweepMapTables.Inc()
		}
	}

	for a := 0; a < n; a++ {
		ia := &ivs[idx[a]]
		for b := a + 1; b < n; b++ {
			ib := &ivs[idx[b]]
			if ib.Os >= ia.Oe {
				break // sorted by Os: no later tuple overlaps ia
			}
			if wantTable {
				if dense {
					lo, hi := ia.Rank, ib.Rank
					if lo > hi {
						lo, hi = hi, lo
					}
					cell := int32(lo)*denseRankLimit + int32(hi)
					if sb.dense[cell] == 0 {
						sb.touched = append(sb.touched, cell)
					}
					sb.dense[cell]++
				} else {
					table[rankKey(ia.Rank, ib.Rank)]++
				}
			}
			if onPair == nil {
				continue
			}
			// Time-order the pair; candidate conflicts need the earlier
			// operation to be a write.
			first, second := int(idx[a]), int(idx[b])
			if earlier(ivs, second, first) {
				first, second = second, first
			}
			if ivs[first].Write {
				onPair(OverlapPair{A: first, B: second})
			}
		}
	}

	if wantTable && dense {
		table = make(RankPairTable, len(sb.touched))
		for _, cell := range sb.touched {
			table[[2]int32{cell / denseRankLimit, cell % denseRankLimit}] = int(sb.dense[cell])
			sb.dense[cell] = 0
		}
		sb.touched = sb.touched[:0]
	}
	return table
}

func rankKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}

// earlier deterministically orders two intervals by entry time, breaking
// timestamp ties by slice index so Algorithm 1 and the brute-force oracle
// always agree.
func earlier(ivs []Interval, i, j int) bool {
	if ivs[i].T != ivs[j].T {
		return ivs[i].T < ivs[j].T
	}
	return i < j
}

// DetectOverlapsBruteForce is the O(n²) reference implementation used by
// property tests to validate Algorithm 1.
func DetectOverlapsBruteForce(ivs []Interval, onPair func(OverlapPair)) RankPairTable {
	table := make(RankPairTable)
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			a, b := &ivs[i], &ivs[j]
			if a.Os < b.Oe && b.Os < a.Oe {
				table[rankKey(a.Rank, b.Rank)]++
				if onPair != nil {
					first, second := i, j
					if earlier(ivs, second, first) {
						first, second = second, first
					}
					if ivs[first].Write {
						onPair(OverlapPair{A: first, B: second})
					}
				}
			}
		}
	}
	return table
}
