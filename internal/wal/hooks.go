package wal

import (
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// KillPointFunc observes a named WAL kill point. The faults package installs
// its process-kill counter here (mirroring pfs.SetKillPointHook) when
// SEMFS_KILL arms a "wal."-prefixed point; the wal package itself never
// imports faults, which is what keeps the wal → pfs layering acyclic while
// chaos code in faults drives WAL-backed app runs.
type KillPointFunc func(point string)

var killHook atomic.Pointer[KillPointFunc]

// SetKillPointHook installs fn as the process-wide WAL kill-point observer.
// Pass nil to remove it. The nil fast path costs one atomic load.
func SetKillPointHook(fn KillPointFunc) {
	if fn == nil {
		killHook.Store(nil)
		return
	}
	killHook.Store(&fn)
}

func hitKillPoint(point string) {
	if fn := killHook.Load(); fn != nil {
		(*fn)(point)
	}
}

// fsyncTimed syncs f and records the real durability cost. Host wall time,
// not simulated: this is the one genuinely nondeterministic instrument in
// the package, same caveat as ckpt.journal.fsync_ns.
func fsyncTimed(f storage.File) error {
	start := time.Now()
	err := f.Sync()
	appendFsyncNS.Observe(time.Since(start).Nanoseconds())
	return err
}
