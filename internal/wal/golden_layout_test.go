package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pfs"
)

// TestOSDiskSegmentGoldenLayout pins the storage-seam compatibility oracle
// for the WAL: the same write sequence that generated the checked-in
// segment golden on the pre-seam os.* code must still produce a
// byte-identical rank-0000.wal through the osdisk backend. The golden was
// frozen BEFORE the seam refactor — a diff here is a real on-disk format
// change, not a regenerated expectation.
func TestOSDiskSegmentGoldenLayout(t *testing.T) {
	dir := t.TempDir()
	fs := pfs.New(pfs.Options{Semantics: pfs.Commit})
	c := fs.NewClient(0, 0)
	l, err := Open(0, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var now uint64 = 10
	h, _, err := l.Open(c, "/golden.dat", pfs.OCreat|pfs.ORdwr, now)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		now += 10
		data := make([]byte, 64+i)
		for j := range data {
			data[j] = byte(i*31 + j)
		}
		if _, err := l.Write(h, int64(i)*128, data, now); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := l.Barrier(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, logName(0)))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "pr9_segment.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("segment drifted from pre-seam layout: %d bytes vs %d", len(got), len(want))
	}
}
