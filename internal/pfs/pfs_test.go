package pfs

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newFS(sem Semantics) *FileSystem {
	return New(Options{Semantics: sem})
}

func mustOpen(t *testing.T, c *Client, path string, flags int, now uint64) *Handle {
	t.Helper()
	h, _, err := c.Open(path, flags, now)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return h
}

func writeAll(t *testing.T, h *Handle, off int64, data []byte, now uint64) {
	t.Helper()
	if _, err := h.Write(off, data, now); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, h *Handle, off, n int64, now uint64) []byte {
	t.Helper()
	data, _, err := h.Read(off, n, now)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return data
}

func TestRegistryMatchesTable1(t *testing.T) {
	want := map[string]Semantics{
		"GPFS": Strong, "Lustre": Strong, "GekkoFS": Strong, "BeeGFS": Strong,
		"BatchFS": Strong, "OrangeFS": Strong,
		"BSCFS": Commit, "UnifyFS": Commit, "SymphonyFS": Commit, "BurstFS": Commit,
		"NFS": Session, "AFS": Session, "DDN IME": Session, "Gfarm/BB": Session,
		"PLFS": Eventual, "echofs": Eventual, "MarFS": Eventual,
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d systems, want %d", len(reg), len(want))
	}
	for name, sem := range want {
		info, ok := LookupSystem(name)
		if !ok {
			t.Errorf("system %s missing from registry", name)
			continue
		}
		if info.Semantics != sem {
			t.Errorf("%s categorized as %v, want %v", name, info.Semantics, sem)
		}
	}
	if info, _ := LookupSystem("BurstFS"); info.PerProcessOrdering {
		t.Error("BurstFS must be flagged as lacking per-process ordering (§3.5)")
	}
	if _, ok := LookupSystem("NoSuchFS"); ok {
		t.Error("LookupSystem of unknown name should fail")
	}
}

func TestSemanticsOrdering(t *testing.T) {
	if !Session.WeakerThan(Commit) || !Commit.WeakerThan(Strong) || !Eventual.WeakerThan(Session) {
		t.Fatal("semantics strength ordering broken")
	}
	if Strong.WeakerThan(Session) {
		t.Fatal("strong must not be weaker than session")
	}
	if got := len(AllSemantics()); got != 4 {
		t.Fatalf("AllSemantics() has %d entries, want 4", got)
	}
}

func TestStrongReadSeesWrite(t *testing.T) {
	fs := newFS(Strong)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/f", OCreat|OWronly, 10)
	writeAll(t, hw, 0, []byte("hello"), 20)
	hr := mustOpen(t, r, "/f", ORdonly, 5) // opened before the write
	got := readAll(t, hr, 0, 5, 30)
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("strong read = %q, want %q", got, "hello")
	}
}

func TestCommitVisibilityRequiresCommit(t *testing.T) {
	fs := newFS(Commit)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/f", OCreat|OWronly, 10)
	writeAll(t, hw, 0, []byte("hello"), 20)
	hr := mustOpen(t, r, "/f", ORdonly, 25)
	if got := readAll(t, hr, 0, 5, 30); len(got) != 0 {
		t.Fatalf("uncommitted write visible to other process: %q", got)
	}
	if _, err := hw.Commit(40); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, hr, 0, 5, 50); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("committed write not visible: %q", got)
	}
}

func TestCommitCloseActsAsCommit(t *testing.T) {
	fs := newFS(Commit)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/f", OCreat|OWronly, 10)
	writeAll(t, hw, 0, []byte("data"), 20)
	if _, err := hw.Close(30); err != nil {
		t.Fatal(err)
	}
	hr := mustOpen(t, r, "/f", ORdonly, 25) // opened before the close: commit model doesn't care
	if got := readAll(t, hr, 0, 4, 40); !bytes.Equal(got, []byte("data")) {
		t.Fatalf("close-committed write not visible: %q", got)
	}
}

func TestSessionCloseToOpen(t *testing.T) {
	fs := newFS(Session)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/f", OCreat|OWronly, 10)
	writeAll(t, hw, 0, []byte("vis"), 20)

	// Reader that opened before the writer's close must NOT see the data,
	// even after the close happens.
	early := mustOpen(t, r, "/f", ORdonly, 15)
	if _, err := hw.Close(30); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, early, 0, 3, 40); len(got) != 0 {
		t.Fatalf("session: pre-close open saw post-close data: %q", got)
	}
	// A fresh open after the close sees it.
	late := mustOpen(t, r, "/f", ORdonly, 50)
	if got := readAll(t, late, 0, 3, 60); !bytes.Equal(got, []byte("vis")) {
		t.Fatalf("session: post-close open missed data: %q", got)
	}
	if fs.Stats().StaleReads == 0 {
		t.Fatal("stale read should have been counted for the early reader")
	}
}

func TestSessionFsyncDoesNotPublish(t *testing.T) {
	fs := newFS(Session)
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/f", OCreat|OWronly, 10)
	writeAll(t, hw, 0, []byte("x"), 20)
	if _, err := hw.Commit(30); err != nil { // fsync
		t.Fatal(err)
	}
	hr := mustOpen(t, r, "/f", ORdonly, 40) // opened after the fsync
	if got := readAll(t, hr, 0, 1, 50); len(got) != 0 {
		t.Fatalf("session: fsync alone must not publish, got %q", got)
	}
}

func TestEventualVisibilityAfterDelay(t *testing.T) {
	fs := New(Options{Semantics: Eventual, EventualDelay: 1000})
	w := fs.NewClient(0, 0)
	r := fs.NewClient(1, 0)
	hw := mustOpen(t, w, "/f", OCreat|OWronly, 10)
	writeAll(t, hw, 0, []byte("ev"), 100)
	hr := mustOpen(t, r, "/f", ORdonly, 10)
	if got := readAll(t, hr, 0, 2, 500); len(got) != 0 {
		t.Fatalf("eventual: data visible before delay: %q", got)
	}
	if got := readAll(t, hr, 0, 2, 1101); !bytes.Equal(got, []byte("ev")) {
		t.Fatalf("eventual: data not visible after delay: %q", got)
	}
}

func TestOwnWritesAlwaysVisible(t *testing.T) {
	for _, sem := range AllSemantics() {
		fs := newFS(sem)
		c := fs.NewClient(0, 0)
		h := mustOpen(t, c, "/f", OCreat|ORdwr, 10)
		writeAll(t, h, 0, []byte("aaaa"), 20)
		writeAll(t, h, 2, []byte("bb"), 30)
		got := readAll(t, h, 0, 4, 40)
		if !bytes.Equal(got, []byte("aabb")) {
			t.Errorf("%v: own read-back = %q, want aabb (program order)", sem, got)
		}
	}
}

func TestOverlappingPublishOrder(t *testing.T) {
	// Later published writes overwrite earlier ones.
	fs := newFS(Strong)
	a := fs.NewClient(0, 0)
	b := fs.NewClient(1, 0)
	ha := mustOpen(t, a, "/f", OCreat|ORdwr, 1)
	hb := mustOpen(t, b, "/f", ORdwr, 2)
	writeAll(t, ha, 0, []byte("11111"), 10)
	writeAll(t, hb, 1, []byte("22"), 20)
	got := readAll(t, ha, 0, 5, 30)
	if !bytes.Equal(got, []byte("12211")) {
		t.Fatalf("overlap result = %q, want 12211", got)
	}
}

func TestReadHolesAreZero(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	writeAll(t, h, 4, []byte("zz"), 10)
	got := readAll(t, h, 0, 6, 20)
	want := []byte{0, 0, 0, 0, 'z', 'z'}
	if !bytes.Equal(got, want) {
		t.Fatalf("hole read = %v, want %v", got, want)
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	writeAll(t, h, 0, []byte("abc"), 10)
	if got := readAll(t, h, 0, 100, 20); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("short read = %q", got)
	}
	if got := readAll(t, h, 10, 5, 30); len(got) != 0 {
		t.Fatalf("read past EOF returned %q", got)
	}
}

func TestOpenTruncDiscards(t *testing.T) {
	fs := newFS(Commit)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	writeAll(t, h, 0, []byte("old data"), 10)
	if _, err := h.Close(20); err != nil {
		t.Fatal(err)
	}
	h2 := mustOpen(t, c, "/f", ORdwr|OTrunc, 30)
	if got := h2.VisibleSize(30); got != 0 {
		t.Fatalf("size after O_TRUNC = %d, want 0", got)
	}
	if got := readAll(t, h2, 0, 8, 40); len(got) != 0 {
		t.Fatalf("data survived O_TRUNC: %q", got)
	}
}

func TestVisibleSizeAndAppendBase(t *testing.T) {
	fs := newFS(Session)
	w := fs.NewClient(0, 0)
	hw := mustOpen(t, w, "/f", OCreat|OWronly, 1)
	writeAll(t, hw, 0, make([]byte, 100), 10) // pending
	if got := hw.VisibleSize(20); got != 100 {
		t.Fatalf("own pending must count toward visible size: %d", got)
	}
	// Another client sees size 0 before close, 100 after close+reopen.
	r := fs.NewClient(1, 0)
	hr := mustOpen(t, r, "/f", ORdonly, 15)
	if got := hr.VisibleSize(20); got != 0 {
		t.Fatalf("session: other rank sees size %d before close", got)
	}
	if _, err := hw.Close(30); err != nil {
		t.Fatal(err)
	}
	hr2 := mustOpen(t, r, "/f", ORdonly, 40)
	if got := hr2.VisibleSize(40); got != 100 {
		t.Fatalf("session: post-close size %d, want 100", got)
	}
}

func TestTruncateTrimsData(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	writeAll(t, h, 0, []byte("0123456789"), 10)
	if _, err := h.Truncate(4); err != nil {
		t.Fatal(err)
	}
	if got := h.VisibleSize(20); got != 4 {
		t.Fatalf("size after truncate = %d, want 4", got)
	}
	if got := readAll(t, h, 0, 10, 30); !bytes.Equal(got, []byte("0123")) {
		t.Fatalf("read after truncate = %q", got)
	}
}

func TestHandleModeEnforcement(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	hr := mustOpen(t, c, "/f", OCreat|ORdonly, 1)
	if _, err := hr.Write(0, []byte("x"), 10); err == nil {
		t.Fatal("write on read-only handle should fail")
	}
	hw := mustOpen(t, c, "/f", OWronly, 2)
	if _, _, err := hw.Read(0, 1, 10); err == nil {
		t.Fatal("read on write-only handle should fail")
	}
}

func TestClosedHandleRejected(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	if _, err := h.Close(10); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write(0, []byte("x"), 20); err != ErrClosed {
		t.Fatalf("write on closed handle: %v", err)
	}
	if _, _, err := h.Read(0, 1, 20); err != ErrClosed {
		t.Fatalf("read on closed handle: %v", err)
	}
	if _, err := h.Close(20); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenMissingWithoutCreate(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	if _, _, err := c.Open("/missing", ORdonly, 1); err == nil {
		t.Fatal("open of missing file without O_CREAT should fail")
	}
}

func TestMetadataOps(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	if _, err := fs.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Mkdir("/dir"); err == nil {
		t.Fatal("duplicate mkdir should fail")
	}
	h := mustOpen(t, c, "/dir/f", OCreat|OWronly, 1)
	writeAll(t, h, 0, []byte("abc"), 10)
	if _, err := h.Close(20); err != nil {
		t.Fatal(err)
	}
	info, _, err := fs.Stat("/dir/f")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 3 {
		t.Fatalf("stat size = %d, want 3", info.Size)
	}
	if _, err := fs.Rename("/dir/f", "/dir/g"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/dir/f") || !fs.Exists("/dir/g") {
		t.Fatal("rename did not move the file")
	}
	if _, err := fs.Unlink("/dir/g"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/dir/g") {
		t.Fatal("unlink did not remove the file")
	}
	if _, err := fs.Unlink("/dir"); err != ErrIsDir {
		t.Fatalf("unlink of dir: %v, want ErrIsDir", err)
	}
	if _, _, err := fs.Stat("/nope"); err != ErrNotExist {
		t.Fatalf("stat of missing: %v", err)
	}
}

func TestStrongLockCostAndStats(t *testing.T) {
	strong := newFS(Strong)
	commit := newFS(Commit)
	ws := strong.NewClient(0, 0)
	wc := commit.NewClient(0, 0)
	hs := mustOpen(t, ws, "/f", OCreat|OWronly, 1)
	hc := mustOpen(t, wc, "/f", OCreat|OWronly, 1)
	strongCost, err := hs.Write(0, []byte("x"), 10)
	if err != nil {
		t.Fatal(err)
	}
	commitCost, err := hc.Write(0, []byte("x"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if strongCost <= commitCost {
		t.Fatalf("strong write cost (%d) should exceed commit write cost (%d) by the lock RPC", strongCost, commitCost)
	}
	// Contention accounting: a second sharer makes acquisitions contended.
	c2 := strong.NewClient(1, 0)
	mustOpen(t, c2, "/f", OWronly, 1)
	if _, err := hs.Write(0, []byte("x"), 20); err != nil {
		t.Fatal(err)
	}
	st := strong.Stats()
	if st.LockAcquires != 2 || st.LockContended != 2 {
		t.Fatalf("lock stats = acquires %d contended %d, want 2/2 (shared file)", st.LockAcquires, st.LockContended)
	}
	// A second, unshared file contributes acquisitions but no contention.
	h2 := mustOpen(t, ws, "/solo", OCreat|OWronly, 30)
	if _, err := h2.Write(0, []byte("y"), 40); err != nil {
		t.Fatal(err)
	}
	st = strong.Stats()
	if st.LockAcquires != 3 || st.LockContended != 2 {
		t.Fatalf("lock stats = %d/%d, want 3/2", st.LockAcquires, st.LockContended)
	}
}

func TestCommitModeSkipsLocks(t *testing.T) {
	fs := newFS(Commit)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|OWronly, 1)
	writeAll(t, h, 0, []byte("x"), 10)
	if st := fs.Stats(); st.LockAcquires != 0 {
		t.Fatalf("commit semantics should not acquire locks, got %d", st.LockAcquires)
	}
}

func TestServerRequestStriping(t *testing.T) {
	fs := New(Options{Semantics: Strong, StripeSize: 100, DataServers: 4})
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|OWronly, 1)
	// Write spanning stripes 0..3 → one request on each of 4 servers.
	writeAll(t, h, 0, make([]byte, 400), 10)
	st := fs.Stats()
	for s, n := range st.ServerRequests {
		if n != 1 {
			t.Fatalf("server %d requests = %d, want 1 (%v)", s, n, st.ServerRequests)
		}
	}
}

func TestStatsCounts(t *testing.T) {
	fs := newFS(Strong)
	c := fs.NewClient(0, 0)
	h := mustOpen(t, c, "/f", OCreat|ORdwr, 1)
	writeAll(t, h, 0, []byte("abcd"), 10)
	readAll(t, h, 0, 4, 20)
	st := fs.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten != 4 || st.BytesRead != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property: under every model, a single process writing disjoint blocks and
// reading them back observes exactly what it wrote, regardless of write
// order (per-process ordering guarantee).
func TestPropertyOwnDisjointWritesRoundTrip(t *testing.T) {
	f := func(seed uint8, semPick uint8) bool {
		sem := AllSemantics()[int(semPick)%4]
		fs := newFS(sem)
		c := fs.NewClient(0, 0)
		h, _, err := c.Open("/f", OCreat|ORdwr, 1)
		if err != nil {
			return false
		}
		// 8 disjoint 16-byte blocks written in a seed-derived order.
		order := make([]int, 8)
		for i := range order {
			order[i] = i
		}
		s := int(seed)
		for i := range order {
			j := (i + s) % 8
			order[i], order[j] = order[j], order[i]
		}
		now := uint64(10)
		for _, b := range order {
			data := bytes.Repeat([]byte{byte('A' + b)}, 16)
			if _, err := h.Write(int64(b*16), data, now); err != nil {
				return false
			}
			now += 10
		}
		got, _, err := h.Read(0, 128, now)
		if err != nil || len(got) != 128 {
			return false
		}
		for b := 0; b < 8; b++ {
			for i := 0; i < 16; i++ {
				if got[b*16+i] != byte('A'+b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: session semantics never leaks data from sessions closed after
// the reader opened.
func TestPropertySessionNoFutureLeak(t *testing.T) {
	f := func(nWrites uint8) bool {
		fs := newFS(Session)
		w := fs.NewClient(0, 0)
		r := fs.NewClient(1, 0)
		hw, _, err := w.Open("/f", OCreat|OWronly, 1)
		if err != nil {
			return false
		}
		hr, _, err := r.Open("/f", ORdonly, 2)
		if err != nil {
			return false
		}
		now := uint64(10)
		n := int(nWrites%16) + 1
		for i := 0; i < n; i++ {
			if _, err := hw.Write(int64(i*4), []byte("DATA"), now); err != nil {
				return false
			}
			now += 5
		}
		if _, err := hw.Close(now); err != nil {
			return false
		}
		got, _, err := hr.Read(0, int64(n*4), now+10)
		return err == nil && len(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
